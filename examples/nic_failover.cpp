// NIC pooling with automatic failover (paper §2.2 / §4.2).
//
// A web-server-like host serves UDP echo through its local NIC; when the
// NIC's wire dies, the pooling orchestrator migrates the host onto a
// neighbour's NIC through the CXL pool: rings stay in pool memory, the
// replacement device DMAs the same addresses, doorbells travel over the
// shared-memory channel, and the server's MAC moves to the new port.
//
//   ./build/examples/nic_failover
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/task.h"
#include "src/stack/udp.h"

using namespace cxlpool;
using namespace cxlpool::core;
using namespace cxlpool::stack;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

namespace {

struct Node {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> MakeNode(Rack& rack, HostId host, Node* out) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = true;  // rings must survive the device, so: pool memory
  auto handle = co_await rack.CreateVirtualNic(host, vc);
  CXLPOOL_CHECK(handle.ok());
  out->nic = std::move(*handle);
  auto pool =
      BufferPool::Create(rack.pod().host(host), Placement::kCxlPool, 256, 2048);
  CXLPOOL_CHECK(pool.ok());
  out->pool = std::move(*pool);
  out->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, UdpStack::Config{});
  CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
}

}  // namespace

int main() {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 3;  // server, client, and a host donating its NIC
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  Rack rack(loop, rc);
  rack.Start();

  Node server;
  Node client;
  RunBlocking(loop, MakeNode(rack, HostId(1), &server));
  RunBlocking(loop, MakeNode(rack, HostId(2), &client));
  netsim::MacAddr server_mac = server.nic.mac;
  auto* srv = server.stack->Bind(80).value();
  auto* cli = client.stack->Bind(5000).value();

  // Echo service.
  Spawn([](UdpSocket* s, sim::EventLoop& l, sim::StopToken& st) -> Task<> {
    while (!st.stopped()) {
      auto d = co_await s->Recv(l.now() + 50 * kMicrosecond);
      if (d.ok()) {
        (void)co_await s->SendTo(d->src_mac, d->src_port, d->payload);
      }
    }
  }(srv, loop, rack.stop_token()));

  // The migration handler IS the failover story: rebind + MAC takeover.
  // Pointer init-captures, not `[&]`: the handler coroutine can outlive
  // this scope's stack frame conceptually, so every captured object is
  // named and its lifetime auditable (all live in main() past Shutdown).
  rack.orchestrator().agent(HostId(1))->SetMigrationHandler(
      [rack = &rack, loop = &loop, srv = &server, server_mac](
          PcieDeviceId old_dev, PcieDeviceId new_dev, HostId new_home) -> Task<> {
        std::printf("[t=%.1f us] orchestrator: migrate NIC %u -> NIC %u "
                    "(home host %u)\n", loop->now() / 1000.0, old_dev.value(),
                    new_dev.value(), new_home.value());
        auto path = rack->orchestrator().MakeMmioPath(HostId(1), new_dev);
        CXLPOOL_CHECK_OK(path.status());
        CXLPOOL_CHECK_OK(co_await srv->stack->HandleMigration(std::move(*path)));
        rack->nic(old_dev)->DisconnectNetwork();
        CXLPOOL_CHECK_OK(rack->network().Attach(server_mac, rack->nic(new_dev)));
        std::printf("[t=%.1f us] stack rebound; MAC moved to the new port\n",
                    loop->now() / 1000.0);
      });

  // Client pings once per 100 us and reports successes.
  int ok_before = 0;
  int ok_after = 0;
  Nanos fail_at = kMillisecond;
  Spawn([](UdpSocket* s, netsim::MacAddr dst, sim::EventLoop& l,
           sim::StopToken& st, int& before, int& after, Nanos failure) -> Task<> {
    std::vector<std::byte> ping(32, std::byte{7});
    while (!st.stopped()) {
      Status sent = co_await s->SendTo(dst, 80, ping);
      if (sent.ok()) {
        auto reply = co_await s->Recv(l.now() + 80 * kMicrosecond);
        if (reply.ok()) {
          (l.now() < failure ? before : after)++;
        }
      }
      co_await sim::Delay(l, 100 * kMicrosecond);
    }
  }(cli, server_mac, loop, rack.stop_token(), ok_before, ok_after, fail_at));

  loop.RunUntil(fail_at);
  std::printf("[t=%.1f us] !!! NIC %u wire failure injected\n",
              loop.now() / 1000.0, server.nic.assignment.device.value());
  rack.nic(server.nic.assignment.device)->InjectLinkFailure();

  loop.RunUntil(fail_at + 3 * kMillisecond);
  rack.Shutdown();
  loop.RunFor(kMillisecond);

  std::printf("\nechoes before failure: %d; after failover: %d\n", ok_before,
              ok_after);
  std::printf("failovers executed by the orchestrator: %llu\n",
              static_cast<unsigned long long>(rack.orchestrator().stats().failovers));
  std::printf("without pooling this server would be offline until a tech "
              "replaced the NIC.\n");
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return ok_after > 0 ? 0 : 1;
}
