// Soft accelerator disaggregation (paper §5): one specialized accelerator
// card serves every host in the CXL pod. Each host opens its own queue
// pair; job data flows through pool memory; doorbells ride the forwarding
// channel. No PCIe switch, no accelerator on 15 of the 16 hosts.
//
//   ./build/examples/accel_disagg
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/obs/obs.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Task;

int main() {
  std::printf("=== Accelerator disaggregation over the CXL pool ===\n\n");

  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 4;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 8 * kMiB;
  rc.accels = 1;      // ONE device for the whole pod
  rc.accel_home = 0;  // physically attached to host 0
  // Observability on: each job submission becomes a qp.submit_wait trace
  // whose child spans name every phase of the forwarded doorbell.
  obs::Observability obs;
  rc.obs = &obs;
  Rack rack(loop, rc);
  rack.Start();

  // Every host — including ones with no accelerator — runs a job.
  auto run_job = [obs = &obs](Rack& rack, HostId host) -> Task<Nanos> {
    sim::EventLoop& loop = rack.loop();
    auto lease = rack.AcquireDevice(host, DeviceType::kAccel);
    CXLPOOL_CHECK_OK(lease.status());
    auto qp = rack.accel(0)->AllocateQueuePair();
    CXLPOOL_CHECK_OK(qp.status());
    VirtualAccel::Config vc;
    vc.tracer = obs->tracer();
    auto accel = co_await VirtualAccel::Create(rack.pod().host(host),
                                               std::move(lease->mmio), vc, *qp);
    CXLPOOL_CHECK_OK(accel.status());

    // Job data lives in pool memory so the remote device can DMA it.
    auto seg = rack.pod().pool().Allocate(128 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());
    std::vector<std::byte> input(32 * kKiB);
    for (size_t i = 0; i < input.size(); ++i) {
      input[i] = std::byte{static_cast<uint8_t>(i + host.value())};
    }
    CXLPOOL_CHECK_OK(co_await rack.pod().host(host).StoreNt(seg->base, input));

    Nanos start = loop.now();
    auto st = co_await (*accel)->RunJob(seg->base,
                                        static_cast<uint32_t>(input.size()),
                                        seg->base + 64 * kKiB,
                                        loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == 0);
    Nanos took = loop.now() - start;

    // Verify the transform end to end (real bytes flowed through the pool).
    std::vector<std::byte> output(input.size());
    CXLPOOL_CHECK_OK(
        co_await rack.pod().host(host).Invalidate(seg->base + 64 * kKiB,
                                                  output.size()));
    CXLPOOL_CHECK_OK(
        co_await rack.pod().host(host).Load(seg->base + 64 * kKiB, output));
    for (size_t i = 0; i < output.size(); ++i) {
      CXLPOOL_CHECK(output[i] == (input[i] ^ std::byte{0x5a}));
    }
    rack.accel(0)->ReleaseQueuePair(*qp);
    CXLPOOL_CHECK_OK(rack.orchestrator().Release(host, lease->assignment.device));
    co_return took;
  };

  for (int h = 0; h < rack.pod().host_count(); ++h) {
    Nanos took = RunBlocking(loop, run_job(rack, HostId(h)));
    std::printf("host %d: 32 KiB job on the %s accelerator -> %.1f us "
                "(output verified)\n",
                h, h == 0 ? "LOCAL " : "POOLED",
                static_cast<double>(took) / 1000.0);
  }

  // Per-phase latency breakdown, from the distributed traces: local
  // submissions stop at mmio.device_bar; pooled ones add the rpc.* phases.
  std::printf("\nper-phase latency breakdown across all jobs (ns):\n");
  std::printf("  %-16s %6s %8s %8s\n", "phase", "n", "p50", "p99");
  for (const auto& [name, hist] : obs.tracer()->PhaseHistograms()) {
    std::printf("  %-16s %6llu %8lld %8lld\n", name.c_str(),
                static_cast<unsigned long long>(hist.count()),
                static_cast<long long>(hist.Percentile(0.5)),
                static_cast<long long>(hist.Percentile(0.99)));
  }

  std::printf("\nremote submission adds only the forwarding-channel doorbell\n"
              "(~1-2 us) and pool-memory DMA deltas to the job time; one card\n"
              "serves the rack instead of one per host (see bench/accel_pooling\n"
              "for the utilization and queueing study).\n");
  rack.Shutdown();
  loop.RunFor(kMillisecond);
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return 0;
}
