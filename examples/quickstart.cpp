// Quickstart: build a CXL pod, share memory between two hosts with
// software coherence, and pass a sub-microsecond message — the two
// building blocks everything else in this library stands on.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --coherence-check to run the same demo under the shadow-state race
// detector (src/analysis/coherence_checker.h): every pool-line access is
// checked against the publish/consume protocol, and the run fails loudly
// if any step is missed.
#include <cstdio>
#include <cstring>

#include "src/analysis/coherence_checker.h"
#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/kv/store.h"
#include "src/msg/channel.h"
#include "src/sim/task.h"
#include "src/stack/buffer_pool.h"

using namespace cxlpool;

int main(int argc, char** argv) {
  bool coherence_check = false;
  for (int i = 1; i < argc; ++i) {
    coherence_check |= std::strcmp(argv[i], "--coherence-check") == 0;
  }
  // A simulated rack unit: 4 hosts, each linked to 2 multi-headed CXL
  // memory devices (the pod). Simulated time is nanoseconds on `loop`.
  sim::EventLoop loop;
  cxl::CxlPodConfig config;
  config.num_hosts = 4;
  config.num_mhds = 2;
  config.mhd_capacity = 64 * kMiB;
  config.dram_per_host = 16 * kMiB;
  cxl::CxlPod pod(loop, config);

  analysis::CoherenceChecker checker;
  if (coherence_check) {
    checker.AttachTo(pod);
    std::printf("coherence checking ON: every line access is verified against\n"
                "the publish/consume protocol\n");
  }

  // 1. Allocate shared pool memory. Every host (and every PCIe device)
  //    can address it.
  auto segment = pod.pool().Allocate(1 * kMiB);
  CXLPOOL_CHECK_OK(segment.status());
  std::printf("pool segment at 0x%llx on MHD %u\n",
              static_cast<unsigned long long>(segment->base),
              segment->mhds[0].value());

  // 2. Software coherence in action: host 0 publishes with a non-temporal
  //    store; host 1 reads it back. A plain cached store would be
  //    INVISIBLE to host 1 — today's CXL pools have no cross-host
  //    hardware coherence. (See tests/cxl_test.cc for the failure modes.)
  auto demo = [](cxl::CxlPod& pod, uint64_t addr) -> sim::Task<> {
    const char msg[] = "hello from host 0";
    std::vector<std::byte> bytes(sizeof(msg));
    std::memcpy(bytes.data(), msg, sizeof(msg));
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, bytes));
    co_await sim::Delay(pod.loop(), kMicrosecond);  // posted-write commit

    std::vector<std::byte> seen(sizeof(msg));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Invalidate(addr, seen.size()));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, seen));
    std::printf("host 1 read: \"%s\" (t=%lld ns)\n",
                reinterpret_cast<const char*>(seen.data()),
                static_cast<long long>(pod.loop().now()));
  };
  sim::RunBlocking(loop, demo(pod, segment->base));

  // 3. A message channel between two hosts: 64 B cacheline slots in the
  //    pool, nt-store publish, invalidate+load polling (paper Sec. 4.1).
  auto channel = msg::Channel::Create(pod.pool(), pod.host(2), pod.host(3));
  CXLPOOL_CHECK_OK(channel.status());

  auto ping_pong = [](msg::Channel& ch, sim::EventLoop& loop) -> sim::Task<> {
    const char ping[] = "ping";
    std::vector<std::byte> m(sizeof(ping));
    std::memcpy(m.data(), ping, sizeof(ping));

    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await ch.end_a().Send(m));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await ch.end_b().Recv(&got, loop.now() + kMillisecond));
    std::printf("host 3 received \"%s\" after %lld ns (sub-microsecond, no\n"
                "hardware coherence involved — Figure 4's mechanism)\n",
                reinterpret_cast<const char*>(got.data()),
                static_cast<long long>(loop.now() - start));
  };
  sim::RunBlocking(loop, ping_pong(**channel, loop));

  // 4. The serving path: a memcached-style store whose values live in
  //    those same pool buffers (bench/kv_soak drives this over pooled
  //    NICs and SSDs under chaos; here just the cache itself).
  auto values = stack::BufferPool::Create(pod.host(0), stack::Placement::kCxlPool,
                                          /*buffer_count=*/32,
                                          /*buffer_size=*/2048);
  CXLPOOL_CHECK_OK(values.status());
  kv::Store store(values->get(), /*ssd=*/nullptr, /*ssd_capacity_bytes=*/0,
                  kv::StoreConfig{}, /*registry=*/nullptr);

  auto serve = [](kv::Store& store) -> sim::Task<> {
    const char hot[] = "cached in the pool";
    std::vector<std::byte> v(sizeof(hot));
    std::memcpy(v.data(), hot, sizeof(hot));
    CXLPOOL_CHECK_OK(co_await store.Set("user:42", v, /*deadline=*/0));
    auto got = co_await store.Get("user:42", /*deadline=*/0);
    CXLPOOL_CHECK_OK(got.status());
    std::printf("GET user:42 -> \"%s\" (origin: %s)\n",
                reinterpret_cast<const char*>(got->value.data()),
                got->origin == kv::Origin::kPool ? "pool memory" : "ssd");
  };
  sim::RunBlocking(loop, serve(store));

  if (coherence_check) {
    std::printf("\n%s\n", checker.Report().c_str());
    CXLPOOL_CHECK(checker.violation_count() == 0);
  }
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 0);

  std::printf("\nnext steps: examples/nic_failover, examples/ssd_harvest,\n"
              "examples/accel_disagg, bench/kv_soak for the pooled KV\n"
              "service under chaos, and the bench/ binaries for every\n"
              "figure in the paper.\n");
  return 0;
}
