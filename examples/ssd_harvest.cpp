// Pooled SSD harvesting (paper §1 "Peak Performance" + §5 adaptive
// striping): local SSDs are the most stranded resource in the fleet (54%,
// Figure 2). With the CXL pool, a host with a storage burst harvests idle
// SSDs on neighbouring hosts and stripes writes across them — adaptive
// RAID-0 over the rack.
//
//   ./build/examples/ssd_harvest
#include <cstdio>
#include <vector>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Task;

namespace {

// Writes `total_mb` MiB through the given virtual SSDs, striping 128 KiB
// chunks round-robin; returns achieved GB/s.
Task<double> StripedWrite(Rack& rack, HostId host,
                          std::vector<std::unique_ptr<VirtualSsd>>& ssds,
                          uint64_t buf, int total_mb) {
  sim::EventLoop& loop = rack.loop();
  constexpr uint32_t kChunkSectors = 256;  // 128 KiB
  uint64_t chunk_bytes = kChunkSectors * devices::kSsdSectorSize;
  uint64_t chunks = static_cast<uint64_t>(total_mb) * kMiB / chunk_bytes;

  Nanos start = loop.now();
  // Keep every SSD busy: issue one chunk per device, round-robin, with
  // one outstanding command per device (the device itself has internal
  // channel parallelism).
  std::vector<std::byte> data(chunk_bytes, std::byte{0x99});
  CXLPOOL_CHECK_OK(co_await rack.pod().host(host).StoreNt(buf, data));

  uint64_t issued = 0;
  int done_workers = 0;
  sim::Event all_done(loop);
  for (size_t d = 0; d < ssds.size(); ++d) {
    sim::Spawn([](VirtualSsd* ssd, sim::EventLoop& l, uint64_t& next,
                  uint64_t total, uint64_t buf_addr, int& done,
                  size_t workers, sim::Event& evt) -> Task<> {
      while (next < total) {
        uint64_t my_chunk = next++;
        auto st = co_await ssd->WriteBlocks(my_chunk * kChunkSectors % 30000,
                                            kChunkSectors, buf_addr,
                                            l.now() + kSecond);
        CXLPOOL_CHECK(st.ok() && *st == devices::kSsdStatusOk);
      }
      if (static_cast<size_t>(++done) == workers) {
        evt.Set();
      }
    }(ssds[d].get(), loop, issued, chunks, buf, done_workers, ssds.size(),
      all_done));
  }
  co_await all_done.Wait();
  double seconds = static_cast<double>(loop.now() - start) / 1e9;
  co_return static_cast<double>(total_mb) / 1024.0 / seconds;
}

}  // namespace

int main() {
  std::printf("=== SSD harvest: stripe a write burst across the rack's idle "
              "SSDs ===\n\n");
  for (int num_ssds : {1, 2, 4}) {
    sim::EventLoop loop;
    RackConfig rc;
    rc.pod.num_hosts = 4;
    rc.pod.num_mhds = 2;
    rc.pod.mhd_capacity = 128 * kMiB;
    rc.pod.dram_per_host = 8 * kMiB;
    rc.ssds_per_host = 1;
    rc.ssd.capacity_bytes = 32 * kMiB;
    rc.ssd.channels = 4;
    Rack rack(loop, rc);
    rack.Start();

    // Host 3 harvests `num_ssds` DISTINCT devices from the pool (its own
    // plus neighbours'; each SSD has a single queue pair, so one driver
    // per device).
    std::vector<std::unique_ptr<VirtualSsd>> ssds;
    for (int i = 0; i < num_ssds; ++i) {
      PcieDeviceId device = rack.ssd((3 + i) % rack.ssd_count())->id();
      auto path = rack.orchestrator().MakeMmioPath(HostId(3), device);
      CXLPOOL_CHECK_OK(path.status());
      VirtualSsd::Config vc;
      vc.rings_in_cxl = true;
      auto ssd = RunBlocking(loop, VirtualSsd::Create(rack.pod().host(3),
                                                      std::move(*path), vc));
      CXLPOOL_CHECK_OK(ssd.status());
      ssds.push_back(std::move(*ssd));
    }

    auto seg = rack.pod().pool().Allocate(1 * kMiB);
    CXLPOOL_CHECK_OK(seg.status());
    double gbps =
        RunBlocking(loop, StripedWrite(rack, HostId(3), ssds, seg->base, 16));
    std::printf("  %d SSD%s harvested: %.2f GB/s sequential write\n", num_ssds,
                num_ssds == 1 ? " " : "s", gbps);
    rack.Shutdown();
    loop.RunFor(kMillisecond);
    CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  }
  std::printf("\nstriping across pooled SSDs scales the burst bandwidth with\n"
              "the number of harvested devices — \"adaptive storage striping\"\n"
              "from the paper's Sec. 5 discussion.\n");
  return 0;
}
