// "Datacenter networks without ToRs" (paper §5).
//
// Classic racks funnel every server through one (or two) top-of-rack
// switches. With NIC pooling over the CXL pod, the rack instead provisions
// NICs wired DIRECTLY to multiple aggregation-layer switches (planes).
// When a whole plane — or any single NIC — fails, the pooling orchestrator
// migrates traffic onto NICs of the surviving plane: no ToR, no single
// point of failure, and the spare capacity is pooled instead of per-host.
//
//   ./build/examples/torless_rack
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/task.h"
#include "src/stack/udp.h"

using namespace cxlpool;
using namespace cxlpool::core;
using namespace cxlpool::stack;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

namespace {

struct PlaneNode {
  devices::Nic* plane_a = nullptr;
  devices::Nic* plane_b = nullptr;
  netsim::MacAddr mac = 0;  // the host's stable address (moves with failover)
  netsim::Network* current_net = nullptr;  // where `mac` is attached now
  std::unique_ptr<VirtualNic> vnic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> BuildStack(Rack& rack, HostId host, PcieDeviceId nic, PlaneNode* node) {
  auto path = rack.orchestrator().MakeMmioPath(host, nic);
  CXLPOOL_CHECK_OK(path.status());
  VirtualNic::Config vc;
  vc.rings_in_cxl = true;
  auto vnic = co_await VirtualNic::Create(rack.pod().host(host), std::move(*path), vc);
  CXLPOOL_CHECK_OK(vnic.status());
  node->vnic = std::move(*vnic);
  node->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                           node->vnic.get(), node->pool.get(),
                                           node->mac, UdpStack::Config{});
  CXLPOOL_CHECK_OK(co_await node->stack->Start(rack.stop_token()));
}

}  // namespace

int main() {
  std::printf("=== ToR-less rack: dual aggregation planes + pooled NICs ===\n\n");

  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 0;  // we wire NICs to aggregation planes manually
  Rack rack(loop, rc);

  // Two aggregation planes instead of a ToR.
  netsim::Network plane_a(loop, netsim::NetworkConfig{});
  netsim::Network plane_b(loop, netsim::NetworkConfig{});

  // Per host: one NIC into each plane. Plane-A NICs are registered first
  // so initial leases land on plane A.
  std::vector<std::unique_ptr<devices::Nic>> nics;
  PlaneNode nodes[2];
  for (uint32_t h = 0; h < 2; ++h) {
    for (int p = 0; p < 2; ++p) {
      auto nic = std::make_unique<devices::Nic>(
          PcieDeviceId(h * 2 + p), (p == 0 ? "planeA-nic" : "planeB-nic"),
          loop, devices::NicConfig{});
      nic->AttachTo(&rack.pod().host(h));
      netsim::Network& plane = p == 0 ? plane_a : plane_b;
      CXLPOOL_CHECK_OK(nic->ConnectNetwork(&plane, 0x900 + h * 2 + p));
      rack.orchestrator().RegisterDevice(HostId(h), nic.get(), DeviceType::kNic);
      (p == 0 ? nodes[h].plane_a : nodes[h].plane_b) = nic.get();
      nics.push_back(std::move(nic));
    }
    nodes[h].mac = 0x800 + h;  // stable service address
  }
  rack.Start();

  // Stable MACs initially live on the plane-A NICs.
  for (int h = 0; h < 2; ++h) {
    CXLPOOL_CHECK_OK(plane_a.Attach(nodes[h].mac, nodes[h].plane_a));
    nodes[h].current_net = &plane_a;
    auto pool = BufferPool::Create(rack.pod().host(h), Placement::kCxlPool, 256, 2048);
    CXLPOOL_CHECK_OK(pool.status());
    nodes[h].pool = std::move(*pool);
    // Lease the plane-A NIC (first registered, so Acquire picks it).
    auto lease = rack.orchestrator().Acquire(HostId(h), DeviceType::kNic);
    CXLPOOL_CHECK_OK(lease.status());
    RunBlocking(loop, BuildStack(rack, HostId(h), lease->device, &nodes[h]));
  }

  // Failover wiring: when a plane-A NIC dies, rebind the host's stack to
  // its plane-B NIC and move the stable MAC to plane B.
  // The orchestrator may momentarily pick a NIC whose failure it has not
  // heard about yet; the handler just follows every migration (a dead
  // target triggers a further failover), re-homing the stable MAC onto
  // whatever plane the new NIC sits on.
  for (uint32_t h = 0; h < 2; ++h) {
    PlaneNode* node = &nodes[h];
    netsim::Network* pa = &plane_a;
    netsim::Network* pb = &plane_b;
    std::vector<std::unique_ptr<devices::Nic>>* all_nics = &nics;
    rack.orchestrator().agent(HostId(h))->SetMigrationHandler(
        [rack = &rack, node, pa, pb, all_nics, h](
            PcieDeviceId, PcieDeviceId new_dev, HostId) -> Task<> {
          auto path = rack->orchestrator().MakeMmioPath(HostId(h), new_dev);
          CXLPOOL_CHECK_OK(path.status());
          CXLPOOL_CHECK_OK(co_await node->stack->HandleMigration(std::move(*path)));
          netsim::Network* target_net = new_dev.value() % 2 == 0 ? pa : pb;
          devices::Nic* target_nic = nullptr;
          for (auto& n : *all_nics) {
            if (n->id() == new_dev) {
              target_nic = n.get();
            }
          }
          CXLPOOL_CHECK(target_nic != nullptr);
          if (node->current_net != target_net) {
            (void)node->current_net->Detach(node->mac);
            CXLPOOL_CHECK_OK(target_net->Attach(node->mac, target_nic));
            node->current_net = target_net;
          }
          std::printf("[t=%.0f us] host %u re-homed onto plane %s (device %u)\n",
                      node->stack->host().loop().now() / 1000.0, h,
                      new_dev.value() % 2 == 0 ? "A" : "B", new_dev.value());
        });
  }

  auto* srv = nodes[0].stack->Bind(80).value();
  auto* cli = nodes[1].stack->Bind(5000).value();
  Spawn([](UdpSocket* s, sim::EventLoop& l, sim::StopToken& st) -> Task<> {
    while (!st.stopped()) {
      auto d = co_await s->Recv(l.now() + 50 * kMicrosecond);
      if (d.ok()) {
        (void)co_await s->SendTo(d->src_mac, d->src_port, d->payload);
      }
    }
  }(srv, loop, rack.stop_token()));

  int plane_a_ok = 0;
  int plane_b_ok = 0;
  Nanos plane_fail_at = kMillisecond;
  Spawn([](UdpSocket* s, netsim::MacAddr dst, sim::EventLoop& l,
           sim::StopToken& st, int& a, int& b, Nanos failure) -> Task<> {
    std::vector<std::byte> ping(48, std::byte{3});
    while (!st.stopped()) {
      if ((co_await s->SendTo(dst, 80, ping)).ok()) {
        auto r = co_await s->Recv(l.now() + 80 * kMicrosecond);
        if (r.ok()) {
          (l.now() < failure ? a : b)++;
        }
      }
      co_await sim::Delay(l, 100 * kMicrosecond);
    }
  }(cli, nodes[0].mac, loop, rack.stop_token(), plane_a_ok, plane_b_ok,
    plane_fail_at));

  loop.RunUntil(plane_fail_at);
  std::printf("[t=%.0f us] !!! aggregation plane A fails (both plane-A NIC "
              "links down)\n", loop.now() / 1000.0);
  nodes[0].plane_a->InjectLinkFailure();
  nodes[1].plane_a->InjectLinkFailure();

  loop.RunUntil(plane_fail_at + 4 * kMillisecond);
  rack.Shutdown();
  loop.RunFor(kMillisecond);

  std::printf("\nechoes via plane A (before failure): %d\n", plane_a_ok);
  std::printf("echoes via plane B (after failover):  %d\n", plane_b_ok);
  std::printf("failovers executed: %llu\n",
              static_cast<unsigned long long>(rack.orchestrator().stats().failovers));
  std::printf("\nno ToR anywhere: the rack survives a whole aggregation plane\n"
              "because its NICs are a pooled, re-routable resource (paper Sec. 5).\n");
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return plane_b_ok > 0 ? 0 : 1;
}
