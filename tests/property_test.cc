// Property-style and parameterized sweeps over the core invariants:
// coherence correctness for random access patterns, ring integrity for
// random message sizes, histogram accuracy across magnitudes, bandwidth
// conservation, and packing invariants.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/analysis/coherence_checker.h"
#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/msg/ring.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/stranding/binpack.h"

namespace cxlpool {
namespace {

using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

// --- Coherence property: for ANY interleaving of writers using the
// publish protocol, a reader using the consume protocol always sees the
// latest committed value, and plain cached polling may (legitimately) see
// stale ones but never garbage. ---

class CoherencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoherencePropertyTest, PublishConsumeNeverTearsOrCorrupts) {
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 3;
  pc.num_mhds = 2;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  cxl::CxlPod pod(loop, pc);
  // Random interleavings must also be race-free under the shadow-state
  // checker, not just untorn at the byte level.
  analysis::CoherenceChecker checker;
  checker.AttachTo(pod);
  auto seg = pod.pool().Allocate(64 * kKiB);
  ASSERT_TRUE(seg.ok());

  uint64_t seed = GetParam();
  // Writers publish versioned 64 B records (version stamped in every u64
  // of the line); the reader checks internal consistency of every record.
  auto writer = [](cxl::HostAdapter& h, uint64_t base, uint64_t seed,
                   sim::StopToken& stop) -> Task<> {
    sim::Rng rng(seed);
    uint64_t version = 0;
    while (!stop.stopped()) {
      uint64_t slot = rng.UniformInt(uint64_t{16});
      ++version;
      std::array<std::byte, 64> line;
      for (int i = 0; i < 8; ++i) {
        std::memcpy(line.data() + i * 8, &version, 8);
      }
      CXLPOOL_CHECK_OK(co_await h.StoreNt(base + slot * 64, line));
      co_await sim::Delay(h.loop(), rng.UniformInt(int64_t{50}, int64_t{500}));
    }
  };
  auto reader = [](cxl::HostAdapter& h, uint64_t base, int rounds,
                   bool& torn) -> Task<> {
    for (int r = 0; r < rounds; ++r) {
      for (uint64_t slot = 0; slot < 16; ++slot) {
        std::array<std::byte, 64> line;
        CXLPOOL_CHECK_OK(co_await h.Invalidate(base + slot * 64, 64));
        CXLPOOL_CHECK_OK(co_await h.Load(base + slot * 64, line));
        uint64_t first;
        std::memcpy(&first, line.data(), 8);
        for (int i = 1; i < 8; ++i) {
          uint64_t v;
          std::memcpy(&v, line.data() + i * 8, 8);
          if (v != first) {
            torn = true;  // a torn/corrupt record: protocol violation
          }
        }
      }
      co_await sim::Delay(h.loop(), 300);
    }
  };

  sim::StopToken stop;
  bool torn = false;
  Spawn(writer(pod.host(0), seg->base, seed, stop));
  Spawn(writer(pod.host(1), seg->base, seed * 31 + 7, stop));
  auto drive = [](cxl::CxlPod& pod, uint64_t base, bool& torn_flag,
                  sim::StopToken& st,
                  decltype(reader)& rd) -> Task<> {
    co_await rd(pod.host(2), base, 200, torn_flag);
    st.Stop();
  };
  RunBlocking(loop, drive(pod, seg->base, torn, stop, reader));
  EXPECT_FALSE(torn);
  EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();
  EXPECT_EQ(pod.TotalLostDirtyLines(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherencePropertyTest,
                         ::testing::Values(1, 17, 23981, 777777));

// --- Ring property: arbitrary message sizes arrive intact, in order, for
// any power-of-two ring size. ---

struct RingParam {
  uint32_t slots;
  uint64_t seed;
};

class RingPropertyTest : public ::testing::TestWithParam<RingParam> {};

TEST_P(RingPropertyTest, RandomSizedMessagesArriveInOrderIntact) {
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  cxl::CxlPod pod(loop, pc);
  analysis::CoherenceChecker checker;
  checker.AttachTo(pod);
  RingParam param = GetParam();

  auto seg = pod.pool().Allocate(msg::RingFootprint(param.slots));
  ASSERT_TRUE(seg.ok());
  msg::RingConfig rc;
  rc.base = seg->base;
  rc.slots = param.slots;
  msg::RingSender tx(pod.host(0), rc);
  msg::RingReceiver rx(pod.host(1), rc);

  constexpr int kCount = 120;
  // Messages must fit the ring: at most slots * payload-per-slot bytes.
  const uint64_t max_bytes =
      std::min<uint64_t>(800, param.slots * msg::kSlotPayload);
  auto producer = [max_bytes](msg::RingSender& s, uint64_t seed) -> Task<> {
    sim::Rng rng(seed);
    for (int i = 0; i < kCount; ++i) {
      size_t n = rng.UniformInt(max_bytes);  // multi-slot sizes included
      std::vector<std::byte> m(n);
      sim::Rng content(seed * 1000 + static_cast<uint64_t>(i));
      for (auto& b : m) {
        b = std::byte{static_cast<uint8_t>(content.NextU32())};
      }
      CXLPOOL_CHECK_OK(co_await s.Send(m));
    }
  };
  auto consumer = [](msg::RingReceiver& r, sim::EventLoop& loop, uint64_t seed,
                     int& ok_count) -> Task<> {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::byte> m;
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + 100 * kMillisecond));
      sim::Rng content(seed * 1000 + static_cast<uint64_t>(i));
      bool good = true;
      for (auto& b : m) {
        if (b != std::byte{static_cast<uint8_t>(content.NextU32())}) {
          good = false;
        }
      }
      if (good) {
        ++ok_count;
      }
    }
  };

  int ok_count = 0;
  Spawn(producer(tx, param.seed));
  auto drive = [&]() -> Task<> { co_await consumer(rx, loop, param.seed, ok_count); };
  RunBlocking(loop, drive());
  EXPECT_EQ(ok_count, kCount);
  EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();
  EXPECT_EQ(pod.TotalLostDirtyLines(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Rings, RingPropertyTest,
    ::testing::Values(RingParam{8, 1}, RingParam{16, 2}, RingParam{64, 3},
                      RingParam{256, 4}, RingParam{32, 99}),
    [](const auto& info) {
      return "slots" + std::to_string(info.param.slots) + "seed" +
             std::to_string(info.param.seed);
    });

// --- Histogram property: percentile error stays within the sub-bucket
// bound across magnitudes. ---

class HistogramPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramPropertyTest, RelativeErrorBounded) {
  int64_t scale = GetParam();
  sim::Histogram h;
  sim::Rng rng(42);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(scale)));
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    int64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    int64_t approx = h.Percentile(q);
    if (exact > 256) {  // below the linear region everything is exact
      EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                  static_cast<double>(exact) * 0.05)
          << "q=" << q << " scale=" << scale;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramPropertyTest,
                         ::testing::Values(100, 10000, 1000000, 100000000));

// --- Bandwidth queue property: total transfer time is conserved (no work
// created or destroyed) for any arrival pattern. ---

TEST(BandwidthPropertyTest, WorkConservation) {
  sim::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    double rate = rng.Uniform(1.0, 50.0);
    sim::BandwidthQueue q(rate);
    uint64_t total_bytes = 0;
    Nanos now = 0;
    Nanos last_completion = 0;
    for (int i = 0; i < 100; ++i) {
      now += static_cast<Nanos>(rng.Exponential(200));
      uint64_t bytes = 64 + rng.UniformInt(uint64_t{8192});
      total_bytes += bytes;
      last_completion = q.Acquire(now, bytes);
    }
    // The link can never finish faster than total_bytes / rate.
    double min_time = static_cast<double>(total_bytes) / rate;
    EXPECT_GE(static_cast<double>(last_completion) + 100.0, min_time);
    // Monotone completions by construction.
    EXPECT_EQ(q.next_free(), last_completion);
  }
}

// --- Bin-packing invariant: resources never go negative and placed VM
// demand plus stranded capacity equals total capacity. ---

class PackingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackingPropertyTest, CapacityConservation) {
  strand::ClusterConfig config = strand::PooledSsdNicConfig(16, 4);
  auto catalog = strand::DefaultVmCatalog();
  strand::StrandingResult r = strand::PackCluster(config, catalog, GetParam());
  for (int res = 0; res < strand::kResourceCount; ++res) {
    EXPECT_GE(r.stranded[res], 0.0);
    EXPECT_LE(r.stranded[res], 1.0);
  }
  EXPECT_GT(r.vms_placed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingPropertyTest,
                         ::testing::Values(1, 2, 3, 50, 1234));

// --- Zipf property: rank frequencies are monotone non-increasing in
// expectation. ---

TEST(ZipfPropertyTest, MonotoneRankFrequencies) {
  sim::Rng rng(5);
  sim::ZipfGenerator zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Compare decile sums to tolerate sampling noise.
  for (int d = 0; d + 10 < 50; d += 10) {
    int head = 0;
    int tail = 0;
    for (int i = 0; i < 10; ++i) {
      head += counts[d + i];
      tail += counts[d + 10 + i];
    }
    EXPECT_GE(head, tail) << "decile " << d;
  }
}

}  // namespace
}  // namespace cxlpool
