#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace cxlpool {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such device");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such device");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such device");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::unordered_set<int> codes;
  for (Status s : {InvalidArgument(""), NotFound(""), AlreadyExists(""),
                   OutOfRange(""), ResourceExhausted(""), FailedPrecondition(""),
                   Unavailable(""), Internal(""), Unimplemented(""), Aborted(""),
                   DeadlineExceeded("")}) {
    EXPECT_FALSE(s.ok());
    codes.insert(static_cast<int>(s.code()));
  }
  EXPECT_EQ(codes.size(), 11u);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Unavailable("link down");
  EXPECT_EQ(os.str(), "UNAVAILABLE: link down");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int h, Half(x));
  ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> bad = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return OutOfRange("negative");
  }
  return OkStatus();
}

Status Chain(int x) {
  RETURN_IF_ERROR(FailIfNegative(x));
  RETURN_IF_ERROR(FailIfNegative(x - 10));
  return OkStatus();
}

TEST(StatusTest, ReturnIfError) {
  EXPECT_TRUE(Chain(15).ok());
  EXPECT_EQ(Chain(5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

TEST(IdsTest, InvalidByDefault) {
  HostId h;
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(h, HostId::Invalid());
}

TEST(IdsTest, DistinctTypesDoNotCompare) {
  HostId h(3);
  MhdId m(3);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.value(), m.value());  // values equal, types distinct
  static_assert(!std::is_same_v<HostId, MhdId>);
}

TEST(IdsTest, Hashable) {
  std::unordered_set<HostId> set;
  set.insert(HostId(1));
  set.insert(HostId(2));
  set.insert(HostId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdsTest, Ordering) {
  EXPECT_LT(HostId(1), HostId(2));
  EXPECT_FALSE(HostId(2) < HostId(1));
}

TEST(UnitsTest, CachelineMath) {
  EXPECT_EQ(CachelineFloor(0), 0u);
  EXPECT_EQ(CachelineFloor(63), 0u);
  EXPECT_EQ(CachelineFloor(64), 64u);
  EXPECT_EQ(CachelineCeil(1), 64u);
  EXPECT_EQ(CachelineCeil(64), 64u);
  EXPECT_EQ(CachelineCeil(65), 128u);
}

TEST(UnitsTest, CachelinesTouched) {
  EXPECT_EQ(CachelinesTouched(0, 0), 0u);
  EXPECT_EQ(CachelinesTouched(0, 1), 1u);
  EXPECT_EQ(CachelinesTouched(0, 64), 1u);
  EXPECT_EQ(CachelinesTouched(0, 65), 2u);
  EXPECT_EQ(CachelinesTouched(63, 2), 2u);    // straddles a boundary
  EXPECT_EQ(CachelinesTouched(60, 200), 5u);  // 60..260 -> lines 0..4
}

TEST(UnitsTest, RateConversions) {
  EXPECT_DOUBLE_EQ(GbPerSecToBytesPerNanos(30.0), 30.0);
  EXPECT_DOUBLE_EQ(GbitPerSecToBytesPerNanos(100.0), 12.5);
}

}  // namespace
}  // namespace cxlpool
