// Cross-module integration scenarios: whole-rack stories exercising the
// datapath, control plane, and failure handling together — the system-
// level behaviours the paper's design section promises.
#include <gtest/gtest.h>

#include <cstring>

#include "src/analysis/coherence_checker.h"
#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/task.h"
#include "src/stack/loadgen.h"
#include "src/stack/udp.h"

namespace cxlpool {
namespace {

using core::DeviceType;
using core::Rack;
using core::RackConfig;
using core::VirtualAccel;
using core::VirtualNic;
using core::VirtualSsd;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;
using stack::BufferPool;
using stack::Placement;
using stack::UdpSocket;
using stack::UdpStack;

struct Node {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> MakeNode(Rack& rack, HostId host, Node* out) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = true;
  auto handle = co_await rack.CreateVirtualNic(host, vc);
  CXLPOOL_CHECK(handle.ok());
  out->nic = std::move(*handle);
  auto pool =
      BufferPool::Create(rack.pod().host(host), Placement::kCxlPool, 256, 2048);
  CXLPOOL_CHECK(pool.ok());
  out->pool = std::move(*pool);
  out->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, UdpStack::Config{});
  CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
}

Task<> Echo(UdpSocket* sock, sim::EventLoop& loop, sim::StopToken& stop) {
  while (!stop.stopped()) {
    auto d = co_await sock->Recv(loop.now() + 30 * kMicrosecond);
    if (d.ok()) {
      (void)co_await sock->SendTo(d->src_mac, d->src_port, d->payload);
    }
  }
}

RackConfig MidRack(int hosts) {
  RackConfig rc;
  rc.pod.num_hosts = hosts;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  return rc;
}

class IntegrationTest : public ::testing::Test {
 protected:
  // Every scenario runs under the coherence race detector: the whole-rack
  // stories must never break the publish/consume protocol, even across
  // failover and device faults.
  void Watch(Rack& rack) { checker_.AttachTo(rack.pod()); }
  void Drain(Rack& rack) {
    rack.Shutdown();
    loop_.RunFor(500 * kMicrosecond);
    EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
    EXPECT_EQ(rack.pod().TotalLostDirtyLines(), 0u);
    // The rack is a test-body local and dies before the fixture; detach now
    // so the checker's destructor does not reach into a destroyed pod.
    checker_.Detach();
  }
  sim::EventLoop loop_;
  analysis::CoherenceChecker checker_;
};

// A NIC-less host borrows a neighbour's NIC end-to-end: UDP echo through
// a fully remote datapath (rings + buffers in pool, doorbells forwarded).
TEST_F(IntegrationTest, NiclessHostRunsUdpThroughPooledNic) {
  RackConfig rc = MidRack(3);
  rc.nics_per_host = 0;  // nobody has a NIC...
  Rack rack(loop_, rc);
  Watch(rack);
  // ... except hosts 0 and 1, attached manually.
  devices::Nic nic0(PcieDeviceId(100), "nic0", loop_, devices::NicConfig{});
  devices::Nic nic1(PcieDeviceId(101), "nic1", loop_, devices::NicConfig{});
  nic0.AttachTo(&rack.pod().host(0));
  nic1.AttachTo(&rack.pod().host(1));
  CXLPOOL_CHECK_OK(nic0.ConnectNetwork(&rack.network(), 0x500));
  CXLPOOL_CHECK_OK(nic1.ConnectNetwork(&rack.network(), 0x501));
  rack.orchestrator().RegisterDevice(HostId(0), &nic0, DeviceType::kNic);
  rack.orchestrator().RegisterDevice(HostId(1), &nic1, DeviceType::kNic);
  rack.Start();

  // Host 2 (no NIC!) acquires one; it must be remote.
  auto assignment = rack.orchestrator().Acquire(HostId(2), DeviceType::kNic);
  ASSERT_TRUE(assignment.ok());
  EXPECT_FALSE(assignment->local);

  auto setup = [](Rack& rack, PcieDeviceId dev, HostId user, netsim::MacAddr mac,
                  Node* out) -> Task<> {
    auto path = rack.orchestrator().MakeMmioPath(user, dev);
    CXLPOOL_CHECK_OK(path.status());
    VirtualNic::Config vc;
    vc.rings_in_cxl = true;
    auto vnic = co_await VirtualNic::Create(rack.pod().host(user),
                                            std::move(*path), vc);
    CXLPOOL_CHECK_OK(vnic.status());
    out->nic.vnic = std::move(*vnic);
    out->nic.mac = mac;
    auto pool = BufferPool::Create(rack.pod().host(user), Placement::kCxlPool,
                                   256, 2048);
    CXLPOOL_CHECK_OK(pool.status());
    out->pool = std::move(*pool);
    out->stack = std::make_unique<UdpStack>(rack.pod().host(user),
                                            out->nic.vnic.get(), out->pool.get(),
                                            mac, UdpStack::Config{});
    CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
  };

  Node remote_node;  // host 2 using the pooled NIC
  Node peer_node;    // host 1 using its local NIC
  RunBlocking(loop_, setup(rack, assignment->device, HostId(2),
                           assignment->device == nic0.id() ? 0x500 : 0x501,
                           &remote_node));
  PcieDeviceId other = assignment->device == nic0.id() ? nic1.id() : nic0.id();
  RunBlocking(loop_, setup(rack, other, HostId(1),
                           other == nic0.id() ? 0x500 : 0x501, &peer_node));

  auto* srv = peer_node.stack->Bind(7).value();
  auto* cli = remote_node.stack->Bind(9).value();
  Spawn(Echo(srv, loop_, rack.stop_token()));

  std::string got;
  auto t = [](UdpSocket* sock, netsim::MacAddr dst, sim::EventLoop& loop,
              std::string& out) -> Task<> {
    const char msg[] = "borrowed NIC";
    std::vector<std::byte> m(sizeof(msg));
    std::memcpy(m.data(), msg, sizeof(msg));
    CXLPOOL_CHECK_OK(co_await sock->SendTo(dst, 7, m));
    auto reply = co_await sock->Recv(loop.now() + 20 * kMillisecond);
    CXLPOOL_CHECK(reply.ok());
    out = reinterpret_cast<const char*>(reply->payload.data());
  };
  RunBlocking(loop_, t(cli, peer_node.nic.mac, loop_, got));
  EXPECT_EQ(got, "borrowed NIC");
  // Doorbells really crossed the forwarding channel.
  HostId home = rack.orchestrator().record(assignment->device)->home;
  EXPECT_GT(rack.orchestrator().agent(home)->stats().forwarded_writes, 5u);
  Drain(rack);
}

// Failover under live traffic: echoes resume on the replacement NIC.
TEST_F(IntegrationTest, FailoverRestoresTrafficWithinAMillisecond) {
  Rack rack(loop_, MidRack(3));
  Watch(rack);
  rack.Start();
  Node server;
  Node client;
  RunBlocking(loop_, MakeNode(rack, HostId(1), &server));
  RunBlocking(loop_, MakeNode(rack, HostId(2), &client));
  netsim::MacAddr server_mac = server.nic.mac;
  auto* srv = server.stack->Bind(7).value();
  auto* cli = client.stack->Bind(9).value();
  Spawn(Echo(srv, loop_, rack.stop_token()));

  rack.orchestrator().agent(HostId(1))->SetMigrationHandler(
      [&](PcieDeviceId old_dev, PcieDeviceId new_dev, HostId) -> Task<> {
        auto path = rack.orchestrator().MakeMmioPath(HostId(1), new_dev);
        CXLPOOL_CHECK_OK(path.status());
        CXLPOOL_CHECK_OK(co_await server.stack->HandleMigration(std::move(*path)));
        rack.nic(old_dev)->DisconnectNetwork();
        CXLPOOL_CHECK_OK(rack.network().Attach(server_mac, rack.nic(new_dev)));
      });

  int before = 0;
  int after = 0;
  Nanos fail_at = 500 * kMicrosecond;
  Spawn([](UdpSocket* s, netsim::MacAddr dst, sim::EventLoop& l,
           sim::StopToken& st, int& b, int& a, Nanos failure) -> Task<> {
    std::vector<std::byte> ping(32, std::byte{7});
    while (!st.stopped()) {
      if ((co_await s->SendTo(dst, 7, ping)).ok()) {
        auto r = co_await s->Recv(l.now() + 60 * kMicrosecond);
        if (r.ok()) {
          (l.now() < failure ? b : a)++;
        }
      }
      co_await sim::Delay(l, 50 * kMicrosecond);
    }
  }(cli, server_mac, loop_, rack.stop_token(), before, after, fail_at));

  loop_.RunUntil(fail_at);
  rack.nic(1)->InjectLinkFailure();
  loop_.RunUntil(fail_at + 2 * kMillisecond);
  EXPECT_GT(before, 3);
  EXPECT_GT(after, 10);  // traffic resumed well within the window
  EXPECT_EQ(rack.orchestrator().stats().failovers, 1u);
  Drain(rack);
}

// The whole device zoo on one rack at once: UDP echo + SSD I/O + offload
// jobs sharing the same pool, channels, and orchestrator.
TEST_F(IntegrationTest, MixedDeviceWorkloadsCoexist) {
  RackConfig rc = MidRack(4);
  rc.ssds_per_host = 1;
  rc.accels = 1;
  Rack rack(loop_, rc);
  Watch(rack);
  rack.Start();

  Node server;
  Node client;
  RunBlocking(loop_, MakeNode(rack, HostId(0), &server));
  RunBlocking(loop_, MakeNode(rack, HostId(1), &client));
  auto* srv = server.stack->Bind(7).value();
  auto* cli = client.stack->Bind(9).value();
  Spawn(Echo(srv, loop_, rack.stop_token()));

  auto scenario = [](Rack& rack, UdpSocket* cli, netsim::MacAddr dst) -> Task<bool> {
    sim::EventLoop& loop = rack.loop();
    // SSD from host 2 (remote), accel from host 3 (remote), UDP from host 1.
    auto ssd_lease = rack.AcquireDevice(HostId(2), DeviceType::kSsd);
    CXLPOOL_CHECK_OK(ssd_lease.status());
    auto ssd = co_await VirtualSsd::Create(rack.pod().host(2),
                                           std::move(ssd_lease->mmio), {});
    CXLPOOL_CHECK_OK(ssd.status());

    auto accel_lease = rack.AcquireDevice(HostId(3), DeviceType::kAccel);
    CXLPOOL_CHECK_OK(accel_lease.status());
    auto qp = rack.accel(0)->AllocateQueuePair();
    CXLPOOL_CHECK_OK(qp.status());
    auto accel = co_await VirtualAccel::Create(rack.pod().host(3),
                                               std::move(accel_lease->mmio), {},
                                               *qp);
    CXLPOOL_CHECK_OK(accel.status());

    auto seg = rack.pod().pool().Allocate(256 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());

    // Interleave all three workloads.
    bool ssd_ok = false;
    bool accel_ok = false;
    bool udp_ok = false;
    for (int round = 0; round < 3; ++round) {
      std::vector<std::byte> block(devices::kSsdSectorSize * 8,
                                   std::byte{static_cast<uint8_t>(round)});
      CXLPOOL_CHECK_OK(co_await rack.pod().host(2).StoreNt(seg->base, block));
      auto w = co_await (*ssd)->WriteBlocks(round * 8, 8, seg->base,
                                            loop.now() + kSecond);
      ssd_ok = w.ok() && *w == devices::kSsdStatusOk;

      auto j = co_await (*accel)->RunJob(seg->base, 4096, seg->base + 128 * kKiB,
                                         loop.now() + kSecond);
      accel_ok = j.ok() && *j == 0;

      std::vector<std::byte> ping(64, std::byte{9});
      CXLPOOL_CHECK_OK(co_await cli->SendTo(dst, 7, ping));
      auto r = co_await cli->Recv(loop.now() + 10 * kMillisecond);
      udp_ok = r.ok();
      if (!ssd_ok || !accel_ok || !udp_ok) {
        co_return false;
      }
    }
    co_return true;
  };
  EXPECT_TRUE(RunBlocking(loop_, scenario(rack, cli, server.nic.mac)));
  Drain(rack);
}

// MHD failure mid-run: accesses to segments on the failed device error
// out, the rest of the pool keeps working, and repair restores access.
TEST_F(IntegrationTest, MhdFailureIsContainedAndRecoverable) {
  Rack rack(loop_, MidRack(2));
  Watch(rack);
  rack.Start();
  auto seg0 = rack.pod().pool().Allocate(4096, MhdId(0));
  auto seg1 = rack.pod().pool().Allocate(4096, MhdId(1));
  ASSERT_TRUE(seg0.ok() && seg1.ok());

  // Probe uncached lines each time: a cache hit legitimately still
  // returns data after the MHD dies (nothing re-fetches), so the failure
  // is only observable on lines that miss.
  auto probe = [](Rack& rack, uint64_t addr) -> Task<Status> {
    std::array<std::byte, 64> buf;
    CO_RETURN_IF_ERROR(co_await rack.pod().host(0).Invalidate(addr, 64));
    co_return co_await rack.pod().host(0).Load(addr, buf);
  };
  EXPECT_TRUE(RunBlocking(loop_, probe(rack, seg0->base)).ok());
  rack.pod().FailMhd(MhdId(0));
  EXPECT_EQ(RunBlocking(loop_, probe(rack, seg0->base)).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(RunBlocking(loop_, probe(rack, seg1->base)).ok());  // contained
  rack.pod().RepairMhd(MhdId(0));
  EXPECT_TRUE(RunBlocking(loop_, probe(rack, seg0->base)).ok());
  Drain(rack);
}

// Moderate load through the full stack does not lose datagrams.
TEST_F(IntegrationTest, LoadedEchoConservesPackets) {
  Rack rack(loop_, MidRack(2));
  Watch(rack);
  rack.Start();
  Node server;
  Node client;
  RunBlocking(loop_, MakeNode(rack, HostId(0), &server));
  RunBlocking(loop_, MakeNode(rack, HostId(1), &client));
  auto* srv = server.stack->Bind(7).value();
  auto* cli = client.stack->Bind(9).value();
  Spawn(Echo(srv, loop_, rack.stop_token()));

  stack::LoadGenConfig lg;
  lg.offered_pps = 100000;
  lg.payload_bytes = 256;
  lg.duration = 5 * kMillisecond;
  lg.warmup = kMillisecond;
  lg.max_outstanding = 64;
  obs::Registry registry;
  RunBlocking(loop_, stack::RunUdpLoad(cli, server.nic.mac, 7, lg, registry));
  uint64_t sent = registry.FindCounter("udp.sent")->value();
  uint64_t received = registry.FindCounter("udp.received")->value();
  EXPECT_GT(sent, 400u);
  EXPECT_EQ(received, sent);  // no loss at 20% load
  EXPECT_EQ(registry.FindCounter("udp.overload_skipped")->value(), 0u);
  Drain(rack);
}

}  // namespace
}  // namespace cxlpool
