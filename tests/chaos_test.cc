// Robustness tests for the host-crash fault model: liveness-driven death
// declaration, lease revocation + failover, epoch fencing of stale MMIO
// paths, and bit-for-bit reproducibility of a seeded chaos scenario.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/chaos.h"
#include "src/sim/task.h"

namespace cxlpool::core {
namespace {

using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

// A register-file device for MMIO path tests.
class DummyDevice : public pcie::PcieDevice {
 public:
  DummyDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "dummy", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override { regs[reg] = value; }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
};

Task<Status> WriteReg(MmioPath& path, uint64_t value) {
  co_return co_await path.Write(0x10, value);
}

// End-state fingerprint: chaos trace digest + orchestrator counters +
// full lease layout + the loop's executed-event count. Any cross-run
// divergence in timing, ordering, or outcome changes it.
std::string Fingerprint(const sim::ChaosInjector& chaos,
                        const Orchestrator& orch, const sim::EventLoop& loop) {
  const Orchestrator::Stats& s = orch.stats();
  std::string fp = chaos.TraceDigest();
  fp += " acquires=" + std::to_string(s.acquires) +
        " failovers=" + std::to_string(s.failovers) +
        " deaths=" + std::to_string(s.host_deaths) +
        " rereg=" + std::to_string(s.host_reregistrations) +
        " revoked=" + std::to_string(s.leases_revoked) +
        " abandoned=" + std::to_string(s.abandoned_migrations);
  for (const auto& [id, rec] : orch.devices()) {
    fp += " d" + std::to_string(id.value()) + "=[";
    for (HostId lessee : rec.lessees) {
      fp += std::to_string(lessee.value()) + ",";
    }
    fp += "]e" + std::to_string(rec.epoch) + (rec.healthy ? "h" : "u");
  }
  fp += " events=" + std::to_string(loop.executed());
  return fp;
}

// The acceptance scenario: host 1 crashes mid-traffic on a seeded chaos
// schedule. Within liveness_timeout + rebalance_interval the orchestrator
// must declare it dead, revoke its leases, fail over leases on its home
// devices, and keep serving Acquires; repair must re-register it cleanly.
// Returns the run fingerprint so the caller can assert reproducibility.
std::string RunHostCrashScenario() {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 4;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 1;
  rc.orchestrator_home = 2;  // the orchestrator host never crashes here
  // Short forwarded-path deadline so a write into the crash window times
  // out before the 3 ms repair instead of racing the server restart.
  rc.orch.rpc_timeout = 300 * kMicrosecond;
  Rack rack(loop, rc);

  DummyDevice accel_on_crashed(PcieDeviceId(50), loop);
  accel_on_crashed.AttachTo(&rack.pod().host(1));
  DummyDevice accel_survivor(PcieDeviceId(51), loop);
  accel_survivor.AttachTo(&rack.pod().host(3));
  Orchestrator& orch = rack.orchestrator();
  orch.RegisterDevice(HostId(1), &accel_on_crashed, DeviceType::kAccel,
                      [] { return 0.0; });
  orch.RegisterDevice(HostId(3), &accel_survivor, DeviceType::kAccel,
                      [] { return 0.1; });
  rack.Start();

  // Pre-crash leases: host 2 holds the accel homed on host 1 (forwarded
  // MMIO path), host 1 holds its own NIC.
  auto accel = orch.Acquire(HostId(2), DeviceType::kAccel);
  CXLPOOL_CHECK(accel.ok());
  CXLPOOL_CHECK(accel->device == PcieDeviceId(50));
  auto path = orch.MakeMmioPath(HostId(2), PcieDeviceId(50));
  CXLPOOL_CHECK(path.ok());
  auto nic = orch.Acquire(HostId(1), DeviceType::kNic);
  CXLPOOL_CHECK(nic.ok());
  const PcieDeviceId nic_of_crashed = nic->device;
  CXLPOOL_CHECK_OK(RunBlocking(loop, WriteReg(**path, 1)));
  EXPECT_EQ(accel_on_crashed.regs[0x10], 1u);

  cxl::CxlPod& pod = rack.pod();
  sim::ChaosInjector::Options copts;
  copts.seed = 7;
  sim::ChaosInjector chaos(loop, copts);
  chaos.AddFault("host1-crash", [&pod] { pod.FailHost(HostId(1)); },
                 [&pod] { pod.RepairHost(HostId(1)); });
  chaos.AddInvariant("no-lease-held-by-dead-host", [&orch]() -> std::string {
    for (const auto& [id, rec] : orch.devices()) {
      for (HostId lessee : rec.lessees) {
        if (!orch.agent_alive(lessee)) {
          return "device " + std::to_string(id.value()) +
                 " leased by dead host " + std::to_string(lessee.value());
        }
      }
    }
    return "";
  });
  chaos.AddInvariant("dead-home-implies-unhealthy", [&orch]() -> std::string {
    for (const auto& [id, rec] : orch.devices()) {
      if (rec.healthy && !orch.agent_alive(rec.home)) {
        return "device " + std::to_string(id.value()) +
               " healthy but home host is dead";
      }
    }
    return "";
  });
  chaos.SetRecoveryProbe([&orch, &pod]() -> bool {
    for (const auto& [id, rec] : orch.devices()) {
      if ((!rec.healthy || pod.HostCrashed(rec.home)) && !rec.lessees.empty()) {
        return false;
      }
    }
    auto a = orch.Acquire(HostId(0), DeviceType::kNic);
    if (!a.ok()) {
      return false;
    }
    (void)orch.Release(HostId(0), a->device);
    return true;
  });
  chaos.ScheduleFail(kMillisecond, 0, 2 * kMillisecond);  // repair at 3 ms
  chaos.Start(rack.stop_token());

  // Crash at 1 ms; liveness_timeout (300 µs) + sweep period + failover RPCs
  // all fit well inside the 600 µs budget checked here.
  loop.RunUntil(kMillisecond + 600 * kMicrosecond);
  EXPECT_FALSE(orch.agent_alive(HostId(1)));
  EXPECT_EQ(orch.stats().host_deaths, 1u);

  // Home devices of the dead host are unhealthy; the accel lease failed
  // over to the survivor and the epoch advanced past the old path's.
  const Orchestrator::DeviceRecord* crashed_rec =
      orch.record(PcieDeviceId(50));
  CXLPOOL_CHECK(crashed_rec != nullptr);
  EXPECT_FALSE(crashed_rec->healthy);
  EXPECT_TRUE(crashed_rec->lessees.empty());
  EXPECT_EQ(crashed_rec->epoch, 1u);
  const Orchestrator::DeviceRecord* survivor_rec =
      orch.record(PcieDeviceId(51));
  CXLPOOL_CHECK(survivor_rec != nullptr);
  CXLPOOL_CHECK(survivor_rec->lessees.size() == 1);
  EXPECT_EQ(survivor_rec->lessees[0], HostId(2));
  EXPECT_GE(orch.stats().failovers, 1u);

  // The dead host's own NIC lease was revoked...
  const Orchestrator::DeviceRecord* nic_rec = orch.record(nic_of_crashed);
  CXLPOOL_CHECK(nic_rec != nullptr);
  EXPECT_TRUE(nic_rec->lessees.empty());
  EXPECT_GE(orch.stats().leases_revoked, 1u);
  // ...and it cannot acquire anything while dead.
  EXPECT_EQ(orch.Acquire(HostId(1), DeviceType::kNic).status().code(),
            StatusCode::kFailedPrecondition);
  // Live hosts keep being served.
  auto live = orch.Acquire(HostId(0), DeviceType::kAccel);
  CXLPOOL_CHECK(live.ok());
  EXPECT_EQ(live->device, PcieDeviceId(51));
  CXLPOOL_CHECK_OK(orch.Release(HostId(0), live->device));
  // A write on the pre-crash forwarded path cannot silently succeed while
  // its home host is down.
  EXPECT_FALSE(RunBlocking(loop, WriteReg(**path, 2)).ok());

  // Repair fires at 3 ms; the next report re-registers the host and
  // resyncs device epochs to its agent.
  loop.RunUntil(4500 * kMicrosecond);
  EXPECT_TRUE(orch.agent_alive(HostId(1)));
  EXPECT_EQ(orch.stats().host_reregistrations, 1u);
  EXPECT_TRUE(orch.record(PcieDeviceId(50))->healthy);
  EXPECT_TRUE(orch.record(nic_of_crashed)->healthy);
  EXPECT_EQ(orch.agent(HostId(1))->device_epoch(PcieDeviceId(50)), 1u);
  // The stale path is now fenced by the epoch bump, not just unreachable.
  EXPECT_EQ(RunBlocking(loop, WriteReg(**path, 3)).code(),
            StatusCode::kAborted);
  EXPECT_GE(orch.agent(HostId(1))->stats().stale_epoch_rejects, 1u);
  // The re-registered host is a full citizen again.
  auto back = orch.Acquire(HostId(1), DeviceType::kNic);
  EXPECT_TRUE(back.ok());

  EXPECT_EQ(chaos.injections(), 1u);
  EXPECT_EQ(chaos.recoveries(), 1u);
  EXPECT_EQ(chaos.violations(), 0u);
  EXPECT_GT(chaos.mttr().max(), 0);

  std::string fp = Fingerprint(chaos, orch, loop);
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
  return fp;
}

TEST(ChaosTest, HostCrashFailoverWithinBudgetAndDeterministic) {
  std::string first = RunHostCrashScenario();
  std::string second = RunHostCrashScenario();
  EXPECT_FALSE(first.empty());
  // Bit-for-bit reproducibility: same seed, same trace, same end state,
  // same number of executed events.
  EXPECT_EQ(first, second);
}

// A lease migrated away by rebalancing bumps the device epoch when the
// device drains, so an MMIO path built under the old lease is rejected
// with kAborted at the home agent instead of touching the device.
TEST(ChaosTest, StaleMmioPathAbortsAfterRebalance) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 3;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 1;
  Rack rack(loop, rc);

  DummyDevice hot(PcieDeviceId(60), loop);
  hot.AttachTo(&rack.pod().host(1));
  DummyDevice cold(PcieDeviceId(61), loop);
  cold.AttachTo(&rack.pod().host(2));
  Orchestrator& orch = rack.orchestrator();
  orch.RegisterDevice(HostId(1), &hot, DeviceType::kAccel, [] { return 0.9; });
  orch.RegisterDevice(HostId(2), &cold, DeviceType::kAccel, [] { return 0.1; });
  rack.Start();

  // Acquire before any report lands: both utilizations read 0, so host 0
  // gets the lower-numbered (soon to be hot) device.
  auto lease = orch.Acquire(HostId(0), DeviceType::kAccel);
  ASSERT_TRUE(lease.ok());
  ASSERT_EQ(lease->device, PcieDeviceId(60));
  auto path = orch.MakeMmioPath(HostId(0), PcieDeviceId(60));
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE((*path)->is_remote());
  EXPECT_TRUE(RunBlocking(loop, WriteReg(**path, 1)).ok());

  // Reports land (hot=0.9 > overload threshold, cold=0.1); a rebalance
  // scan drains the hot device's single lease to the cold one.
  loop.RunFor(100 * kMicrosecond);
  RunBlocking(loop, orch.RebalanceOnce());
  loop.RunFor(100 * kMicrosecond);
  EXPECT_EQ(orch.stats().rebalances, 1u);
  EXPECT_TRUE(orch.record(PcieDeviceId(60))->lessees.empty());
  ASSERT_EQ(orch.record(PcieDeviceId(61))->lessees.size(), 1u);
  EXPECT_EQ(orch.record(PcieDeviceId(61))->lessees[0], HostId(0));

  // The drain bumped the epoch and pushed it to the (alive) home agent.
  EXPECT_EQ(orch.record(PcieDeviceId(60))->epoch, 1u);
  EXPECT_EQ(orch.agent(HostId(1))->device_epoch(PcieDeviceId(60)), 1u);

  // The old path carries epoch 0: fenced off at the home agent.
  EXPECT_EQ(RunBlocking(loop, WriteReg(**path, 2)).code(),
            StatusCode::kAborted);
  EXPECT_GE(orch.agent(HostId(1))->stats().stale_epoch_rejects, 1u);
  EXPECT_EQ(hot.regs[0x10], 1u);  // the fenced write never landed

  // A path built under the new lease works.
  auto fresh = orch.MakeMmioPath(HostId(0), PcieDeviceId(61));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(RunBlocking(loop, WriteReg(**fresh, 7)).ok());
  EXPECT_EQ(cold.regs[0x10], 7u);

  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

}  // namespace
}  // namespace cxlpool::core
