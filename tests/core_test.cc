#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/random.h"
#include "src/sim/task.h"

namespace cxlpool::core {
namespace {

using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

// A register-file device for MMIO path tests.
class DummyDevice : public pcie::PcieDevice {
 public:
  DummyDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "dummy", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override { regs[reg] = value; }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
};

RackConfig SmallRack(int hosts = 3, int nics_per_host = 1) {
  RackConfig rc;
  rc.pod.num_hosts = hosts;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = nics_per_host;
  return rc;
}

class CoreTest : public ::testing::Test {
 protected:
  void Drain() {
    rack_->Shutdown();
    loop_.RunFor(200 * kMicrosecond);
  }

  sim::EventLoop loop_;
  std::unique_ptr<Rack> rack_;
};

// --- MMIO forwarding ---

TEST_F(CoreTest, ForwardedMmioReachesDevice) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  DummyDevice dev(PcieDeviceId(77), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto path = rack_->orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(77));
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE((*path)->is_remote());

  auto t = [](MmioPath& p) -> Task<uint64_t> {
    CXLPOOL_CHECK_OK(co_await p.Write(0x10, 0xabcd));
    auto v = co_await p.Read(0x10);
    CXLPOOL_CHECK(v.ok());
    co_return *v;
  };
  EXPECT_EQ(RunBlocking(loop_, t(**path)), 0xabcdu);
  EXPECT_EQ(dev.regs[0x10], 0xabcdu);
  EXPECT_GE(rack_->orchestrator().agent(HostId(0))->stats().forwarded_writes, 1u);
  Drain();
}

TEST_F(CoreTest, LocalMmioPathIsDirect) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  DummyDevice dev(PcieDeviceId(77), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto path = rack_->orchestrator().MakeMmioPath(HostId(0), PcieDeviceId(77));
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE((*path)->is_remote());
  Drain();
}

TEST_F(CoreTest, RemoteMmioCostsMoreThanLocal) {
  // E8's claim in miniature: a forwarded doorbell costs a channel RTT on
  // top of the local MMIO write.
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  DummyDevice dev(PcieDeviceId(77), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto local = rack_->orchestrator().MakeMmioPath(HostId(0), PcieDeviceId(77));
  auto remote = rack_->orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(77));
  ASSERT_TRUE(local.ok() && remote.ok());

  auto timed_write = [](sim::EventLoop& loop, MmioPath& p) -> Task<Nanos> {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await p.Write(0x8, 1));
    co_return loop.now() - start;
  };
  Nanos t_local = RunBlocking(loop_, timed_write(loop_, **local));
  Nanos t_remote = RunBlocking(loop_, timed_write(loop_, **remote));
  // A forwarded doorbell pays one shared-memory channel round trip (two
  // sub-microsecond ring traversals) on top of the local MMIO write.
  EXPECT_GE(t_remote, t_local + 700);
  EXPECT_LT(t_remote, 10 * kMicrosecond);
  Drain();
}

// --- VirtualNic datapath ---

struct EchoPair {
  Rack::VirtualNicHandle a;
  Rack::VirtualNicHandle b;
  cxl::PoolSegment buffers;
};

Task<EchoPair> SetupPair(Rack& rack, bool rings_in_cxl) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = rings_in_cxl;
  vc.rx_doorbell_batch = 1;
  auto a = co_await rack.CreateVirtualNic(HostId(0), vc);
  CXLPOOL_CHECK(a.ok());
  auto b = co_await rack.CreateVirtualNic(HostId(1), vc);
  CXLPOOL_CHECK(b.ok());
  EchoPair pair{std::move(*a), std::move(*b), {}};
  auto seg = rack.pod().pool().Allocate(1 * kMiB);
  CXLPOOL_CHECK(seg.ok());
  pair.buffers = *seg;
  co_return pair;
}

TEST_F(CoreTest, FrameDeliveryLocalNics) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  rack_->Start();

  auto t = [](Rack& rack) -> Task<std::string> {
    EchoPair pair = co_await SetupPair(rack, /*rings_in_cxl=*/true);
    cxl::HostAdapter& host_a = rack.pod().host(0);
    cxl::HostAdapter& host_b = rack.pod().host(1);

    // Receiver posts a buffer.
    uint64_t rx_buf = pair.buffers.base;
    CXLPOOL_CHECK_OK(co_await pair.b.vnic->PostRxBuffer(rx_buf, 2048));
    CXLPOOL_CHECK_OK(co_await pair.b.vnic->FlushRxDoorbell());

    // Sender publishes a payload and transmits.
    uint64_t tx_buf = pair.buffers.base + 4096;
    const char msg[] = "over the wire";
    std::vector<std::byte> payload(sizeof(msg));
    std::memcpy(payload.data(), msg, sizeof(msg));
    CXLPOOL_CHECK_OK(co_await host_a.StoreNt(tx_buf, payload));
    CXLPOOL_CHECK_OK(co_await pair.a.vnic->SendFrame(pair.b.mac, tx_buf,
                                                     sizeof(msg)));

    auto ev = co_await pair.b.vnic->PollRx(rack.loop().now() + kMillisecond);
    CXLPOOL_CHECK(ev.ok());
    CXLPOOL_CHECK(ev->len == sizeof(msg));
    std::vector<std::byte> got(ev->len);
    CXLPOOL_CHECK_OK(co_await host_b.Invalidate(ev->buf_addr, ev->len));
    CXLPOOL_CHECK_OK(co_await host_b.Load(ev->buf_addr, got));
    co_return std::string(reinterpret_cast<const char*>(got.data()));
  };
  EXPECT_EQ(RunBlocking(loop_, t(*rack_)), "over the wire");
  Drain();
}

TEST_F(CoreTest, RemoteNicDatapathWorks) {
  // Host 2 has no NIC of its own (0 per host beyond hosts 0/1 would be
  // cleaner, but simplest: host 2 acquires after its local NIC is leased
  // out is complex — instead build a rack where only hosts 0 and 1 have
  // NICs by giving the rack 2 NIC-hosts and 1 NIC-less host).
  RackConfig rc = SmallRack(/*hosts=*/2, /*nics_per_host=*/1);
  rc.pod.num_hosts = 3;
  rack_ = std::make_unique<Rack>(loop_, rc);
  // Rack attached one NIC per host for all 3 hosts with nics_per_host=1;
  // force host 2's NIC to be heavily "utilized" is intricate — simply
  // verify the forwarded path by acquiring host 0's NIC explicitly.
  rack_->Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<bool> {
    // Build a vNIC on host 2 explicitly bound to host 0's NIC (device 0).
    auto mmio = rack.orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(0));
    CXLPOOL_CHECK(mmio.ok());
    VirtualNic::Config vc;
    vc.rings_in_cxl = true;  // required: host 2 cannot offer its DRAM to NIC 0
    vc.rx_doorbell_batch = 1;
    auto vnic = co_await VirtualNic::Create(rack.pod().host(2), std::move(*mmio), vc);
    CXLPOOL_CHECK(vnic.ok());

    // Receiver on host 1 with its local NIC (device 1).
    auto rx_mmio = rack.orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(1));
    CXLPOOL_CHECK(rx_mmio.ok());
    auto rx_vnic =
        co_await VirtualNic::Create(rack.pod().host(1), std::move(*rx_mmio), vc);
    CXLPOOL_CHECK(rx_vnic.ok());

    auto seg = rack.pod().pool().Allocate(64 * kKiB);
    CXLPOOL_CHECK(seg.ok());
    CXLPOOL_CHECK_OK(co_await (*rx_vnic)->PostRxBuffer(seg->base, 2048));
    CXLPOOL_CHECK_OK(co_await (*rx_vnic)->FlushRxDoorbell());

    uint64_t tx_buf = seg->base + 4096;
    std::vector<std::byte> payload(100, std::byte{0x42});
    CXLPOOL_CHECK_OK(co_await rack.pod().host(2).StoreNt(tx_buf, payload));
    // The doorbell inside SendFrame travels over the forwarding channel.
    CXLPOOL_CHECK_OK(co_await (*vnic)->SendFrame(rack.nic(1)->mac(), tx_buf, 100));

    auto ev = co_await (*rx_vnic)->PollRx(loop.now() + kMillisecond);
    CXLPOOL_CHECK(ev.ok());
    std::vector<std::byte> got(ev->len);
    CXLPOOL_CHECK_OK(co_await rack.pod().host(1).Invalidate(ev->buf_addr, ev->len));
    CXLPOOL_CHECK_OK(co_await rack.pod().host(1).Load(ev->buf_addr, got));
    co_return got.size() == 100 && got[0] == std::byte{0x42};
  };
  EXPECT_TRUE(RunBlocking(loop_, t(*rack_, loop_)));
  // The remote host's doorbells were executed by host 0's agent.
  EXPECT_GE(rack_->orchestrator().agent(HostId(0))->stats().forwarded_writes, 8u);
  Drain();
}

// --- VirtualSsd ---

TEST_F(CoreTest, SsdWriteReadRoundTrip) {
  RackConfig rc = SmallRack(2);
  rc.ssds_per_host = 1;
  rack_ = std::make_unique<Rack>(loop_, rc);
  rack_->Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<bool> {
    auto lease = rack.AcquireDevice(HostId(0), DeviceType::kSsd);
    CXLPOOL_CHECK(lease.ok());
    VirtualSsd::Config sc;
    sc.rings_in_cxl = true;
    auto ssd = co_await VirtualSsd::Create(rack.pod().host(0),
                                           std::move(lease->mmio), sc);
    CXLPOOL_CHECK(ssd.ok());

    auto seg = rack.pod().pool().Allocate(64 * kKiB);
    CXLPOOL_CHECK(seg.ok());
    uint64_t buf = seg->base;
    std::vector<std::byte> data(4 * devices::kSsdSectorSize);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = std::byte{static_cast<uint8_t>(i * 13)};
    }
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).StoreNt(buf, data));

    auto wst = co_await (*ssd)->WriteBlocks(8, 4, buf, loop.now() + kSecond);
    CXLPOOL_CHECK(wst.ok());
    CXLPOOL_CHECK(*wst == devices::kSsdStatusOk);

    // Read back into a different buffer.
    uint64_t buf2 = seg->base + 8 * kKiB;
    auto rst = co_await (*ssd)->ReadBlocks(8, 4, buf2, loop.now() + kSecond);
    CXLPOOL_CHECK(rst.ok());
    CXLPOOL_CHECK(*rst == devices::kSsdStatusOk);

    std::vector<std::byte> got(data.size());
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).Invalidate(buf2, got.size()));
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).Load(buf2, got));
    co_return std::memcmp(got.data(), data.data(), data.size()) == 0;
  };
  EXPECT_TRUE(RunBlocking(loop_, t(*rack_, loop_)));
  Drain();
}

TEST_F(CoreTest, SsdRejectsBadLba) {
  RackConfig rc = SmallRack(2);
  rc.ssds_per_host = 1;
  rack_ = std::make_unique<Rack>(loop_, rc);
  rack_->Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<uint16_t> {
    auto lease = rack.AcquireDevice(HostId(0), DeviceType::kSsd);
    CXLPOOL_CHECK(lease.ok());
    auto ssd = co_await VirtualSsd::Create(rack.pod().host(0),
                                           std::move(lease->mmio), {});
    CXLPOOL_CHECK(ssd.ok());
    auto seg = rack.pod().pool().Allocate(4 * kKiB);
    auto st = co_await (*ssd)->ReadBlocks(1u << 30, 4, seg->base,
                                          loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok());
    co_return *st;
  };
  EXPECT_EQ(RunBlocking(loop_, t(*rack_, loop_)), devices::kSsdStatusLbaOutOfRange);
  Drain();
}

// --- VirtualAccel ---

TEST_F(CoreTest, AcceleratorTransformsData) {
  RackConfig rc = SmallRack(3);
  rc.accels = 1;
  rc.accel_home = 0;
  rack_ = std::make_unique<Rack>(loop_, rc);
  rack_->Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<bool> {
    // Host 2 uses the accelerator that lives on host 0 (disaggregation).
    auto lease = rack.AcquireDevice(HostId(2), DeviceType::kAccel);
    CXLPOOL_CHECK(lease.ok());
    CXLPOOL_CHECK(lease->assignment.home == HostId(0));
    auto accel = co_await VirtualAccel::Create(rack.pod().host(2),
                                               std::move(lease->mmio), {});
    CXLPOOL_CHECK(accel.ok());

    auto seg = rack.pod().pool().Allocate(64 * kKiB);
    std::vector<std::byte> input(1000);
    for (size_t i = 0; i < input.size(); ++i) {
      input[i] = std::byte{static_cast<uint8_t>(i)};
    }
    CXLPOOL_CHECK_OK(co_await rack.pod().host(2).StoreNt(seg->base, input));
    uint64_t out_addr = seg->base + 8 * kKiB;
    auto st = co_await (*accel)->RunJob(seg->base, 1000, out_addr,
                                        loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok());
    CXLPOOL_CHECK(*st == 0);

    std::vector<std::byte> output(1000);
    CXLPOOL_CHECK_OK(co_await rack.pod().host(2).Invalidate(out_addr, 1000));
    CXLPOOL_CHECK_OK(co_await rack.pod().host(2).Load(out_addr, output));
    for (size_t i = 0; i < output.size(); ++i) {
      if (output[i] != (input[i] ^ std::byte{0x5a})) {
        co_return false;
      }
    }
    co_return true;
  };
  EXPECT_TRUE(RunBlocking(loop_, t(*rack_, loop_)));
  Drain();
}

// --- Orchestrator policy ---

TEST_F(CoreTest, AcquirePrefersLocalDevice) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack(3));
  rack_->Start();
  auto a = rack_->orchestrator().Acquire(HostId(1), DeviceType::kNic);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->home, HostId(1));
  EXPECT_TRUE(a->local);
  EXPECT_EQ(rack_->orchestrator().stats().local_hits, 1u);
  Drain();
}

TEST_F(CoreTest, AcquireFallsBackToLeastUtilized) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack(3));
  rack_->Start();
  // Break host 1's local NIC; acquisition must go remote.
  rack_->nic(1)->InjectFailure();
  loop_.RunFor(100 * kMicrosecond);  // let the agent report it unhealthy
  auto a = rack_->orchestrator().Acquire(HostId(1), DeviceType::kNic);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a->home, HostId(1));
  EXPECT_FALSE(a->local);
  Drain();
}

TEST_F(CoreTest, AcquireFailsWhenNoDevices) {
  RackConfig rc = SmallRack(2);
  rc.ssds_per_host = 0;
  rack_ = std::make_unique<Rack>(loop_, rc);
  rack_->Start();
  auto a = rack_->orchestrator().Acquire(HostId(0), DeviceType::kSsd);
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
  Drain();
}

TEST_F(CoreTest, ReleaseReturnsLease) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack(2));
  rack_->Start();
  auto a = rack_->orchestrator().Acquire(HostId(0), DeviceType::kNic);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(rack_->orchestrator().record(a->device)->lessees.size(), 1u);
  EXPECT_TRUE(rack_->orchestrator().Release(HostId(0), a->device).ok());
  EXPECT_EQ(rack_->orchestrator().record(a->device)->lessees.size(), 0u);
  EXPECT_EQ(rack_->orchestrator().Release(HostId(0), a->device).code(),
            StatusCode::kFailedPrecondition);
  Drain();
}

// --- Failover (E6 in miniature) ---

TEST_F(CoreTest, NicLinkFailureTriggersMigration) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack(3));
  rack_->Start();

  auto a = rack_->orchestrator().Acquire(HostId(1), DeviceType::kNic);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->device, PcieDeviceId(1));  // local NIC

  PcieDeviceId migrated_to;
  Nanos migrated_at = -1;
  rack_->orchestrator().agent(HostId(1))->SetMigrationHandler(
      [&](PcieDeviceId old_dev, PcieDeviceId new_dev, HostId) -> Task<> {
        EXPECT_EQ(old_dev, PcieDeviceId(1));
        migrated_to = new_dev;
        migrated_at = loop_.now();
        co_return;
      });

  Nanos failed_at = 500 * kMicrosecond;
  loop_.RunUntil(failed_at);
  rack_->nic(1)->InjectLinkFailure();
  loop_.RunFor(300 * kMicrosecond);

  ASSERT_TRUE(migrated_to.valid());
  EXPECT_NE(migrated_to, PcieDeviceId(1));
  EXPECT_EQ(rack_->orchestrator().stats().failovers, 1u);
  // Detection (MMIO link poll) + report + migration RPC: well under 100 us.
  EXPECT_LT(migrated_at - failed_at, 100 * kMicrosecond);
  // The lease moved in the registry too.
  EXPECT_TRUE(rack_->orchestrator().record(migrated_to)->lessees.size() == 1);
  EXPECT_TRUE(rack_->orchestrator().record(PcieDeviceId(1))->lessees.empty());
  Drain();
}

TEST_F(CoreTest, RepairedDeviceBecomesEligibleAgain) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack(2));
  rack_->Start();
  rack_->nic(0)->InjectLinkFailure();
  loop_.RunFor(100 * kMicrosecond);
  EXPECT_FALSE(rack_->orchestrator().record(PcieDeviceId(0))->healthy);
  rack_->nic(0)->RepairLink();
  loop_.RunFor(100 * kMicrosecond);
  EXPECT_TRUE(rack_->orchestrator().record(PcieDeviceId(0))->healthy);
  Drain();
}

// --- Load rebalancing (E7 in miniature) ---

TEST_F(CoreTest, RebalanceShedsOverloadedDevice) {
  RackConfig rc = SmallRack(2);
  rc.orch.overload_threshold = 0.5;
  rack_ = std::make_unique<Rack>(loop_, rc);

  // Register two fake "utilization" sources the agents will report.
  double util0 = 0.9;
  double util1 = 0.1;
  DummyDevice hot(PcieDeviceId(50), loop_);
  hot.AttachTo(&rack_->pod().host(0));
  DummyDevice cold(PcieDeviceId(51), loop_);
  cold.AttachTo(&rack_->pod().host(1));
  rack_->orchestrator().RegisterDevice(HostId(0), &hot, DeviceType::kAccel,
                                       [&] { return util0; });
  rack_->orchestrator().RegisterDevice(HostId(1), &cold, DeviceType::kAccel,
                                       [&] { return util1; });
  rack_->Start();

  auto a = rack_->orchestrator().Acquire(HostId(0), DeviceType::kAccel);
  ASSERT_TRUE(a.ok());

  bool migrated = false;
  rack_->orchestrator().agent(HostId(0))->SetMigrationHandler(
      [&](PcieDeviceId, PcieDeviceId new_dev, HostId) -> Task<> {
        migrated = true;
        EXPECT_EQ(new_dev, PcieDeviceId(51));
        co_return;
      });

  // Let reports land, then force a rebalance scan.
  loop_.RunFor(100 * kMicrosecond);
  RunBlocking(loop_, rack_->orchestrator().RebalanceOnce());
  loop_.RunFor(100 * kMicrosecond);

  EXPECT_TRUE(migrated);
  EXPECT_EQ(rack_->orchestrator().stats().rebalances, 1u);
  EXPECT_EQ(rack_->orchestrator().record(PcieDeviceId(51))->lessees.size(), 1u);
  Drain();
}

// --- Wire codec robustness ---
// A partition delivers truncated, duplicated, and bit-flipped frames to
// every control-plane decoder. Each must come back as a typed error or a
// (harmless) successful parse — never a CHECK failure or a wild read.

TEST(WireFuzzTest, ReportWireRoundTripAndTruncation) {
  std::vector<DeviceStatus> statuses(3);
  for (int i = 0; i < 3; ++i) {
    statuses[i].device = PcieDeviceId(40 + i);
    statuses[i].type = i == 0 ? DeviceType::kNic : DeviceType::kAccel;
    statuses[i].healthy = i != 1;
    statuses[i].utilization = 0.25 * i;
    statuses[i].fault_episodes = static_cast<uint32_t>(i);
  }
  std::vector<std::byte> frame =
      report_wire::Encode(HostId(2), 0xABCDull, statuses);

  auto full = report_wire::Decode(frame);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->reporter, HostId(2));
  EXPECT_EQ(full->peer_mask, 0xABCDull);
  ASSERT_EQ(full->statuses.size(), 3u);
  EXPECT_EQ(full->statuses[2].device, PcieDeviceId(42));
  EXPECT_FALSE(full->statuses[1].healthy);

  // Every proper prefix must be a typed error (a truncated status array or
  // header), not a crash.
  for (size_t len = 0; len < frame.size(); ++len) {
    auto r = report_wire::Decode(std::span<const std::byte>(frame).first(len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(WireFuzzTest, ReportWireHugeCountRejected) {
  // Regression: a frame whose count field promises 2^32-1 statuses must be
  // refused by the length check, not walked off the end (the count*size
  // product overflows 32 bits).
  std::vector<std::byte> frame =
      report_wire::Encode(HostId(1), ~0ull, {});
  ASSERT_GE(frame.size(), 16u);
  frame[12] = std::byte{0xff};
  frame[13] = std::byte{0xff};
  frame[14] = std::byte{0xff};
  frame[15] = std::byte{0xff};
  EXPECT_FALSE(report_wire::Decode(frame).ok());
}

TEST(WireFuzzTest, EpochAndMigrateWireTruncation) {
  std::vector<std::byte> epoch = epoch_wire::Encode(PcieDeviceId(7), 42);
  auto e = epoch_wire::Decode(epoch);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->device, PcieDeviceId(7));
  EXPECT_EQ(e->epoch, 42u);
  for (size_t len = 0; len < epoch.size(); ++len) {
    EXPECT_FALSE(
        epoch_wire::Decode(std::span<const std::byte>(epoch).first(len)).ok());
  }

  std::vector<std::byte> mig =
      migrate_wire::Encode(PcieDeviceId(1), PcieDeviceId(2), HostId(3));
  auto m = migrate_wire::Decode(mig);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->new_home, HostId(3));
  for (size_t len = 0; len < mig.size(); ++len) {
    EXPECT_FALSE(
        migrate_wire::Decode(std::span<const std::byte>(mig).first(len)).ok());
  }
}

TEST(WireFuzzTest, MmioWireTruncation) {
  std::vector<std::byte> wr =
      mmio_wire::EncodeWrite(PcieDeviceId(9), 3, 77, 5, 0x10, 0xbeef);
  auto d = mmio_wire::Decode(wr, /*is_write=*/true);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->value, 0xbeefu);
  EXPECT_EQ(d->seq, 5u);
  for (size_t len = 0; len < wr.size(); ++len) {
    EXPECT_FALSE(
        mmio_wire::Decode(std::span<const std::byte>(wr).first(len), true).ok());
  }
  std::vector<std::byte> rd =
      mmio_wire::EncodeRead(PcieDeviceId(9), 3, 77, 6, 0x18);
  ASSERT_TRUE(mmio_wire::Decode(rd, /*is_write=*/false).ok());
  for (size_t len = 0; len < rd.size(); ++len) {
    EXPECT_FALSE(
        mmio_wire::Decode(std::span<const std::byte>(rd).first(len), false)
            .ok());
  }
}

TEST(WireFuzzTest, SeededBitFlipsNeverCrashDecoders) {
  std::vector<DeviceStatus> statuses(2);
  statuses[0].device = PcieDeviceId(50);
  statuses[1].device = PcieDeviceId(51);
  const std::vector<std::byte> report =
      report_wire::Encode(HostId(1), 0x5ull, statuses);
  const std::vector<std::byte> epoch = epoch_wire::Encode(PcieDeviceId(4), 9);
  const std::vector<std::byte> mmio =
      mmio_wire::EncodeWrite(PcieDeviceId(4), 9, 1, 1, 0x20, 1);

  sim::Rng rng(0xF1157);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> f = report;
    int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < flips; ++i) {
      size_t bit = rng.UniformInt(f.size() * 8);
      f[bit / 8] ^= std::byte(1u << (bit % 8));
    }
    (void)report_wire::Decode(f);  // must not crash; result may be either

    std::vector<std::byte> g = (iter % 2 == 0) ? epoch : mmio;
    size_t bit = rng.UniformInt(g.size() * 8);
    g[bit / 8] ^= std::byte(1u << (bit % 8));
    if (iter % 2 == 0) {
      (void)epoch_wire::Decode(g);
    } else {
      (void)mmio_wire::Decode(g, /*is_write=*/true);
    }
  }
  // Duplicated payload tails must also parse or reject cleanly.
  std::vector<std::byte> doubled = report;
  doubled.insert(doubled.end(), report.begin(), report.end());
  (void)report_wire::Decode(doubled);
}

}  // namespace
}  // namespace cxlpool::core
