#include <gtest/gtest.h>
#include "src/common/check.h"

#include <cstring>

#include "src/mem/address_map.h"
#include "src/mem/backend.h"
#include "src/mem/cache.h"

namespace cxlpool::mem {
namespace {

std::array<std::byte, kCachelineSize> LinePattern(uint8_t fill) {
  std::array<std::byte, kCachelineSize> a;
  a.fill(std::byte{fill});
  return a;
}

// --- MemoryBackend ---

TEST(BackendTest, ZeroInitialized) {
  MemoryBackend b("test", 4096);
  std::array<std::byte, 16> buf;
  buf.fill(std::byte{0xff});
  b.Read(100, buf);
  for (std::byte x : buf) {
    EXPECT_EQ(x, std::byte{0});
  }
}

TEST(BackendTest, RoundTrip) {
  MemoryBackend b("test", 4096);
  std::array<std::byte, 8> in{std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4},
                              std::byte{5}, std::byte{6}, std::byte{7}, std::byte{8}};
  b.Write(1000, in);
  std::array<std::byte, 8> out{};
  b.Read(1000, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 8), 0);
}

TEST(BackendTest, EdgeOfCapacity) {
  MemoryBackend b("test", 128);
  std::array<std::byte, 128> buf{};
  b.Read(0, buf);  // exactly full range is legal
  std::array<std::byte, 1> one{std::byte{9}};
  b.Write(127, one);
  b.Read(127, one);
  EXPECT_EQ(one[0], std::byte{9});
}

TEST(BackendTest, BoundsCheckFailureNamesTheBackendAndOffsets) {
  // A bounds CHECK in a sim with dozens of backends is undebuggable
  // without context: the message must say WHICH backend, WHERE, and how
  // big the access and the backend are.
  MemoryBackend b("nic0-bar", 4096);
  std::array<std::byte, 16> buf{};
  EXPECT_DEATH(b.Read(5000, buf),
               "backend 'nic0-bar'.*16 bytes at offset 5000.*backend size 4096");
  EXPECT_DEATH(b.Write(4090, buf),
               "backend 'nic0-bar'.*16 bytes at offset 4090.*backend size 4096");
}

// --- Media poison (RAS) ---

TEST(BackendTest, PoisonTracksWholeLines) {
  MemoryBackend b("test", 4096);
  EXPECT_FALSE(b.RangePoisoned(0, 4096));
  b.PoisonLine(130);  // anywhere inside the line poisons [128, 192)
  EXPECT_TRUE(b.LinePoisoned(128));
  EXPECT_TRUE(b.LinePoisoned(191));
  EXPECT_FALSE(b.LinePoisoned(192));
  EXPECT_FALSE(b.LinePoisoned(64));
  EXPECT_TRUE(b.RangePoisoned(0, 4096));
  EXPECT_TRUE(b.RangePoisoned(190, 4));  // straddles into the poisoned line
  EXPECT_FALSE(b.RangePoisoned(192, 64));
  EXPECT_EQ(b.poisoned_line_count(), 1u);
}

TEST(BackendTest, FullLineWriteClearsPoisonPartialDoesNot) {
  MemoryBackend b("test", 4096);
  b.PoisonLine(128);
  // A partial write cannot re-establish ECC for the whole line.
  std::array<std::byte, 8> partial{};
  b.Write(128, partial);
  EXPECT_TRUE(b.LinePoisoned(128));
  // A full-line write is fresh data + fresh ECC: poison clears.
  std::array<std::byte, kCachelineSize> full{};
  b.Write(128, full);
  EXPECT_FALSE(b.LinePoisoned(128));
  EXPECT_EQ(b.poisoned_line_count(), 0u);
}

TEST(BackendTest, ClearPoisonIsExplicit) {
  MemoryBackend b("test", 4096);
  b.PoisonLine(0);
  b.PoisonLine(64);
  b.ClearPoison(0);
  EXPECT_FALSE(b.LinePoisoned(0));
  EXPECT_TRUE(b.LinePoisoned(64));
}

// --- AddressMap ---

class AddressMapTest : public ::testing::Test {
 protected:
  AddressMapTest() : dram_("dram", 64 * kKiB), pool_("pool", 64 * kKiB) {
    Region r1;
    r1.base = 0x1000;
    r1.size = 64 * kKiB;
    r1.kind = MemoryKind::kLocalDram;
    r1.dram_host = HostId(0);
    r1.backend = &dram_;
    CXLPOOL_CHECK_OK(map_.Register(r1));

    Region r2;
    r2.base = 0x1000000;
    r2.size = 64 * kKiB;
    r2.kind = MemoryKind::kCxlPool;
    r2.mhd = MhdId(0);
    r2.backend = &pool_;
    CXLPOOL_CHECK_OK(map_.Register(r2));
  }

  MemoryBackend dram_;
  MemoryBackend pool_;
  AddressMap map_;
};

TEST_F(AddressMapTest, LookupFindsRegion) {
  const Region* r = map_.Lookup(0x1000);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind, MemoryKind::kLocalDram);
  EXPECT_EQ(map_.Lookup(0x1000 + 64 * kKiB - 1)->kind, MemoryKind::kLocalDram);
  EXPECT_EQ(map_.Lookup(0x1000000)->kind, MemoryKind::kCxlPool);
}

TEST_F(AddressMapTest, LookupMissReturnsNull) {
  EXPECT_EQ(map_.Lookup(0), nullptr);
  EXPECT_EQ(map_.Lookup(0xfff), nullptr);
  EXPECT_EQ(map_.Lookup(0x1000 + 64 * kKiB), nullptr);
  EXPECT_EQ(map_.Lookup(0xffffffff), nullptr);
}

TEST_F(AddressMapTest, ResolveRejectsCrossRegion) {
  auto r = map_.Resolve(0x1000 + 64 * kKiB - 8, 16);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(AddressMapTest, ResolveRejectsUnmapped) {
  auto r = map_.Resolve(0x0, 8);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(AddressMapTest, OverlapRejected) {
  MemoryBackend extra("x", 4096);
  Region r;
  r.base = 0x1800;  // inside the dram region
  r.size = 4096;
  r.backend = &extra;
  auto st = map_.Register(r);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);

  r.base = 0x1000 - 100;  // tail overlaps head of dram region
  st = map_.Register(r);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(AddressMapTest, BackendCapacityValidated) {
  MemoryBackend small("s", 1024);
  Region r;
  r.base = 0x20000000;
  r.size = 4096;  // bigger than backend
  r.backend = &small;
  EXPECT_EQ(map_.Register(r).code(), StatusCode::kOutOfRange);
}

TEST_F(AddressMapTest, ReadWriteBytesRouteToBackend) {
  std::array<std::byte, 4> in{std::byte{0xde}, std::byte{0xad}, std::byte{0xbe},
                              std::byte{0xef}};
  map_.WriteBytes(0x1000000 + 128, in);
  std::array<std::byte, 4> direct{};
  pool_.Read(128, direct);
  EXPECT_EQ(std::memcmp(in.data(), direct.data(), 4), 0);

  std::array<std::byte, 4> out{};
  map_.ReadBytes(0x1000000 + 128, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 4), 0);
}

TEST_F(AddressMapTest, BackendOffsetApplied) {
  MemoryBackend shared("sh", 8192);
  Region r;
  r.base = 0x40000000;
  r.size = 4096;
  r.kind = MemoryKind::kCxlPool;
  r.backend = &shared;
  r.backend_offset = 4096;
  ASSERT_TRUE(map_.Register(r).ok());
  std::array<std::byte, 1> in{std::byte{7}};
  map_.WriteBytes(0x40000000, in);
  std::array<std::byte, 1> direct{};
  shared.Read(4096, direct);
  EXPECT_EQ(direct[0], std::byte{7});
}

TEST_F(AddressMapTest, PoisonRoutesThroughRegions) {
  // Poison by pod address, translated to the backing store (including
  // backend_offset), surfaced again by CheckPoison.
  ASSERT_TRUE(map_.PoisonLine(0x1000000 + 256).ok());
  EXPECT_TRUE(map_.RangePoisoned(0x1000000 + 256, 1));
  EXPECT_TRUE(pool_.LinePoisoned(256));
  EXPECT_FALSE(dram_.RangePoisoned(0, 64 * kKiB));

  Status st = map_.CheckPoison(0x1000000 + 256, 64);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(map_.CheckPoison(0x1000000, 64).ok());
  // Unmapped addresses are not poisoned (the access fails elsewhere).
  EXPECT_FALSE(map_.RangePoisoned(0, 8));
  EXPECT_TRUE(map_.CheckPoison(0, 8).ok());

  ASSERT_TRUE(map_.ClearPoison(0x1000000 + 256).ok());
  EXPECT_TRUE(map_.CheckPoison(0x1000000 + 256, 64).ok());
}

TEST_F(AddressMapTest, PoisonUnmappedAddressFails) {
  EXPECT_FALSE(map_.PoisonLine(0x0).ok());
  EXPECT_FALSE(map_.ClearPoison(0x0).ok());
}

// --- WriteBackCache ---

TEST(CacheTest, MissThenHit) {
  WriteBackCache cache(16);
  EXPECT_EQ(cache.Find(0), nullptr);
  auto data = LinePattern(0xaa);
  cache.Install(0, data.data(), false);
  WriteBackCache::Line* line = cache.Find(0);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->data[0], std::byte{0xaa});
  EXPECT_FALSE(line->dirty);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, DirtyBitSticky) {
  WriteBackCache cache(16);
  auto data = LinePattern(1);
  cache.Install(64, data.data(), true);
  // Re-installing clean does not clear dirty.
  cache.Install(64, data.data(), false);
  EXPECT_TRUE(cache.Find(64)->dirty);
}

TEST(CacheTest, LruEviction) {
  WriteBackCache cache(2);
  auto d = LinePattern(1);
  EXPECT_FALSE(cache.Install(0, d.data(), false).has_value());
  EXPECT_FALSE(cache.Install(64, d.data(), false).has_value());
  cache.Find(0);  // make line 0 most-recent
  auto ev = cache.Install(128, d.data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 64u);  // 64 was least-recent
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CacheTest, EvictedDirtyLineCarriesData) {
  WriteBackCache cache(1);
  auto d1 = LinePattern(0x11);
  cache.Install(0, d1.data(), true);
  auto d2 = LinePattern(0x22);
  auto ev = cache.Install(64, d2.data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(ev->data[5], std::byte{0x11});
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, RemoveReturnsContent) {
  WriteBackCache cache(4);
  auto d = LinePattern(0x33);
  cache.Install(192, d.data(), true);
  auto ev = cache.Remove(192);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(ev->data[0], std::byte{0x33});
  EXPECT_EQ(cache.Find(192), nullptr);
  EXPECT_FALSE(cache.Remove(192).has_value());
}

TEST(CacheTest, ZeroCapacityNeverCaches) {
  WriteBackCache cache(0);
  auto d = LinePattern(1);
  EXPECT_FALSE(cache.Install(0, d.data(), true).has_value());
  EXPECT_EQ(cache.Find(0), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheTest, DropAllForgetsEverything) {
  WriteBackCache cache(8);
  auto d = LinePattern(1);
  cache.Install(0, d.data(), true);
  cache.Install(64, d.data(), false);
  cache.DropAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find(0), nullptr);
}

TEST(CacheTest, PeekDoesNotBumpLru) {
  WriteBackCache cache(2);
  auto d = LinePattern(1);
  cache.Install(0, d.data(), false);
  cache.Install(64, d.data(), false);
  cache.Peek(0);  // would make 0 MRU if it bumped
  auto ev = cache.Install(128, d.data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0u);  // 0 still LRU: Peek had no effect
}

// Find vs Peek contrast on the same cache: Find's LRU bump protects a
// line from eviction, Peek's lack of one does not, and Peek never touches
// the hit/miss counters (it is the observer path — e.g. DMA snooping).
TEST(CacheTest, FindBumpsLruPeekDoesNotAndPeekIsStatFree) {
  WriteBackCache cache(2);
  auto d = LinePattern(1);
  cache.Install(0, d.data(), false);
  cache.Install(64, d.data(), false);
  WriteBackCache::Stats before = cache.stats();
  EXPECT_NE(cache.Peek(0), nullptr);
  EXPECT_EQ(cache.Peek(999 * kCachelineSize), nullptr);  // miss: no count
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);

  cache.Find(0);  // bump: 64 becomes LRU
  auto ev1 = cache.Install(128, d.data(), false);
  ASSERT_TRUE(ev1.has_value());
  EXPECT_EQ(ev1->line_addr, 64u);

  cache.Peek(0);  // no bump: 0 stays LRU behind 128
  auto ev2 = cache.Install(192, d.data(), false);
  ASSERT_TRUE(ev2.has_value());
  EXPECT_EQ(ev2->line_addr, 0u);
}

// Capacity 1 is the degenerate LRU: every distinct install evicts the
// previous line, re-installing the resident line evicts nothing, and the
// dirty victim's bytes ride out intact.
TEST(CacheTest, CapacityOneEvictsEveryNewcomerButNotReinstalls) {
  WriteBackCache cache(1);
  auto d1 = LinePattern(0x11);
  auto d2 = LinePattern(0x22);
  EXPECT_FALSE(cache.Install(0, d1.data(), true).has_value());
  EXPECT_FALSE(cache.Install(0, d2.data(), false).has_value());  // same line
  EXPECT_EQ(cache.size(), 1u);

  auto ev = cache.Install(64, d1.data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0u);
  EXPECT_TRUE(ev->dirty);                     // sticky from the first install
  EXPECT_EQ(ev->data[3], std::byte{0x22});    // latest content, not first
  EXPECT_EQ(cache.size(), 1u);

  auto ev2 = cache.Install(128, d2.data(), true);
  ASSERT_TRUE(ev2.has_value());
  EXPECT_EQ(ev2->line_addr, 64u);
  EXPECT_FALSE(ev2->dirty);
  EXPECT_EQ(cache.stats().writebacks, 1u);  // only the dirty victim counted
}

// Install over an existing line replaces bytes in place: no victim, no
// size change, dirty stays sticky, and the line is bumped to MRU.
TEST(CacheTest, InstallOverExistingReplacesContentInPlace) {
  WriteBackCache cache(2);
  auto d1 = LinePattern(0x0d);
  auto d2 = LinePattern(0x0e);
  cache.Install(0, d1.data(), true);
  cache.Install(64, d1.data(), false);

  EXPECT_FALSE(cache.Install(0, d2.data(), false).has_value());
  EXPECT_EQ(cache.size(), 2u);
  const WriteBackCache::Line* line = cache.Peek(0);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->data[7], std::byte{0x0e});  // content replaced...
  EXPECT_TRUE(line->dirty);                   // ...dirty not cleared

  // The overwrite bumped line 0 to MRU, so 64 is the next victim.
  auto ev = cache.Install(128, d1.data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 64u);
}

// DropAll is the power-off path: it must NOT count write-backs or
// invalidations for the dirty lines it destroys (those stats feed the
// coherence accounting; a crash is not a write-back), and counters keep
// accumulating normally afterwards.
TEST(CacheTest, DropAllCountsNoWritebacksOrInvalidations) {
  WriteBackCache cache(4);
  auto d = LinePattern(5);
  cache.Install(0, d.data(), true);
  cache.Install(64, d.data(), true);
  cache.Find(0);
  WriteBackCache::Stats before = cache.stats();

  cache.DropAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().writebacks, before.writebacks);
  EXPECT_EQ(cache.stats().invalidations, before.invalidations);
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);

  EXPECT_EQ(cache.Find(0), nullptr);  // gone, and the miss still counts
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

// Parameterized capacity sweep: occupancy never exceeds capacity and the
// cache stays internally consistent under a deterministic access pattern.
class CacheCapacityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CacheCapacityTest, OccupancyBounded) {
  size_t cap = GetParam();
  WriteBackCache cache(cap);
  auto d = LinePattern(0x7f);
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t addr = (i * 37 % 256) * kCachelineSize;
    if (cache.Find(addr) == nullptr) {
      cache.Install(addr, d.data(), i % 3 == 0);
    }
    EXPECT_LE(cache.size(), cap);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityTest,
                         ::testing::Values(1, 2, 7, 64, 1024));

}  // namespace
}  // namespace cxlpool::mem
