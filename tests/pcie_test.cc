#include <gtest/gtest.h>

#include "src/cxl/pod.h"
#include "src/pcie/device.h"
#include "src/pcie/switch_fabric.h"
#include "src/sim/task.h"

namespace cxlpool::pcie {
namespace {

using sim::RunBlocking;
using sim::Task;

class TestDevice : public PcieDevice {
 public:
  TestDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "test", loop, cxl::LinkSpec{}, PcieTiming{}) {}

  uint64_t last_write_reg = 0;
  uint64_t last_write_value = 0;
  int attaches = 0;
  int detaches = 0;
  int resets = 0;

  // Exposes protected DMA for tests.
  sim::Task<Status> TestDmaRead(uint64_t addr, std::span<std::byte> out) {
    return DmaRead(addr, out);
  }
  sim::Task<Status> TestDmaWrite(uint64_t addr, std::span<const std::byte> in) {
    return DmaWrite(addr, in);
  }

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override {
    last_write_reg = reg;
    last_write_value = value;
  }
  uint64_t OnMmioRead(uint64_t reg) override { return reg * 2; }
  void OnAttach() override { ++attaches; }
  void OnDetach() override { ++detaches; }
  void OnReset() override { ++resets; }
};

class PcieTest : public ::testing::Test {
 protected:
  PcieTest() : pod_(loop_, Config()) {}

  static cxl::CxlPodConfig Config() {
    cxl::CxlPodConfig c;
    c.num_hosts = 2;
    c.num_mhds = 1;
    c.mhd_capacity = 16 * kMiB;
    c.dram_per_host = 4 * kMiB;
    return c;
  }

  sim::EventLoop loop_;
  cxl::CxlPod pod_;
};

TEST_F(PcieTest, MmioRequiresAttachment) {
  TestDevice dev(PcieDeviceId(1), loop_);
  auto t = [](TestDevice& d) -> Task<Status> {
    co_return co_await d.MmioWrite(8, 42);
  };
  EXPECT_EQ(RunBlocking(loop_, t(dev)).code(), StatusCode::kFailedPrecondition);
}

TEST_F(PcieTest, PostedMmioWriteLandsAfterLatency) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  auto t = [](TestDevice& d, sim::EventLoop& loop) -> Task<Nanos> {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await d.MmioWrite(0x10, 99));
    co_return loop.now() - start;
  };
  Nanos cpu_cost = RunBlocking(loop_, t(dev, loop_));
  // CPU pays only the post cost; the device sees the value later.
  EXPECT_EQ(cpu_cost, dev.timing().mmio_post_cpu);
  EXPECT_EQ(dev.last_write_value, 0u);  // not yet delivered
  loop_.RunFor(dev.timing().mmio_write);
  EXPECT_EQ(dev.last_write_value, 99u);
  EXPECT_EQ(dev.last_write_reg, 0x10u);
}

TEST_F(PcieTest, MmioReadRoundTrips) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  auto t = [](TestDevice& d, sim::EventLoop& loop) -> Task<std::pair<uint64_t, Nanos>> {
    Nanos start = loop.now();
    auto v = co_await d.MmioRead(21);
    CXLPOOL_CHECK(v.ok());
    co_return std::make_pair(*v, loop.now() - start);
  };
  auto [value, took] = RunBlocking(loop_, t(dev, loop_));
  EXPECT_EQ(value, 42u);
  EXPECT_GE(took, dev.timing().mmio_read);  // non-posted: full round trip
}

TEST_F(PcieTest, FailedDeviceRejectsEverything) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  dev.InjectFailure();
  auto t = [](TestDevice& d) -> Task<Status> {
    co_return co_await d.MmioWrite(1, 1);
  };
  EXPECT_EQ(RunBlocking(loop_, t(dev)).code(), StatusCode::kUnavailable);
  dev.Repair();
  EXPECT_TRUE(RunBlocking(loop_, t(dev)).ok());
}

TEST_F(PcieTest, GenerationBumpsOnLifecycleEvents) {
  TestDevice dev(PcieDeviceId(1), loop_);
  uint64_t g0 = dev.generation();
  dev.AttachTo(&pod_.host(0));
  EXPECT_GT(dev.generation(), g0);
  uint64_t g1 = dev.generation();
  dev.InjectFailure();
  EXPECT_GT(dev.generation(), g1);
  uint64_t g2 = dev.generation();
  dev.Repair();
  EXPECT_GT(dev.generation(), g2);
  dev.Detach();
  EXPECT_EQ(dev.attaches, 1);
  EXPECT_EQ(dev.detaches, 1);
}

TEST_F(PcieTest, DmaRoundTripThroughHostDram) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  auto addr = pod_.host(0).AllocateDram(4096);
  ASSERT_TRUE(addr.ok());

  auto t = [](TestDevice& d, uint64_t a) -> Task<bool> {
    std::vector<std::byte> in(256, std::byte{0x3c});
    CXLPOOL_CHECK_OK(co_await d.TestDmaWrite(a, in));
    std::vector<std::byte> out(256);
    CXLPOOL_CHECK_OK(co_await d.TestDmaRead(a, out));
    co_return out == in;
  };
  EXPECT_TRUE(RunBlocking(loop_, t(dev, *addr)));
}

TEST_F(PcieTest, DmaToOtherHostsDramRejected) {
  // The fundamental limitation pooling must work around: a device on host
  // 0 cannot DMA into host 1's DRAM.
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  auto addr = pod_.host(1).AllocateDram(4096);
  ASSERT_TRUE(addr.ok());
  auto t = [](TestDevice& d, uint64_t a) -> Task<Status> {
    std::vector<std::byte> in(64, std::byte{1});
    co_return co_await d.TestDmaWrite(a, in);
  };
  EXPECT_EQ(RunBlocking(loop_, t(dev, *addr)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PcieTest, DmaToPoolMemoryWorksFromAnyAttachment) {
  // ... but DMA to CXL pool memory works no matter which host the device
  // hangs off — the paper's enabling observation.
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  for (int h = 0; h < 2; ++h) {
    TestDevice dev(PcieDeviceId(10 + h), loop_);
    dev.AttachTo(&pod_.host(h));
    auto t = [](TestDevice& d, uint64_t a, uint8_t v) -> Task<bool> {
      std::vector<std::byte> in(64, std::byte{v});
      CXLPOOL_CHECK_OK(co_await d.TestDmaWrite(a, in));
      co_await sim::Delay(d.loop(), kMicrosecond);
      std::vector<std::byte> out(64);
      CXLPOOL_CHECK_OK(co_await d.TestDmaRead(a, out));
      co_return out == in;
    };
    EXPECT_TRUE(RunBlocking(loop_, t(dev, seg->base, static_cast<uint8_t>(h + 1))));
    dev.Detach();
  }
}

// --- PCIe switch fabric ---

TEST_F(PcieTest, SwitchBindsDeviceToRemoteHost) {
  PcieSwitchFabric fabric(loop_, PcieSwitchConfig{});
  TestDevice dev(PcieDeviceId(5), loop_);
  ASSERT_TRUE(fabric.AttachHost(&pod_.host(1)).ok());
  ASSERT_TRUE(fabric.AttachDevice(&dev, DeviceClass::kAccelerator).ok());
  ASSERT_TRUE(fabric.Bind(dev.id(), HostId(1)).ok());
  EXPECT_EQ(fabric.BoundHost(dev.id()), HostId(1));
  EXPECT_TRUE(dev.attached());
  EXPECT_NE(dev.interposer(), nullptr);

  // Through the switch, the device can DMA into host 1's DRAM.
  auto addr = pod_.host(1).AllocateDram(4096);
  auto t = [](TestDevice& d, uint64_t a) -> Task<Status> {
    std::vector<std::byte> in(64, std::byte{9});
    co_return co_await d.TestDmaWrite(a, in);
  };
  EXPECT_TRUE(RunBlocking(loop_, t(dev, *addr)).ok());
}

TEST_F(PcieTest, SwitchAddsHopLatency) {
  PcieSwitchConfig config;
  PcieSwitchFabric fabric(loop_, config);
  TestDevice dev(PcieDeviceId(5), loop_);
  ASSERT_TRUE(fabric.AttachHost(&pod_.host(0)).ok());
  ASSERT_TRUE(fabric.AttachDevice(&dev, DeviceClass::kAny).ok());
  ASSERT_TRUE(fabric.Bind(dev.id(), HostId(0)).ok());

  auto t = [](TestDevice& d, sim::EventLoop& loop) -> Task<Nanos> {
    Nanos start = loop.now();
    auto v = co_await d.MmioRead(4);
    CXLPOOL_CHECK(v.ok());
    co_return loop.now() - start;
  };
  Nanos through_switch = RunBlocking(loop_, t(dev, loop_));
  EXPECT_GE(through_switch, dev.timing().mmio_read + 2 * config.hop_latency);
}

TEST_F(PcieTest, SwitchRebindMovesDevice) {
  PcieSwitchFabric fabric(loop_, PcieSwitchConfig{});
  TestDevice dev(PcieDeviceId(5), loop_);
  ASSERT_TRUE(fabric.AttachHost(&pod_.host(0)).ok());
  ASSERT_TRUE(fabric.AttachHost(&pod_.host(1)).ok());
  ASSERT_TRUE(fabric.AttachDevice(&dev, DeviceClass::kAny).ok());
  ASSERT_TRUE(fabric.Bind(dev.id(), HostId(0)).ok());
  ASSERT_TRUE(fabric.Bind(dev.id(), HostId(1)).ok());  // rebind
  EXPECT_EQ(fabric.BoundHost(dev.id()), HostId(1));
  EXPECT_EQ(fabric.rebinds(), 1u);
  EXPECT_EQ(dev.attached_host()->id(), HostId(1));
}

TEST_F(PcieTest, SwitchEnforcesDeviceClass) {
  PcieSwitchConfig storage_only;
  storage_only.supported = DeviceClass::kStorage;
  PcieSwitchFabric fabric(loop_, storage_only);
  TestDevice nic_like(PcieDeviceId(6), loop_);
  EXPECT_EQ(fabric.AttachDevice(&nic_like, DeviceClass::kNic).code(),
            StatusCode::kFailedPrecondition);
  TestDevice ssd_like(PcieDeviceId(7), loop_);
  EXPECT_TRUE(fabric.AttachDevice(&ssd_like, DeviceClass::kStorage).ok());
}

TEST_F(PcieTest, SwitchPortLimits) {
  PcieSwitchConfig tiny;
  tiny.host_ports = 1;
  tiny.device_ports = 1;
  PcieSwitchFabric fabric(loop_, tiny);
  ASSERT_TRUE(fabric.AttachHost(&pod_.host(0)).ok());
  EXPECT_EQ(fabric.AttachHost(&pod_.host(1)).code(),
            StatusCode::kResourceExhausted);
  TestDevice d1(PcieDeviceId(1), loop_);
  TestDevice d2(PcieDeviceId(2), loop_);
  ASSERT_TRUE(fabric.AttachDevice(&d1, DeviceClass::kAny).ok());
  EXPECT_EQ(fabric.AttachDevice(&d2, DeviceClass::kAny).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(PcieTest, UnbindReleasesDevice) {
  PcieSwitchFabric fabric(loop_, PcieSwitchConfig{});
  TestDevice dev(PcieDeviceId(5), loop_);
  ASSERT_TRUE(fabric.AttachHost(&pod_.host(0)).ok());
  ASSERT_TRUE(fabric.AttachDevice(&dev, DeviceClass::kAny).ok());
  ASSERT_TRUE(fabric.Bind(dev.id(), HostId(0)).ok());
  ASSERT_TRUE(fabric.Unbind(dev.id()).ok());
  EXPECT_FALSE(dev.attached());
  EXPECT_EQ(dev.interposer(), nullptr);
  EXPECT_EQ(fabric.Unbind(dev.id()).code(), StatusCode::kFailedPrecondition);
}

// --- Gray failures: wedge vs fail-stop, FLR reset ---

TEST_F(PcieTest, WedgedDeviceStallsMmioReadsThenTimesOut) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  dev.Wedge();
  EXPECT_TRUE(dev.wedged());

  auto t = [](TestDevice& d, sim::EventLoop& loop) -> Task<std::pair<Status, Nanos>> {
    Nanos start = loop.now();
    auto v = co_await d.MmioRead(4);
    co_return std::make_pair(v.status(), loop.now() - start);
  };
  auto [st, took] = RunBlocking(loop_, t(dev, loop_));
  // The gray signature: not an immediate error (that is fail-stop), but a
  // stall for the completion timeout followed by kDeadlineExceeded.
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(took, dev.timing().wedge_stall);
  EXPECT_GE(dev.gray_stats().stalled_ops, 1u);
}

TEST_F(PcieTest, WedgedDeviceAbsorbsPostedWrites) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  dev.Wedge();

  auto t = [](TestDevice& d) -> Task<Status> {
    co_return co_await d.MmioWrite(0x10, 77);
  };
  // Posted semantics: the CPU-side write "succeeds" (that is what makes
  // wedges gray — the writer cannot tell), but the device never sees it.
  EXPECT_TRUE(RunBlocking(loop_, t(dev)).ok());
  loop_.RunFor(10 * dev.timing().mmio_write);
  EXPECT_EQ(dev.last_write_value, 0u);
  EXPECT_EQ(dev.gray_stats().dropped_mmio_writes, 1u);
}

TEST_F(PcieTest, WedgedDeviceStallsDma) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  auto addr = pod_.host(0).AllocateDram(4096);
  ASSERT_TRUE(addr.ok());
  dev.Wedge();
  auto t = [](TestDevice& d, uint64_t a) -> Task<Status> {
    std::vector<std::byte> out(64);
    co_return co_await d.TestDmaRead(a, out);
  };
  EXPECT_EQ(RunBlocking(loop_, t(dev, *addr)).code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(PcieTest, WedgeIsDistinctFromFailStop) {
  // Fail-stop answers immediately with kUnavailable; a wedge stalls first
  // and times out. Detectors key on exactly this difference.
  TestDevice failed(PcieDeviceId(1), loop_);
  failed.AttachTo(&pod_.host(0));
  failed.InjectFailure();
  TestDevice wedged(PcieDeviceId(2), loop_);
  wedged.AttachTo(&pod_.host(0));
  wedged.Wedge();

  auto t = [](TestDevice& d, sim::EventLoop& loop) -> Task<std::pair<Status, Nanos>> {
    Nanos start = loop.now();
    auto v = co_await d.MmioRead(4);
    co_return std::make_pair(v.status(), loop.now() - start);
  };
  auto [failed_st, failed_took] = RunBlocking(loop_, t(failed, loop_));
  auto [wedged_st, wedged_took] = RunBlocking(loop_, t(wedged, loop_));
  EXPECT_EQ(failed_st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(failed_took, 0);
  EXPECT_EQ(wedged_st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(wedged_took, wedged.timing().wedge_stall);
  // Wedge does not bump the generation (nothing re-bound); failure does.
  EXPECT_EQ(wedged.gray_stats().wedges, 1u);
}

TEST_F(PcieTest, ResetClearsWedgeAndDrainsEngines) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  uint64_t gen_before = dev.generation();
  dev.Wedge();
  EXPECT_EQ(dev.generation(), gen_before);  // hung, not re-bound

  dev.Reset();
  EXPECT_FALSE(dev.wedged());
  EXPECT_EQ(dev.resets, 1);
  EXPECT_GT(dev.generation(), gen_before);  // engines observe and exit
  EXPECT_EQ(dev.gray_stats().resets, 1u);

  // Back in service: reads round-trip again.
  auto t = [](TestDevice& d) -> Task<uint64_t> {
    auto v = co_await d.MmioRead(21);
    CXLPOOL_CHECK(v.ok());
    co_return *v;
  };
  EXPECT_EQ(RunBlocking(loop_, t(dev)), 42u);
}

TEST_F(PcieTest, WedgeOnFailedDeviceIsIgnored) {
  TestDevice dev(PcieDeviceId(1), loop_);
  dev.AttachTo(&pod_.host(0));
  dev.InjectFailure();
  dev.Wedge();  // fail-stop wins; wedge on a dead device is meaningless
  EXPECT_FALSE(dev.wedged());
  EXPECT_EQ(dev.gray_stats().wedges, 0u);
}

}  // namespace
}  // namespace cxlpool::pcie
