// Tests for analysis::CoherenceChecker — the software-coherence race
// detector. Positive tests drive the protocol correctly and assert a
// clean report; negative tests deliberately break one protocol step each
// and assert that exactly the matching violation type fires, with
// correct provenance.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/analysis/coherence_checker.h"
#include "src/cxl/host_adapter.h"
#include "src/cxl/pod.h"
#include "src/msg/doorbell.h"
#include "src/msg/ring.h"
#include "src/sim/task.h"

namespace cxlpool::analysis {
namespace {

using cxl::CxlPod;
using cxl::CxlPodConfig;
using cxl::HostAdapter;
using sim::RunBlocking;
using sim::Task;

using ViolationType = CoherenceChecker::ViolationType;

std::vector<std::byte> Fill(size_t n, uint8_t v) {
  return std::vector<std::byte>(n, std::byte{v});
}

class CoherenceCheckerTest : public ::testing::Test {
 protected:
  CoherenceCheckerTest() : pod_(loop_, MakeConfig()) {
    checker_.AttachTo(pod_);
    auto seg = pod_.pool().Allocate(64 * kKiB);
    CXLPOOL_CHECK(seg.ok());
    base_ = seg->base;
  }

  static CxlPodConfig MakeConfig() {
    CxlPodConfig c;
    c.num_hosts = 3;
    c.num_mhds = 2;
    c.mhd_capacity = 8 * kMiB;
    c.dram_per_host = 8 * kMiB;
    return c;
  }

  // Asserts the checker saw exactly `n` violations, all of type `type`.
  void ExpectOnly(ViolationType type, uint64_t n) {
    EXPECT_EQ(checker_.count(type), n) << checker_.Report();
    EXPECT_EQ(checker_.violation_count(), n) << checker_.Report();
  }

  sim::EventLoop loop_;
  CxlPod pod_;
  CoherenceChecker checker_;
  uint64_t base_ = 0;
};

// --- Clean protocol runs ---

TEST_F(CoherenceCheckerTest, PublishConsumeProtocolIsClean) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(256, 0xab);
    auto out = Fill(256, 0);
    // Publisher: nt-store. Consumer: invalidate-before-load. Repeat with
    // roles swapped to exercise both directions.
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Invalidate(addr, out.size()));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));
    CXLPOOL_CHECK_OK(co_await pod.host(1).StoreNt(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(0).Invalidate(addr, out.size()));
    CXLPOOL_CHECK_OK(co_await pod.host(0).Load(addr, out));
  };
  RunBlocking(loop_, t(pod_, base_));
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
  EXPECT_GT(checker_.events_seen(), 0u);
}

TEST_F(CoherenceCheckerTest, CachedStoreThenFlushThenHandoffIsClean) {
  auto t = [](CxlPod& pod, uint64_t addr, uint64_t db) -> Task<> {
    auto data = Fill(128, 0x11);
    CXLPOOL_CHECK_OK(co_await pod.host(0).Store(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(0).Flush(addr, data.size()));
    msg::DoorbellSender bell(pod.host(0), db);
    bell.SetAnnouncedRegion(addr, data.size());
    CXLPOOL_CHECK_OK(co_await bell.Ring(1));
  };
  RunBlocking(loop_, t(pod_, base_, base_ + 4 * kKiB));
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
}

TEST_F(CoherenceCheckerTest, MessageRingTrafficIsClean) {
  msg::RingConfig rc;
  rc.base = base_;
  rc.slots = 16;
  auto t = [](CxlPod& pod, msg::RingConfig rc) -> Task<> {
    msg::RingSender tx(pod.host(0), rc);
    msg::RingReceiver rx(pod.host(1), rc);
    auto msg = Fill(200, 0x7e);
    for (int i = 0; i < 50; ++i) {
      CXLPOOL_CHECK_OK(co_await tx.Send(msg));
      std::vector<std::byte> got;
      CXLPOOL_CHECK_OK(
          co_await rx.Recv(&got, pod.loop().now() + 10 * kMillisecond));
      CXLPOOL_CHECK(got.size() == msg.size());
    }
  };
  RunBlocking(loop_, t(pod_, rc));
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
}

TEST_F(CoherenceCheckerTest, BackInvalidateMakesCachedLoadsClean) {
  pod_.pool().set_back_invalidate(true);
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x2c);
    auto out = Fill(64, 0);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));  // cache it
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));  // BI snoop
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));  // refetch, fresh
    CXLPOOL_CHECK(std::memcmp(out.data(), data.data(), out.size()) == 0);
  };
  RunBlocking(loop_, t(pod_, base_));
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
}

// --- Negative tests: one deliberately broken protocol step each ---

TEST_F(CoherenceCheckerTest, MissedInvalidateFiresStaleRead) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x9f);
    auto out = Fill(64, 0);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));      // caches v0
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));  // publishes v1
    // BUG: no Invalidate — this load is served from the stale copy.
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));
  };
  RunBlocking(loop_, t(pod_, base_));
  ExpectOnly(ViolationType::kStaleRead, 1);

  const auto& v = checker_.violations().at(0);
  EXPECT_EQ(v.type, ViolationType::kStaleRead);
  EXPECT_EQ(v.offender, HostId(1));
  EXPECT_EQ(v.other, HostId(0));  // the publisher it missed
  EXPECT_EQ(v.line_addr, base_);
  EXPECT_EQ(v.observed_version, 0u);
  EXPECT_EQ(v.latest_version, 1u);
  // Provenance must show the publish this reader missed.
  bool saw_publish = false;
  for (const auto& a : v.provenance) {
    if (a.host == HostId(0) && a.op == cxl::CoherenceOp::kStoreNt) {
      saw_publish = true;
    }
  }
  EXPECT_TRUE(saw_publish) << v.ToString();
}

TEST_F(CoherenceCheckerTest, DirtyRegionAtDoorbellFiresUnpublishedHandoff) {
  auto t = [](CxlPod& pod, uint64_t addr, uint64_t db) -> Task<> {
    auto data = Fill(64, 0x33);
    // BUG: cached store, no Flush before announcing the region.
    CXLPOOL_CHECK_OK(co_await pod.host(0).Store(addr, data));
    msg::DoorbellSender bell(pod.host(0), db);
    bell.SetAnnouncedRegion(addr, data.size());
    CXLPOOL_CHECK_OK(co_await bell.Ring(1));
  };
  RunBlocking(loop_, t(pod_, base_, base_ + 4 * kKiB));
  ExpectOnly(ViolationType::kUnpublishedHandoff, 1);

  const auto& v = checker_.violations().at(0);
  EXPECT_EQ(v.offender, HostId(0));
  EXPECT_EQ(v.line_addr, base_);
  EXPECT_NE(v.context.find("doorbell-ring"), std::string::npos);
}

TEST_F(CoherenceCheckerTest, NtStoreOverOwnDirtyLineFiresLostPublish) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x44);
    // BUG: cached store left dirty, then an nt-store to the same line
    // discards the dirty bytes (the adapter counts lost_dirty_lines).
    CXLPOOL_CHECK_OK(co_await pod.host(0).Store(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));
  };
  RunBlocking(loop_, t(pod_, base_));
  ExpectOnly(ViolationType::kLostPublish, 1);
  // The violation attributes the adapter's anonymous counter.
  EXPECT_EQ(pod_.host(0).stats().lost_dirty_lines, 1u);
  EXPECT_EQ(checker_.violations().at(0).offender, HostId(0));
}

TEST_F(CoherenceCheckerTest, PublishOverRemoteDirtyLineFiresLostPublish) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x55);
    // BUG: host 1 has unpublished dirty bytes when host 0 publishes the
    // same line — host 1's eventual write-back races the publish.
    CXLPOOL_CHECK_OK(co_await pod.host(1).Store(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));
  };
  RunBlocking(loop_, t(pod_, base_));
  ExpectOnly(ViolationType::kLostPublish, 1);
  const auto& v = checker_.violations().at(0);
  EXPECT_EQ(v.offender, HostId(0));
  EXPECT_EQ(v.other, HostId(1));
}

TEST_F(CoherenceCheckerTest, StaleWritebackClobberFiresLostPublish) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x66);
    // Host 1 dirties the line at v0; host 0 publishes v1 (lost-publish #1:
    // publish over remote dirty); host 1 then flushes its stale full-line
    // copy over the newer publish (lost-publish #2: stale write-back).
    CXLPOOL_CHECK_OK(co_await pod.host(1).Store(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Flush(addr, data.size()));
  };
  RunBlocking(loop_, t(pod_, base_));
  ExpectOnly(ViolationType::kLostPublish, 2);
}

TEST_F(CoherenceCheckerTest, ConcurrentCachedWritersFireWriteWriteRace) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x77);
    // BUG: two hosts hold dirty copies of the same line; last write-back
    // wins and the other write vanishes.
    CXLPOOL_CHECK_OK(co_await pod.host(0).Store(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Store(addr, data));
  };
  RunBlocking(loop_, t(pod_, base_));
  ExpectOnly(ViolationType::kWriteWriteRace, 1);
  const auto& v = checker_.violations().at(0);
  EXPECT_EQ(v.offender, HostId(1));  // the second writer trips the check
  EXPECT_EQ(v.other, HostId(0));
}

TEST_F(CoherenceCheckerTest, ReportNamesEachViolationType) {
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x88);
    auto out = Fill(64, 0);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));  // stale read
  };
  RunBlocking(loop_, t(pod_, base_));
  std::string report = checker_.Report();
  EXPECT_NE(report.find("stale-read"), std::string::npos) << report;
  EXPECT_NE(report.find("recent accesses"), std::string::npos) << report;
}

TEST_F(CoherenceCheckerTest, DetachedCheckerSeesNothing) {
  checker_.Detach();
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    auto data = Fill(64, 0x99);
    auto out = Fill(64, 0);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));  // stale, unseen
  };
  uint64_t before = checker_.events_seen();
  RunBlocking(loop_, t(pod_, base_));
  EXPECT_EQ(checker_.events_seen(), before);
  EXPECT_EQ(checker_.violation_count(), 0u);
}

}  // namespace
}  // namespace cxlpool::analysis
