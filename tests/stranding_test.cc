#include <gtest/gtest.h>

#include "src/stranding/binpack.h"
#include "src/stranding/experiment.h"
#include "src/stranding/staffing.h"
#include "src/stranding/workload.h"

namespace cxlpool::strand {
namespace {

TEST(ResourceVectorTest, Arithmetic) {
  ResourceVector a;
  a.v = {4, 16, 64, 2};
  ResourceVector b;
  b.v = {2, 8, 32, 1};
  a -= b;
  EXPECT_DOUBLE_EQ(a[kCores], 2);
  EXPECT_DOUBLE_EQ(a[kMemory], 8);
  a += b;
  EXPECT_DOUBLE_EQ(a[kSsd], 64);
}

TEST(ResourceVectorTest, Fits) {
  ResourceVector cap;
  cap.v = {4, 16, 64, 2};
  ResourceVector small;
  small.v = {4, 16, 64, 2};
  EXPECT_TRUE(cap.Fits(small));
  small.v[kNic] = 2.1;
  EXPECT_FALSE(cap.Fits(small));
}

TEST(WorkloadTest, CatalogSane) {
  auto catalog = DefaultVmCatalog();
  ASSERT_GE(catalog.size(), 6u);
  HostShape host = DefaultHostShape();
  for (const VmType& t : catalog) {
    EXPECT_GT(t.weight, 0) << t.name;
    // Every type must fit an empty host in every dimension.
    EXPECT_TRUE(host.capacity.Fits(t.demand)) << t.name;
  }
}

TEST(WorkloadTest, GeneratorRespectsWeights) {
  auto catalog = DefaultVmCatalog();
  VmArrivalGenerator gen(catalog, 7);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[std::string(gen.Next().name)]++;
  }
  // gp-small (weight 30) must be drawn far more often than storage-opt
  // (weight 4).
  EXPECT_GT(counts["gp-small"], counts["storage-opt"] * 3);
}

TEST(WorkloadTest, PerturbationChangesMix) {
  auto catalog = DefaultVmCatalog();
  VmArrivalGenerator a(catalog, 11);
  VmArrivalGenerator b(catalog, 11);
  b.PerturbWeights(1.5);
  int same = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.Next().name == b.Next().name) {
      ++same;
    }
  }
  EXPECT_LT(same, 450);  // distributions diverged
}

TEST(BinPackTest, FillsHostsUntilSomethingBinds) {
  ClusterConfig config = PooledSsdNicConfig(8, 1);
  StrandingResult r = PackCluster(config, DefaultVmCatalog(), 3);
  EXPECT_GT(r.vms_placed, 50);
  // At least one dimension should be nearly exhausted on average...
  double min_stranded = 1.0;
  for (int res = 0; res < kResourceCount; ++res) {
    min_stranded = std::min(min_stranded, r.stranded[res]);
    EXPECT_GE(r.stranded[res], 0.0);
    EXPECT_LE(r.stranded[res], 1.0);
  }
  EXPECT_LT(min_stranded, 0.25);
}

TEST(BinPackTest, DeterministicForSeed) {
  ClusterConfig config = PooledSsdNicConfig(8, 1);
  StrandingResult a = PackCluster(config, DefaultVmCatalog(), 5);
  StrandingResult b = PackCluster(config, DefaultVmCatalog(), 5);
  EXPECT_EQ(a.vms_placed, b.vms_placed);
  for (int r = 0; r < kResourceCount; ++r) {
    EXPECT_DOUBLE_EQ(a.stranded[r], b.stranded[r]);
  }
}

TEST(BinPackTest, Figure2Calibration) {
  // The headline reproduction: SSD ~54% and NIC ~29% stranded, SSD > NIC
  // >> cores > memory.
  ExperimentConfig config;
  config.cluster = PooledSsdNicConfig(96, 1);
  config.trials = 10;
  TrialSeries s = RunTrials(config);
  EXPECT_NEAR(s.stranded[kSsd].mean(), 0.54, 0.06);
  EXPECT_NEAR(s.stranded[kNic].mean(), 0.29, 0.06);
  EXPECT_GT(s.stranded[kSsd].mean(), s.stranded[kNic].mean());
  EXPECT_GT(s.stranded[kNic].mean(), s.stranded[kCores].mean());
  EXPECT_GT(s.stranded[kCores].mean(), s.stranded[kMemory].mean());
}

TEST(BinPackTest, PoolingNeverIncreasesPooledStranding) {
  for (int pod : {2, 8}) {
    ExperimentConfig base;
    base.cluster = PooledSsdNicConfig(32, 1);
    base.trials = 5;
    ExperimentConfig pooled = base;
    pooled.cluster = PooledSsdNicConfig(32, pod);
    TrialSeries a = RunTrials(base);
    TrialSeries b = RunTrials(pooled);
    EXPECT_LE(b.stranded[kSsd].mean(), a.stranded[kSsd].mean() + 0.02) << pod;
    EXPECT_LE(b.stranded[kNic].mean(), a.stranded[kNic].mean() + 0.02) << pod;
  }
}

TEST(BinPackTest, PodSizeMustDivideHosts) {
  ClusterConfig config = PooledSsdNicConfig(8, 3);
  EXPECT_DEATH(PackCluster(config, DefaultVmCatalog(), 1), "CHECK");
}

TEST(ExperimentTest, PercentilesOrdered) {
  ExperimentConfig config;
  config.cluster = PooledSsdNicConfig(16, 1);
  config.trials = 8;
  TrialSeries s = RunTrials(config);
  EXPECT_LE(s.Percentile(kSsd, 0.1), s.Percentile(kSsd, 0.5));
  EXPECT_LE(s.Percentile(kSsd, 0.5), s.Percentile(kSsd, 0.9));
}

// --- Square-root staffing ---

TEST(StaffingTest, CalibrationReproducesBaseline) {
  StaffingConfig cfg = CalibrateStaffing(0.54);
  StaffingPoint p1 = SimulateStaffing(cfg, 1);
  EXPECT_NEAR(p1.stranded, 0.54, 0.03);
  EXPECT_NEAR(p1.provisioned_per_host, 1.0, 0.05);
}

TEST(StaffingTest, StrandingFallsMonotonically) {
  StaffingConfig cfg = CalibrateStaffing(0.54);
  double prev = 1.0;
  for (int n : {1, 2, 4, 8, 16}) {
    StaffingPoint p = SimulateStaffing(cfg, n);
    EXPECT_LT(p.stranded, prev + 1e-9) << n;
    prev = p.stranded;
  }
}

TEST(StaffingTest, MatchesAnalyticApproximation) {
  StaffingConfig cfg = CalibrateStaffing(0.29);
  for (int n : {1, 4, 16}) {
    StaffingPoint sim = SimulateStaffing(cfg, n);
    StaffingPoint ana = AnalyticStaffing(cfg, n);
    EXPECT_NEAR(sim.stranded, ana.stranded, 0.03) << n;
  }
}

TEST(StaffingTest, FleetShrinksWithPodSize) {
  StaffingConfig cfg = CalibrateStaffing(0.54);
  StaffingPoint p8 = SimulateStaffing(cfg, 8);
  // The pod buys meaningfully less hardware per host than 1:1 provisioning.
  EXPECT_LT(p8.fleet_fraction, 0.75);
  EXPECT_GT(p8.fleet_fraction, 0.45);
}

TEST(StaffingTest, SqrtRuleAnchors) {
  // The paper's worked numbers: 54% -> ~19% and 29% -> ~10% at N=8.
  EXPECT_NEAR(SqrtNEstimate(0.54, 8), 0.19, 0.01);
  EXPECT_NEAR(SqrtNEstimate(0.29, 8), 0.10, 0.01);
  EXPECT_DOUBLE_EQ(SqrtNEstimate(0.54, 1), 0.54);
}

}  // namespace
}  // namespace cxlpool::strand
