#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/cxl/host_adapter.h"
#include "src/cxl/pod.h"
#include "src/cxl/pool.h"
#include "src/cxl/replication.h"
#include "src/sim/task.h"

namespace cxlpool::cxl {
namespace {

using sim::RunBlocking;
using sim::Task;

std::vector<std::byte> Bytes(std::initializer_list<uint8_t> vals) {
  std::vector<std::byte> out;
  for (uint8_t v : vals) {
    out.push_back(std::byte{v});
  }
  return out;
}

std::vector<std::byte> Fill(size_t n, uint8_t v) {
  return std::vector<std::byte>(n, std::byte{v});
}

class CxlPodTest : public ::testing::Test {
 protected:
  CxlPodTest() : pod_(loop_, MakeConfig()) {}

  static CxlPodConfig MakeConfig() {
    CxlPodConfig c;
    c.num_hosts = 3;
    c.num_mhds = 2;
    c.mhd_capacity = 8 * kMiB;
    c.dram_per_host = 8 * kMiB;
    return c;
  }

  sim::EventLoop loop_;
  CxlPod pod_;
};

// --- Pool allocation & routing ---

TEST_F(CxlPodTest, AllocateBalancesAcrossMhds) {
  auto s1 = pod_.pool().Allocate(1 * kMiB);
  ASSERT_TRUE(s1.ok());
  auto s2 = pod_.pool().Allocate(1 * kMiB);
  ASSERT_TRUE(s2.ok());
  // Least-utilized policy: second segment lands on the other MHD.
  EXPECT_NE(s1->mhds[0], s2->mhds[0]);
}

TEST_F(CxlPodTest, AllocatePreferredMhd) {
  auto s = pod_.pool().Allocate(4096, MhdId(1));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->mhds[0], MhdId(1));
  EXPECT_EQ(*pod_.pool().RouteAddress(s->base), MhdId(1));
  EXPECT_EQ(*pod_.pool().RouteAddress(s->base + s->size - 1), MhdId(1));
}

TEST_F(CxlPodTest, AllocateRejectsOversized) {
  auto s = pod_.pool().Allocate(100 * kMiB);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CxlPodTest, AllocateOnFailedMhdRejected) {
  pod_.FailMhd(MhdId(0));
  auto s = pod_.pool().Allocate(4096, MhdId(0));
  EXPECT_EQ(s.status().code(), StatusCode::kUnavailable);
  // Unpreferred allocation still succeeds on the healthy MHD.
  auto s2 = pod_.pool().Allocate(4096);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->mhds[0], MhdId(1));
}

TEST_F(CxlPodTest, FreeReturnsCapacity) {
  auto s = pod_.pool().Allocate(1 * kMiB, MhdId(0));
  ASSERT_TRUE(s.ok());
  uint64_t used = pod_.pool().used_bytes(MhdId(0));
  EXPECT_GE(used, 1 * kMiB);
  ASSERT_TRUE(pod_.pool().Free(*s).ok());
  EXPECT_EQ(pod_.pool().used_bytes(MhdId(0)), used - s->size);
  EXPECT_EQ(pod_.pool().Free(*s).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CxlPodTest, InterleavedRoutingAlternatesPerGranule) {
  auto s = pod_.pool().AllocateInterleaved(64 * kKiB, {MhdId(0), MhdId(1)});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->interleaved());
  EXPECT_EQ(*pod_.pool().RouteAddress(s->base), MhdId(0));
  EXPECT_EQ(*pod_.pool().RouteAddress(s->base + kInterleaveGranule), MhdId(1));
  EXPECT_EQ(*pod_.pool().RouteAddress(s->base + 2 * kInterleaveGranule), MhdId(0));
}

TEST_F(CxlPodTest, RouteUnknownAddressFails) {
  EXPECT_FALSE(pod_.pool().RouteAddress(0xdeadbeef).ok());
}

// --- Host adapter: local DRAM ---

TEST_F(CxlPodTest, DramRoundTripAndTiming) {
  HostAdapter& h = pod_.host(0);
  auto addr = h.AllocateDram(4096);
  ASSERT_TRUE(addr.ok());
  auto in = Fill(256, 0x5a);
  auto out = Fill(256, 0);

  auto t = [](HostAdapter& host, uint64_t a, std::span<const std::byte> wr,
              std::span<std::byte> rd) -> Task<> {
    CXLPOOL_CHECK_OK(co_await host.Store(a, wr));
    CXLPOOL_CHECK_OK(co_await host.Load(a, rd));
  };
  RunBlocking(loop_, t(h, *addr, in, out));
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
  // Store ~dram_store, load ~dram_load + serialization; both well under 1 us.
  EXPECT_GT(loop_.now(), h.timing().dram_load);
  EXPECT_LT(loop_.now(), 1000);
}

TEST_F(CxlPodTest, CannotTouchAnotherHostsDram) {
  auto addr = pod_.host(1).AllocateDram(4096);
  ASSERT_TRUE(addr.ok());
  auto buf = Fill(64, 0);
  auto t = [](HostAdapter& host, uint64_t a, std::span<std::byte> b) -> Task<Status> {
    co_return co_await host.Load(a, b);
  };
  Status st = RunBlocking(loop_, t(pod_.host(0), *addr, buf));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// --- Host adapter: CXL pool semantics ---

TEST_F(CxlPodTest, CxlLoadIsSlowerThanDram) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto buf = Fill(64, 0);
  auto t = [](HostAdapter& host, uint64_t a, std::span<std::byte> b) -> Task<> {
    CXLPOOL_CHECK_OK(co_await host.Load(a, b));
  };
  RunBlocking(loop_, t(pod_.host(0), seg->base, buf));
  Nanos cxl_time = loop_.now();
  EXPECT_GE(cxl_time, pod_.host(0).timing().cxl_read * 7 / 10);  // jittered
  // Paper §3: ~2-3x local DRAM.
  double ratio = static_cast<double>(cxl_time) /
                 static_cast<double>(pod_.host(0).timing().dram_load);
  EXPECT_GE(ratio, 2.0);
  EXPECT_LE(ratio, 3.5);
}

TEST_F(CxlPodTest, SecondLoadHitsCache) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto buf = Fill(64, 0);
  HostAdapter& h = pod_.host(0);

  auto t = [](HostAdapter& host, uint64_t a, std::span<std::byte> b) -> Task<> {
    CXLPOOL_CHECK_OK(co_await host.Load(a, b));
  };
  RunBlocking(loop_, t(h, seg->base, buf));
  Nanos first = loop_.now();
  RunBlocking(loop_, t(h, seg->base, buf));
  Nanos second = loop_.now() - first;
  EXPECT_LT(second, first / 10);  // cache hit is far cheaper
  EXPECT_GE(h.cache().stats().hits, 1u);
}

// The central hazard: cached stores are invisible to other hosts, and
// cached loads go stale — until the software coherence protocol is used.
TEST_F(CxlPodTest, CachedStoreInvisibleToOtherHostWithoutFlush) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  uint64_t a = seg->base;
  auto payload = Bytes({1, 2, 3, 4});

  auto t = [](HostAdapter& writer, HostAdapter& reader, uint64_t addr,
              std::span<const std::byte> data) -> Task<int> {
    CXLPOOL_CHECK_OK(co_await writer.Store(addr, data));  // cached, dirty
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  int seen = RunBlocking(loop_, t(pod_.host(0), pod_.host(1), a, payload));
  EXPECT_EQ(seen, 0);  // stale: the store never reached the pool
}

TEST_F(CxlPodTest, FlushMakesCachedStoreVisible) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  uint64_t a = seg->base;
  auto payload = Bytes({1, 2, 3, 4});

  auto t = [](HostAdapter& writer, HostAdapter& reader, uint64_t addr,
              std::span<const std::byte> data) -> Task<int> {
    CXLPOOL_CHECK_OK(co_await writer.Store(addr, data));
    CXLPOOL_CHECK_OK(co_await writer.Flush(addr, data.size()));
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(0), pod_.host(1), a, payload)), 1);
}

TEST_F(CxlPodTest, NtStoreImmediatelyVisible) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  uint64_t a = seg->base;
  auto payload = Bytes({9, 9, 9, 9});

  auto t = [](HostAdapter& writer, HostAdapter& reader, uint64_t addr,
              std::span<const std::byte> data) -> Task<int> {
    CXLPOOL_CHECK_OK(co_await writer.StoreNt(addr, data));
    // Posted write: visible after the media-commit latency, no flush needed.
    co_await sim::Delay(writer.loop(), kMicrosecond);
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(0), pod_.host(1), a, payload)), 9);
}

TEST_F(CxlPodTest, StaleCachedLoadNeedsInvalidate) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  uint64_t a = seg->base;

  // Reader caches the old value; writer publishes with nt-store; reader
  // still sees the stale copy until it self-invalidates.
  auto t = [](HostAdapter& writer, HostAdapter& reader, uint64_t addr)
      -> Task<std::pair<int, int>> {
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));  // caches zeros
    auto payload = Bytes({7, 7, 7, 7});
    CXLPOOL_CHECK_OK(co_await writer.StoreNt(addr, payload));
    co_await sim::Delay(writer.loop(), kMicrosecond);  // media commit
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));
    int stale = static_cast<int>(seen[0]);
    CXLPOOL_CHECK_OK(co_await reader.Invalidate(addr, 4));
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));
    int fresh = static_cast<int>(seen[0]);
    co_return std::make_pair(stale, fresh);
  };
  auto [stale, fresh] = RunBlocking(loop_, t(pod_.host(0), pod_.host(1), seg->base));
  EXPECT_EQ(stale, 0);  // the bug the paper's protocol exists to avoid
  EXPECT_EQ(fresh, 7);
  (void)a;
}

TEST_F(CxlPodTest, SameHostSeesOwnCachedStore) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](HostAdapter& h, uint64_t addr) -> Task<int> {
    auto payload = Bytes({5, 5, 5, 5});
    CXLPOOL_CHECK_OK(co_await h.Store(addr, payload));
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await h.Load(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(0), seg->base)), 5);
}

// --- DMA semantics ---

TEST_F(CxlPodTest, DmaWriteVisibleToRemoteHostAfterInvalidate) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](HostAdapter& dma_host, HostAdapter& reader, uint64_t addr) -> Task<int> {
    auto payload = Bytes({3, 3, 3, 3});
    CXLPOOL_CHECK_OK(co_await dma_host.DmaWrite(addr, payload));
    co_await sim::Delay(dma_host.loop(), kMicrosecond);  // posted-write commit
    CXLPOOL_CHECK_OK(co_await reader.Invalidate(addr, 4));
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await reader.Load(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(0), pod_.host(1), seg->base)), 3);
}

TEST_F(CxlPodTest, DmaReadSnoopsOwnHostDirtyCache) {
  // The device's own host wrote through its cache (dirty, not flushed).
  // Inbound DMA on the same host snoops the cache and sees the data.
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](HostAdapter& h, uint64_t addr) -> Task<int> {
    auto payload = Bytes({8, 8, 8, 8});
    CXLPOOL_CHECK_OK(co_await h.Store(addr, payload));  // dirty in cache
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await h.DmaRead(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(0), seg->base)), 8);
}

TEST_F(CxlPodTest, DmaReadDoesNotSnoopRemoteHostCache) {
  // Host 1 wrote through its cache without flushing; a device on host 0
  // DMA-reads the pool and must NOT see host 1's dirty data.
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](HostAdapter& writer, HostAdapter& dma_host, uint64_t addr) -> Task<int> {
    auto payload = Bytes({6, 6, 6, 6});
    CXLPOOL_CHECK_OK(co_await writer.Store(addr, payload));
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await dma_host.DmaRead(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(1), pod_.host(0), seg->base)), 0);
}

// --- Failure handling ---

TEST_F(CxlPodTest, AccessFailsWhenMhdDown) {
  auto seg = pod_.pool().Allocate(4096, MhdId(0));
  ASSERT_TRUE(seg.ok());
  pod_.FailMhd(MhdId(0));
  auto buf = Fill(64, 0);
  auto t = [](HostAdapter& h, uint64_t a, std::span<std::byte> b) -> Task<Status> {
    co_return co_await h.Load(a, b);
  };
  Status st = RunBlocking(loop_, t(pod_.host(0), seg->base, buf));
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);

  pod_.RepairMhd(MhdId(0));
  st = RunBlocking(loop_, t(pod_.host(0), seg->base, buf));
  EXPECT_TRUE(st.ok());
}

TEST_F(CxlPodTest, AccessFailsWhenLinkDown) {
  auto seg = pod_.pool().Allocate(4096, MhdId(0));
  ASSERT_TRUE(seg.ok());
  pod_.FailLink(HostId(0), MhdId(0));
  auto buf = Fill(64, 0);
  auto t = [](HostAdapter& h, uint64_t a, std::span<std::byte> b) -> Task<Status> {
    co_return co_await h.Load(a, b);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_.host(0), seg->base, buf)).code(),
            StatusCode::kUnavailable);
  // Another host with a healthy link still reaches the segment.
  EXPECT_TRUE(RunBlocking(loop_, t(pod_.host(1), seg->base, buf)).ok());
}

TEST_F(CxlPodTest, HealthyPathsReflectFailures) {
  EXPECT_EQ(pod_.HealthyPaths(HostId(0)), 2);
  pod_.FailLink(HostId(0), MhdId(1));
  EXPECT_EQ(pod_.HealthyPaths(HostId(0)), 1);
  pod_.FailMhd(MhdId(0));
  EXPECT_EQ(pod_.HealthyPaths(HostId(0)), 0);
  EXPECT_EQ(pod_.HealthyPaths(HostId(1)), 1);  // link to MHD 1 still up
}

// --- Bandwidth / interleaving ---

TEST_F(CxlPodTest, InterleavingAggregatesLinkBandwidth) {
  // Stream 4 MiB via one MHD vs striped across both; the striped copy
  // should take roughly half as long (two x8 links instead of one).
  auto single = pod_.pool().Allocate(4 * kMiB, MhdId(0));
  ASSERT_TRUE(single.ok());
  auto striped = pod_.pool().AllocateInterleaved(4 * kMiB, {MhdId(0), MhdId(1)});
  ASSERT_TRUE(striped.ok());

  auto stream = [](HostAdapter& h, uint64_t base, uint64_t total) -> Task<> {
    std::vector<std::byte> chunk(64 * kKiB, std::byte{0xab});
    for (uint64_t off = 0; off < total; off += chunk.size()) {
      CXLPOOL_CHECK_OK(co_await h.StoreNt(base + off, chunk));
    }
  };

  sim::EventLoop loop1;
  CxlPod pod1(loop1, MakeConfig());
  auto s1 = pod1.pool().Allocate(4 * kMiB, MhdId(0));
  RunBlocking(loop1, stream(pod1.host(0), s1->base, 4 * kMiB));
  Nanos t_single = loop1.now();

  sim::EventLoop loop2;
  CxlPod pod2(loop2, MakeConfig());
  auto s2 = pod2.pool().AllocateInterleaved(4 * kMiB, {MhdId(0), MhdId(1)});
  RunBlocking(loop2, stream(pod2.host(0), s2->base, 4 * kMiB));
  Nanos t_striped = loop2.now();

  double speedup = static_cast<double>(t_single) / static_cast<double>(t_striped);
  EXPECT_GT(speedup, 1.6);
  EXPECT_LT(speedup, 2.4);
}

TEST_F(CxlPodTest, StatsAccumulate) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  HostAdapter& h = pod_.host(2);
  auto t = [](HostAdapter& host, uint64_t a) -> Task<> {
    auto payload = Bytes({1});
    CXLPOOL_CHECK_OK(co_await host.StoreNt(a, payload));
    std::array<std::byte, 1> b{};
    CXLPOOL_CHECK_OK(co_await host.Load(a, b));
    CXLPOOL_CHECK_OK(co_await host.Flush(a, 1));
  };
  RunBlocking(loop_, t(h, seg->base));
  EXPECT_EQ(h.stats().nt_stores, 1u);
  EXPECT_EQ(h.stats().loads, 1u);
  EXPECT_EQ(h.stats().flushes, 1u);
  EXPECT_EQ(h.stats().lost_dirty_lines, 0u);
}


// --- Replicated regions (Sec. 5 "highly-available CXL pods") ---

TEST_F(CxlPodTest, ReplicationRequiresEnoughHealthyMhds) {
  EXPECT_FALSE(ReplicatedRegion::Create(pod_.pool(), 4096, 3).ok());  // only 2 MHDs
  pod_.FailMhd(MhdId(1));
  EXPECT_FALSE(ReplicatedRegion::Create(pod_.pool(), 4096, 2).ok());
  pod_.RepairMhd(MhdId(1));
  auto region = ReplicatedRegion::Create(pod_.pool(), 4096, 2);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->replicas(), 2);
  // Replicas land on DISTINCT MHDs.
  EXPECT_NE(region->segment(0).mhds[0], region->segment(1).mhds[0]);
}

TEST_F(CxlPodTest, ReplicatedReadSurvivesMhdFailure) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 4096, 2);
  ASSERT_TRUE(region.ok());

  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<std::pair<int, int>> {
    auto payload = Bytes({42, 42, 42, 42});
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, payload));
    co_await sim::Delay(pod.loop(), kMicrosecond);

    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await r.ReadFresh(pod.host(1), 0, seen));
    int before = static_cast<int>(seen[0]);

    // Kill the primary replica's MHD; reads transparently fail over.
    pod.FailMhd(r.segment(0).mhds[0]);
    seen.fill(std::byte{0});
    CXLPOOL_CHECK_OK(co_await r.ReadFresh(pod.host(1), 0, seen));
    int after = static_cast<int>(seen[0]);
    co_return std::make_pair(before, after);
  };
  auto [before, after] = RunBlocking(loop_, t(*region, pod_));
  EXPECT_EQ(before, 42);
  EXPECT_EQ(after, 42);
  EXPECT_EQ(region->stats().failover_reads, 1u);
}

TEST_F(CxlPodTest, ReplicatedWriteDegradesGracefully) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 4096, 2);
  ASSERT_TRUE(region.ok());
  pod_.FailMhd(region->segment(1).mhds[0]);  // secondary down

  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<Status> {
    auto payload = Bytes({7, 7, 7, 7});
    co_return co_await r.Publish(pod.host(0), 0, payload);
  };
  EXPECT_TRUE(RunBlocking(loop_, t(*region, pod_)).ok());
  EXPECT_EQ(region->stats().degraded_writes, 1u);

  // Both replicas down -> the write finally fails.
  pod_.FailMhd(region->segment(0).mhds[0]);
  EXPECT_FALSE(RunBlocking(loop_, t(*region, pod_)).ok());
}

TEST_F(CxlPodTest, ReplicatedWriteDegradesWhenWriterLinkDown) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 4096, 2);
  ASSERT_TRUE(region.ok());
  // Sever only the writer's link to the secondary replica's MHD. The MHD
  // itself stays healthy — other hosts still reach both copies.
  pod_.FailLink(HostId(0), region->segment(1).mhds[0]);

  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<std::pair<Status, int>> {
    auto payload = Bytes({9, 9, 9, 9});
    Status wr = co_await r.Publish(pod.host(0), 0, payload);
    co_await sim::Delay(pod.loop(), kMicrosecond);
    // A reader with intact links sees the primary copy, no failover.
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await r.ReadFresh(pod.host(1), 0, seen));
    co_return std::make_pair(wr, static_cast<int>(seen[0]));
  };
  auto [wr, seen] = RunBlocking(loop_, t(*region, pod_));
  EXPECT_TRUE(wr.ok());  // one reachable replica is enough
  EXPECT_EQ(region->stats().degraded_writes, 1u);
  EXPECT_EQ(region->stats().failover_reads, 0u);
  EXPECT_EQ(seen, 9);
}

TEST_F(CxlPodTest, ReplicatedReadFailsOverWhenReaderLinkDown) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 4096, 2);
  ASSERT_TRUE(region.ok());

  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<int> {
    auto payload = Bytes({5, 5, 5, 5});
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, payload));
    co_await sim::Delay(pod.loop(), kMicrosecond);
    // The reader loses its path to the PRIMARY replica only; the copy on
    // the other MHD serves the read.
    pod.FailLink(HostId(1), r.segment(0).mhds[0]);
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await r.ReadFresh(pod.host(1), 0, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(*region, pod_)), 5);
  EXPECT_EQ(region->stats().failover_reads, 1u);
  // The writer's links were never touched: the publish was clean.
  EXPECT_EQ(region->stats().degraded_writes, 0u);
}

TEST_F(CxlPodTest, ReplicatedRegionBoundsChecked) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 128, 2);
  ASSERT_TRUE(region.ok());
  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<Status> {
    std::array<std::byte, 64> buf{};
    co_return co_await r.Publish(pod.host(0), 100, buf);  // 100+64 > 128
  };
  EXPECT_EQ(RunBlocking(loop_, t(*region, pod_)).code(), StatusCode::kOutOfRange);
}

TEST_F(CxlPodTest, ReplicatedReadWithAllReplicasDownErrorsOut) {
  // The worst case must be an ERROR, never a hang: a control-plane caller
  // blocked forever on dead memory is itself a liveness bug.
  auto region = ReplicatedRegion::Create(pod_.pool(), 4096, 2);
  ASSERT_TRUE(region.ok());
  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<Status> {
    auto payload = Bytes({3, 3, 3, 3});
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, payload));
    pod.FailMhd(r.segment(0).mhds[0]);
    pod.FailMhd(r.segment(1).mhds[0]);
    std::array<std::byte, 4> seen{};
    co_return co_await r.ReadFresh(pod.host(1), 0, seen);
  };
  Status st = RunBlocking(loop_, t(*region, pod_));  // returning at all = no hang
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

// --- Media poison + scrub (gray-failure RAS) ---

TEST_F(CxlPodTest, PoisonedLineReturnsDataLossOnFreshLoad) {
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](CxlPod& pod, uint64_t base) -> Task<std::pair<Status, Status>> {
    auto payload = Fill(64, 0x5a);
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(base, payload));
    // nt-stores are posted: wait past the media commit, or the in-flight
    // full-line write would land AFTER the poison and heal it.
    co_await sim::Delay(pod.loop(), kMicrosecond);
    pod.PoisonLine(base);
    std::array<std::byte, 64> out{};
    CXLPOOL_CHECK_OK(co_await pod.host(1).Invalidate(base, 64));
    Status poisoned = co_await pod.host(1).Load(base, out);
    // A full-line overwrite is fresh data + fresh ECC: the line heals.
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(base, payload));
    co_await sim::Delay(pod.loop(), kMicrosecond);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Invalidate(base, 64));
    Status healed = co_await pod.host(1).Load(base, out);
    co_return std::make_pair(poisoned, healed);
  };
  auto [poisoned, healed] = RunBlocking(loop_, t(pod_, seg->base));
  EXPECT_EQ(poisoned.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(healed.ok());
  EXPECT_EQ(pod_.host(1).stats().poisoned_reads, 1u);
  EXPECT_EQ(pod_.PoisonedLineCount(), 0u);
}

TEST_F(CxlPodTest, ScrubberRepairsPoisonedReplicaByteIdentically) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 256, 2);
  ASSERT_TRUE(region.ok());
  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<std::vector<std::byte>> {
    std::vector<std::byte> content(256);
    for (size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<std::byte>(i * 7 + 1);
    }
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, content));
    co_await sim::Delay(pod.loop(), kMicrosecond);  // let posted writes commit
    // Poison two lines of the PRIMARY replica: readers would failover,
    // but the data on that media is gone until the scrubber repairs it.
    pod.PoisonLine(r.segment(0).base + 0);
    pod.PoisonLine(r.segment(0).base + 128);
    CXLPOOL_CHECK_OK(co_await r.ScrubOnce(pod.host(1)));
    // Read back the PRIMARY copy directly: repair must be byte-identical.
    std::vector<std::byte> seen(256);
    CXLPOOL_CHECK_OK(co_await pod.host(2).Invalidate(r.segment(0).base, 256));
    CXLPOOL_CHECK_OK(co_await pod.host(2).Load(r.segment(0).base, seen));
    co_return seen;
  };
  std::vector<std::byte> seen = RunBlocking(loop_, t(*region, pod_));
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::byte>(i * 7 + 1)) << "byte " << i;
  }
  EXPECT_EQ(pod_.PoisonedLineCount(), 0u);
  EXPECT_GE(region->stats().scrub_repairs, 2u);
  EXPECT_EQ(region->stats().scrub_unrecoverable, 0u);
  EXPECT_GE(region->stats().lines_scrubbed, 4u);  // 4 lines per sweep
}

TEST_F(CxlPodTest, ScrubberRepairsDivergentReplica) {
  // Divergence without poison: one replica's media bytes get corrupted
  // in place (e.g. a torn partial write). The checksum fingers the bad
  // copy even though both replicas read back "successfully".
  auto region = ReplicatedRegion::Create(pod_.pool(), 64, 2);
  ASSERT_TRUE(region.ok());
  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<int> {
    auto content = Fill(64, 0x44);
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, content));
    co_await sim::Delay(pod.loop(), kMicrosecond);
    // Corrupt replica 1 behind the region's back.
    auto garbage = Fill(64, 0x99);
    CXLPOOL_CHECK_OK(co_await pod.host(2).StoreNt(r.segment(1).base, garbage));
    CXLPOOL_CHECK_OK(co_await r.ScrubOnce(pod.host(1)));
    std::array<std::byte, 64> seen{};
    CXLPOOL_CHECK_OK(co_await pod.host(2).Invalidate(r.segment(1).base, 64));
    CXLPOOL_CHECK_OK(co_await pod.host(2).Load(r.segment(1).base, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(*region, pod_)), 0x44);
  EXPECT_GE(region->stats().scrub_repairs, 1u);
}

TEST_F(CxlPodTest, ScrubberFlagsBothReplicasDivergedAsConflict) {
  // Split-brain damage: BOTH replicas scribbled past the published
  // content (e.g. each side of a partition wrote independently). No copy
  // matches the checksum, so there is no authority — the scrubber must
  // converge on the DETERMINISTIC winner (lowest healthy index), count a
  // conflict, and NEVER byte-merge or resolve silently.
  auto region = ReplicatedRegion::Create(pod_.pool(), 64, 2);
  ASSERT_TRUE(region.ok());
  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<std::pair<int, int>> {
    auto content = Fill(64, 0x44);
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, content));
    co_await sim::Delay(pod.loop(), kMicrosecond);
    // Both copies diverge, DIFFERENTLY, behind the region's back.
    CXLPOOL_CHECK_OK(
        co_await pod.host(2).StoreNt(r.segment(0).base, Fill(64, 0xA1)));
    CXLPOOL_CHECK_OK(
        co_await pod.host(2).StoreNt(r.segment(1).base, Fill(64, 0xB2)));
    CXLPOOL_CHECK_OK(co_await r.ScrubOnce(pod.host(1)));
    std::array<std::byte, 64> rep0{};
    std::array<std::byte, 64> rep1{};
    CXLPOOL_CHECK_OK(co_await pod.host(2).Invalidate(r.segment(0).base, 64));
    CXLPOOL_CHECK_OK(co_await pod.host(2).Load(r.segment(0).base, rep0));
    CXLPOOL_CHECK_OK(co_await pod.host(2).Invalidate(r.segment(1).base, 64));
    CXLPOOL_CHECK_OK(co_await pod.host(2).Load(r.segment(1).base, rep1));
    co_return std::make_pair(static_cast<int>(rep0[0]),
                             static_cast<int>(rep1[0]));
  };
  auto [rep0, rep1] = RunBlocking(loop_, t(*region, pod_));
  // Replica 0 wins (lowest healthy index); replica 1 is repaired FROM it —
  // never a byte-merge, never replica 1's content.
  EXPECT_EQ(rep0, 0xA1);
  EXPECT_EQ(rep1, 0xA1);
  EXPECT_GE(region->stats().scrub_conflicts, 1u);
  EXPECT_EQ(region->stats().scrub_unrecoverable, 0u);

  // The adopted winner settles: the next sweep sees a consistent line and
  // raises no further conflicts.
  uint64_t conflicts_after_first = region->stats().scrub_conflicts;
  RunBlocking(loop_, [](ReplicatedRegion& r, CxlPod& pod) -> Task<> {
    CXLPOOL_CHECK_OK(co_await r.ScrubOnce(pod.host(1)));
  }(*region, pod_));
  EXPECT_EQ(region->stats().scrub_conflicts, conflicts_after_first);
}

TEST_F(CxlPodTest, ScrubberDoesNotCountTransientOutageAsUnrecoverable) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 64, 2);
  ASSERT_TRUE(region.ok());
  auto t = [](ReplicatedRegion& r, CxlPod& pod) -> Task<> {
    auto content = Fill(64, 0x21);
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, content));
    // Whole pool unreachable from the scrubbing host: nothing is
    // readable, but nothing is LOST — the sweep must not cry wolf.
    pod.FailLink(HostId(1), MhdId(0));
    pod.FailLink(HostId(1), MhdId(1));
    (void)co_await r.ScrubOnce(pod.host(1));
    pod.RepairLink(HostId(1), MhdId(0));
    pod.RepairLink(HostId(1), MhdId(1));
    CXLPOOL_CHECK_OK(co_await r.ScrubOnce(pod.host(1)));
    co_return;
  };
  RunBlocking(loop_, t(*region, pod_));
  EXPECT_EQ(region->stats().scrub_unrecoverable, 0u);
}

TEST_F(CxlPodTest, ScrubLoopRunsUntilStopped) {
  auto region = ReplicatedRegion::Create(pod_.pool(), 64, 2);
  ASSERT_TRUE(region.ok());
  RunBlocking(loop_, [](ReplicatedRegion& r, CxlPod& pod) -> Task<> {
    auto content = Fill(64, 1);
    CXLPOOL_CHECK_OK(co_await r.Publish(pod.host(0), 0, content));
  }(*region, pod_));
  sim::StopToken stop;
  sim::Spawn(region->ScrubLoop(pod_.host(0), 10 * kMicrosecond, stop));
  pod_.PoisonLine(region->segment(0).base);
  loop_.RunFor(100 * kMicrosecond);
  EXPECT_EQ(pod_.PoisonedLineCount(), 0u);  // loop swept and repaired
  uint64_t swept = region->stats().lines_scrubbed;
  EXPECT_GE(swept, 5u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
  // Stopped: no further sweeps.
  EXPECT_LE(region->stats().lines_scrubbed, swept + 1);
}


// --- CXL 3.0 Back-Invalidate emulation (Sec. 3 ablation) ---

TEST_F(CxlPodTest, BackInvalidateMakesCachedPollsFresh) {
  pod_.pool().set_back_invalidate(true);
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());

  auto t = [](CxlPod& pod, uint64_t addr) -> Task<std::pair<int, int>> {
    std::array<std::byte, 4> seen{};
    // Reader caches the line (snoop filter learns about it).
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, seen));
    int before = static_cast<int>(seen[0]);
    // Writer publishes; hardware BI drops the reader's copy.
    auto payload = Bytes({9, 9, 9, 9});
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, payload));
    co_await sim::Delay(pod.loop(), kMicrosecond);
    // PLAIN load — no software invalidate — still sees the new value.
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, seen));
    co_return std::make_pair(before, static_cast<int>(seen[0]));
  };
  auto [before, after] = RunBlocking(loop_, t(pod_, seg->base));
  EXPECT_EQ(before, 0);
  EXPECT_EQ(after, 9);
}

TEST_F(CxlPodTest, WithoutBackInvalidateCachedPollsGoStale) {
  // Control: identical sequence with BI off (today's hardware) is stale.
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<int> {
    std::array<std::byte, 4> seen{};
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, seen));
    auto payload = Bytes({9, 9, 9, 9});
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, payload));
    co_await sim::Delay(pod.loop(), kMicrosecond);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop_, t(pod_, seg->base)), 0);
}

TEST_F(CxlPodTest, BackInvalidateChargesSnoopLatency) {
  pod_.pool().set_back_invalidate(true);
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());

  auto t = [](CxlPod& pod, uint64_t addr, bool warm_reader) -> Task<Nanos> {
    if (warm_reader) {
      std::array<std::byte, 4> b{};
      CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, b));
    }
    auto payload = Bytes({1, 1, 1, 1});
    Nanos start = pod.loop().now();
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, payload));
    co_return pod.loop().now() - start;
  };
  Nanos no_sharers = RunBlocking(loop_, t(pod_, seg->base + 2048, false));
  Nanos with_sharer = RunBlocking(loop_, t(pod_, seg->base, true));
  EXPECT_GE(with_sharer, no_sharers + pod_.host(0).timing().bi_snoop);
}

TEST_F(CxlPodTest, BackInvalidateOnlyHitsActualSharers) {
  pod_.pool().set_back_invalidate(true);
  auto seg = pod_.pool().Allocate(4096);
  ASSERT_TRUE(seg.ok());
  auto t = [](CxlPod& pod, uint64_t addr) -> Task<> {
    std::array<std::byte, 4> b{};
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, b));        // sharer
    CXLPOOL_CHECK_OK(co_await pod.host(2).Load(addr + 512, b));  // other line
    auto payload = Bytes({5});
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, payload));
  };
  RunBlocking(loop_, t(pod_, seg->base));
  // Host 1's copy of the written line was snooped away...
  EXPECT_EQ(pod_.host(1).cache().Peek(CachelineFloor(seg->base)), nullptr);
  // ...host 2's copy of an unrelated line survived.
  EXPECT_NE(pod_.host(2).cache().Peek(CachelineFloor(seg->base + 512)), nullptr);
}

}  // namespace
}  // namespace cxlpool::cxl
