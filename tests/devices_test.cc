#include <gtest/gtest.h>

#include <cstring>

#include "src/core/rack.h"
#include "src/netsim/network.h"
#include "src/sim/task.h"

namespace cxlpool::devices {
namespace {

using core::Rack;
using core::RackConfig;
using sim::RunBlocking;
using sim::Task;

// --- netsim ---

class Sink : public netsim::Endpoint {
 public:
  void DeliverFrame(netsim::Frame frame) override {
    frames.push_back(std::move(frame));
  }
  std::vector<netsim::Frame> frames;
};

TEST(NetworkTest, DeliversToAttachedMac) {
  sim::EventLoop loop;
  netsim::Network net(loop, netsim::NetworkConfig{});
  Sink a;
  Sink b;
  ASSERT_TRUE(net.Attach(1, &a).ok());
  ASSERT_TRUE(net.Attach(2, &b).ok());

  netsim::Frame f;
  f.src = 1;
  f.dst = 2;
  f.payload.assign(100, std::byte{0x42});
  net.Transmit(f);
  EXPECT_TRUE(b.frames.empty());  // not before propagation + switch
  loop.Run();
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(b.frames[0].payload.size(), 100u);
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(net.frames_delivered(), 1u);
}

TEST(NetworkTest, UnknownMacDropped) {
  sim::EventLoop loop;
  netsim::Network net(loop, netsim::NetworkConfig{});
  netsim::Frame f;
  f.dst = 99;
  net.Transmit(f);
  loop.Run();
  EXPECT_EQ(net.frames_dropped(), 1u);
}

TEST(NetworkTest, DuplicateMacRejected) {
  sim::EventLoop loop;
  netsim::Network net(loop, netsim::NetworkConfig{});
  Sink a;
  ASSERT_TRUE(net.Attach(1, &a).ok());
  EXPECT_EQ(net.Attach(1, &a).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(net.Detach(1).ok());
  EXPECT_EQ(net.Detach(1).code(), StatusCode::kNotFound);
}

TEST(NetworkTest, DeliveryLatencyMatchesModel) {
  sim::EventLoop loop;
  netsim::NetworkConfig config;
  netsim::Network net(loop, config);
  Sink b;
  ASSERT_TRUE(net.Attach(2, &b).ok());
  netsim::Frame f;
  f.dst = 2;
  f.payload.assign(1458, std::byte{1});  // 1500 B on the wire
  net.Transmit(f);
  loop.Run();
  Nanos expected = 2 * config.propagation + config.switch_latency +
                   static_cast<Nanos>(1500 / GbitPerSecToBytesPerNanos(100));
  EXPECT_NEAR(static_cast<double>(loop.now()), static_cast<double>(expected), 5);
}

TEST(NetworkTest, EgressSerializationQueues) {
  sim::EventLoop loop;
  netsim::Network net(loop, netsim::NetworkConfig{});
  Sink b;
  ASSERT_TRUE(net.Attach(2, &b).ok());
  // Two full-size frames to the same port: the second queues behind the
  // first on the egress link.
  for (int i = 0; i < 2; ++i) {
    netsim::Frame f;
    f.dst = 2;
    f.payload.assign(1458, std::byte{1});
    net.Transmit(f);
  }
  loop.Run();
  ASSERT_EQ(b.frames.size(), 2u);
  // Both delivered, second ~one serialization later than the first.
  EXPECT_GT(loop.now(), 2 * 120);  // two 1500B serializations at 12.5 B/ns
}

// --- NIC via the full datapath is covered in core/stack tests; here the
// device-local behaviours. ---

RackConfig TinyRack() {
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 1;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 8 * kMiB;
  return rc;
}

TEST(NicDeviceTest, DropsWhenNoRxBuffersPosted) {
  sim::EventLoop loop;
  Rack rack(loop, TinyRack());
  rack.Start();

  // Send a frame to NIC 1 before any driver posted RX buffers.
  netsim::Frame f;
  f.dst = rack.nic(1)->mac();
  f.src = rack.nic(0)->mac();
  f.payload.assign(64, std::byte{1});
  rack.network().Transmit(f);
  loop.RunFor(100 * kMicrosecond);
  EXPECT_EQ(rack.nic(1)->nic_stats().rx_dropped_no_buffer, 1u);
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

TEST(NicDeviceTest, LinkDownDropsTraffic) {
  sim::EventLoop loop;
  Rack rack(loop, TinyRack());
  rack.Start();
  rack.nic(1)->InjectLinkFailure();
  netsim::Frame f;
  f.dst = rack.nic(1)->mac();
  f.payload.assign(64, std::byte{1});
  rack.network().Transmit(f);
  loop.RunFor(100 * kMicrosecond);
  EXPECT_EQ(rack.nic(1)->nic_stats().dropped_link_down, 1u);
  EXPECT_FALSE(rack.nic(1)->link_up());
  rack.nic(1)->RepairLink();
  EXPECT_TRUE(rack.nic(1)->link_up());
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

TEST(NicDeviceTest, WireDownAndWedgeEpisodesCountedSeparately) {
  // Fault attribution: a flapping wire (InjectLinkFailure) and a wedged
  // controller (Wedge + watchdog FLR) are different fault classes with
  // different recovery paths; their episode counters must not bleed into
  // each other.
  sim::EventLoop loop;
  Rack rack(loop, TinyRack());
  rack.Start();
  devices::Nic* nic = rack.nic(0);

  // Episode counters live in the metrics registry, labeled by device id.
  obs::Labels nic_labels = {{"device", std::to_string(nic->id().value())}};
  auto link_down = [&] {
    return nic->metrics().FindCounter("nic.link_down_episodes", nic_labels)->value();
  };
  auto wedges = [&] {
    return nic->metrics().FindCounter("nic.wedge_episodes", nic_labels)->value();
  };

  nic->InjectLinkFailure();
  nic->InjectLinkFailure();  // already down: same episode, not a new one
  nic->RepairLink();
  nic->InjectLinkFailure();
  nic->RepairLink();
  EXPECT_EQ(link_down(), 2u);
  EXPECT_EQ(wedges(), 0u);

  // Wedge + FLR (as the home agent's watchdog would issue).
  nic->Wedge();
  nic->Reset();
  EXPECT_EQ(wedges(), 1u);
  EXPECT_EQ(link_down(), 2u);  // unchanged

  // A reset with no intervening wedge is not an episode.
  nic->Reset();
  EXPECT_EQ(wedges(), 1u);

  nic->Wedge();
  nic->Reset();
  EXPECT_EQ(wedges(), 2u);
  EXPECT_EQ(nic->gray_stats().resets, 3u);
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

// --- SSD device semantics through the virtual driver ---

TEST(SsdDeviceTest, DataPersistsAcrossCommands) {
  sim::EventLoop loop;
  RackConfig rc = TinyRack();
  rc.ssds_per_host = 1;
  Rack rack(loop, rc);
  rack.Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<bool> {
    auto lease = rack.AcquireDevice(HostId(0), core::DeviceType::kSsd);
    CXLPOOL_CHECK_OK(lease.status());
    auto ssd = co_await core::VirtualSsd::Create(rack.pod().host(0),
                                                 std::move(lease->mmio), {});
    CXLPOOL_CHECK_OK(ssd.status());
    auto seg = rack.pod().pool().Allocate(64 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());

    // Write two distinct extents, then read both back.
    std::vector<std::byte> x(kSsdSectorSize, std::byte{0xaa});
    std::vector<std::byte> y(kSsdSectorSize, std::byte{0xbb});
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).StoreNt(seg->base, x));
    auto st = co_await (*ssd)->WriteBlocks(0, 1, seg->base, loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == kSsdStatusOk);
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).StoreNt(seg->base, y));
    st = co_await (*ssd)->WriteBlocks(100, 1, seg->base, loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == kSsdStatusOk);

    uint64_t readback = seg->base + 8 * kKiB;
    st = co_await (*ssd)->ReadBlocks(0, 1, readback, loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == kSsdStatusOk);
    std::vector<std::byte> got(kSsdSectorSize);
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).Invalidate(readback, got.size()));
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).Load(readback, got));
    co_return got == x;
  };
  EXPECT_TRUE(RunBlocking(loop, t(rack, loop)));
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

TEST(SsdDeviceTest, FlashLatencyIsTensOfMicroseconds) {
  sim::EventLoop loop;
  RackConfig rc = TinyRack();
  rc.ssds_per_host = 1;
  Rack rack(loop, rc);
  rack.Start();
  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<Nanos> {
    auto lease = rack.AcquireDevice(HostId(0), core::DeviceType::kSsd);
    CXLPOOL_CHECK_OK(lease.status());
    auto ssd = co_await core::VirtualSsd::Create(rack.pod().host(0),
                                                 std::move(lease->mmio), {});
    CXLPOOL_CHECK_OK(ssd.status());
    auto seg = rack.pod().pool().Allocate(16 * kKiB);
    Nanos start = loop.now();
    auto st = co_await (*ssd)->ReadBlocks(0, 8, seg->base, loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == kSsdStatusOk);
    co_return loop.now() - start;
  };
  Nanos took = RunBlocking(loop, t(rack, loop));
  EXPECT_GT(took, 30 * kMicrosecond);
  EXPECT_LT(took, 300 * kMicrosecond);
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

// --- Accelerator multi-queue-pair ---

TEST(AccelDeviceTest, QueuePairAllocation) {
  sim::EventLoop loop;
  AccelConfig config;
  Accelerator accel(PcieDeviceId(1), "a", loop, config);
  std::vector<int> qps;
  for (int i = 0; i < kAccelMaxQp; ++i) {
    auto qp = accel.AllocateQueuePair();
    ASSERT_TRUE(qp.ok());
    qps.push_back(*qp);
  }
  EXPECT_EQ(accel.AllocateQueuePair().status().code(),
            StatusCode::kResourceExhausted);
  accel.ReleaseQueuePair(qps[5]);
  auto again = accel.AllocateQueuePair();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 5);
}

TEST(AccelDeviceTest, TwoHostsConcurrentQueuePairs) {
  sim::EventLoop loop;
  RackConfig rc = TinyRack();
  rc.accels = 1;
  Rack rack(loop, rc);
  rack.Start();

  auto run = [](Rack& rack, HostId host, int qp, uint8_t fill) -> Task<bool> {
    sim::EventLoop& loop = rack.loop();
    auto path = rack.orchestrator().MakeMmioPath(host, rack.accel(0)->id());
    CXLPOOL_CHECK_OK(path.status());
    auto accel = co_await core::VirtualAccel::Create(rack.pod().host(host),
                                                     std::move(*path), {}, qp);
    CXLPOOL_CHECK_OK(accel.status());
    auto seg = rack.pod().pool().Allocate(32 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());
    std::vector<std::byte> in(4096, std::byte{fill});
    CXLPOOL_CHECK_OK(co_await rack.pod().host(host).StoreNt(seg->base, in));
    auto st = co_await (*accel)->RunJob(seg->base, 4096, seg->base + 16 * kKiB,
                                        loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == 0);
    std::vector<std::byte> out(4096);
    CXLPOOL_CHECK_OK(
        co_await rack.pod().host(host).Invalidate(seg->base + 16 * kKiB, 4096));
    CXLPOOL_CHECK_OK(co_await rack.pod().host(host).Load(seg->base + 16 * kKiB, out));
    co_return out[0] == (std::byte{fill} ^ std::byte{0x5a});
  };

  bool ok0 = false;
  bool ok1 = false;
  auto both = [&]() -> Task<> {
    // Run concurrently on distinct queue pairs of the same device.
    auto q0 = rack.accel(0)->AllocateQueuePair();
    auto q1 = rack.accel(0)->AllocateQueuePair();
    CXLPOOL_CHECK_OK(q0.status());
    CXLPOOL_CHECK_OK(q1.status());
    bool done0 = false;
    sim::Spawn([](Task<bool> t, bool& out, bool& flag) -> Task<> {
      out = co_await std::move(t);
      flag = true;
    }(run(rack, HostId(0), *q0, 0x11), ok0, done0));
    ok1 = co_await run(rack, HostId(1), *q1, 0x22);
    while (!done0) {
      co_await sim::Delay(loop, 10 * kMicrosecond);
    }
  };
  RunBlocking(loop, both());
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
  rack.Shutdown();
  loop.RunFor(200 * kMicrosecond);
}

}  // namespace
}  // namespace cxlpool::devices
