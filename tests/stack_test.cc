#include <gtest/gtest.h>

#include <cstring>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/task.h"
#include "src/sim/stats.h"
#include "src/stack/loadgen.h"
#include "src/stack/udp.h"

namespace cxlpool::stack {
namespace {

using core::Rack;
using core::RackConfig;
using core::VirtualNic;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

RackConfig TwoHostRack() {
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 32 * kMiB;
  return rc;
}

std::vector<std::byte> Msg(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

// Bundles everything one host needs to run UDP. Nodes must outlive every
// actor that touches them, so tests own them in body scope and only drain
// the event loop before destruction.
struct Node {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> MakeNodeSplit(Rack& rack, HostId host, Placement ring_placement,
                     Placement buffer_placement, Node* out) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = ring_placement == Placement::kCxlPool;
  vc.rx_doorbell_batch = 4;
  auto handle = co_await rack.CreateVirtualNic(host, vc);
  CXLPOOL_CHECK(handle.ok());

  out->nic = std::move(*handle);
  auto pool = BufferPool::Create(rack.pod().host(host), buffer_placement, 256, 2048);
  CXLPOOL_CHECK(pool.ok());
  out->pool = std::move(*pool);
  UdpStack::Config sc;
  sc.rx_buffers = 64;
  out->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, sc);
  CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
}

Task<> MakeNode(Rack& rack, HostId host, Placement placement, Node* out) {
  co_await MakeNodeSplit(rack, host, placement, placement, out);
}

// Echo server actor: replies to every datagram until stopped.
Task<> EchoServer(UdpSocket* sock, sim::EventLoop& loop, sim::StopToken& stop) {
  while (!stop.stopped()) {
    auto d = co_await sock->Recv(loop.now() + 50 * kMicrosecond);
    if (!d.ok()) {
      continue;
    }
    CXLPOOL_CHECK_OK(co_await sock->SendTo(d->src_mac, d->src_port, d->payload));
  }
}

class StackTest : public ::testing::TestWithParam<Placement> {
 protected:
  // Lets stopped actors observe the flag and unwind before objects die.
  void Drain(Rack& rack) {
    rack.Shutdown();
    loop_.RunFor(500 * kMicrosecond);
  }
  sim::EventLoop loop_;
};

TEST_P(StackTest, BufferPoolAllocFree) {
  Rack rack(loop_, TwoHostRack());
  auto pool = BufferPool::Create(rack.pod().host(0), GetParam(), 4, 1500);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->available(), 4u);
  EXPECT_EQ((*pool)->buffer_size() % kCachelineSize, 0u);

  std::vector<uint64_t> addrs;
  for (int i = 0; i < 4; ++i) {
    auto a = (*pool)->Alloc();
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  EXPECT_EQ((*pool)->Alloc().status().code(), StatusCode::kResourceExhausted);
  for (uint64_t a : addrs) {
    (*pool)->Free(a);
  }
  EXPECT_EQ((*pool)->available(), 4u);
}

// Free-then-reuse must hand back the same placement-stable addresses:
// buffer i always lives at base() + i * buffer_size(), and recycling a
// buffer never migrates it (NIC descriptors cache raw addresses).
TEST_P(StackTest, BufferPoolFreeThenReusePlacementStable) {
  Rack rack(loop_, TwoHostRack());
  auto pool = BufferPool::Create(rack.pod().host(0), GetParam(), 8, 1024);
  ASSERT_TRUE(pool.ok());
  uint64_t base = (*pool)->base();
  uint32_t size = (*pool)->buffer_size();

  std::set<uint64_t> first_round;
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 8; ++i) {
    auto a = (*pool)->Alloc();
    ASSERT_TRUE(a.ok());
    EXPECT_EQ((*a - base) % size, 0u);
    EXPECT_LT((*a - base) / size, 8u);
    first_round.insert(*a);
    addrs.push_back(*a);
  }
  EXPECT_EQ(first_round.size(), 8u);
  for (uint64_t a : addrs) {
    (*pool)->Free(a);
  }
  // Second pass: exactly the same address set, no drift, no growth.
  std::set<uint64_t> second_round;
  for (int i = 0; i < 8; ++i) {
    auto a = (*pool)->Alloc();
    ASSERT_TRUE(a.ok());
    second_round.insert(*a);
  }
  EXPECT_EQ(second_round, first_round);
}

// A poisoned line under a pool-placed buffer surfaces as typed kDataLoss
// on ReadFresh, and a full-buffer Publish (all lines rewritten) heals it.
TEST(StackPoisonTest, PoisonedBackingLineIsTypedAndHealsOnFullWrite) {
  sim::EventLoop loop;
  Rack rack(loop, TwoHostRack());
  auto pool =
      BufferPool::Create(rack.pod().host(0), Placement::kCxlPool, 4, 1024);
  ASSERT_TRUE(pool.ok());
  auto a = (*pool)->Alloc();
  ASSERT_TRUE(a.ok());

  auto t = [&](sim::EventLoop& loop) -> Task<> {
    std::vector<std::byte> payload((*pool)->buffer_size(), std::byte{0xcd});
    CXLPOOL_CHECK_OK(co_await (*pool)->memory().Publish(*a, payload));
    // Publish has posted-write semantics: let the bytes commit to media
    // before the media fault strikes (a commit over a full line would
    // itself clear fresh poison).
    co_await sim::Delay(loop, 5 * kMicrosecond);

    rack.pod().PoisonLine(*a + kCachelineSize);  // second line of the value
    std::vector<std::byte> readback(payload.size());
    Status st = co_await (*pool)->memory().ReadFresh(*a, readback);
    CXLPOOL_CHECK(st.code() == StatusCode::kDataLoss);

    // Full-buffer publish rewrites every line: the poison clears and the
    // fresh bytes read back intact.
    std::vector<std::byte> fresh(payload.size(), std::byte{0x3e});
    CXLPOOL_CHECK_OK(co_await (*pool)->memory().Publish(*a, fresh));
    CXLPOOL_CHECK_OK(co_await (*pool)->memory().ReadFresh(*a, readback));
    CXLPOOL_CHECK(readback == fresh);
  };
  RunBlocking(loop, t(loop));
  EXPECT_EQ(rack.pod().PoisonedLineCount(), 0u);
}

TEST_P(StackTest, UdpEchoRoundTrip) {
  Rack rack(loop_, TwoHostRack());
  rack.Start();
  Node server;
  Node client;
  RunBlocking(loop_, MakeNode(rack, HostId(0), GetParam(), &server));
  RunBlocking(loop_, MakeNode(rack, HostId(1), GetParam(), &client));
  auto* srv_sock = server.stack->Bind(7).value();
  auto* cli_sock = client.stack->Bind(1234).value();
  Spawn(EchoServer(srv_sock, loop_, rack.stop_token()));

  std::string got;
  uint16_t got_port = 0;
  auto t = [](UdpSocket* sock, netsim::MacAddr dst, sim::EventLoop& loop,
              std::string& out, uint16_t& port) -> Task<> {
    CXLPOOL_CHECK_OK(co_await sock->SendTo(dst, 7, Msg("echo me")));
    auto reply = co_await sock->Recv(loop.now() + 10 * kMillisecond);
    CXLPOOL_CHECK(reply.ok());
    out.assign(reinterpret_cast<const char*>(reply->payload.data()),
               reply->payload.size());
    port = reply->src_port;
  };
  RunBlocking(loop_, t(cli_sock, server.stack->mac(), loop_, got, got_port));
  EXPECT_EQ(got, "echo me");
  EXPECT_EQ(got_port, 7);
  EXPECT_EQ(server.stack->stats().rx_datagrams, 1u);
  Drain(rack);
}

TEST_P(StackTest, ManyDatagramsNoLoss) {
  Rack rack(loop_, TwoHostRack());
  rack.Start();
  Node server;
  Node client;
  RunBlocking(loop_, MakeNode(rack, HostId(0), GetParam(), &server));
  RunBlocking(loop_, MakeNode(rack, HostId(1), GetParam(), &client));
  auto* srv_sock = server.stack->Bind(7).value();
  auto* cli_sock = client.stack->Bind(1234).value();

  constexpr int kCount = 200;
  int received = 0;
  Spawn([](UdpSocket* sock, sim::EventLoop& l, int& n, sim::StopToken& stop) -> Task<> {
    while (n < kCount && !stop.stopped()) {
      auto d = co_await sock->Recv(l.now() + 10 * kMicrosecond);
      if (d.ok()) {
        ++n;
      }
    }
  }(srv_sock, loop_, received, rack.stop_token()));

  auto t = [](UdpSocket* sock, netsim::MacAddr dst, sim::EventLoop& loop) -> Task<> {
    std::vector<std::byte> payload(512, std::byte{0x7});
    for (int i = 0; i < kCount; ++i) {
      CXLPOOL_CHECK_OK(co_await sock->SendTo(dst, 7, payload));
      // Pace just enough to avoid overrunning 64 posted RX buffers.
      co_await sim::Delay(loop, 2 * kMicrosecond);
    }
  };
  RunBlocking(loop_, t(cli_sock, server.stack->mac(), loop_));
  loop_.RunFor(10 * kMillisecond);  // let the tail arrive
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(server.stack->stats().rx_datagrams, static_cast<uint64_t>(kCount));
  Drain(rack);
}

TEST_P(StackTest, RoundTripLatencyIsMicroseconds) {
  // Absolute calibration check behind Figure 3: idle-load RTT for a small
  // UDP payload over 100 Gb/s NICs should be single-digit microseconds
  // (the Junction class), regardless of buffer placement.
  Rack rack(loop_, TwoHostRack());
  rack.Start();
  Node server;
  Node client;
  RunBlocking(loop_, MakeNode(rack, HostId(0), GetParam(), &server));
  RunBlocking(loop_, MakeNode(rack, HostId(1), GetParam(), &client));
  auto* srv_sock = server.stack->Bind(7).value();
  auto* cli_sock = client.stack->Bind(9).value();
  Spawn(EchoServer(srv_sock, loop_, rack.stop_token()));

  Nanos rtt = 0;
  auto t = [](UdpSocket* sock, netsim::MacAddr dst, sim::EventLoop& loop,
              Nanos& out) -> Task<> {
    std::vector<std::byte> payload(64, std::byte{1});
    CXLPOOL_CHECK_OK(co_await sock->SendTo(dst, 7, payload));  // warm-up
    (void)co_await sock->Recv(loop.now() + 10 * kMillisecond);
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await sock->SendTo(dst, 7, payload));
    auto reply = co_await sock->Recv(loop.now() + 10 * kMillisecond);
    CXLPOOL_CHECK(reply.ok());
    out = loop.now() - start;
  };
  RunBlocking(loop_, t(cli_sock, server.stack->mac(), loop_, rtt));
  EXPECT_GT(rtt, 2 * kMicrosecond);
  EXPECT_LT(rtt, 20 * kMicrosecond);
  Drain(rack);
}

INSTANTIATE_TEST_SUITE_P(Placements, StackTest,
                         ::testing::Values(Placement::kLocalDram,
                                           Placement::kCxlPool),
                         [](const auto& info) {
                           return info.param == Placement::kLocalDram ? "LocalDram"
                                                                      : "CxlPool";
                         });

// The paper's Figure 3 headline: placing the SERVER's TX/RX buffers in the
// CXL pool (rings stay local, client unmodified — exactly the modified-
// Junction configuration) costs <= 5% extra RTT at low load.
TEST(StackComparisonTest, CxlPlacementOverheadWithinFivePercent) {
  auto measure = [](Placement server_buffers) -> Nanos {
    sim::EventLoop loop;
    Rack rack(loop, TwoHostRack());
    rack.Start();
    Node server;
    Node client;
    RunBlocking(loop, MakeNodeSplit(rack, HostId(0), Placement::kLocalDram,
                                    server_buffers, &server));
    RunBlocking(loop, MakeNode(rack, HostId(1), Placement::kLocalDram, &client));
    auto* srv_sock = server.stack->Bind(7).value();
    auto* cli_sock = client.stack->Bind(9).value();
    Spawn(EchoServer(srv_sock, loop, rack.stop_token()));

    sim::Histogram rtts;
    auto t = [](UdpSocket* sock, netsim::MacAddr dst, sim::EventLoop& loop,
                sim::Histogram& hist) -> Task<> {
      std::vector<std::byte> payload(512, std::byte{1});
      for (int i = 0; i < 100; ++i) {
        Nanos start = loop.now();
        CXLPOOL_CHECK_OK(co_await sock->SendTo(dst, 7, payload));
        auto reply = co_await sock->Recv(loop.now() + 10 * kMillisecond);
        CXLPOOL_CHECK(reply.ok());
        if (i >= 10) {  // skip warm-up
          hist.Add(loop.now() - start);
        }
      }
    };
    RunBlocking(loop, t(cli_sock, server.stack->mac(), loop, rtts));
    rack.Shutdown();
    loop.RunFor(500 * kMicrosecond);
    return rtts.Percentile(0.5);
  };

  Nanos local = measure(Placement::kLocalDram);
  Nanos cxl = measure(Placement::kCxlPool);
  double overhead = static_cast<double>(cxl - local) / static_cast<double>(local);
  std::printf("idle UDP echo p50: local=%lld ns, cxl-buffers=%lld ns (+%.1f%%)\n",
              static_cast<long long>(local), static_cast<long long>(cxl),
              overhead * 100);
  // The paper's "within 5%" reads off the Figure 3 curves, whose points
  // carry load; the pure idle single-ping case pays the full posted-write
  // visibility + CXL read-latency delta with nothing to hide it behind
  // (~0.9 us on a ~12.6 us RTT). Bound idle at 8% here; the loaded-point
  // <=5% check lives in CxlOverheadUnderLoadWithinFivePercent below and
  // the full curves in bench/fig3_udp_latency.
  EXPECT_GE(overhead, -0.01);
  EXPECT_LE(overhead, 0.08);
}

// The Figure 3 regime: open-loop load at ~20% of stack capacity. Queueing
// and pipelining hide most of the CXL buffer-placement delta; the curves
// overlap within the paper's 5%.
TEST(StackComparisonTest, CxlOverheadUnderLoadWithinFivePercent) {
  auto measure = [](Placement server_buffers) -> Nanos {
    sim::EventLoop loop;
    Rack rack(loop, TwoHostRack());
    rack.Start();
    Node server;
    Node client;
    RunBlocking(loop, MakeNodeSplit(rack, HostId(0), Placement::kLocalDram,
                                    server_buffers, &server));
    RunBlocking(loop, MakeNode(rack, HostId(1), Placement::kLocalDram, &client));
    auto* srv_sock = server.stack->Bind(7).value();
    auto* cli_sock = client.stack->Bind(9).value();
    Spawn(EchoServer(srv_sock, loop, rack.stop_token()));

    LoadGenConfig lg;
    lg.offered_pps = 300000;
    lg.payload_bytes = 512;
    lg.duration = 8 * kMillisecond;
    lg.warmup = 2 * kMillisecond;
    lg.max_outstanding = 64;  // leave the shared pool room for RX buffers
    obs::Registry registry;
    RunBlocking(loop, RunUdpLoad(cli_sock, server.stack->mac(), 7, lg, registry));
    const obs::Counter* sent = registry.FindCounter("udp.sent");
    const obs::Counter* received = registry.FindCounter("udp.received");
    const obs::Counter* skipped = registry.FindCounter("udp.overload_skipped");
    const sim::Histogram* rtt = registry.FindHistogram("udp.rtt_ns");
    std::printf("  loadgen: sent=%llu received=%llu skipped=%llu samples=%llu\n",
                static_cast<unsigned long long>(sent->value()),
                static_cast<unsigned long long>(received->value()),
                static_cast<unsigned long long>(skipped->value()),
                static_cast<unsigned long long>(rtt->count()));
    rack.Shutdown();
    loop.RunFor(500 * kMicrosecond);
    return rtt->Percentile(0.5);
  };

  Nanos local = measure(Placement::kLocalDram);
  Nanos cxl = measure(Placement::kCxlPool);
  double overhead = static_cast<double>(cxl - local) / static_cast<double>(local);
  std::printf("loaded UDP echo p50 (300 kpps): local=%lld ns, cxl=%lld ns "
              "(+%.1f%%)\n",
              static_cast<long long>(local), static_cast<long long>(cxl),
              overhead * 100);
  EXPECT_GE(overhead, -0.03);
  EXPECT_LE(overhead, 0.05);  // the paper's claim, in its own regime
}

}  // namespace
}  // namespace cxlpool::stack
