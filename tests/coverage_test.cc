// Focused coverage of utilities and subtle cross-module behaviours not
// exercised by the per-module suites: polling backoff, windowed
// utilization, dirty-eviction writeback semantics, RPC call serialization,
// out-of-order queue-pair completions, and concurrent SendFrame ordering.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/msg/rpc.h"
#include "src/sim/poll.h"
#include "src/sim/task.h"
#include "src/sim/windowed.h"

namespace cxlpool {
namespace {

using core::DeviceType;
using core::Rack;
using core::RackConfig;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

// --- PollBackoff ---

TEST(PollBackoffTest, DoublesUpToMax) {
  sim::PollBackoff b(100, 900);
  EXPECT_EQ(b.NextDelay(), 100);
  EXPECT_EQ(b.NextDelay(), 200);
  EXPECT_EQ(b.NextDelay(), 400);
  EXPECT_EQ(b.NextDelay(), 800);
  EXPECT_EQ(b.NextDelay(), 900);  // clamped
  EXPECT_EQ(b.NextDelay(), 900);
}

TEST(PollBackoffTest, ResetRestoresMin) {
  sim::PollBackoff b(50, 1000);
  b.NextDelay();
  b.NextDelay();
  b.Reset();
  EXPECT_EQ(b.NextDelay(), 50);
}

// --- WindowedUtilization ---

TEST(WindowedUtilizationTest, ReportsRecentWindowOnly) {
  sim::WindowedUtilization w(1000);
  // First window: 600 of 1000 ns busy.
  EXPECT_DOUBLE_EQ(w.Update(1000, 600, 1.0), 0.6);
  // Second window: idle. The stale 0.6 holds until the window closes.
  EXPECT_DOUBLE_EQ(w.Update(1500, 600, 1.0), 0.6);
  EXPECT_DOUBLE_EQ(w.Update(2000, 600, 1.0), 0.0);
}

TEST(WindowedUtilizationTest, CapacityScalesDenominator) {
  sim::WindowedUtilization w(1000);
  // 1600 busy-ns over 1000 ns with 2 engines = 80%.
  EXPECT_DOUBLE_EQ(w.Update(1000, 1600, 2.0), 0.8);
}

TEST(WindowedUtilizationTest, ClampedToOne) {
  sim::WindowedUtilization w(100);
  EXPECT_DOUBLE_EQ(w.Update(100, 500, 1.0), 1.0);
}

// --- Dirty-eviction writeback: cached stores leak to the pool when the
// cache overflows, WITHOUT an explicit flush. That is real write-back
// behaviour; the protocol still needs flushes because eviction timing is
// not under software control. ---

TEST(EvictionTest, DirtyEvictionPublishesToPool) {
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  pc.cache_lines_per_host = 4;  // tiny cache: evictions guaranteed
  cxl::CxlPod pod(loop, pc);
  auto seg = pod.pool().Allocate(64 * kKiB);
  ASSERT_TRUE(seg.ok());

  auto t = [](cxl::CxlPod& pod, uint64_t base) -> Task<int> {
    auto payload = std::vector<std::byte>(64, std::byte{0x77});
    CXLPOOL_CHECK_OK(co_await pod.host(0).Store(base, payload));  // dirty
    // Touch enough other lines to force the dirty line out.
    std::array<std::byte, 64> scratch{};
    for (int i = 1; i <= 8; ++i) {
      CXLPOOL_CHECK_OK(co_await pod.host(0).Load(base + i * 4096, scratch));
    }
    co_await sim::Delay(pod.loop(), kMicrosecond);
    std::array<std::byte, 64> seen{};
    CXLPOOL_CHECK_OK(co_await pod.host(1).Invalidate(base, 64));
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(base, seen));
    co_return static_cast<int>(seen[0]);
  };
  EXPECT_EQ(RunBlocking(loop, t(pod, seg->base)), 0x77);
}

// --- RpcClient serializes concurrent callers ---

TEST(RpcConcurrencyTest, ConcurrentCallsAllComplete) {
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  cxl::CxlPod pod(loop, pc);
  auto ch = msg::Channel::Create(pod.pool(), pod.host(0), pod.host(1));
  ASSERT_TRUE(ch.ok());

  sim::StopToken stop;
  msg::RpcServer server(
      (*ch)->end_b(), [](uint16_t m, std::span<const std::byte> req)
                          -> Task<Result<std::vector<std::byte>>> {
        std::vector<std::byte> resp(req.begin(), req.end());
        resp.push_back(std::byte{static_cast<uint8_t>(m)});
        co_return resp;
      });
  Spawn(server.Serve(stop));

  msg::RpcClient client((*ch)->end_a());
  int done = 0;
  bool all_ok = true;
  for (int i = 0; i < 6; ++i) {
    Spawn([](msg::RpcClient& c, sim::EventLoop& l, int tag, int& count,
             bool& ok) -> Task<> {
      std::vector<std::byte> req(8, std::byte{static_cast<uint8_t>(tag)});
      auto resp = co_await c.Call(static_cast<uint16_t>(tag), req,
                                  l.now() + 50 * kMillisecond);
      if (!resp.ok() || resp->size() != 9 ||
          (*resp)[8] != std::byte{static_cast<uint8_t>(tag)} ||
          (*resp)[0] != std::byte{static_cast<uint8_t>(tag)}) {
        ok = false;
      }
      ++count;
    }(client, loop, i, done, all_ok));
  }
  loop.RunFor(100 * kMillisecond);
  EXPECT_EQ(done, 6);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(server.calls_served(), 6u);
  stop.Stop();
  loop.RunFor(kMillisecond);
}

// --- Queue-pair driver: many in-flight commands, out-of-order completion
// (SSD channels finish in lognormal order), all matched by cookie. ---

TEST(QueuePairConcurrencyTest, OutOfOrderCompletionsMatchCookies) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 1;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 8 * kMiB;
  rc.ssds_per_host = 1;
  rc.ssd.channels = 8;
  rc.ssd.latency_sigma = 0.6;  // strong reordering
  Rack rack(loop, rc);
  rack.Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<int> {
    auto lease = rack.AcquireDevice(HostId(0), DeviceType::kSsd);
    CXLPOOL_CHECK_OK(lease.status());
    auto ssd = co_await core::VirtualSsd::Create(rack.pod().host(0),
                                                 std::move(lease->mmio), {});
    CXLPOOL_CHECK_OK(ssd.status());
    auto seg = rack.pod().pool().Allocate(256 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());

    // Write distinct content to 16 extents concurrently.
    int completed = 0;
    bool failed = false;
    for (int i = 0; i < 16; ++i) {
      uint64_t buf = seg->base + static_cast<uint64_t>(i) * 8 * kKiB;
      std::vector<std::byte> data(devices::kSsdSectorSize,
                                  std::byte{static_cast<uint8_t>(i + 1)});
      CXLPOOL_CHECK_OK(co_await rack.pod().host(0).StoreNt(buf, data));
      Spawn([](core::VirtualSsd* s, sim::EventLoop& l, uint64_t lba, uint64_t b,
               int& count, bool& fail) -> Task<> {
        auto st = co_await s->WriteBlocks(lba, 1, b, l.now() + kSecond);
        if (!st.ok() || *st != devices::kSsdStatusOk) {
          fail = true;
        }
        ++count;
      }(ssd->get(), loop, static_cast<uint64_t>(i) * 16, buf, completed, failed));
    }
    while (completed < 16) {
      co_await sim::Delay(loop, 50 * kMicrosecond);
    }
    CXLPOOL_CHECK(!failed);

    // Read every extent back and verify content (cookie mixups would
    // surface as wrong bytes or wrong LBAs).
    int good = 0;
    for (int i = 0; i < 16; ++i) {
      uint64_t buf = seg->base + 160 * kKiB;
      auto st = co_await (*ssd)->ReadBlocks(static_cast<uint64_t>(i) * 16, 1, buf,
                                            loop.now() + kSecond);
      CXLPOOL_CHECK(st.ok() && *st == devices::kSsdStatusOk);
      std::vector<std::byte> got(devices::kSsdSectorSize);
      CXLPOOL_CHECK_OK(co_await rack.pod().host(0).Invalidate(buf, got.size()));
      CXLPOOL_CHECK_OK(co_await rack.pod().host(0).Load(buf, got));
      if (got[0] == std::byte{static_cast<uint8_t>(i + 1)}) {
        ++good;
      }
    }
    co_return good;
  };
  EXPECT_EQ(RunBlocking(loop, t(rack, loop)), 16);
  rack.Shutdown();
  loop.RunFor(kMillisecond);
}

// --- Concurrent SendFrame never skips or duplicates TX descriptors ---

TEST(VirtualNicConcurrencyTest, ConcurrentSendersDeliverEveryFrame) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 1;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 8 * kMiB;
  Rack rack(loop, rc);
  rack.Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<uint64_t> {
    core::VirtualNic::Config vc;
    vc.rings_in_cxl = true;
    auto tx = co_await rack.CreateVirtualNic(HostId(0), vc);
    CXLPOOL_CHECK_OK(tx.status());
    auto seg = rack.pod().pool().Allocate(64 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());
    std::vector<std::byte> payload(128, std::byte{0x44});
    CXLPOOL_CHECK_OK(co_await rack.pod().host(0).StoreNt(seg->base, payload));

    constexpr int kSenders = 6;
    constexpr int kPerSender = 20;
    int done = 0;
    for (int s = 0; s < kSenders; ++s) {
      Spawn([](core::VirtualNic* nic, netsim::MacAddr dst, uint64_t buf,
               int& count) -> Task<> {
        for (int i = 0; i < kPerSender; ++i) {
          CXLPOOL_CHECK_OK(co_await nic->SendFrame(dst, buf, 128));
        }
        ++count;
      }(tx->vnic.get(), rack.nic(1)->mac(), seg->base, done));
    }
    while (done < kSenders) {
      co_await sim::Delay(loop, 50 * kMicrosecond);
    }
    // Give the NIC time to drain its TX ring.
    co_await sim::Delay(loop, 2 * kMillisecond);
    co_return rack.nic(0)->nic_stats().tx_frames;
  };
  // Every frame transmitted exactly once (frames to NIC 1 are dropped for
  // lack of RX buffers there, which is fine — we count TX).
  EXPECT_EQ(RunBlocking(loop, t(rack, loop)), 120u);
  rack.Shutdown();
  loop.RunFor(kMillisecond);
}

// --- EventLoop executed() accounting ---

TEST(EventLoopAccountingTest, ExecutedCounts) {
  sim::EventLoop loop;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(i, [] {});
  }
  loop.Run();
  EXPECT_EQ(loop.executed(), 5u);
  EXPECT_TRUE(loop.empty());
}

}  // namespace
}  // namespace cxlpool
