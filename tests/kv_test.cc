// KV subsystem tests: wire codec hardening (truncations and seeded bit
// flips must produce typed errors, never a crash — the PR 9 fuzz
// discipline), store semantics (LRU overflow to SSD, hydration, typed
// exhaustion, poison handling), and the node end to end over UDP.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/cxl/pod.h"
#include "src/kv/loadgen.h"
#include "src/kv/node.h"
#include "src/kv/store.h"
#include "src/kv/wire.h"
#include "src/sim/random.h"
#include "src/sim/task.h"
#include "src/stack/buffer_pool.h"
#include "src/stack/udp.h"

namespace cxlpool::kv {
namespace {

using core::DeviceType;
using core::Rack;
using core::RackConfig;
using core::VirtualNic;
using core::VirtualSsd;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;
using stack::BufferPool;
using stack::Placement;
using stack::UdpSocket;
using stack::UdpStack;

std::vector<std::byte> Bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  if (!s.empty()) {
    std::memcpy(out.data(), s.data(), s.size());
  }
  return out;
}

std::string AsString(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

Request MakeSet(std::string key, std::string value) {
  Request req;
  req.opcode = Opcode::kSet;
  req.client_id = 7;
  req.seq = 42;
  req.deadline = 123456789;
  req.key = std::move(key);
  req.value = Bytes(value);
  return req;
}

// --- Wire codec ---

TEST(KvWireTest, RequestRoundTrip) {
  Request req = MakeSet("user:1234", "the quick brown fox");
  auto frame = EncodeRequest(req);
  auto dec = DecodeRequest(frame);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec->opcode, Opcode::kSet);
  EXPECT_EQ(dec->client_id, 7u);
  EXPECT_EQ(dec->seq, 42u);
  EXPECT_EQ(dec->deadline, 123456789);
  EXPECT_EQ(dec->key, "user:1234");
  EXPECT_EQ(AsString(dec->value), "the quick brown fox");
}

TEST(KvWireTest, ResponseRoundTrip) {
  Response rsp;
  rsp.opcode = Opcode::kGet;
  rsp.status = WireStatus::kOk;
  rsp.origin = Origin::kSsd;
  rsp.client_id = 9;
  rsp.seq = 1000;
  rsp.value = Bytes("hydrated");
  auto frame = EncodeResponse(rsp);
  auto dec = DecodeResponse(frame);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec->opcode, Opcode::kGet);
  EXPECT_EQ(dec->status, WireStatus::kOk);
  EXPECT_EQ(dec->origin, Origin::kSsd);
  EXPECT_EQ(dec->seq, 1000u);
  EXPECT_EQ(AsString(dec->value), "hydrated");
}

// Every truncation point of a valid frame must yield a typed error — a
// length-check miss would CHECK-fail inside wire::Reader and crash.
TEST(KvWireTest, EveryRequestTruncationIsTypedError) {
  auto frame = EncodeRequest(MakeSet("truncate-me", "0123456789abcdef"));
  for (size_t len = 0; len < frame.size(); ++len) {
    auto dec = DecodeRequest(std::span<const std::byte>(frame.data(), len));
    EXPECT_FALSE(dec.ok()) << "prefix of length " << len << " decoded";
  }
  auto whole = DecodeRequest(frame);
  EXPECT_TRUE(whole.ok());
}

TEST(KvWireTest, EveryResponseTruncationIsTypedError) {
  Response rsp;
  rsp.opcode = Opcode::kGet;
  rsp.status = WireStatus::kOk;
  rsp.origin = Origin::kPool;
  rsp.client_id = 1;
  rsp.seq = 2;
  rsp.value = Bytes("payload-bytes");
  auto frame = EncodeResponse(rsp);
  for (size_t len = 0; len < frame.size(); ++len) {
    auto dec = DecodeResponse(std::span<const std::byte>(frame.data(), len));
    EXPECT_FALSE(dec.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(KvWireTest, RejectsBadMagicVersionAndShape) {
  auto frame = EncodeRequest(MakeSet("k", "v"));
  auto bad_magic = frame;
  bad_magic[0] = std::byte{0x00};
  EXPECT_EQ(DecodeRequest(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  auto bad_version = frame;
  bad_version[1] = std::byte{99};
  EXPECT_EQ(DecodeRequest(bad_version).status().code(),
            StatusCode::kUnimplemented);

  auto bad_opcode = frame;
  bad_opcode[2] = std::byte{0x77};
  EXPECT_FALSE(DecodeRequest(bad_opcode).ok());

  // Trailing junk breaks the length accounting.
  auto trailing = frame;
  trailing.push_back(std::byte{0xff});
  EXPECT_FALSE(DecodeRequest(trailing).ok());

  // A GET carrying a value is malformed.
  Request get = MakeSet("k", "v");
  get.opcode = Opcode::kGet;
  EXPECT_FALSE(DecodeRequest(EncodeRequest(get)).ok());
}

// Seeded mutation fuzz: random bit flips and random garbage must always
// come back as ok-or-typed-error. A crash here is the bug being hunted.
TEST(KvWireTest, SeededBitFlipsNeverCrashDecoders) {
  sim::Rng rng(20250808);
  auto req_frame = EncodeRequest(MakeSet("fuzz-key", "fuzz-value-payload"));
  Response rsp;
  rsp.opcode = Opcode::kSet;
  rsp.status = WireStatus::kOk;
  rsp.client_id = 3;
  rsp.seq = 4;
  auto rsp_frame = EncodeResponse(rsp);
  for (int iter = 0; iter < 4000; ++iter) {
    auto frame = (iter % 2 == 0) ? req_frame : rsp_frame;
    int flips = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.UniformInt(frame.size());
      frame[pos] ^= static_cast<std::byte>(1u << rng.UniformInt(uint64_t{8}));
    }
    if (iter % 2 == 0) {
      auto dec = DecodeRequest(frame);
      if (dec.ok()) {
        EXPECT_LE(dec->key.size(), kMaxKeyLen);
      }
    } else {
      (void)DecodeResponse(frame);
    }
  }
  // Pure garbage of every small length.
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> junk(rng.UniformInt(uint64_t{128}));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.UniformInt(uint64_t{256}));
    }
    (void)DecodeRequest(junk);
    (void)DecodeResponse(junk);
  }
}

// --- Store (pool-only) ---

class KvStoreTest : public ::testing::Test {
 protected:
  static cxl::CxlPodConfig PodConfig() {
    cxl::CxlPodConfig c;
    c.num_hosts = 1;
    c.num_mhds = 1;
    c.mhd_capacity = 16 * kMiB;
    c.dram_per_host = 1 * kMiB;
    return c;
  }

  KvStoreTest() : pod_(loop_, PodConfig()) {}

  std::unique_ptr<BufferPool> MakePool(uint32_t buffers, uint32_t size) {
    auto pool =
        BufferPool::Create(pod_.host(0), Placement::kCxlPool, buffers, size);
    CXLPOOL_CHECK_OK(pool.status());
    return std::move(*pool);
  }

  sim::EventLoop loop_;
  cxl::CxlPod pod_;
};

TEST_F(KvStoreTest, SetGetDeleteRoundTrip) {
  auto pool = MakePool(16, 2048);
  Store store(pool.get(), nullptr, 0, StoreConfig{}, nullptr);
  auto t = [&]() -> Task<> {
    CXLPOOL_CHECK_OK(co_await store.Set("alpha", Bytes("one"), 0));
    CXLPOOL_CHECK_OK(co_await store.Set("beta", Bytes("two"), 0));
    auto got = co_await store.Get("alpha", 0);
    CXLPOOL_CHECK_OK(got.status());
    CXLPOOL_CHECK(AsString(got->value) == "one");
    CXLPOOL_CHECK(got->origin == Origin::kPool);
    // Overwrite wins.
    CXLPOOL_CHECK_OK(co_await store.Set("alpha", Bytes("uno"), 0));
    got = co_await store.Get("alpha", 0);
    CXLPOOL_CHECK_OK(got.status());
    CXLPOOL_CHECK(AsString(got->value) == "uno");
    CXLPOOL_CHECK_OK(co_await store.Delete("alpha", 0));
    auto miss = co_await store.Get("alpha", 0);
    CXLPOOL_CHECK(miss.status().code() == StatusCode::kNotFound);
    CXLPOOL_CHECK((co_await store.Delete("alpha", 0)).code() ==
                  StatusCode::kNotFound);
  };
  RunBlocking(loop_, t());
  EXPECT_EQ(store.resident_entries(), 1u);  // beta
}

TEST_F(KvStoreTest, ExhaustionWithoutColdTierIsTypedOverload) {
  auto pool = MakePool(4, 2048);
  StoreConfig sc;
  sc.free_low_water = 0;
  Store store(pool.get(), nullptr, 0, sc, nullptr);
  auto t = [&]() -> Task<int> {
    int stored = 0;
    for (int i = 0; i < 8; ++i) {
      Status st = co_await store.Set("key" + std::to_string(i),
                                     Bytes("payload"), 0);
      if (st.ok()) {
        ++stored;
      } else {
        // No SSD: allocation pressure is kOverloaded, never a crash.
        CXLPOOL_CHECK(st.code() == StatusCode::kOverloaded);
      }
    }
    co_return stored;
  };
  int stored = RunBlocking(loop_, t());
  EXPECT_EQ(stored, 4);
  EXPECT_EQ(store.resident_entries(), 4u);
}

TEST_F(KvStoreTest, PoisonedValueIsDroppedScrubbedAndKeyReusable) {
  auto pool = MakePool(1, 2048);
  uint64_t buf0 = pool->base();  // the only buffer
  Store store(pool.get(), nullptr, 0, StoreConfig{}, nullptr);
  auto t = [&]() -> Task<> {
    CXLPOOL_CHECK_OK(co_await store.Set("victim", Bytes("precious"), 0));
    pod_.PoisonLine(buf0);
    // First read observes the loss (typed, not a crash)...
    auto got = co_await store.Get("victim", 0);
    CXLPOOL_CHECK(got.status().code() == StatusCode::kDataLoss);
    // ... the entry is gone afterwards ...
    got = co_await store.Get("victim", 0);
    CXLPOOL_CHECK(got.status().code() == StatusCode::kNotFound);
    // ... and the scrub healed the media: the buffer is reusable.
    CXLPOOL_CHECK_OK(co_await store.Set("victim", Bytes("reborn"), 0));
    got = co_await store.Get("victim", 0);
    CXLPOOL_CHECK_OK(got.status());
    CXLPOOL_CHECK(AsString(got->value) == "reborn");
  };
  RunBlocking(loop_, t());
  EXPECT_EQ(store.poison_dropped_keys(), 1u);
  EXPECT_EQ(pod_.PoisonedLineCount(), 0u);
}

TEST_F(KvStoreTest, ScrubOnceSweepsPoisonedEntries) {
  auto pool = MakePool(8, 2048);
  Store store(pool.get(), nullptr, 0, StoreConfig{}, nullptr);
  auto t = [&]() -> Task<uint64_t> {
    for (int i = 0; i < 4; ++i) {
      CXLPOOL_CHECK_OK(
          co_await store.Set("k" + std::to_string(i), Bytes("vvvv"), 0));
    }
    // LIFO alloc: the first Set landed in the highest buffer.
    pod_.PoisonLine(pool->base() + 7 * pool->buffer_size());
    co_return co_await store.ScrubOnce();
  };
  uint64_t dropped = RunBlocking(loop_, t());
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(store.resident_entries(), 3u);
  EXPECT_EQ(pod_.PoisonedLineCount(), 0u);
}

// --- Store with SSD cold tier (whole-rack fixture) ---

RackConfig KvRack(int hosts) {
  RackConfig rc;
  rc.pod.num_hosts = hosts;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.ssds_per_host = 1;
  return rc;
}

TEST(KvStoreSsdTest, ColdTailSpillsAndHydratesBack) {
  sim::EventLoop loop;
  Rack rack(loop, KvRack(2));
  rack.Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<bool> {
    auto lease = rack.AcquireDevice(HostId(0), DeviceType::kSsd);
    CXLPOOL_CHECK_OK(lease.status());
    auto ssd = co_await VirtualSsd::Create(rack.pod().host(0),
                                           std::move(lease->mmio), {});
    CXLPOOL_CHECK_OK(ssd.status());
    auto pool = BufferPool::Create(rack.pod().host(0), Placement::kCxlPool,
                                   8, 2048);
    CXLPOOL_CHECK_OK(pool.status());
    StoreConfig sc;
    sc.shards = 1;  // one LRU chain makes the eviction order observable
    sc.free_low_water = 2;
    Store store(pool->get(), ssd->get(), 1 * kMiB, sc, nullptr);

    // 16 values through an 8-buffer pool: the cold tail must spill.
    for (int i = 0; i < 16; ++i) {
      std::string v = "value-" + std::to_string(i) + std::string(900, 'x');
      CXLPOOL_CHECK_OK(co_await store.Set("key" + std::to_string(i),
                                          Bytes(v), loop.now() + kSecond));
    }
    CXLPOOL_CHECK(store.spilled_entries() > 0);
    CXLPOOL_CHECK(store.resident_entries() + store.spilled_entries() == 16);

    // Every value — hot or cold — reads back intact; cold ones hydrate.
    bool saw_ssd_origin = false;
    for (int i = 0; i < 16; ++i) {
      auto got = co_await store.Get("key" + std::to_string(i),
                                    loop.now() + kSecond);
      CXLPOOL_CHECK_OK(got.status());
      std::string expect = "value-" + std::to_string(i) + std::string(900, 'x');
      CXLPOOL_CHECK(AsString(got->value) == expect);
      saw_ssd_origin = saw_ssd_origin || got->origin == Origin::kSsd;
    }
    co_return saw_ssd_origin;
  };
  EXPECT_TRUE(RunBlocking(loop, t(rack, loop)));
  EXPECT_EQ(rack.pod().TotalLostDirtyLines(), 0u);
}

TEST(KvStoreSsdTest, HydrationShedsWhenDeadlineTooTight) {
  sim::EventLoop loop;
  Rack rack(loop, KvRack(2));
  rack.Start();

  auto t = [](Rack& rack, sim::EventLoop& loop) -> Task<> {
    auto lease = rack.AcquireDevice(HostId(0), DeviceType::kSsd);
    CXLPOOL_CHECK_OK(lease.status());
    auto ssd = co_await VirtualSsd::Create(rack.pod().host(0),
                                           std::move(lease->mmio), {});
    CXLPOOL_CHECK_OK(ssd.status());
    auto pool = BufferPool::Create(rack.pod().host(0), Placement::kCxlPool,
                                   4, 2048);
    CXLPOOL_CHECK_OK(pool.status());
    StoreConfig sc;
    sc.shards = 1;
    Store store(pool->get(), ssd->get(), 1 * kMiB, sc, nullptr);
    for (int i = 0; i < 8; ++i) {
      CXLPOOL_CHECK_OK(co_await store.Set("key" + std::to_string(i),
                                          Bytes("cold-candidate"),
                                          loop.now() + kSecond));
    }
    CXLPOOL_CHECK(store.spilled_entries() > 0);
    // key0 is the coldest — certainly spilled. A deadline tighter than
    // ssd_min_headroom must shed before touching the device (PR 6).
    auto got = co_await store.Get("key0", loop.now() + 5 * kMicrosecond);
    CXLPOOL_CHECK(got.status().code() == StatusCode::kDeadlineExceeded);
    // With room to breathe the same GET hydrates fine.
    got = co_await store.Get("key0", loop.now() + kSecond);
    CXLPOOL_CHECK_OK(got.status());
    CXLPOOL_CHECK(got->origin == Origin::kSsd);
  };
  RunBlocking(loop, t(rack, loop));
}

// --- Node end to end over UDP ---

struct Endpoint {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> MakeEndpoint(Rack& rack, HostId host, Endpoint* out) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = true;
  auto handle = co_await rack.CreateVirtualNic(host, vc);
  CXLPOOL_CHECK(handle.ok());
  out->nic = std::move(*handle);
  auto pool =
      BufferPool::Create(rack.pod().host(host), Placement::kCxlPool, 256, 2048);
  CXLPOOL_CHECK_OK(pool.status());
  out->pool = std::move(*pool);
  out->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, UdpStack::Config{});
  CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
}

// One client request/response exchange against a running node.
Task<Response> Exchange(UdpSocket* sock, netsim::MacAddr server_mac,
                        uint16_t server_port, Request req) {
  sim::EventLoop& loop = sock->Loop();
  CXLPOOL_CHECK_OK(
      co_await sock->SendTo(server_mac, server_port, EncodeRequest(req)));
  while (true) {
    auto d = co_await sock->Recv(loop.now() + 2 * kMillisecond);
    CXLPOOL_CHECK_OK(d.status());
    auto rsp = DecodeResponse(d->payload);
    CXLPOOL_CHECK_OK(rsp.status());
    if (rsp->seq == req.seq) {
      co_return std::move(*rsp);
    }
  }
}

TEST(KvNodeTest, ServesGetSetDeleteOverUdp) {
  sim::EventLoop loop;
  Rack rack(loop, KvRack(3));
  rack.Start();

  Endpoint server;
  Endpoint client;
  RunBlocking(loop, MakeEndpoint(rack, HostId(1), &server));
  RunBlocking(loop, MakeEndpoint(rack, HostId(2), &client));

  auto value_pool = BufferPool::Create(rack.pod().host(1), Placement::kCxlPool,
                                       64, 2048);
  CXLPOOL_CHECK_OK(value_pool.status());
  obs::Registry registry;
  Store store(value_pool->get(), nullptr, 0, StoreConfig{}, &registry);
  KvNode node(server.stack.get(), &store, NodeConfig{}, &registry);
  ASSERT_TRUE(node.Start(rack.stop_token()).ok());

  auto t = [&](sim::EventLoop& loop) -> Task<> {
    auto sock = client.stack->Bind(9100);
    CXLPOOL_CHECK_OK(sock.status());
    uint64_t seq = 1;
    auto mk = [&](Opcode op, std::string key, std::string value) {
      Request r;
      r.opcode = op;
      r.client_id = 1;
      r.seq = seq++;
      r.deadline = loop.now() + kMillisecond;
      r.key = std::move(key);
      r.value = Bytes(value);
      return r;
    };
    netsim::MacAddr mac = server.nic.mac;
    auto rsp = co_await Exchange(*sock, mac, 11211,
                                 mk(Opcode::kGet, "ghost", ""));
    CXLPOOL_CHECK(rsp.status == WireStatus::kNotFound);
    rsp = co_await Exchange(*sock, mac, 11211,
                            mk(Opcode::kSet, "greeting", "hello pool"));
    CXLPOOL_CHECK(rsp.status == WireStatus::kOk);
    rsp = co_await Exchange(*sock, mac, 11211,
                            mk(Opcode::kGet, "greeting", ""));
    CXLPOOL_CHECK(rsp.status == WireStatus::kOk);
    CXLPOOL_CHECK(AsString(rsp.value) == "hello pool");
    CXLPOOL_CHECK(rsp.origin == Origin::kPool);
    rsp = co_await Exchange(*sock, mac, 11211,
                            mk(Opcode::kDelete, "greeting", ""));
    CXLPOOL_CHECK(rsp.status == WireStatus::kOk);
    rsp = co_await Exchange(*sock, mac, 11211,
                            mk(Opcode::kGet, "greeting", ""));
    CXLPOOL_CHECK(rsp.status == WireStatus::kNotFound);

    // Hostile bytes on the node port: dropped and counted, no reply, and
    // the node keeps serving.
    std::vector<std::byte> junk(11, std::byte{0x5a});
    CXLPOOL_CHECK_OK(co_await (*sock)->SendTo(mac, 11211, junk));
    rsp = co_await Exchange(*sock, mac, 11211,
                            mk(Opcode::kSet, "after-junk", "still alive"));
    CXLPOOL_CHECK(rsp.status == WireStatus::kOk);
  };
  RunBlocking(loop, t(loop));
  auto* decode_errors = registry.FindCounter("kv.decode_errors");
  ASSERT_NE(decode_errors, nullptr);
  EXPECT_EQ(decode_errors->value(), 1);
  auto* rx = registry.FindCounter("kv.rx_requests");
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->value(), 6);
  rack.Shutdown();
  loop.RunFor(kMillisecond);
}

TEST(KvNodeTest, ShedsOverloadAtTheFrontDoor) {
  sim::EventLoop loop;
  Rack rack(loop, KvRack(3));
  rack.Start();

  Endpoint server;
  Endpoint client;
  RunBlocking(loop, MakeEndpoint(rack, HostId(1), &server));
  RunBlocking(loop, MakeEndpoint(rack, HostId(2), &client));

  auto value_pool = BufferPool::Create(rack.pod().host(1), Placement::kCxlPool,
                                       64, 2048);
  CXLPOOL_CHECK_OK(value_pool.status());
  obs::Registry registry;
  Store store(value_pool->get(), nullptr, 0, StoreConfig{}, &registry);
  NodeConfig nc;
  nc.max_inflight = 0;  // admit nothing: every request sheds at the front
  KvNode node(server.stack.get(), &store, nc, &registry);
  ASSERT_TRUE(node.Start(rack.stop_token()).ok());

  auto t = [&](sim::EventLoop& loop) -> Task<> {
    auto sock = client.stack->Bind(9101);
    CXLPOOL_CHECK_OK(sock.status());
    Request r;
    r.opcode = Opcode::kSet;
    r.client_id = 1;
    r.seq = 77;
    r.deadline = loop.now() + kMillisecond;
    r.key = "rejected";
    r.value = Bytes("never stored");
    auto rsp = co_await Exchange(*sock, server.nic.mac, 11211, r);
    CXLPOOL_CHECK(rsp.status == WireStatus::kOverloaded);
  };
  RunBlocking(loop, t(loop));
  auto* shed = registry.FindCounter("kv.shed_front");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->value(), 1);
  // The store never saw the request.
  auto* sets = registry.FindCounter("kv.sets");
  ASSERT_NE(sets, nullptr);
  EXPECT_EQ(sets->value(), 0);
  rack.Shutdown();
  loop.RunFor(kMillisecond);
}

// --- LoadGen ---

TEST(KvLoadGenTest, ValuePatternDetectsTampering) {
  LoadGenConfig cfg;
  auto value = LoadGen::MakeValue(123, 7, cfg);
  ASSERT_GE(value.size(), cfg.value_bytes_min);
  ASSERT_LE(value.size(), cfg.value_bytes_max);
  uint64_t rank = 0;
  uint64_t version = 0;
  EXPECT_TRUE(LoadGen::CheckValue(value, &rank, &version));
  EXPECT_EQ(rank, 123u);
  EXPECT_EQ(version, 7u);
  // Same (rank, version) is deterministic.
  EXPECT_EQ(LoadGen::MakeValue(123, 7, cfg), value);
  // Any flipped byte is caught.
  auto torn = value;
  torn[torn.size() - 1] ^= std::byte{0x01};
  EXPECT_FALSE(LoadGen::CheckValue(torn, &rank, &version));
  auto short_value = std::vector<std::byte>(8);
  EXPECT_FALSE(LoadGen::CheckValue(short_value, &rank, &version));
}

TEST(KvLoadGenTest, OpenLoopPhaseAgainstLiveNodeAuditsClean) {
  sim::EventLoop loop;
  Rack rack(loop, KvRack(3));
  rack.Start();

  Endpoint server;
  Endpoint client;
  RunBlocking(loop, MakeEndpoint(rack, HostId(1), &server));
  RunBlocking(loop, MakeEndpoint(rack, HostId(2), &client));

  auto value_pool = BufferPool::Create(rack.pod().host(1), Placement::kCxlPool,
                                       256, 2048);
  CXLPOOL_CHECK_OK(value_pool.status());
  obs::Registry registry;
  Store store(value_pool->get(), nullptr, 0, StoreConfig{}, &registry);
  KvNode node(server.stack.get(), &store, NodeConfig{}, &registry);
  ASSERT_TRUE(node.Start(rack.stop_token()).ok());

  LoadGenConfig lc;
  lc.keys = 128;
  lc.value_bytes_min = 64;
  lc.value_bytes_max = 512;
  lc.connections = 2;
  lc.seed = 7;
  LoadGen gen(client.stack.get(), server.nic.mac, 11211, /*client_id=*/1, lc,
              &registry);
  ASSERT_TRUE(gen.Start(rack.stop_token()).ok());

  auto t = [&]() -> Task<PhaseStats> {
    co_return co_await gen.RunPhase(/*offered_ops=*/40000.0,
                                    /*duration=*/25 * kMillisecond,
                                    /*warmup=*/5 * kMillisecond);
  };
  PhaseStats stats = RunBlocking(loop, t());
  EXPECT_GT(stats.sent, 400u);
  EXPECT_GT(stats.ok, 300u);
  EXPECT_EQ(gen.integrity_failures(), 0u);
  EXPECT_GT(gen.acked_sets(), 0u);
  EXPECT_GT(stats.goodput_ops, 0.0);

  auto audit = [&]() -> Task<AuditResult> {
    co_return co_await gen.VerifyAckedSets(/*exempt_before=*/0);
  };
  AuditResult result = RunBlocking(loop, audit());
  EXPECT_GT(result.checked, 0u);
  EXPECT_EQ(result.integrity_failures, 0u);
  EXPECT_EQ(result.missing_recent, 0u);
  EXPECT_EQ(result.missing_old, 0u);
  EXPECT_EQ(result.unverifiable, 0u);
  EXPECT_EQ(result.present_ok, result.checked);

  rack.Shutdown();
  loop.RunFor(kMillisecond);
}

}  // namespace
}  // namespace cxlpool::kv
