// Robustness tests for network partitions and split-brain-safe leases
// (ISSUE 9): quorum-aware liveness keeps a partitioned-but-alive
// leaseholder alive (probe-only liveness demonstrably overtakes it), full
// isolation is condemned by peer quorum, unackable fences resolve only by
// lease-TTL expiry, agents self-fence on orchestrator-only isolation, and
// every re-issue path bumps the epoch before the device is grantable.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/netsim/fault_plane.h"
#include "src/sim/task.h"

namespace cxlpool::core {
namespace {

using sim::RunBlocking;
using sim::Task;

class DummyDevice : public pcie::PcieDevice {
 public:
  DummyDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "dummy", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override { regs[reg] = value; }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
};

Task<Status> WriteReg(MmioPath& path, uint64_t value) {
  co_return co_await path.Write(0x10, value);
}

// Shared topology: 4 hosts, orchestrator on host 0, one accel homed on
// `accel_home`, leased by `user` over a forwarded MMIO path.
struct PartitionRig {
  sim::EventLoop loop;
  std::unique_ptr<Rack> rack;
  std::unique_ptr<DummyDevice> accel;
  std::unique_ptr<MmioPath> path;

  PartitionRig(int accel_home, int user, bool quorum_liveness) {
    RackConfig rc;
    rc.pod.num_hosts = 4;
    rc.pod.num_mhds = 2;
    rc.pod.mhd_capacity = 32 * kMiB;
    rc.pod.dram_per_host = 16 * kMiB;
    rc.nics_per_host = 1;
    rc.orch.quorum_liveness = quorum_liveness;
    rc.orch.rpc_timeout = 300 * kMicrosecond;
    rack = std::make_unique<Rack>(loop, rc);
    accel = std::make_unique<DummyDevice>(PcieDeviceId(60), loop);
    accel->AttachTo(&rack->pod().host(accel_home));
    rack->orchestrator().RegisterDevice(HostId(accel_home), accel.get(),
                                        DeviceType::kAccel);
    rack->Start();

    auto a = rack->orchestrator().Acquire(HostId(user), DeviceType::kAccel);
    CXLPOOL_CHECK(a.ok());
    CXLPOOL_CHECK(a->device == PcieDeviceId(60));
    auto p = rack->orchestrator().MakeMmioPath(HostId(user), PcieDeviceId(60));
    CXLPOOL_CHECK(p.ok());
    path = std::move(*p);
    // Let reports and peer probes settle before any fault.
    loop.RunFor(200 * kMicrosecond);
  }

  ~PartitionRig() {
    rack->Shutdown();
    loop.RunFor(kMillisecond);
  }

  Orchestrator& orch() { return rack->orchestrator(); }
  netsim::FaultPlane& plane() { return rack->pod().fault_plane(); }
};

// The acceptance scenario: host 1 holds a lease (device homed on host 2)
// and keeps WORKING, but loses both directions of its path to the
// orchestrator host. Probe-only liveness would declare it dead at
// liveness_timeout; quorum liveness must hold it as a fenced suspect —
// its peers still reach it, so condemnation never gets the votes — and
// the leaseholder is never overtaken early.
TEST(PartitionTest, QuorumKeepsPartitionedLeaseholderAlive) {
  PartitionRig rig(/*accel_home=*/2, /*user=*/1, /*quorum_liveness=*/true);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 1)));
  EXPECT_EQ(rig.accel->regs[0x10], 1u);

  rig.plane().Cut(HostId(1), HostId(0));
  rig.plane().Cut(HostId(0), HostId(1));
  // Far beyond liveness_timeout (300 us), short of lease_ttl+fence_margin
  // (1.3 ms) so the TTL condemnation path stays out of the picture.
  uint64_t v = 1;
  for (int i = 0; i < 10; ++i) {
    rig.loop.RunFor(100 * kMicrosecond);
    // The partitioned host keeps driving its device: the h1->h2 forwarded
    // path never touches the cut edges.
    CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, ++v)));
  }
  EXPECT_EQ(rig.accel->regs[0x10], v);

  const Orchestrator::Stats& s = rig.orch().stats();
  EXPECT_EQ(s.host_deaths, 0u);
  EXPECT_GE(s.suspects, 1u);
  EXPECT_EQ(s.condemned_by_quorum, 0u);
  EXPECT_EQ(s.condemned_by_ttl, 0u);
  EXPECT_TRUE(rig.orch().agent_alive(HostId(1)));
  EXPECT_GE(rig.orch().suspect_count(), 1u);
  // The lease was never revoked out from under the living holder.
  ASSERT_EQ(rig.orch().devices().at(PcieDeviceId(60)).lessees.size(), 1u);
  EXPECT_EQ(rig.orch().devices().at(PcieDeviceId(60)).lessees[0], HostId(1));
  // A suspect is fenced from NEW grants while in limbo.
  EXPECT_FALSE(rig.orch().Acquire(HostId(1), DeviceType::kNic).ok());

  rig.plane().Heal(HostId(1), HostId(0));
  rig.plane().Heal(HostId(0), HostId(1));
  rig.loop.RunFor(500 * kMicrosecond);
  EXPECT_GE(rig.orch().stats().suspect_recoveries, 1u);
  EXPECT_EQ(rig.orch().suspect_count(), 0u);
  EXPECT_EQ(rig.orch().stats().host_deaths, 0u);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, ++v)));
  EXPECT_EQ(rig.accel->regs[0x10], v);
}

// The pre-PR contrast: with probe-only liveness the exact same partition
// gets the living host declared dead and its lease revoked — the early
// overtake quorum liveness exists to prevent. The fencing machinery still
// holds the split-brain line, though: the old holder's path is epoch-fenced
// at the home agent BEFORE the device is ever re-granted.
TEST(PartitionTest, ProbeOnlyLivenessOvertakesPartitionedHost) {
  PartitionRig rig(/*accel_home=*/2, /*user=*/1, /*quorum_liveness=*/false);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 1)));

  rig.plane().Cut(HostId(1), HostId(0));
  rig.plane().Cut(HostId(0), HostId(1));
  rig.loop.RunFor(kMillisecond);

  const Orchestrator::Stats& s = rig.orch().stats();
  EXPECT_GE(s.host_deaths, 1u);  // overtaken early: h1 is alive and working
  EXPECT_FALSE(rig.orch().agent_alive(HostId(1)));
  EXPECT_GE(s.fences_acked, 1u);  // home agent (h2, reachable) acked the bump
  EXPECT_GE(rig.orch().devices().at(PcieDeviceId(60)).epoch, 1u);
  // The revoked holder's writes are dead at the home agent — no dual
  // ownership even under the wrong liveness call.
  Status st = RunBlocking(rig.loop, WriteReg(*rig.path, 99));
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_GE(rig.orch().agent(HostId(2))->stats().stale_epoch_rejects, 1u);
  // Re-grant is safe: the fence was acked first.
  auto regrant = rig.orch().Acquire(HostId(3), DeviceType::kAccel);
  ASSERT_TRUE(regrant.ok());
  EXPECT_EQ(regrant->device, PcieDeviceId(60));
}

// Full isolation: every peer loses the host, so quorum condemns it. Its
// home device cannot be fenced by ack (the fence push can't reach it), so
// the fence resolves only when the old lease TTL has provably expired —
// and re-registration resyncs the bumped epoch so the pre-partition path
// is rejected at the (now healed) home agent.
TEST(PartitionTest, FullPartitionCondemnedByQuorumThenFencedByTtl) {
  PartitionRig rig(/*accel_home=*/1, /*user=*/3, /*quorum_liveness=*/true);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 1)));

  const HostId one[] = {HostId(1)};
  const HostId rest[] = {HostId(0), HostId(2), HostId(3)};
  rig.plane().Partition(one, rest);
  rig.loop.RunFor(800 * kMicrosecond);

  const Orchestrator::Stats& s = rig.orch().stats();
  EXPECT_EQ(s.host_deaths, 1u);
  EXPECT_GE(s.suspects, 1u);
  EXPECT_EQ(s.condemned_by_quorum, 1u);
  EXPECT_FALSE(rig.orch().agent_alive(HostId(1)));
  EXPECT_GE(rig.orch().devices().at(PcieDeviceId(60)).epoch, 1u);
  // Fence unresolved (home unreachable): the device must not be granted.
  EXPECT_EQ(s.fences_acked, 0u);
  EXPECT_FALSE(rig.orch().Acquire(HostId(2), DeviceType::kAccel).ok());

  // lease_ttl (800 us) + fence_margin (500 us) past the fence start: the
  // isolated agent has provably self-fenced, the fence may resolve.
  rig.loop.RunFor(2 * kMillisecond);
  EXPECT_GE(rig.orch().stats().fences_ttl_expired, 1u);

  rig.plane().HealPartition(one, rest);
  rig.loop.RunFor(600 * kMicrosecond);
  EXPECT_GE(rig.orch().stats().host_reregistrations, 1u);
  EXPECT_TRUE(rig.orch().agent_alive(HostId(1)));
  // Re-issue under the bumped epoch; the old holder's path is fenced.
  auto regrant = rig.orch().Acquire(HostId(2), DeviceType::kAccel);
  ASSERT_TRUE(regrant.ok());
  EXPECT_EQ(regrant->device, PcieDeviceId(60));
  Status st = RunBlocking(rig.loop, WriteReg(*rig.path, 99));
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_GE(rig.orch().agent(HostId(1))->stats().stale_epoch_rejects, 1u);
}

// Orchestrator-only isolation of the HOME agent: its peers keep it alive
// (suspect, not dead), and after lease_ttl without a report round-trip it
// self-fences — forwarded ops are refused locally even though no epoch
// push could reach it. Healing restores both the lease clock and traffic.
TEST(PartitionTest, HomeAgentSelfFencesWhenIsolatedFromOrchestrator) {
  PartitionRig rig(/*accel_home=*/2, /*user=*/1, /*quorum_liveness=*/true);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 1)));

  rig.plane().Cut(HostId(2), HostId(0));
  rig.plane().Cut(HostId(0), HostId(2));
  // Inside the self-fence window: past lease_ttl (800 us, so the agent has
  // stopped serving) but short of lease_ttl + fence_margin (1.3 ms, where
  // the orchestrator may condemn the silent suspect — by then it is
  // provably self-fenced, so even that death would be split-brain-safe).
  rig.loop.RunFor(kMillisecond);

  EXPECT_EQ(rig.orch().stats().host_deaths, 0u);
  EXPECT_GE(rig.orch().stats().suspects, 1u);
  Status st = RunBlocking(rig.loop, WriteReg(*rig.path, 50));
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_GE(rig.orch().agent(HostId(2))->stats().self_fence_rejects, 1u);

  rig.plane().Heal(HostId(2), HostId(0));
  rig.plane().Heal(HostId(0), HostId(2));
  rig.loop.RunFor(500 * kMicrosecond);
  EXPECT_GE(rig.orch().stats().suspect_recoveries, 1u);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 7)));
  EXPECT_EQ(rig.accel->regs[0x10], 7u);
}

// A single DIRECTED cut (reports die, everything else flows) must behave
// like the orchestrator-only partition: suspect, no death, full recovery.
TEST(PartitionTest, AsymmetricCutSuspectsWithoutCondemnation) {
  PartitionRig rig(/*accel_home=*/2, /*user=*/3, /*quorum_liveness=*/true);
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 1)));

  rig.plane().Cut(HostId(3), HostId(0));  // one direction only
  rig.loop.RunFor(kMillisecond);

  EXPECT_EQ(rig.orch().stats().host_deaths, 0u);
  EXPECT_GE(rig.orch().stats().suspects, 1u);
  EXPECT_TRUE(rig.orch().agent_alive(HostId(3)));
  // The victim's own forwarded path (h3->h2) is untouched by the cut.
  CXLPOOL_CHECK_OK(RunBlocking(rig.loop, WriteReg(*rig.path, 2)));

  rig.plane().Heal(HostId(3), HostId(0));
  rig.loop.RunFor(500 * kMicrosecond);
  EXPECT_GE(rig.orch().stats().suspect_recoveries, 1u);
  EXPECT_EQ(rig.orch().suspect_count(), 0u);
}

}  // namespace
}  // namespace cxlpool::core
