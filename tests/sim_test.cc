#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/bandwidth.h"
#include "src/sim/chaos.h"
#include "src/sim/event_loop.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cxlpool::sim {
namespace {

// --- EventLoop ---

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
  EXPECT_EQ(loop.executed(), 3u);
}

TEST(EventLoopTest, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(100, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ReentrantScheduling) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(5, [&] {
    ++fired;
    loop.Schedule(5, [&] { ++fired; });
  });
  loop.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoopTest, RunUntilLeavesFutureEvents) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(10, [&] { ++fired; });
  loop.Schedule(100, [&] { ++fired; });
  loop.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 50);
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PastSchedulingClampsToNow) {
  EventLoop loop;
  Nanos seen = -1;
  loop.Schedule(100, [&] {
    loop.ScheduleAt(5, [&] { seen = loop.now(); });  // 5 < now=100
  });
  loop.Run();
  EXPECT_EQ(seen, 100);
}

TEST(EventLoopTest, StopInterruptsRun) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(1, [&] {
    ++fired;
    loop.Stop();
  });
  loop.Schedule(2, [&] { ++fired; });
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

// --- Task / coroutines ---

Task<int> Immediate() { co_return 7; }

TEST(TaskTest, ImmediateResult) {
  EventLoop loop;
  EXPECT_EQ(RunBlocking(loop, Immediate()), 7);
}

Task<int> DelayedValue(EventLoop& loop, Nanos d, int v) {
  co_await Delay(loop, d);
  co_return v;
}

TEST(TaskTest, DelayAdvancesTime) {
  EventLoop loop;
  int v = RunBlocking(loop, DelayedValue(loop, 250, 9));
  EXPECT_EQ(v, 9);
  EXPECT_EQ(loop.now(), 250);
}

Task<int> Nested(EventLoop& loop) {
  int a = co_await DelayedValue(loop, 100, 1);
  int b = co_await DelayedValue(loop, 50, 2);
  co_return a + b;
}

TEST(TaskTest, NestedAwaitsAccumulateTime) {
  EventLoop loop;
  EXPECT_EQ(RunBlocking(loop, Nested(loop)), 3);
  EXPECT_EQ(loop.now(), 150);
}

TEST(TaskTest, ZeroDelayDoesNotSuspend) {
  EventLoop loop;
  bool done = false;
  auto t = [](EventLoop& l, bool& flag) -> Task<> {
    co_await Delay(l, 0);
    co_await Delay(l, -5);
    flag = true;
  };
  Spawn(t(loop, done));
  // Spawn runs eagerly until first real suspension; zero delays are ready.
  EXPECT_TRUE(done);
  EXPECT_EQ(loop.now(), 0);
}

TEST(TaskTest, SpawnRunsConcurrently) {
  EventLoop loop;
  std::vector<int> order;
  auto actor = [](EventLoop& l, std::vector<int>& log, Nanos d, int tag) -> Task<> {
    co_await Delay(l, d);
    log.push_back(tag);
  };
  Spawn(actor(loop, order, 30, 3));
  Spawn(actor(loop, order, 10, 1));
  Spawn(actor(loop, order, 20, 2));
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- Sync primitives ---

TEST(SyncTest, EventWakesWaiters) {
  EventLoop loop;
  Event e(loop);
  int woken = 0;
  auto waiter = [](Event& ev, int& count) -> Task<> {
    co_await ev.Wait();
    ++count;
  };
  Spawn(waiter(e, woken));
  Spawn(waiter(e, woken));
  loop.Run();
  EXPECT_EQ(woken, 0);  // nothing set yet
  e.Set();
  loop.Run();
  EXPECT_EQ(woken, 2);
}

TEST(SyncTest, SetEventDoesNotBlock) {
  EventLoop loop;
  Event e(loop);
  e.Set();
  bool done = false;
  auto waiter = [](Event& ev, bool& flag) -> Task<> {
    co_await ev.Wait();
    flag = true;
  };
  Spawn(waiter(e, done));
  EXPECT_TRUE(done);  // ready immediately, no suspension
}

TEST(SyncTest, SemaphoreLimitsConcurrency) {
  EventLoop loop;
  Semaphore sem(loop, 2);
  int active = 0;
  int max_active = 0;
  auto worker = [](EventLoop& l, Semaphore& s, int& act, int& peak) -> Task<> {
    co_await s.Acquire();
    ++act;
    peak = std::max(peak, act);
    co_await Delay(l, 100);
    --act;
    s.Release();
  };
  for (int i = 0; i < 6; ++i) {
    Spawn(worker(loop, sem, active, max_active));
  }
  loop.Run();
  EXPECT_EQ(active, 0);
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(loop.now(), 300);  // 6 workers, 2 at a time, 100 ns each
}

TEST(SyncTest, SemaphoreTryAcquire) {
  EventLoop loop;
  Semaphore sem(loop, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SyncTest, QueueDeliversInOrder) {
  EventLoop loop;
  Queue<int> q(loop);
  std::vector<int> got;
  auto consumer = [](Queue<int>& queue, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      out.push_back(co_await queue.Pop());
    }
  };
  Spawn(consumer(q, got));
  q.Push(1);
  q.Push(2);
  loop.Run();
  q.Push(3);
  loop.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SyncTest, QueueTryPop) {
  EventLoop loop;
  Queue<int> q(loop);
  int v = 0;
  EXPECT_FALSE(q.TryPop(&v));
  q.Push(5);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 5);
}

// --- Random ---

TEST(RandomTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    uint64_t k = rng.UniformInt(uint64_t{10});
    EXPECT_LT(k, 10u);
    int64_t j = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(j, -5);
    EXPECT_LE(j, 5);
  }
}

TEST(RandomTest, ExponentialMean) {
  Rng rng(11);
  Summary s;
  for (int i = 0; i < 20000; ++i) {
    s.Add(rng.Exponential(100.0));
  }
  EXPECT_NEAR(s.mean(), 100.0, 3.0);
}

TEST(RandomTest, NormalMoments) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 20000; ++i) {
    s.Add(rng.Normal(50.0, 10.0));
  }
  EXPECT_NEAR(s.mean(), 50.0, 0.5);
  EXPECT_NEAR(s.stddev(), 10.0, 0.5);
}

TEST(RandomTest, CategoricalRespectsWeights) {
  Rng rng(17);
  double w[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Categorical(w)];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.3);
}

TEST(RandomTest, ZipfIsSkewed) {
  Rng rng(19);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[9] * 5);   // rank 0 ~10x rank 9 at s=1
  EXPECT_GT(counts[0], counts[99] * 30);
}

TEST(RandomTest, ZipfianSamplerDeterministicForFixedSeed) {
  ZipfianSampler zipf(1'000'000, 0.99);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    uint64_t va = zipf.Sample(a);
    uint64_t vb = zipf.Sample(b);
    ASSERT_EQ(va, vb);
    ASSERT_LT(va, zipf.n());
  }
}

TEST(RandomTest, ZipfianSamplerHeadMass) {
  // Empirical head mass vs. the analytic zipf(0.99) distribution over 10^5
  // keys: H = sum k^-0.99 ~= 12.3, so rank 0 carries ~8.1% of the mass and
  // the top-10 ranks together ~23.6%.
  ZipfianSampler zipf(100'000, 0.99);
  Rng rng(7);
  constexpr int kSamples = 200'000;
  int head = 0;
  int top10 = 0;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t r = zipf.Sample(rng);
    if (r == 0) {
      ++head;
    }
    if (r < 10) {
      ++top10;
    }
  }
  double head_frac = static_cast<double>(head) / kSamples;
  double top10_frac = static_cast<double>(top10) / kSamples;
  EXPECT_NEAR(head_frac, 0.081, 0.02);
  EXPECT_NEAR(top10_frac, 0.236, 0.04);
}

TEST(RandomTest, ZipfianSamplerMatchesCdfTableForSmallN) {
  // Rejection-inversion and the exact CDF table must agree on the head
  // frequencies for a key space small enough to tabulate.
  constexpr size_t kN = 1000;
  constexpr double kTheta = 0.99;
  constexpr int kSamples = 100'000;
  ZipfianSampler ri(kN, kTheta);
  ZipfGenerator table(kN, kTheta);
  Rng ra(23);
  Rng rb(29);
  std::vector<int> ca(kN, 0);
  std::vector<int> cb(kN, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++ca[ri.Sample(ra)];
    ++cb[table.Sample(rb)];
  }
  for (size_t rank : {size_t{0}, size_t{1}, size_t{5}}) {
    double fa = static_cast<double>(ca[rank]) / kSamples;
    double fb = static_cast<double>(cb[rank]) / kSamples;
    EXPECT_NEAR(fa, fb, 0.015) << "rank " << rank;
  }
}

TEST(RandomTest, ZipfianSamplerDegenerateSingleItem) {
  ZipfianSampler zipf(1, 0.99);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

// --- Stats ---

TEST(StatsTest, SummaryBasics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(StatsTest, HistogramExactSmallValues) {
  Histogram h;
  for (int i = 0; i < 10; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 9);
}

TEST(StatsTest, HistogramPercentileAccuracy) {
  Histogram h;
  for (int64_t v = 1; v <= 100000; ++v) {
    h.Add(v);
  }
  // Relative error bound from sub-bucketing: 2^-6 ~ 1.6%.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.50)), 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 99000.0, 99000.0 * 0.02);
  EXPECT_EQ(h.Percentile(1.0), 100000);
}

TEST(StatsTest, HistogramMerge) {
  Histogram a;
  Histogram b;
  a.Add(100);
  b.Add(300);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 300);
}

TEST(StatsTest, HistogramNegativeClampsToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(StatsTest, CounterDelta) {
  Counter c;
  c.Add(5);
  c.Add(3);
  EXPECT_EQ(c.total(), 8u);
  EXPECT_EQ(c.TakeDelta(), 8u);
  c.Add(2);
  EXPECT_EQ(c.TakeDelta(), 2u);
  EXPECT_EQ(c.TakeDelta(), 0u);
}

// --- Bandwidth ---

TEST(BandwidthTest, IdleLinkIsSerializationOnly) {
  BandwidthQueue q(10.0);  // 10 B/ns
  EXPECT_EQ(q.Acquire(0, 1000), 100);
  EXPECT_EQ(q.next_free(), 100);
}

TEST(BandwidthTest, BackToBackTransfersQueue) {
  BandwidthQueue q(10.0);
  EXPECT_EQ(q.Acquire(0, 1000), 100);
  EXPECT_EQ(q.Acquire(0, 1000), 200);  // queues behind the first
  EXPECT_EQ(q.Acquire(500, 1000), 600);  // link idle again by t=500
}

TEST(BandwidthTest, PeekDoesNotReserve) {
  BandwidthQueue q(10.0);
  EXPECT_EQ(q.Peek(0, 1000), 100);
  EXPECT_EQ(q.Peek(0, 1000), 100);  // unchanged
  EXPECT_EQ(q.next_free(), 0);
}

TEST(BandwidthTest, UtilizationTracksBusyFraction) {
  BandwidthQueue q(10.0);
  q.Acquire(0, 1000);  // busy 0..100
  EXPECT_NEAR(q.Utilization(200), 0.5, 1e-9);
  EXPECT_NEAR(q.Utilization(100), 1.0, 1e-9);
}

TEST(BandwidthTest, RateChangeAffectsLaterTransfers) {
  BandwidthQueue q(10.0);
  EXPECT_EQ(q.Acquire(0, 100), 10);
  q.set_bytes_per_ns(1.0);  // degraded link
  EXPECT_EQ(q.Acquire(10, 100), 110);
}

TEST(BandwidthTest, BacklogVisible) {
  BandwidthQueue q(1.0);
  q.Acquire(0, 500);
  EXPECT_EQ(q.Backlog(100), 400);
  EXPECT_EQ(q.Backlog(600), 0);
}

// --- ChaosInjector ---

TEST(ChaosInjectorTest, RandomScheduleIsDeterministicPerSeed) {
  EventLoop loop;
  auto make_plan = [&loop](uint64_t seed) {
    ChaosInjector::Options o;
    o.seed = seed;
    ChaosInjector chaos(loop, o);
    chaos.AddFault("a", [] {}, [] {});
    chaos.AddFault("b", [] {}, [] {});
    chaos.AddFault("c", [] {}, [] {});
    chaos.ScheduleRandom(0, 10 * kMillisecond);
    return chaos.plan();
  };
  auto p1 = make_plan(123);
  auto p2 = make_plan(123);
  auto other = make_plan(124);
  ASSERT_EQ(p1.size(), p2.size());
  ASSERT_GT(p1.size(), 0u);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].at, p2[i].at);
    EXPECT_EQ(p1[i].fault, p2[i].fault);
    EXPECT_EQ(p1[i].outage, p2[i].outage);
    // Events are serialized: next failure never before the prior repair.
    if (i > 0) {
      EXPECT_GE(p1[i].at, p1[i - 1].at + p1[i - 1].outage);
    }
  }
  // A different seed produces a different storm.
  bool differs = other.size() != p1.size();
  for (size_t i = 0; !differs && i < p1.size(); ++i) {
    differs = other[i].at != p1[i].at || other[i].fault != p1[i].fault;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosInjectorTest, ScriptedFaultsMeasureMttr) {
  EventLoop loop;
  StopToken stop;
  bool down = false;
  ChaosInjector::Options o;
  o.probe_interval = kMicrosecond;
  ChaosInjector chaos(loop, o);
  chaos.AddFault("flag", [&down] { down = true; }, [&down] { down = false; });
  int invariant_checks = 0;
  chaos.AddInvariant("counted", [&invariant_checks]() -> std::string {
    ++invariant_checks;
    return "";
  });
  // Service is down exactly while the fault is active: MTTR == outage.
  chaos.SetRecoveryProbe([&down] { return !down; });
  chaos.ScheduleFail(10 * kMicrosecond, 0, 30 * kMicrosecond);
  chaos.ScheduleFail(100 * kMicrosecond, 0, 20 * kMicrosecond);
  chaos.Start(stop);
  loop.RunFor(kMillisecond);

  EXPECT_EQ(chaos.injections(), 2u);
  EXPECT_EQ(chaos.recoveries(), 2u);
  EXPECT_EQ(chaos.violations(), 0u);
  EXPECT_EQ(chaos.mttr().count(), 2u);
  EXPECT_EQ(chaos.mttr().max(), 30 * kMicrosecond);
  EXPECT_EQ(invariant_checks, 2);  // once after each recovery
}

TEST(ChaosInjectorTest, NoRecoveryWithinTimeoutIsViolation) {
  EventLoop loop;
  StopToken stop;
  ChaosInjector::Options o;
  o.probe_interval = kMicrosecond;
  o.probe_timeout = 50 * kMicrosecond;
  ChaosInjector chaos(loop, o);
  chaos.AddFault("wedge", [] {}, [] {});
  chaos.SetRecoveryProbe([] { return false; });  // never comes back
  chaos.ScheduleFail(10 * kMicrosecond, 0, 20 * kMicrosecond);
  chaos.Start(stop);
  loop.RunFor(kMillisecond);

  EXPECT_EQ(chaos.injections(), 1u);
  EXPECT_EQ(chaos.recoveries(), 0u);
  EXPECT_EQ(chaos.violations(), 1u);
  ASSERT_EQ(chaos.violation_log().size(), 1u);
  EXPECT_NE(chaos.violation_log()[0].find("no recovery"), std::string::npos);
}

TEST(ChaosInjectorTest, TraceDigestReproducible) {
  auto run = []() {
    EventLoop loop;
    StopToken stop;
    bool down = false;
    ChaosInjector::Options o;
    o.seed = 99;
    o.mean_interval = 100 * kMicrosecond;
    o.min_outage = 5 * kMicrosecond;
    o.max_outage = 40 * kMicrosecond;
    o.probe_interval = kMicrosecond;
    ChaosInjector chaos(loop, o);
    chaos.AddFault("flag", [&down] { down = true; }, [&down] { down = false; });
    chaos.SetRecoveryProbe([&down] { return !down; });
    chaos.ScheduleRandom(0, 2 * kMillisecond);
    chaos.Start(stop);
    loop.RunFor(5 * kMillisecond);
    return chaos.TraceDigest();
  };
  std::string d1 = run();
  std::string d2 = run();
  EXPECT_EQ(d1, d2);
  EXPECT_FALSE(d1.empty());
}

}  // namespace
}  // namespace cxlpool::sim
