// Gray-failure acceptance tests: the three end-to-end behaviors ISSUE
// pins — exactly-once forwarded MMIO under timeout-triggered retries,
// watchdog detection + FLR repair of a wedged device, and orchestrator
// quarantine of a flapping device with exponential probation.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/msg/channel.h"
#include "src/msg/rpc.h"
#include "src/sim/task.h"

namespace cxlpool::core {
namespace {

using sim::RunBlocking;
using sim::Task;

// Counts every OnMmioWrite so a double-applied doorbell is visible.
class CountingDevice : public pcie::PcieDevice {
 public:
  CountingDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "counter", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;
  std::map<uint64_t, int> write_counts;
  int resets = 0;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override {
    regs[reg] = value;
    ++write_counts[reg];
  }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
  void OnReset() override { ++resets; }
};

RackConfig SmallRack(int hosts = 3) {
  RackConfig rc;
  rc.pod.num_hosts = hosts;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 1;
  return rc;
}

class GrayFailureTest : public ::testing::Test {
 protected:
  void Drain() {
    rack_->Shutdown();
    loop_.RunFor(500 * kMicrosecond);
  }

  sim::EventLoop loop_;
  std::unique_ptr<Rack> rack_;
};

// --- Exactly-once forwarded MMIO (acceptance) ---
//
// The first attempt's deadline (200ns) is far below the forwarded RTT
// (>=700ns, see CoreTest.RemoteMmioCostsMoreThanLocal), so it times out
// AFTER the frame is already in the home agent's request ring. The agent
// applies it; the retry re-sends the SAME (client_id, seq) and must be
// acknowledged from the dedup window, not re-applied.
TEST_F(GrayFailureTest, TimedOutDoorbellIsAppliedExactlyOnce) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  CountingDevice dev(PcieDeviceId(90), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  // Private forwarding channel so the test controls the path's timeout
  // without disturbing the rack's own control-plane RPC deadlines.
  auto channel = msg::Channel::Create(rack_->pod().pool(), rack_->pod().host(2),
                                      rack_->pod().host(0));
  ASSERT_TRUE(channel.ok());
  Agent* agent = rack_->orchestrator().agent(HostId(0));
  ASSERT_NE(agent, nullptr);
  agent->ServeForwarding((*channel)->end_b(), rack_->stop_token());

  auto client = std::make_shared<msg::RpcClient>((*channel)->end_a());
  msg::RetryPolicy::Options retry;
  retry.max_attempts = 4;
  retry.initial_backoff = 2 * kMicrosecond;
  retry.max_backoff = 20 * kMicrosecond;
  // Escalate 8x per attempt: 200ns, 1.6us, 12.8us — the last is above the
  // 10us RTT ceiling, so the op completes without exhausting attempts.
  retry.timeout_multiplier = 8.0;
  ForwardedMmioPath path(client, PcieDeviceId(90), /*epoch=*/0,
                         /*timeout=*/200, loop_, /*client_id=*/7, retry);

  auto t = [](ForwardedMmioPath& p) -> Task<Status> {
    co_return co_await p.Write(0x20, 0xd00d);
  };
  Status st = RunBlocking(loop_, t(path));
  loop_.RunFor(100 * kMicrosecond);  // let straggler duplicates drain

  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_GE(path.retry_stats().retries, 1u) << "deadline never fired; the "
      "test lost its premise that attempt 1 times out mid-flight";
  // THE acceptance check: the doorbell landed exactly once.
  EXPECT_EQ(dev.write_counts[0x20], 1);
  EXPECT_EQ(dev.regs[0x20], 0xd00du);
  EXPECT_EQ(agent->stats().forwarded_writes, 1u);
  EXPECT_GE(agent->stats().dedup_hits, 1u);
  Drain();
}

// Sequential ops through the same path keep distinct seqs: dedup must
// suppress duplicates of one op without eating the next op.
TEST_F(GrayFailureTest, DedupWindowDoesNotSwallowSubsequentOps) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  CountingDevice dev(PcieDeviceId(91), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto channel = msg::Channel::Create(rack_->pod().pool(), rack_->pod().host(1),
                                      rack_->pod().host(0));
  ASSERT_TRUE(channel.ok());
  Agent* agent = rack_->orchestrator().agent(HostId(0));
  agent->ServeForwarding((*channel)->end_b(), rack_->stop_token());

  auto client = std::make_shared<msg::RpcClient>((*channel)->end_a());
  msg::RetryPolicy::Options retry;
  retry.max_attempts = 4;
  retry.initial_backoff = 2 * kMicrosecond;
  retry.timeout_multiplier = 8.0;
  ForwardedMmioPath path(client, PcieDeviceId(91), /*epoch=*/0,
                         /*timeout=*/200, loop_, /*client_id=*/9, retry);

  auto t = [](ForwardedMmioPath& p) -> Task<Status> {
    for (uint64_t reg = 1; reg <= 3; ++reg) {
      if (Status s = co_await p.Write(reg, reg * 11); !s.ok()) {
        co_return s;
      }
    }
    co_return OkStatus();
  };
  Status st = RunBlocking(loop_, t(path));
  loop_.RunFor(100 * kMicrosecond);

  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(dev.write_counts[1], 1);
  EXPECT_EQ(dev.write_counts[2], 1);
  EXPECT_EQ(dev.write_counts[3], 1);
  EXPECT_EQ(dev.regs[2], 22u);
  EXPECT_EQ(agent->stats().forwarded_writes, 3u);
  Drain();
}

// --- Watchdog: wedge detection and FLR repair (integration) ---

TEST_F(GrayFailureTest, AgentWatchdogDetectsWedgeAndIssuesFlr) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  CountingDevice dev(PcieDeviceId(92), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();
  loop_.RunFor(50 * kMicrosecond);  // a few clean monitor cycles first

  dev.Wedge();
  ASSERT_TRUE(dev.wedged());
  // Detection needs wedge_miss_threshold (2) probes, each stalling for the
  // wedge stall (20us) on top of the monitor interval (20us).
  loop_.RunFor(500 * kMicrosecond);

  Agent* agent = rack_->orchestrator().agent(HostId(0));
  EXPECT_FALSE(dev.wedged()) << "watchdog never reset the wedged device";
  EXPECT_GE(agent->stats().watchdog_misses, 2u);
  EXPECT_GE(agent->stats().flr_resets, 1u);
  EXPECT_GE(agent->device_fault_episodes(PcieDeviceId(92)), 1u);
  EXPECT_GE(dev.resets, 1);
  EXPECT_EQ(dev.gray_stats().wedges, 1u);
  // The episode reaches the orchestrator's flap accounting via reports.
  const auto* rec = rack_->orchestrator().record(PcieDeviceId(92));
  ASSERT_NE(rec, nullptr);
  EXPECT_GE(rec->reported_fault_episodes, 1u);
  Drain();
}

// --- Quarantine (acceptance) ---
//
// Flap threshold 3 (default). A device crossing it serves a probation
// during which it is never offered; after expiry it is offered again; a
// re-offense doubles the sentence.
TEST_F(GrayFailureTest, FlappingDeviceIsQuarantinedThenReoffered) {
  RackConfig rc = SmallRack();
  rc.orch.quarantine_probation = 1 * kMillisecond;
  rack_ = std::make_unique<Rack>(loop_, rc);
  CountingDevice dev_a(PcieDeviceId(93), loop_);
  CountingDevice dev_b(PcieDeviceId(94), loop_);
  dev_a.AttachTo(&rack_->pod().host(0));
  dev_b.AttachTo(&rack_->pod().host(0));
  Orchestrator& orch = rack_->orchestrator();
  orch.RegisterDevice(HostId(0), &dev_a, DeviceType::kAccel);
  orch.RegisterDevice(HostId(0), &dev_b, DeviceType::kAccel);
  rack_->Start();

  // Remote user: allocation goes through PickDevice.
  auto first = orch.Acquire(HostId(1), DeviceType::kAccel);
  ASSERT_TRUE(first.ok());
  CXLPOOL_CHECK_OK(orch.Release(HostId(1), first->device));

  // Quarantine activity now lives in the metrics registry.
  auto quarantine_count = [&](const std::string& name) {
    const obs::Counter* c = orch.metrics().FindCounter(name);
    return c != nullptr ? c->value() : 0;
  };

  // Flap device A past the threshold: quarantined, never offered.
  orch.NoteFlaps(PcieDeviceId(93), 3);
  EXPECT_TRUE(orch.InQuarantine(PcieDeviceId(93)));
  EXPECT_EQ(quarantine_count("orch.quarantines"), 1u);
  for (int i = 0; i < 4; ++i) {
    auto a = orch.Acquire(HostId(1), DeviceType::kAccel);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->device, PcieDeviceId(94)) << "quarantined device was offered";
    CXLPOOL_CHECK_OK(orch.Release(HostId(1), a->device));
  }
  EXPECT_GE(quarantine_count("orch.quarantined_skips"), 4u);

  // Flap B too: NO leases during probation, error rather than a bad lease.
  orch.NoteFlaps(PcieDeviceId(94), 3);
  auto none = orch.Acquire(HostId(1), DeviceType::kAccel);
  EXPECT_EQ(none.status().code(), StatusCode::kResourceExhausted);

  // Probation served: both devices come back.
  loop_.RunFor(2 * kMillisecond);
  EXPECT_FALSE(orch.InQuarantine(PcieDeviceId(93)));
  EXPECT_FALSE(orch.InQuarantine(PcieDeviceId(94)));
  EXPECT_GE(quarantine_count("orch.quarantine_releases"), 2u);
  auto again = orch.Acquire(HostId(1), DeviceType::kAccel);
  EXPECT_TRUE(again.ok());

  // Re-offense: probation doubles (level 2 => 2x base).
  Nanos before = loop_.now();
  orch.NoteFlaps(PcieDeviceId(93), 3);
  const auto* rec = orch.record(PcieDeviceId(93));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->quarantine_level, 2u);
  EXPECT_EQ(rec->probation_until - before, 2 * rc.orch.quarantine_probation);
  // Still quarantined after the BASE probation; released after the doubled one.
  loop_.RunFor(rc.orch.quarantine_probation + 100 * kMicrosecond);
  EXPECT_TRUE(orch.InQuarantine(PcieDeviceId(93)));
  loop_.RunFor(rc.orch.quarantine_probation);
  EXPECT_FALSE(orch.InQuarantine(PcieDeviceId(93)));
  Drain();
}

// Flaps below the threshold never quarantine; threshold 0 disables.
TEST_F(GrayFailureTest, QuarantineRespectsThresholdConfig) {
  RackConfig rc = SmallRack();
  rc.orch.quarantine_flap_threshold = 0;  // disabled
  rack_ = std::make_unique<Rack>(loop_, rc);
  CountingDevice dev(PcieDeviceId(95), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  rack_->orchestrator().NoteFlaps(PcieDeviceId(95), 100);
  EXPECT_FALSE(rack_->orchestrator().InQuarantine(PcieDeviceId(95)));
  const obs::Counter* q =
      rack_->orchestrator().metrics().FindCounter("orch.quarantines");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->value(), 0u);
  Drain();
}

}  // namespace
}  // namespace cxlpool::core
