#include <gtest/gtest.h>

#include "src/tco/tco.h"

namespace cxlpool::tco {
namespace {

TEST(TcoTest, DefaultInputsMatchPaperAnchors) {
  // The paper's cost anchors: ~$80k for a switch deployment, ~$600/host
  // for the CXL pod.
  CostInputs in;
  TcoReport r = ComputeTco(in, 0.54, 0.19, 0.29, 0.10);
  EXPECT_NEAR(r.pcie_switch_infra, 80000, 2500);
  EXPECT_DOUBLE_EQ(r.cxl_infra, 600.0 * in.hosts);
}

TEST(TcoTest, MemoryPoolingMakesCxlInfraFreeOrBetter) {
  CostInputs in;
  TcoReport r = ComputeTco(in, 0.54, 0.19, 0.29, 0.10);
  EXPECT_LE(r.cxl_infra_net_of_memory_savings, 0.0);
}

TEST(TcoTest, CxlNetBeatsSwitchNet) {
  CostInputs in;
  TcoReport r = ComputeTco(in, 0.54, 0.19, 0.29, 0.10);
  EXPECT_GT(r.cxl_net, r.pcie_switch_net);
  // The gap is roughly the infra delta.
  EXPECT_NEAR(r.cxl_net - r.pcie_switch_net,
              r.pcie_switch_infra - r.cxl_infra_net_of_memory_savings, 1.0);
}

TEST(TcoTest, NoStrandingReductionNoDeviceSavings) {
  CostInputs in;
  TcoReport r = ComputeTco(in, 0.54, 0.54, 0.29, 0.29);
  EXPECT_DOUBLE_EQ(r.ssd_capex_avoided, 0.0);
  EXPECT_DOUBLE_EQ(r.nic_capex_avoided, 0.0);
  // Redundancy sharing still counts.
  EXPECT_GT(r.redundancy_capex_avoided, 0.0);
}

TEST(TcoTest, SavingsGrowWithStrandingReduction) {
  CostInputs in;
  TcoReport small = ComputeTco(in, 0.54, 0.45, 0.29, 0.25);
  TcoReport large = ComputeTco(in, 0.54, 0.19, 0.29, 0.10);
  EXPECT_GT(large.ssd_capex_avoided, small.ssd_capex_avoided);
  EXPECT_GT(large.nic_capex_avoided, small.nic_capex_avoided);
}

TEST(TcoTest, WorseStrandingNeverYieldsNegativeSavings) {
  CostInputs in;
  TcoReport r = ComputeTco(in, 0.20, 0.50, 0.10, 0.40);  // pooling "hurt"
  EXPECT_DOUBLE_EQ(r.ssd_capex_avoided, 0.0);
  EXPECT_DOUBLE_EQ(r.nic_capex_avoided, 0.0);
}

TEST(TcoTest, RedundancySharingScalesWithPods) {
  CostInputs in;
  in.hosts = 32;
  in.pod_size = 8;  // 4 pods -> 8 spares vs 32 per-host spares
  TcoReport r = ComputeTco(in, 0.54, 0.19, 0.29, 0.10);
  EXPECT_DOUBLE_EQ(r.redundancy_capex_avoided, (32 - 8) * in.nic_unit_cost);
}

TEST(TcoTest, FleetMathMatchesFormula) {
  CostInputs in;
  in.hosts = 10;
  in.ssds_per_host = 4;
  in.ssd_unit_cost = 1000;
  TcoReport r = ComputeTco(in, 0.5, 0.2, 0.29, 0.29);
  // reduction = 1 - (1-0.5)/(1-0.2) = 0.375 of a $40k fleet.
  EXPECT_NEAR(r.ssd_capex_avoided, 0.375 * 40000, 1.0);
}

}  // namespace
}  // namespace cxlpool::tco
