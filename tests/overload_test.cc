// Overload-protection integration tests: the breaker -> NoteFlaps ->
// quarantine pipeline, the half-open-probe / quarantine-sweep race,
// deadline propagation shedding work before the device BAR, and the
// per-agent inflight bound shedding data while control survives.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/msg/backpressure.h"
#include "src/sim/task.h"

namespace cxlpool::core {
namespace {

using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

class CountingDevice : public pcie::PcieDevice {
 public:
  CountingDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "counter", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;
  std::map<uint64_t, int> write_counts;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override {
    regs[reg] = value;
    ++write_counts[reg];
  }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
};

RackConfig SmallRack(int hosts = 2) {
  RackConfig rc;
  rc.pod.num_hosts = hosts;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 32 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 1;
  return rc;
}

class OverloadTest : public ::testing::Test {
 protected:
  void Drain() {
    rack_->Shutdown();
    loop_.RunFor(500 * kMicrosecond);
  }

  sim::EventLoop loop_;
  std::unique_ptr<Rack> rack_;
};

Task<Status> WriteOnce(MmioPath& path, uint64_t reg, uint64_t value,
                       Nanos deadline = 0) {
  co_return co_await path.Write(reg, value, {}, deadline);
}

// --- Breaker opens feed quarantine flap accounting ---
//
// A home agent that stops draining (wedged container, not a dead host)
// turns every forwarded op into transport silence. The per-device breaker
// must trip on consecutive silence, each open must feed NoteFlaps, and
// enough opens must quarantine the device — without any watchdog/FLR
// involvement (the device itself is healthy).
TEST_F(OverloadTest, BreakerOpensFeedQuarantine) {
  RackConfig rc = SmallRack();
  rc.orch.rpc_timeout = 100 * kMicrosecond;
  rc.orch.mmio_retry.max_attempts = 1;  // one attempt per op: clear counting
  rc.orch.breaker.failure_threshold = 2;
  rc.orch.breaker.open_duration = 200 * kMicrosecond;
  rc.orch.quarantine_flap_threshold = 2;
  rc.orch.quarantine_probation = 1 * kMillisecond;
  rack_ = std::make_unique<Rack>(loop_, rc);
  CountingDevice dev(PcieDeviceId(50), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto path = rack_->orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(50));
  ASSERT_TRUE(path.ok());
  Agent* agent = rack_->orchestrator().agent(HostId(0));
  ASSERT_NE(agent, nullptr);
  msg::CircuitBreaker* breaker =
      rack_->orchestrator().breaker(PcieDeviceId(50));
  ASSERT_NE(breaker, nullptr);

  // The agent stalls every forwarded op far past the RPC timeout: silence.
  agent->InjectSlowDrain(kMillisecond);

  // Two consecutive timeouts (no op deadline, so silence counts) trip the
  // breaker: open #1, flap #1.
  EXPECT_EQ(RunBlocking(loop_, WriteOnce(**path, 0x8, 1)).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(RunBlocking(loop_, WriteOnce(**path, 0x8, 2)).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(breaker->stats().opens, 1u);
  EXPECT_FALSE(rack_->orchestrator().InQuarantine(PcieDeviceId(50)));

  // While open: fast-fail with kOverloaded, no wire traffic, no new flap.
  EXPECT_EQ(RunBlocking(loop_, WriteOnce(**path, 0x8, 3)).code(),
            StatusCode::kOverloaded);
  EXPECT_GE(breaker->stats().fast_fails, 1u);

  // Past open_duration the breaker half-opens; the probe also times out,
  // re-tripping immediately: open #2, flap #2 -> quarantine.
  loop_.RunFor(250 * kMicrosecond);
  EXPECT_EQ(RunBlocking(loop_, WriteOnce(**path, 0x8, 4)).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(breaker->stats().opens, 2u);
  EXPECT_GE(breaker->stats().probes, 1u);
  EXPECT_TRUE(rack_->orchestrator().InQuarantine(PcieDeviceId(50)));
  // The device itself was never the problem: no FLR, no watchdog noise.
  EXPECT_EQ(agent->stats().flr_resets, 0u);

  agent->InjectSlowDrain(0);
  Drain();
}

// --- Half-open probe racing the quarantine sweep ---
//
// The breaker and quarantine heal on independent clocks. A half-open probe
// that succeeds while the device is still serving probation must close the
// breaker WITHOUT un-quarantining the device; allocation stays gated until
// probation expires; then both mechanisms agree the device is back.
TEST_F(OverloadTest, HalfOpenProbeRacesQuarantineSweep) {
  RackConfig rc = SmallRack();
  rc.orch.rpc_timeout = 100 * kMicrosecond;
  rc.orch.mmio_retry.max_attempts = 1;
  rc.orch.breaker.failure_threshold = 2;
  rc.orch.breaker.open_duration = 200 * kMicrosecond;
  rc.orch.breaker.half_open_successes = 2;
  rc.orch.quarantine_flap_threshold = 1;  // first open quarantines
  rc.orch.quarantine_probation = 2 * kMillisecond;
  rack_ = std::make_unique<Rack>(loop_, rc);
  CountingDevice dev(PcieDeviceId(51), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto path = rack_->orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(51));
  ASSERT_TRUE(path.ok());
  Agent* agent = rack_->orchestrator().agent(HostId(0));
  msg::CircuitBreaker* breaker =
      rack_->orchestrator().breaker(PcieDeviceId(51));
  ASSERT_NE(breaker, nullptr);

  agent->InjectSlowDrain(kMillisecond);
  (void)RunBlocking(loop_, WriteOnce(**path, 0x8, 1));
  (void)RunBlocking(loop_, WriteOnce(**path, 0x8, 2));
  EXPECT_EQ(breaker->stats().opens, 1u);
  EXPECT_TRUE(rack_->orchestrator().InQuarantine(PcieDeviceId(51)));

  // The agent recovers while the device still serves probation. The two
  // wedged handlers sampled their 1ms stall at entry, so give the serve
  // loop time to drain them — otherwise the probes queue behind the wedge
  // and re-trip the breaker on a stale stall.
  agent->InjectSlowDrain(0);
  loop_.RunFor(1500 * kMicrosecond);  // wedge drained + past open_duration

  // Two successful probes close the breaker... while still quarantined.
  EXPECT_TRUE(RunBlocking(loop_, WriteOnce(**path, 0x8, 3)).ok());
  EXPECT_TRUE(RunBlocking(loop_, WriteOnce(**path, 0x8, 4)).ok());
  EXPECT_EQ(breaker->state(loop_.now()), msg::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(rack_->orchestrator().InQuarantine(PcieDeviceId(51)));

  // Allocation stays gated by the quarantine, independent of the breaker.
  EXPECT_FALSE(rack_->orchestrator().Acquire(HostId(1), DeviceType::kAccel).ok());

  // Probation served: the quarantine sweep releases the device and both
  // mechanisms agree it is usable again.
  loop_.RunFor(2 * kMillisecond);
  EXPECT_FALSE(rack_->orchestrator().InQuarantine(PcieDeviceId(51)));
  auto acq = rack_->orchestrator().Acquire(HostId(1), DeviceType::kAccel);
  EXPECT_TRUE(acq.ok());
  EXPECT_EQ(breaker->state(loop_.now()), msg::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker->stats().opens, 1u);

  Drain();
}

// --- Deadline propagation sheds work before the device BAR ---
TEST_F(OverloadTest, SlowDrainExpiresBeforeDeviceBar) {
  rack_ = std::make_unique<Rack>(loop_, SmallRack());
  CountingDevice dev(PcieDeviceId(52), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  auto path = rack_->orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(52));
  ASSERT_TRUE(path.ok());
  Agent* agent = rack_->orchestrator().agent(HostId(0));
  loop_.RunFor(10 * kMicrosecond);  // off t=0 (deadline 0 means "none")

  // The op's 20us budget dies inside the agent's 30us stall: the pre-BAR
  // re-check must shed it — the device never sees the write.
  agent->InjectSlowDrain(30 * kMicrosecond);
  Status st = RunBlocking(
      loop_, WriteOnce(**path, 0x8, 0xbad, loop_.now() + 20 * kMicrosecond));
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(agent->stats().expired_at_device, 1u);
  EXPECT_EQ(dev.write_counts.count(0x8), 0u);

  // Same stall, roomier budget: the op survives the stall and lands once.
  st = RunBlocking(
      loop_, WriteOnce(**path, 0x8, 0xd00d, loop_.now() + 200 * kMicrosecond));
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(dev.write_counts[0x8], 1);
  EXPECT_EQ(dev.regs[0x8], 0xd00dull);

  agent->InjectSlowDrain(0);
  Drain();
}

// --- Inflight bound sheds data, control survives ---
TEST_F(OverloadTest, InflightBoundShedsDataKeepsControl) {
  RackConfig rc = SmallRack(/*hosts=*/3);
  rc.orch.agent.admission.max_inflight = 1;
  rack_ = std::make_unique<Rack>(loop_, rc);
  CountingDevice dev(PcieDeviceId(53), loop_);
  dev.AttachTo(&rack_->pod().host(0));
  rack_->orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack_->Start();

  // Two independent users of the same device: two channels, two serve
  // loops, one shared admission controller on the home agent.
  auto path1 = rack_->orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(53));
  auto path2 = rack_->orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(53));
  ASSERT_TRUE(path1.ok());
  ASSERT_TRUE(path2.ok());
  Agent* agent = rack_->orchestrator().agent(HostId(0));
  agent->InjectSlowDrain(50 * kMicrosecond);

  std::vector<StatusCode> codes(2, StatusCode::kOk);
  Result<uint64_t> probe = 0;
  auto drive = [&](sim::EventLoop& loop) -> Task<> {
    auto one = [&codes](MmioPath& p, int i) -> Task<> {
      Status st = co_await p.Write(0x8, static_cast<uint64_t>(i));
      codes[static_cast<size_t>(i)] =
          st.ok() ? StatusCode::kOk : st.code();
    };
    Spawn(one(**path1, 0));  // enters the handler, stalls 50us
    co_await sim::Delay(loop, 5 * kMicrosecond);
    Spawn(one(**path2, 1));  // dequeued while #0 serves: inflight reject
    co_await sim::Delay(loop, 5 * kMicrosecond);
    // A control-priority probe through the same saturated agent: exempt
    // from the inflight bound, it must land despite the stall.
    auto* fwd = static_cast<ForwardedMmioPath*>(path2->get());
    auto req = mmio_wire::EncodeRead(PcieDeviceId(53), fwd->epoch(),
                                     /*client_id=*/0, /*seq=*/1, 0x8);
    auto resp = co_await fwd->rpc_client().Call(
        kMethodMmioRead, req, loop.now() + 500 * kMicrosecond, {},
        msg::kPriorityControl);
    probe = resp.ok() ? Result<uint64_t>(0) : resp.status();
    co_return;
  };
  RunBlocking(loop_, drive(loop_));
  loop_.RunFor(kMillisecond);

  EXPECT_EQ(codes[0], StatusCode::kOk);          // the admitted op lands
  EXPECT_EQ(codes[1], StatusCode::kOverloaded);  // shed, not queued to death
  EXPECT_TRUE(probe.ok());                       // control got through
  EXPECT_GE(agent->admission().stats().inflight_rejects, 1u);
  EXPECT_GE(agent->rpc_shed(), 1u);
  EXPECT_EQ(agent->stats().watchdog_misses, 0u);

  agent->InjectSlowDrain(0);
  Drain();
}

}  // namespace
}  // namespace cxlpool::core
