// Tests for src/obs/: the metrics registry (handle identity, label
// semantics, JSON export), the distributed tracer (span lifecycle,
// propagation, inertness when disabled), the flight recorder (ring
// semantics, dumps), and the end-to-end acceptance paths — one forwarded
// MMIO producing a cross-host trace, and a deliberate coherence violation
// landing in a flight-recorder dump.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "src/analysis/coherence_checker.h"
#include "src/core/rack.h"
#include "src/obs/obs.h"
#include "src/sim/task.h"

namespace cxlpool::obs {
namespace {

using core::Rack;
using core::RackConfig;
using sim::RunBlocking;
using sim::Task;

// --- Registry ---

TEST(RegistryTest, HandlesAreStableAndDedupedByNameAndLabels) {
  Registry reg;
  Counter* a = reg.GetCounter("ops", {{"host", "1"}});
  Counter* b = reg.GetCounter("ops", {{"host", "1"}});
  EXPECT_EQ(a, b) << "same (name, labels) must return the same handle";
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);

  // Different labels (or no labels) are distinct series.
  Counter* c = reg.GetCounter("ops", {{"host", "2"}});
  Counter* d = reg.GetCounter("ops");
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(RegistryTest, LabelOrderDoesNotSplitSeries) {
  Registry reg;
  Counter* a = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b) << "label sets are unordered; order must not mint a new series";
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(RegistryTest, FindDoesNotCreateAndRespectsKind) {
  Registry reg;
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.series_count(), 0u);

  reg.GetGauge("g")->Set(-5);
  EXPECT_EQ(reg.FindCounter("g"), nullptr) << "a gauge is not a counter";
  reg.GetCounter("c")->Inc();
  EXPECT_NE(reg.FindCounter("c"), nullptr);
  EXPECT_EQ(reg.FindCounter("c")->value(), 1u);
}

TEST(RegistryTest, ProbesArePolledAtSnapshotTime) {
  Registry reg;
  int64_t live = 7;
  reg.RegisterProbe("live_value", {}, [&live] { return live; });
  EXPECT_NE(reg.ToJson().find("\"value\":7"), std::string::npos);
  live = 42;
  EXPECT_NE(reg.ToJson().find("\"value\":42"), std::string::npos);
}

TEST(RegistryTest, JsonExportCarriesKindsAndHistogramPercentiles) {
  Registry reg;
  reg.GetCounter("hits", {{"k", "v"}})->Add(9);
  reg.GetGauge("depth")->Set(-3);
  sim::Histogram* h = reg.GetHistogram("lat");
  h->Add(100);
  h->Add(200);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"name\":\"hits\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\",\"value\":9"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\",\"value\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\",\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

TEST(RegistryTest, BenchJsonWrapsRegistrySnapshot) {
  Registry reg;
  reg.GetCounter("n")->Add(1);
  std::string json = BenchJson("my_bench", 12345, reg);
  EXPECT_EQ(json.find("{\"bench\":\"my_bench\",\"sim_ns\":12345,\"metrics\":["),
            0u);
  EXPECT_EQ(json.back(), '}');
}

// --- Histogram / Summary edge cases the exporter relies on ---

TEST(HistogramEdgeTest, EmptyHistogramExportsZeros) {
  sim::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(0.999), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramEdgeTest, MergeIntoEmptyEqualsSource) {
  sim::Histogram src;
  src.Add(10);
  src.Add(1000);
  src.Add(100000);
  sim::Histogram dst;
  dst.MergeFrom(src);
  EXPECT_EQ(dst.count(), 3u);
  EXPECT_EQ(dst.min(), src.min());
  EXPECT_EQ(dst.max(), src.max());
  EXPECT_EQ(dst.Percentile(0.5), src.Percentile(0.5));

  // And merging an empty histogram changes nothing.
  sim::Histogram empty;
  dst.MergeFrom(empty);
  EXPECT_EQ(dst.count(), 3u);
}

TEST(HistogramEdgeTest, SingleSamplePercentilesAllReturnIt) {
  sim::Histogram h;
  h.Add(777);
  for (double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    // Log-bucketing bounds relative error; a single sample must round-trip
    // through every percentile within bucket resolution.
    EXPECT_NEAR(static_cast<double>(h.Percentile(p)), 777.0, 777.0 / 32.0)
        << "p=" << p;
  }
  EXPECT_EQ(h.min(), 777);
  EXPECT_EQ(h.max(), 777);
}

TEST(SummaryEdgeTest, EmptyAndSingleSample) {
  sim::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// --- Tracer ---

TEST(TracerTest, SpanLifecycleAndParenting) {
  Tracer tracer;
  Span root = tracer.StartTrace("op", /*host=*/1, /*start=*/100);
  TraceContext ctx = root.context();
  EXPECT_TRUE(ctx.traced());

  Span child = tracer.StartSpan("phase", /*host=*/2, ctx, /*start=*/150);
  child.End(250);
  root.End(300);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& c = tracer.spans()[0];  // finished first
  const SpanRecord& r = tracer.spans()[1];
  EXPECT_EQ(c.trace_id, r.trace_id);
  EXPECT_EQ(c.parent_span_id, r.span_id);
  EXPECT_EQ(r.parent_span_id, 0u);
  EXPECT_EQ(c.host, 2u);
  EXPECT_EQ(c.duration(), 100);
  EXPECT_EQ(tracer.trace_count(), 1u);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TracerTest, UntracedParentYieldsInertSpan) {
  Tracer tracer;
  Span inert = tracer.StartSpan("phase", 1, TraceContext{}, 10);
  EXPECT_FALSE(inert.active());
  EXPECT_FALSE(inert.context().traced());
  inert.End(20);  // no-op
  EXPECT_TRUE(tracer.spans().empty());

  // Null-tracer helpers are inert too.
  Span none = MaybeStartTrace(nullptr, "op", 1, 10);  // lint-tasks: allow(leaked-span)
  EXPECT_FALSE(none.active());
}

TEST(TracerTest, DroppedSpansAreCountedNotExported) {
  Tracer tracer;
  {
    Span leaked = tracer.StartTrace("op", 1, 10);  // lint-tasks: allow(leaked-span)
    // BUG (deliberate): never ended; destructor abandons it.
  }
  EXPECT_EQ(tracer.spans().size(), 0u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(TracerTest, EndIsIdempotentAndMoveTransfersOwnership) {
  Tracer tracer;
  Span a = tracer.StartTrace("op", 1, 10);
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): asserting moved-from state
  b.End(20);
  b.End(99);  // no-op: first End wins
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].end, 20);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TracerTest, RecordSpanMaterializesRetroactivelyAndChains) {
  Tracer tracer;
  Span root = tracer.StartTrace("mmio.write", 2, 100);
  // The wire carried (ctx, sent_at=110); the receiver materializes the
  // flight span at dequeue time and parents its own work under it.
  TraceContext flight =
      tracer.RecordSpan("rpc.flight", /*host=*/0, root.context(), 110, 400);
  EXPECT_TRUE(flight.traced());
  Span serve = tracer.StartSpan("rpc.serve", 0, flight, 400);
  serve.End(450);
  root.End(500);

  auto spans = tracer.TraceSpans(tracer.spans()[0].trace_id);
  ASSERT_EQ(spans.size(), 3u);
  std::set<uint32_t> hosts;
  for (const auto& s : spans) hosts.insert(s.host);
  EXPECT_EQ(hosts.size(), 2u);
}

TEST(TracerTest, PhaseHistogramsBucketByName) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    Span s = tracer.StartTrace("op", 1, i * 100);
    s.End(i * 100 + 50);
  }
  auto phases = tracer.PhaseHistograms();
  ASSERT_EQ(phases.count("op"), 1u);
  EXPECT_EQ(phases["op"].count(), 3u);
  EXPECT_EQ(phases["op"].Percentile(0.5), 50);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  Span s = tracer.StartTrace("op", 3, 1000);
  s.End(3000);
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  // ts/dur are fractional microseconds: 1000 ns start, 2000 ns duration.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
}

// --- Flight recorder ---

TEST(FlightRecorderTest, RingOverwritesOldestPerHost) {
  FlightRecorder::Options opts;
  opts.ring_slots = 4;
  FlightRecorder fr(opts);
  for (int i = 0; i < 6; ++i) {
    fr.Note(/*now=*/i * 10, /*host=*/0, "test", "event %d", i);
  }
  fr.Note(100, /*host=*/2, "test", "other host");
  EXPECT_EQ(fr.recorded(), 7u);
  EXPECT_EQ(fr.overwritten(), 2u);

  auto events = fr.Snapshot();
  ASSERT_EQ(events.size(), 5u);  // 4 retained on host 0 + 1 on host 2
  // Oldest first; host 0's first two events were overwritten.
  EXPECT_EQ(events.front().at, 20);
  EXPECT_STREQ(events.front().msg, "event 2");
  EXPECT_EQ(events.back().host, 2u);
  EXPECT_GE(fr.host_count(), 3u);  // rings grow to cover host ids seen
}

TEST(FlightRecorderTest, LongMessagesTruncateSafely) {
  FlightRecorder fr;
  std::string big(500, 'x');
  fr.Note(1, 0, "categorytoolongtofit", "%s", big.c_str());
  auto events = fr.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::strlen(events[0].msg), sizeof(events[0].msg));
  EXPECT_LT(std::strlen(events[0].category), sizeof(events[0].category));
  EXPECT_EQ(events[0].msg[0], 'x');
}

TEST(ObservabilityTest, DumpFlightRetainsTextAndCounts) {
  Observability obs;
  obs.flight().Note(10, 1, "mmio", "write reg=0x8 val=1");
  obs.DumpFlight("unit test");
  EXPECT_EQ(obs.dumps(), 1u);
  EXPECT_NE(obs.last_dump().find("unit test"), std::string::npos);
  EXPECT_NE(obs.last_dump().find("write reg=0x8 val=1"), std::string::npos);
}

TEST(ObservabilityTest, TracingOffMeansNullTracer) {
  Observability::Options opts;
  opts.tracing = false;
  Observability obs(opts);
  EXPECT_EQ(obs.tracer(), nullptr);
  // Hook sites degrade to inert spans.
  Span s = MaybeStartTrace(obs.tracer(), "op", 0, 0);  // lint-tasks: allow(leaked-span)
  EXPECT_FALSE(s.active());
}

// --- End to end: one forwarded MMIO = one cross-host trace ---

TEST(ObsEndToEndTest, ForwardedMmioProducesCrossHostTrace) {
  sim::EventLoop loop;
  Observability obs;
  RackConfig rc;
  rc.pod.num_hosts = 3;
  rc.pod.num_mhds = 1;
  rc.pod.mhd_capacity = 16 * kMiB;
  rc.pod.dram_per_host = 4 * kMiB;
  rc.obs = &obs;
  Rack rack(loop, rc);

  // A register device homed on host 0, driven from host 2.
  class Regs : public pcie::PcieDevice {
   public:
    Regs(PcieDeviceId id, sim::EventLoop& loop)
        : PcieDevice(id, "regs", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

   protected:
    void OnMmioWrite(uint64_t, uint64_t) override {}
    uint64_t OnMmioRead(uint64_t) override { return 0; }
  };
  Regs dev(PcieDeviceId(50), loop);
  dev.AttachTo(&rack.pod().host(0));
  rack.orchestrator().RegisterDevice(HostId(0), &dev, core::DeviceType::kAccel);
  rack.Start();

  auto path = rack.orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(50));
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE((*path)->is_remote());

  auto write_once = [&path]() -> Task<> {
    CXLPOOL_CHECK_OK(co_await (*path)->Write(0x8, 42));
  };
  RunBlocking(loop, write_once());

  Tracer& tracer = *obs.tracer();
  EXPECT_EQ(tracer.trace_count(), 1u) << "one op, one trace";
  auto spans = tracer.TraceSpans(1);
  EXPECT_GE(spans.size(), 4u) << "expected enqueue/flight/serve/device phases";
  std::set<uint32_t> hosts;
  std::set<std::string> names;
  for (const auto& s : spans) {
    hosts.insert(s.host);
    names.insert(s.name);
  }
  EXPECT_GE(hosts.size(), 2u) << "trace must span client and home hosts";
  EXPECT_TRUE(hosts.count(2) == 1 && hosts.count(0) == 1);
  EXPECT_EQ(names.count("mmio.write"), 1u);
  EXPECT_EQ(names.count("rpc.flight"), 1u);
  EXPECT_EQ(names.count("mmio.device_bar"), 1u);
  EXPECT_EQ(tracer.dropped_spans(), 0u) << "every span must be End()ed";

  rack.Shutdown();
  loop.RunFor(100 * kMicrosecond);
}

// Same-seed purity: the trace fields ride the wire whether or not tracing
// is on, so the op completes at the identical sim time either way.
TEST(ObsEndToEndTest, TracingDoesNotChangeSimTiming) {
  auto run = [](Observability* obs) -> Nanos {
    sim::EventLoop loop;
    RackConfig rc;
    rc.pod.num_hosts = 2;
    rc.pod.num_mhds = 1;
    rc.pod.mhd_capacity = 8 * kMiB;
    rc.pod.dram_per_host = 2 * kMiB;
    rc.obs = obs;
    Rack rack(loop, rc);
    class Regs : public pcie::PcieDevice {
     public:
      Regs(PcieDeviceId id, sim::EventLoop& loop)
          : PcieDevice(id, "regs", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

     protected:
      void OnMmioWrite(uint64_t, uint64_t) override {}
      uint64_t OnMmioRead(uint64_t) override { return 0; }
    };
    Regs dev(PcieDeviceId(50), loop);
    dev.AttachTo(&rack.pod().host(0));
    rack.orchestrator().RegisterDevice(HostId(0), &dev,
                                       core::DeviceType::kAccel);
    rack.Start();
    auto path = rack.orchestrator().MakeMmioPath(HostId(1), PcieDeviceId(50));
    CXLPOOL_CHECK(path.ok());
    auto t = [&path]() -> Task<> {
      for (int i = 0; i < 10; ++i) {
        CXLPOOL_CHECK_OK(co_await (*path)->Write(0x8, 1));
        (void)co_await (*path)->Read(0x8);
      }
    };
    RunBlocking(loop, t());
    Nanos done = loop.now();
    rack.Shutdown();
    loop.RunFor(100 * kMicrosecond);
    return done;
  };
  Observability obs;
  Nanos traced = run(&obs);
  Nanos untraced = run(nullptr);
  EXPECT_EQ(traced, untraced);
  EXPECT_GT(obs.tracer()->spans().size(), 0u);
}

// --- Acceptance: a coherence violation dumps the flight recorder, and the
// offending operation is among the last-N events ---

TEST(ObsEndToEndTest, CoherenceViolationTriggersFlightDumpWithOffendingOp) {
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 8 * kMiB;
  pc.dram_per_host = 2 * kMiB;
  cxl::CxlPod pod(loop, pc);

  Observability obs;
  analysis::CoherenceChecker checker;
  checker.AttachTo(pod);
  checker.BindObservability(&obs);

  auto seg = pod.pool().Allocate(4 * kKiB);
  ASSERT_TRUE(seg.ok());
  uint64_t addr = seg->base;

  auto t = [&pod, addr]() -> Task<> {
    std::vector<std::byte> data(64, std::byte{0x9f});
    std::vector<std::byte> out(64);
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));      // caches v0
    CXLPOOL_CHECK_OK(co_await pod.host(0).StoreNt(addr, data));  // publishes v1
    // BUG (deliberate): no Invalidate — stale read fires the checker.
    CXLPOOL_CHECK_OK(co_await pod.host(1).Load(addr, out));
  };
  RunBlocking(loop, t());

  EXPECT_EQ(checker.violation_count(), 1u);
  EXPECT_EQ(obs.dumps(), 1u) << "the violation must dump the flight recorder";
  const std::string& dump = obs.last_dump();
  EXPECT_NE(dump.find("coherence violation: stale-read"), std::string::npos);
  // The offending operation (the stale line and both hosts) is in the dump.
  char line_hex[32];
  std::snprintf(line_hex, sizeof(line_hex), "line=0x%llx",
                static_cast<unsigned long long>(addr));
  EXPECT_NE(dump.find(line_hex), std::string::npos) << dump;
  EXPECT_NE(dump.find("stale-read"), std::string::npos);

  // The violation counts are exported through the registry probes.
  std::string json = obs.metrics().ToJson();
  EXPECT_NE(json.find("\"name\":\"coherence.violations\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"stale-read\""), std::string::npos);
}

}  // namespace
}  // namespace cxlpool::obs
