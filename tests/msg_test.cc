#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/cxl/pod.h"
#include "src/msg/channel.h"
#include "src/msg/doorbell.h"
#include "src/msg/retry.h"
#include "src/msg/ring.h"
#include "src/msg/rpc.h"
#include "src/msg/wire.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace cxlpool::msg {
namespace {

using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

std::vector<std::byte> Msg(std::string_view s) {
  std::vector<std::byte> out(s.size());
  if (!s.empty()) {
    std::memcpy(out.data(), s.data(), s.size());
  }
  return out;
}

std::string AsString(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

class MsgTest : public ::testing::Test {
 protected:
  MsgTest() : pod_(loop_, Config()) {}

  static cxl::CxlPodConfig Config() {
    cxl::CxlPodConfig c;
    c.num_hosts = 2;
    c.num_mhds = 1;
    c.mhd_capacity = 16 * kMiB;
    c.dram_per_host = 1 * kMiB;
    // Figure 4 setup: PCIe-5.0 x16 links to the pool.
    c.link.lanes = 16;
    return c;
  }

  RingConfig MakeRing(uint32_t slots = 64) {
    auto seg = pod_.pool().Allocate(RingFootprint(slots));
    CXLPOOL_CHECK_OK(seg.status());
    RingConfig rc;
    rc.base = seg->base;
    rc.slots = slots;
    return rc;
  }

  sim::EventLoop loop_;
  cxl::CxlPod pod_;
};

// --- Wire helpers ---

TEST(WireTest, RoundTripIntegers) {
  std::vector<std::byte> buf;
  wire::Writer w(&buf);
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  wire::Reader r(buf);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, BytesAndRest) {
  std::vector<std::byte> buf;
  wire::Writer w(&buf);
  w.U16(7);
  w.Bytes(Msg("hello"));
  wire::Reader r(buf);
  EXPECT_EQ(r.U16(), 7);
  EXPECT_EQ(AsString(r.Rest()), "hello");
}

// --- Ring ---

TEST_F(MsgTest, SingleSlotMessageRoundTrip) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop) -> Task<std::string> {
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("ping")));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return AsString(got);
  };
  EXPECT_EQ(RunBlocking(loop_, t(tx, rx, loop_)), "ping");
}

TEST_F(MsgTest, SubMicrosecondDelivery) {
  // Paper Figure 4: message passing over the CXL ring is sub-us (~600 ns
  // median, slightly above one CXL write + one CXL read).
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop) -> Task<Nanos> {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("x")));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return loop.now() - start;
  };
  Nanos latency = RunBlocking(loop_, t(tx, rx, loop_));
  const auto& timing = pod_.host(0).timing();
  EXPECT_GE(latency, (timing.cxl_write + timing.cxl_read) * 7 / 10);  // jittered floor
  EXPECT_LT(latency, kMicrosecond);
}

TEST_F(MsgTest, ManyMessagesInOrder) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  constexpr int kCount = 500;  // > slots: exercises wrap + flow control

  auto producer = [](RingSender& s) -> Task<> {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::byte> m;
      wire::Writer w(&m);
      w.U32(static_cast<uint32_t>(i));
      CXLPOOL_CHECK_OK(co_await s.Send(m));
    }
  };
  auto consumer = [](RingReceiver& r, sim::EventLoop& loop,
                     std::vector<uint32_t>& out) -> Task<> {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::byte> m;
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + 10 * kMillisecond));
      wire::Reader rd(m);
      out.push_back(rd.U32());
    }
  };

  std::vector<uint32_t> got;
  Spawn(producer(tx));
  Spawn(consumer(rx, loop_, got));
  loop_.Run();
  ASSERT_EQ(got.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], static_cast<uint32_t>(i));
  }
  EXPECT_EQ(rx.messages_received(), static_cast<uint64_t>(kCount));
}

TEST_F(MsgTest, MultiSlotMessage) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  std::vector<std::byte> big(1000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = std::byte{static_cast<uint8_t>(i * 7)};
  }
  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop,
              std::span<const std::byte> data) -> Task<std::vector<std::byte>> {
    CXLPOOL_CHECK_OK(co_await s.Send(data));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return got;
  };
  auto got = RunBlocking(loop_, t(tx, rx, loop_, big));
  ASSERT_EQ(got.size(), big.size());
  EXPECT_EQ(std::memcmp(got.data(), big.data(), big.size()), 0);
}

TEST_F(MsgTest, EmptyMessage) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop) -> Task<size_t> {
    CXLPOOL_CHECK_OK(co_await s.Send({}));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return got.size();
  };
  EXPECT_EQ(RunBlocking(loop_, t(tx, rx, loop_)), 0u);
}

TEST_F(MsgTest, OversizedMessageRejected) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  std::vector<std::byte> huge(kMaxMessageSize + 1);
  auto t = [](RingSender& s, std::span<const std::byte> m) -> Task<Status> {
    co_return co_await s.Send(m);
  };
  EXPECT_EQ(RunBlocking(loop_, t(tx, huge)).code(), StatusCode::kInvalidArgument);
}

TEST_F(MsgTest, RecvDeadlineExpires) {
  RingConfig rc = MakeRing();
  RingReceiver rx(pod_.host(1), rc);
  auto t = [](RingReceiver& r, sim::EventLoop& loop) -> Task<Status> {
    std::vector<std::byte> got;
    co_return co_await r.Recv(&got, loop.now() + 10 * kMicrosecond);
  };
  EXPECT_EQ(RunBlocking(loop_, t(rx, loop_)).code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(loop_.now(), 10 * kMicrosecond);
}

TEST_F(MsgTest, TryRecvNonBlocking) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop)
      -> Task<std::pair<Status, Status>> {
    std::vector<std::byte> got;
    Status empty = co_await r.TryRecv(&got);
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("a")));
    co_await sim::Delay(loop, kMicrosecond);  // posted-write media commit
    Status full = co_await r.TryRecv(&got);
    co_return std::make_pair(empty, full);
  };
  auto [empty, full] = RunBlocking(loop_, t(tx, rx, loop_));
  EXPECT_EQ(empty.code(), StatusCode::kNotFound);
  EXPECT_TRUE(full.ok());
}

TEST_F(MsgTest, SenderBlocksWhenRingFullThenDrains) {
  RingConfig rc = MakeRing(8);  // tiny ring
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  constexpr int kCount = 64;

  int sent = 0;
  auto producer = [](RingSender& s, int& count) -> Task<> {
    std::vector<std::byte> m(4);
    for (int i = 0; i < kCount; ++i) {
      CXLPOOL_CHECK_OK(co_await s.Send(m));
      ++count;
    }
  };
  Spawn(producer(tx, sent));
  loop_.RunFor(kMillisecond);
  EXPECT_LT(sent, kCount);  // stuck on flow control

  int received = 0;
  auto consumer = [](RingReceiver& r, sim::EventLoop& loop, int& count) -> Task<> {
    std::vector<std::byte> m;
    while (count < kCount) {
      m.clear();
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + 100 * kMillisecond));
      ++count;
    }
  };
  Spawn(consumer(rx, loop_, received));
  loop_.Run();
  EXPECT_EQ(sent, kCount);
  EXPECT_EQ(received, kCount);
}

TEST_F(MsgTest, RingFailsWhenMhdDies) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  pod_.FailMhd(MhdId(0));
  auto t = [](RingSender& s) -> Task<Status> { co_return co_await s.Send(Msg("x")); };
  EXPECT_EQ(RunBlocking(loop_, t(tx)).code(), StatusCode::kUnavailable);
}

// --- Channel ---

TEST_F(MsgTest, ChannelBidirectional) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  auto t = [](Channel& c, sim::EventLoop& loop) -> Task<std::pair<std::string, std::string>> {
    CXLPOOL_CHECK_OK(co_await c.end_a().Send(Msg("from-a")));
    std::vector<std::byte> at_b;
    CXLPOOL_CHECK_OK(co_await c.end_b().Recv(&at_b, loop.now() + kMillisecond));
    CXLPOOL_CHECK_OK(co_await c.end_b().Send(Msg("from-b")));
    std::vector<std::byte> at_a;
    CXLPOOL_CHECK_OK(co_await c.end_a().Recv(&at_a, loop.now() + kMillisecond));
    co_return std::make_pair(AsString(at_b), AsString(at_a));
  };
  auto [at_b, at_a] = RunBlocking(loop_, t(**ch, loop_));
  EXPECT_EQ(at_b, "from-a");
  EXPECT_EQ(at_a, "from-b");
}

TEST_F(MsgTest, PingPongLatencyMatchesFigure4Band) {
  // Median ping-pong one-way latency should be in the 500-800 ns band with
  // a median around 600 ns (paper Figure 4).
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  sim::Histogram latencies;
  sim::StopToken stop;

  auto pong = [](Channel& chan, sim::EventLoop& loop, sim::StopToken& st) -> Task<> {
    while (!st.stopped()) {
      std::vector<std::byte> m;
      Status s = co_await chan.end_b().Recv(&m, loop.now() + 10 * kMicrosecond);
      if (s.code() == StatusCode::kDeadlineExceeded) {
        continue;
      }
      CXLPOOL_CHECK_OK(s);
      CXLPOOL_CHECK_OK(co_await chan.end_b().Send(m));
    }
  };
  auto ping = [](Channel& chan, sim::EventLoop& loop, sim::Histogram& hist,
                 sim::StopToken& st) -> Task<> {
    std::vector<std::byte> payload = Msg("0123456789abcdef");  // 16 B
    for (int i = 0; i < 200; ++i) {
      Nanos start = loop.now();
      CXLPOOL_CHECK_OK(co_await chan.end_a().Send(payload));
      std::vector<std::byte> echo;
      CXLPOOL_CHECK_OK(co_await chan.end_a().Recv(&echo, loop.now() + kMillisecond));
      hist.Add((loop.now() - start) / 2);  // one-way
    }
    st.Stop();
  };
  Spawn(pong(c, loop_, stop));
  Spawn(ping(c, loop_, latencies, stop));
  loop_.Run();

  int64_t p50 = latencies.Percentile(0.5);
  EXPECT_GE(p50, 500);
  EXPECT_LE(p50, 800);
  EXPECT_LT(latencies.Percentile(0.99), 2 * kMicrosecond);
}

// --- RPC ---

TEST_F(MsgTest, RpcEcho) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  sim::StopToken stop;
  RpcServer server(c.end_b(), [](uint16_t method, std::span<const std::byte> req)
                                   -> Task<Result<std::vector<std::byte>>> {
    if (method == 99) {
      co_return NotFound("no such method");
    }
    std::vector<std::byte> resp(req.begin(), req.end());
    resp.push_back(std::byte{static_cast<uint8_t>(method)});
    co_return resp;
  });
  Spawn(server.Serve(stop));

  RpcClient client(c.end_a());
  auto t = [](RpcClient& cl, sim::EventLoop& loop, sim::StopToken& st)
      -> Task<std::pair<std::string, StatusCode>> {
    auto ok = co_await cl.Call(7, Msg("hi"), loop.now() + kMillisecond);
    CXLPOOL_CHECK(ok.ok());
    std::string body = AsString(*ok);
    auto err = co_await cl.Call(99, Msg(""), loop.now() + kMillisecond);
    st.Stop();
    co_return std::make_pair(body, err.ok() ? StatusCode::kOk : err.status().code());
  };
  auto [body, err_code] = RunBlocking(loop_, t(client, loop_, stop));
  EXPECT_EQ(body, std::string("hi") + char(7));
  EXPECT_EQ(err_code, StatusCode::kNotFound);
  EXPECT_EQ(server.calls_served(), 2u);
}

TEST_F(MsgTest, RpcRoundTripIsFewMicroseconds) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());
  auto t = [](RpcClient& cl, sim::EventLoop& loop, sim::StopToken& st) -> Task<Nanos> {
    // Warm up once (server parked in long poll), then measure.
    (void)co_await cl.Call(1, Msg("w"), loop.now() + kMillisecond);
    Nanos start = loop.now();
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    CXLPOOL_CHECK(r.ok());
    st.Stop();
    co_return loop.now() - start;
  };
  Nanos rtt = RunBlocking(loop_, t(client, loop_, stop));
  EXPECT_LT(rtt, 5 * kMicrosecond);  // two ring traversals + handler
  EXPECT_GT(rtt, 1 * kMicrosecond);
}

// --- RPC supervision & retry (robustness) ---

TEST_F(MsgTest, ServeCountsAbortWhenChannelDies) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));
  EXPECT_EQ(server.calls_served(), 1u);

  // The rings live on MHD 0; killing it kills the serve loop — which must
  // exit loudly (counted), not spin or vanish silently.
  pod_.FailMhd(MhdId(0));
  loop_.RunFor(300 * kMicrosecond);
  EXPECT_GE(server.stats().serve_aborts, 1u);
  EXPECT_EQ(server.stats().restarts, 0u);  // plain Serve never restarts
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, ServeSupervisedComesBackAfterRepair) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.ServeSupervised(stop));
  RpcClient client(c.end_a());

  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));

  pod_.FailMhd(MhdId(0));
  loop_.RunFor(500 * kMicrosecond);
  EXPECT_GE(server.stats().serve_aborts, 1u);

  // After repair the supervisor re-enters Serve within its max backoff
  // (200 µs) and calls succeed again.
  pod_.RepairMhd(MhdId(0));
  loop_.RunFor(500 * kMicrosecond);
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));
  EXPECT_GE(server.stats().restarts, 1u);
  EXPECT_EQ(server.calls_served(), 2u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, RetryPolicySucceedsOnceServerAppears) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  // The server only starts 150 µs in: the first attempt must time out and
  // a backed-off retry must land.
  auto late_start = [](RpcServer& s, sim::EventLoop& loop,
                       sim::StopToken& st) -> Task<> {
    co_await sim::Delay(loop, 150 * kMicrosecond);
    Spawn(s.Serve(st));
  };
  Spawn(late_start(server, loop_, stop));

  RetryPolicy::Options ro;
  ro.max_attempts = 5;
  ro.initial_backoff = 50 * kMicrosecond;
  RetryPolicy policy(ro);
  RpcClient client(c.end_a());
  auto t = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 100 * kMicrosecond, loop);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, t(policy, client, loop_)));
  EXPECT_EQ(policy.stats().calls, 1u);
  EXPECT_GE(policy.stats().retries, 1u);
  EXPECT_EQ(policy.stats().exhausted, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, RetryPolicyDoesNotRetryApplicationErrors) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte>)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return NotFound("no such method");
                   });
  Spawn(server.Serve(stop));

  RetryPolicy policy;
  RpcClient client(c.end_a());
  auto t = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop,
              sim::StopToken& st) -> Task<StatusCode> {
    auto r = co_await p.Call(cl, 99, Msg(""), 100 * kMicrosecond, loop);
    st.Stop();
    co_return r.ok() ? StatusCode::kOk : r.status().code();
  };
  EXPECT_EQ(RunBlocking(loop_, t(policy, client, loop_, stop)),
            StatusCode::kNotFound);
  EXPECT_EQ(policy.stats().retries, 0u);  // terminal error: one attempt
  EXPECT_EQ(policy.stats().exhausted, 0u);
}

TEST_F(MsgTest, RetryPolicyExhaustsOnDeadPath) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  // No server at all: every attempt times out.
  RetryPolicy::Options ro;
  ro.max_attempts = 3;
  ro.initial_backoff = 20 * kMicrosecond;
  RetryPolicy policy(ro);
  RpcClient client(c.end_a());
  auto t = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 50 * kMicrosecond, loop);
    co_return r.ok();
  };
  EXPECT_FALSE(RunBlocking(loop_, t(policy, client, loop_)));
  EXPECT_EQ(policy.stats().retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(policy.stats().exhausted, 1u);
}

TEST_F(MsgTest, RetryPolicyTimeoutEscalationOutwaitsSlowServer) {
  // A slow-but-alive server: every reply takes ~8us of handler time, well
  // past an aggressive 2us first-attempt deadline. Without escalation,
  // every attempt times out; with timeout_multiplier the later attempts
  // wait long enough to land. This is the pattern ForwardedMmioPath uses
  // to turn gray-slow peers into dedup hits instead of errors.
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [this](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_await sim::Delay(loop_, 8 * kMicrosecond);
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  auto call = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 2 * kMicrosecond, loop);
    co_return r.ok();
  };

  // Flat deadlines: exhausted.
  RetryPolicy::Options flat;
  flat.max_attempts = 3;
  flat.initial_backoff = 5 * kMicrosecond;
  RetryPolicy flat_policy(flat);
  EXPECT_FALSE(RunBlocking(loop_, call(flat_policy, client, loop_)));
  EXPECT_EQ(flat_policy.stats().exhausted, 1u);

  // Escalating deadlines: 2us, 8us, 32us — attempt 3 outwaits the server.
  RetryPolicy::Options esc = flat;
  esc.timeout_multiplier = 4.0;
  RetryPolicy esc_policy(esc);
  EXPECT_TRUE(RunBlocking(loop_, call(esc_policy, client, loop_)));
  EXPECT_GE(esc_policy.stats().retries, 1u);
  EXPECT_EQ(esc_policy.stats().exhausted, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST(RetryPolicyTest, BackoffIsDeterministicSeededAndBounded) {
  RetryPolicy::Options o;
  o.seed = 42;
  RetryPolicy a(o);
  RetryPolicy b(o);
  for (int retry = 1; retry <= 6; ++retry) {
    Nanos d = a.BackoffFor(retry);
    EXPECT_EQ(d, b.BackoffFor(retry));  // same seed, same jitter draws
    EXPECT_GE(d, static_cast<Nanos>(
                     static_cast<double>(o.initial_backoff) * (1.0 - o.jitter)));
    EXPECT_LE(d, static_cast<Nanos>(
                     static_cast<double>(o.max_backoff) * (1.0 + o.jitter)));
  }
}

// --- Doorbell ---

TEST_F(MsgTest, DoorbellWaitsAndWakes) {
  auto seg = pod_.pool().Allocate(kCachelineSize);
  ASSERT_TRUE(seg.ok());
  DoorbellSender bell(pod_.host(0), seg->base);
  DoorbellWatcher watch(pod_.host(1), seg->base);

  auto ringer = [](DoorbellSender& b, sim::EventLoop& loop) -> Task<> {
    co_await sim::Delay(loop, 5 * kMicrosecond);
    CXLPOOL_CHECK_OK(co_await b.Ring(1));
  };
  auto waiter = [](DoorbellWatcher& w, sim::EventLoop& loop) -> Task<uint64_t> {
    auto v = co_await w.WaitBeyond(0, loop.now() + kMillisecond);
    CXLPOOL_CHECK(v.ok());
    co_return *v;
  };
  Spawn(ringer(bell, loop_));
  uint64_t v = RunBlocking(loop_, waiter(watch, loop_));
  EXPECT_EQ(v, 1u);
  EXPECT_GE(loop_.now(), 5 * kMicrosecond);
}

TEST_F(MsgTest, DoorbellDeadline) {
  auto seg = pod_.pool().Allocate(kCachelineSize);
  ASSERT_TRUE(seg.ok());
  DoorbellWatcher watch(pod_.host(1), seg->base);
  auto t = [](DoorbellWatcher& w, sim::EventLoop& loop) -> Task<Status> {
    auto v = co_await w.WaitBeyond(0, loop.now() + 5 * kMicrosecond);
    co_return v.ok() ? OkStatus() : v.status();
  };
  EXPECT_EQ(RunBlocking(loop_, t(watch, loop_)).code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace cxlpool::msg
