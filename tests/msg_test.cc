#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/cxl/pod.h"
#include "src/msg/channel.h"
#include "src/netsim/fault_plane.h"
#include "src/sim/random.h"
#include "src/msg/coalesce.h"
#include "src/msg/doorbell.h"
#include "src/msg/retry.h"
#include "src/msg/ring.h"
#include "src/msg/rpc.h"
#include "src/msg/submit.h"
#include "src/msg/wire.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace cxlpool::msg {
namespace {

using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

std::vector<std::byte> Msg(std::string_view s) {
  std::vector<std::byte> out(s.size());
  if (!s.empty()) {
    std::memcpy(out.data(), s.data(), s.size());
  }
  return out;
}

std::string AsString(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

class MsgTest : public ::testing::Test {
 protected:
  MsgTest() : pod_(loop_, Config()) {}

  static cxl::CxlPodConfig Config() {
    cxl::CxlPodConfig c;
    c.num_hosts = 2;
    c.num_mhds = 1;
    c.mhd_capacity = 16 * kMiB;
    c.dram_per_host = 1 * kMiB;
    // Figure 4 setup: PCIe-5.0 x16 links to the pool.
    c.link.lanes = 16;
    return c;
  }

  RingConfig MakeRing(uint32_t slots = 64) {
    auto seg = pod_.pool().Allocate(RingFootprint(slots));
    CXLPOOL_CHECK_OK(seg.status());
    RingConfig rc;
    rc.base = seg->base;
    rc.slots = slots;
    return rc;
  }

  sim::EventLoop loop_;
  cxl::CxlPod pod_;
};

// --- Wire helpers ---

TEST(WireTest, RoundTripIntegers) {
  std::vector<std::byte> buf;
  wire::Writer w(&buf);
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  wire::Reader r(buf);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, BytesAndRest) {
  std::vector<std::byte> buf;
  wire::Writer w(&buf);
  w.U16(7);
  w.Bytes(Msg("hello"));
  wire::Reader r(buf);
  EXPECT_EQ(r.U16(), 7);
  EXPECT_EQ(AsString(r.Rest()), "hello");
}

// --- Ring ---

TEST_F(MsgTest, SingleSlotMessageRoundTrip) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop) -> Task<std::string> {
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("ping")));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return AsString(got);
  };
  EXPECT_EQ(RunBlocking(loop_, t(tx, rx, loop_)), "ping");
}

TEST_F(MsgTest, SubMicrosecondDelivery) {
  // Paper Figure 4: message passing over the CXL ring is sub-us (~600 ns
  // median, slightly above one CXL write + one CXL read).
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop) -> Task<Nanos> {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("x")));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return loop.now() - start;
  };
  Nanos latency = RunBlocking(loop_, t(tx, rx, loop_));
  const auto& timing = pod_.host(0).timing();
  EXPECT_GE(latency, (timing.cxl_write + timing.cxl_read) * 7 / 10);  // jittered floor
  EXPECT_LT(latency, kMicrosecond);
}

TEST_F(MsgTest, ManyMessagesInOrder) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  constexpr int kCount = 500;  // > slots: exercises wrap + flow control

  auto producer = [](RingSender& s) -> Task<> {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::byte> m;
      wire::Writer w(&m);
      w.U32(static_cast<uint32_t>(i));
      CXLPOOL_CHECK_OK(co_await s.Send(m));
    }
  };
  auto consumer = [](RingReceiver& r, sim::EventLoop& loop,
                     std::vector<uint32_t>& out) -> Task<> {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::byte> m;
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + 10 * kMillisecond));
      wire::Reader rd(m);
      out.push_back(rd.U32());
    }
  };

  std::vector<uint32_t> got;
  Spawn(producer(tx));
  Spawn(consumer(rx, loop_, got));
  loop_.Run();
  ASSERT_EQ(got.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], static_cast<uint32_t>(i));
  }
  EXPECT_EQ(rx.messages_received(), static_cast<uint64_t>(kCount));
}

TEST_F(MsgTest, MultiSlotMessage) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  std::vector<std::byte> big(1000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = std::byte{static_cast<uint8_t>(i * 7)};
  }
  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop,
              std::span<const std::byte> data) -> Task<std::vector<std::byte>> {
    CXLPOOL_CHECK_OK(co_await s.Send(data));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return got;
  };
  auto got = RunBlocking(loop_, t(tx, rx, loop_, big));
  ASSERT_EQ(got.size(), big.size());
  EXPECT_EQ(std::memcmp(got.data(), big.data(), big.size()), 0);
}

TEST_F(MsgTest, EmptyMessage) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop) -> Task<size_t> {
    CXLPOOL_CHECK_OK(co_await s.Send({}));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return got.size();
  };
  EXPECT_EQ(RunBlocking(loop_, t(tx, rx, loop_)), 0u);
}

TEST_F(MsgTest, OversizedMessageRejected) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  std::vector<std::byte> huge(kMaxMessageSize + 1);
  auto t = [](RingSender& s, std::span<const std::byte> m) -> Task<Status> {
    co_return co_await s.Send(m);
  };
  EXPECT_EQ(RunBlocking(loop_, t(tx, huge)).code(), StatusCode::kInvalidArgument);
}

TEST_F(MsgTest, RecvDeadlineExpires) {
  RingConfig rc = MakeRing();
  RingReceiver rx(pod_.host(1), rc);
  auto t = [](RingReceiver& r, sim::EventLoop& loop) -> Task<Status> {
    std::vector<std::byte> got;
    co_return co_await r.Recv(&got, loop.now() + 10 * kMicrosecond);
  };
  EXPECT_EQ(RunBlocking(loop_, t(rx, loop_)).code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(loop_.now(), 10 * kMicrosecond);
}

TEST_F(MsgTest, TryRecvNonBlocking) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  auto t = [](RingSender& s, RingReceiver& r, sim::EventLoop& loop)
      -> Task<std::pair<Status, Status>> {
    std::vector<std::byte> got;
    Status empty = co_await r.TryRecv(&got);
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("a")));
    co_await sim::Delay(loop, kMicrosecond);  // posted-write media commit
    Status full = co_await r.TryRecv(&got);
    co_return std::make_pair(empty, full);
  };
  auto [empty, full] = RunBlocking(loop_, t(tx, rx, loop_));
  EXPECT_EQ(empty.code(), StatusCode::kNotFound);
  EXPECT_TRUE(full.ok());
}

TEST_F(MsgTest, SenderBlocksWhenRingFullThenDrains) {
  RingConfig rc = MakeRing(8);  // tiny ring
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  constexpr int kCount = 64;

  int sent = 0;
  auto producer = [](RingSender& s, int& count) -> Task<> {
    std::vector<std::byte> m(4);
    for (int i = 0; i < kCount; ++i) {
      CXLPOOL_CHECK_OK(co_await s.Send(m));
      ++count;
    }
  };
  Spawn(producer(tx, sent));
  loop_.RunFor(kMillisecond);
  EXPECT_LT(sent, kCount);  // stuck on flow control

  int received = 0;
  auto consumer = [](RingReceiver& r, sim::EventLoop& loop, int& count) -> Task<> {
    std::vector<std::byte> m;
    while (count < kCount) {
      m.clear();
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + 100 * kMillisecond));
      ++count;
    }
  };
  Spawn(consumer(rx, loop_, received));
  loop_.Run();
  EXPECT_EQ(sent, kCount);
  EXPECT_EQ(received, kCount);
}

TEST_F(MsgTest, RingFailsWhenMhdDies) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  pod_.FailMhd(MhdId(0));
  auto t = [](RingSender& s) -> Task<Status> { co_return co_await s.Send(Msg("x")); };
  EXPECT_EQ(RunBlocking(loop_, t(tx)).code(), StatusCode::kUnavailable);
}

// --- Channel ---

TEST_F(MsgTest, ChannelBidirectional) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  auto t = [](Channel& c, sim::EventLoop& loop) -> Task<std::pair<std::string, std::string>> {
    CXLPOOL_CHECK_OK(co_await c.end_a().Send(Msg("from-a")));
    std::vector<std::byte> at_b;
    CXLPOOL_CHECK_OK(co_await c.end_b().Recv(&at_b, loop.now() + kMillisecond));
    CXLPOOL_CHECK_OK(co_await c.end_b().Send(Msg("from-b")));
    std::vector<std::byte> at_a;
    CXLPOOL_CHECK_OK(co_await c.end_a().Recv(&at_a, loop.now() + kMillisecond));
    co_return std::make_pair(AsString(at_b), AsString(at_a));
  };
  auto [at_b, at_a] = RunBlocking(loop_, t(**ch, loop_));
  EXPECT_EQ(at_b, "from-a");
  EXPECT_EQ(at_a, "from-b");
}

TEST_F(MsgTest, PingPongLatencyMatchesFigure4Band) {
  // Median ping-pong one-way latency should be in the 500-800 ns band with
  // a median around 600 ns (paper Figure 4).
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  sim::Histogram latencies;
  sim::StopToken stop;

  auto pong = [](Channel& chan, sim::EventLoop& loop, sim::StopToken& st) -> Task<> {
    while (!st.stopped()) {
      std::vector<std::byte> m;
      Status s = co_await chan.end_b().Recv(&m, loop.now() + 10 * kMicrosecond);
      if (s.code() == StatusCode::kDeadlineExceeded) {
        continue;
      }
      CXLPOOL_CHECK_OK(s);
      CXLPOOL_CHECK_OK(co_await chan.end_b().Send(m));
    }
  };
  auto ping = [](Channel& chan, sim::EventLoop& loop, sim::Histogram& hist,
                 sim::StopToken& st) -> Task<> {
    std::vector<std::byte> payload = Msg("0123456789abcdef");  // 16 B
    for (int i = 0; i < 200; ++i) {
      Nanos start = loop.now();
      CXLPOOL_CHECK_OK(co_await chan.end_a().Send(payload));
      std::vector<std::byte> echo;
      CXLPOOL_CHECK_OK(co_await chan.end_a().Recv(&echo, loop.now() + kMillisecond));
      hist.Add((loop.now() - start) / 2);  // one-way
    }
    st.Stop();
  };
  Spawn(pong(c, loop_, stop));
  Spawn(ping(c, loop_, latencies, stop));
  loop_.Run();

  int64_t p50 = latencies.Percentile(0.5);
  EXPECT_GE(p50, 500);
  EXPECT_LE(p50, 800);
  EXPECT_LT(latencies.Percentile(0.99), 2 * kMicrosecond);
}

// --- RPC ---

TEST_F(MsgTest, RpcEcho) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  sim::StopToken stop;
  RpcServer server(c.end_b(), [](uint16_t method, std::span<const std::byte> req)
                                   -> Task<Result<std::vector<std::byte>>> {
    if (method == 99) {
      co_return NotFound("no such method");
    }
    std::vector<std::byte> resp(req.begin(), req.end());
    resp.push_back(std::byte{static_cast<uint8_t>(method)});
    co_return resp;
  });
  Spawn(server.Serve(stop));

  RpcClient client(c.end_a());
  auto t = [](RpcClient& cl, sim::EventLoop& loop, sim::StopToken& st)
      -> Task<std::pair<std::string, StatusCode>> {
    auto ok = co_await cl.Call(7, Msg("hi"), loop.now() + kMillisecond);
    CXLPOOL_CHECK(ok.ok());
    std::string body = AsString(*ok);
    auto err = co_await cl.Call(99, Msg(""), loop.now() + kMillisecond);
    st.Stop();
    co_return std::make_pair(body, err.ok() ? StatusCode::kOk : err.status().code());
  };
  auto [body, err_code] = RunBlocking(loop_, t(client, loop_, stop));
  EXPECT_EQ(body, std::string("hi") + char(7));
  EXPECT_EQ(err_code, StatusCode::kNotFound);
  EXPECT_EQ(server.calls_served(), 2u);
}

TEST_F(MsgTest, RpcRoundTripIsFewMicroseconds) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());
  auto t = [](RpcClient& cl, sim::EventLoop& loop, sim::StopToken& st) -> Task<Nanos> {
    // Warm up once (server parked in long poll), then measure.
    (void)co_await cl.Call(1, Msg("w"), loop.now() + kMillisecond);
    Nanos start = loop.now();
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    CXLPOOL_CHECK(r.ok());
    st.Stop();
    co_return loop.now() - start;
  };
  Nanos rtt = RunBlocking(loop_, t(client, loop_, stop));
  EXPECT_LT(rtt, 5 * kMicrosecond);  // two ring traversals + handler
  EXPECT_GT(rtt, 1 * kMicrosecond);
}

// --- RPC supervision & retry (robustness) ---

TEST_F(MsgTest, ServeCountsAbortWhenChannelDies) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));
  EXPECT_EQ(server.calls_served(), 1u);

  // The rings live on MHD 0; killing it kills the serve loop — which must
  // exit loudly (counted), not spin or vanish silently.
  pod_.FailMhd(MhdId(0));
  loop_.RunFor(300 * kMicrosecond);
  EXPECT_GE(server.stats().serve_aborts, 1u);
  EXPECT_EQ(server.stats().restarts, 0u);  // plain Serve never restarts
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, ServeSupervisedComesBackAfterRepair) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.ServeSupervised(stop));
  RpcClient client(c.end_a());

  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));

  pod_.FailMhd(MhdId(0));
  loop_.RunFor(500 * kMicrosecond);
  EXPECT_GE(server.stats().serve_aborts, 1u);

  // After repair the supervisor re-enters Serve within its max backoff
  // (200 µs) and calls succeed again.
  pod_.RepairMhd(MhdId(0));
  loop_.RunFor(500 * kMicrosecond);
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));
  EXPECT_GE(server.stats().restarts, 1u);
  EXPECT_EQ(server.calls_served(), 2u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, RetryPolicySucceedsOnceServerAppears) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  // The server only starts 150 µs in: the first attempt must time out and
  // a backed-off retry must land.
  auto late_start = [](RpcServer& s, sim::EventLoop& loop,
                       sim::StopToken& st) -> Task<> {
    co_await sim::Delay(loop, 150 * kMicrosecond);
    Spawn(s.Serve(st));
  };
  Spawn(late_start(server, loop_, stop));

  RetryPolicy::Options ro;
  ro.max_attempts = 5;
  ro.initial_backoff = 50 * kMicrosecond;
  RetryPolicy policy(ro);
  RpcClient client(c.end_a());
  auto t = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 100 * kMicrosecond, loop);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, t(policy, client, loop_)));
  EXPECT_EQ(policy.stats().calls, 1u);
  EXPECT_GE(policy.stats().retries, 1u);
  EXPECT_EQ(policy.stats().exhausted, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, RetryPolicyDoesNotRetryApplicationErrors) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [](uint16_t, std::span<const std::byte>)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_return NotFound("no such method");
                   });
  Spawn(server.Serve(stop));

  RetryPolicy policy;
  RpcClient client(c.end_a());
  auto t = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop,
              sim::StopToken& st) -> Task<StatusCode> {
    auto r = co_await p.Call(cl, 99, Msg(""), 100 * kMicrosecond, loop);
    st.Stop();
    co_return r.ok() ? StatusCode::kOk : r.status().code();
  };
  EXPECT_EQ(RunBlocking(loop_, t(policy, client, loop_, stop)),
            StatusCode::kNotFound);
  EXPECT_EQ(policy.stats().retries, 0u);  // terminal error: one attempt
  EXPECT_EQ(policy.stats().exhausted, 0u);
}

TEST_F(MsgTest, RetryPolicyExhaustsOnDeadPath) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  // No server at all: every attempt times out.
  RetryPolicy::Options ro;
  ro.max_attempts = 3;
  ro.initial_backoff = 20 * kMicrosecond;
  RetryPolicy policy(ro);
  RpcClient client(c.end_a());
  auto t = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 50 * kMicrosecond, loop);
    co_return r.ok();
  };
  EXPECT_FALSE(RunBlocking(loop_, t(policy, client, loop_)));
  EXPECT_EQ(policy.stats().retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(policy.stats().exhausted, 1u);
}

TEST_F(MsgTest, RetryPolicyTimeoutEscalationOutwaitsSlowServer) {
  // A slow-but-alive server: every reply takes ~8us of handler time, well
  // past an aggressive 2us first-attempt deadline. Without escalation,
  // every attempt times out; with timeout_multiplier the later attempts
  // wait long enough to land. This is the pattern ForwardedMmioPath uses
  // to turn gray-slow peers into dedup hits instead of errors.
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [this](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_await sim::Delay(loop_, 8 * kMicrosecond);
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  auto call = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 2 * kMicrosecond, loop);
    co_return r.ok();
  };

  // Flat deadlines: exhausted.
  RetryPolicy::Options flat;
  flat.max_attempts = 3;
  flat.initial_backoff = 5 * kMicrosecond;
  RetryPolicy flat_policy(flat);
  EXPECT_FALSE(RunBlocking(loop_, call(flat_policy, client, loop_)));
  EXPECT_EQ(flat_policy.stats().exhausted, 1u);

  // Escalating deadlines: 2us, 8us, 32us — attempt 3 outwaits the server.
  RetryPolicy::Options esc = flat;
  esc.timeout_multiplier = 4.0;
  RetryPolicy esc_policy(esc);
  EXPECT_TRUE(RunBlocking(loop_, call(esc_policy, client, loop_)));
  EXPECT_GE(esc_policy.stats().retries, 1u);
  EXPECT_EQ(esc_policy.stats().exhausted, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST(RetryPolicyTest, BackoffIsDeterministicSeededAndBounded) {
  RetryPolicy::Options o;
  o.seed = 42;
  RetryPolicy a(o);
  RetryPolicy b(o);
  for (int retry = 1; retry <= 6; ++retry) {
    Nanos d = a.BackoffFor(retry);
    EXPECT_EQ(d, b.BackoffFor(retry));  // same seed, same jitter draws
    EXPECT_GE(d, static_cast<Nanos>(
                     static_cast<double>(o.initial_backoff) * (1.0 - o.jitter)));
    EXPECT_LE(d, static_cast<Nanos>(
                     static_cast<double>(o.max_backoff) * (1.0 + o.jitter)));
  }
}

// --- Wire versioning ---

TEST_F(MsgTest, ServerDropsBadVersionRequest) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  int handler_calls = 0;
  RpcServer server(c.end_b(),
                   [&handler_calls](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     ++handler_calls;
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));

  // A frame from a future (or corrupted) client: full-size header, wrong
  // version byte. The server must count + drop it — it cannot even trust
  // the call_id enough to reply — and keep serving.
  auto send_old = [](Endpoint& e, sim::EventLoop& loop) -> Task<> {
    std::vector<std::byte> frame;
    wire::Writer w(&frame);
    w.U8(kRpcWireVersion + 1);  // not ours
    w.U8(kRpcRequest);
    w.U64(77);                           // call_id
    w.U16(1);                            // method
    w.U8(kPriorityData);                 // priority
    w.U64(0);                            // deadline
    w.U64(0);                            // trace_id
    w.U64(0);                            // parent_span
    w.U64(static_cast<uint64_t>(loop.now()));  // sent_at
    w.Bytes(Msg("boo"));
    CXLPOOL_CHECK_OK(co_await e.Send(frame));
  };
  RunBlocking(loop_, send_old(c.end_a(), loop_));
  loop_.RunFor(50 * kMicrosecond);
  EXPECT_EQ(server.stats().bad_version, 1u);
  EXPECT_EQ(handler_calls, 0);
  EXPECT_EQ(server.calls_served(), 0u);

  // The serve loop survived: a well-formed call still lands.
  RpcClient client(c.end_a());
  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));
  EXPECT_EQ(handler_calls, 1);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, ClientRejectsBadVersionResponse) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  // A rogue responder: echoes the request's call_id back under an alien
  // wire version. The client must fail the call typed, not misparse.
  auto rogue = [](Endpoint& e, sim::EventLoop& loop) -> Task<> {
    std::vector<std::byte> req;
    CXLPOOL_CHECK_OK(co_await e.Recv(&req, loop.now() + kMillisecond));
    wire::Reader r(req);
    r.U8();  // version
    r.U8();  // kind
    uint64_t call_id = r.U64();
    std::vector<std::byte> resp;
    wire::Writer w(&resp);
    w.U8(kRpcWireVersion + 5);
    w.U8(kRpcResponse);
    w.U64(call_id);
    w.U16(1);
    CXLPOOL_CHECK_OK(co_await e.Send(resp));
  };
  Spawn(rogue(c.end_b(), loop_));

  RpcClient client(c.end_a());
  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<StatusCode> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond);
    co_return r.ok() ? StatusCode::kOk : r.status().code();
  };
  EXPECT_EQ(RunBlocking(loop_, call(client, loop_)),
            StatusCode::kInvalidArgument);
}

// --- Deadline propagation ---

TEST_F(MsgTest, ExpiredRequestRefusedBeforeHandler) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  int handler_calls = 0;
  RpcServer server(c.end_b(),
                   [&handler_calls](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     ++handler_calls;
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  // op_deadline = "now" at origin: by the time the frame crosses the ring
  // it is already dead. The server must refuse at dequeue — the handler
  // (in production: the device BAR access) never runs for dead work.
  loop_.RunFor(10 * kMicrosecond);  // off t=0: deadline 0 means "none"
  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<StatusCode> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + kMillisecond, {},
                              kPriorityData, /*op_deadline=*/loop.now());
    co_return r.ok() ? StatusCode::kOk : r.status().code();
  };
  EXPECT_EQ(RunBlocking(loop_, call(client, loop_)),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handler_calls, 0);
  EXPECT_EQ(server.stats().expired, 1u);
  EXPECT_EQ(server.calls_served(), 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

// --- Priority and bounded client queues ---

namespace {
// Issues one call and appends `tag` to `order` when it completes.
Task<> TaggedCall(RpcClient& cl, sim::EventLoop& loop, uint8_t priority,
                  std::string tag, std::vector<std::string>& order,
                  std::vector<std::string>& failed) {
  auto r = co_await cl.Call(1, Msg("x"), loop.now() + 10 * kMillisecond, {},
                            priority);
  (r.ok() ? order : failed).push_back(std::move(tag));
}
}  // namespace

TEST_F(MsgTest, ControlPriorityJumpsDataQueue) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [this](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_await sim::Delay(loop_, 5 * kMicrosecond);
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  std::vector<std::string> order, failed;
  auto drive = [&](RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    Spawn(TaggedCall(cl, loop, kPriorityData, "d1", order, failed));
    co_await sim::Delay(loop, 1 * kMicrosecond);  // d1 now in flight
    Spawn(TaggedCall(cl, loop, kPriorityData, "d2", order, failed));
    Spawn(TaggedCall(cl, loop, kPriorityData, "d3", order, failed));
    co_await sim::Delay(loop, 1 * kMicrosecond);  // d2, d3 queued
    Spawn(TaggedCall(cl, loop, kPriorityControl, "ctl", order, failed));
    co_return;
  };
  RunBlocking(loop_, drive(client, loop_));
  loop_.RunFor(kMillisecond);
  // The control call arrived last but runs right after the in-flight d1 —
  // ahead of both queued data calls.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_TRUE(failed.empty());
  EXPECT_EQ(order[0], "d1");
  EXPECT_EQ(order[1], "ctl");
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, BoundedClientQueueRejectNew) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [this](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_await sim::Delay(loop_, 5 * kMicrosecond);
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient::Options opts;
  opts.max_pending = 1;
  opts.overflow = OverflowPolicy::kRejectNew;
  RpcClient client(c.end_a(), opts);

  std::vector<StatusCode> codes(4, StatusCode::kOk);
  auto one = [&codes](RpcClient& cl, sim::EventLoop& loop, int i,
                      uint8_t prio) -> Task<> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + 10 * kMillisecond, {},
                              prio);
    codes[static_cast<size_t>(i)] =
        r.ok() ? StatusCode::kOk : r.status().code();
  };
  auto drive = [&](RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    Spawn(one(cl, loop, 0, kPriorityData));  // in flight
    co_await sim::Delay(loop, 1 * kMicrosecond);
    Spawn(one(cl, loop, 1, kPriorityData));  // fills the 1-deep queue
    Spawn(one(cl, loop, 2, kPriorityData));  // refused on arrival
    // Control is exempt from the bound: admitted even with the queue full.
    Spawn(one(cl, loop, 3, kPriorityControl));
    co_return;
  };
  RunBlocking(loop_, drive(client, loop_));
  loop_.RunFor(kMillisecond);
  EXPECT_EQ(codes[0], StatusCode::kOk);
  EXPECT_EQ(codes[1], StatusCode::kOk);
  EXPECT_EQ(codes[2], StatusCode::kOverloaded);
  EXPECT_EQ(codes[3], StatusCode::kOk);
  EXPECT_EQ(client.stats().rejected, 1u);
  EXPECT_EQ(client.stats().dropped_oldest, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, BoundedClientQueueDropOldest) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [this](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_await sim::Delay(loop_, 5 * kMicrosecond);
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient::Options opts;
  opts.max_pending = 1;
  opts.overflow = OverflowPolicy::kDropOldest;
  RpcClient client(c.end_a(), opts);

  std::vector<StatusCode> codes(3, StatusCode::kOk);
  auto one = [&codes](RpcClient& cl, sim::EventLoop& loop, int i) -> Task<> {
    auto r = co_await cl.Call(1, Msg("x"), loop.now() + 10 * kMillisecond);
    codes[static_cast<size_t>(i)] =
        r.ok() ? StatusCode::kOk : r.status().code();
  };
  auto drive = [&](RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    Spawn(one(cl, loop, 0));  // in flight
    co_await sim::Delay(loop, 1 * kMicrosecond);
    Spawn(one(cl, loop, 1));  // queued — the oldest waiter
    Spawn(one(cl, loop, 2));  // evicts #1, takes its place
    co_return;
  };
  RunBlocking(loop_, drive(client, loop_));
  loop_.RunFor(kMillisecond);
  EXPECT_EQ(codes[0], StatusCode::kOk);
  EXPECT_EQ(codes[1], StatusCode::kOverloaded);  // freshest-first under load
  EXPECT_EQ(codes[2], StatusCode::kOk);
  EXPECT_EQ(client.stats().dropped_oldest, 1u);
  EXPECT_EQ(client.stats().rejected, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, RingSendOverloadedPastFullWait) {
  Channel::Options copt;
  copt.slots = 4;
  copt.full_wait = 5 * kMicrosecond;
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1), copt);
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  // Nobody receives: the sender fills the ring, then the bounded wait
  // converts "stuck forever" into a typed kOverloaded push-back.
  auto t = [](Endpoint& e, sim::EventLoop& loop) -> Task<StatusCode> {
    for (;;) {
      Status st = co_await e.Send(Msg("x"));
      if (!st.ok()) {
        co_return st.code();
      }
    }
  };
  Nanos start = loop_.now();
  EXPECT_EQ(RunBlocking(loop_, t(c.end_a(), loop_)), StatusCode::kOverloaded);
  EXPECT_GE(loop_.now() - start, 5 * kMicrosecond);
}

// --- AdmissionController ---

TEST(AdmissionControllerTest, CoDelShedsOnlyAfterSustainedDelay) {
  AdmissionController::Options o;
  o.target = 5 * kMicrosecond;
  o.interval = 100 * kMicrosecond;
  AdmissionController ac(o);
  Nanos t = 1 * kMillisecond;
  Nanos high = 20 * kMicrosecond;

  // A burst above target sheds nothing until it persists a full interval.
  EXPECT_FALSE(ac.ShouldShed(high, kPriorityData, t));  // arms the interval
  EXPECT_FALSE(ac.ShouldShed(high, kPriorityData, t + 50 * kMicrosecond));
  EXPECT_TRUE(ac.ShouldShed(high, kPriorityData, t + 110 * kMicrosecond));
  EXPECT_EQ(ac.stats().shed, 1u);

  // In the dropping state the cadence is interval/sqrt(drop_count): the
  // next shed comes only after that gap, then the gaps shrink.
  Nanos t2 = t + 110 * kMicrosecond;
  EXPECT_FALSE(ac.ShouldShed(high, kPriorityData, t2 + 10 * kMicrosecond));
  EXPECT_TRUE(ac.ShouldShed(high, kPriorityData, t2 + 101 * kMicrosecond));
  EXPECT_EQ(ac.stats().shed, 2u);

  // One sojourn below target resets everything.
  EXPECT_FALSE(
      ac.ShouldShed(1 * kMicrosecond, kPriorityData, t2 + 200 * kMicrosecond));
  EXPECT_FALSE(ac.ShouldShed(high, kPriorityData, t2 + 201 * kMicrosecond));
  EXPECT_EQ(ac.stats().shed, 2u);
}

TEST(AdmissionControllerTest, ControlIsNeverShedAndNeverDrivesState) {
  AdmissionController::Options o;
  o.target = 5 * kMicrosecond;
  o.interval = 100 * kMicrosecond;
  AdmissionController ac(o);
  // Hammer it with control-priority sojourns far above target, far past
  // the interval: no shed, and the CoDel state stays disarmed.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ac.ShouldShed(kMillisecond, kPriorityControl,
                               static_cast<Nanos>(i) * kMillisecond));
  }
  EXPECT_EQ(ac.stats().shed, 0u);
  // The very next data sojourn above target only ARMS the interval — the
  // control storm left no armed state behind.
  EXPECT_FALSE(ac.ShouldShed(kMillisecond, kPriorityData, 60 * kMillisecond));
  EXPECT_EQ(ac.stats().shed, 0u);
}

TEST(AdmissionControllerTest, InflightBound) {
  AdmissionController::Options o;
  o.max_inflight = 2;
  AdmissionController ac(o);
  EXPECT_TRUE(ac.TryEnterServe());
  EXPECT_TRUE(ac.TryEnterServe());
  EXPECT_FALSE(ac.TryEnterServe());
  EXPECT_EQ(ac.stats().inflight_rejects, 1u);
  ac.ExitServe();
  EXPECT_TRUE(ac.TryEnterServe());
  EXPECT_EQ(ac.inflight(), 2u);

  AdmissionController unlimited{AdmissionController::Options{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(unlimited.TryEnterServe());
  }
}

// --- CircuitBreaker ---

TEST(CircuitBreakerTest, TripOpenHalfOpenClose) {
  CircuitBreaker::Options o;
  o.failure_threshold = 3;
  o.open_duration = 100 * kMicrosecond;
  o.half_open_successes = 2;
  CircuitBreaker cb(o);
  int opens_seen = 0;
  cb.OnOpen([&opens_seen] { ++opens_seen; });

  Nanos t = 1 * kMillisecond;
  cb.RecordFailure(t);
  cb.RecordFailure(t);
  EXPECT_EQ(cb.state(t), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow(t));
  cb.RecordFailure(t);  // third consecutive: trip
  EXPECT_EQ(cb.state(t), CircuitBreaker::State::kOpen);
  EXPECT_EQ(opens_seen, 1);
  EXPECT_FALSE(cb.Allow(t + 50 * kMicrosecond));
  EXPECT_EQ(cb.stats().fast_fails, 1u);

  // After open_duration the breaker half-opens and probes flow again.
  Nanos probe_t = t + 150 * kMicrosecond;
  EXPECT_TRUE(cb.Allow(probe_t));
  EXPECT_EQ(cb.state(probe_t), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(cb.stats().probes, 1u);
  cb.RecordSuccess(probe_t);
  EXPECT_EQ(cb.state(probe_t), CircuitBreaker::State::kHalfOpen);
  cb.RecordSuccess(probe_t + kMicrosecond);  // second success: close
  EXPECT_EQ(cb.state(probe_t + kMicrosecond), CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.stats().opens, 1u);

  // An intervening success in closed state resets the failure streak.
  cb.RecordFailure(probe_t + 2 * kMicrosecond);
  cb.RecordFailure(probe_t + 3 * kMicrosecond);
  cb.RecordSuccess(probe_t + 4 * kMicrosecond);
  cb.RecordFailure(probe_t + 5 * kMicrosecond);
  cb.RecordFailure(probe_t + 6 * kMicrosecond);
  EXPECT_EQ(cb.state(probe_t + 6 * kMicrosecond),
            CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  CircuitBreaker::Options o;
  o.failure_threshold = 2;
  o.open_duration = 100 * kMicrosecond;
  CircuitBreaker cb(o);
  Nanos t = 0;
  cb.RecordFailure(t);
  cb.RecordFailure(t);
  EXPECT_EQ(cb.state(t), CircuitBreaker::State::kOpen);
  Nanos probe_t = t + 100 * kMicrosecond;
  EXPECT_TRUE(cb.Allow(probe_t));  // half-open probe
  cb.RecordFailure(probe_t);       // probe failed: straight back to open
  EXPECT_EQ(cb.state(probe_t), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.stats().opens, 2u);
  EXPECT_FALSE(cb.Allow(probe_t + kMicrosecond));
}

TEST(CircuitBreakerTest, ZeroThresholdDisables) {
  CircuitBreaker::Options o;
  o.failure_threshold = 0;
  CircuitBreaker cb(o);
  for (int i = 0; i < 100; ++i) {
    cb.RecordFailure(static_cast<Nanos>(i));
  }
  EXPECT_TRUE(cb.Allow(200));
  EXPECT_EQ(cb.state(200), CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.stats().opens, 0u);
}

TEST(CircuitBreakerTest, OverloadedIsNotABreakerFailure) {
  // A peer answering kOverloaded is alive — only transport silence
  // (kDeadlineExceeded) or a dead path (kUnavailable) count.
  EXPECT_FALSE(CircuitBreaker::IsBreakerFailure(Overloaded("busy")));
  EXPECT_FALSE(CircuitBreaker::IsBreakerFailure(NotFound("app error")));
  EXPECT_TRUE(CircuitBreaker::IsBreakerFailure(DeadlineExceeded("silence")));
  EXPECT_TRUE(CircuitBreaker::IsBreakerFailure(Unavailable("dead path")));
}

// --- Retry budget ---

TEST_F(MsgTest, RetryBudgetCapsAmplification) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  // Dead path (no server): without a budget every call would burn
  // max_attempts - 1 retries. The token bucket caps total retries at
  // ratio * calls + burst.
  RetryPolicy::Options ro;
  ro.max_attempts = 4;
  ro.initial_backoff = 2 * kMicrosecond;
  ro.max_backoff = 4 * kMicrosecond;
  ro.budget_ratio = 0.1;
  ro.budget_burst = 2.0;
  RetryPolicy policy(ro);
  RpcClient client(c.end_a());

  // Dead-but-draining peer: consumes frames, never replies — otherwise the
  // abandoned requests fill the 64-slot ring and senders wedge on it.
  sim::StopToken stop;
  auto sink = [](Endpoint& e, sim::EventLoop& loop, sim::StopToken& st) -> Task<> {
    std::vector<std::byte> buf;
    while (!st.stopped()) {
      (void)co_await e.Recv(&buf, loop.now() + 50 * kMicrosecond);
    }
  };
  Spawn(sink(c.end_b(), loop_, stop));

  constexpr int kCalls = 30;
  auto drive = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    for (int i = 0; i < kCalls; ++i) {
      (void)co_await p.Call(cl, 1, Msg("x"), 5 * kMicrosecond, loop);
    }
  };
  RunBlocking(loop_, drive(policy, client, loop_));
  EXPECT_EQ(policy.stats().calls, static_cast<uint64_t>(kCalls));
  EXPECT_GT(policy.stats().retries, 0u);
  EXPECT_LE(static_cast<double>(policy.stats().retries),
            ro.budget_ratio * kCalls + ro.budget_burst);
  EXPECT_GT(policy.stats().budget_denied, 0u);
  // Unbudgeted control: every call burns its full attempt allowance.
  RetryPolicy::Options unlimited = ro;
  unlimited.budget_ratio = 0.0;
  RetryPolicy free_policy(unlimited);
  RunBlocking(loop_, drive(free_policy, client, loop_));
  EXPECT_EQ(free_policy.stats().retries, static_cast<uint64_t>(kCalls * 3));
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, TimeoutEscalationCutShortByBudget) {
  // A server slow enough (10us/request) that only the THIRD escalated
  // attempt (2us -> 8us -> 32us) can land — it must also outwait the
  // backlog the abandoned attempts left behind (~30us total). With one
  // retry token the escalation is cut off mid-ladder and the call fails;
  // with a full bucket it succeeds. Retry budgets bound amplification even
  // when escalation "would have worked eventually".
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  RpcServer server(c.end_b(),
                   [this](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     co_await sim::Delay(loop_, 10 * kMicrosecond);
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));
  RpcClient client(c.end_a());

  RetryPolicy::Options ro;
  ro.max_attempts = 3;
  ro.timeout_multiplier = 4.0;
  ro.initial_backoff = 1 * kMicrosecond;
  ro.max_backoff = 2 * kMicrosecond;
  ro.budget_ratio = 0.01;
  ro.budget_burst = 1.0;  // one retry token: dies between attempts 2 and 3
  RetryPolicy starved(ro);
  auto call = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await p.Call(cl, 1, Msg("x"), 2 * kMicrosecond, loop);
    co_return r.ok();
  };
  EXPECT_FALSE(RunBlocking(loop_, call(starved, client, loop_)));
  EXPECT_EQ(starved.stats().retries, 1u);
  EXPECT_EQ(starved.stats().budget_denied, 1u);

  loop_.RunFor(100 * kMicrosecond);  // let the slow server drain
  RetryPolicy::Options full = ro;
  full.budget_burst = 10.0;
  RetryPolicy healthy(full);
  EXPECT_TRUE(RunBlocking(loop_, call(healthy, client, loop_)));
  EXPECT_EQ(healthy.stats().retries, 2u);
  EXPECT_EQ(healthy.stats().budget_denied, 0u);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

TEST_F(MsgTest, RetryBudgetRefillIsDeterministic) {
  // Two identical policies driven through identical seeded runs must agree
  // on every stat and on the residual token count — the budget arithmetic
  // is part of the simulation's determinism contract.
  auto ch1 = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  auto ch2 = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch1.ok());
  ASSERT_TRUE(ch2.ok());
  RetryPolicy::Options ro;
  ro.max_attempts = 3;
  ro.initial_backoff = 2 * kMicrosecond;
  ro.budget_ratio = 0.25;
  ro.budget_burst = 3.0;
  ro.seed = 77;
  RetryPolicy a(ro), b(ro);
  RpcClient ca((*ch1)->end_a()), cb((*ch2)->end_a());

  auto drive = [](RetryPolicy& p, RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    for (int i = 0; i < 12; ++i) {
      (void)co_await p.Call(cl, 1, Msg("x"), 5 * kMicrosecond, loop);
    }
  };
  // Interleave-free: run A fully, then B — both see dead channels and the
  // same per-call timing structure.
  RunBlocking(loop_, drive(a, ca, loop_));
  RunBlocking(loop_, drive(b, cb, loop_));
  EXPECT_EQ(a.stats().calls, b.stats().calls);
  EXPECT_EQ(a.stats().retries, b.stats().retries);
  EXPECT_EQ(a.stats().budget_denied, b.stats().budget_denied);
  EXPECT_EQ(a.stats().exhausted, b.stats().exhausted);
  EXPECT_DOUBLE_EQ(a.budget_tokens(), b.budget_tokens());
}

// --- Doorbell ---

TEST_F(MsgTest, DoorbellWaitsAndWakes) {
  auto seg = pod_.pool().Allocate(kCachelineSize);
  ASSERT_TRUE(seg.ok());
  DoorbellSender bell(pod_.host(0), seg->base);
  DoorbellWatcher watch(pod_.host(1), seg->base);

  auto ringer = [](DoorbellSender& b, sim::EventLoop& loop) -> Task<> {
    co_await sim::Delay(loop, 5 * kMicrosecond);
    CXLPOOL_CHECK_OK(co_await b.Ring(1));
  };
  auto waiter = [](DoorbellWatcher& w, sim::EventLoop& loop) -> Task<uint64_t> {
    auto v = co_await w.WaitBeyond(0, loop.now() + kMillisecond);
    CXLPOOL_CHECK(v.ok());
    co_return *v;
  };
  Spawn(ringer(bell, loop_));
  uint64_t v = RunBlocking(loop_, waiter(watch, loop_));
  EXPECT_EQ(v, 1u);
  EXPECT_GE(loop_.now(), 5 * kMicrosecond);
}

TEST_F(MsgTest, DoorbellDeadline) {
  auto seg = pod_.pool().Allocate(kCachelineSize);
  ASSERT_TRUE(seg.ok());
  DoorbellWatcher watch(pod_.host(1), seg->base);
  auto t = [](DoorbellWatcher& w, sim::EventLoop& loop) -> Task<Status> {
    auto v = co_await w.WaitBeyond(0, loop.now() + 5 * kMicrosecond);
    co_return v.ok() ? OkStatus() : v.status();
  };
  EXPECT_EQ(RunBlocking(loop_, t(watch, loop_)).code(), StatusCode::kDeadlineExceeded);
}

TEST_F(MsgTest, DoorbellBackoffResetsAfterTimeout) {
  // A watcher whose previous wait timed out at max backoff must start the
  // next wait at poll_min again: first-detection latency cannot depend on
  // the previous wait's outcome.
  auto seg = pod_.pool().Allocate(kCachelineSize);
  ASSERT_TRUE(seg.ok());
  DoorbellSender bell(pod_.host(0), seg->base);
  DoorbellWatcher watch(pod_.host(1), seg->base, /*poll_min=*/100,
                        /*poll_max=*/20 * kMicrosecond);

  // Drive the backoff to its (large) max with a wait nothing rings.
  auto idle = [](DoorbellWatcher& w, sim::EventLoop& loop) -> Task<Status> {
    auto v = co_await w.WaitBeyond(0, loop.now() + 100 * kMicrosecond);
    co_return v.ok() ? OkStatus() : v.status();
  };
  EXPECT_EQ(RunBlocking(loop_, idle(watch, loop_)).code(),
            StatusCode::kDeadlineExceeded);

  auto ringer = [](DoorbellSender& b, sim::EventLoop& loop) -> Task<> {
    co_await sim::Delay(loop, 500);
    CXLPOOL_CHECK_OK(co_await b.Ring(1));
  };
  auto waiter = [](DoorbellWatcher& w, sim::EventLoop& loop,
                   Nanos* took) -> Task<> {
    Nanos start = loop.now();
    auto v = co_await w.WaitBeyond(0, loop.now() + kMillisecond);
    CXLPOOL_CHECK(v.ok());
    *took = loop.now() - start;
  };
  Nanos took = 0;
  Spawn(ringer(bell, loop_));
  RunBlocking(loop_, waiter(watch, loop_, &took));
  // Without the reset the first poll delay alone is poll_max (20 us);
  // with it, detection stays near the store-commit latency.
  EXPECT_LT(took, 10 * kMicrosecond);
}

// --- DoorbellCoalescer ---

// Records every issued ring with its sim timestamp.
struct RingLog {
  sim::EventLoop* loop;
  std::vector<std::pair<uint64_t, Nanos>> rung;
  Task<Status> Ring(uint64_t v) {
    rung.emplace_back(v, loop->now());
    co_return OkStatus();
  }
};

TEST_F(MsgTest, CoalescerWatermarkBeatsDeadline) {
  RingLog log{&loop_, {}};
  DoorbellCoalescer co(
      loop_, [&log](uint64_t v) { return log.Ring(v); },
      {.watermark = 3, .max_delay = 5 * kMicrosecond});
  auto t = [](DoorbellCoalescer& c) -> Task<> {
    CXLPOOL_CHECK_OK(co_await c.Offer(1));
    CXLPOOL_CHECK_OK(co_await c.Offer(2));
    CXLPOOL_CHECK_OK(co_await c.Offer(3));  // watermark fires right here
  };
  RunBlocking(loop_, t(co));
  ASSERT_EQ(log.rung.size(), 1u);
  EXPECT_EQ(log.rung[0].first, 3u);          // the folded max, once
  EXPECT_LT(log.rung[0].second, 5 * kMicrosecond);  // before the deadline
  // The armed timer lapses on already-clean state: no second ring, no
  // deadline flush counted.
  loop_.RunFor(20 * kMicrosecond);
  EXPECT_EQ(log.rung.size(), 1u);
  EXPECT_EQ(co.stats().watermark_flushes, 1u);
  EXPECT_EQ(co.stats().deadline_flushes, 0u);
  EXPECT_EQ(co.stats().rings, 1u);
  EXPECT_EQ(co.stats().coalesced, 2u);
}

TEST_F(MsgTest, CoalescerDeadlineBoundsTrickle) {
  RingLog log{&loop_, {}};
  DoorbellCoalescer co(
      loop_, [&log](uint64_t v) { return log.Ring(v); },
      {.watermark = 100, .max_delay = 5 * kMicrosecond});
  auto t = [](DoorbellCoalescer& c, sim::EventLoop& loop) -> Task<> {
    CXLPOOL_CHECK_OK(co_await c.Offer(1));  // arms the timer at t=0
    co_await sim::Delay(loop, kMicrosecond);
    CXLPOOL_CHECK_OK(co_await c.Offer(2));  // folded into the same batch
  };
  RunBlocking(loop_, t(co, loop_));
  EXPECT_TRUE(co.dirty());
  EXPECT_EQ(log.rung.size(), 0u);  // still pending: watermark far away
  loop_.RunFor(20 * kMicrosecond);
  ASSERT_EQ(log.rung.size(), 1u);
  EXPECT_EQ(log.rung[0].first, 2u);  // max of the folded values
  // max_delay is the hard latency bound, anchored at the FIRST offer.
  EXPECT_EQ(log.rung[0].second, 5 * kMicrosecond);
  EXPECT_EQ(co.stats().deadline_flushes, 1u);
  EXPECT_EQ(co.stats().watermark_flushes, 0u);
  EXPECT_EQ(co.stats().coalesced, 1u);
  EXPECT_FALSE(co.dirty());
}

TEST_F(MsgTest, CoalescerRungValuesStayMonotone) {
  RingLog log{&loop_, {}};
  DoorbellCoalescer co(loop_, [&log](uint64_t v) { return log.Ring(v); },
                       {.watermark = 1});
  auto t = [](DoorbellCoalescer& c) -> Task<> {
    CXLPOOL_CHECK_OK(co_await c.Offer(5));
    CXLPOOL_CHECK_OK(co_await c.Offer(3));  // behind the last rung value
    CXLPOOL_CHECK_OK(co_await c.Offer(7));
  };
  RunBlocking(loop_, t(co));
  // The out-of-order offer is folded (max) and its flush skipped as stale:
  // the wire only ever sees strictly increasing values.
  ASSERT_EQ(log.rung.size(), 2u);
  EXPECT_EQ(log.rung[0].first, 5u);
  EXPECT_EQ(log.rung[1].first, 7u);
  EXPECT_EQ(co.stats().skipped_stale, 1u);
  EXPECT_EQ(co.stats().rings, 2u);
  EXPECT_EQ(co.last_rung(), 7u);
}

// --- Batched ring transfer ---

TEST_F(MsgTest, SendBatchPreservesOrderAndCountsStats) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  auto t = [](RingSender& s, RingReceiver& r,
              sim::EventLoop& loop) -> Task<std::vector<std::string>> {
    std::vector<std::vector<std::byte>> msgs;
    for (int i = 0; i < 6; ++i) {
      msgs.push_back(Msg(std::string("m") + static_cast<char>('0' + i)));
    }
    msgs.push_back(std::vector<std::byte>(200, std::byte{0x7f}));  // 4 slots
    std::vector<std::span<const std::byte>> views(msgs.begin(), msgs.end());
    CXLPOOL_CHECK_OK(co_await s.SendBatch(views));
    std::vector<std::string> got;
    for (size_t i = 0; i < msgs.size(); ++i) {
      std::vector<std::byte> m;
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + kMillisecond));
      got.push_back(AsString(m));
    }
    co_return got;
  };
  auto got = RunBlocking(loop_, t(tx, rx, loop_));
  ASSERT_EQ(got.size(), 7u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)],
              std::string("m") + static_cast<char>('0' + i));
  }
  EXPECT_EQ(got[6].size(), 200u);  // the multi-slot straggler, intact
  EXPECT_EQ(tx.stats().batch_sends, 1u);
  EXPECT_EQ(tx.stats().batched_messages, 7u);
  // Write-combining: far fewer nt-store issues than slots written.
  EXPECT_GE(tx.stats().nt_store_runs, 1u);
  EXPECT_LT(tx.stats().nt_store_runs, 10u);
  EXPECT_LE(tx.stats().cursor_refreshes, 1u);
  EXPECT_EQ(rx.messages_received(), 7u);
  // Burst drain: the receiver served some slots from its cached window.
  EXPECT_GE(rx.stats().window_hits, 1u);
}

// --- MPSC submission front ---

TEST_F(MsgTest, MpscSubmitterFairnessUnderSaturation) {
  RingConfig rc = MakeRing();
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);
  MpscSubmitter sub(tx, {.watermark = 8});
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kPer = 25;

  auto producer = [](MpscSubmitter& s, uint32_t p) -> Task<> {
    for (uint32_t i = 0; i < kPer; ++i) {
      std::vector<std::byte> m;
      wire::Writer w(&m);
      w.U32(p);
      w.U32(i);
      CXLPOOL_CHECK_OK(co_await s.Submit(m));
    }
  };
  std::vector<std::pair<uint32_t, uint32_t>> got;
  auto consumer = [&got](RingReceiver& r, sim::EventLoop& loop) -> Task<> {
    for (uint32_t i = 0; i < kProducers * kPer; ++i) {
      std::vector<std::byte> m;
      CXLPOOL_CHECK_OK(co_await r.Recv(&m, loop.now() + 10 * kMillisecond));
      wire::Reader rd(m);
      uint32_t p = rd.U32();
      uint32_t seq = rd.U32();
      got.emplace_back(p, seq);
    }
  };
  for (uint32_t p = 0; p < kProducers; ++p) {
    Spawn(producer(sub, p));
  }
  Spawn(consumer(rx, loop_));
  loop_.Run();

  ASSERT_EQ(got.size(), static_cast<size_t>(kProducers * kPer));
  // Per-producer FIFO survives the shared staging queue.
  std::vector<uint32_t> next(kProducers, 0);
  for (const auto& [p, seq] : got) {
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next[p]);
    ++next[p];
  }
  for (uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPer);  // nobody starved
  }
  // Fairness under saturation: early output interleaves producers instead
  // of draining one producer's whole backlog first.
  std::set<uint32_t> early;
  for (size_t i = 0; i < 16 && i < got.size(); ++i) {
    early.insert(got[i].first);
  }
  EXPECT_GE(early.size(), 2u);
  EXPECT_EQ(sub.stats().submitted, static_cast<uint64_t>(kProducers * kPer));
  EXPECT_EQ(sub.stats().batched_frames,
            static_cast<uint64_t>(kProducers * kPer));
  EXPECT_GE(sub.stats().max_batch, 2u);   // real folding happened
  EXPECT_LE(sub.stats().max_batch, 8u);   // and respected the watermark
  EXPECT_GE(sub.stats().handoffs, 1u);    // no head-of-line combiner
  EXPECT_GE(tx.stats().batch_sends, 1u);
}

// --- Pipelined RPC client ---

namespace {
// Reads the call_id out of a request frame.
uint64_t RequestCallId(std::span<const std::byte> frame) {
  wire::Reader r(frame);
  r.U8();  // version
  r.U8();  // kind
  return r.U64();
}
}  // namespace

TEST_F(MsgTest, PipelinedResponsesMatchOutOfOrder) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  // Hand-rolled responder: takes both requests, then replies NEWEST first.
  auto responder = [](Endpoint& e, sim::EventLoop& loop) -> Task<> {
    std::vector<std::pair<uint64_t, std::vector<std::byte>>> reqs;
    for (int i = 0; i < 2; ++i) {
      std::vector<std::byte> f;
      CXLPOOL_CHECK_OK(co_await e.Recv(&f, loop.now() + kMillisecond));
      wire::Reader r(f);
      r.U8();  // version
      r.U8();  // kind
      uint64_t id = r.U64();
      r.U16();  // method
      r.U8();   // priority
      r.U64();  // op deadline
      r.U64();  // trace id
      r.U64();  // parent span
      r.U64();  // sent_at
      auto rest = r.Rest();
      reqs.emplace_back(id, std::vector<std::byte>(rest.begin(), rest.end()));
    }
    for (int i = 1; i >= 0; --i) {
      std::vector<std::byte> resp;
      wire::Writer w(&resp);
      w.U8(kRpcWireVersion);
      w.U8(kRpcResponse);
      w.U64(reqs[static_cast<size_t>(i)].first);
      w.U16(1);
      w.Bytes(reqs[static_cast<size_t>(i)].second);
      CXLPOOL_CHECK_OK(co_await e.Send(resp));
    }
  };

  RpcClient::Options opts;
  opts.max_inflight = 2;
  RpcClient client(c.end_a(), opts);
  std::vector<std::string> done_order;
  auto one = [&done_order](RpcClient& cl, sim::EventLoop& loop,
                           std::string tag) -> Task<> {
    auto r = co_await cl.Call(1, Msg(tag), loop.now() + kMillisecond);
    CXLPOOL_CHECK(r.ok());
    // Matched by call_id, not by arrival order: each echo is its own.
    CXLPOOL_CHECK(AsString(*r) == tag);
    done_order.push_back(std::move(tag));
  };
  Spawn(one(client, loop_, "first"));
  Spawn(one(client, loop_, "second"));
  Spawn(responder(c.end_b(), loop_));
  loop_.Run();
  ASSERT_EQ(done_order.size(), 2u);
  EXPECT_EQ(done_order[0], "second");  // completed out of order...
  EXPECT_EQ(done_order[1], "first");   // ...and both landed correctly
  EXPECT_EQ(client.stats().stale_responses, 0u);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST_F(MsgTest, PipelinedMidFlightOverloadExpiryAndStale) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;

  // Responder script: refuse call 2 with kOverloaded while call 1 stays in
  // flight; let call 1 expire client-side; send its response too late (a
  // stale); then serve one more call normally.
  auto responder = [](Endpoint& e, sim::EventLoop& loop) -> Task<> {
    std::vector<std::byte> f1, f2;
    CXLPOOL_CHECK_OK(co_await e.Recv(&f1, loop.now() + kMillisecond));
    CXLPOOL_CHECK_OK(co_await e.Recv(&f2, loop.now() + kMillisecond));
    uint64_t id1 = RequestCallId(f1);
    uint64_t id2 = RequestCallId(f2);
    std::vector<std::byte> busy;
    wire::Writer wb(&busy);
    wb.U8(kRpcWireVersion);
    wb.U8(kRpcErrorResponse);
    wb.U64(id2);
    wb.U16(static_cast<uint16_t>(StatusCode::kOverloaded));
    CXLPOOL_CHECK_OK(co_await e.Send(busy));
    co_await sim::Delay(loop, 60 * kMicrosecond);  // outlive call 1's wait
    std::vector<std::byte> late;
    wire::Writer wl(&late);
    wl.U8(kRpcWireVersion);
    wl.U8(kRpcResponse);
    wl.U64(id1);
    wl.U16(1);
    CXLPOOL_CHECK_OK(co_await e.Send(late));
    std::vector<std::byte> f3;
    CXLPOOL_CHECK_OK(co_await e.Recv(&f3, loop.now() + kMillisecond));
    std::vector<std::byte> ok;
    wire::Writer wo(&ok);
    wo.U8(kRpcWireVersion);
    wo.U8(kRpcResponse);
    wo.U64(RequestCallId(f3));
    wo.U16(1);
    wo.Bytes(Msg("fresh"));
    CXLPOOL_CHECK_OK(co_await e.Send(ok));
  };

  RpcClient::Options opts;
  opts.max_inflight = 4;
  RpcClient client(c.end_a(), opts);
  StatusCode code1 = StatusCode::kOk;
  StatusCode code2 = StatusCode::kOk;
  auto call1 = [&code1](RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    auto r = co_await cl.Call(1, Msg("slow"), loop.now() + 30 * kMicrosecond);
    code1 = r.ok() ? StatusCode::kOk : r.status().code();
  };
  auto call2 = [&code2](RpcClient& cl, sim::EventLoop& loop) -> Task<> {
    auto r = co_await cl.Call(1, Msg("busy"), loop.now() + kMillisecond);
    code2 = r.ok() ? StatusCode::kOk : r.status().code();
  };
  Spawn(call1(client, loop_));
  Spawn(call2(client, loop_));
  Spawn(responder(c.end_b(), loop_));
  loop_.RunFor(200 * kMicrosecond);
  EXPECT_EQ(code1, StatusCode::kDeadlineExceeded);  // expired mid-flight
  EXPECT_EQ(code2, StatusCode::kOverloaded);        // refused mid-flight
  EXPECT_EQ(client.stats().expired_in_flight, 1u);
  EXPECT_EQ(client.stats().stale_responses, 0u);  // late frame still queued

  // The next call's pump drains the late response first: counted stale,
  // never misdelivered, and the fresh call still completes.
  auto call3 = [](RpcClient& cl, sim::EventLoop& loop) -> Task<std::string> {
    auto r = co_await cl.Call(1, Msg("again"), loop.now() + kMillisecond);
    CXLPOOL_CHECK(r.ok());
    co_return AsString(*r);
  };
  EXPECT_EQ(RunBlocking(loop_, call3(client, loop_)), "fresh");
  EXPECT_EQ(client.stats().stale_responses, 1u);
  EXPECT_EQ(client.inflight(), 0u);
}

// --- Fault plane: directed partitions, asymmetric and lossy links ---

TEST(FaultPlaneTest, DirectedCutAndPartitionBookkeeping) {
  netsim::FaultPlane plane(1);
  EXPECT_FALSE(plane.active());
  EXPECT_EQ(plane.Judge(HostId(0), HostId(1)).verdict,
            netsim::FaultPlane::Verdict::kDeliver);

  plane.Cut(HostId(0), HostId(1));
  EXPECT_TRUE(plane.active());
  EXPECT_TRUE(plane.IsCut(HostId(0), HostId(1)));
  EXPECT_FALSE(plane.IsCut(HostId(1), HostId(0)));  // directed
  EXPECT_EQ(plane.Judge(HostId(0), HostId(1)).verdict,
            netsim::FaultPlane::Verdict::kDrop);
  EXPECT_EQ(plane.Judge(HostId(1), HostId(0)).verdict,
            netsim::FaultPlane::Verdict::kDeliver);
  plane.Heal(HostId(0), HostId(1));
  EXPECT_FALSE(plane.active());  // clean edges are garbage-collected

  const HostId a[] = {HostId(0), HostId(1)};
  const HostId b[] = {HostId(2)};
  plane.Partition(a, b);
  EXPECT_TRUE(plane.IsCut(HostId(0), HostId(2)));
  EXPECT_TRUE(plane.IsCut(HostId(2), HostId(0)));
  EXPECT_TRUE(plane.IsCut(HostId(1), HostId(2)));
  EXPECT_FALSE(plane.IsCut(HostId(0), HostId(1)));  // same side untouched
  plane.HealPartition(a, b);
  EXPECT_FALSE(plane.active());
  EXPECT_GE(plane.stats().cuts, 5u);
  EXPECT_GE(plane.stats().heals, 5u);
}

TEST(FaultPlaneTest, LossyVerdictsAreSeedDeterministic) {
  netsim::FaultPlane::LinkState lossy;
  lossy.drop_p = 0.3;
  lossy.dup_p = 0.2;
  lossy.delay_p = 0.2;
  lossy.delay_min = 5 * kMicrosecond;
  lossy.delay_max = 40 * kMicrosecond;

  auto run = [&lossy](uint64_t seed) {
    netsim::FaultPlane plane(seed);
    plane.SetLossy(HostId(0), HostId(1), lossy);
    std::vector<std::pair<int, Nanos>> fates;
    for (int i = 0; i < 500; ++i) {
      auto fate = plane.Judge(HostId(0), HostId(1));
      fates.emplace_back(static_cast<int>(fate.verdict), fate.delay);
    }
    return fates;
  };
  auto first = run(42);
  EXPECT_EQ(first, run(42));   // same seed, same storm
  EXPECT_NE(first, run(43));   // different seed, different storm

  // All four verdicts occurred and delays stay inside the window.
  std::set<int> seen;
  for (const auto& [v, d] : first) {
    seen.insert(v);
    if (v == static_cast<int>(netsim::FaultPlane::Verdict::kDelay)) {
      EXPECT_GE(d, 5 * kMicrosecond);
      EXPECT_LE(d, 40 * kMicrosecond);
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST_F(MsgTest, RingCutDropsFramesUntilHealed) {
  netsim::FaultPlane plane(7);
  RingConfig rc = MakeRing();
  rc.fault_plane = &plane;
  rc.src_host = HostId(0);
  rc.dst_host = HostId(1);
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  plane.Cut(HostId(0), HostId(1));
  auto send_recv = [](RingSender& s, RingReceiver& r,
                      sim::EventLoop& loop) -> Task<Status> {
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("gone")));
    std::vector<std::byte> got;
    co_return co_await r.Recv(&got, loop.now() + 100 * kMicrosecond);
  };
  // The send itself succeeds (posted into the ring); the receiver's
  // consume-then-judge path eats the frame.
  EXPECT_EQ(RunBlocking(loop_, send_recv(tx, rx, loop_)).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rx.stats().faults_dropped, 1u);

  plane.Heal(HostId(0), HostId(1));
  auto ok_path = [](RingSender& s, RingReceiver& r,
                    sim::EventLoop& loop) -> Task<std::string> {
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("back")));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return AsString(got);
  };
  EXPECT_EQ(RunBlocking(loop_, ok_path(tx, rx, loop_)), "back");
}

TEST_F(MsgTest, RingDuplicateDeliversFrameTwice) {
  netsim::FaultPlane plane(7);
  RingConfig rc = MakeRing();
  rc.fault_plane = &plane;
  rc.src_host = HostId(0);
  rc.dst_host = HostId(1);
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  netsim::FaultPlane::LinkState dup_always;
  dup_always.dup_p = 1.0;
  plane.SetLossy(HostId(0), HostId(1), dup_always);

  auto t = [](RingSender& s, RingReceiver& r,
              sim::EventLoop& loop) -> Task<std::pair<std::string, std::string>> {
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("echo")));
    std::vector<std::byte> a, b;
    CXLPOOL_CHECK_OK(co_await r.Recv(&a, loop.now() + kMillisecond));
    CXLPOOL_CHECK_OK(co_await r.Recv(&b, loop.now() + kMillisecond));
    co_return std::make_pair(AsString(a), AsString(b));
  };
  auto [a, b] = RunBlocking(loop_, t(tx, rx, loop_));
  EXPECT_EQ(a, "echo");
  EXPECT_EQ(b, "echo");
  EXPECT_EQ(rx.stats().faults_duplicated, 1u);
}

TEST_F(MsgTest, RingDelayHoldsFrameForConfiguredWindow) {
  netsim::FaultPlane plane(7);
  RingConfig rc = MakeRing();
  rc.fault_plane = &plane;
  rc.src_host = HostId(0);
  rc.dst_host = HostId(1);
  RingSender tx(pod_.host(0), rc);
  RingReceiver rx(pod_.host(1), rc);

  netsim::FaultPlane::LinkState delay_always;
  delay_always.delay_p = 1.0;
  delay_always.delay_min = 30 * kMicrosecond;
  delay_always.delay_max = 30 * kMicrosecond;
  plane.SetLossy(HostId(0), HostId(1), delay_always);

  auto t = [](RingSender& s, RingReceiver& r,
              sim::EventLoop& loop) -> Task<Nanos> {
    Nanos sent_at = loop.now();
    CXLPOOL_CHECK_OK(co_await s.Send(Msg("late")));
    std::vector<std::byte> got;
    CXLPOOL_CHECK_OK(co_await r.Recv(&got, loop.now() + kMillisecond));
    co_return loop.now() - sent_at;
  };
  Nanos elapsed = RunBlocking(loop_, t(tx, rx, loop_));
  EXPECT_GE(elapsed, 30 * kMicrosecond);
  EXPECT_EQ(rx.stats().faults_delayed, 1u);
}

// A storm of seeded garbage frames — random lengths, random bytes, and
// truncated-but-versioned runts — must never kill the serve loop or reach
// the handler; a well-formed call afterwards still lands.
TEST_F(MsgTest, RpcServerSurvivesGarbageFrameStorm) {
  auto ch = Channel::Create(pod_.pool(), pod_.host(0), pod_.host(1));
  ASSERT_TRUE(ch.ok());
  Channel& c = **ch;
  sim::StopToken stop;
  int handler_calls = 0;
  RpcServer server(c.end_b(),
                   [&handler_calls](uint16_t, std::span<const std::byte> req)
                       -> Task<Result<std::vector<std::byte>>> {
                     ++handler_calls;
                     co_return std::vector<std::byte>(req.begin(), req.end());
                   });
  Spawn(server.Serve(stop));

  auto storm = [](Endpoint& e) -> Task<> {
    sim::Rng rng(0xBADF00D);
    for (int i = 0; i < 64; ++i) {
      std::vector<std::byte> frame(
          static_cast<size_t>(rng.UniformInt(1, 48)));
      for (std::byte& byt : frame) {
        byt = static_cast<std::byte>(rng.NextU32() & 0xff);
      }
      if (i % 4 == 0) {
        frame[0] = std::byte{kRpcWireVersion};  // versioned runt/garbage
      }
      CXLPOOL_CHECK_OK(co_await e.Send(frame));
    }
    co_return;
  };
  RunBlocking(loop_, storm(c.end_a()));
  loop_.RunFor(200 * kMicrosecond);
  EXPECT_EQ(handler_calls, 0);

  RpcClient client(c.end_a());
  auto call = [](RpcClient& cl, sim::EventLoop& loop) -> Task<bool> {
    auto r = co_await cl.Call(1, Msg("still-alive"), loop.now() + kMillisecond);
    co_return r.ok();
  };
  EXPECT_TRUE(RunBlocking(loop_, call(client, loop_)));
  EXPECT_EQ(handler_calls, 1);
  stop.Stop();
  loop_.RunFor(100 * kMicrosecond);
}

}  // namespace
}  // namespace cxlpool::msg
