// E1 / Figure 2: percentages of stranded CPU cores, memory capacity, SSD
// storage, and NIC bandwidth under per-host provisioning.
//
// Paper (Azure production data): SSD and NIC are the two most stranded
// resources, 54% and 29% stranded on average; CPU and memory are far
// lower. This harness packs a synthetic Azure-like VM mix onto a cluster
// of hosts until full and reports the stranding distribution.
#include <cstdio>

#include "src/stranding/experiment.h"

using namespace cxlpool;
using namespace cxlpool::strand;

int main() {
  std::printf("=== Figure 2: stranded resources under per-host provisioning ===\n");
  std::printf("cluster: 96 hosts x (96 cores, 384 GiB DRAM, 4 TiB SSD, 100 Gbps NIC)\n");
  std::printf("workload: synthetic heterogeneous VM mix (see DefaultVmCatalog), "
              "30 perturbed trials\n\n");

  ExperimentConfig config;
  config.cluster = PooledSsdNicConfig(/*num_hosts=*/96, /*pod_size=*/1);
  config.trials = 30;
  config.seed = 42;

  TrialSeries series = RunTrials(config);

  std::printf("%-8s %10s %8s %8s %8s   %s\n", "resource", "mean%", "p10%", "p50%",
              "p90%", "paper (mean)");
  const char* paper[] = {"low (not quantified)", "low (not quantified)", "54%", "29%"};
  for (int r = 0; r < kResourceCount; ++r) {
    std::printf("%-8s %9.1f%% %7.1f%% %7.1f%% %7.1f%%   %s\n",
                std::string(ResourceName(static_cast<Resource>(r))).c_str(),
                series.stranded[r].mean() * 100,
                series.Percentile(static_cast<Resource>(r), 0.10) * 100,
                series.Percentile(static_cast<Resource>(r), 0.50) * 100,
                series.Percentile(static_cast<Resource>(r), 0.90) * 100, paper[r]);
  }
  std::printf("\nmean VMs placed per trial: %.0f\n", series.mean_vms_placed);
  std::printf("expected shape: SSD >> NIC >> cores > memory (memory binds)\n");
  return 0;
}
