// KV serving soak: the pooled memcached-style node (src/kv) under
// open-loop zipfian load and chaos, end to end on the CXL-pool datapath —
// client UDP stacks and server rings in pool memory, values in pool
// buffers, the cold tail spilled to a pooled SSD and hydrated back on hit.
//
// Topology: four hosts on one pod. Host 1 and host 2 each run a KV server
// (pooled NIC + value BufferPool + pooled SSD cold tier); host 3 drives
// server A, host 0 drives server B, disjoint key namespaces. Phases:
//
//   calibrate  — an offered-rate ladder per client; peak = the highest
//                rung that still meets goodput and p99 criteria.
//   steady     — both clients at 90% of peak; p99 must hold the SLO at
//                >= 90% of the offered goodput.
//   chaos      — one fault phase + one recovery phase per class:
//                  host-crash  : server B's host crashes; repair reboots
//                                the host and cold-restarts the server
//                                process (fresh index — the documented
//                                lost-acked-SET carve-out).
//                  nic-wedge   : server A's physical NIC wedges (gray:
//                                MMIO stalls); recovery is a device Reset
//                                (the modeled watchdog FLR) plus a stack
//                                migration onto a fresh MMIO path.
//                  lossy-link  : the client A <-> server A fabric path
//                                drops/dups/delays frames, then heals.
//                                delay_max stays well under op_deadline so
//                                the client's per-key single-inflight rule
//                                keeps SET ordering intact.
//                  poison-line : lines under server A's value buffers are
//                                poisoned under full load; the store's
//                                scrub/GET paths drop + heal (the
//                                poisoned-media carve-out), and leftover
//                                lines under free buffers are cleared
//                                administratively at repair (page
//                                retirement — those lines held no data).
//                The unaffected client must hold its p99 through every
//                fault phase (cross-server isolation), the affected one
//                must re-enter SLO in the recovery phase, and repair ->
//                first-served-OK is bounded per class.
//   audit      — closed-loop VerifyAckedSets per client: zero lost acked
//                SETs modulo the two carve-outs (restart => missing_old
//                behind exempt_before; poison => missing_recent bounded
//                by the store's poison_dropped_keys budget).
//
// Reproducibility: the whole soak runs twice with one seed — once with
// full observability (registry + tracing + flight recorder), once bare —
// and both runs must produce an identical phase/audit digest and event
// count (tracing purity).
//
// `--short` is the CI gate: same phases, same assertions, reduced
// horizon. `--faults=<comma-list>` keeps only the named chaos classes
// (host-crash, nic-wedge, lossy-link, poison-line). `--json=<path>`
// snapshots the registry (kv.*, kvload.*, soak.*) after the instrumented
// run.
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/core/virtual_ssd.h"
#include "src/kv/loadgen.h"
#include "src/kv/node.h"
#include "src/kv/store.h"
#include "src/netsim/fault_plane.h"
#include "src/obs/obs.h"
#include "src/sim/task.h"
#include "src/stack/buffer_pool.h"
#include "src/stack/udp.h"

using namespace cxlpool;
using namespace cxlpool::core;
using kv::AuditResult;
using kv::LoadGen;
using kv::LoadGenConfig;
using kv::PhaseStats;
using sim::Spawn;
using sim::Task;
using stack::BufferPool;
using stack::Placement;
using stack::UdpStack;

namespace {

// --- topology ---
constexpr int kHostClientB = 0;
constexpr int kHostServerA = 1;
constexpr int kHostServerB = 2;
constexpr int kHostClientA = 3;
constexpr uint16_t kPort = 11211;
constexpr uint32_t kValueBuffers = 192;   // per server; forces SSD overflow
constexpr uint32_t kBufBytes = 2048;
constexpr uint64_t kSsdCapacity = 4 * kMiB;

// --- SLOs (asserted; the printed table shows the measured values) ---
constexpr Nanos kSteadyP99Slo = 120 * kMicrosecond;
// The unaffected client during another server's fault phase.
constexpr Nanos kIsolationP99Slo = 140 * kMicrosecond;
// Structural tail bound for any recorded RTT: op_deadline plus the
// sweeper's grace and cadence. A response slower than this was abandoned.
constexpr Nanos kP999Bound = 450 * kMicrosecond;
// Repair (or restart) to first served-OK response, per chaos class.
constexpr Nanos kRecoveryBound = 4 * kMillisecond;

LoadGenConfig LgConfig(bool short_mode) {
  LoadGenConfig c;
  c.keys = short_mode ? 512 : 1024;
  c.zipf_theta = 0.99;
  c.get_fraction = 0.88;
  c.delete_fraction = 0.02;
  c.value_bytes_min = 64;
  c.value_bytes_max = 1024;
  c.connections = 4;
  c.pipeline_depth = 32;
  c.max_outstanding = 256;
  c.op_deadline = 300 * kMicrosecond;
  c.seed = 0x5EED;
  return c;
}

kv::NodeConfig NodeCfg() {
  kv::NodeConfig c;
  c.port = kPort;
  c.workers = 2;
  c.max_inflight = 96;
  return c;
}

kv::StoreConfig StoreCfg() {
  kv::StoreConfig c;
  c.shards = 8;
  c.free_low_water = 8;
  c.scrub_interval = 500 * kMicrosecond;
  return c;
}

struct Endpoint {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;   // stack TX/RX buffers
  std::unique_ptr<UdpStack> stack;
  // Server endpoints get their own token so a process restart can stop
  // the old stack's IO loop (two stacks must never drive one NIC's
  // rings); clients run on the rack-wide token and this stays null.
  std::unique_ptr<sim::StopToken> stop;
};

// Builds a pooled-NIC UDP endpoint. After a host crash the orchestrator
// fences the dead host's devices until the lease TTL expires, so device
// acquisition is retried — the restarting "process" spins on boot until
// its hardware is grantable again.
Task<> MakeEndpoint(Rack* rack, HostId host, Endpoint* out,
                    sim::StopToken* stack_stop) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = true;  // the pooled-NIC datapath is the experiment
  for (int attempt = 0;; ++attempt) {
    auto handle = co_await rack->CreateVirtualNic(host, vc);
    if (handle.ok()) {
      out->nic = std::move(*handle);
      break;
    }
    CXLPOOL_CHECK(attempt < 64);
    co_await sim::Delay(rack->loop(), 100 * kMicrosecond);
  }
  auto pool = BufferPool::Create(rack->pod().host(host), Placement::kCxlPool,
                                 256, kBufBytes);
  CXLPOOL_CHECK_OK(pool.status());
  out->pool = std::move(*pool);
  out->stack = std::make_unique<UdpStack>(rack->pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, UdpStack::Config{});
  CXLPOOL_CHECK_OK(co_await out->stack->Start(*stack_stop));
}

// One KV server: pooled NIC endpoint + value pool + SSD cold tier + store
// + node. Restarts park the old generation instead of destroying it —
// suspended coroutines (drained workers, a last scrub tick) may still
// reference it until teardown.
struct Server {
  HostId host{0};
  Endpoint ep;
  Orchestrator::Assignment ssd_assign;
  std::unique_ptr<VirtualSsd> ssd;
  std::unique_ptr<BufferPool> values;
  std::unique_ptr<kv::Store> store;
  std::unique_ptr<kv::KvNode> node;
  std::unique_ptr<sim::StopToken> stop;
  std::vector<std::unique_ptr<BufferPool>> retired_pools;
  std::vector<std::unique_ptr<kv::Store>> retired_stores;
  std::vector<std::unique_ptr<kv::KvNode>> retired_nodes;
  std::vector<std::unique_ptr<sim::StopToken>> retired_stops;
  std::vector<Endpoint> retired_eps;
  std::vector<std::unique_ptr<VirtualSsd>> retired_ssds;

  // Lost-acked-SET audit budget: keys dropped to poisoned media across
  // every generation of this server.
  uint64_t PoisonBudget() const {
    uint64_t n = store != nullptr ? store->poison_dropped_keys() : 0;
    for (const auto& s : retired_stores) {
      n += s->poison_dropped_keys();
    }
    return n;
  }
};

struct Client {
  Endpoint ep;
  std::unique_ptr<LoadGen> gen;
};

struct PhaseRecord {
  std::string phase;
  std::string client;
  PhaseStats stats;
};

struct SoakResult {
  std::vector<PhaseRecord> phases;
  AuditResult audit_a;
  AuditResult audit_b;
  uint64_t poison_budget_a = 0;
  uint64_t poison_budget_b = 0;
  uint64_t acked_a = 0;
  uint64_t acked_b = 0;
  double peak_rate = 0;
  double steady_rate = 0;
  Nanos restart_at = 0;  // server B cold restart (host-crash carve-out)
  std::vector<std::pair<std::string, Nanos>> recovery_ns;  // class -> repair->ok
  uint64_t faults_injected = 0;
  uint64_t executed = 0;
  std::string digest;
};

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

class Soak {
 public:
  Soak(sim::EventLoop& loop, Rack& rack, bool short_mode,
       const std::set<std::string>& classes, obs::Registry* registry,
       bool print)
      : loop_(loop), rack_(rack), short_mode_(short_mode), classes_(classes),
        registry_(registry), print_(print) {}

  Task<> Run();

  SoakResult result;

 private:
  bool ClassOn(const char* cls) const {
    return classes_.empty() || classes_.count(cls) != 0;
  }
  Nanos Dur(Nanos full) const { return short_mode_ ? full / 2 : full; }

  Task<> MakeServer(Server* s, HostId host, const char* tag);
  Task<> AttachSsd(Server* s);
  Task<> StartNode(Server* s, const char* tag);
  Task<> RestartServer(Server* s, const char* tag);
  Task<> RunOne(LoadGen* gen, double rate, Nanos dur, Nanos warmup,
                PhaseStats* out, int* done);
  Task<> RunPair(const std::string& name, double rate_a, double rate_b,
                 Nanos dur, Nanos warmup, PhaseStats* out_a,
                 PhaseStats* out_b);
  // Polls `gen` until it sees an OK newer than `after`; writes the
  // observation time (0 if `until` passes first).
  Task<> WatchRecovery(LoadGen* gen, Nanos after, Nanos until, Nanos* out,
                       int* done);

  void Record(const std::string& phase, const char* client,
              const PhaseStats& s);

  sim::EventLoop& loop_;
  Rack& rack_;
  bool short_mode_;
  std::set<std::string> classes_;
  obs::Registry* registry_;
  bool print_;

  Server server_a_;
  Server server_b_;
  Client client_a_;
  Client client_b_;
  std::string transcript_;
};

Task<> Soak::StartNode(Server* s, const char* tag) {
  s->stop = std::make_unique<sim::StopToken>();
  s->store = std::make_unique<kv::Store>(s->values.get(), s->ssd.get(),
                                         kSsdCapacity, StoreCfg(), registry_,
                                         obs::Labels{{"node", tag}});
  s->node = std::make_unique<kv::KvNode>(s->ep.stack.get(), s->store.get(),
                                         NodeCfg(), registry_,
                                         obs::Labels{{"node", tag}});
  CXLPOOL_CHECK_OK(s->node->Start(*s->stop));
  Spawn(s->store->ScrubLoop(*s->stop));
  co_return;
}

Task<> Soak::AttachSsd(Server* s) {
  for (int attempt = 0;; ++attempt) {
    auto lease = rack_.AcquireDevice(s->host, DeviceType::kSsd);
    if (lease.ok()) {
      s->ssd_assign = lease->assignment;
      auto ssd = co_await VirtualSsd::Create(rack_.pod().host(s->host),
                                             std::move(lease->mmio), {});
      CXLPOOL_CHECK_OK(ssd.status());
      s->ssd = std::move(*ssd);
      co_return;
    }
    CXLPOOL_CHECK(attempt < 64);
    co_await sim::Delay(loop_, 100 * kMicrosecond);
  }
}

Task<> Soak::MakeServer(Server* s, HostId host, const char* tag) {
  s->host = host;
  s->ep.stop = std::make_unique<sim::StopToken>();
  co_await MakeEndpoint(&rack_, host, &s->ep, s->ep.stop.get());
  co_await AttachSsd(s);
  auto values = BufferPool::Create(rack_.pod().host(host), Placement::kCxlPool,
                                   kValueBuffers, kBufBytes);
  CXLPOOL_CHECK_OK(values.status());
  s->values = std::move(*values);
  co_await StartNode(s, tag);
}

// Cold process restart after a host crash. Everything that was process
// state dies: the index, the pool residency map, the SSD slot map, the
// NIC/SSD leases (the orchestrator fenced and revoked them on death
// declaration), and the UDP stack's ring bindings. The restarted process
// re-acquires its devices (spinning until the fence TTL releases them)
// and comes up empty — acked data not re-set afterwards is gone, which is
// exactly the restart carve-out the audit classifies as missing_old.
Task<> Soak::RestartServer(Server* s, const char* tag) {
  s->stop->Stop();      // node workers + scrub loop
  s->ep.stop->Stop();   // stack IO loop: the old vnic must go quiet
  // Workers notice the token after their current Recv poll; in-flight
  // serves run to completion (bounded by the client op deadline).
  while (s->node->inflight() > 0) {
    co_await sim::Delay(loop_, 50 * kMicrosecond);
  }
  co_await sim::Delay(loop_, 3 * NodeCfg().recv_poll);
  // Park the old generation: drained-but-suspended coroutines may still
  // hold pointers into it until teardown.
  s->retired_nodes.push_back(std::move(s->node));
  s->retired_stores.push_back(std::move(s->store));
  s->retired_pools.push_back(std::move(s->values));
  s->retired_stops.push_back(std::move(s->stop));
  s->retired_eps.push_back(std::move(s->ep));
  s->retired_ssds.push_back(std::move(s->ssd));
  // Reboot pause, then bring the process up from nothing. The physical
  // NIC is the same card, so the MAC the clients target is stable.
  co_await sim::Delay(loop_, 500 * kMicrosecond);
  s->ep = Endpoint{};
  s->ep.stop = std::make_unique<sim::StopToken>();
  co_await MakeEndpoint(&rack_, s->host, &s->ep, s->ep.stop.get());
  co_await AttachSsd(s);
  auto values = BufferPool::Create(rack_.pod().host(s->host),
                                   Placement::kCxlPool, kValueBuffers,
                                   kBufBytes);
  CXLPOOL_CHECK_OK(values.status());
  s->values = std::move(*values);
  co_await StartNode(s, tag);
}

Task<> Soak::RunOne(LoadGen* gen, double rate, Nanos dur, Nanos warmup,
                    PhaseStats* out, int* done) {
  *out = co_await gen->RunPhase(rate, dur, warmup);
  ++*done;
}

Task<> Soak::RunPair(const std::string& name, double rate_a, double rate_b,
                     Nanos dur, Nanos warmup, PhaseStats* out_a,
                     PhaseStats* out_b) {
  int done = 0;
  Spawn(RunOne(client_a_.gen.get(), rate_a, dur, warmup, out_a, &done));
  Spawn(RunOne(client_b_.gen.get(), rate_b, dur, warmup, out_b, &done));
  while (done < 2) {
    co_await sim::Delay(loop_, 100 * kMicrosecond);
  }
  Record(name, "a", *out_a);
  Record(name, "b", *out_b);
  // Settle between phases: stragglers and sweeps finish.
  co_await sim::Delay(loop_, 200 * kMicrosecond);
}

Task<> Soak::WatchRecovery(LoadGen* gen, Nanos after, Nanos until, Nanos* out,
                           int* done) {
  while (loop_.now() < until && gen->last_ok_at() <= after) {
    co_await sim::Delay(loop_, 20 * kMicrosecond);
  }
  *out = gen->last_ok_at() > after ? loop_.now() : 0;
  ++*done;
}

void Soak::Record(const std::string& phase, const char* client,
                  const PhaseStats& s) {
  result.phases.push_back({phase, client, s});
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "%s|%s|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%lld|%lld|%lld|%llu;",
      phase.c_str(), client, (unsigned long long)s.sent,
      (unsigned long long)s.ok, (unsigned long long)s.overloaded,
      (unsigned long long)s.expired, (unsigned long long)s.not_found,
      (unsigned long long)s.data_loss, (unsigned long long)s.timeouts,
      (unsigned long long)s.skipped, (unsigned long long)s.rtt.count(),
      (long long)s.rtt.Percentile(0.50), (long long)s.rtt.Percentile(0.99),
      (long long)s.rtt.Percentile(0.999),
      (unsigned long long)(s.goodput_ops + 0.5));
  transcript_ += buf;
  if (print_) {
    std::printf(
        "  %-18s %s: sent %6llu ok %6llu to %4llu skip %4llu ovl %4llu "
        "exp %4llu  p50 %6lld  p99 %6lld  p999 %6lld  goodput %8.0f/s\n",
        phase.c_str(), client, (unsigned long long)s.sent,
        (unsigned long long)s.ok, (unsigned long long)s.timeouts,
        (unsigned long long)s.skipped, (unsigned long long)s.overloaded,
        (unsigned long long)s.expired, (long long)s.rtt.Percentile(0.50),
        (long long)s.rtt.Percentile(0.99),
        (long long)s.rtt.Percentile(0.999), s.goodput_ops);
  }
}

Task<> Soak::Run() {
  co_await MakeServer(&server_a_, HostId(kHostServerA), "a");
  co_await MakeServer(&server_b_, HostId(kHostServerB), "b");

  co_await MakeEndpoint(&rack_, HostId(kHostClientA), &client_a_.ep,
                        &rack_.stop_token());
  co_await MakeEndpoint(&rack_, HostId(kHostClientB), &client_b_.ep,
                        &rack_.stop_token());
  client_a_.gen = std::make_unique<LoadGen>(
      client_a_.ep.stack.get(), server_a_.ep.nic.mac, kPort, /*client_id=*/1,
      LgConfig(short_mode_), registry_, obs::Labels{{"client", "a"}});
  client_b_.gen = std::make_unique<LoadGen>(
      client_b_.ep.stack.get(), server_b_.ep.nic.mac, kPort, /*client_id=*/2,
      LgConfig(short_mode_), registry_, obs::Labels{{"client", "b"}});
  CXLPOOL_CHECK_OK(client_a_.gen->Start(rack_.stop_token()));
  CXLPOOL_CHECK_OK(client_b_.gen->Start(rack_.stop_token()));

  PhaseStats a, b;

  // --- calibrate: offered-rate ladder, peak = highest healthy rung ---
  const double kLadder[] = {40e3, 80e3, 120e3};
  double peak = kLadder[0];
  for (double rate : kLadder) {
    char name[32];
    std::snprintf(name, sizeof name, "calibrate-%.0fk", rate / 1e3);
    co_await RunPair(name, rate, rate, Dur(6 * kMillisecond),
                     Dur(2 * kMillisecond), &a, &b);
    bool healthy = a.goodput_ops >= 0.85 * rate && b.goodput_ops >= 0.85 * rate &&
                   a.rtt.Percentile(0.99) <= kSteadyP99Slo &&
                   b.rtt.Percentile(0.99) <= kSteadyP99Slo;
    if (healthy) {
      peak = rate;
    }
  }
  result.peak_rate = peak;
  const double steady = 0.9 * peak;
  result.steady_rate = steady;
  if (print_) {
    std::printf("  peak %.0f ops/s per client -> steady offered %.0f ops/s\n",
                peak, steady);
  }

  // --- steady: hold the SLO at >= 90% of peak goodput ---
  co_await RunPair("steady", steady, steady, Dur(16 * kMillisecond),
                   Dur(3 * kMillisecond), &a, &b);
  CXLPOOL_CHECK(a.goodput_ops >= 0.90 * steady);
  CXLPOOL_CHECK(b.goodput_ops >= 0.90 * steady);
  CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kSteadyP99Slo);
  CXLPOOL_CHECK(b.rtt.Percentile(0.99) <= kSteadyP99Slo);
  CXLPOOL_CHECK(a.rtt.Percentile(0.999) <= kP999Bound);
  CXLPOOL_CHECK(b.rtt.Percentile(0.999) <= kP999Bound);
  const double steady_goodput_a = a.goodput_ops;
  const double steady_goodput_b = b.goodput_ops;

  const Nanos fault_dur = Dur(10 * kMillisecond);
  const Nanos fault_warm = Dur(2 * kMillisecond);

  // --- chaos: host-crash on server B, cold restart on repair ---
  if (ClassOn("host-crash")) {
    ++result.faults_injected;
    rack_.pod().FailHost(HostId(kHostServerB));
    co_await RunPair("crash-b.fault", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    // The crashed server answers nothing; the unaffected client holds SLO.
    CXLPOOL_CHECK(b.timeouts + b.skipped > 0);
    CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kIsolationP99Slo);
    CXLPOOL_CHECK(a.rtt.Percentile(0.999) <= kP999Bound);
    rack_.pod().RepairHost(HostId(kHostServerB));
    co_await RestartServer(&server_b_, "b");
    result.restart_at = loop_.now();
    Nanos repaired_at = loop_.now();
    Nanos recovered_at = 0;
    int watch_done = 0;
    Spawn(WatchRecovery(client_b_.gen.get(), repaired_at,
                        repaired_at + fault_dur, &recovered_at, &watch_done));
    co_await RunPair("crash-b.recover", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    while (watch_done < 1) {
      co_await sim::Delay(loop_, 20 * kMicrosecond);
    }
    CXLPOOL_CHECK(recovered_at > 0);
    CXLPOOL_CHECK(recovered_at - repaired_at <= kRecoveryBound);
    result.recovery_ns.emplace_back("host-crash", recovered_at - repaired_at);
    CXLPOOL_CHECK(b.rtt.Percentile(0.99) <= kSteadyP99Slo);
    CXLPOOL_CHECK(b.goodput_ops >= 0.85 * steady_goodput_b);
  }

  // --- chaos: wedged NIC under server A; watchdog-style FLR + stack
  // migration onto a fresh MMIO path ---
  if (ClassOn("nic-wedge")) {
    ++result.faults_injected;
    PcieDeviceId dev = server_a_.ep.nic.assignment.device;
    rack_.nic(dev)->Wedge();
    co_await RunPair("wedge-a.fault", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    CXLPOOL_CHECK(a.timeouts + a.skipped > 0);
    CXLPOOL_CHECK(b.rtt.Percentile(0.99) <= kIsolationP99Slo);
    CXLPOOL_CHECK(b.rtt.Percentile(0.999) <= kP999Bound);
    rack_.nic(dev)->Reset();  // the modeled watchdog FLR
    auto path = rack_.orchestrator().MakeMmioPath(HostId(kHostServerA), dev);
    CXLPOOL_CHECK_OK(path.status());
    CXLPOOL_CHECK_OK(
        co_await server_a_.ep.stack->HandleMigration(std::move(*path)));
    Nanos repaired_at = loop_.now();
    Nanos recovered_at = 0;
    int watch_done = 0;
    Spawn(WatchRecovery(client_a_.gen.get(), repaired_at,
                        repaired_at + fault_dur, &recovered_at, &watch_done));
    co_await RunPair("wedge-a.recover", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    while (watch_done < 1) {
      co_await sim::Delay(loop_, 20 * kMicrosecond);
    }
    CXLPOOL_CHECK(recovered_at > 0);
    CXLPOOL_CHECK(recovered_at - repaired_at <= kRecoveryBound);
    result.recovery_ns.emplace_back("nic-wedge", recovered_at - repaired_at);
    CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kSteadyP99Slo);
    CXLPOOL_CHECK(a.goodput_ops >= 0.85 * steady_goodput_a);
  }

  // --- chaos: lossy client A <-> server A path ---
  if (ClassOn("lossy-link")) {
    ++result.faults_injected;
    netsim::FaultPlane::LinkState lossy;
    lossy.drop_p = 0.05;
    lossy.dup_p = 0.05;
    lossy.delay_p = 0.20;
    lossy.delay_min = 5 * kMicrosecond;
    // Well under op_deadline: a delayed duplicate of a timed-out SET
    // cannot land after the client has already issued the next version.
    lossy.delay_max = 40 * kMicrosecond;
    netsim::FaultPlane& plane = rack_.pod().fault_plane();
    plane.SetLossy(HostId(kHostClientA), HostId(kHostServerA), lossy);
    plane.SetLossy(HostId(kHostServerA), HostId(kHostClientA), lossy);
    co_await RunPair("lossy-a.fault", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    // Degraded but alive: drops surface as client timeouts, never as
    // corruption; the other pair of hosts is untouched.
    CXLPOOL_CHECK(a.ok > 0);
    CXLPOOL_CHECK(a.timeouts > 0);
    CXLPOOL_CHECK(a.rtt.Percentile(0.999) <= kP999Bound);
    CXLPOOL_CHECK(b.rtt.Percentile(0.99) <= kIsolationP99Slo);
    plane.Heal(HostId(kHostClientA), HostId(kHostServerA));
    plane.Heal(HostId(kHostServerA), HostId(kHostClientA));
    Nanos repaired_at = loop_.now();
    Nanos recovered_at = 0;
    int watch_done = 0;
    Spawn(WatchRecovery(client_a_.gen.get(), repaired_at,
                        repaired_at + fault_dur, &recovered_at, &watch_done));
    co_await RunPair("lossy-a.recover", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    while (watch_done < 1) {
      co_await sim::Delay(loop_, 20 * kMicrosecond);
    }
    CXLPOOL_CHECK(recovered_at > 0);
    CXLPOOL_CHECK(recovered_at - repaired_at <= kRecoveryBound);
    result.recovery_ns.emplace_back("lossy-link", recovered_at - repaired_at);
    CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kSteadyP99Slo);
    CXLPOOL_CHECK(a.goodput_ops >= 0.85 * steady_goodput_a);
  }

  // --- chaos: poisoned lines under server A's value pool, full load ---
  if (ClassOn("poison-line")) {
    ++result.faults_injected;
    // First line of every value buffer — a whole-DIMM scare, not a single
    // flipped cell. Which buffers hold values at any instant is workload-
    // dependent, so blanketing the pool guarantees resident values are hit:
    // those trip the next scrub pass (or the next GET) and get dropped into
    // the poisoned-media budget. Poison under *free* buffers is harmless by
    // construction: values are >= 64 bytes, so the first line of any new
    // allocation is fully rewritten and the full-line commit clears it.
    std::vector<uint64_t> poisoned;
    uint64_t base = server_a_.values->base();
    uint64_t bsz = server_a_.values->buffer_size();
    for (uint32_t i = 0; i < kValueBuffers; ++i) {
      uint64_t addr = base + i * bsz;
      rack_.pod().PoisonLine(addr);
      poisoned.push_back(addr);
    }
    co_await RunPair("poison-a.fault", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    // The store's scrub/GET machinery must have caught at least one line
    // (the pool runs near-full, so most poisoned buffers held values).
    CXLPOOL_CHECK(server_a_.PoisonBudget() >= 1);
    CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kIsolationP99Slo);
    CXLPOOL_CHECK(b.rtt.Percentile(0.99) <= kIsolationP99Slo);
    // Repair closure (page retirement): lines still poisoned sat under
    // free buffers — no data above them — or were re-poisoned between a
    // write's issue and its commit. Clear them administratively.
    for (uint64_t addr : poisoned) {
      rack_.pod().ClearPoison(addr);
    }
    co_await RunPair("poison-a.recover", steady, steady, fault_dur, fault_warm,
                     &a, &b);
    result.recovery_ns.emplace_back("poison-line", 0);
    CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kSteadyP99Slo);
    CXLPOOL_CHECK(a.goodput_ops >= 0.85 * steady_goodput_a);
  }

  // --- final steady + closed-loop audit ---
  co_await RunPair("final", steady, steady, Dur(10 * kMillisecond),
                   Dur(2 * kMillisecond), &a, &b);
  CXLPOOL_CHECK(a.rtt.Percentile(0.99) <= kSteadyP99Slo);
  CXLPOOL_CHECK(b.rtt.Percentile(0.99) <= kSteadyP99Slo);

  result.audit_a = co_await client_a_.gen->VerifyAckedSets(/*exempt_before=*/0);
  result.audit_b = co_await client_b_.gen->VerifyAckedSets(result.restart_at);
  result.poison_budget_a = server_a_.PoisonBudget();
  result.poison_budget_b = server_b_.PoisonBudget();
  result.acked_a = client_a_.gen->acked_sets();
  result.acked_b = client_b_.gen->acked_sets();

  // Zero lost acked SETs, modulo the two documented carve-outs:
  //  - server A never restarted: nothing may be missing_old, and
  //    missing_recent is bounded by its poisoned-media drop budget;
  //  - server B cold-restarted once: losses acked before the restart are
  //    the carve-out (missing_old); nothing acked after it may be gone.
  CXLPOOL_CHECK(client_a_.gen->integrity_failures() == 0);
  CXLPOOL_CHECK(client_b_.gen->integrity_failures() == 0);
  CXLPOOL_CHECK(result.audit_a.integrity_failures == 0);
  CXLPOOL_CHECK(result.audit_b.integrity_failures == 0);
  CXLPOOL_CHECK(result.audit_a.unverifiable == 0);
  CXLPOOL_CHECK(result.audit_b.unverifiable == 0);
  CXLPOOL_CHECK(result.audit_a.missing_old == 0);
  CXLPOOL_CHECK(result.audit_a.missing_recent <= result.poison_budget_a);
  CXLPOOL_CHECK(result.audit_b.missing_recent <= result.poison_budget_b);
  if (result.restart_at == 0) {
    CXLPOOL_CHECK(result.audit_b.missing_old == 0);
  }

  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "audit_a|%llu|%llu|%llu|%llu|%llu;audit_b|%llu|%llu|%llu|%llu|%llu;"
      "poison|%llu|%llu;acked|%llu|%llu;",
      (unsigned long long)result.audit_a.checked,
      (unsigned long long)result.audit_a.present_ok,
      (unsigned long long)result.audit_a.missing_recent,
      (unsigned long long)result.audit_a.missing_old,
      (unsigned long long)result.audit_a.unverifiable,
      (unsigned long long)result.audit_b.checked,
      (unsigned long long)result.audit_b.present_ok,
      (unsigned long long)result.audit_b.missing_recent,
      (unsigned long long)result.audit_b.missing_old,
      (unsigned long long)result.audit_b.unverifiable,
      (unsigned long long)result.poison_budget_a,
      (unsigned long long)result.poison_budget_b,
      (unsigned long long)result.acked_a, (unsigned long long)result.acked_b);
  transcript_ += buf;
  result.digest = transcript_;  // hashed by the caller after executed is known
}

SoakResult RunSoak(bool short_mode, const std::set<std::string>& classes,
                   obs::Observability* obs, const std::string& json_path,
                   bool print) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 4;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.ssds_per_host = 1;
  rc.obs = obs;
  Rack rack(loop, rc);
  rack.Start();

  Soak soak(loop, rack, short_mode, classes,
            obs != nullptr ? &obs->metrics() : nullptr, print);
  RunBlocking(loop, soak.Run());

  SoakResult r = std::move(soak.result);
  r.executed = loop.executed();
  char tail[64];
  std::snprintf(tail, sizeof tail, "executed|%llu;",
                (unsigned long long)r.executed);
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                (unsigned long long)Fnv1a(r.digest + tail));
  r.digest = hex;

  if (!json_path.empty() && obs != nullptr) {
    // Fold the soak outcome into the registry so the snapshot is one
    // self-contained document next to the kv.* / kvload.* series.
    obs::Registry& reg = obs->metrics();
    reg.GetGauge("soak.peak_offered_ops")->Set((int64_t)r.peak_rate);
    reg.GetGauge("soak.steady_offered_ops")->Set((int64_t)r.steady_rate);
    reg.GetCounter("soak.faults_injected")->Add(r.faults_injected);
    for (const auto& [cls, ns] : r.recovery_ns) {
      reg.GetHistogram("soak.recovery_ns", {{"class", cls}})->Add(ns);
    }
    for (const PhaseRecord& p : r.phases) {
      obs::Labels labels{{"phase", p.phase}, {"client", p.client}};
      reg.GetCounter("soak.phase_ok", labels)->Add(p.stats.ok);
      reg.GetCounter("soak.phase_timeouts", labels)->Add(p.stats.timeouts);
      reg.GetGauge("soak.phase_p99_ns", labels)
          ->Set(p.stats.rtt.Percentile(0.99));
    }
    reg.GetCounter("soak.audit_checked")->Add(r.audit_a.checked +
                                              r.audit_b.checked);
    reg.GetCounter("soak.audit_present_ok")->Add(r.audit_a.present_ok +
                                                 r.audit_b.present_ok);
    CXLPOOL_CHECK_OK(obs::WriteBenchJson(json_path, "kv_soak", loop.now(), reg));
    if (print) {
      std::printf("metrics snapshot:  %s (%zu series)\n", json_path.c_str(),
                  reg.series_count());
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path;
  std::set<std::string> classes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      std::string list = argv[i] + 9;
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        if (comma > pos) {
          classes.insert(list.substr(pos, comma - pos));
        }
        pos = comma + 1;
      }
    }
  }
  std::printf("=== kv soak: pooled memcached vs open-loop zipf + chaos%s ===\n\n",
              short_mode ? " (short)" : "");

  // First run: full observability — registry metrics, tracing, and the
  // flight recorder wired to CHECK failures.
  obs::Observability obs;
  obs.InstallCheckHook();
  SoakResult first = RunSoak(short_mode, classes, &obs, json_path, true);

  std::printf("\naudit A: checked %llu present %llu missing_recent %llu "
              "missing_old %llu unverifiable %llu (poison budget %llu)\n",
              (unsigned long long)first.audit_a.checked,
              (unsigned long long)first.audit_a.present_ok,
              (unsigned long long)first.audit_a.missing_recent,
              (unsigned long long)first.audit_a.missing_old,
              (unsigned long long)first.audit_a.unverifiable,
              (unsigned long long)first.poison_budget_a);
  std::printf("audit B: checked %llu present %llu missing_recent %llu "
              "missing_old %llu unverifiable %llu (restart carve-out at "
              "%llu ns)\n",
              (unsigned long long)first.audit_b.checked,
              (unsigned long long)first.audit_b.present_ok,
              (unsigned long long)first.audit_b.missing_recent,
              (unsigned long long)first.audit_b.missing_old,
              (unsigned long long)first.audit_b.unverifiable,
              (unsigned long long)first.restart_at);
  for (const auto& [cls, ns] : first.recovery_ns) {
    std::printf("recovery[%-11s] repair -> first OK: %lld ns\n", cls.c_str(),
                (long long)ns);
  }

  // Second run: same seed, observability off. Identical digests prove
  // reproducibility and tracing purity at once.
  std::printf("\nre-running the identical seed with observability off...\n");
  SoakResult second = RunSoak(short_mode, classes, nullptr, "", false);
  CXLPOOL_CHECK(first.digest == second.digest);
  CXLPOOL_CHECK(first.executed == second.executed);
  std::printf("reproducibility:   OK — identical phase/audit digest %s and "
              "event count (%llu) with tracing on and off\n",
              first.digest.c_str(), (unsigned long long)first.executed);
  std::printf("\nkv soak: PASS\n");
  return 0;
}
