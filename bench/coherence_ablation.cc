// E12: software coherence ablation. Today's CXL pools have no cross-host
// hardware coherence (paper Sec. 3), so the datapath must (a) publish with
// non-temporal stores or explicit flushes and (b) self-invalidate before
// consuming. This bench shows what each piece costs and what breaks
// without it.
#include <cstdio>

#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/msg/wire.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::cxl;
using sim::RunBlocking;
using sim::Task;

namespace {

// Publishing cost per message size: nt-store vs cached store + flush.
Task<> PublishCosts(CxlPod& pod, sim::EventLoop& loop) {
  auto seg = pod.pool().Allocate(64 * kKiB);
  CXLPOOL_CHECK_OK(seg.status());
  HostAdapter& h = pod.host(0);

  std::printf("%10s | %14s | %14s\n", "size", "nt-store", "store + flush");
  for (size_t size : {64, 256, 1024, 4096}) {
    std::vector<std::byte> data(size, std::byte{0x5f});
    Nanos t0 = loop.now();
    CXLPOOL_CHECK_OK(co_await h.StoreNt(seg->base, data));
    Nanos nt_cost = loop.now() - t0;

    t0 = loop.now();
    CXLPOOL_CHECK_OK(co_await h.Store(seg->base + 32 * kKiB, data));
    CXLPOOL_CHECK_OK(co_await h.Flush(seg->base + 32 * kKiB, size));
    Nanos flush_cost = loop.now() - t0;
    std::printf("%8zu B | %11lld ns | %11lld ns\n", size,
                static_cast<long long>(nt_cost),
                static_cast<long long>(flush_cost));
  }
  std::printf("(nt-store is posted: the CPU moves on after draining its WC "
              "buffer,\n while store+flush pays the RFO read AND a blocking "
              "writeback)\n\n");
}

// Consuming: invalidate+load vs plain (possibly stale) load.
Task<> ConsumeCosts(CxlPod& pod, sim::EventLoop& loop) {
  auto seg = pod.pool().Allocate(8 * kKiB);
  CXLPOOL_CHECK_OK(seg.status());
  HostAdapter& reader = pod.host(1);
  std::array<std::byte, 64> buf;

  // Warm the reader's cache.
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
  Nanos t0 = loop.now();
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
  Nanos cached = loop.now() - t0;

  t0 = loop.now();
  CXLPOOL_CHECK_OK(co_await reader.Invalidate(seg->base, 64));
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
  Nanos fresh = loop.now() - t0;

  std::printf("consume one line: cached load %lld ns (STALE-PRONE) vs "
              "invalidate+load %lld ns (fresh)\n\n",
              static_cast<long long>(cached), static_cast<long long>(fresh));
}

// What actually breaks: a flag written without the protocol is never
// observed by the other host; with it, it is.
Task<> CorrectnessDemo(CxlPod& pod, sim::EventLoop& loop) {
  auto seg = pod.pool().Allocate(4 * kKiB);
  CXLPOOL_CHECK_OK(seg.status());
  HostAdapter& writer = pod.host(0);
  HostAdapter& reader = pod.host(1);
  std::array<std::byte, 8> buf{};

  // Reader caches the line first (a poll loop would).
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));

  // Case 1: cached store, no flush; reader polls WITHOUT invalidation.
  std::array<std::byte, 8> flag{};
  msg::wire::PutU64(flag.data(), 1);
  CXLPOOL_CHECK_OK(co_await writer.Store(seg->base, flag));
  int polls = 0;
  uint64_t seen = 0;
  for (; polls < 1000 && seen == 0; ++polls) {
    CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
    seen = msg::wire::GetU64(buf.data());
    co_await sim::Delay(loop, 100);
  }
  std::printf("no protocol (cached store + cached poll): flag %s after %d polls "
              "(100 us)\n", seen ? "SEEN" : "NEVER seen", polls);

  // Case 2: the paper's protocol.
  msg::wire::PutU64(flag.data(), 2);
  CXLPOOL_CHECK_OK(co_await writer.StoreNt(seg->base, flag));
  polls = 0;
  seen = 0;
  for (; polls < 1000 && seen != 2; ++polls) {
    CXLPOOL_CHECK_OK(co_await reader.Invalidate(seg->base, 8));
    CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
    seen = msg::wire::GetU64(buf.data());
    if (seen != 2) {
      co_await sim::Delay(loop, 100);
    }
  }
  std::printf("paper protocol (nt-store + invalidate/load poll): flag seen after "
              "%d polls (~%lld ns)\n\n", polls, static_cast<long long>(loop.now()));
}

}  // namespace

// What CXL 3.0 Back-Invalidate would buy (paper Sec. 3: "Neither CPUs nor
// CXL memory pool devices support BI today"): consumers keep plain cached
// polls (3 ns) and the hardware snoops copies away on writes, for a snoop
// charge on the writer.
Task<> BackInvalidatePreview(sim::EventLoop& loop) {
  CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  CxlPod pod(loop, pc);
  pod.pool().set_back_invalidate(true);
  auto seg = pod.pool().Allocate(4 * kKiB);
  CXLPOOL_CHECK_OK(seg.status());
  HostAdapter& writer = pod.host(0);
  HostAdapter& reader = pod.host(1);

  // Reader warms its cache; polls are plain cached loads from here on.
  std::array<std::byte, 8> buf{};
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
  Nanos t0 = loop.now();
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));
  Nanos poll_cost = loop.now() - t0;

  t0 = loop.now();
  std::array<std::byte, 8> flag{};
  msg::wire::PutU64(flag.data(), 1);
  CXLPOOL_CHECK_OK(co_await writer.StoreNt(seg->base, flag));
  Nanos write_cost = loop.now() - t0;

  co_await sim::Delay(loop, kMicrosecond);
  CXLPOOL_CHECK_OK(co_await reader.Load(seg->base, buf));  // plain load!
  bool fresh = msg::wire::GetU64(buf.data()) == 1;

  std::printf("CXL 3.0 Back-Invalidate preview (hypothetical hardware):\n");
  std::printf("  reader poll: %lld ns cached load (vs %d ns invalidate+load "
              "under sw coherence)\n",
              static_cast<long long>(poll_cost), 285);
  std::printf("  writer nt-store with 1 sharer: %lld ns (includes the BI "
              "snoop round)\n", static_cast<long long>(write_cost));
  std::printf("  plain cached poll after write: %s (hardware invalidated the "
              "copy)\n\n", fresh ? "FRESH" : "stale");
}

int main() {
  std::printf("=== Software coherence ablation (paper Secs. 3-4.1) ===\n\n");
  sim::EventLoop loop;
  CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  CxlPod pod(loop, pc);

  RunBlocking(loop, PublishCosts(pod, loop));
  RunBlocking(loop, ConsumeCosts(pod, loop));
  RunBlocking(loop, CorrectnessDemo(pod, loop));
  RunBlocking(loop, BackInvalidatePreview(loop));

  // This bench deliberately breaks the protocol exactly once: case 1 of the
  // correctness demo leaves a dirty cached flag that the case-2 nt-store
  // destroys. Pin the count so the hazard stays demonstrated — and stays
  // contained to that one line.
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 1);

  std::printf("takeaway: correctness across hosts requires exactly the paper's\n"
              "two primitives; their cost is a few hundred ns per touch, which\n"
              "the datapath hides behind DMA and doorbell latency (Fig. 3).\n"
              "BI hardware would shift that cost from pollers to writers —\n"
              "but it does not exist yet, which is why the paper's design is\n"
              "deployable today and BI is only this ablation.\n");
  return 0;
}
