// E11: the incumbent vs the proposal on the same task — a host using a
// REMOTE pooled SSD for 4 KiB random reads and 128 KiB streaming reads.
//
//   PCIe switch:  SSD bound to the host through the switch; DMA lands in
//                 host-local DRAM (+2 hops latency, crossbar bandwidth).
//   CXL pool:     SSD stays on its home host; queues and data buffers live
//                 in pool memory; doorbells forwarded over the CXL channel.
//
// The paper's point is not that the switch is slow (it is a little faster)
// but that its price and rigidity are untenable — also shown: the
// device-class restriction and the dollars.
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/pcie/switch_fabric.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/tco/tco.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Task;

namespace {

constexpr int kRandomReads = 300;
constexpr uint32_t kStreamBlocks = 256;  // x 512 B sectors in 128 KiB chunks

Task<> RandomReads(VirtualSsd& ssd, sim::EventLoop& loop, uint64_t buf,
                   sim::Histogram& lat) {
  sim::Rng rng(5);
  for (int i = 0; i < kRandomReads; ++i) {
    uint64_t lba = rng.UniformInt(uint64_t{8192}) * 8;
    Nanos start = loop.now();
    auto st = co_await ssd.ReadBlocks(lba, 8, buf, loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == devices::kSsdStatusOk);
    lat.Add(loop.now() - start);
  }
}

Task<double> StreamRead(VirtualSsd& ssd, sim::EventLoop& loop, uint64_t buf) {
  Nanos start = loop.now();
  uint64_t bytes = 0;
  for (uint32_t i = 0; i < kStreamBlocks; ++i) {
    auto st = co_await ssd.ReadBlocks(i * 256, 256, buf, loop.now() + kSecond);
    CXLPOOL_CHECK(st.ok() && *st == devices::kSsdStatusOk);
    bytes += 256 * devices::kSsdSectorSize;
  }
  co_return static_cast<double>(bytes) / static_cast<double>(loop.now() - start);
}

}  // namespace

int main() {
  std::printf("=== Remote SSD datapath: hardware PCIe switch vs CXL pool ===\n\n");

  devices::SsdConfig ssd_config;
  ssd_config.capacity_bytes = 64 * kMiB;
  ssd_config.channels = 8;

  // --- PCIe switch path ---
  sim::Histogram sw_lat;
  double sw_gbps = 0;
  {
    sim::EventLoop loop;
    RackConfig rc;
    rc.pod.num_hosts = 2;
    rc.pod.mhd_capacity = 32 * kMiB;
    rc.pod.dram_per_host = 16 * kMiB;
    Rack rack(loop, rc);
    rack.Start();

    pcie::PcieSwitchFabric fabric(loop, pcie::PcieSwitchConfig{});
    devices::Ssd ssd(PcieDeviceId(500), "pooled-ssd", loop, ssd_config);
    CXLPOOL_CHECK_OK(fabric.AttachHost(&rack.pod().host(1)));
    CXLPOOL_CHECK_OK(fabric.AttachDevice(&ssd, pcie::DeviceClass::kStorage));
    CXLPOOL_CHECK_OK(fabric.Bind(ssd.id(), HostId(1)));

    // Through the switch the SSD behaves as locally attached to host 1.
    VirtualSsd::Config vc;
    vc.rings_in_cxl = false;
    auto vssd = RunBlocking(
        loop, VirtualSsd::Create(rack.pod().host(1),
                                 std::make_unique<LocalMmioPath>(&ssd), vc));
    CXLPOOL_CHECK_OK(vssd.status());
    auto buf = rack.pod().host(1).AllocateDram(256 * kKiB);
    CXLPOOL_CHECK_OK(buf.status());
    RunBlocking(loop, RandomReads(**vssd, loop, *buf, sw_lat));
    sw_gbps = RunBlocking(loop, StreamRead(**vssd, loop, *buf));
    rack.Shutdown();
    loop.RunFor(kMillisecond);
    CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  }

  // --- CXL pool path ---
  sim::Histogram cxl_lat;
  double cxl_gbps = 0;
  {
    sim::EventLoop loop;
    RackConfig rc;
    rc.pod.num_hosts = 2;
    rc.pod.mhd_capacity = 64 * kMiB;
    rc.pod.dram_per_host = 16 * kMiB;
    rc.ssds_per_host = 0;
    Rack rack(loop, rc);
    devices::Ssd ssd(PcieDeviceId(500), "pooled-ssd", loop, ssd_config);
    ssd.AttachTo(&rack.pod().host(0));  // home host 0; user is host 1
    rack.orchestrator().RegisterDevice(HostId(0), &ssd, DeviceType::kSsd);
    rack.Start();

    auto path = rack.orchestrator().MakeMmioPath(HostId(1), ssd.id());
    CXLPOOL_CHECK_OK(path.status());
    VirtualSsd::Config vc;
    vc.rings_in_cxl = true;
    auto vssd = RunBlocking(
        loop, VirtualSsd::Create(rack.pod().host(1), std::move(*path), vc));
    CXLPOOL_CHECK_OK(vssd.status());
    auto seg = rack.pod().pool().Allocate(256 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());
    RunBlocking(loop, RandomReads(**vssd, loop, seg->base, cxl_lat));
    cxl_gbps = RunBlocking(loop, StreamRead(**vssd, loop, seg->base));
    rack.Shutdown();
    loop.RunFor(kMillisecond);
    CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  }

  std::printf("%-28s %14s %14s\n", "", "PCIe switch", "CXL pool");
  std::printf("%-28s %11.1f us %11.1f us\n", "4 KiB random read p50",
              sw_lat.Percentile(0.5) / 1000.0, cxl_lat.Percentile(0.5) / 1000.0);
  std::printf("%-28s %11.1f us %11.1f us\n", "4 KiB random read p99",
              sw_lat.Percentile(0.99) / 1000.0, cxl_lat.Percentile(0.99) / 1000.0);
  std::printf("%-28s %11.2f GB/s %9.2f GB/s\n", "128 KiB streaming read",
              sw_gbps, cxl_gbps);

  // Flexibility: a storage-only pooling appliance refuses a NIC (the
  // vendor-constraint problem, paper Sec. 1).
  sim::EventLoop loop2;
  pcie::PcieSwitchConfig storage_only;
  storage_only.supported = pcie::DeviceClass::kStorage;
  pcie::PcieSwitchFabric storage_fabric(loop2, storage_only);
  devices::Nic nic(PcieDeviceId(7), "nic", loop2, devices::NicConfig{});
  Status st = storage_fabric.AttachDevice(&nic, pcie::DeviceClass::kNic);
  std::printf("\nflexibility: attaching a NIC to a storage-pooling appliance -> %s\n",
              st.ToString().c_str());
  std::printf("the CXL-pool datapath has no device-class restriction (same pool\n"
              "memory + forwarding channel serve NICs, SSDs, accelerators).\n\n");

  tco::TcoReport tco = tco::ComputeTco(tco::CostInputs{}, 0.54, 0.19, 0.29, 0.10);
  std::printf("cost recap: switch infra $%.0f vs CXL infra (net of memory-pooling "
              "savings) $%.0f\n", tco.pcie_switch_infra,
              tco.cxl_infra_net_of_memory_savings);
  std::printf("\nexpected shape: the switch is modestly faster on flash-bound ops "
              "(sub-10%%\ndeltas vs ~100 us flash latency) — the argument against "
              "it is cost and rigidity.\n");
  return 0;
}
