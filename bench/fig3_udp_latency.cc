// E3 / Figure 3: latency-throughput of a UDP echo service over 100 Gbps
// NICs, with the server's TX/RX buffers allocated either from local DDR5
// (solid lines in the paper) or from the CXL memory pool (dotted lines).
//
// Paper: the two placements are nearly indistinguishable — latency
// overhead within ~5% and identical maximum throughput (buffer placement
// is not the bottleneck; see EXPERIMENTS.md for the absolute-throughput
// caveat of the single-dispatcher stack model).
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/obs/registry.h"
#include "src/sim/task.h"
#include "src/stack/loadgen.h"
#include "src/stack/udp.h"

using namespace cxlpool;
using namespace cxlpool::stack;
using core::Rack;
using core::RackConfig;
using core::VirtualNic;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

namespace {

struct Node {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> MakeNode(Rack& rack, HostId host, Placement buffers, int workers,
                uint32_t buffer_count, Node* out) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = false;  // paper config: only the I/O buffers move
  vc.tx_entries = 1024;
  vc.rx_entries = 1024;
  vc.rx_doorbell_batch = 8;
  auto handle = co_await rack.CreateVirtualNic(host, vc);
  CXLPOOL_CHECK(handle.ok());
  out->nic = std::move(*handle);
  auto pool = BufferPool::Create(rack.pod().host(host), buffers, buffer_count, 2048);
  CXLPOOL_CHECK(pool.ok());
  out->pool = std::move(*pool);
  UdpStack::Config sc;
  sc.rx_buffers = 256;
  sc.worker_cores = workers;
  out->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, sc);
  CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
}

// One echo responder; the server spawns several on the same socket so
// replies are produced concurrently (Junction runs the app on every
// worker kthread).
Task<> EchoServer(UdpSocket* sock, sim::EventLoop& loop, sim::StopToken& stop) {
  while (!stop.stopped()) {
    auto d = co_await sock->Recv(loop.now() + 50 * kMicrosecond);
    if (d.ok()) {
      (void)co_await sock->SendTo(d->src_mac, d->src_port, d->payload);
    }
  }
}

struct Point {
  double offered_mpps;
  double achieved_gbps;
  int64_t p50;
  int64_t p99;
};

std::string FormatMpps(double mpps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", mpps);
  return buf;
}

// Every point records into the shared bench registry under
// {placement, payload_b, offered_mpps} labels; the table below and the
// --json snapshot both read from the same series.
Point RunPoint(Placement server_buffers, uint32_t payload, double offered_pps,
               obs::Registry& registry, int64_t* total_sim_ns) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 48 * kMiB;
  Rack rack(loop, rc);
  rack.Start();

  Node server;
  Node client;
  RunBlocking(loop, MakeNode(rack, HostId(0), server_buffers, /*workers=*/8,
                             /*buffer_count=*/2048, &server));
  RunBlocking(loop, MakeNode(rack, HostId(1), Placement::kLocalDram,
                             /*workers=*/8, /*buffer_count=*/2048, &client));
  auto* srv_sock = server.stack->Bind(7).value();
  auto* cli_sock = client.stack->Bind(9).value();
  for (int i = 0; i < 8; ++i) {
    Spawn(EchoServer(srv_sock, loop, rack.stop_token()));
  }

  LoadGenConfig lg;
  lg.offered_pps = offered_pps;
  lg.payload_bytes = payload;
  lg.duration = 15 * kMillisecond;
  lg.warmup = 3 * kMillisecond;
  obs::Labels labels = {
      {"placement", server_buffers == Placement::kCxlPool ? "cxl" : "local"},
      {"payload_b", std::to_string(payload)},
      {"offered_mpps", FormatMpps(offered_pps / 1e6)}};
  RunBlocking(loop,
              RunUdpLoad(cli_sock, server.stack->mac(), 7, lg, registry, labels));
  rack.Shutdown();
  loop.RunFor(500 * kMicrosecond);
  *total_sim_ns += loop.now();
  // Latency must not come from skipped write-backs: any unpublished dirty
  // line silently destroyed would mean the datapath cheated the protocol.
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);

  Point p;
  p.offered_mpps = offered_pps / 1e6;
  p.achieved_gbps =
      static_cast<double>(registry.GetGauge("udp.achieved_mbps", labels)->value()) /
      1000.0;
  const sim::Histogram* rtt = registry.FindHistogram("udp.rtt_ns", labels);
  p.p50 = rtt->Percentile(0.50);
  p.p99 = rtt->Percentile(0.99);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--short] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Figure 3: UDP echo latency-throughput, server buffers in\n");
  std::printf("    local DDR5 (solid) vs CXL pool (dotted); 100 Gbps NICs ===\n");

  std::vector<uint32_t> payloads = {64, 512, 1472};
  std::vector<double> loads_mpps = {0.25, 0.75, 1.5, 2.25, 3.0, 4.0};
  if (short_mode) {
    // CI snapshot mode: one payload, three regimes (light / knee / saturated).
    payloads = {512};
    loads_mpps = {0.75, 2.25, 4.0};
  }

  obs::Registry registry;
  int64_t total_sim_ns = 0;
  for (uint32_t payload : payloads) {
    std::printf("\n--- payload %u B ---\n", payload);
    std::printf("%12s | %21s | %21s\n", "", "local DDR5 (solid)",
                "CXL pool (dotted)");
    std::printf("%12s | %7s %6s %6s | %7s %6s %6s\n", "offered", "Gbps",
                "p50us", "p99us", "Gbps", "p50us", "p99us");
    for (double mpps : loads_mpps) {
      Point local = RunPoint(Placement::kLocalDram, payload, mpps * 1e6,
                             registry, &total_sim_ns);
      Point cxl = RunPoint(Placement::kCxlPool, payload, mpps * 1e6, registry,
                           &total_sim_ns);
      std::printf("%9.2f M | %7.2f %6.1f %6.1f | %7.2f %6.1f %6.1f\n", mpps,
                  local.achieved_gbps, local.p50 / 1000.0, local.p99 / 1000.0,
                  cxl.achieved_gbps, cxl.p50 / 1000.0, cxl.p99 / 1000.0);
    }
  }
  if (!json_path.empty()) {
    CXLPOOL_CHECK_OK(
        obs::WriteBenchJson(json_path, "fig3_udp_latency", total_sim_ns, registry));
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf("\nexpected shape: curves overlap (<~5%% latency gap at moderate\n"
              "load) and both placements saturate at the same throughput.\n");
  return 0;
}
