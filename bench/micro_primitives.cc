// Micro-benchmarks (google-benchmark) of the simulator's hot primitives:
// wall-clock throughput of the event loop, coroutine scheduling, the HDR
// histogram, the write-back cache model, and the shared-memory ring.
// These bound how big an experiment the harness can run per CPU-second.
#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/mem/cache.h"
#include "src/msg/ring.h"
#include "src/sim/event_loop.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;

namespace {

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      loop.Schedule(i, [&sink] { ++sink; });
    }
    loop.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    auto chain = [](sim::EventLoop& l) -> sim::Task<int> {
      int acc = 0;
      for (int i = 0; i < 256; ++i) {
        co_await sim::Delay(l, 10);
        ++acc;
      }
      co_return acc;
    };
    benchmark::DoNotOptimize(sim::RunBlocking(loop, chain(loop)));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_HistogramAdd(benchmark::State& state) {
  sim::Histogram h;
  sim::Rng rng(3);
  for (auto _ : state) {
    h.Add(static_cast<int64_t>(rng.UniformInt(uint64_t{1000000})));
  }
  benchmark::DoNotOptimize(h.Percentile(0.5));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void BM_CacheFindInstall(benchmark::State& state) {
  mem::WriteBackCache cache(4096);
  std::array<std::byte, kCachelineSize> line{};
  sim::Rng rng(4);
  for (auto _ : state) {
    uint64_t addr = rng.UniformInt(uint64_t{8192}) * kCachelineSize;
    if (cache.Find(addr) == nullptr) {
      cache.Install(addr, line.data(), false);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheFindInstall);

void BM_RingMessageRoundTrip(benchmark::State& state) {
  // Full simulated send+recv per iteration (the Figure 4 unit of work).
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  cxl::CxlPod pod(loop, pc);
  auto seg = pod.pool().Allocate(msg::RingFootprint(64));
  CXLPOOL_CHECK_OK(seg.status());
  msg::RingConfig rc;
  rc.base = seg->base;
  rc.slots = 64;
  msg::RingSender tx(pod.host(0), rc);
  msg::RingReceiver rx(pod.host(1), rc);
  std::vector<std::byte> payload(16, std::byte{1});

  for (auto _ : state) {
    auto once = [](msg::RingSender& s, msg::RingReceiver& r, sim::EventLoop& l,
                   std::span<const std::byte> p) -> sim::Task<> {
      // This micro-bench measures the raw SPSC ring, not the endpoint stack.
      CXLPOOL_CHECK_OK(co_await s.Send(p));  // lint-tasks: allow(direct-ring-send)
      std::vector<std::byte> got;
      CXLPOOL_CHECK_OK(co_await r.Recv(&got, l.now() + kMillisecond));
    };
    sim::RunBlocking(loop, once(tx, rx, loop, payload));
  }
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingMessageRoundTrip);

void BM_PoolAllocateRoute(benchmark::State& state) {
  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 1;
  pc.num_mhds = 2;
  pc.mhd_capacity = 512 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  cxl::CxlPod pod(loop, pc);
  auto seg = pod.pool().Allocate(1 * kMiB);
  CXLPOOL_CHECK_OK(seg.status());
  sim::Rng rng(9);
  for (auto _ : state) {
    uint64_t addr = seg->base + rng.UniformInt(seg->size);
    benchmark::DoNotOptimize(pod.pool().RouteAddress(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocateRoute);

}  // namespace

BENCHMARK_MAIN();
