// E6 / §2.2+§4.2: NIC failover through the pool. A server's NIC link dies;
// the host's agent detects it over MMIO, reports over the CXL channel, the
// orchestrator migrates the lease to a healthy NIC on another host, the
// stack rebinds (rings stay in pool memory — the replacement NIC simply
// DMAs the same addresses), and the server's MAC moves to the new port.
//
// Reported: end-to-end service outage seen by a client pinging throughout,
// plus the control-plane timeline.
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/task.h"
#include "src/stack/udp.h"

using namespace cxlpool;
using namespace cxlpool::core;
using namespace cxlpool::stack;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

namespace {

struct Node {
  Rack::VirtualNicHandle nic;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<UdpStack> stack;
};

Task<> MakeNode(Rack& rack, HostId host, Node* out) {
  VirtualNic::Config vc;
  vc.rings_in_cxl = true;  // required for failover: rings must outlive the NIC
  vc.rx_doorbell_batch = 4;
  auto handle = co_await rack.CreateVirtualNic(host, vc);
  CXLPOOL_CHECK(handle.ok());
  out->nic = std::move(*handle);
  auto pool = BufferPool::Create(rack.pod().host(host), Placement::kCxlPool, 512, 2048);
  CXLPOOL_CHECK(pool.ok());
  out->pool = std::move(*pool);
  UdpStack::Config sc;
  sc.rx_buffers = 128;
  out->stack = std::make_unique<UdpStack>(rack.pod().host(host),
                                          out->nic.vnic.get(), out->pool.get(),
                                          out->nic.mac, sc);
  CXLPOOL_CHECK_OK(co_await out->stack->Start(rack.stop_token()));
}

Task<> EchoServer(UdpSocket* sock, sim::EventLoop& loop, sim::StopToken& stop) {
  while (!stop.stopped()) {
    auto d = co_await sock->Recv(loop.now() + 20 * kMicrosecond);
    if (d.ok()) {
      (void)co_await sock->SendTo(d->src_mac, d->src_port, d->payload);
    }
  }
}

// Pings every 10 us; records the arrival time of every response.
Task<> Prober(UdpSocket* sock, netsim::MacAddr dst, sim::EventLoop& loop,
              std::vector<Nanos>& responses, sim::StopToken& stop) {
  std::vector<std::byte> payload(64, std::byte{1});
  uint64_t in_flight = 0;
  Spawn([](UdpSocket* s, sim::EventLoop& l, std::vector<Nanos>& out,
           sim::StopToken& st, uint64_t& inflight) -> Task<> {
    while (!st.stopped()) {
      auto d = co_await s->Recv(l.now() + 20 * kMicrosecond);
      if (d.ok()) {
        out.push_back(l.now());
        if (inflight > 0) {
          --inflight;
        }
      }
    }
  }(sock, loop, responses, stop, in_flight));
  while (!stop.stopped()) {
    if (in_flight < 256) {
      Status st = co_await sock->SendTo(dst, 7, payload);
      if (st.ok()) {
        ++in_flight;
      }
    }
    co_await sim::Delay(loop, 10 * kMicrosecond);
  }
}

}  // namespace

int main() {
  std::printf("=== NIC failover via the pooling orchestrator ===\n\n");

  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 3;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  Rack rack(loop, rc);
  rack.Start();

  Node server;
  Node client;
  RunBlocking(loop, MakeNode(rack, HostId(1), &server));  // uses local NIC 1
  RunBlocking(loop, MakeNode(rack, HostId(2), &client));
  CXLPOOL_CHECK(server.nic.assignment.device == PcieDeviceId(1));
  netsim::MacAddr server_mac = server.nic.mac;

  auto* srv_sock = server.stack->Bind(7).value();
  auto* cli_sock = client.stack->Bind(9).value();
  Spawn(EchoServer(srv_sock, loop, rack.stop_token()));

  // Wire the migration handler: rebind the stack to the replacement NIC
  // and take the server MAC over to the new port.
  Nanos migration_done = -1;
  PcieDeviceId new_device;
  rack.orchestrator().agent(HostId(1))->SetMigrationHandler(
      [rack = &rack, srv = &server, server_mac, loop = &loop,
       new_device = &new_device, migration_done = &migration_done](
          PcieDeviceId old_dev, PcieDeviceId new_dev, HostId) -> Task<> {
        auto path = rack->orchestrator().MakeMmioPath(HostId(1), new_dev);
        CXLPOOL_CHECK_OK(path.status());
        CXLPOOL_CHECK_OK(co_await srv->stack->HandleMigration(std::move(*path)));
        // MAC takeover: the server address moves to the replacement port.
        devices::Nic* old_nic = rack->nic(old_dev);
        devices::Nic* new_nic = rack->nic(new_dev);
        old_nic->DisconnectNetwork();
        CXLPOOL_CHECK_OK(rack->network().Attach(server_mac, new_nic));
        *new_device = new_dev;
        *migration_done = loop->now();
      });

  std::vector<Nanos> responses;
  Spawn(Prober(cli_sock, server_mac, loop, responses, rack.stop_token()));

  // Let traffic flow, then kill the server NIC's wire.
  Nanos fail_at = 2 * kMillisecond;
  loop.RunUntil(fail_at);
  rack.nic(1)->InjectLinkFailure();
  std::printf("t=%-8lld ns  NIC 1 link DOWN (server traffic blackholed)\n",
              static_cast<long long>(fail_at));
  loop.RunUntil(fail_at + 5 * kMillisecond);
  rack.Shutdown();
  loop.RunFor(kMillisecond);

  // Outage seen by the client: the longest gap in the response stream
  // around the failure (a few in-flight replies still land right after the
  // wire dies; they do not mean the service is up).
  CXLPOOL_CHECK(migration_done > 0);
  Nanos gap_start = 0;
  Nanos gap_end = 0;
  Nanos prev = 0;
  for (Nanos t : responses) {
    if (t > fail_at + 5 * kMillisecond) {
      break;
    }
    if (t - prev > gap_end - gap_start && prev >= fail_at - kMillisecond) {
      gap_start = prev;
      gap_end = t;
    }
    prev = t;
  }

  std::printf("t=%-8lld ns  orchestrator migration complete (lease now on "
              "device %u, host %u)\n",
              static_cast<long long>(migration_done), new_device.value(),
              rack.orchestrator().record(new_device)->home.value());
  std::printf("t=%-8lld ns  responses flowing again through the replacement "
              "NIC\n\n", static_cast<long long>(gap_end));
  std::printf("detection + migration latency: %.1f us (agent MMIO health poll "
              "+ CXL channel report + migrate RPC + rebind/repost)\n",
              (migration_done - fail_at) / 1000.0);
  std::printf("end-to-end service outage:     %.1f us (longest client-side "
              "response gap)\n", (gap_end - gap_start) / 1000.0);
  std::printf("responses received: %zu; failovers executed: %llu\n",
              responses.size(),
              static_cast<unsigned long long>(rack.orchestrator().stats().failovers));
  std::printf("\npaper context (Sec. 2.2): without pooling, a NIC failure makes "
              "the server\nunreachable until repair — hours, not tens of "
              "microseconds.\n");
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return 0;
}
