// Overload soak: drives the forwarded-MMIO path open-loop from 0.5x to 10x
// its saturation rate and proves the backpressure stack holds the line:
//
//   * goodput stays flat (within 10% of peak) instead of collapsing under
//     queueing + timeout + retry amplification;
//   * control-plane probes (wire priority 0) riding the SAME channel as the
//     data storm never miss a deadline — overload must not look like a
//     wedged device to the watchdog/liveness machinery;
//   * retries stay within the token-bucket budget fraction;
//   * the per-device circuit breaker never opens: budget expiry under
//     overload is not device failure.
//
// A final phase injects a slow-draining home agent (InjectSlowDrain — the
// chaos "overload-drain" fault class in bench form) to push queueing onto
// the server side and exercise the CoDel shed / expired-at-dequeue /
// pre-BAR-expiry refusal chain, again with zero control-plane misses.
//
// Everything runs on the seeded sim clock: same build, same numbers.
// `--short` shrinks phase length for CI; `--json <path>` writes the BENCH
// metrics snapshot.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/obs/obs.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Task;

namespace {

constexpr PcieDeviceId kDev{99};
constexpr uint64_t kReg = 0x8;
// Per-op end-to-end budget stamped into the wire (absolute deadline).
constexpr Nanos kOpBudget = 50 * kMicrosecond;
// Control prober: cadence and per-probe budget.
constexpr Nanos kProbeEvery = 20 * kMicrosecond;
constexpr Nanos kProbeBudget = 100 * kMicrosecond;
// Injected handler stall for the slow-drain phase.
constexpr Nanos kDrainStall = 30 * kMicrosecond;

class DoorbellDevice : public pcie::PcieDevice {
 public:
  DoorbellDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "doorbell", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override {
    regs_[reg % 16] = value;
  }
  uint64_t OnMmioRead(uint64_t reg) override { return regs_[reg % 16]; }

 private:
  uint64_t regs_[16] = {};
};

struct PhaseResult {
  const char* name = "";
  double factor = 0.0;
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;  // kOverloaded: queue reject / shed / breaker
  uint64_t expired = 0;     // kDeadlineExceeded: budget elapsed somewhere
  uint64_t other = 0;
  sim::Histogram latency;  // successful ops only
};

struct ProbeResult {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t deadline_misses = 0;
  uint64_t other = 0;
  sim::Histogram latency;
  bool done = false;
};

Task<> OneOp(MmioPath& path, sim::EventLoop& loop, PhaseResult& ph,
             Nanos budget = kOpBudget) {
  Nanos start = loop.now();
  Status st = co_await path.Write(kReg, static_cast<uint64_t>(start), {},
                                  start + budget);
  if (st.ok()) {
    ++ph.ok;
    ph.latency.Add(loop.now() - start);
  } else if (st.code() == StatusCode::kOverloaded) {
    ++ph.overloaded;
  } else if (st.code() == StatusCode::kDeadlineExceeded) {
    ++ph.expired;
  } else {
    ++ph.other;
  }
}

// Open-loop generator: ops arrive on a fixed gap regardless of completions
// — the arrival process a saturated datapath actually faces.
Task<> Storm(MmioPath& path, sim::EventLoop& loop, PhaseResult& ph, Nanos gap,
             Nanos duration) {
  Nanos end = loop.now() + duration;
  while (loop.now() < end) {
    ++ph.offered;
    sim::Spawn(OneOp(path, loop, ph));
    co_await sim::Delay(loop, gap);
  }
}

// Control-priority register reads over the SAME rpc client the data storm
// saturates. These model watchdog/lease traffic: if one of them misses its
// (generous) deadline, overload has turned into a gray-failure false
// positive — exactly what priority + no-shed-control must prevent.
Task<> ControlProbes(ForwardedMmioPath& path, sim::EventLoop& loop,
                     Nanos until, ProbeResult& pr) {
  uint64_t seq = 0;
  while (loop.now() < until) {
    Nanos start = loop.now();
    auto req = mmio_wire::EncodeRead(kDev, path.epoch(), /*client_id=*/0,
                                     ++seq, kReg);
    auto resp = co_await path.rpc_client().Call(
        kMethodMmioRead, req, start + kProbeBudget, {}, msg::kPriorityControl);
    ++pr.sent;
    if (resp.ok()) {
      ++pr.ok;
      pr.latency.Add(loop.now() - start);
    } else if (resp.status().code() == StatusCode::kDeadlineExceeded) {
      ++pr.deadline_misses;
    } else {
      ++pr.other;
    }
    co_await sim::Delay(loop, kProbeEvery);
  }
  pr.done = true;
}

// Deterministic server-side refusal-chain demonstration, run while the
// agent's handler still stalls kDrainStall. Each round: op A's budget
// (20us) is shorter than the stall, so it passes the dequeue check but
// dies at the pre-BAR re-check without touching the device; op B is sent
// the moment A's budget death frees the client turn — while the server is
// still stalled on A — so B's frame ages out in the ring and is refused
// at dequeue. One expired_at_device and one dequeue-expiry per round.
Task<> RefusalChain(MmioPath& path, sim::EventLoop& loop, PhaseResult& ph) {
  for (int i = 0; i < 8; ++i) {
    ++ph.offered;
    sim::Spawn(OneOp(path, loop, ph, 20 * kMicrosecond));
    co_await sim::Delay(loop, 1 * kMicrosecond);
    ++ph.offered;
    sim::Spawn(OneOp(path, loop, ph, 25 * kMicrosecond));
    co_await sim::Delay(loop, 60 * kMicrosecond);
  }
}

Task<> Calibrate(MmioPath& path, sim::EventLoop& loop, int count,
                 sim::Histogram& hist) {
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await path.Write(kReg, static_cast<uint64_t>(i)));
    hist.Add(loop.now() - start);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool short_run = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--short") == 0) {
      short_run = true;
    }
  }
  const Nanos duration = short_run ? 1 * kMillisecond : 4 * kMillisecond;
  const Nanos settle = 200 * kMicrosecond;

  std::printf("=== Overload soak: open-loop saturation of the forwarded-MMIO "
              "path ===\n\n");

  sim::EventLoop loop;
  obs::Observability obs;
  RackConfig rc;
  rc.pod.num_hosts = 2;
  rc.pod.num_mhds = 1;
  rc.pod.mhd_capacity = 16 * kMiB;
  rc.pod.dram_per_host = 4 * kMiB;
  rc.obs = &obs;
  // The full protection stack, all knobs at their intended-production
  // settings: bounded client queue (reject-new), retry budget, per-agent
  // inflight bound + CoDel (agent defaults), enabled breaker.
  //
  // The queue bound is sized to the deadline budget, not to taste:
  // depth * service_time must stay under kOpBudget or every queued op is
  // already dead when its turn comes and goodput collapses to zero under
  // sustained overload (bufferbloat). 16 * ~2us ~= 32us < 50us.
  rc.orch.mmio_client.max_pending = 16;
  rc.orch.mmio_client.overflow = msg::OverflowPolicy::kRejectNew;
  rc.orch.mmio_retry.max_attempts = 3;
  rc.orch.mmio_retry.budget_ratio = 0.1;
  rc.orch.mmio_retry.budget_burst = 10.0;
  rc.orch.agent.admission.max_inflight = 8;
  rc.orch.breaker.failure_threshold = 5;
  Rack rack(loop, rc);

  DoorbellDevice dev(kDev, loop);
  dev.AttachTo(&rack.pod().host(0));
  rack.orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack.Start();

  auto path = rack.orchestrator().MakeMmioPath(HostId(1), kDev);
  CXLPOOL_CHECK_OK(path.status());
  auto* fwd = static_cast<ForwardedMmioPath*>(path->get());
  Agent* home_agent = rack.orchestrator().agent(HostId(0));
  CXLPOOL_CHECK(home_agent != nullptr);

  // Closed-loop calibration: mean service time of one forwarded doorbell
  // sets the saturation rate every open-loop factor is scaled against.
  sim::Histogram calib;
  RunBlocking(loop, Calibrate(**path, loop, 500, calib));
  Nanos service = std::max<Nanos>(1, static_cast<Nanos>(calib.mean()));
  std::printf("calibration: %llu closed-loop writes, mean %lld ns "
              "(saturation ~%.2f Mop/s)\n\n",
              static_cast<unsigned long long>(calib.count()),
              static_cast<long long>(service), 1000.0 / service);

  const double factors[] = {0.5, 1.0, 2.0, 4.0, 10.0};
  constexpr int kPure = 5;
  PhaseResult phases[kPure + 1];  // + slow-drain phase

  // The control prober runs across every phase, start to finish.
  ProbeResult probes;
  Nanos probe_until = loop.now() + (kPure + 1) * (duration + settle);
  sim::Spawn(ControlProbes(*fwd, loop, probe_until, probes));

  char label[32];
  for (int i = 0; i < kPure; ++i) {
    PhaseResult& ph = phases[i];
    ph.factor = factors[i];
    std::snprintf(label, sizeof(label), "%.1fx", factors[i]);
    ph.name = "open-loop";
    Nanos gap = std::max<Nanos>(
        1, static_cast<Nanos>(static_cast<double>(service) / factors[i]));
    RunBlocking(loop, Storm(**path, loop, ph, gap, duration));
    loop.RunFor(settle);  // drain queued ops into their phase's counters
  }

  // Slow-drain phase: 2x offered load while every forwarded op stalls
  // kDrainStall inside the home agent's handler. Queueing moves to the
  // server side; the refusal chain (expired-at-dequeue, CoDel shed,
  // inflight bound, pre-BAR expiry) must shed dead work there while
  // control probes keep landing.
  {
    PhaseResult& ph = phases[kPure];
    ph.factor = 2.0;
    ph.name = "slow-drain";
    home_agent->InjectSlowDrain(kDrainStall);
    Nanos gap = std::max<Nanos>(
        1, static_cast<Nanos>(static_cast<double>(service) / 2.0));
    RunBlocking(loop, Storm(**path, loop, ph, gap, duration));
    loop.RunFor(settle);  // drain the storm, stall still active
    RunBlocking(loop, RefusalChain(**path, loop, ph));
    home_agent->InjectSlowDrain(0);
    loop.RunFor(settle);
  }
  // Let the prober finish its horizon.
  while (!probes.done) {
    loop.RunFor(settle);
  }

  std::printf("%-11s %7s %9s %9s %11s %9s %8s %8s\n", "phase", "factor",
              "offered", "ok", "overloaded", "expired", "p50ns", "p99ns");
  for (const PhaseResult& ph : phases) {
    std::printf("%-11s %6.1fx %9llu %9llu %11llu %9llu %8lld %8lld\n",
                ph.name, ph.factor,
                static_cast<unsigned long long>(ph.offered),
                static_cast<unsigned long long>(ph.ok),
                static_cast<unsigned long long>(ph.overloaded),
                static_cast<unsigned long long>(ph.expired),
                static_cast<long long>(ph.latency.Percentile(0.5)),
                static_cast<long long>(ph.latency.Percentile(0.99)));
  }

  const msg::RpcClient::Stats& cs = fwd->rpc_client().stats();
  const msg::RetryPolicy::Stats& rs = fwd->retry_stats();
  const Agent::Stats& as = home_agent->stats();
  const msg::AdmissionController::Stats& ad = home_agent->admission().stats();
  msg::CircuitBreaker* breaker = rack.orchestrator().breaker(kDev);
  CXLPOOL_CHECK(breaker != nullptr);
  std::printf("\nclient queue: %llu rejected, %llu dropped-oldest, "
              "%llu expired in queue\n",
              static_cast<unsigned long long>(cs.rejected),
              static_cast<unsigned long long>(cs.dropped_oldest),
              static_cast<unsigned long long>(cs.expired_in_queue));
  std::printf("home agent:   %llu codel sheds, %llu inflight rejects, "
              "%llu expired at dequeue, %llu expired pre-BAR\n",
              static_cast<unsigned long long>(ad.shed),
              static_cast<unsigned long long>(ad.inflight_rejects),
              static_cast<unsigned long long>(home_agent->rpc_expired()),
              static_cast<unsigned long long>(as.expired_at_device));
  std::printf("retries:      %llu calls, %llu retries, %llu budget-denied "
              "(budget bound %.0f)\n",
              static_cast<unsigned long long>(rs.calls),
              static_cast<unsigned long long>(rs.retries),
              static_cast<unsigned long long>(rs.budget_denied),
              0.1 * static_cast<double>(rs.calls) + 10.0);
  std::printf("control:      %llu probes, %llu ok, %llu deadline misses, "
              "p99 %lld ns\n",
              static_cast<unsigned long long>(probes.sent),
              static_cast<unsigned long long>(probes.ok),
              static_cast<unsigned long long>(probes.deadline_misses),
              static_cast<long long>(probes.latency.Percentile(0.99)));
  std::printf("watchdog:     %llu probe misses, %llu FLR resets; breaker "
              "opens %llu\n",
              static_cast<unsigned long long>(as.watchdog_misses),
              static_cast<unsigned long long>(as.flr_resets),
              static_cast<unsigned long long>(breaker->stats().opens));

  // --- The contract ---
  // 1. Goodput at 10x within 10% of peak: overload sheds, never collapses.
  uint64_t peak_ok = 0;
  for (int i = 0; i < kPure; ++i) {
    peak_ok = std::max(peak_ok, phases[i].ok);
  }
  std::printf("\ngoodput: peak %llu ok/phase, at 10x %llu (%.1f%% of peak)\n",
              static_cast<unsigned long long>(peak_ok),
              static_cast<unsigned long long>(phases[kPure - 1].ok),
              100.0 * static_cast<double>(phases[kPure - 1].ok) /
                  static_cast<double>(peak_ok));
  CXLPOOL_CHECK(phases[kPure - 1].ok * 10 >= peak_ok * 9);
  // 2. Zero control-plane deadline misses across the whole storm, and the
  //    watchdog never fired: overload did not masquerade as gray failure.
  CXLPOOL_CHECK(probes.sent > 0);
  CXLPOOL_CHECK(probes.deadline_misses == 0);
  CXLPOOL_CHECK(probes.other == 0);
  CXLPOOL_CHECK(probes.ok == probes.sent);
  CXLPOOL_CHECK(as.watchdog_misses == 0);
  CXLPOOL_CHECK(as.flr_resets == 0);
  // 3. Retry amplification bounded by the token bucket.
  CXLPOOL_CHECK(static_cast<double>(rs.retries) <=
                0.1 * static_cast<double>(rs.calls) + 10.0);
  // 4. Pure overload and slow drain never open the breaker (budget expiry
  //    is not device failure) and never reach quarantine.
  CXLPOOL_CHECK(breaker->stats().opens == 0);
  CXLPOOL_CHECK(breaker->state(loop.now()) ==
                msg::CircuitBreaker::State::kClosed);
  CXLPOOL_CHECK(!rack.orchestrator().InQuarantine(kDev));
  // 5. Backpressure actually engaged at every layer: the bounded queue
  //    refused work under 10x, and the slow-drain refusal chain shed dead
  //    work server-side both at dequeue and at the pre-BAR re-check.
  CXLPOOL_CHECK(cs.rejected + cs.expired_in_queue > 0);
  CXLPOOL_CHECK(home_agent->rpc_expired() >= 4);
  CXLPOOL_CHECK(as.expired_at_device >= 4);
  // 6. No unexplained failures anywhere.
  for (const PhaseResult& ph : phases) {
    CXLPOOL_CHECK(ph.other == 0);
  }

  if (!json_path.empty()) {
    obs::Registry& reg = obs.metrics();
    for (const PhaseResult& ph : phases) {
      std::snprintf(label, sizeof(label), "%.1fx-%s", ph.factor, ph.name);
      obs::Labels l{{"phase", label}};
      reg.GetCounter("overload.offered", l)->Add(ph.offered);
      reg.GetCounter("overload.ok", l)->Add(ph.ok);
      reg.GetCounter("overload.overloaded", l)->Add(ph.overloaded);
      reg.GetCounter("overload.expired", l)->Add(ph.expired);
      reg.GetHistogram("overload.latency_ns", l)->MergeFrom(ph.latency);
    }
    reg.GetCounter("overload.probe_sent")->Add(probes.sent);
    reg.GetCounter("overload.probe_deadline_misses")
        ->Add(probes.deadline_misses);
    reg.GetHistogram("overload.probe_latency_ns")->MergeFrom(probes.latency);
    reg.GetCounter("overload.client_rejected")->Add(cs.rejected);
    reg.GetCounter("overload.client_expired_in_queue")
        ->Add(cs.expired_in_queue);
    reg.GetCounter("overload.agent_shed")
        ->Add(ad.shed + ad.inflight_rejects);
    reg.GetCounter("overload.agent_expired")
        ->Add(home_agent->rpc_expired() + as.expired_at_device);
    reg.GetCounter("overload.breaker_opens")->Add(breaker->stats().opens);
    CXLPOOL_CHECK_OK(
        obs::WriteBenchJson(json_path, "overload_soak", loop.now(), reg));
    std::printf("\nmetrics snapshot:  %s (%zu series)\n", json_path.c_str(),
                reg.series_count());
  }

  std::printf("\nPASS: goodput flat under 10x overload, zero control-plane "
              "misses, retries within budget, breaker closed.\n");

  rack.Shutdown();
  loop.RunFor(500 * kMicrosecond);
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return 0;
}
