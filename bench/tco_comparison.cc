// E5 / §1+§3 cost claims: a realistic PCIe-switch pooling deployment
// "easily reaches $80,000" per rack, while switchless CXL pods cost
// ~$600/host and already pay for themselves via memory pooling — making
// software PCIe pooling essentially free once the pod exists.
//
// The device-capex benefit side is fed by the stranding experiments
// (square-root staffing: the pod provisions less SSD/NIC hardware for the
// same service level).
#include <cstdio>

#include "src/stranding/experiment.h"
#include "src/stranding/staffing.h"
#include "src/tco/tco.h"

using namespace cxlpool;
using namespace cxlpool::strand;
using namespace cxlpool::tco;

int main() {
  std::printf("=== Rack TCO: PCIe-switch pooling vs CXL-pool (software) pooling ===\n\n");

  // Baseline stranding from the Figure 2 simulation, pooled stranding from
  // square-root staffing at pod size 8.
  ExperimentConfig base;
  base.cluster = PooledSsdNicConfig(96, 1);
  base.trials = 10;
  TrialSeries baseline = RunTrials(base);
  double ssd1 = baseline.stranded[kSsd].mean();
  double nic1 = baseline.stranded[kNic].mean();

  CostInputs in;  // 16-host rack, pod size 8
  StaffingPoint ssd8 = SimulateStaffing(CalibrateStaffing(ssd1), in.pod_size);
  StaffingPoint nic8 = SimulateStaffing(CalibrateStaffing(nic1), in.pod_size);

  TcoReport r = ComputeTco(in, ssd1, ssd8.stranded, nic1, nic8.stranded);

  std::printf("stranding inputs: SSD %.0f%% -> %.0f%%, NIC %.0f%% -> %.0f%% "
              "(pod size %d)\n\n",
              ssd1 * 100, ssd8.stranded * 100, nic1 * 100, nic8.stranded * 100,
              in.pod_size);

  std::printf("infrastructure capex (%d hosts):\n", in.hosts);
  std::printf("  PCIe switch rack (HA pair + adapters + cabling + software): "
              "$%8.0f   (paper: ~$80,000)\n", r.pcie_switch_infra);
  std::printf("  CXL pod (switchless MHD, ~$600/host):                       "
              "$%8.0f\n", r.cxl_infra);
  std::printf("  CXL pod net of memory-pooling DRAM savings:                 "
              "$%8.0f   (pooling rides along free)\n\n",
              r.cxl_infra_net_of_memory_savings);

  std::printf("pooling benefits (identical for either fabric):\n");
  std::printf("  SSD capex avoided (smaller fleet, same service level): $%8.0f\n",
              r.ssd_capex_avoided);
  std::printf("  NIC capex avoided:                                     $%8.0f\n",
              r.nic_capex_avoided);
  std::printf("  redundancy sharing (spares per pod, not per host):     $%8.0f\n",
              r.redundancy_capex_avoided);
  std::printf("  total benefit:                                         $%8.0f\n\n",
              r.total_benefit);

  std::printf("net position per rack:\n");
  std::printf("  via PCIe switch: $%8.0f\n", r.pcie_switch_net);
  std::printf("  via CXL pool:    $%8.0f\n\n", r.cxl_net);
  std::printf("verdict: %s\n",
              r.cxl_net > r.pcie_switch_net
                  ? "the CXL pool wins — its infrastructure is already paid for "
                    "by memory pooling, while the switch must earn back ~$80k"
                  : "unexpected: check cost inputs");
  return 0;
}
