// E8 / §4.1 ablation: cost of operating a REMOTE device's registers
// through the shared-memory forwarding channel vs direct local MMIO —
// the price of pooling's control path (the data path is untouched: DMA
// goes straight to CXL memory either way).
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Task;

namespace {

class RegisterDevice : public pcie::PcieDevice {
 public:
  RegisterDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "regs", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override { regs_[reg % 16] = value; }
  uint64_t OnMmioRead(uint64_t reg) override { return regs_[reg % 16]; }

 private:
  uint64_t regs_[16] = {};
};

Task<> MeasureWrites(MmioPath& path, sim::EventLoop& loop, int count,
                     sim::Histogram& hist) {
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await path.Write(0x8, static_cast<uint64_t>(i)));
    hist.Add(loop.now() - start);
  }
}

Task<> MeasureReads(MmioPath& path, sim::EventLoop& loop, int count,
                    sim::Histogram& hist) {
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    auto v = co_await path.Read(0x8);
    CXLPOOL_CHECK(v.ok());
    hist.Add(loop.now() - start);
  }
}

}  // namespace

int main() {
  std::printf("=== MMIO path ablation: local vs forwarded over CXL channel ===\n\n");

  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 3;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 16 * kMiB;
  rc.pod.dram_per_host = 4 * kMiB;
  Rack rack(loop, rc);

  RegisterDevice dev(PcieDeviceId(99), loop);
  dev.AttachTo(&rack.pod().host(0));
  rack.orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack.Start();

  auto local = rack.orchestrator().MakeMmioPath(HostId(0), PcieDeviceId(99));
  auto remote = rack.orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(99));
  CXLPOOL_CHECK_OK(local.status());
  CXLPOOL_CHECK_OK(remote.status());

  sim::Histogram local_w, local_r, remote_w, remote_r;
  RunBlocking(loop, MeasureWrites(**local, loop, 2000, local_w));
  RunBlocking(loop, MeasureReads(**local, loop, 2000, local_r));
  RunBlocking(loop, MeasureWrites(**remote, loop, 2000, remote_w));
  RunBlocking(loop, MeasureReads(**remote, loop, 2000, remote_r));

  auto row = [](const char* name, sim::Histogram& h) {
    std::printf("%-28s p50 %6lld ns   p99 %6lld ns\n", name,
                static_cast<long long>(h.Percentile(0.5)),
                static_cast<long long>(h.Percentile(0.99)));
  };
  row("doorbell write, local", local_w);
  row("doorbell write, forwarded", remote_w);
  row("register read, local", local_r);
  row("register read, forwarded", remote_r);

  double write_x = static_cast<double>(remote_w.Percentile(0.5)) /
                   static_cast<double>(local_w.Percentile(0.5));
  std::printf("\nforwarded doorbell costs %.1fx a local one (one sub-us channel\n"
              "round trip, paper Fig. 4, on top of the device MMIO). Batching\n"
              "doorbells (rx_doorbell_batch) amortizes this on the datapath.\n",
              write_x);

  rack.Shutdown();
  loop.RunFor(500 * kMicrosecond);
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return 0;
}
