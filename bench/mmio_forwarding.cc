// E8 / §4.1 ablation: cost of operating a REMOTE device's registers
// through the shared-memory forwarding channel vs direct local MMIO —
// the price of pooling's control path (the data path is untouched: DMA
// goes straight to CXL memory either way).
//
// Runs with distributed tracing on: every forwarded operation becomes one
// trace whose spans cover the client (mmio.write root, rpc.enqueue) and the
// home agent (rpc.flight, rpc.serve, mmio.device_bar, rpc.reply), so the
// forwarded-vs-local gap decomposes into named phases instead of one
// opaque number. `--trace <path>` exports Chrome/Perfetto trace_event
// JSON; `--json <path>` writes the BENCH metrics snapshot.
// The throughput section saturates one forwarded path with N concurrent
// producers and compares a serialized client (max_inflight = 1, the old
// stop-and-wait behavior) against the pipelined one (max_inflight = 8):
// doorbells/sec with 8 producers must gain >= 3x from pipelining, since
// overlapped requests hide the channel round trip behind the home agent's
// service time. `--producers N` restricts the sweep to one producer count
// (CI runs 1 and 8 separately).
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/obs/obs.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Task;

namespace {

class RegisterDevice : public pcie::PcieDevice {
 public:
  RegisterDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "regs", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override { regs_[reg % 16] = value; }
  uint64_t OnMmioRead(uint64_t reg) override { return regs_[reg % 16]; }

 private:
  uint64_t regs_[16] = {};
};

Task<> MeasureWrites(MmioPath& path, sim::EventLoop& loop, int count,
                     sim::Histogram& hist) {
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await path.Write(0x8, static_cast<uint64_t>(i)));
    hist.Add(loop.now() - start);
  }
}

Task<> MeasureReads(MmioPath& path, sim::EventLoop& loop, int count,
                    sim::Histogram& hist) {
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    auto v = co_await path.Read(0x8);
    CXLPOOL_CHECK(v.ok());
    hist.Add(loop.now() - start);
  }
}

struct Join {
  Join(sim::EventLoop& loop, int total) : done(loop), total(total) {}
  sim::Event done;
  int finished = 0;
  int total;
};

Task<> ProducerWrites(MmioPath& path, int count, Join& join) {
  for (int i = 0; i < count; ++i) {
    CXLPOOL_CHECK_OK(co_await path.Write(0x8, static_cast<uint64_t>(i)));
  }
  if (++join.finished == join.total) {
    join.done.Set();
  }
}

Task<> Saturate(sim::EventLoop& loop, MmioPath& path, int producers,
                int per_producer) {
  Join join(loop, producers);
  for (int p = 0; p < producers; ++p) {
    sim::Spawn(ProducerWrites(path, per_producer, join));
  }
  while (join.finished < join.total) {
    co_await join.done.Wait();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  int producers_flag = 0;  // 0 = sweep the default {1, 8}
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--producers") == 0 && i + 1 < argc) {
      producers_flag = std::atoi(argv[++i]);
    }
  }
  std::printf("=== MMIO path ablation: local vs forwarded over CXL channel ===\n\n");

  sim::EventLoop loop;
  obs::Observability obs;
  RackConfig rc;
  rc.pod.num_hosts = 3;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 16 * kMiB;
  rc.pod.dram_per_host = 4 * kMiB;
  rc.obs = &obs;
  Rack rack(loop, rc);

  RegisterDevice dev(PcieDeviceId(99), loop);
  dev.AttachTo(&rack.pod().host(0));
  rack.orchestrator().RegisterDevice(HostId(0), &dev, DeviceType::kAccel);
  rack.Start();

  auto local = rack.orchestrator().MakeMmioPath(HostId(0), PcieDeviceId(99));
  auto remote = rack.orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(99));
  CXLPOOL_CHECK_OK(local.status());
  CXLPOOL_CHECK_OK(remote.status());

  obs::Tracer& tracer = *obs.tracer();

  // One forwarded write under the microscope first: it must produce a
  // single trace whose spans name every phase and land on both the client
  // host (2) and the home-agent host (0).
  {
    size_t spans_before = tracer.spans().size();
    uint64_t traces_before = tracer.trace_count();
    sim::Histogram scratch;
    RunBlocking(loop, MeasureWrites(**remote, loop, 1, scratch));
    CXLPOOL_CHECK(tracer.trace_count() == traces_before + 1);
    std::set<uint32_t> hosts;
    std::printf("one forwarded doorbell write, span by span:\n");
    for (size_t i = spans_before; i < tracer.spans().size(); ++i) {
      const obs::SpanRecord& s = tracer.spans()[i];
      hosts.insert(s.host);
      std::printf("  host %u  %-16s %6lld ns  [%lld, %lld]\n", s.host, s.name,
                  static_cast<long long>(s.duration()),
                  static_cast<long long>(s.start),
                  static_cast<long long>(s.end));
    }
    CXLPOOL_CHECK(tracer.spans().size() - spans_before >= 4);
    CXLPOOL_CHECK(hosts.size() >= 2);
    std::printf("\n");
  }

  sim::Histogram local_w, local_r, remote_w, remote_r;
  RunBlocking(loop, MeasureWrites(**local, loop, 2000, local_w));
  RunBlocking(loop, MeasureReads(**local, loop, 2000, local_r));
  RunBlocking(loop, MeasureWrites(**remote, loop, 2000, remote_w));
  RunBlocking(loop, MeasureReads(**remote, loop, 2000, remote_r));

  auto row = [](const char* name, sim::Histogram& h) {
    std::printf("%-28s p50 %6lld ns   p99 %6lld ns\n", name,
                static_cast<long long>(h.Percentile(0.5)),
                static_cast<long long>(h.Percentile(0.99)));
  };
  row("doorbell write, local", local_w);
  row("doorbell write, forwarded", remote_w);
  row("register read, local", local_r);
  row("register read, forwarded", remote_r);

  // Where the forwarded nanoseconds go, by phase (client-side spans show
  // the op end to end; agent-side spans isolate channel and device time).
  std::printf("\nforwarded-path phase breakdown (per-span, ns):\n");
  std::printf("  %-16s %8s %8s %8s %8s\n", "phase", "n", "p50", "p99", "max");
  for (const auto& [name, hist] : tracer.PhaseHistograms()) {
    std::printf("  %-16s %8llu %8lld %8lld %8lld\n", name.c_str(),
                static_cast<unsigned long long>(hist.count()),
                static_cast<long long>(hist.Percentile(0.5)),
                static_cast<long long>(hist.Percentile(0.99)),
                static_cast<long long>(hist.max()));
  }

  double write_x = static_cast<double>(remote_w.Percentile(0.5)) /
                   static_cast<double>(local_w.Percentile(0.5));
  std::printf("\nforwarded doorbell costs %.1fx a local one (one sub-us channel\n"
              "round trip, paper Fig. 4, on top of the device MMIO). Batching\n"
              "doorbells (rx_doorbell_batch) amortizes this on the datapath.\n",
              write_x);

  // Freeze the unsaturated phase decomposition before the throughput storm
  // below floods the tracer with queue-heavy spans.
  auto phase_hists = tracer.PhaseHistograms();

  // --- Saturated throughput: serialized vs pipelined client ---
  std::printf("\n=== saturated forwarded-doorbell throughput ===\n");
  std::printf("  %-10s %-9s %10s %14s\n", "client", "producers", "ops",
              "doorbells/sec");
  struct ModeSpec {
    const char* name;
    uint32_t max_inflight;
  };
  const ModeSpec kModes[] = {{"serialized", 1}, {"pipelined", 8}};
  std::vector<int> producer_counts =
      producers_flag > 0 ? std::vector<int>{producers_flag}
                         : std::vector<int>{1, 8};
  constexpr int kTotalOps = 4000;
  obs::Registry& reg = obs.metrics();
  double rate_at_8[2] = {0, 0};  // [mode] — for the pipelining-gain check
  for (size_t m = 0; m < 2; ++m) {
    for (int producers : producer_counts) {
      msg::RpcClient::Options copt;
      copt.max_inflight = kModes[m].max_inflight;
      auto path =
          rack.orchestrator().MakeMmioPath(HostId(2), PcieDeviceId(99), copt);
      CXLPOOL_CHECK_OK(path.status());
      int per_producer = kTotalOps / producers;
      Nanos t0 = loop.now();
      RunBlocking(loop, Saturate(loop, **path, producers, per_producer));
      Nanos dt = loop.now() - t0;
      CXLPOOL_CHECK(dt > 0);
      double per_sec =
          static_cast<double>(per_producer * producers) * 1e9 /
          static_cast<double>(dt);
      std::printf("  %-10s %9d %10d %14.0f\n", kModes[m].name, producers,
                  per_producer * producers, per_sec);
      reg.GetGauge("mmio.doorbells_per_sec",
                   {{"mode", kModes[m].name},
                    {"producers", std::to_string(producers)}})
          ->Set(static_cast<int64_t>(per_sec));
      if (producers == 8) {
        rate_at_8[m] = per_sec;
      }
    }
  }
  if (rate_at_8[0] > 0 && rate_at_8[1] > 0) {
    double gain = rate_at_8[1] / rate_at_8[0];
    std::printf("\npipelining gain at 8 producers: %.2fx (required >= 3x)\n",
                gain);
    CXLPOOL_CHECK(gain >= 3.0);
  }

  if (!trace_path.empty()) {
    CXLPOOL_CHECK_OK(tracer.WriteChromeTrace(trace_path));
    std::printf("chrome trace:      %s (%zu spans, %llu traces) — open in "
                "chrome://tracing or ui.perfetto.dev\n",
                trace_path.c_str(), tracer.spans().size(),
                static_cast<unsigned long long>(tracer.trace_count()));
  }
  if (!json_path.empty()) {
    reg.GetHistogram("mmio.latency_ns", {{"path", "local"}, {"op", "write"}})
        ->MergeFrom(local_w);
    reg.GetHistogram("mmio.latency_ns", {{"path", "local"}, {"op", "read"}})
        ->MergeFrom(local_r);
    reg.GetHistogram("mmio.latency_ns", {{"path", "forwarded"}, {"op", "write"}})
        ->MergeFrom(remote_w);
    reg.GetHistogram("mmio.latency_ns", {{"path", "forwarded"}, {"op", "read"}})
        ->MergeFrom(remote_r);
    for (const auto& [name, hist] : phase_hists) {
      reg.GetHistogram("mmio.phase_ns", {{"phase", name}})->MergeFrom(hist);
    }
    CXLPOOL_CHECK_OK(
        obs::WriteBenchJson(json_path, "mmio_forwarding", loop.now(), reg));
    std::printf("metrics snapshot:  %s (%zu series)\n", json_path.c_str(),
                reg.series_count());
  }

  rack.Shutdown();
  loop.RunFor(500 * kMicrosecond);
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return 0;
}
