// E10 / §1+§5 soft accelerator disaggregation: specialized accelerators
// see infrequent per-host use, so dedicating one per host strands the
// hardware. With the CXL pod, a single device serves the whole rack
// (paper suggests e.g. a 1:16 accelerator:host ratio) — every host
// submits jobs through pool memory and the forwarding channel.
//
// Compared: 16 dedicated accelerators (one per host) vs 1 pooled device,
// same aggregate Poisson job load. Metrics: device utilization, job
// latency, capex.
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

namespace {

constexpr int kHosts = 16;
constexpr uint32_t kJobBytes = 64 * kKiB;
constexpr double kJobsPerSecPerHost = 6000;
constexpr Nanos kDuration = 20 * kMillisecond;
constexpr double kAccelCostUsd = 5000;

struct RunResult {
  sim::Histogram latency;
  double utilization = 0;
  uint64_t jobs = 0;
};

Task<> JobStream(Rack& rack, HostId host, VirtualAccel* accel, uint64_t in_buf,
                 uint64_t out_buf, sim::Histogram& lat, uint64_t& jobs,
                 sim::StopToken& stop) {
  sim::EventLoop& loop = rack.loop();
  sim::Rng rng(1000 + host.value());
  std::vector<std::byte> data(kJobBytes, std::byte{0x11});
  CXLPOOL_CHECK_OK(co_await rack.pod().host(host).StoreNt(in_buf, data));
  double gap = 1e9 / kJobsPerSecPerHost;
  while (!stop.stopped()) {
    co_await sim::Delay(loop, static_cast<Nanos>(rng.Exponential(gap)));
    Nanos start = loop.now();
    auto st = co_await accel->RunJob(in_buf, kJobBytes, out_buf,
                                     loop.now() + 100 * kMillisecond);
    if (st.ok() && *st == 0) {
      lat.Add(loop.now() - start);
      ++jobs;
    }
  }
}

// `accels` devices shared by kHosts hosts (1 => fully pooled;
// kHosts => dedicated per host).
RunResult RunScenario(int accels) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = kHosts;
  rc.pod.num_mhds = 4;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 4 * kMiB;
  rc.accels = 0;  // placed manually below so homes spread
  Rack rack(loop, rc);

  std::vector<std::unique_ptr<devices::Accelerator>> devs;
  devices::AccelConfig ac;
  ac.engines = 2;
  for (int a = 0; a < accels; ++a) {
    int home = accels == 1 ? 0 : a;  // dedicated: one per host
    auto dev = std::make_unique<devices::Accelerator>(
        PcieDeviceId(1000 + a), "accel" + std::to_string(a), loop, ac);
    dev->AttachTo(&rack.pod().host(home));
    devices::Accelerator* raw = dev.get();
    rack.orchestrator().RegisterDevice(HostId(home), raw, DeviceType::kAccel,
                                       [raw] { return raw->EngineUtilization(); });
    devs.push_back(std::move(dev));
  }
  rack.Start();

  RunResult result;
  std::vector<std::unique_ptr<VirtualAccel>> handles;
  uint64_t jobs_total = 0;
  for (int h = 0; h < kHosts; ++h) {
    devices::Accelerator* dev = accels == 1 ? devs[0].get() : devs[h].get();
    auto qp = dev->AllocateQueuePair();
    CXLPOOL_CHECK_OK(qp.status());
    auto path = rack.orchestrator().MakeMmioPath(HostId(h), dev->id());
    CXLPOOL_CHECK_OK(path.status());
    VirtualAccel::Config vc;
    vc.rings_in_cxl = true;
    auto va = RunBlocking(loop, VirtualAccel::Create(rack.pod().host(h),
                                                     std::move(*path), vc, *qp));
    CXLPOOL_CHECK_OK(va.status());
    auto seg = rack.pod().pool().Allocate(256 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());
    Spawn(JobStream(rack, HostId(h), va->get(), seg->base, seg->base + 128 * kKiB,
                    result.latency, jobs_total, rack.stop_token()));
    handles.push_back(std::move(*va));
  }

  loop.RunUntil(kDuration);
  rack.Shutdown();
  loop.RunFor(kMillisecond);
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);

  double util = 0;
  for (auto& d : devs) {
    util += static_cast<double>(d->busy_ns()) /
            (static_cast<double>(kDuration) * d->engines());
  }
  result.utilization = util / accels;
  result.jobs = jobs_total;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Soft accelerator disaggregation: 1 pooled vs %d dedicated ===\n",
              kHosts);
  std::printf("%d hosts x %.0f jobs/s x %u KiB jobs, %lld ms window\n\n", kHosts,
              kJobsPerSecPerHost, kJobBytes / 1024,
              static_cast<long long>(kDuration / kMillisecond));

  RunResult dedicated = RunScenario(kHosts);
  RunResult pooled = RunScenario(1);

  std::printf("%-22s %14s %14s\n", "", "dedicated x16", "pooled x1");
  std::printf("%-22s %13.1f%% %13.1f%%\n", "device utilization",
              dedicated.utilization * 100, pooled.utilization * 100);
  std::printf("%-22s %11.1f us %11.1f us\n", "job p50 latency",
              dedicated.latency.Percentile(0.5) / 1000.0,
              pooled.latency.Percentile(0.5) / 1000.0);
  std::printf("%-22s %11.1f us %11.1f us\n", "job p99 latency",
              dedicated.latency.Percentile(0.99) / 1000.0,
              pooled.latency.Percentile(0.99) / 1000.0);
  std::printf("%-22s %14llu %14llu\n", "jobs completed",
              static_cast<unsigned long long>(dedicated.jobs),
              static_cast<unsigned long long>(pooled.jobs));
  std::printf("%-22s $%13.0f $%13.0f\n", "accelerator capex",
              kAccelCostUsd * kHosts, kAccelCostUsd);
  std::printf("\nexpected shape: pooling multiplies utilization ~%dx and cuts "
              "capex %dx while\njob latency grows only by queueing + the "
              "remote submission path (channel RTT).\n", kHosts, kHosts);
  return 0;
}
