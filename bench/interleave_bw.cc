// E9 / §3 bandwidth claims: one CXL 2.0 / PCIe-5 x8 link sustains ~30 GB/s
// (matching a DDR5-4800 channel at 2:1 r:w); CPUs interleave at 256 B
// across links to aggregate bandwidth (~240 GB/s over 64 lanes / 8 x8
// links on a Granite Rapids-class socket).
#include <cstdio>
#include <vector>

#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::cxl;
using sim::RunBlocking;
using sim::Task;

namespace {

// Streams `total` bytes with nt-stores and returns achieved GB/s.
double MeasureStreamWrite(int num_links, uint64_t total) {
  sim::EventLoop loop;
  CxlPodConfig pc;
  pc.num_hosts = 1;
  pc.num_mhds = num_links;  // one x8 link per MHD
  pc.mhd_capacity = 128 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  CxlPod pod(loop, pc);

  Result<PoolSegment> seg = [&]() -> Result<PoolSegment> {
    if (num_links == 1) {
      return pod.pool().Allocate(64 * kMiB, MhdId(0));
    }
    std::vector<MhdId> mhds;
    for (int m = 0; m < num_links; ++m) {
      mhds.push_back(MhdId(m));
    }
    return pod.pool().AllocateInterleaved(64 * kMiB, mhds);
  }();
  CXLPOOL_CHECK_OK(seg.status());

  auto stream = [](HostAdapter& h, uint64_t base, uint64_t bytes) -> Task<> {
    std::vector<std::byte> chunk(256 * kKiB, std::byte{0x77});
    for (uint64_t off = 0; off < bytes; off += chunk.size()) {
      CXLPOOL_CHECK_OK(co_await h.StoreNt(base + off, chunk));
    }
  };
  RunBlocking(loop, stream(pod.host(0), seg->base, total));
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 0);
  return static_cast<double>(total) / static_cast<double>(loop.now());  // B/ns == GB/s
}

double MeasureStreamRead(int num_links, uint64_t total) {
  sim::EventLoop loop;
  CxlPodConfig pc;
  pc.num_hosts = 1;
  pc.num_mhds = num_links;
  pc.mhd_capacity = 128 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  pc.cache_lines_per_host = 64;  // tiny cache: stream misses like a real copy
  CxlPod pod(loop, pc);

  Result<PoolSegment> seg = [&]() -> Result<PoolSegment> {
    if (num_links == 1) {
      return pod.pool().Allocate(64 * kMiB, MhdId(0));
    }
    std::vector<MhdId> mhds;
    for (int m = 0; m < num_links; ++m) {
      mhds.push_back(MhdId(m));
    }
    return pod.pool().AllocateInterleaved(64 * kMiB, mhds);
  }();
  CXLPOOL_CHECK_OK(seg.status());

  auto stream = [](HostAdapter& h, uint64_t base, uint64_t bytes) -> Task<> {
    std::vector<std::byte> chunk(256 * kKiB);
    for (uint64_t off = 0; off < bytes; off += chunk.size()) {
      CXLPOOL_CHECK_OK(co_await h.Load(base + off, chunk));
    }
  };
  RunBlocking(loop, stream(pod.host(0), seg->base, total));
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 0);
  return static_cast<double>(total) / static_cast<double>(loop.now());
}

}  // namespace

int main() {
  std::printf("=== CXL link bandwidth and 256 B interleaving (paper Sec. 3) ===\n\n");
  std::printf("%7s | %14s %14s | %s\n", "links", "write GB/s", "read GB/s",
              "aggregate lanes");
  const uint64_t total = 64 * kMiB;
  double base_write = 0;
  for (int links : {1, 2, 4, 8}) {
    double wr = MeasureStreamWrite(links, total);
    double rd = MeasureStreamRead(links, total);
    if (links == 1) {
      base_write = wr;
    }
    std::printf("%4d x8 | %14.1f %14.1f | %d lanes\n", links, wr, rd, links * 8);
  }
  std::printf("\npaper anchors: ~30 GB/s per x8 link; ~240 GB/s across 64 lanes\n");
  std::printf("(8 links). Scaling efficiency at 8 links: %.0f%%\n",
              100.0 * MeasureStreamWrite(8, total) / (8 * base_write));
  return 0;
}
