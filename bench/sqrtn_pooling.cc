// E2 / §2.1: pooling SSD + NIC across a pod of N hosts cuts stranding
// roughly as 1/sqrt(N). Paper's worked numbers: at N=8, SSD 54% -> 19%,
// NIC 29% -> 10% (straight s/sqrt(N) on the Figure 2 averages).
//
// Three views per resource:
//   staff%  — square-root-staffing simulation: per-pod capacity planned at
//             the p99 of aggregate demand (the provisioning the pool lets
//             you buy); this is the mechanism behind the paper's estimate.
//   rule%   — the paper's back-of-envelope s1/sqrt(N).
//   pack%   — in-place bin-packing with pod-pooled SSD/NIC but unchanged
//             per-host hardware (what pooling recovers without re-buying).
#include <cstdio>

#include "src/stranding/binpack.h"
#include "src/stranding/experiment.h"
#include "src/stranding/staffing.h"

using namespace cxlpool;
using namespace cxlpool::strand;

int main() {
  std::printf("=== sqrt(N) pooling: SSD+NIC stranding vs pod size N ===\n\n");

  // Anchor the demand models at the Figure 2 baselines.
  ExperimentConfig base;
  base.cluster = PooledSsdNicConfig(96, 1);
  base.trials = 20;
  base.seed = 1234;
  TrialSeries baseline = RunTrials(base);
  double ssd1 = baseline.stranded[kSsd].mean();
  double nic1 = baseline.stranded[kNic].mean();
  std::printf("baseline (N=1, bin-packed): ssd %.1f%%, nic %.1f%% "
              "(paper: 54%%, 29%%)\n\n", ssd1 * 100, nic1 * 100);

  StaffingConfig ssd_cfg = CalibrateStaffing(ssd1);
  StaffingConfig nic_cfg = CalibrateStaffing(nic1);

  std::printf("%4s | %7s %7s %7s | %7s %7s %7s | %10s\n", "N", "ssd", "ssd",
              "ssd", "nic", "nic", "nic", "fleet (ssd)");
  std::printf("%4s | %7s %7s %7s | %7s %7s %7s | %10s\n", "", "staff%", "rule%",
              "pack%", "staff%", "rule%", "pack%", "vs N=1");
  std::printf("-----+------------------------+------------------------+-----------\n");
  for (int n : {1, 2, 4, 8, 16, 32}) {
    StaffingPoint ssd_staff = SimulateStaffing(ssd_cfg, n);
    StaffingPoint nic_staff = SimulateStaffing(nic_cfg, n);

    ExperimentConfig pooled;
    pooled.cluster = PooledSsdNicConfig(96, n);
    pooled.trials = 10;
    pooled.seed = 1234;
    TrialSeries pack = RunTrials(pooled);

    std::printf("%4d | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%% | %9.0f%%\n",
                n, ssd_staff.stranded * 100, SqrtNEstimate(ssd1, n) * 100,
                pack.stranded[kSsd].mean() * 100, nic_staff.stranded * 100,
                SqrtNEstimate(nic1, n) * 100, pack.stranded[kNic].mean() * 100,
                ssd_staff.fleet_fraction * 100);
  }
  std::printf("\npaper anchors at N=8: ssd ~19%%, nic ~10%%. The staffing\n"
              "simulation shows the same strong monotone decline; the paper's\n"
              "rule divides the stranded *fraction* directly and is the more\n"
              "optimistic of the two at small N. 'fleet' is the SSD capacity a\n"
              "pod buys relative to per-host provisioning (feeds the TCO model).\n");
  return 0;
}
