// Chaos soak: a randomized, seeded fault storm against the full control
// plane (§4.2 orchestrator + agents) and the §5 fault model. Hosts crash
// and reboot, CXL links and an MHD flap, and a pooled accelerator fails —
// all on a schedule drawn deterministically from one seed — while lessee
// hosts keep driving doorbell traffic and re-acquiring leases whenever
// theirs die.
//
// Reported: MTTR percentiles (fault injection -> service restored), the
// injection trace digest, control-plane counters, and a bit-for-bit
// reproducibility check (two runs of the same seed must produce identical
// digests and event counts).
#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "src/analysis/coherence_checker.h"
#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/chaos.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::Spawn;
using sim::Task;

namespace {

// Register-file accelerator stand-in: traffic rings its doorbell.
class DoorbellDevice : public pcie::PcieDevice {
 public:
  DoorbellDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "doorbell", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override { regs[reg] = value; }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
};

struct TrafficStats {
  uint64_t ops_ok = 0;
  uint64_t ops_failed = 0;
  uint64_t reacquires = 0;
};

// Lessee workload: hold an accel lease, ring its doorbell every few µs.
// Transient op failures are tolerated for a while — the agent's health
// report plus an orchestrator-driven migration (which rebinds `lease`
// through the migration handler) is the preferred recovery path; only a
// persistently dead lease is dropped and re-acquired.
Task<> Traffic(Rack& rack, HostId host, std::unique_ptr<Rack::Lease>& lease,
               TrafficStats& stats, sim::StopToken& stop) {
  uint64_t seq = 0;
  int consecutive_failures = 0;
  while (!stop.stopped()) {
    if (rack.pod().HostCrashed(host)) {
      lease.reset();  // the orchestrator revokes a dead host's leases
      consecutive_failures = 0;
      co_await sim::Delay(rack.loop(), 20 * kMicrosecond);
      continue;
    }
    if (lease == nullptr) {
      auto acquired = rack.AcquireDevice(host, DeviceType::kAccel);
      if (!acquired.ok()) {
        co_await sim::Delay(rack.loop(), 20 * kMicrosecond);
        continue;
      }
      ++stats.reacquires;
      lease = std::make_unique<Rack::Lease>(std::move(*acquired));
    }
    Status st = co_await lease->mmio->Write(0x10, ++seq);
    if (st.ok()) {
      ++stats.ops_ok;
      consecutive_failures = 0;
    } else {
      ++stats.ops_failed;
      if (++consecutive_failures >= 12) {  // ~60 µs of errors: give up
        (void)rack.orchestrator().Release(host, lease->assignment.device);
        lease.reset();
        consecutive_failures = 0;
      }
    }
    co_await sim::Delay(rack.loop(), 5 * kMicrosecond);
  }
}

struct RunResult {
  std::string digest;
  std::string mttr;
  uint64_t injections = 0;
  uint64_t recoveries = 0;
  uint64_t violations = 0;
  uint64_t executed = 0;
  uint64_t coherence_violations = 0;
  uint64_t coherence_events = 0;
  uint64_t lost_dirty_lines = 0;
  Orchestrator::Stats orch;
  TrafficStats traffic;
};

RunResult RunSoak(uint64_t seed, bool print) {
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 4;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 1;
  rc.orch.auto_rebalance = true;
  Rack rack(loop, rc);

  // The coherence race detector shadows every pool line for the whole soak:
  // a fault storm must never induce a protocol violation in the control
  // plane's own CXL traffic (rings, doorbells, leases).
  analysis::CoherenceChecker checker;
  checker.AttachTo(rack.pod());

  // One doorbell accel per host, so failover always has somewhere to go.
  std::vector<std::unique_ptr<DoorbellDevice>> accels;
  for (int h = 0; h < 4; ++h) {
    auto dev = std::make_unique<DoorbellDevice>(PcieDeviceId(100 + h), loop);
    dev->AttachTo(&rack.pod().host(h));
    rack.orchestrator().RegisterDevice(HostId(h), dev.get(), DeviceType::kAccel);
    accels.push_back(std::move(dev));
  }
  rack.Start();

  sim::ChaosInjector::Options copts;
  copts.seed = seed;
  copts.mean_interval = 500 * kMicrosecond;
  copts.min_outage = 50 * kMicrosecond;
  // Long enough that some host crashes outlive the liveness timeout and are
  // declared dead (revocation + failover), while short ones ride it out.
  copts.max_outage = 800 * kMicrosecond;
  sim::ChaosInjector chaos(loop, copts);

  cxl::CxlPod& pod = rack.pod();
  // Never crash host 0: it runs the orchestrator container (§4.2).
  for (int h = 1; h < 4; ++h) {
    chaos.AddFault("host" + std::to_string(h),
                   [&pod, h] { pod.FailHost(HostId(h)); },
                   [&pod, h] { pod.RepairHost(HostId(h)); });
  }
  chaos.AddFault("link-h1-m0", [&pod] { pod.FailLink(HostId(1), MhdId(0)); },
                 [&pod] { pod.RepairLink(HostId(1), MhdId(0)); });
  chaos.AddFault("link-h2-m1", [&pod] { pod.FailLink(HostId(2), MhdId(1)); },
                 [&pod] { pod.RepairLink(HostId(2), MhdId(1)); });
  chaos.AddFault("mhd1", [&pod] { pod.FailMhd(MhdId(1)); },
                 [&pod] { pod.RepairMhd(MhdId(1)); });
  DoorbellDevice* accel1 = accels[1].get();
  chaos.AddFault("accel101", [accel1] { accel1->InjectFailure(); },
                 [accel1] { accel1->Repair(); });

  Orchestrator& orch = rack.orchestrator();
  // Both invariants are enforced synchronously by DeclareAgentDead, so any
  // violation is a real control-plane inconsistency, not detection lag.
  chaos.AddInvariant("no-lease-held-by-dead-host", [&orch]() -> std::string {
    for (const auto& [id, rec] : orch.devices()) {
      for (HostId lessee : rec.lessees) {
        if (!orch.agent_alive(lessee)) {
          return "device " + std::to_string(id.value()) +
                 " leased by dead host " + std::to_string(lessee.value());
        }
      }
    }
    return "";
  });
  chaos.AddInvariant("dead-home-implies-unhealthy", [&orch]() -> std::string {
    for (const auto& [id, rec] : orch.devices()) {
      if (rec.healthy && !orch.agent_alive(rec.home)) {
        return "device " + std::to_string(id.value()) +
               " healthy but home host " + std::to_string(rec.home.value()) +
               " is dead";
      }
    }
    return "";
  });
  // Recovered = the control plane has converged (no lease still points at
  // an unhealthy device or one homed on a crashed host) AND the
  // never-crashed host can acquire an accelerator. For a host crash this
  // clears at repair or at liveness-sweep revocation, whichever is first.
  chaos.SetRecoveryProbe([&orch, &pod]() -> bool {
    for (const auto& [id, rec] : orch.devices()) {
      if ((!rec.healthy || pod.HostCrashed(rec.home)) && !rec.lessees.empty()) {
        return false;
      }
    }
    auto a = orch.Acquire(HostId(0), DeviceType::kAccel);
    if (!a.ok()) {
      return false;
    }
    (void)orch.Release(HostId(0), a->device);
    return true;
  });

  constexpr Nanos kSoak = 30 * kMillisecond;
  chaos.ScheduleRandom(kMillisecond, kSoak);
  chaos.Start(rack.stop_token());

  TrafficStats traffic;
  std::array<std::unique_ptr<Rack::Lease>, 4> leases;
  for (int h = 1; h < 4; ++h) {
    // Orchestrator-driven migration rebinds the live lease in place.
    orch.agent(HostId(h))->SetMigrationHandler(
        [&orch, &leases, h](PcieDeviceId old_dev, PcieDeviceId new_dev,
                            HostId new_home) -> Task<> {
          auto& lease = leases[h];
          if (lease != nullptr && lease->assignment.device == old_dev) {
            auto path = orch.MakeMmioPath(HostId(h), new_dev);
            if (path.ok()) {
              lease->assignment.device = new_dev;
              lease->assignment.home = new_home;
              lease->assignment.local = new_home == HostId(h);
              lease->mmio = std::move(*path);
            }
          }
          co_return;
        });
    Spawn(Traffic(rack, HostId(h), leases[h], traffic, rack.stop_token()));
  }

  loop.RunUntil(kSoak + 5 * kMillisecond);  // soak + settle tail
  rack.Shutdown();
  loop.RunFor(kMillisecond);

  RunResult r;
  r.digest = chaos.TraceDigest();
  r.mttr = chaos.mttr().PercentileString();
  r.injections = chaos.injections();
  r.recoveries = chaos.recoveries();
  r.violations = chaos.violations();
  r.executed = loop.executed();
  r.coherence_violations = checker.violation_count();
  r.coherence_events = checker.events_seen();
  r.lost_dirty_lines = rack.pod().TotalLostDirtyLines();
  r.orch = orch.stats();
  r.traffic = traffic;

  if (print) {
    std::printf("faults injected:   %llu (%zu planned)\n",
                (unsigned long long)r.injections, chaos.plan().size());
    std::printf("recoveries:        %llu\n", (unsigned long long)r.recoveries);
    std::printf("invariant/liveness violations: %llu\n",
                (unsigned long long)r.violations);
    for (const std::string& v : chaos.violation_log()) {
      std::printf("  VIOLATION %s\n", v.c_str());
    }
    std::printf("MTTR (ns):         %s\n", r.mttr.c_str());
    std::printf("doorbell ops:      %llu ok, %llu failed, %llu re-acquires\n",
                (unsigned long long)r.traffic.ops_ok,
                (unsigned long long)r.traffic.ops_failed,
                (unsigned long long)r.traffic.reacquires);
    std::printf("orchestrator:      %llu failovers, %llu rebalances, "
                "%llu host deaths, %llu re-registrations\n",
                (unsigned long long)r.orch.failovers,
                (unsigned long long)r.orch.rebalances,
                (unsigned long long)r.orch.host_deaths,
                (unsigned long long)r.orch.host_reregistrations);
    std::printf("                   %llu leases revoked, %llu abandoned "
                "migrations\n",
                (unsigned long long)r.orch.leases_revoked,
                (unsigned long long)r.orch.abandoned_migrations);
    std::printf("lost dirty lines:  %llu\n",
                (unsigned long long)r.lost_dirty_lines);
    std::printf("coherence:         %s\n", checker.Report().c_str());
    for (const auto& v : checker.violations()) {
      std::printf("  COHERENCE %s\n", v.ToString().c_str());
    }
    std::printf("trace digest:      %s\n", r.digest.c_str());
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== chaos soak: crash/link/MHD/device faults vs the control "
              "plane ===\n\n");
  constexpr uint64_t kSeed = 0xC0FFEE;
  RunResult first = RunSoak(kSeed, /*print=*/true);

  std::printf("\nre-running the identical seed...\n");
  RunResult second = RunSoak(kSeed, /*print=*/false);
  CXLPOOL_CHECK(first.digest == second.digest);
  CXLPOOL_CHECK(first.executed == second.executed);
  CXLPOOL_CHECK(first.traffic.ops_ok == second.traffic.ops_ok);
  std::printf("reproducibility:   OK — identical trace digest and event count "
              "(%llu events)\n", (unsigned long long)first.executed);
  CXLPOOL_CHECK(first.violations == 0);
  // The fault storm must not have tricked any host into breaking the
  // publish/consume protocol or silently destroying unpublished bytes.
  CXLPOOL_CHECK(first.coherence_violations == 0);
  CXLPOOL_CHECK(second.coherence_violations == 0);
  CXLPOOL_CHECK(first.lost_dirty_lines == 0);
  std::printf("coherence check:   OK — zero violations over %llu line events\n",
              (unsigned long long)first.coherence_events);
  return 0;
}
