// Chaos soak: a randomized, seeded fault storm against the full control
// plane (§4.2 orchestrator + agents) and the §5 fault model. Hosts crash
// and reboot, CXL links and an MHD flap, a pooled accelerator fail-stops,
// devices wedge (gray: MMIO stalls instead of erroring) until the home
// agent's watchdog FLRs them, and pool media lines get poisoned until the
// replication scrubber repairs them — all on a schedule drawn
// deterministically from one seed — while lessee hosts keep driving
// doorbell traffic and re-acquiring leases whenever theirs die.
//
// Reported: MTTR percentiles overall and per fault class (host-crash vs
// link vs wedge vs poison recover through different machinery), the
// injection trace digest, control-plane counters (including watchdog
// FLRs, dedup hits, and quarantine activity), scrubber results, and a
// bit-for-bit reproducibility check (two runs of the same seed must
// produce identical digests and event counts).
//
// `--short` runs a reduced-horizon but otherwise identical soak for CI.
//
// `--faults=<comma-list>` keeps only the named fault CLASSES (host-crash,
// link, mhd, device-failstop, wedge-device, overload-drain, poison-line,
// partition, asym_link, lossy_link). A non-empty filter also switches the
// planner into STORM mode (denser schedule, shorter outages) — e.g.
// `--faults=partition,asym_link,lossy_link` is the network-partition
// storm the split-brain machinery is certified against.
#include <array>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "src/analysis/coherence_checker.h"
#include "src/analysis/lease_oracle.h"
#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/cxl/replication.h"
#include "src/netsim/fault_plane.h"
#include "src/obs/obs.h"
#include "src/sim/chaos.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::Spawn;
using sim::Task;

namespace {

// Register-file accelerator stand-in: traffic rings its doorbell.
class DoorbellDevice : public pcie::PcieDevice {
 public:
  DoorbellDevice(PcieDeviceId id, sim::EventLoop& loop)
      : PcieDevice(id, "doorbell", loop, cxl::LinkSpec{}, pcie::PcieTiming{}) {}

  std::map<uint64_t, uint64_t> regs;
  // Every write that actually landed on the register file. The soak's
  // lost-acked-write check needs the device-side ground truth: total
  // applies must cover every op the clients saw acknowledged.
  uint64_t writes_applied = 0;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override {
    regs[reg] = value;
    ++writes_applied;
  }
  uint64_t OnMmioRead(uint64_t reg) override { return regs[reg]; }
};

struct TrafficStats {
  uint64_t ops_ok = 0;
  uint64_t ops_failed = 0;
  uint64_t reacquires = 0;
};

// Lessee workload: hold an accel lease, ring its doorbell every few µs.
// Transient op failures are tolerated for a while — the agent's health
// report plus an orchestrator-driven migration (which rebinds `lease`
// through the migration handler) is the preferred recovery path; only a
// persistently dead lease is dropped and re-acquired.
Task<> Traffic(Rack& rack, HostId host, std::unique_ptr<Rack::Lease>& lease,
               TrafficStats& stats, sim::StopToken& stop) {
  uint64_t seq = 0;
  int consecutive_failures = 0;
  while (!stop.stopped()) {
    if (rack.pod().HostCrashed(host)) {
      lease.reset();  // the orchestrator revokes a dead host's leases
      consecutive_failures = 0;
      co_await sim::Delay(rack.loop(), 20 * kMicrosecond);
      continue;
    }
    if (lease == nullptr) {
      auto acquired = rack.AcquireDevice(host, DeviceType::kAccel);
      if (!acquired.ok()) {
        co_await sim::Delay(rack.loop(), 20 * kMicrosecond);
        continue;
      }
      ++stats.reacquires;
      lease = std::make_unique<Rack::Lease>(std::move(*acquired));
    }
    Status st = co_await lease->mmio->Write(0x10, ++seq);
    if (st.ok()) {
      ++stats.ops_ok;
      consecutive_failures = 0;
    } else {
      ++stats.ops_failed;
      if (++consecutive_failures >= 12) {  // ~60 µs of errors: give up
        (void)rack.orchestrator().Release(host, lease->assignment.device);
        lease.reset();
        consecutive_failures = 0;
      }
    }
    co_await sim::Delay(rack.loop(), 5 * kMicrosecond);
  }
}

struct RunResult {
  std::string digest;
  std::string mttr;
  std::map<std::string, std::string> mttr_by_class;
  uint64_t injections = 0;
  uint64_t recoveries = 0;
  uint64_t violations = 0;
  uint64_t executed = 0;
  uint64_t coherence_violations = 0;
  uint64_t coherence_events = 0;
  uint64_t lost_dirty_lines = 0;
  uint64_t poisoned_lines_remaining = 0;
  uint64_t dedup_hits = 0;
  uint64_t watchdog_misses = 0;
  uint64_t flr_resets = 0;
  uint64_t rpc_shed = 0;
  uint64_t rpc_expired = 0;
  uint64_t expired_at_device = 0;
  std::map<std::string, uint64_t> injections_by_class;
  uint64_t quarantines = 0;
  uint64_t quarantine_releases = 0;
  uint64_t quarantined_skips = 0;
  // Split-brain audit: device-side applies witnessed by the lease oracle
  // (zero epoch regressions allowed), total doorbell writes that landed on
  // any register file, and the fault plane's frame-level damage tally.
  uint64_t oracle_applies = 0;
  uint64_t oracle_violations = 0;
  uint64_t writes_applied = 0;
  netsim::FaultPlane::Stats plane;
  cxl::ReplicatedRegion::Stats scrub;
  Orchestrator::Stats orch;
  TrafficStats traffic;
};

uint64_t CounterValue(obs::Registry& reg, const std::string& name) {
  const obs::Counter* c = reg.FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

// `obs` is the observability bundle for this run, or nullptr to run with
// every hook disabled — main() runs the same seed both ways and requires a
// bit-identical trace digest, which is the tracing-purity guarantee.
// `json_path` (optional) gets a BENCH_chaos_soak-style metrics snapshot.
// `fault_filter` empty = all classes; non-empty = only the named classes,
// AND the planner runs in storm mode (see --faults in the header comment).
RunResult RunSoak(uint64_t seed, Nanos soak, bool print,
                  obs::Observability* obs, const std::string& json_path = "",
                  const std::set<std::string>& fault_filter = {}) {
  const bool storm = !fault_filter.empty();
  auto enabled = [&fault_filter](const char* cls) {
    return fault_filter.empty() || fault_filter.count(cls) != 0;
  };
  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 4;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 16 * kMiB;
  rc.nics_per_host = 1;
  rc.orch.auto_rebalance = true;
  // Forwarded MMIO gets one retry with the same (client_id, seq): enough to
  // exercise the exactly-once dedup window without stretching every failed
  // doorbell to 4x the rpc timeout during outages.
  rc.orch.mmio_retry.max_attempts = 2;
  rc.obs = obs;
  Rack rack(loop, rc);

  // The coherence race detector shadows every pool line for the whole soak:
  // a fault storm must never induce a protocol violation in the control
  // plane's own CXL traffic (rings, doorbells, leases).
  analysis::CoherenceChecker checker;
  checker.AttachTo(rack.pod());
  checker.BindObservability(obs);

  // One doorbell accel per host, so failover always has somewhere to go.
  // In storm mode host 3's accel is homed on host 0 instead: h3 then drives
  // a FORWARDED path across the faulted fabric (including the asym-cut
  // h3->h0 direction), so the lease oracle witnesses real cross-host
  // applies under partition pressure rather than vacuous local MMIO.
  std::vector<std::unique_ptr<DoorbellDevice>> accels;
  for (int h = 0; h < 4; ++h) {
    int home = (storm && h == 3) ? 0 : h;
    auto dev = std::make_unique<DoorbellDevice>(PcieDeviceId(100 + h), loop);
    dev->AttachTo(&rack.pod().host(home));
    rack.orchestrator().RegisterDevice(HostId(home), dev.get(),
                                       DeviceType::kAccel);
    accels.push_back(std::move(dev));
  }
  rack.Start();

  // Replicated control-plane state under scrub: λ=2 copies on distinct
  // MHDs, published once, then swept by the background scrubber. The
  // poison-line fault below corrupts its media; the scrubber must detect
  // (kDataLoss on a fresh read) and repair from the healthy replica.
  constexpr uint64_t kRegionSize = 8 * kKiB;
  auto region_or = cxl::ReplicatedRegion::Create(rack.pod().pool(), kRegionSize, 2);
  CXLPOOL_CHECK_OK(region_or.status());
  cxl::ReplicatedRegion region = std::move(*region_or);
  std::vector<std::byte> region_content(kRegionSize);
  for (uint64_t i = 0; i < kRegionSize; ++i) {
    region_content[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  cxl::HostAdapter& host0 = rack.pod().host(0);
  if (obs != nullptr) {
    region.BindMetrics(&obs->metrics(), "control-plane");
  }
  CXLPOOL_CHECK_OK(sim::RunBlocking(loop, region.Publish(host0, 0, region_content)));
  Spawn(region.ScrubLoop(host0, 50 * kMicrosecond, rack.stop_token()));

  sim::ChaosInjector::Options copts;
  copts.seed = seed;
  if (storm) {
    // Storm schedule: dense injections, outages long enough to push hosts
    // into the orchestrator's suspect band (>300 µs report staleness) but
    // mostly short of quorum condemnation — the regime where fencing and
    // quorum liveness carry the whole split-brain burden.
    copts.mean_interval = 150 * kMicrosecond;
    copts.min_outage = 50 * kMicrosecond;
    copts.max_outage = 500 * kMicrosecond;
  } else {
    copts.mean_interval = 500 * kMicrosecond;
    copts.min_outage = 50 * kMicrosecond;
    // Long enough that some host crashes outlive the liveness timeout and
    // are declared dead (revocation + failover), while short ones ride it
    // out.
    copts.max_outage = 800 * kMicrosecond;
  }
  sim::ChaosInjector chaos(loop, copts);
  if (obs != nullptr) {
    // Mirror every executed fail/repair/recover line into the flight
    // recorder (ring 0 — chaos is rack-level, not per-host), so a failure
    // dump interleaves faults with the control plane's own events.
    obs::Observability* o = obs;
    sim::EventLoop* lp = &loop;
    chaos.SetEventHook([o, lp](const std::string& line) {
      o->flight().Note(lp->now(), 0, "chaos", "%s", line.c_str());
    });
  }

  cxl::CxlPod& pod = rack.pod();
  // Never crash host 0: it runs the orchestrator container (§4.2).
  if (enabled("host-crash")) {
    for (int h = 1; h < 4; ++h) {
      chaos.AddFault("host" + std::to_string(h), "host-crash",
                     [&pod, h] { pod.FailHost(HostId(h)); },
                     [&pod, h] { pod.RepairHost(HostId(h)); });
    }
  }
  if (enabled("link")) {
    chaos.AddFault("link-h1-m0", "link",
                   [&pod] { pod.FailLink(HostId(1), MhdId(0)); },
                   [&pod] { pod.RepairLink(HostId(1), MhdId(0)); });
    chaos.AddFault("link-h2-m1", "link",
                   [&pod] { pod.FailLink(HostId(2), MhdId(1)); },
                   [&pod] { pod.RepairLink(HostId(2), MhdId(1)); });
  }
  if (enabled("mhd")) {
    chaos.AddFault("mhd1", "mhd", [&pod] { pod.FailMhd(MhdId(1)); },
                   [&pod] { pod.RepairMhd(MhdId(1)); });
  }
  if (enabled("device-failstop")) {
    DoorbellDevice* accel1 = accels[1].get();
    chaos.AddFault("accel101", "device-failstop",
                   [accel1] { accel1->InjectFailure(); },
                   [accel1] { accel1->Repair(); });
  }
  // Gray failures. A wedge has NO chaos-side repair: the home agent's
  // watchdog must notice the MMIO deadline misses and FLR the device —
  // that reset, not the injector, is the repair path. (Wedge() on an
  // already-reset device is a fresh episode; on a crashed host the wedge
  // sits until the host reboots and its watchdog resumes.)
  if (enabled("wedge-device")) {
    for (int h = 2; h < 4; ++h) {
      DoorbellDevice* dev = accels[h].get();
      chaos.AddFault("wedge-accel" + std::to_string(100 + h), "wedge-device",
                     [dev] { dev->Wedge(); }, [] { /* watchdog FLRs it */ });
    }
  }
  // Overload: a slow-draining home agent (GC pause, noisy neighbor — the
  // host is alive but every forwarded op stalls in its handler). This is
  // the backpressure stack's fault class: admission control sheds the
  // data-plane backlog, deadline propagation kills dead doorbells before
  // the BAR, and control-priority probes/reports keep flowing — so the
  // watchdog must NOT mistake the slow agent for a wedged device.
  if (enabled("overload-drain")) {
    for (int h = 1; h < 3; ++h) {
      Agent* slow_agent = rack.orchestrator().agent(HostId(h));
      chaos.AddFault(
          "slow-agent" + std::to_string(h), "overload-drain",
          [slow_agent] { slow_agent->InjectSlowDrain(30 * kMicrosecond); },
          [slow_agent] { slow_agent->InjectSlowDrain(0); });
    }
  }
  // Poisoned media: each firing poisons a few 64B lines of one replica of
  // the scrubbed region (deterministic line choice — no RNG draws outside
  // the planner). Repair is the scrubber's job, so the chaos-side repair
  // is a no-op; the recovery probe below holds until the pool is clean.
  auto poison_counter = std::make_shared<uint64_t>(0);
  if (enabled("poison-line")) {
    chaos.AddFault(
        "poison-region", "poison-line",
        [&pod, &region, poison_counter] {
          uint64_t n = (*poison_counter)++;
          const cxl::PoolSegment& seg = region.segment(static_cast<int>(n % 2));
          uint64_t lines = kRegionSize / kCachelineSize;
          for (uint64_t i = 0; i < 3; ++i) {
            pod.PoisonLine(seg.base +
                           kCachelineSize * ((n * 37 + i * 11) % lines));
          }
        },
        [] { /* scrub repairs */ });
  }

  // --- Network fault plane classes (ISSUE 9) ---
  // These damage the message fabric itself (rings between hosts), not the
  // CXL media paths: the liveness/fencing machinery, not replication, is
  // what must hold the line here.
  netsim::FaultPlane& plane = pod.fault_plane();
  if (enabled("partition")) {
    // Full isolation of h1: every peer votes it unreachable, so a long
    // enough outage is condemned BY QUORUM — and fencing guarantees any
    // lease it held is epoch-bumped before re-grant.
    chaos.AddFault(
        "partition-h1", "partition",
        [&plane] {
          const HostId one[] = {HostId(1)};
          const HostId rest[] = {HostId(0), HostId(2), HostId(3)};
          plane.Partition(one, rest);
        },
        [&plane] {
          const HostId one[] = {HostId(1)};
          const HostId rest[] = {HostId(0), HostId(2), HostId(3)};
          plane.HealPartition(one, rest);
        });
    // Orchestrator-only partition: h2 loses its path to h0 (both ways) but
    // its peers still see it. Quorum must REFUSE to condemn — h2 rides it
    // out as a fenced suspect and recovers on heal. With probe-only
    // liveness this exact shape is the classic false-positive kill.
    chaos.AddFault(
        "partition-h2-orch", "partition",
        [&plane] {
          plane.Cut(HostId(2), HostId(0));
          plane.Cut(HostId(0), HostId(2));
        },
        [&plane] {
          plane.Heal(HostId(2), HostId(0));
          plane.Heal(HostId(0), HostId(2));
        });
  }
  if (enabled("asym_link")) {
    // One-way damage: h3's frames toward h0 vanish, h0's toward h3 arrive.
    // The orchestrator stops hearing reports (suspect), but h3's peers
    // still exchange probes with it, so quorum keeps it alive.
    chaos.AddFault(
        "asym-h3-to-h0", "asym_link",
        [&plane] { plane.Cut(HostId(3), HostId(0)); },
        [&plane] { plane.Heal(HostId(3), HostId(0)); });
  }
  if (enabled("lossy_link")) {
    // Both directions of h0<->h1 degrade: seeded drops, duplicates, and
    // delayed/reordered frames. RPC retries + the dedup window must absorb
    // all of it without double-applying a doorbell.
    chaos.AddFault(
        "lossy-h0-h1", "lossy_link",
        [&plane] {
          netsim::FaultPlane::LinkState lossy;
          lossy.drop_p = 0.15;
          lossy.dup_p = 0.10;
          lossy.delay_p = 0.20;
          lossy.delay_min = 5 * kMicrosecond;
          lossy.delay_max = 40 * kMicrosecond;
          plane.SetLossy(HostId(0), HostId(1), lossy);
          plane.SetLossy(HostId(1), HostId(0), lossy);
        },
        [&plane] {
          plane.Heal(HostId(0), HostId(1));
          plane.Heal(HostId(1), HostId(0));
        });
  }

  // The lease oracle shadows every device-side apply on every agent: an
  // apply under an epoch older than one already witnessed for that device
  // is a dual-ownership interval — the split-brain the fencing machinery
  // exists to make impossible. Wired in BOTH runs (pure bookkeeping; must
  // not perturb the digest).
  analysis::LeaseOracle oracle;
  for (int h = 0; h < 4; ++h) {
    Agent* a = rack.orchestrator().agent(HostId(h));
    a->SetApplyHook([&oracle](PcieDeviceId dev, uint64_t epoch,
                              uint64_t client_id, Nanos at) {
      oracle.RecordApply(dev, epoch, client_id, at);
    });
  }
  if (obs != nullptr) {
    obs::Registry& reg = obs->metrics();
    reg.RegisterProbe("fault_plane.frames_dropped", {}, [&plane] {
      return static_cast<int64_t>(plane.stats().frames_dropped);
    });
    reg.RegisterProbe("fault_plane.frames_duplicated", {}, [&plane] {
      return static_cast<int64_t>(plane.stats().frames_duplicated);
    });
    reg.RegisterProbe("fault_plane.frames_delayed", {}, [&plane] {
      return static_cast<int64_t>(plane.stats().frames_delayed);
    });
    reg.RegisterProbe("lease_oracle.applies", {}, [&oracle] {
      return static_cast<int64_t>(oracle.applies());
    });
    reg.RegisterProbe("lease_oracle.violations", {}, [&oracle] {
      return static_cast<int64_t>(oracle.violations());
    });
  }

  Orchestrator& orch = rack.orchestrator();
  // Both invariants are enforced synchronously by DeclareAgentDead, so any
  // violation is a real control-plane inconsistency, not detection lag.
  chaos.AddInvariant("no-lease-held-by-dead-host", [&orch]() -> std::string {
    for (const auto& [id, rec] : orch.devices()) {
      for (HostId lessee : rec.lessees) {
        if (!orch.agent_alive(lessee)) {
          return "device " + std::to_string(id.value()) +
                 " leased by dead host " + std::to_string(lessee.value());
        }
      }
    }
    return "";
  });
  chaos.AddInvariant("dead-home-implies-unhealthy", [&orch]() -> std::string {
    for (const auto& [id, rec] : orch.devices()) {
      if (rec.healthy && !orch.agent_alive(rec.home)) {
        return "device " + std::to_string(id.value()) +
               " healthy but home host " + std::to_string(rec.home.value()) +
               " is dead";
      }
    }
    return "";
  });
  // Recovered = the control plane has converged (no lease still points at
  // an unhealthy device or one homed on a crashed host), the pool media is
  // clean again (the scrubber repaired every poisoned line), AND the
  // never-crashed host can acquire an accelerator. For a host crash this
  // clears at repair or at liveness-sweep revocation, whichever is first;
  // for poison it clears when the scrub sweep lands its repairs.
  chaos.SetRecoveryProbe([&orch, &pod]() -> bool {
    for (const auto& [id, rec] : orch.devices()) {
      if ((!rec.healthy || pod.HostCrashed(rec.home)) && !rec.lessees.empty()) {
        return false;
      }
    }
    // A fenced suspect is not a recovered cluster: either the partition
    // heals (suspect -> alive) or quorum/TTL condemns it (suspect -> dead).
    if (orch.suspect_count() != 0) {
      return false;
    }
    if (pod.PoisonedLineCount() != 0) {
      return false;
    }
    auto a = orch.Acquire(HostId(0), DeviceType::kAccel);
    if (!a.ok()) {
      return false;
    }
    (void)orch.Release(HostId(0), a->device);
    return true;
  });

  chaos.ScheduleRandom(kMillisecond, soak);
  chaos.Start(rack.stop_token());

  TrafficStats traffic;
  std::array<std::unique_ptr<Rack::Lease>, 4> leases;
  // Paths replaced by migration are parked here, not destroyed: a Traffic
  // op may still be suspended inside the old path (its retry loop and RPC
  // client live in the path object), so freeing it mid-flight is a
  // use-after-free when that op resumes. Retired paths drain with the loop
  // and die at RunSoak exit.
  std::vector<std::unique_ptr<core::MmioPath>> retired_paths;
  for (int h = 1; h < 4; ++h) {
    // Orchestrator-driven migration rebinds the live lease in place.
    orch.agent(HostId(h))->SetMigrationHandler(
        [orch = &orch, leases = &leases, retired = &retired_paths, h](
            PcieDeviceId old_dev, PcieDeviceId new_dev,
            HostId new_home) -> Task<> {
          auto& lease = (*leases)[h];
          if (lease != nullptr && lease->assignment.device == old_dev) {
            auto path = orch->MakeMmioPath(HostId(h), new_dev);
            if (path.ok()) {
              lease->assignment.device = new_dev;
              lease->assignment.home = new_home;
              lease->assignment.local = new_home == HostId(h);
              retired->push_back(std::move(lease->mmio));
              lease->mmio = std::move(*path);
            }
          }
          co_return;
        });
    Spawn(Traffic(rack, HostId(h), leases[h], traffic, rack.stop_token()));
  }

  loop.RunUntil(soak + 5 * kMillisecond);  // soak + settle tail
  rack.Shutdown();
  loop.RunFor(kMillisecond);

  RunResult r;
  r.digest = chaos.TraceDigest();
  r.mttr = chaos.mttr().PercentileString();
  for (const auto& [cls, hist] : chaos.mttr_by_class()) {
    r.mttr_by_class[cls] = hist.PercentileString();
  }
  r.injections = chaos.injections();
  r.recoveries = chaos.recoveries();
  r.violations = chaos.violations();
  r.executed = loop.executed();
  r.coherence_violations = checker.violation_count();
  r.coherence_events = checker.events_seen();
  r.lost_dirty_lines = rack.pod().TotalLostDirtyLines();
  r.poisoned_lines_remaining = rack.pod().PoisonedLineCount();
  r.scrub = region.stats();
  for (int h = 0; h < 4; ++h) {
    Agent* a = orch.agent(HostId(h));
    const Agent::Stats& as = a->stats();
    r.dedup_hits += as.dedup_hits;
    r.watchdog_misses += as.watchdog_misses;
    r.flr_resets += as.flr_resets;
    r.expired_at_device += as.expired_at_device;
    r.rpc_shed += a->rpc_shed();
    r.rpc_expired += a->rpc_expired();
  }
  r.injections_by_class = chaos.injections_by_class();
  r.orch = orch.stats();
  r.oracle_applies = oracle.applies();
  r.oracle_violations = oracle.violations();
  r.plane = plane.stats();
  for (const auto& dev : accels) {
    r.writes_applied += dev->writes_applied;
  }
  r.quarantines = CounterValue(orch.metrics(), "orch.quarantines");
  r.quarantine_releases = CounterValue(orch.metrics(), "orch.quarantine_releases");
  r.quarantined_skips = CounterValue(orch.metrics(), "orch.quarantined_skips");
  r.traffic = traffic;

  if (!json_path.empty() && obs != nullptr) {
    // Fold the soak-level results into the registry so the snapshot is one
    // self-contained document (registry metrics + chaos outcome).
    obs::Registry& reg = obs->metrics();
    reg.GetCounter("chaos.injections")->Add(r.injections);
    reg.GetCounter("chaos.recoveries")->Add(r.recoveries);
    reg.GetCounter("chaos.violations")->Add(r.violations);
    reg.GetHistogram("chaos.mttr_ns")->MergeFrom(chaos.mttr());
    for (const auto& [cls, hist] : chaos.mttr_by_class()) {
      reg.GetHistogram("chaos.mttr_ns", {{"class", cls}})->MergeFrom(hist);
    }
    reg.GetCounter("traffic.ops_ok")->Add(r.traffic.ops_ok);
    reg.GetCounter("traffic.ops_failed")->Add(r.traffic.ops_failed);
    reg.GetCounter("traffic.reacquires")->Add(r.traffic.reacquires);
    Status st = obs::WriteBenchJson(json_path, "chaos_soak", loop.now(), reg);
    CXLPOOL_CHECK_OK(st);
    if (print) {
      std::printf("metrics snapshot:  %s (%zu series)\n", json_path.c_str(),
                  reg.series_count());
    }
  }

  if (print) {
    std::printf("faults injected:   %llu (%zu planned)\n",
                (unsigned long long)r.injections, chaos.plan().size());
    std::printf("recoveries:        %llu\n", (unsigned long long)r.recoveries);
    std::printf("invariant/liveness violations: %llu\n",
                (unsigned long long)r.violations);
    for (const std::string& v : chaos.violation_log()) {
      std::printf("  VIOLATION %s\n", v.c_str());
    }
    std::printf("MTTR (ns):         %s\n", r.mttr.c_str());
    for (const auto& [cls, pct] : r.mttr_by_class) {
      std::printf("  MTTR[%-15s] %s\n", cls.c_str(), pct.c_str());
    }
    std::printf("doorbell ops:      %llu ok, %llu failed, %llu re-acquires, "
                "%llu device applies\n",
                (unsigned long long)r.traffic.ops_ok,
                (unsigned long long)r.traffic.ops_failed,
                (unsigned long long)r.traffic.reacquires,
                (unsigned long long)r.writes_applied);
    std::printf("orchestrator:      %llu failovers, %llu rebalances, "
                "%llu host deaths, %llu re-registrations\n",
                (unsigned long long)r.orch.failovers,
                (unsigned long long)r.orch.rebalances,
                (unsigned long long)r.orch.host_deaths,
                (unsigned long long)r.orch.host_reregistrations);
    std::printf("                   %llu leases revoked, %llu abandoned "
                "migrations\n",
                (unsigned long long)r.orch.leases_revoked,
                (unsigned long long)r.orch.abandoned_migrations);
    std::printf("liveness:          %llu suspects, %llu recovered, "
                "%llu condemned by quorum, %llu by TTL\n",
                (unsigned long long)r.orch.suspects,
                (unsigned long long)r.orch.suspect_recoveries,
                (unsigned long long)r.orch.condemned_by_quorum,
                (unsigned long long)r.orch.condemned_by_ttl);
    std::printf("fencing:           %llu fences acked, %llu resolved by "
                "lease-TTL expiry\n",
                (unsigned long long)r.orch.fences_acked,
                (unsigned long long)r.orch.fences_ttl_expired);
    std::printf("fault plane:       %llu frames dropped, %llu duplicated, "
                "%llu delayed\n",
                (unsigned long long)r.plane.frames_dropped,
                (unsigned long long)r.plane.frames_duplicated,
                (unsigned long long)r.plane.frames_delayed);
    std::printf("lease oracle:      %llu applies witnessed, %llu epoch "
                "regressions (dual-ownership intervals)\n",
                (unsigned long long)r.oracle_applies,
                (unsigned long long)r.oracle_violations);
    std::printf("quarantine:        %llu entered, %llu released, %llu "
                "allocation skips\n",
                (unsigned long long)r.quarantines,
                (unsigned long long)r.quarantine_releases,
                (unsigned long long)r.quarantined_skips);
    std::printf("gray failures:     %llu watchdog misses, %llu FLR resets, "
                "%llu dedup hits\n",
                (unsigned long long)r.watchdog_misses,
                (unsigned long long)r.flr_resets,
                (unsigned long long)r.dedup_hits);
    std::printf("overload:          %llu admission sheds, %llu expired at "
                "dequeue, %llu expired pre-BAR\n",
                (unsigned long long)r.rpc_shed,
                (unsigned long long)r.rpc_expired,
                (unsigned long long)r.expired_at_device);
    std::printf("scrubber:          %llu lines swept, %llu repairs, %llu "
                "unrecoverable, %llu poisoned lines left\n",
                (unsigned long long)r.scrub.lines_scrubbed,
                (unsigned long long)r.scrub.scrub_repairs,
                (unsigned long long)r.scrub.scrub_unrecoverable,
                (unsigned long long)r.poisoned_lines_remaining);
    std::printf("lost dirty lines:  %llu\n",
                (unsigned long long)r.lost_dirty_lines);
    std::printf("coherence:         %s\n", checker.Report().c_str());
    for (const auto& v : checker.violations()) {
      std::printf("  COHERENCE %s\n", v.ToString().c_str());
    }
    std::printf("trace digest:      %s\n", r.digest.c_str());
    if (obs != nullptr) {
      std::printf("flight recorder:   %llu events recorded (%llu overwritten) "
                  "across %zu rings\n",
                  (unsigned long long)obs->flight().recorded(),
                  (unsigned long long)obs->flight().overwritten(),
                  obs->flight().host_count());
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path;
  std::set<std::string> fault_filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      std::string list = argv[i] + 9;
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        if (comma > pos) {
          fault_filter.insert(list.substr(pos, comma - pos));
        }
        pos = comma + 1;
      }
    }
  }
  const bool storm = !fault_filter.empty();
  // The short mode is the CI gate: same faults, same seed, same
  // assertions, reduced horizon.
  const Nanos soak = short_mode ? 8 * kMillisecond : 30 * kMillisecond;
  if (storm) {
    std::string classes;
    for (const std::string& c : fault_filter) {
      classes += (classes.empty() ? "" : ",") + c;
    }
    std::printf("=== chaos soak STORM: %s%s ===\n\n", classes.c_str(),
                short_mode ? " (short)" : "");
  } else {
    std::printf("=== chaos soak: crash/link/MHD/fail-stop/wedge/poison faults "
                "vs the control plane%s ===\n\n",
                short_mode ? " (short)" : "");
  }
  constexpr uint64_t kSeed = 0xC0FFEE;
  // First run: full observability — tracing, registry metrics, and the
  // flight recorder wired to CHECK failures (so any assertion below dumps
  // the last operations of every host).
  obs::Observability obs;
  obs.InstallCheckHook();
  RunResult first =
      RunSoak(kSeed, soak, /*print=*/true, &obs, json_path, fault_filter);

  // Second run: same seed, all observability off. Identical digests prove
  // both reproducibility and tracing purity — the instrumented run made
  // exactly the simulation decisions the bare run did.
  std::printf("\nre-running the identical seed with observability off...\n");
  RunResult second =
      RunSoak(kSeed, soak, /*print=*/false, /*obs=*/nullptr, "", fault_filter);
  CXLPOOL_CHECK(first.digest == second.digest);
  CXLPOOL_CHECK(first.executed == second.executed);
  CXLPOOL_CHECK(first.traffic.ops_ok == second.traffic.ops_ok);
  std::printf("reproducibility:   OK — identical trace digest and event count "
              "(%llu events) with tracing on and off\n",
              (unsigned long long)first.executed);
  CXLPOOL_CHECK(first.violations == 0);
  // The overload fault class must actually have fired — a soak that never
  // stalled an agent proves nothing about the backpressure stack.
  if (fault_filter.empty() || fault_filter.count("overload-drain") != 0) {
    CXLPOOL_CHECK(first.injections_by_class.count("overload-drain") == 1);
  }
  // Filtered runs: every requested class must have actually fired, and the
  // storm must be dense enough to mean something (>= 50 injections on the
  // full horizon).
  if (storm) {
    for (const std::string& cls : fault_filter) {
      CXLPOOL_CHECK(first.injections_by_class.count(cls) == 1);
    }
    if (!short_mode) {
      CXLPOOL_CHECK(first.injections >= 50);
    }
  }
  // The fault storm must not have tricked any host into breaking the
  // publish/consume protocol or silently destroying unpublished bytes.
  CXLPOOL_CHECK(first.coherence_violations == 0);
  CXLPOOL_CHECK(second.coherence_violations == 0);
  CXLPOOL_CHECK(first.lost_dirty_lines == 0);
  std::printf("coherence check:   OK — zero violations over %llu line events\n",
              (unsigned long long)first.coherence_events);
  // Split-brain: the lease oracle must have witnessed ZERO dual-ownership
  // intervals (epoch regressions at any device) in BOTH runs.
  CXLPOOL_CHECK(first.oracle_violations == 0);
  CXLPOOL_CHECK(second.oracle_violations == 0);
  // Lost-acked-write accounting: the register files must hold at least as
  // many applies as the clients saw acknowledged (a dedup-absorbed retry
  // acks an op that already applied, so applies >= acks). This is an
  // invariant of NETWORK faults only — MMIO writes are posted, so a
  // device that wedges/fail-stops (or a host that crashes) inside the
  // posting window absorbs an acked write by design; that gray loss is
  // the watchdog/FLR story, not a fabric bug. Enforced whenever the storm
  // is restricted to fault-plane classes.
  const bool network_only = storm && [&fault_filter] {
    for (const std::string& c : fault_filter) {
      if (c != "partition" && c != "asym_link" && c != "lossy_link") {
        return false;
      }
    }
    return true;
  }();
  if (network_only) {
    CXLPOOL_CHECK(first.writes_applied >= first.traffic.ops_ok);
    CXLPOOL_CHECK(second.writes_applied >= second.traffic.ops_ok);
  }
  std::printf("split-brain check: OK — zero dual-ownership intervals over "
              "%llu witnessed applies%s\n",
              (unsigned long long)first.oracle_applies,
              network_only ? ", zero lost acked writes" : "");
  // Media RAS: every poisoned line must have been repaired from a healthy
  // replica — none left behind, none written off as unrecoverable.
  CXLPOOL_CHECK(first.scrub.scrub_unrecoverable == 0);
  CXLPOOL_CHECK(first.poisoned_lines_remaining == 0);
  std::printf("scrub check:       OK — %llu repairs, zero unrecoverable, "
              "media clean\n",
              (unsigned long long)first.scrub.scrub_repairs);
  return 0;
}
