# Benchmark binaries all land in build/bench/ (and ONLY the binaries — this
# file is include()d from the root so CMake's book-keeping directories do
# not pollute it) so the harness loop `for b in build/bench/*; do $b; done`
# runs every experiment.
function(cxlpool_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE
    cxlpool_common cxlpool_sim cxlpool_mem cxlpool_cxl)
endfunction()

function(cxlpool_gbench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE benchmark::benchmark
    cxlpool_common cxlpool_sim cxlpool_mem cxlpool_cxl)
endfunction()

cxlpool_bench(fig2_stranding fig2_stranding.cc)
target_link_libraries(fig2_stranding PRIVATE cxlpool_stranding)
cxlpool_bench(sqrtn_pooling sqrtn_pooling.cc)
target_link_libraries(sqrtn_pooling PRIVATE cxlpool_stranding)

cxlpool_bench(fig3_udp_latency fig3_udp_latency.cc)
target_link_libraries(fig3_udp_latency PRIVATE cxlpool_stack)
cxlpool_bench(fig4_msg_latency fig4_msg_latency.cc)
target_link_libraries(fig4_msg_latency PRIVATE cxlpool_msg)
cxlpool_bench(tco_comparison tco_comparison.cc)
target_link_libraries(tco_comparison PRIVATE cxlpool_stranding cxlpool_tco)
cxlpool_bench(failover failover.cc)
target_link_libraries(failover PRIVATE cxlpool_stack)
cxlpool_bench(load_balance load_balance.cc)
target_link_libraries(load_balance PRIVATE cxlpool_core)
cxlpool_bench(mmio_forwarding mmio_forwarding.cc)
target_link_libraries(mmio_forwarding PRIVATE cxlpool_core)
cxlpool_bench(interleave_bw interleave_bw.cc)
target_link_libraries(interleave_bw PRIVATE cxlpool_cxl)
cxlpool_bench(accel_pooling accel_pooling.cc)
target_link_libraries(accel_pooling PRIVATE cxlpool_core)
cxlpool_bench(pcie_switch_baseline pcie_switch_baseline.cc)
target_link_libraries(pcie_switch_baseline PRIVATE cxlpool_core cxlpool_tco)
cxlpool_bench(coherence_ablation coherence_ablation.cc)
target_link_libraries(coherence_ablation PRIVATE cxlpool_cxl cxlpool_msg)
cxlpool_bench(chaos_soak chaos_soak.cc)
target_link_libraries(chaos_soak PRIVATE cxlpool_core cxlpool_analysis)
cxlpool_bench(overload_soak overload_soak.cc)
target_link_libraries(overload_soak PRIVATE cxlpool_core)
cxlpool_bench(kv_soak kv_soak.cc)
target_link_libraries(kv_soak PRIVATE cxlpool_kv)
cxlpool_gbench(micro_primitives micro_primitives.cc)
target_link_libraries(micro_primitives PRIVATE cxlpool_msg)
