// E7 / §4.2 load balancing: "If a PCIe device ... becomes overloaded, the
// corresponding agent will report the issue to the orchestrator ... The
// orchestrator can then migrate workloads from the affected device to
// other devices."
//
// Story: during provisioning, accelerator 1 was down, so three hosts'
// offload streams all landed on accelerator 0. Once accelerator 1 is
// repaired, the auto-rebalancer observes accel 0 above the overload
// threshold and sheds leases one scan at a time; job latency recovers.
#include <cstdio>

#include "src/common/check.h"
#include "src/core/rack.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using namespace cxlpool::core;
using sim::RunBlocking;
using sim::Spawn;
using sim::Task;

namespace {

struct Client {
  HostId host;
  Orchestrator::Assignment assignment;
  std::unique_ptr<VirtualAccel> accel;
  int qp = -1;
  sim::Histogram latency_before;
  sim::Histogram latency_after;
  uint64_t jobs = 0;
};

Task<> JobStream(Rack& rack, Client& c, uint64_t in_buf, uint64_t out_buf,
                 Nanos rebalanced_at_hint, sim::StopToken& stop) {
  sim::EventLoop& loop = rack.loop();
  sim::Rng rng(17 + c.host.value());
  std::vector<std::byte> data(64 * kKiB, std::byte{0x31});
  CXLPOOL_CHECK_OK(co_await rack.pod().host(c.host).StoreNt(in_buf, data));
  while (!stop.stopped()) {
    co_await sim::Delay(loop, static_cast<Nanos>(rng.Exponential(30000)));  // ~33k jobs/s (overloads one device)
    Nanos start = loop.now();
    auto st = co_await c.accel->RunJob(in_buf, static_cast<uint32_t>(data.size()),
                                       out_buf, loop.now() + 50 * kMillisecond);
    if (!st.ok() || *st != 0) {
      continue;  // mid-migration hiccup
    }
    ++c.jobs;
    if (start < rebalanced_at_hint) {
      c.latency_before.Add(loop.now() - start);
    } else {
      c.latency_after.Add(loop.now() - start);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Orchestrator load balancing: overloaded accelerator sheds "
              "leases ===\n\n");

  sim::EventLoop loop;
  RackConfig rc;
  rc.pod.num_hosts = 4;
  rc.pod.num_mhds = 2;
  rc.pod.mhd_capacity = 64 * kMiB;
  rc.pod.dram_per_host = 8 * kMiB;
  rc.accels = 2;  // accel 0 on host 0; accel 1 placed below
  rc.accel_home = 0;
  rc.accel.engines = 1;
  rc.orch.auto_rebalance = true;
  rc.orch.overload_threshold = 0.40;
  rc.orch.rebalance_interval = 300 * kMicrosecond;
  Rack rack(loop, rc);

  // Accelerator 1 is "down during provisioning".
  rack.accel(1)->InjectFailure();
  rack.Start();

  std::vector<std::unique_ptr<Client>> clients;
  for (uint32_t h : {1, 2, 3}) {
    auto c = std::make_unique<Client>();
    c->host = HostId(h);
    auto lease = rack.AcquireDevice(c->host, DeviceType::kAccel);
    CXLPOOL_CHECK_OK(lease.status());
    CXLPOOL_CHECK(lease->assignment.device == rack.accel(0)->id());
    c->assignment = lease->assignment;
    auto qp = rack.accel(0)->AllocateQueuePair();
    CXLPOOL_CHECK_OK(qp.status());
    c->qp = *qp;
    VirtualAccel::Config vc;
    auto va = RunBlocking(loop, VirtualAccel::Create(rack.pod().host(c->host),
                                                     std::move(lease->mmio), vc,
                                                     c->qp));
    CXLPOOL_CHECK_OK(va.status());
    c->accel = std::move(*va);
    clients.push_back(std::move(c));
  }
  std::printf("provisioning: accel 1 was down -> all 3 hosts landed on accel 0\n");

  // Wire migration handlers: open a handle on the new device's queue pair
  // and swap it in. The old handle is parked (not destroyed) so jobs in
  // flight on the old device drain cleanly.
  Nanos first_rebalance = -1;
  std::vector<std::unique_ptr<VirtualAccel>> drained;
  for (auto& c : clients) {
    Client* cp = c.get();
    rack.orchestrator().agent(cp->host)->SetMigrationHandler(
        [rack = &rack, cp, first_rebalance = &first_rebalance, loop = &loop,
         drained = &drained](PcieDeviceId, PcieDeviceId new_dev,
                             HostId) -> Task<> {
          devices::Accelerator* target =
              rack->accel(new_dev == rack->accel(0)->id() ? 0 : 1);
          auto qp = target->AllocateQueuePair();
          CXLPOOL_CHECK_OK(qp.status());
          auto path = rack->orchestrator().MakeMmioPath(cp->host, new_dev);
          CXLPOOL_CHECK_OK(path.status());
          VirtualAccel::Config vc;
          auto va = co_await VirtualAccel::Create(rack->pod().host(cp->host),
                                                  std::move(*path), vc, *qp);
          CXLPOOL_CHECK_OK(va.status());
          drained->push_back(std::move(cp->accel));  // let in-flight jobs finish
          cp->accel = std::move(*va);
          cp->qp = *qp;
          if (*first_rebalance < 0) {
            *first_rebalance = loop->now();
          }
        });
  }

  // Job buffers in the pool and job streams.
  sim::StopToken& stop = rack.stop_token();
  Nanos repair_at = 3 * kMillisecond;
  Nanos end_at = 12 * kMillisecond;
  for (auto& c : clients) {
    auto seg = rack.pod().pool().Allocate(128 * kKiB);
    CXLPOOL_CHECK_OK(seg.status());
    Spawn(JobStream(rack, *c, seg->base, seg->base + 64 * kKiB, repair_at, stop));
  }

  loop.RunUntil(repair_at);
  double util_before = rack.accel(0)->EngineUtilization();
  rack.accel(1)->Repair();
  std::printf("t=%.1f ms: accel 1 repaired; accel 0 utilization %.0f%% "
              "(threshold %.0f%%)\n",
              repair_at / 1e6, util_before * 100, rc.orch.overload_threshold * 100);

  loop.RunUntil(end_at);
  rack.Shutdown();
  loop.RunFor(kMillisecond);

  const auto& rec0 = *rack.orchestrator().record(rack.accel(0)->id());
  const auto& rec1 = *rack.orchestrator().record(rack.accel(1)->id());
  std::printf("\nafter rebalancing (first migration at t=%.2f ms):\n",
              first_rebalance / 1e6);
  std::printf("  accel 0: %zu lease(s), reported util %.0f%%\n",
              rec0.lessees.size(), rec0.utilization * 100);
  std::printf("  accel 1: %zu lease(s), reported util %.0f%%\n",
              rec1.lessees.size(), rec1.utilization * 100);
  std::printf("  rebalance migrations executed: %llu\n\n",
              static_cast<unsigned long long>(rack.orchestrator().stats().rebalances));

  std::printf("%8s | %14s | %14s | %s\n", "host", "p50 before", "p50 after", "jobs");
  for (auto& c : clients) {
    std::printf("%8u | %11.1f us | %11.1f us | %llu\n", c->host.value(),
                c->latency_before.Percentile(0.5) / 1000.0,
                c->latency_after.Percentile(0.5) / 1000.0,
                static_cast<unsigned long long>(c->jobs));
  }
  std::printf("\nexpected shape: leases split across both devices and job p50 "
              "drops once\nqueueing on the hot accelerator is relieved.\n");
  CXLPOOL_CHECK(rack.pod().TotalLostDirtyLines() == 0);
  return 0;
}
