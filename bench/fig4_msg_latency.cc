// E4 / Figure 4: latency distribution of shared-memory message passing
// over the CXL pool (ping-pong over 64 B-slot rings, PCIe-5.0 x16 links).
//
// Paper: sub-microsecond latencies without cache coherence; median ~600 ns,
// slightly above the theoretical minimum of one CXL write + one CXL read.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/msg/channel.h"
#include "src/obs/registry.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using sim::Task;

namespace {

Task<> Pong(msg::Channel& ch, sim::EventLoop& loop, sim::StopToken& stop) {
  while (!stop.stopped()) {
    std::vector<std::byte> m;
    Status st = co_await ch.end_b().Recv(&m, loop.now() + 50 * kMicrosecond);
    if (st.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    CXLPOOL_CHECK_OK(st);
    CXLPOOL_CHECK_OK(co_await ch.end_b().Send(m));
  }
}

Task<> Ping(msg::Channel& ch, sim::EventLoop& loop, sim::Histogram& hist,
            int count, sim::StopToken& stop) {
  std::vector<std::byte> payload(16, std::byte{0x42});  // single 64 B slot
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await ch.end_a().Send(payload));
    std::vector<std::byte> echo;
    CXLPOOL_CHECK_OK(co_await ch.end_a().Recv(&echo, loop.now() + kMillisecond));
    if (i >= count / 10) {  // discard warm-up
      hist.Add((loop.now() - start) / 2);  // one-way
    }
  }
  stop.Stop();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::printf("=== Figure 4: shared-memory message passing latency (one-way) ===\n");
  std::printf("ping-pong over 64 B-slot rings in the CXL pool; both hosts on\n");
  std::printf("PCIe-5.0 x16 links; software coherence (nt-store / inval+load)\n\n");

  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  pc.link.lanes = 16;  // the paper's Figure 4 setup
  cxl::CxlPod pod(loop, pc);

  msg::Channel::Options opts;
  opts.poll_min = 50;   // ping-pong peers busy-poll
  opts.poll_max = 100;
  auto ch = msg::Channel::Create(pod.pool(), pod.host(0), pod.host(1), opts);
  CXLPOOL_CHECK_OK(ch.status());

  sim::Histogram hist;
  sim::StopToken stop;
  sim::Spawn(Pong(**ch, loop, stop));
  sim::Spawn(Ping(**ch, loop, hist, 5000, stop));
  loop.Run();

  const auto& t = pod.host(0).timing();
  std::printf("theoretical floor (one CXL write + one CXL read): %lld ns\n\n",
              static_cast<long long>(t.cxl_write + t.cxl_read));
  std::printf("%8s %10s\n", "quantile", "ns");
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    std::printf("%7.1f%% %10lld\n", q * 100,
                static_cast<long long>(hist.Percentile(q)));
  }
  std::printf("\nmedian %lld ns (paper: ~600 ns, sub-us overall); max %lld ns\n",
              static_cast<long long>(hist.Percentile(0.5)),
              static_cast<long long>(hist.max()));
  if (!json_path.empty()) {
    obs::Registry reg;
    reg.GetHistogram("fig4.oneway_ns")->MergeFrom(hist);
    reg.GetGauge("fig4.floor_ns")->Set(t.cxl_write + t.cxl_read);
    CXLPOOL_CHECK_OK(
        obs::WriteBenchJson(json_path, "fig4_msg_latency", loop.now(), reg));
    std::printf("metrics snapshot: %s\n", json_path.c_str());
  }
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 0);
  return 0;
}
