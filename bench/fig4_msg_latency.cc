// E4 / Figure 4: latency distribution of shared-memory message passing
// over the CXL pool (ping-pong over 64 B-slot rings, PCIe-5.0 x16 links).
//
// Paper: sub-microsecond latencies without cache coherence; median ~600 ns,
// slightly above the theoretical minimum of one CXL write + one CXL read.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/cxl/pod.h"
#include "src/msg/channel.h"
#include "src/obs/registry.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

using namespace cxlpool;
using sim::Task;

namespace {

Task<> Pong(msg::Channel& ch, sim::EventLoop& loop, sim::StopToken& stop) {
  while (!stop.stopped()) {
    std::vector<std::byte> m;
    Status st = co_await ch.end_b().Recv(&m, loop.now() + 50 * kMicrosecond);
    if (st.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    CXLPOOL_CHECK_OK(st);
    CXLPOOL_CHECK_OK(co_await ch.end_b().Send(m));
  }
}

Task<> Ping(msg::Channel& ch, sim::EventLoop& loop, sim::Histogram& hist,
            int count, sim::StopToken& stop) {
  std::vector<std::byte> payload(16, std::byte{0x42});  // single 64 B slot
  for (int i = 0; i < count; ++i) {
    Nanos start = loop.now();
    CXLPOOL_CHECK_OK(co_await ch.end_a().Send(payload));
    std::vector<std::byte> echo;
    CXLPOOL_CHECK_OK(co_await ch.end_a().Recv(&echo, loop.now() + kMillisecond));
    if (i >= count / 10) {  // discard warm-up
      hist.Add((loop.now() - start) / 2);  // one-way
    }
  }
  stop.Stop();
}

// --- Streaming phase: one-directional throughput, N concurrent senders ---
// Exercises the hot-path batching machinery end to end: concurrent Sends
// stage in the MPSC submission front, the drainer write-combines them into
// multi-slot nt-store runs (RingSender::SendBatch), and the receiver
// drains bursts from one windowed invalidate+load round.

Task<> StreamSend(msg::Endpoint& ep, int count, int& live, sim::Event& done) {
  std::vector<std::byte> payload(16, std::byte{0x5a});
  for (int i = 0; i < count; ++i) {
    CXLPOOL_CHECK_OK(co_await ep.Send(payload));
  }
  if (--live == 0) {
    done.Set();
  }
}

Task<> StreamDrain(msg::Endpoint& ep, sim::EventLoop& loop, int total) {
  for (int i = 0; i < total; ++i) {
    std::vector<std::byte> m;
    CXLPOOL_CHECK_OK(co_await ep.Recv(&m, loop.now() + 10 * kMillisecond));
    CXLPOOL_CHECK(m.size() == 16);
  }
}

Task<> StreamPhase(cxl::CxlPod& pod, sim::EventLoop& loop, int producers,
                   int per_producer, double* rate) {
  msg::Channel::Options sopts;
  sopts.poll_min = 50;
  sopts.poll_max = 100;
  sopts.submit.watermark = 8;  // opportunistic batching, no Nagle delay
  auto sch = msg::Channel::Create(pod.pool(), pod.host(0), pod.host(1), sopts);
  CXLPOOL_CHECK_OK(sch.status());
  int live = producers;
  sim::Event done(loop);
  Nanos t0 = loop.now();
  for (int p = 0; p < producers; ++p) {
    sim::Spawn(StreamSend((*sch)->end_a(), per_producer, live, done));
  }
  co_await StreamDrain((*sch)->end_b(), loop, per_producer * producers);
  while (live > 0) {
    co_await done.Wait();
  }
  *rate = static_cast<double>(per_producer * producers) * 1e9 /
          static_cast<double>(loop.now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::printf("=== Figure 4: shared-memory message passing latency (one-way) ===\n");
  std::printf("ping-pong over 64 B-slot rings in the CXL pool; both hosts on\n");
  std::printf("PCIe-5.0 x16 links; software coherence (nt-store / inval+load)\n\n");

  sim::EventLoop loop;
  cxl::CxlPodConfig pc;
  pc.num_hosts = 2;
  pc.num_mhds = 1;
  pc.mhd_capacity = 16 * kMiB;
  pc.dram_per_host = 1 * kMiB;
  pc.link.lanes = 16;  // the paper's Figure 4 setup
  cxl::CxlPod pod(loop, pc);

  msg::Channel::Options opts;
  opts.poll_min = 50;   // ping-pong peers busy-poll
  opts.poll_max = 100;
  auto ch = msg::Channel::Create(pod.pool(), pod.host(0), pod.host(1), opts);
  CXLPOOL_CHECK_OK(ch.status());

  sim::Histogram hist;
  sim::StopToken stop;
  sim::Spawn(Pong(**ch, loop, stop));
  sim::Spawn(Ping(**ch, loop, hist, 5000, stop));
  loop.Run();

  const auto& t = pod.host(0).timing();
  std::printf("theoretical floor (one CXL write + one CXL read): %lld ns\n\n",
              static_cast<long long>(t.cxl_write + t.cxl_read));
  std::printf("%8s %10s\n", "quantile", "ns");
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    std::printf("%7.1f%% %10lld\n", q * 100,
                static_cast<long long>(hist.Percentile(q)));
  }
  std::printf("\nmedian %lld ns (paper: ~600 ns, sub-us overall); max %lld ns\n",
              static_cast<long long>(hist.Percentile(0.5)),
              static_cast<long long>(hist.max()));

  // Streaming throughput: same rings, one direction, concurrent senders.
  // The 8-producer row shows the MPSC front + SendBatch write-combining;
  // the 1-producer row is the unbatched reference.
  std::printf("\n=== streaming throughput (batched MPSC submission) ===\n");
  double rate1 = 0;
  double rate8 = 0;
  sim::RunBlocking(loop, StreamPhase(pod, loop, 1, 8000, &rate1));
  sim::RunBlocking(loop, StreamPhase(pod, loop, 8, 1000, &rate8));
  std::printf("  %-9s %10s %14s\n", "producers", "msgs", "msgs/sec");
  std::printf("  %9d %10d %14.0f\n", 1, 8000, rate1);
  std::printf("  %9d %10d %14.0f\n", 8, 8000, rate8);

  if (!json_path.empty()) {
    obs::Registry reg;
    reg.GetHistogram("fig4.oneway_ns")->MergeFrom(hist);
    reg.GetGauge("fig4.floor_ns")->Set(t.cxl_write + t.cxl_read);
    reg.GetGauge("fig4.msgs_per_sec", {{"producers", "1"}})
        ->Set(static_cast<int64_t>(rate1));
    reg.GetGauge("fig4.msgs_per_sec", {{"producers", "8"}})
        ->Set(static_cast<int64_t>(rate8));
    CXLPOOL_CHECK_OK(
        obs::WriteBenchJson(json_path, "fig4_msg_latency", loop.now(), reg));
    std::printf("metrics snapshot: %s\n", json_path.c_str());
  }
  CXLPOOL_CHECK(pod.TotalLostDirtyLines() == 0);
  return 0;
}
