# Empty dependencies file for cxlpool_stranding.
# This may be replaced when dependencies are built.
