file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_stranding.dir/binpack.cc.o"
  "CMakeFiles/cxlpool_stranding.dir/binpack.cc.o.d"
  "CMakeFiles/cxlpool_stranding.dir/experiment.cc.o"
  "CMakeFiles/cxlpool_stranding.dir/experiment.cc.o.d"
  "CMakeFiles/cxlpool_stranding.dir/staffing.cc.o"
  "CMakeFiles/cxlpool_stranding.dir/staffing.cc.o.d"
  "CMakeFiles/cxlpool_stranding.dir/workload.cc.o"
  "CMakeFiles/cxlpool_stranding.dir/workload.cc.o.d"
  "libcxlpool_stranding.a"
  "libcxlpool_stranding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_stranding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
