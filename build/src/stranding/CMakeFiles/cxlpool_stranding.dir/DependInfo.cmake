
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stranding/binpack.cc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/binpack.cc.o" "gcc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/binpack.cc.o.d"
  "/root/repo/src/stranding/experiment.cc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/experiment.cc.o" "gcc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/experiment.cc.o.d"
  "/root/repo/src/stranding/staffing.cc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/staffing.cc.o" "gcc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/staffing.cc.o.d"
  "/root/repo/src/stranding/workload.cc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/workload.cc.o" "gcc" "src/stranding/CMakeFiles/cxlpool_stranding.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cxlpool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpool_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
