file(REMOVE_RECURSE
  "libcxlpool_stranding.a"
)
