# Empty compiler generated dependencies file for cxlpool_sim.
# This may be replaced when dependencies are built.
