file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_sim.dir/bandwidth.cc.o"
  "CMakeFiles/cxlpool_sim.dir/bandwidth.cc.o.d"
  "CMakeFiles/cxlpool_sim.dir/event_loop.cc.o"
  "CMakeFiles/cxlpool_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/cxlpool_sim.dir/logger.cc.o"
  "CMakeFiles/cxlpool_sim.dir/logger.cc.o.d"
  "CMakeFiles/cxlpool_sim.dir/random.cc.o"
  "CMakeFiles/cxlpool_sim.dir/random.cc.o.d"
  "CMakeFiles/cxlpool_sim.dir/stats.cc.o"
  "CMakeFiles/cxlpool_sim.dir/stats.cc.o.d"
  "libcxlpool_sim.a"
  "libcxlpool_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
