file(REMOVE_RECURSE
  "libcxlpool_sim.a"
)
