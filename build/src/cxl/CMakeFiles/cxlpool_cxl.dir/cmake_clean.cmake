file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_cxl.dir/host_adapter.cc.o"
  "CMakeFiles/cxlpool_cxl.dir/host_adapter.cc.o.d"
  "CMakeFiles/cxlpool_cxl.dir/pod.cc.o"
  "CMakeFiles/cxlpool_cxl.dir/pod.cc.o.d"
  "CMakeFiles/cxlpool_cxl.dir/pool.cc.o"
  "CMakeFiles/cxlpool_cxl.dir/pool.cc.o.d"
  "CMakeFiles/cxlpool_cxl.dir/replication.cc.o"
  "CMakeFiles/cxlpool_cxl.dir/replication.cc.o.d"
  "libcxlpool_cxl.a"
  "libcxlpool_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
