file(REMOVE_RECURSE
  "libcxlpool_cxl.a"
)
