# Empty compiler generated dependencies file for cxlpool_cxl.
# This may be replaced when dependencies are built.
