
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cxl/host_adapter.cc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/host_adapter.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/host_adapter.cc.o.d"
  "/root/repo/src/cxl/pod.cc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/pod.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/pod.cc.o.d"
  "/root/repo/src/cxl/pool.cc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/pool.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/pool.cc.o.d"
  "/root/repo/src/cxl/replication.cc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/replication.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpool_cxl.dir/replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cxlpool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpool_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxlpool_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
