file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_core.dir/agent.cc.o"
  "CMakeFiles/cxlpool_core.dir/agent.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/mmio_path.cc.o"
  "CMakeFiles/cxlpool_core.dir/mmio_path.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/orchestrator.cc.o"
  "CMakeFiles/cxlpool_core.dir/orchestrator.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/queue_pair.cc.o"
  "CMakeFiles/cxlpool_core.dir/queue_pair.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/rack.cc.o"
  "CMakeFiles/cxlpool_core.dir/rack.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/virtual_accel.cc.o"
  "CMakeFiles/cxlpool_core.dir/virtual_accel.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/virtual_nic.cc.o"
  "CMakeFiles/cxlpool_core.dir/virtual_nic.cc.o.d"
  "CMakeFiles/cxlpool_core.dir/virtual_ssd.cc.o"
  "CMakeFiles/cxlpool_core.dir/virtual_ssd.cc.o.d"
  "libcxlpool_core.a"
  "libcxlpool_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
