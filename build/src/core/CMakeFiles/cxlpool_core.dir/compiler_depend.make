# Empty compiler generated dependencies file for cxlpool_core.
# This may be replaced when dependencies are built.
