
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/cxlpool_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/agent.cc.o.d"
  "/root/repo/src/core/mmio_path.cc" "src/core/CMakeFiles/cxlpool_core.dir/mmio_path.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/mmio_path.cc.o.d"
  "/root/repo/src/core/orchestrator.cc" "src/core/CMakeFiles/cxlpool_core.dir/orchestrator.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/orchestrator.cc.o.d"
  "/root/repo/src/core/queue_pair.cc" "src/core/CMakeFiles/cxlpool_core.dir/queue_pair.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/queue_pair.cc.o.d"
  "/root/repo/src/core/rack.cc" "src/core/CMakeFiles/cxlpool_core.dir/rack.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/rack.cc.o.d"
  "/root/repo/src/core/virtual_accel.cc" "src/core/CMakeFiles/cxlpool_core.dir/virtual_accel.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/virtual_accel.cc.o.d"
  "/root/repo/src/core/virtual_nic.cc" "src/core/CMakeFiles/cxlpool_core.dir/virtual_nic.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/virtual_nic.cc.o.d"
  "/root/repo/src/core/virtual_ssd.cc" "src/core/CMakeFiles/cxlpool_core.dir/virtual_ssd.cc.o" "gcc" "src/core/CMakeFiles/cxlpool_core.dir/virtual_ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/cxlpool_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/cxlpool_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/cxlpool_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cxlpool_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlpool_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxlpool_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpool_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cxlpool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
