file(REMOVE_RECURSE
  "libcxlpool_core.a"
)
