file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_devices.dir/accel.cc.o"
  "CMakeFiles/cxlpool_devices.dir/accel.cc.o.d"
  "CMakeFiles/cxlpool_devices.dir/nic.cc.o"
  "CMakeFiles/cxlpool_devices.dir/nic.cc.o.d"
  "CMakeFiles/cxlpool_devices.dir/ssd.cc.o"
  "CMakeFiles/cxlpool_devices.dir/ssd.cc.o.d"
  "libcxlpool_devices.a"
  "libcxlpool_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
