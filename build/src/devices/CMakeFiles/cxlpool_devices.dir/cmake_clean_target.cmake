file(REMOVE_RECURSE
  "libcxlpool_devices.a"
)
