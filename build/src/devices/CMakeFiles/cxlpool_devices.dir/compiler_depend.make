# Empty compiler generated dependencies file for cxlpool_devices.
# This may be replaced when dependencies are built.
