file(REMOVE_RECURSE
  "libcxlpool_stack.a"
)
