# Empty dependencies file for cxlpool_stack.
# This may be replaced when dependencies are built.
