file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_stack.dir/buffer_pool.cc.o"
  "CMakeFiles/cxlpool_stack.dir/buffer_pool.cc.o.d"
  "CMakeFiles/cxlpool_stack.dir/loadgen.cc.o"
  "CMakeFiles/cxlpool_stack.dir/loadgen.cc.o.d"
  "CMakeFiles/cxlpool_stack.dir/udp.cc.o"
  "CMakeFiles/cxlpool_stack.dir/udp.cc.o.d"
  "libcxlpool_stack.a"
  "libcxlpool_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
