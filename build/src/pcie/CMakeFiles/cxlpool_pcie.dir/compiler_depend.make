# Empty compiler generated dependencies file for cxlpool_pcie.
# This may be replaced when dependencies are built.
