file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_pcie.dir/device.cc.o"
  "CMakeFiles/cxlpool_pcie.dir/device.cc.o.d"
  "CMakeFiles/cxlpool_pcie.dir/switch_fabric.cc.o"
  "CMakeFiles/cxlpool_pcie.dir/switch_fabric.cc.o.d"
  "libcxlpool_pcie.a"
  "libcxlpool_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
