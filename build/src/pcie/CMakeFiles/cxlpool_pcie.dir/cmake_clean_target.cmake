file(REMOVE_RECURSE
  "libcxlpool_pcie.a"
)
