file(REMOVE_RECURSE
  "libcxlpool_netsim.a"
)
