file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_netsim.dir/network.cc.o"
  "CMakeFiles/cxlpool_netsim.dir/network.cc.o.d"
  "libcxlpool_netsim.a"
  "libcxlpool_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
