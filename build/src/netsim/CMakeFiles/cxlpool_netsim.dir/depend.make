# Empty dependencies file for cxlpool_netsim.
# This may be replaced when dependencies are built.
