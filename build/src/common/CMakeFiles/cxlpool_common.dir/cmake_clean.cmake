file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_common.dir/status.cc.o"
  "CMakeFiles/cxlpool_common.dir/status.cc.o.d"
  "libcxlpool_common.a"
  "libcxlpool_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
