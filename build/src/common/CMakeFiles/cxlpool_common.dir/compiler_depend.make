# Empty compiler generated dependencies file for cxlpool_common.
# This may be replaced when dependencies are built.
