file(REMOVE_RECURSE
  "libcxlpool_common.a"
)
