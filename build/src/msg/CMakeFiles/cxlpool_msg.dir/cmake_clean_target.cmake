file(REMOVE_RECURSE
  "libcxlpool_msg.a"
)
