# Empty dependencies file for cxlpool_msg.
# This may be replaced when dependencies are built.
