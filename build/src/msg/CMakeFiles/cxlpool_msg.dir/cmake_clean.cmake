file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_msg.dir/channel.cc.o"
  "CMakeFiles/cxlpool_msg.dir/channel.cc.o.d"
  "CMakeFiles/cxlpool_msg.dir/ring.cc.o"
  "CMakeFiles/cxlpool_msg.dir/ring.cc.o.d"
  "CMakeFiles/cxlpool_msg.dir/rpc.cc.o"
  "CMakeFiles/cxlpool_msg.dir/rpc.cc.o.d"
  "libcxlpool_msg.a"
  "libcxlpool_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
