# Empty compiler generated dependencies file for cxlpool_tco.
# This may be replaced when dependencies are built.
