file(REMOVE_RECURSE
  "libcxlpool_tco.a"
)
