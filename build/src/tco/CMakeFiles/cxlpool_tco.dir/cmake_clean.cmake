file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_tco.dir/tco.cc.o"
  "CMakeFiles/cxlpool_tco.dir/tco.cc.o.d"
  "libcxlpool_tco.a"
  "libcxlpool_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
