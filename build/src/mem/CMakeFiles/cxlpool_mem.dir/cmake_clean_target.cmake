file(REMOVE_RECURSE
  "libcxlpool_mem.a"
)
