# Empty compiler generated dependencies file for cxlpool_mem.
# This may be replaced when dependencies are built.
