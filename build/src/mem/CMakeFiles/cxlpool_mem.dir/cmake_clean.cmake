file(REMOVE_RECURSE
  "CMakeFiles/cxlpool_mem.dir/address_map.cc.o"
  "CMakeFiles/cxlpool_mem.dir/address_map.cc.o.d"
  "CMakeFiles/cxlpool_mem.dir/backend.cc.o"
  "CMakeFiles/cxlpool_mem.dir/backend.cc.o.d"
  "CMakeFiles/cxlpool_mem.dir/cache.cc.o"
  "CMakeFiles/cxlpool_mem.dir/cache.cc.o.d"
  "libcxlpool_mem.a"
  "libcxlpool_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpool_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
