file(REMOVE_RECURSE
  "CMakeFiles/torless_rack.dir/torless_rack.cpp.o"
  "CMakeFiles/torless_rack.dir/torless_rack.cpp.o.d"
  "torless_rack"
  "torless_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torless_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
