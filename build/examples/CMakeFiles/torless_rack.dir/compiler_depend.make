# Empty compiler generated dependencies file for torless_rack.
# This may be replaced when dependencies are built.
