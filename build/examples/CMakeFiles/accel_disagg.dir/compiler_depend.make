# Empty compiler generated dependencies file for accel_disagg.
# This may be replaced when dependencies are built.
