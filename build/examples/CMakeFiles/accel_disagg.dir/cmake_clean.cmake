file(REMOVE_RECURSE
  "CMakeFiles/accel_disagg.dir/accel_disagg.cpp.o"
  "CMakeFiles/accel_disagg.dir/accel_disagg.cpp.o.d"
  "accel_disagg"
  "accel_disagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_disagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
