file(REMOVE_RECURSE
  "CMakeFiles/nic_failover.dir/nic_failover.cpp.o"
  "CMakeFiles/nic_failover.dir/nic_failover.cpp.o.d"
  "nic_failover"
  "nic_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
