# Empty dependencies file for nic_failover.
# This may be replaced when dependencies are built.
