# Empty compiler generated dependencies file for ssd_harvest.
# This may be replaced when dependencies are built.
