file(REMOVE_RECURSE
  "CMakeFiles/ssd_harvest.dir/ssd_harvest.cpp.o"
  "CMakeFiles/ssd_harvest.dir/ssd_harvest.cpp.o.d"
  "ssd_harvest"
  "ssd_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
