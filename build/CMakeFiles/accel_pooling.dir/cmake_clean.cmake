file(REMOVE_RECURSE
  "CMakeFiles/accel_pooling.dir/bench/accel_pooling.cc.o"
  "CMakeFiles/accel_pooling.dir/bench/accel_pooling.cc.o.d"
  "bench/accel_pooling"
  "bench/accel_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
