# Empty compiler generated dependencies file for accel_pooling.
# This may be replaced when dependencies are built.
