file(REMOVE_RECURSE
  "CMakeFiles/fig2_stranding.dir/bench/fig2_stranding.cc.o"
  "CMakeFiles/fig2_stranding.dir/bench/fig2_stranding.cc.o.d"
  "bench/fig2_stranding"
  "bench/fig2_stranding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stranding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
