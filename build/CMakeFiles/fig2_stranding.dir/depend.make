# Empty dependencies file for fig2_stranding.
# This may be replaced when dependencies are built.
