file(REMOVE_RECURSE
  "CMakeFiles/fig3_udp_latency.dir/bench/fig3_udp_latency.cc.o"
  "CMakeFiles/fig3_udp_latency.dir/bench/fig3_udp_latency.cc.o.d"
  "bench/fig3_udp_latency"
  "bench/fig3_udp_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_udp_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
