# Empty compiler generated dependencies file for fig3_udp_latency.
# This may be replaced when dependencies are built.
