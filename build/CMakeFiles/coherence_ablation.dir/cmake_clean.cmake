file(REMOVE_RECURSE
  "CMakeFiles/coherence_ablation.dir/bench/coherence_ablation.cc.o"
  "CMakeFiles/coherence_ablation.dir/bench/coherence_ablation.cc.o.d"
  "bench/coherence_ablation"
  "bench/coherence_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
