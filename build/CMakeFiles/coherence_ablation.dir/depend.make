# Empty dependencies file for coherence_ablation.
# This may be replaced when dependencies are built.
