file(REMOVE_RECURSE
  "CMakeFiles/mmio_forwarding.dir/bench/mmio_forwarding.cc.o"
  "CMakeFiles/mmio_forwarding.dir/bench/mmio_forwarding.cc.o.d"
  "bench/mmio_forwarding"
  "bench/mmio_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmio_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
