# Empty compiler generated dependencies file for mmio_forwarding.
# This may be replaced when dependencies are built.
