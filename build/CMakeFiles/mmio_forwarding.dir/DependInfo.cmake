
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/mmio_forwarding.cc" "CMakeFiles/mmio_forwarding.dir/bench/mmio_forwarding.cc.o" "gcc" "CMakeFiles/mmio_forwarding.dir/bench/mmio_forwarding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cxlpool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpool_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxlpool_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlpool_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cxlpool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/cxlpool_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/cxlpool_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/cxlpool_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cxlpool_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
