# Empty compiler generated dependencies file for interleave_bw.
# This may be replaced when dependencies are built.
