file(REMOVE_RECURSE
  "CMakeFiles/interleave_bw.dir/bench/interleave_bw.cc.o"
  "CMakeFiles/interleave_bw.dir/bench/interleave_bw.cc.o.d"
  "bench/interleave_bw"
  "bench/interleave_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleave_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
