# Empty dependencies file for fig4_msg_latency.
# This may be replaced when dependencies are built.
