file(REMOVE_RECURSE
  "CMakeFiles/fig4_msg_latency.dir/bench/fig4_msg_latency.cc.o"
  "CMakeFiles/fig4_msg_latency.dir/bench/fig4_msg_latency.cc.o.d"
  "bench/fig4_msg_latency"
  "bench/fig4_msg_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_msg_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
