file(REMOVE_RECURSE
  "CMakeFiles/tco_comparison.dir/bench/tco_comparison.cc.o"
  "CMakeFiles/tco_comparison.dir/bench/tco_comparison.cc.o.d"
  "bench/tco_comparison"
  "bench/tco_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
