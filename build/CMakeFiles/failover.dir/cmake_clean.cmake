file(REMOVE_RECURSE
  "CMakeFiles/failover.dir/bench/failover.cc.o"
  "CMakeFiles/failover.dir/bench/failover.cc.o.d"
  "bench/failover"
  "bench/failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
