file(REMOVE_RECURSE
  "CMakeFiles/sqrtn_pooling.dir/bench/sqrtn_pooling.cc.o"
  "CMakeFiles/sqrtn_pooling.dir/bench/sqrtn_pooling.cc.o.d"
  "bench/sqrtn_pooling"
  "bench/sqrtn_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqrtn_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
