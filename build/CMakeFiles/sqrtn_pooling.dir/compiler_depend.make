# Empty compiler generated dependencies file for sqrtn_pooling.
# This may be replaced when dependencies are built.
