file(REMOVE_RECURSE
  "CMakeFiles/pcie_switch_baseline.dir/bench/pcie_switch_baseline.cc.o"
  "CMakeFiles/pcie_switch_baseline.dir/bench/pcie_switch_baseline.cc.o.d"
  "bench/pcie_switch_baseline"
  "bench/pcie_switch_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcie_switch_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
