# Empty compiler generated dependencies file for pcie_switch_baseline.
# This may be replaced when dependencies are built.
