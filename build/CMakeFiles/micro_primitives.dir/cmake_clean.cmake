file(REMOVE_RECURSE
  "CMakeFiles/micro_primitives.dir/bench/micro_primitives.cc.o"
  "CMakeFiles/micro_primitives.dir/bench/micro_primitives.cc.o.d"
  "bench/micro_primitives"
  "bench/micro_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
