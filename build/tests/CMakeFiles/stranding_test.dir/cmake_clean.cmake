file(REMOVE_RECURSE
  "CMakeFiles/stranding_test.dir/stranding_test.cc.o"
  "CMakeFiles/stranding_test.dir/stranding_test.cc.o.d"
  "stranding_test"
  "stranding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stranding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
