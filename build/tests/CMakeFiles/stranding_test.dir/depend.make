# Empty dependencies file for stranding_test.
# This may be replaced when dependencies are built.
