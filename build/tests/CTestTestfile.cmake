# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;cxlpool_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;cxlpool_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;cxlpool_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cxl_test "/root/repo/build/tests/cxl_test")
set_tests_properties(cxl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;cxlpool_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(msg_test "/root/repo/build/tests/msg_test")
set_tests_properties(msg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stack_test "/root/repo/build/tests/stack_test")
set_tests_properties(stack_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stranding_test "/root/repo/build/tests/stranding_test")
set_tests_properties(stranding_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tco_test "/root/repo/build/tests/tco_test")
set_tests_properties(tco_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pcie_test "/root/repo/build/tests/pcie_test")
set_tests_properties(pcie_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(devices_test "/root/repo/build/tests/devices_test")
set_tests_properties(devices_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(coverage_test "/root/repo/build/tests/coverage_test")
set_tests_properties(coverage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;55;add_test;/root/repo/tests/CMakeLists.txt;0;")
