// Seeded repro for the overloaded-never-retried rule, for
// `python3 tools/simlint --self-test`. NOT part of the build.
//
// The PR 6 contract: kOverloaded is an explicit push-back from a LIVE
// peer. It is terminal for the attempt — retrying it feeds the overload
// it reports, and counting it against a circuit breaker opens the
// breaker exactly when demand peaks (amputating healthy capacity).
// Only kDeadlineExceeded and kUnavailable are transport failures.
// Both contract-violation shapes appear below: a retryability/breaker
// predicate matching kOverloaded positively, and an inline retry branch.
#include <cstdint>
#include <vector>

#include "src/msg/retry.h"
#include "src/msg/rpc.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

// BUG (shape a): the predicate makes every retry loop in the system
// treat push-back as a transient transport fault.
inline bool IsRetryableStatus(const Status& st) {
  return st.code() == StatusCode::kUnavailable ||
         st.code() == StatusCode::kOverloaded;  // simlint-expect: overloaded-never-retried
}

// BUG (shape a, breaker flavour): counting push-back opens the breaker
// under pure load, with the peer alive and draining.
inline bool IsBreakerFailureLoose(const Status& st) {
  return st.code() == StatusCode::kOverloaded;  // simlint-expect: overloaded-never-retried
}

// BUG (shape b): an inline retry branch keyed on kOverloaded — backoff
// plus continue turns shed load into a retry storm.
inline sim::Task<Status> NaiveRetryCall(msg::RpcClient& client,
                                        msg::RetryPolicy& policy,
                                        std::vector<std::byte> req,
                                        Nanos deadline) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
    if (resp.status().code() == StatusCode::kOverloaded) {  // simlint-expect: overloaded-never-retried
      policy.RecordFailure(attempt);
      continue;
    }
    co_return resp.status();
  }
  co_return Status(StatusCode::kUnavailable, "retries exhausted");
}

// CLEAN: the contract-conforming predicate — push-back is excluded.
inline bool IsRetryableStatusStrict(const Status& st) {
  return st.code() == StatusCode::kDeadlineExceeded ||
         st.code() == StatusCode::kUnavailable;
}

// CLEAN: matching kOverloaded to SURFACE it (shed, no retry machinery)
// is exactly what callers should do.
inline sim::Task<Status> ShedOnOverload(msg::RpcClient& client,
                                        std::vector<std::byte> req,
                                        Nanos deadline) {
  auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
  if (resp.status().code() == StatusCode::kOverloaded) {
    co_return resp.status();  // terminal: hand the push-back to the caller
  }
  co_return OkStatus();
}

// CLEAN: a negative match (`!=`) guarding the non-overload path may
// retry freely.
inline sim::Task<Status> RetryUnlessOverloaded(msg::RpcClient& client,
                                               msg::RetryPolicy& policy,
                                               std::vector<std::byte> req,
                                               Nanos deadline) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
    if (resp.status().code() != StatusCode::kOverloaded) {
      policy.RecordFailure(attempt);
      continue;
    }
    co_return resp.status();
  }
  co_return OkStatus();
}

}  // namespace cxlpool::repro
