// Seeded reproduction of the PR 9 split-brain class for
// `python3 tools/simlint --self-test`. NOT part of the build. Do not
// "fix" the Buggy class — the self-test asserts the annotated lines
// are flagged, and only those.
//
// The bug shape: an agent-side coroutine validates the lease epoch,
// then suspends (here: a slow-drain delay, in the wild also breaker
// backoff or a nested RPC), then rings the device BAR. While the frame
// is parked the orchestrator can condemn this host, bump the epoch, and
// re-grant the device to another path — the stale check then admits a
// dual-ownership write that no later fence can recall. The partition
// storm in chaos_soak is what catches this dynamically (lease-oracle
// regressions); the lint catches it statically.
#include <cstdint>

#include "src/pcie/device.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

class BuggyLeaseApplier {
 public:
  // BUG: the epoch check is stale by the time the drain delay resumes;
  // the MmioWrite after it can land under a revoked lease.
  sim::Task<Status> Apply(uint64_t want_epoch, uint64_t reg,
                          uint64_t value) {
    if (want_epoch != epoch_) {
      co_return Aborted("stale lease epoch");
    }
    co_await sim::Delay(loop_, drain_);
    Status st = co_await device_->MmioWrite(reg, value);  // simlint-expect: lease-check-after-await
    co_return st;
  }

 private:
  pcie::PcieDevice* device_;
  sim::EventLoop& loop_;
  Nanos drain_;
  uint64_t epoch_ = 0;
};

// The fix, in the same file so the self-test pins the contrast: after
// the last unrelated suspension, re-check the epoch immediately before
// touching the device. The apply's own co_await does not reopen the
// window — the fence push drains the inflight counter before acking, so
// "no suspension between check and apply" is exactly the invariant the
// orchestrator's fence-ack proof rests on.
class RecheckedLeaseApplier {
 public:
  sim::Task<Status> Apply(uint64_t want_epoch, uint64_t reg,
                          uint64_t value) {
    if (want_epoch != epoch_) {
      co_return Aborted("stale lease epoch");
    }
    co_await sim::Delay(loop_, drain_);
    if (want_epoch != epoch_) {
      co_return Aborted("lease fenced during drain");
    }
    Status st = co_await device_->MmioWrite(reg, value);
    co_return st;
  }

 private:
  pcie::PcieDevice* device_;
  sim::EventLoop& loop_;
  Nanos drain_;
  uint64_t epoch_ = 0;
};

// The production shape (Agent::HandleForwarding): check, then apply,
// with no suspension in between. The rule must stay quiet here even
// though the apply itself is a co_await.
class StraightLineApplier {
 public:
  sim::Task<Status> Apply(uint64_t want_epoch, uint64_t reg,
                          uint64_t value) {
    if (want_epoch != epoch_) {
      co_return Aborted("stale lease epoch");
    }
    Status st = co_await device_->MmioWrite(reg, value);
    co_return st;
  }

 private:
  pcie::PcieDevice* device_;
  uint64_t epoch_ = 0;
};

}  // namespace cxlpool::repro
