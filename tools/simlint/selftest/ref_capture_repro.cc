// Seeded repro for the ref-capture-across-suspension rule, for
// `python3 tools/simlint --self-test`. NOT part of the build.
//
// A coroutine lambda's frame suspends and resumes after the creating
// scope may have unwound, so a by-reference capture is a use-after-scope
// waiting for a scheduler interleaving. Migration handlers and Spawned
// probe lambdas are the shapes that have bitten (the chaos_soak handler
// PR 5 fixed). The sanctioned fixes — value capture, pointer
// init-capture (`[p = &obj]`), or passing state as coroutine parameters
// — all appear below and must stay quiet.
#include <cstdint>
#include <vector>

#include "src/core/orchestrator.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

inline void WireHandlers(core::Orchestrator& orch,
                         std::vector<uint32_t>& leases,
                         sim::EventLoop& loop) {
  // BUG: `leases` is captured by reference; if the wiring scope unwinds
  // before the last migration completes, the resumed frame writes
  // through a dangling reference.
  orch.agent(HostId(0))->SetMigrationHandler(
      [&leases](PcieDeviceId, PcieDeviceId dev, HostId) -> sim::Task<> {  // simlint-expect: ref-capture-across-suspension
        leases[0] = dev.value();
        co_return;
      });

  // BUG: the implicit `[&]` form of the same mistake.
  orch.agent(HostId(1))->SetMigrationHandler(
      [&](PcieDeviceId, PcieDeviceId dev, HostId) -> sim::Task<> {  // simlint-expect: ref-capture-across-suspension
        leases[1] = dev.value();
        co_return;
      });

  // CLEAN: pointer init-capture — the `&` is address-of inside the
  // initializer, so the POINTER is captured by value; the author has
  // named exactly which object must outlive the handler.
  orch.agent(HostId(2))->SetMigrationHandler(
      [leases = &leases](PcieDeviceId, PcieDeviceId dev, HostId) -> sim::Task<> {
        (*leases)[2] = dev.value();
        co_return;
      });

  // CLEAN: plain value capture.
  orch.agent(HostId(3))->SetMigrationHandler(
      [base = leases.size()](PcieDeviceId, PcieDeviceId dev, HostId) -> sim::Task<> {
        (void)(base + dev.value());
        co_return;
      });

  // CLEAN: a by-reference lambda that is NOT a coroutine and returns no
  // Task never suspends, so its captures cannot outlive the scope.
  auto bump = [&leases](uint32_t v) { leases.push_back(v); };
  bump(7);
  (void)loop;
}

}  // namespace cxlpool::repro
