// Clean counterparts to the repro files: the patterns the lint must NOT
// flag. Not part of the build; `python3 tools/simlint --self-test`
// asserts zero findings here (the file carries no simlint-expect
// annotations, so any finding is a false positive).
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/cxl/host_adapter.h"
#include "src/msg/channel.h"
#include "src/msg/rpc.h"
#include "src/msg/wire.h"
#include "src/obs/trace.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

class FixedDoorbellSender {
 public:
  FixedDoorbellSender(cxl::HostAdapter& host, uint64_t line_addr)
      : host_(host), addr_(line_addr) {}

  // The PR 1 fix: a coroutine frame owns `buf` until the task completes.
  sim::Task<Status> Ring(uint64_t value) {
    std::array<std::byte, 8> buf;
    msg::wire::PutU64(buf.data(), value);
    co_return co_await host_.StoreNt(addr_, buf);
  }

  // A parameter-only forwarder is safe without being a coroutine: the
  // caller owns `data` and keeps it alive while awaiting the task.
  sim::Task<Status> Publish(uint64_t addr, std::span<const std::byte> data) {
    return host_.StoreNt(addr, data);
  }

 private:
  cxl::HostAdapter& host_;
  uint64_t addr_;
};

// Results consumed every legitimate way.
inline sim::Task<Status> ConsumeProperly(cxl::HostAdapter& host,
                                         uint64_t addr) {
  CO_RETURN_IF_ERROR(co_await host.Flush(addr, 64));
  Status st = co_await host.Invalidate(addr, 64);
  if (!st.ok()) {
    co_return st;
  }
  (void)co_await host.Flush(addr, 64);  // tolerated failure, explicit
  co_return OkStatus();
}

// Supervised loops the lint must accept: a stop token threaded through
// directly, via a member, or via an accessor.
sim::Task<> WatchLoop(cxl::HostAdapter& host, sim::StopToken& stop);

inline void StartSupervisedWatcher(cxl::HostAdapter& host,
                                   sim::StopToken& stop) {
  sim::Spawn(WatchLoop(host, stop));
}

class Supervisor {
 public:
  sim::StopToken& stop_token() { return stop_; }
  void Start(cxl::HostAdapter& host) {
    sim::Spawn(WatchLoop(host, stop_token()));
  }

 private:
  sim::StopToken stop_;
};

// Span hygiene the lint must accept: End() on every exit path, or
// ownership explicitly moved to a new owner.
inline sim::Task<Status> TracedStoreClean(cxl::HostAdapter& host,
                                          obs::Tracer* tracer, uint64_t addr,
                                          std::span<const std::byte> data) {
  obs::Span op = obs::MaybeStartTrace(tracer, "store", host.id().value(),
                                      host.loop().now());
  Status st = co_await host.StoreNt(addr, data);
  if (!st.ok()) {
    op.End(host.loop().now());
    co_return st;
  }
  op.End(host.loop().now());
  co_return OkStatus();
}

inline obs::Span HandOffSpan(obs::Tracer& tracer, uint32_t host, Nanos now) {
  obs::Span op = tracer.StartTrace("op", host, now);
  return op;  // moved to the caller, who owns the End
}

// Budgeted awaits the missing-deadline rule must accept: an absolute
// deadline computed from now(), a deadline/timeout variable threaded
// through, and a sanctioned unbounded wait with an explicit waiver —
// both the current suppression spelling and the legacy lint-tasks one.
sim::Task<Status> RecvInto(msg::Endpoint& end, std::vector<std::byte>* frame,
                           Nanos deadline);

inline sim::Task<Status> BudgetedPoke(msg::RpcClient& client, sim::EventLoop& loop,
                                      std::vector<std::byte> request,
                                      Nanos op_deadline) {
  auto resp = co_await client.Call(msg::kMethodMmioWrite, request,
                                   loop.now() + 100 * kMicrosecond, {},
                                   msg::kPriorityData, op_deadline);
  co_return resp.status();
}

inline sim::Task<Status> BudgetedDrain(msg::Endpoint& end, Nanos deadline) {
  std::vector<std::byte> frame;
  CO_RETURN_IF_ERROR(co_await end.Recv(&frame, deadline));
  co_return co_await end.Recv(&frame);  // lint-tasks: allow(missing-deadline)
}

inline sim::Task<Status> FinalDrain(msg::Endpoint& end) {
  std::vector<std::byte> frame;
  // Shutdown path: the sender is already quiesced, an unbounded wait is
  // the point. The waiver names the rule it overrides.
  co_return co_await end.Recv(&frame);  // simlint: allow(missing-deadline)
}

}  // namespace cxlpool::repro
