// Seeded reproductions for `python3 tools/simlint --self-test`. This
// file is NOT part of the build: it preserves, verbatim in shape, the
// bug classes PR 1 and PR 4 fixed at runtime under ASan, so the lint
// provably catches them. Do not "fix" these — the self-test asserts
// each annotated line is flagged, and ONLY those lines.
#include <array>
#include <cstdint>

#include "src/cxl/host_adapter.h"
#include "src/msg/wire.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

class BuggyDoorbellSender {
 public:
  BuggyDoorbellSender(cxl::HostAdapter& host, uint64_t line_addr)
      : host_(host), addr_(line_addr) {}

  // The exact PR 1 bug: NOT a coroutine, so `buf` dies when this frame
  // returns — but the lazy StoreNt task still holds a span over it and
  // only reads the bytes when the caller finally awaits.
  sim::Task<Status> Ring(uint64_t value) {
    std::array<std::byte, 8> buf;
    msg::wire::PutU64(buf.data(), value);
    return host_.StoreNt(addr_, buf);  // simlint-expect: dangling-frame
  }

 private:
  cxl::HostAdapter& host_;
  uint64_t addr_;
};

// The companion bug class: a Task<Status> dropped on the floor. Lazy
// coroutines start suspended, so this Flush never executes at all — the
// dirty lines silently stay unpublished.
inline void ForgetToAwait(cxl::HostAdapter& host, uint64_t addr) {
  host.Flush(addr, 64);  // simlint-expect: discarded-result
}

// Third bug class (PR 4): a periodic loop detached with no stop token.
// Nothing ever cancels it, so it keeps firing after Shutdown() against a
// rack that no longer exists. Every *Loop coroutine must thread a
// sim::StopToken&.
sim::Task<> WatchLoop(cxl::HostAdapter& host);

inline void StartUnsupervisedWatcher(cxl::HostAdapter& host) {
  sim::Spawn(WatchLoop(host));  // simlint-expect: unstoppable-loop
}

}  // namespace cxlpool::repro
