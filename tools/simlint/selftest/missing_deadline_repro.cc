// Seeded reproduction of the missing-deadline bug class for
// `python3 tools/simlint --self-test`. NOT part of the build. Do not
// "fix" this — the self-test asserts the annotated lines are flagged.
//
// The shape: a co_await on an RPC Call / channel Recv whose argument
// list carries no deadline. An op with no budget cannot be shed by any
// hop: under overload it queues behind a wedged home agent and the
// caller hangs for as long as the wedge lasts — backpressure degrades
// into an unbounded wait. The overload work's whole contract is that a
// deadline rides the wire so every hop (client queue, server dequeue,
// pre-BAR re-check) can drop expired work; an undeadlined await opts
// out of all of it silently.
//
// Note the `/*deadline=*/0` comment on the first call: the token-stream
// lexer strips comments BEFORE the rule looks for deadline-ish words,
// so a comment naming "deadline" cannot launder a missing argument —
// a false-negative class a line-regex engine is structurally prone to.
#include <cstdint>
#include <vector>

#include "src/msg/channel.h"
#include "src/msg/rpc.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

// BUG: the Call has a context and a priority but no deadline — the
// magic number 0 in deadline position means "none", so this op can
// never be shed and the caller blocks until the peer answers.
inline sim::Task<Status> PokeAgentForever(msg::RpcClient& client,
                                          std::vector<std::byte> request) {
  auto resp = co_await client.Call(msg::kMethodMmioWrite, request,  // simlint-expect: missing-deadline
                                   /*deadline=*/0, {});
  co_return resp.status();
}

// BUG: the Recv waits with no deadline argument at all; if the sender
// died, this coroutine is pinned on the ring forever and its frame
// (and everything it references) never unwinds.
inline sim::Task<Status> DrainOne(msg::Endpoint& end) {
  std::vector<std::byte> frame;
  co_return co_await end.Recv(&frame);  // simlint-expect: missing-deadline
}

}  // namespace cxlpool::repro
