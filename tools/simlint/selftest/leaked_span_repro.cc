// Seeded reproduction of the leaked-span bug class for
// `python3 tools/simlint --self-test`. NOT part of the build. Do not
// "fix" this — the self-test asserts the annotated line is flagged.
//
// The shape: an early co_return between StartTrace and End. obs::Span
// requires an explicit End(now) because only the call site knows the
// operation's logical end on the sim clock; the destructor deliberately
// abandons un-ended spans (counted in Tracer::dropped_spans()) rather
// than invent a timestamp. So every exit path that skips End silently
// erases the operation from the trace — invisible at compile time, and
// at runtime only as a counter drifting upward.
#include <cstdint>

#include "src/cxl/host_adapter.h"
#include "src/obs/trace.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

// BUG: the span is started, but the error path co_returns without ever
// calling End — and so does the success path. The whole operation is
// dropped from the trace.
inline sim::Task<Status> TracedStoreLeaky(cxl::HostAdapter& host,
                                          obs::Tracer* tracer, uint64_t addr,
                                          std::span<const std::byte> data) {
  obs::Span op =  // simlint-expect: leaked-span
      obs::MaybeStartTrace(tracer, "store", host.id().value(), host.loop().now());
  Status st = co_await host.StoreNt(addr, data);
  if (!st.ok()) {
    co_return st;  // leak #1: early exit skips End
  }
  co_return OkStatus();  // leak #2: even the happy path forgot End
}

}  // namespace cxlpool::repro
