// False-positive regression corpus: every classic trigger phrase below
// sits where a LINE-REGEX engine sees it but a real lexer must not —
// string literals, raw strings, comments, `#if 0` regions, and macro
// continuation lines. This file carries ZERO simlint-expect annotations:
// ANY finding here is a lexer regression. (The old lint_tasks.py needed
// per-rule workarounds for exactly these shapes and still leaked.)
#include <cstdint>
#include <vector>

#include "src/cxl/host_adapter.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

// A comment is not code: sim::Spawn(ScrubLoop(pool)); host.Flush(a, 64);

/* Nor is a block comment, even one holding a whole bad function:
sim::Task<Status> Bad(msg::RpcClient& c) {
  co_return (co_await c.Call(m, r)).status();
}
*/

// Trigger phrases inside ordinary string literals, with escapes.
inline const char* kHelpText =
    "to reproduce, call sim::Spawn(ReportLoop(rack)) with no stop token "
    "and a \"quoted\" host.Flush(addr, 64); statement";

// A raw string literal spanning lines, delimiter and all. The payload
// is a verbatim copy of two rule triggers.
inline const char* kRawDoc = R"doc(
  obs::Span op = tracer.StartTrace("op", host, now);
  co_return co_await ep.sender().Send(frame);
)doc";

// Continuation lines: the old engine's per-line regexes saw the second
// physical line of this macro as a fresh statement. The preprocessor
// directive is ONE token to the analyzer.
#define CXLPOOL_REPRO_FIRE(host, addr)   \
  do {                                   \
    (void)(host).Flush((addr), 64);      \
  } while (0)

// Disabled code is not code. Everything in this block would fire four
// different rules if the `#if 0` were ignored.
#if 0
sim::Task<Status> Disabled(msg::RpcClient& client, std::mutex& mu) {
  std::lock_guard<std::mutex> g(mu);
  obs::Span op = tracer.StartTrace("op", 0, 0);
  auto r = co_await client.Call(kMethod, req);
  sim::Spawn(WatchLoop(host));
  co_return r.status();
}
#else
inline constexpr int kEnabledBranch = 1;
#endif

// `#if 0` nests: an inner `#if`/`#endif` must not resurrect the region.
#if 0
#if defined(NEVER)
host.Flush(addr, 64);
#endif
msg::RingSender& raw = ep.sender();
raw.Send(frame);
#endif

// A subscript is not a lambda introducer, and an attribute is not a
// capture list.
[[maybe_unused]] inline uint32_t PickFirst(const std::vector<uint32_t>& v) {
  return v[0];
}

// A char literal holding a brace must not desync the scope tracker;
// if it did, the function below would be mis-scoped and the dangling
// return inside a comment above could mis-anchor.
inline char OpenBrace() { return '{'; }

}  // namespace cxlpool::repro
