// Seeded reproduction of the PR 5 use-after-free class for
// `python3 tools/simlint --self-test`. NOT part of the build. Do not
// "fix" the Buggy class — the self-test asserts the annotated lines
// are flagged, and only those.
//
// This is the pre-fix ForwardedMmioPath::Write, reconstructed: a member
// coroutine suspends on a wire RPC, and while the frame is parked a
// migration/failover destroys the owning path object. When the reply
// lands the frame resumes and touches freed members (`stats_`,
// `breaker_`). The original bug survived every directed test and was
// only caught by a full ASan chaos soak; the old line-regex linter had
// no way to see it at all — it cannot tell "before the co_await" from
// "after" without a real statement/suspension model, which is exactly
// what this analyzer's scope tracker provides.
#include <cstdint>
#include <vector>

#include "src/msg/rpc.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

class BuggyForwardedMmioPath {
 public:
  // BUG: everything read from `this` before the co_await is fine (the
  // object is alive when the coroutine starts); `stats_` and `breaker_`
  // AFTER the suspension are reads through a possibly-freed `this`.
  sim::Task<Status> Write(uint64_t offset, uint64_t value) {
    std::vector<std::byte> req = EncodeWrite(offset, value);
    auto resp = co_await client_->Call(msg::kMethodMmioWrite, req,
                                       loop_.now() + timeout_, {});
    if (!resp.ok()) {
      breaker_.RecordOutcome(false);  // simlint-expect: member-read-after-await
      ++stats_.write_errors;  // simlint-expect: member-read-after-await
      co_return resp.status();
    }
    co_return DecodeWriteResp(*resp);
  }

 private:
  std::vector<std::byte> EncodeWrite(uint64_t offset, uint64_t value);
  Status DecodeWriteResp(const std::vector<std::byte>& resp);

  msg::RpcClient* client_;
  sim::EventLoop& loop_;
  Nanos timeout_;
  msg::CircuitBreaker breaker_;
  struct { uint64_t write_errors; } stats_;
};

// The PR 5 fix, in the same file so the self-test pins the contrast:
// pin everything the continuation needs into frame locals BEFORE the
// suspension, and never touch `this` after it. Frame-owned state is
// safe no matter when (or whether) the owner dies.
class PinnedForwardedMmioPath {
 public:
  sim::Task<Status> Write(uint64_t offset, uint64_t value) {
    sim::EventLoop& loop = loop_;
    msg::RpcClient& client = *client_;
    Nanos deadline = loop.now() + timeout_;
    std::vector<std::byte> req = EncodeWrite(offset, value);
    auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
    if (!resp.ok()) {
      co_return resp.status();
    }
    co_return OkStatus();
  }

 private:
  std::vector<std::byte> EncodeWrite(uint64_t offset, uint64_t value);

  msg::RpcClient* client_;
  sim::EventLoop& loop_;
  Nanos timeout_;
};

// The supervised-loop exemption: a coroutine taking a sim::StopToken&
// is stopped before its owner is torn down (the repo-wide *Loop
// protocol), so member access after its awaits is part of the contract,
// not a bug. The rule must stay quiet here.
class SupervisedPoller {
 public:
  sim::Task<> PollLoop(sim::StopToken& stop) {
    while (!stop.stopped()) {
      auto frame = co_await endpoint_->Recv(&buf_, loop_.now() + kMillisecond);
      if (frame.ok()) {
        ++polls_;  // safe: the loop is stopped before `this` dies
      }
    }
  }

 private:
  msg::Endpoint* endpoint_;
  std::vector<std::byte> buf_;
  sim::EventLoop& loop_;
  uint64_t polls_ = 0;
};

}  // namespace cxlpool::repro
