// Seeded repro for the lock-across-await rule, for
// `python3 tools/simlint --self-test`. NOT part of the build.
//
// The simulator is single-threaded but a co_await interleaves arbitrary
// other frames; a scoped guard alive across one serializes or deadlocks
// every frame that touches the same mutex (and in host code it parks a
// whole OS thread). The rule keys on lock-ish TYPE names — TurnGuard is
// named that way precisely because holding a turn across awaits is its
// contract, and it must stay quiet below.
#include <mutex>
#include <vector>

#include "src/msg/rpc.h"
#include "src/sim/task.h"

namespace cxlpool::repro {

// BUG: the guard lives until the end of the function body, so it is
// held across the suspension.
inline sim::Task<Status> LockedPoke(msg::RpcClient& client, std::mutex& mu,
                                    std::vector<std::byte> req,
                                    Nanos deadline) {
  std::lock_guard<std::mutex> g(mu);
  auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});  // simlint-expect: lock-across-await
  co_return resp.status();
}

// CLEAN: the guard is explicitly released before the suspension.
inline sim::Task<Status> ReleaseThenPoke(msg::RpcClient& client,
                                         std::mutex& mu,
                                         std::vector<std::byte> req,
                                         Nanos deadline) {
  std::unique_lock<std::mutex> g(mu);
  req.push_back(std::byte{1});
  g.unlock();
  auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
  co_return resp.status();
}

// CLEAN: the guard's scope ends before the await.
inline sim::Task<Status> ScopedThenPoke(msg::RpcClient& client,
                                        std::mutex& mu,
                                        std::vector<std::byte> req,
                                        Nanos deadline) {
  {
    std::scoped_lock<std::mutex> g(mu);
    req.push_back(std::byte{2});
  }
  auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
  co_return resp.status();
}

// CLEAN: TurnGuard is the RpcClient pipelining primitive; holding a
// turn across the awaited Call is exactly its job. The rule must not
// pattern-match it as a lock.
inline sim::Task<Status> TurnOrderedPoke(msg::RpcClient& client,
                                         std::vector<std::byte> req,
                                         Nanos deadline) {
  msg::TurnGuard turn = client.AcquireTurn();
  auto resp = co_await client.Call(msg::kMethodMmioWrite, req, deadline, {});
  co_return resp.status();
}

}  // namespace cxlpool::repro
