// Seeded repro for the direct-ring-send rule, for
// `python3 tools/simlint --self-test`. Production code publishing
// straight through RingSender skips the MPSC submission front: no
// write-combined batching, no doorbell coalescing, no control-priority
// jump, no staging-bound backpressure. Both bypass shapes appear below —
// the accessor chain and a laundering typed reference — so the self-test
// pins exactly two findings. Never compiled; linted by --self-test only.
#include "src/msg/channel.h"

namespace cxlpool {

sim::Task<Status> BadChainSend(msg::Endpoint& ep,
                               std::span<const std::byte> m) {
  co_return co_await ep.sender().Send(m);  // simlint-expect: direct-ring-send
}

sim::Task<Status> BadTypedSend(msg::Endpoint& ep,
                               std::span<const std::byte> m) {
  msg::RingSender& raw = ep.sender();
  co_return co_await raw.Send(m);  // simlint-expect: direct-ring-send
}

}  // namespace cxlpool
