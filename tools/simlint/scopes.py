"""Brace/scope tracking over the token stream.

Builds, for one lexed file:

  * matched bracket maps (``{}``, ``()``, ``[]``) over token indices;
  * class/struct body ranges (so in-class method definitions know their
    enclosing class);
  * function definitions — name, class qualifier, parameter and body
    token ranges, return-type tokens, coroutine-ness, and the token
    index of every suspension point (``co_await``/``co_yield``);
  * lambda expressions — capture list, by-reference capture flag,
    trailing return type, body range, coroutine-ness.

This is a tolerant single-pass recognizer, not a parser: constructs it
cannot classify are simply skipped (rules prefer false negatives over
noise, same contract as the old regex linter — but the things it *does*
classify it classifies structurally, so strings/comments/line breaks
can no longer confuse a rule).
"""

from .lexer import Token  # noqa: F401  (typing aid for readers)

# Names that can never be function names when followed by `( ... ) {`.
CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "catch", "return",
    "co_return", "co_await", "co_yield", "sizeof", "alignof", "decltype",
    "new", "delete", "throw", "case", "default", "goto", "static_assert",
    "alignas", "noexcept", "requires", "asm",
}

# Tokens allowed between a function's `)` and its body `{` (besides the
# constructor init list, handled separately).
_POST_PARAM_OK = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "&", "&&", "->", "::", "<", ">", ",", "try", "requires",
}

CO_KEYWORDS = ("co_await", "co_yield", "co_return")
SUSPEND_KEYWORDS = ("co_await", "co_yield")


class ClassScope:
    __slots__ = ("name", "body_start", "body_end", "line")

    def __init__(self, name, body_start, body_end, line):
        self.name = name
        self.body_start = body_start  # index of `{`
        self.body_end = body_end      # index of matching `}`
        self.line = line


class FunctionScope:
    __slots__ = ("name", "class_name", "params_start", "params_end",
                 "body_start", "body_end", "return_tokens", "line",
                 "is_coroutine", "suspend_points")

    def __init__(self, name, class_name, params_start, params_end,
                 body_start, body_end, return_tokens, line):
        self.name = name
        self.class_name = class_name  # None for free functions
        self.params_start = params_start  # index of `(`
        self.params_end = params_end      # index of matching `)`
        self.body_start = body_start      # index of `{`
        self.body_end = body_end          # index of matching `}`
        self.return_tokens = return_tokens  # list of Token (may be [])
        self.line = line
        self.is_coroutine = False
        self.suspend_points = []  # token indices of co_await/co_yield

    @property
    def qualified_name(self):
        if self.class_name:
            return "%s::%s" % (self.class_name, self.name)
        return self.name


class LambdaScope:
    __slots__ = ("capture_start", "capture_end", "params_start",
                 "params_end", "body_start", "body_end", "line",
                 "has_ref_capture", "returns_task", "is_coroutine",
                 "suspend_points")

    def __init__(self, capture_start, capture_end, params_start,
                 params_end, body_start, body_end, line,
                 has_ref_capture, returns_task):
        self.capture_start = capture_start  # index of `[`
        self.capture_end = capture_end      # index of matching `]`
        self.params_start = params_start    # index of `(` or None
        self.params_end = params_end
        self.body_start = body_start        # index of `{`
        self.body_end = body_end            # index of matching `}`
        self.line = line
        self.has_ref_capture = has_ref_capture
        self.returns_task = returns_task
        self.is_coroutine = False
        self.suspend_points = []


class ScopeModel:
    __slots__ = ("tokens", "brace_match", "paren_match", "bracket_match",
                 "classes", "functions", "lambdas")

    def __init__(self, tokens):
        self.tokens = tokens
        self.brace_match = {}
        self.paren_match = {}
        self.bracket_match = {}
        self.classes = []
        self.functions = []
        self.lambdas = []

    def match(self, idx):
        """Matching close index for the opener at ``idx`` (or None)."""
        t = self.tokens[idx]
        if t.is_punct("{"):
            return self.brace_match.get(idx)
        if t.is_punct("("):
            return self.paren_match.get(idx)
        if t.is_punct("["):
            return self.bracket_match.get(idx)
        return None

    def enclosing_class(self, idx):
        """Innermost class whose body contains token ``idx``."""
        best = None
        for c in self.classes:
            if c.body_start < idx < c.body_end:
                if best is None or c.body_start > best.body_start:
                    best = c
        return best

    def enclosing_function(self, idx):
        """Innermost function or lambda whose body contains ``idx``."""
        best = None
        for f in list(self.functions) + list(self.lambdas):
            if f.body_start < idx < f.body_end:
                if best is None or f.body_start > best.body_start:
                    best = f
        return best


def _match_brackets(model):
    stacks = {"{": [], "(": [], "[": []}
    pairs = {"}": "{", ")": "(", "]": "["}
    table = {"{": model.brace_match, "(": model.paren_match,
             "[": model.bracket_match}
    for i, t in enumerate(model.tokens):
        if t.kind != "punct":
            continue
        if t.text in stacks:
            stacks[t.text].append(i)
        elif t.text in pairs:
            stack = stacks[pairs[t.text]]
            if stack:
                table[pairs[t.text]][stack.pop()] = i


def _find_classes(model):
    toks = model.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if not t.is_id("class", "struct"):
            continue
        if i > 0 and toks[i - 1].is_id("enum"):
            continue  # enum class
        # Find the class-head name: the last identifier before `:` (base
        # clause), `{`, or `;` (forward declaration / variable decl).
        name = None
        j = i + 1
        while j < n:
            tk = toks[j]
            if tk.is_punct(";"):
                break  # forward declaration
            if tk.is_punct("{"):
                if name is None:
                    break  # anonymous struct
                end = model.brace_match.get(j)
                if end is not None:
                    model.classes.append(ClassScope(name, j, end, t.line))
                break
            if tk.is_punct(":"):
                # Base clause: the body `{` follows after base names.
                k = j + 1
                depth = 0
                while k < n:
                    bk = toks[k]
                    if bk.is_punct("<"):
                        depth += 1
                    elif bk.is_punct(">"):
                        depth -= 1
                    elif bk.is_punct("{") and depth <= 0:
                        end = model.brace_match.get(k)
                        if end is not None and name is not None:
                            model.classes.append(
                                ClassScope(name, k, end, t.line))
                        k = None
                        break
                    elif bk.is_punct(";", "}"):
                        break
                    k += 1
                break
            if tk.kind == "id" and tk.text not in ("final", "alignas"):
                name = tk.text
            j += 1


# Return-type scan stops at these (statement/declaration boundaries).
_RET_STOP_PUNCT = {";", "{", "}", ",", "(", ")", ":", "?", "=", "[", "]"}
_RET_SKIP_IDS = {"static", "inline", "virtual", "constexpr", "explicit",
                 "friend", "extern", "typename", "public", "private",
                 "protected", "typedef", "using", "else", "return",
                 "co_return", "co_await", "do", "try"}


def _collect_return_tokens(toks, first_name_idx):
    """Tokens forming the return type preceding the (possibly qualified)
    function name whose first name token is at ``first_name_idx``."""
    out = []
    j = first_name_idx - 1
    budget = 24
    while j >= 0 and budget > 0:
        t = toks[j]
        if t.kind == "pp":
            break
        if t.kind == "punct" and t.text in _RET_STOP_PUNCT:
            break
        if t.is_id() and t.text in _RET_SKIP_IDS:
            j -= 1
            budget -= 1
            continue
        if t.kind in ("str", "char", "num"):
            break
        out.append(t)
        j -= 1
        budget -= 1
    out.reverse()
    return out


def _leading_name_index(toks, name_idx):
    """Walk a qualified-id chain (`A::B::name`) backwards from the name;
    returns (first_token_index, class_qualifier_or_None)."""
    j = name_idx
    qualifier = None
    while j >= 2 and toks[j - 1].is_punct("::") and toks[j - 2].is_id():
        qualifier = toks[j - 2].text
        j -= 2
    return j, qualifier


def _find_body_after_params(model, close_paren):
    """Token index of the definition body `{` after a parameter list
    ending at ``close_paren``, or None if this is not a definition.
    Handles cv/ref/noexcept/trailing-return and constructor init lists."""
    toks = model.tokens
    n = len(toks)
    j = close_paren + 1
    angle_depth = 0
    budget = 64
    while j < n and budget > 0:
        t = toks[j]
        if t.is_punct("{"):
            return j
        if t.is_punct(";"):
            return None
        if t.is_punct(":") :
            # Constructor init list: skip member initializers (which may
            # use parens OR braces) until the body brace.
            j += 1
            while j < n:
                t = toks[j]
                if t.is_punct("("):
                    m = model.paren_match.get(j)
                    if m is None:
                        return None
                    j = m + 1
                    continue
                if t.is_punct("{"):
                    m = model.brace_match.get(j)
                    if m is None:
                        return None
                    # Initializer brace iff a `,` or another initializer
                    # follows; otherwise this is the body.
                    if m + 1 < n and (toks[m + 1].is_punct(",")
                                      or toks[m + 1].is_id()):
                        j = m + 1
                        continue
                    return j
                if t.is_punct(";", "}"):
                    return None
                j += 1
            return None
        if t.is_punct("("):
            # noexcept(...) / attribute-ish: skip the group.
            m = model.paren_match.get(j)
            if m is None:
                return None
            j = m + 1
            budget -= 1
            continue
        if t.is_punct("<"):
            angle_depth += 1
        elif t.is_punct(">"):
            angle_depth = max(0, angle_depth - 1)
        elif t.is_id():
            pass  # trailing return type names, `const`, `noexcept`, ...
        elif t.kind == "punct" and t.text not in _POST_PARAM_OK:
            return None
        elif t.kind == "pp":
            return None
        j += 1
        budget -= 1
    return None


def _find_functions(model):
    toks = model.tokens
    n = len(toks)
    for i in range(n - 1):
        t = toks[i]
        if not t.is_id() or t.text in CONTROL_KEYWORDS:
            continue
        if not toks[i + 1].is_punct("("):
            continue
        # A member access (`x.f(...)` / `p->f(...)`) or nested call is
        # never a definition head.
        first, qualifier = _leading_name_index(toks, i)
        if first > 0:
            prev = toks[first - 1]
            # NB: `>` stays allowed — it closes template return types
            # (`Task<Status> Ring(...)`); expression contexts like
            # `a > b(c)` are rejected later by the body-brace scan.
            if prev.is_punct(".", "->", "(", "!", "&&", "||", "=", "+",
                             "-", "*", "/", "%", "==", "!=",
                             "<=", ">=", "?", ":", "[", "return"):
                continue
            if prev.is_id("return", "co_return", "co_await", "co_yield",
                          "new", "throw", "case"):
                continue
        close = model.paren_match.get(i + 1)
        if close is None:
            continue
        body = _find_body_after_params(model, close)
        if body is None:
            continue
        body_end = model.brace_match.get(body)
        if body_end is None:
            continue
        ret = _collect_return_tokens(toks, first)
        enclosing = model.enclosing_class(i)
        class_name = qualifier or (enclosing.name if enclosing else None)
        fn = FunctionScope(t.text, class_name, i + 1, close, body,
                           body_end, ret, t.line)
        for k in range(body + 1, body_end):
            tk = toks[k]
            if tk.is_id(*CO_KEYWORDS):
                fn.is_coroutine = True
                if tk.text in SUSPEND_KEYWORDS:
                    fn.suspend_points.append(k)
        model.functions.append(fn)


# Token immediately before a `[` that makes it a subscript, not a
# lambda introducer.
def _is_subscript_context(prev):
    if prev is None:
        return False
    if prev.kind in ("id", "num", "str", "char"):
        # `arr[...]`, `get()[...]` — but keywords like `return` / `case`
        # / `co_return` / `co_await` introduce expressions.
        return prev.text not in ("return", "co_return", "co_await",
                                 "co_yield", "throw", "case", "delete",
                                 "new", "else", "do")
    return prev.is_punct("]", ")")


def _has_ref_capture(model, toks, cap_start, cap_end):
    """True when any capture item is by-reference: a leading `&` on an
    item (`[&]`, `[&x]`, `[x, &y]`). An `&` inside an init-capture's
    initializer (`[p = &obj]`) is address-of — that captures a POINTER
    by value, the sanctioned way to hand state to a detached coroutine
    lambda, and must not match."""
    item_start = True
    k = cap_start + 1
    while k < cap_end:
        t = toks[k]
        if item_start and t.is_punct("&"):
            return True
        item_start = False
        if t.is_punct(","):
            item_start = True
        elif t.is_punct("(", "[", "{"):
            # Skip bracketed initializer contents wholesale.
            match = (model.paren_match if t.text == "(" else
                     model.bracket_match if t.text == "[" else
                     model.brace_match)
            close = match.get(k)
            if close is not None and close < cap_end:
                k = close
        k += 1
    return False


def _find_lambdas(model):
    toks = model.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if not t.is_punct("["):
            continue
        prev = toks[i - 1] if i > 0 else None
        if _is_subscript_context(prev):
            continue
        cap_end = model.bracket_match.get(i)
        if cap_end is None:
            continue
        # `[[nodiscard]]`-style attributes: `[[` ... `]]`.
        if cap_end + 1 < n and toks[i + 1].is_punct("["):
            continue
        if prev is not None and prev.is_punct("["):
            continue
        j = cap_end + 1
        if j >= n:
            continue
        params_start = params_end = None
        if toks[j].is_punct("("):
            params_start = j
            params_end = model.paren_match.get(j)
            if params_end is None:
                continue
            j = params_end + 1
        # Scan specifiers / trailing return type for the body `{`.
        returns_task = False
        body = None
        budget = 40
        while j < n and budget > 0:
            tk = toks[j]
            if tk.is_punct("{"):
                body = j
                break
            if tk.is_punct(";", ")", ",", "]"):
                break  # not a lambda after all (e.g. `[x]` init-capture?)
            if tk.is_id("Task"):
                returns_task = True
            j += 1
            budget -= 1
        if body is None:
            continue
        body_end = model.brace_match.get(body)
        if body_end is None:
            continue
        has_ref = _has_ref_capture(model, toks, i, cap_end)
        lam = LambdaScope(i, cap_end, params_start, params_end, body,
                          body_end, t.line, has_ref, returns_task)
        for k in range(body + 1, body_end):
            tk = toks[k]
            if tk.is_id(*CO_KEYWORDS):
                lam.is_coroutine = True
                if tk.text in SUSPEND_KEYWORDS:
                    lam.suspend_points.append(k)
        model.lambdas.append(lam)


def build(lexed):
    """Build the ScopeModel for a LexedFile."""
    model = ScopeModel(lexed.tokens)
    _match_brackets(model)
    _find_classes(model)
    _find_functions(model)
    _find_lambdas(model)
    return model
