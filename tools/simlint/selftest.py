"""Seeded-repro self-test.

Every ``.cc`` file under ``tools/simlint/selftest/`` is linted, and the
findings are compared EXACTLY against the file's ``// simlint-expect:
<rule>`` annotations: a rule must fire on every annotated line and on no
other line of the corpus. Clean exemplars simply carry no annotations —
any finding in them is a false-positive regression.

This is deliberately stricter than the old lint_tasks.py self-test
(which only checked that each rule fired *somewhere*): pinning findings
to lines catches both silently-dead rules and anchor drift.
"""

import os

from .engine import Analyzer, expand_targets

CORPUS_DIRNAME = os.path.join("tools", "simlint", "selftest")


def corpus_dir(repo_root):
    return os.path.join(repo_root, CORPUS_DIRNAME)


def run(repo_root, verbose=True):
    """Returns True when the corpus behaves exactly as annotated."""
    corpus = corpus_dir(repo_root)
    files = expand_targets([corpus])
    if not files:
        print("SELF-TEST FAIL: no corpus files under %s" % corpus)
        return False
    # The corpus headers participate in the symbol index, so repro files
    # can declare their own Task-returning / StopToken-taking functions
    # without touching src/.
    analyzer = Analyzer([os.path.join(repo_root, "src"), corpus])

    ok = True
    total_expected = 0
    rules_fired = set()
    for path in files:
        findings, lexed = analyzer.lint_file(path)
        expected = {(line, rule)
                    for line, rules in lexed.expects.items()
                    for rule in rules}
        actual = {(f.line, f.rule) for f in findings}
        total_expected += len(expected)
        rules_fired |= {r for _, r in actual}
        rel = os.path.relpath(path, repo_root)
        for line, rule in sorted(expected - actual):
            print("SELF-TEST FAIL: %s:%d: expected [%s] did not fire"
                  % (rel, line, rule))
            ok = False
        for line, rule in sorted(actual - expected):
            print("SELF-TEST FAIL: %s:%d: unexpected [%s] (false positive)"
                  % (rel, line, rule))
            ok = False
        if verbose:
            for f in sorted(findings, key=lambda f: (f.line, f.rule)):
                print("  (expected) %s:%d: [%s]" % (rel, f.line, f.rule))

    # Belt and braces: every registered rule must have at least one
    # seeded repro in the corpus, so a rule can never rot silently.
    missing = set(analyzer.rule_names()) - rules_fired
    for rule in sorted(missing):
        print("SELF-TEST FAIL: rule [%s] has no firing repro in the corpus"
              % rule)
        ok = False

    print("self-test: %s (%d findings across %d corpus files)"
          % ("PASS" if ok else "FAIL", total_expected, len(files)))
    return ok
