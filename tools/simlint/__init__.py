"""simlint — token-stream, cross-file static analyzer for this repo.

A multi-pass analyzer purpose-built for the simulator codebase's three
recurring bug families:

  * coroutine lifetime (frames outliving the objects they read),
  * ordering/supervision (detached loops, undeadlined waits, raw ring
    sends that bypass the submission front),
  * overload contracts (kOverloaded is terminal: never retried, never
    counted by circuit breakers).

It replaces the line-regex core of ``tools/lint_tasks.py`` with:

  1. a real C++ token stream (``lexer``) — comments, string/char
     literals, raw strings, preprocessor directives, line splices and
     ``#if 0`` blocks are handled structurally, which kills the
     regex engine's known false-positive classes (rule text inside a
     string literal, statements split across continuation lines);
  2. a brace/scope tracker (``scopes``) — function and lambda bodies,
     enclosing classes, coroutine detection, suspension points;
  3. a repo-wide symbol index (``symbols``) — which functions return
     ``sim::Task``/``Status``/``Result``, which take a ``StopToken&``,
     which are coroutines — built once from the headers under the
     configured roots and shared by every rule.

Run it as ``python3 tools/simlint [paths...]`` or via the CMake ``lint``
target. ``--self-test`` replays the seeded bug corpus under
``tools/simlint/selftest/`` and fails unless every rule fires exactly
where its ``// simlint-expect: <rule>`` annotations say (and nowhere
else).

Suppression: append ``// simlint: allow(<rule>)`` to the offending line
(the legacy ``// lint-tasks: allow(<rule>)`` spelling is still honored).
"""

__version__ = "1.0.0"

from .findings import Finding  # noqa: F401  (re-export)
