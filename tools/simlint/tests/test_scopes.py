"""Unit tests for the simlint scope/brace tracker."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

from simlint import scopes  # noqa: E402
from simlint.lexer import tokenize  # noqa: E402


def build(src):
    return scopes.build(tokenize(src, "<test>"))


class FunctionDetection(unittest.TestCase):
    def test_free_function(self):
        m = build("int Add(int a, int b) { return a + b; }")
        self.assertEqual([f.name for f in m.functions], ["Add"])
        self.assertFalse(m.functions[0].is_coroutine)

    def test_template_return_type(self):
        m = build("sim::Task<Status> Ring(uint64_t v) { return t; }")
        self.assertEqual([f.name for f in m.functions], ["Ring"])
        self.assertIn("Task", [t.text for t in m.functions[0].return_tokens])

    def test_member_function_gets_class_name(self):
        m = build("""
            class Sender {
             public:
              sim::Task<Status> Ring(uint64_t v) { co_return x; }
             private:
              int addr_;
            };
        """)
        fn = m.functions[0]
        self.assertEqual(fn.class_name, "Sender")
        self.assertEqual(fn.qualified_name, "Sender::Ring")
        self.assertTrue(fn.is_coroutine)

    def test_out_of_line_member(self):
        m = build("Status Pool::Grab(int n) { return OkStatus(); }")
        self.assertEqual([f.name for f in m.functions], ["Grab"])

    def test_constructor_init_list_is_not_body(self):
        m = build("""
            class A {
             public:
              A(int x) : x_(x), y_(0) { Init(); }
             private:
              int x_; int y_;
            };
        """)
        # The ctor body must be found (not the `x_(x)` initializer).
        self.assertEqual(len(m.functions), 1)
        body = m.tokens[m.functions[0].body_start:m.functions[0].body_end]
        self.assertIn("Init", [t.text for t in body])

    def test_control_flow_is_not_a_function(self):
        m = build("void F() { if (x) { y(); } while (z) { w(); } }")
        self.assertEqual([f.name for f in m.functions], ["F"])

    def test_suspend_points(self):
        m = build("""
            sim::Task<> Two(E& e) {
              co_await e.A();
              co_await e.B();
            }
        """)
        self.assertEqual(len(m.functions[0].suspend_points), 2)


class LambdaDetection(unittest.TestCase):
    def test_ref_capture_coroutine(self):
        m = build("auto f = [&x](int v) -> sim::Task<> { co_return; };")
        self.assertEqual(len(m.lambdas), 1)
        lam = m.lambdas[0]
        self.assertTrue(lam.has_ref_capture)
        self.assertTrue(lam.returns_task)
        self.assertTrue(lam.is_coroutine)

    def test_default_ref_capture(self):
        m = build("auto f = [&]() -> sim::Task<> { co_return; };")
        self.assertTrue(m.lambdas[0].has_ref_capture)

    def test_pointer_init_capture_is_value(self):
        m = build("auto f = [p = &obj](int v) -> sim::Task<> { co_return; };")
        self.assertEqual(len(m.lambdas), 1)
        self.assertFalse(m.lambdas[0].has_ref_capture)

    def test_mixed_captures(self):
        m = build("auto f = [p = &a, &q]() -> sim::Task<> { co_return; };")
        self.assertTrue(m.lambdas[0].has_ref_capture)

    def test_subscript_is_not_lambda(self):
        m = build("void F(std::vector<int>& v) { int x = v[0]; }")
        self.assertEqual(m.lambdas, [])

    def test_attribute_is_not_lambda(self):
        m = build("[[nodiscard]] int G() { return 1; }")
        self.assertEqual(m.lambdas, [])


class BraceMatching(unittest.TestCase):
    def test_nested(self):
        m = build("void F() { { { int x; } } }")
        opens = sorted(m.brace_match)
        for o in opens:
            self.assertGreater(m.brace_match[o], o)

    def test_enclosing_function(self):
        m = build("void F() { int marker; }")
        idx = next(i for i, t in enumerate(m.tokens)
                   if t.text == "marker")
        self.assertEqual(m.enclosing_function(idx).name, "F")


if __name__ == "__main__":
    unittest.main()
