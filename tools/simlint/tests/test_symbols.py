"""Unit tests for the simlint cross-file symbol index."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

from simlint import scopes, symbols  # noqa: E402
from simlint.lexer import tokenize  # noqa: E402


def index_of(header_src):
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "test.h")
        with open(path, "w") as f:
            f.write(header_src)
        return symbols.build([d])


class MustUseHarvest(unittest.TestCase):
    def test_inline_definitions(self):
        idx = index_of("""
            sim::Task<Status> Flush(uint64_t a) { co_return OkStatus(); }
            Status Check(int x) { return OkStatus(); }
            Result<int> Parse(const char* s) { return 1; }
            void Log(const char* m) { }
        """)
        names = idx.must_use_names()
        self.assertIn("Flush", names)
        self.assertIn("Check", names)
        self.assertIn("Parse", names)
        self.assertNotIn("Log", names)

    def test_bodyless_declarations(self):
        idx = index_of("""
            sim::Task<Status> Store(uint64_t a, std::span<const std::byte> d);
            void Reset();
        """)
        self.assertIn("Store", idx.must_use_names())
        self.assertNotIn("Reset", idx.must_use_names())

    def test_ambiguous_name_dropped(self):
        # A name with both a Task overload and a void overload is
        # unresolvable at a call site without type info: prefer the
        # false negative.
        idx = index_of("""
            sim::Task<> Drain(msg::Endpoint& e);
            void Drain();
        """)
        self.assertNotIn("Drain", idx.must_use_names())


class StopTokenAndMembers(unittest.TestCase):
    def test_stop_token_param(self):
        idx = index_of("""
            sim::Task<> ScrubLoop(Pool& p, sim::StopToken& stop);
        """)
        self.assertIn("ScrubLoop", idx.takes_stop_token)

    def test_class_members(self):
        idx = index_of("""
            class Path {
             public:
              sim::Task<Status> Write(uint64_t o, uint64_t v);
             private:
              msg::RpcClient* client_;
              sim::EventLoop& loop_;
              uint64_t stats_ = 0;
            };
        """)
        members = idx.members_of("Path")
        self.assertIn("client_", members)
        self.assertIn("loop_", members)
        self.assertIn("stats_", members)
        self.assertNotIn("Write", members)


class FileOverlay(unittest.TestCase):
    def test_local_definition_disambiguates(self):
        # The regression that motivated the overlay: a test fixture's
        # local `void Drain()` must shadow a header's Task-returning
        # Drain at call sites in that file.
        lexed = tokenize("void Drain() { } "
                         "sim::Task<Status> Local(int x) { co_return s; }",
                         "<test>")
        model = scopes.build(lexed)
        local_must, local_other = symbols.file_overlay(model)
        self.assertIn("Drain", local_other)
        self.assertIn("Local", local_must)


if __name__ == "__main__":
    unittest.main()
