"""Unit tests for the simlint C++ lexer (run via ctest or directly:
`python3 -m unittest discover tools/simlint/tests`)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

from simlint.lexer import tokenize  # noqa: E402


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text, "<test>").tokens]


def texts(text):
    return [t.text for t in tokenize(text, "<test>").tokens]


class LexerBasics(unittest.TestCase):
    def test_identifiers_numbers_punct(self):
        self.assertEqual(
            kinds("int x = 42;"),
            [("id", "int"), ("id", "x"), ("punct", "="),
             ("num", "42"), ("punct", ";")])

    def test_longest_match_punctuators(self):
        self.assertEqual(texts("a->b <<= c && d ... e"),
                         ["a", "->", "b", "<<=", "c", "&&", "d", "...", "e"])

    def test_scope_and_member_operators(self):
        self.assertEqual(texts("a::b.c->*d"),
                         ["a", "::", "b", ".", "c", "->*", "d"])

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc", "<test>").tokens
        self.assertEqual([(t.text, t.line) for t in toks],
                         [("a", 1), ("b", 2), ("c", 4)])


class LexerComments(unittest.TestCase):
    def test_line_comment_stripped(self):
        self.assertEqual(texts("x; // co_await client.Call(m)\ny;"),
                         ["x", ";", "y", ";"])

    def test_block_comment_stripped_and_lines_kept(self):
        toks = tokenize("a /* line1\nline2\nline3 */ b", "<test>").tokens
        self.assertEqual([(t.text, t.line) for t in toks],
                         [("a", 1), ("b", 3)])

    def test_comment_inside_string_is_content(self):
        toks = tokenize('Log("not a // comment");', "<test>").tokens
        self.assertEqual([t.kind for t in toks],
                         ["id", "punct", "str", "punct", "punct"])


class LexerStrings(unittest.TestCase):
    def test_escaped_quote(self):
        toks = tokenize(r'f("a \" Spawn(XLoop(h)) \" b");', "<test>").tokens
        strs = [t for t in toks if t.kind == "str"]
        self.assertEqual(len(strs), 1)
        self.assertNotIn("Spawn", [t.text for t in toks if t.kind == "id"])

    def test_raw_string_with_delimiter(self):
        src = 'auto s = R"doc(co_await end.Recv(&f); ")" still raw)doc"; x;'
        ids = [t.text for t in tokenize(src, "<test>").tokens if t.kind == "id"]
        self.assertEqual(ids, ["auto", "s", "x"])

    def test_raw_string_multiline_line_tracking(self):
        src = 'a = R"(line1\nline2\nline3)";\nb;'
        toks = tokenize(src, "<test>").tokens
        b = [t for t in toks if t.text == "b"][0]
        self.assertEqual(b.line, 4)

    def test_char_literal_with_brace(self):
        toks = tokenize("char c = '{'; int y;", "<test>").tokens
        self.assertEqual([t.text for t in toks if t.is_punct("{", "}")], [])


class LexerPreprocessor(unittest.TestCase):
    def test_directive_is_one_token(self):
        toks = tokenize("#include <vector>\nint x;", "<test>").tokens
        self.assertEqual(toks[0].kind, "pp")
        self.assertEqual([t.text for t in toks[1:]], ["int", "x", ";"])

    def test_macro_continuation_lines_fold(self):
        src = "#define FIRE(h, a)   \\\n  (void)(h).Flush(a, 64);\nint y;"
        toks = tokenize(src, "<test>").tokens
        self.assertEqual(toks[0].kind, "pp")
        self.assertNotIn("Flush", [t.text for t in toks if t.kind == "id"])
        y = [t for t in toks if t.text == "y"][0]
        self.assertEqual(y.line, 3)

    def test_if0_elision(self):
        src = "#if 0\nbad.Code();\n#endif\nok;"
        ids = [t.text for t in tokenize(src, "<test>").tokens if t.kind == "id"]
        self.assertEqual(ids, ["ok"])

    def test_if0_nested_and_else(self):
        src = ("#if 0\n#if defined(X)\na;\n#endif\nb;\n"
               "#else\nc;\n#endif\nd;")
        ids = [t.text for t in tokenize(src, "<test>").tokens if t.kind == "id"]
        self.assertEqual(ids, ["c", "d"])


class LexerSideTables(unittest.TestCase):
    def test_allow_comment_both_spellings(self):
        import tempfile
        from simlint.lexer import lex_file
        src = ("x;  // simlint: allow(missing-deadline)\n"
               "y;  // lint-tasks: allow(leaked-span, dangling-frame)\n")
        with tempfile.NamedTemporaryFile("w", suffix=".cc",
                                         delete=False) as f:
            f.write(src)
            path = f.name
        try:
            lf = lex_file(path)
        finally:
            os.unlink(path)
        self.assertTrue(lf.allowed(1, "missing-deadline"))
        self.assertTrue(lf.allowed(2, "leaked-span"))
        self.assertTrue(lf.allowed(2, "dangling-frame"))
        self.assertFalse(lf.allowed(1, "leaked-span"))

    def test_expect_annotations(self):
        import tempfile
        from simlint.lexer import lex_file
        src = "bad();  // simlint-expect: discarded-result\n"
        with tempfile.NamedTemporaryFile("w", suffix=".cc",
                                         delete=False) as f:
            f.write(src)
            path = f.name
        try:
            lf = lex_file(path)
        finally:
            os.unlink(path)
        self.assertEqual(lf.expects, {1: {"discarded-result"}})


if __name__ == "__main__":
    unittest.main()
