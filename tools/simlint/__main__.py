"""Entry point: ``python3 tools/simlint [args...]``.

Running a directory puts the directory itself on sys.path; the package
must instead be importable as ``simlint`` from its parent (tools/), so
bootstrap that before the relative imports inside the package resolve.
"""

import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from simlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
