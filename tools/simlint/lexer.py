"""C++ token stream for simlint.

One pass over the raw file text producing a flat list of ``Token``s plus
two per-line side tables (suppressions and self-test expectations).
Everything the old regex linter got wrong structurally is handled here,
once, for every rule:

  * ``//`` and ``/* */`` comments vanish from the stream (their only
    residue is the suppression/expectation side tables);
  * string and character literals become single opaque ``str``/``char``
    tokens — rule text inside a literal can never match;
  * raw strings (``R"delim(...)delim"``, with encoding prefixes) are
    scanned by delimiter, so embedded quotes/parens/newlines are inert;
  * preprocessor directives (with ``\\``-newline continuations folded)
    become one ``pp`` token each; ``#if 0``/``#if false`` regions are
    elided entirely (nesting-aware, ``#else`` re-enables);
  * ``\\``-newline splices in normal code read as whitespace;
  * multi-char punctuators (``::``, ``->``, ``==``, ...) are single
    tokens, so ``!=`` can never be misread as a ``=`` assignment.

Tokens carry their 1-based source line for findings.
"""

import re

# Longest-match-first punctuator table.
_PUNCTUATORS = [
    "<<=", ">>=", "->*", "...",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "<", ">", "+", "-",
    "*", "/", "%", "&", "|", "^", "~", "!", "=", "?", ":", "#", "@",
]

_ID_START = re.compile(r"[A-Za-z_]")
_ID_BODY = re.compile(r"[A-Za-z0-9_]")

# Suppression / expectation comment grammar. Both the new spelling and
# the legacy lint_tasks.py spelling are honored for suppressions, so the
# tree did not need a flag-day rewrite of existing allows.
_ALLOW_RE = re.compile(
    r"(?:simlint|lint-tasks):\s*allow\(\s*(?P<rules>[\w-]+(?:\s*,\s*[\w-]+)*)\s*\)")
_EXPECT_RE = re.compile(
    r"simlint-expect:\s*(?P<rules>[\w-]+(?:\s*,\s*[\w-]+)*)")

_RAW_STR_INTRO = re.compile(r'(?:u8|[uUL])?R"')
_STR_PREFIX = re.compile(r'(?:u8|[uUL])?"')

_IF_ZERO = re.compile(r"^#\s*if\s+(?:0|false)\b")
_IF_ANY = re.compile(r"^#\s*if(?:def|ndef)?\b")
_ELSE = re.compile(r"^#\s*else\b")
_ELIF = re.compile(r"^#\s*elif\b")
_ENDIF = re.compile(r"^#\s*endif\b")


class Token:
    """One lexical token. ``kind`` is one of:

    ``id``     identifier or keyword (rules test ``text``)
    ``num``    numeric literal
    ``str``    string literal (ordinary or raw), opaque
    ``char``   character literal, opaque
    ``punct``  punctuator/operator (possibly multi-char)
    ``pp``     one whole preprocessor directive, continuations folded
    """

    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "Token(%r, %r, line=%d)" % (self.kind, self.text, self.line)

    def __eq__(self, other):  # convenient in unit tests
        if isinstance(other, Token):
            return (self.kind, self.text, self.line) == (
                other.kind, other.text, other.line)
        return NotImplemented

    def is_id(self, *names):
        return self.kind == "id" and (not names or self.text in names)

    def is_punct(self, *texts):
        return self.kind == "punct" and (not texts or self.text in texts)


class LexedFile:
    """Token stream + per-line side tables for one translation unit."""

    __slots__ = ("path", "tokens", "allows", "expects")

    def __init__(self, path, tokens, allows, expects):
        self.path = path
        self.tokens = tokens
        # line -> set of rule names suppressed on that line.
        self.allows = allows
        # line -> set of rule names the self-test expects on that line.
        self.expects = expects

    def allowed(self, line, rule):
        return rule in self.allows.get(line, ())


def _scan_comment_directives(comment, line, allows, expects):
    for m in _ALLOW_RE.finditer(comment):
        allows.setdefault(line, set()).update(
            r.strip() for r in m.group("rules").split(","))
    for m in _EXPECT_RE.finditer(comment):
        expects.setdefault(line, set()).update(
            r.strip() for r in m.group("rules").split(","))


def tokenize(text, path="<memory>"):
    """Lex ``text`` into a LexedFile. Never raises on malformed input —
    unterminated constructs run to end-of-file (the analyzer must keep
    working on code the compiler would reject)."""
    tokens = []
    allows = {}
    expects = {}
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline
    # Stack of #if nesting inside an elided region; None when emitting.
    elide_depth = None

    def directive_text(start):
        """Consume a preprocessor directive starting at ``start`` (the
        ``#``). Returns (folded_text, next_index, lines_consumed)."""
        j = start
        parts = []
        lines = 0
        while j < n:
            c = text[j]
            if c == "\\" and j + 1 < n and text[j + 1] == "\n":
                parts.append(" ")
                lines += 1
                j += 2
                continue
            if c == "\\" and j + 2 < n and text[j + 1] == "\r" \
                    and text[j + 2] == "\n":
                parts.append(" ")
                lines += 1
                j += 3
                continue
            if c == "\n":
                break
            if c == "/" and j + 1 < n and text[j + 1] == "/":
                # Comment ends the directive logically; still consume to
                # newline so directives never swallow the next line.
                k = text.find("\n", j)
                k = n if k == -1 else k
                _scan_comment_directives(text[j:k], line + lines,
                                         allows, expects)
                j = k
                break
            if c == "/" and j + 1 < n and text[j + 1] == "*":
                k = text.find("*/", j + 2)
                k = n - 2 if k == -1 else k
                lines += text.count("\n", j, k + 2)
                j = k + 2
                parts.append(" ")
                continue
            parts.append(c)
            j += 1
        return "".join(parts), j, lines

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1
            i += 2
            continue

        # Comments (emitted nowhere; directives harvested).
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            _scan_comment_directives(text[i:j], line, allows, expects)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            _scan_comment_directives(text[i:j], line, allows, expects)
            line += text.count("\n", i, j + 2)
            i = j + 2
            at_line_start = False
            continue

        # Preprocessor directive (only at start of line).
        if c == "#" and at_line_start:
            body, j, extra = directive_text(i)
            directive = body.strip()
            if elide_depth is not None:
                # Inside an elided region: only track nesting.
                if _IF_ANY.match(directive):
                    elide_depth += 1
                elif _ENDIF.match(directive):
                    elide_depth -= 1
                    if elide_depth == 0:
                        elide_depth = None
                elif elide_depth == 1 and (_ELSE.match(directive)
                                           or _ELIF.match(directive)):
                    # The branch after #else/#elif of the dead #if may be
                    # live; conservatively emit it.
                    elide_depth = None
                    tokens.append(Token("pp", directive, line))
            elif _IF_ZERO.match(directive):
                elide_depth = 1
            else:
                tokens.append(Token("pp", directive, line))
            line += extra
            i = j
            at_line_start = False
            continue

        if elide_depth is not None:
            # Dead region: skip everything except newlines/directives.
            # Strings/comments must still be scanned so a `#endif` inside
            # a literal does not terminate the region early.
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j == -1 else j
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n - 2 if j == -1 else j
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
            if c in "\"'":
                i = _skip_plain_literal(text, i, c)[0]
                continue
            i += 1
            at_line_start = False
            continue

        at_line_start = False

        # Raw string literal.
        m = _RAW_STR_INTRO.match(text, i)
        if m is not None:
            j = m.end()  # just past R"
            d_end = text.find("(", j)
            if d_end == -1:
                tokens.append(Token("str", text[i:], line))
                break
            delim = text[j:d_end]
            closer = ")" + delim + '"'
            k = text.find(closer, d_end + 1)
            k = n if k == -1 else k + len(closer)
            tokens.append(Token("str", '""', line))
            line += text.count("\n", i, k)
            i = k
            continue

        # Ordinary string literal (with optional encoding prefix).
        m = _STR_PREFIX.match(text, i)
        if m is not None:
            j, newlines = _skip_plain_literal(text, m.end() - 1, '"')
            tokens.append(Token("str", '""', line))
            line += newlines
            i = j
            continue

        if c == "'":
            j, newlines = _skip_plain_literal(text, i, "'")
            tokens.append(Token("char", "''", line))
            line += newlines
            i = j
            continue

        # Identifier / keyword.
        if _ID_START.match(c):
            j = i + 1
            while j < n and _ID_BODY.match(text[j]):
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue

        # Number (incl. hex, digit separators, float exponents).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue

        # Punctuator, longest match first.
        for p in _PUNCTUATORS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            i += 1  # unknown byte: drop it

    return LexedFile(path, tokens, allows, expects)


def _skip_plain_literal(text, quote_idx, quote):
    """Index past the closing quote of a non-raw literal starting at
    ``quote_idx``; also returns embedded (spliced) newline count."""
    n = len(text)
    j = quote_idx + 1
    newlines = 0
    while j < n:
        c = text[j]
        if c == "\\":
            if j + 1 < n and text[j + 1] == "\n":
                newlines += 1
            j += 2
            continue
        if c == quote:
            return j + 1, newlines
        if c == "\n":
            # Unterminated literal: stop at the newline so one bad line
            # cannot swallow the rest of the file.
            return j, newlines
        j += 1
    return n, newlines


def lex_file(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return tokenize(f.read(), path)
