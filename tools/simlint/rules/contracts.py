"""Result- and status-contract rules.

discarded-result         (ported from lint_tasks.py, PR 3)
overloaded-never-retried (new; the PR 6 overload contract)
lease-check-after-await  (new; the PR 9 fencing contract)
"""

import re

from . import (call_chain_at, is_test_path, iter_statements,
               statement_end_after)

# ---------------------------------------------------------------------------
# discarded-result — a bare statement calling a repo function that
# returns sim::Task/Status/Result. A dropped Task never runs (lazy
# coroutines start suspended); a dropped Status swallows an error.
# [[nodiscard]] catches most of this at compile time; the lint also
# covers macro-heavy paths and files gated out of the build.
#
# Token-stream shape: a whole statement of exactly
#     chain ( args ) ;
# where chain = id ((. | -> | ::) id)*. Anything consuming the value
# (`x = ...`, `return ...`, `co_await ...`, `(void) ...`, a comparison)
# breaks the shape at token level, so the regex engine's continuation-
# line workarounds are structurally unnecessary here.


def check_discarded_result(ctx):
    tokens = ctx.tokens
    must_use = ctx.must_use_names()
    n = len(tokens)
    for s, e in iter_statements(tokens, 0, n):
        callee, open_paren = call_chain_at(tokens, s, e)
        if callee is None or callee not in must_use:
            continue
        close = ctx.model.paren_match.get(open_paren)
        if close is None or close + 1 != e:
            continue  # trailing operators: the value is consumed
        ctx.report(
            tokens[s].line, "discarded-result",
            "result of %s() (Task/Status/Result) is discarded; assign, "
            "await, check, or cast to (void)" % callee)


# ---------------------------------------------------------------------------
# overloaded-never-retried — the PR 6 contract: kOverloaded is an
# explicit push-back from a live peer. It is TERMINAL for the attempt:
# never retried (retrying feeds the overload) and never counted by
# circuit breakers (the peer is alive; opening amputates capacity
# exactly when demand peaks). Two shapes are flagged:
#
#   (a) a retryability/breaker predicate (Is*Retryable, ShouldRetry,
#       IsBreakerFailure, ...) whose `return` expression matches
#       kOverloaded positively (`== kOverloaded`);
#   (b) an `if`/`while` whose condition matches kOverloaded positively
#       and whose controlled block reacts with retry machinery
#       (RecordFailure / BackoffFor / Retry* / a bare `continue` in a
#       retry loop).

_PREDICATE_NAME_RE = re.compile(
    r"^(?:Is|Should|Can).*(?:Retry|Retriable|Retryable|BreakerFailure)"
    r"|^ShouldRetry$")

_RETRY_REACTION_IDS = ("RecordFailure", "BackoffFor", "SpendRetryToken")
_RETRY_REACTION_PREFIX = "Retry"


def _positive_overload_match(tokens, start, end):
    """Index of a `kOverloaded` that is compared with `==` (not `!=`)
    within tokens[start:end], else None. `IsOverloaded(...)` used as a
    truthy condition also counts."""
    for k in range(start, end):
        t = tokens[k]
        if t.is_id("IsOverloaded"):
            # `!IsOverloaded(...)` is a negative guard.
            if k > start and tokens[k - 1].is_punct("!"):
                continue
            return k
        if not t.is_id("kOverloaded"):
            continue
        # Nearest comparison operator before the (possibly qualified)
        # kOverloaded decides polarity.
        j = k - 1
        while j >= start and (tokens[j].is_punct("::")
                              or tokens[j].is_id()):
            j -= 1
        if j >= start and tokens[j].is_punct("=="):
            return k
        # `kOverloaded == code` spelling:
        if k + 1 < end and tokens[k + 1].is_punct("=="):
            return k
    return None


def _block_after_condition(ctx, close_paren, limit):
    """(start, end) token range controlled by an if/while whose condition
    closes at ``close_paren``: a brace block or a single statement."""
    tokens = ctx.tokens
    k = close_paren + 1
    if k >= limit:
        return k, k
    if tokens[k].is_punct("{"):
        close = ctx.model.brace_match.get(k)
        return k + 1, close if close is not None else limit
    # Single statement: up to the next `;`.
    j = k
    depth = 0
    while j < limit:
        t = tokens[j]
        if t.is_punct("("):
            depth += 1
        elif t.is_punct(")"):
            depth -= 1
        elif depth == 0 and t.is_punct(";"):
            return k, j + 1
        j += 1
    return k, limit


def _reacts_with_retry(tokens, start, end):
    for k in range(start, end):
        t = tokens[k]
        if t.is_id(*_RETRY_REACTION_IDS):
            return t
        if t.is_id("continue"):
            return t
        if t.is_id() and t.text.startswith(_RETRY_REACTION_PREFIX) \
                and k + 1 < end and tokens[k + 1].is_punct("("):
            return t
    return None


def check_overloaded_never_retried(ctx):
    tokens = ctx.tokens
    model = ctx.model

    # Shape (a): retry predicates returning a positive kOverloaded match.
    for fn in model.functions:
        if not _PREDICATE_NAME_RE.search(fn.name):
            continue
        for s, e in iter_statements(tokens, fn.body_start + 1, fn.body_end):
            if not tokens[s].is_id("return"):
                continue
            hit = _positive_overload_match(tokens, s + 1, e)
            if hit is not None:
                ctx.report(
                    tokens[hit].line, "overloaded-never-retried",
                    "retry/breaker predicate %s() treats kOverloaded as "
                    "retryable; kOverloaded is an explicit push-back from "
                    "a live peer — retrying it feeds the overload and "
                    "counting it opens breakers under pure load (PR 6 "
                    "contract: only kDeadlineExceeded/kUnavailable are "
                    "transport failures)" % fn.name)

    # Shape (b): `if (st == kOverloaded) { <retry reaction> }`.
    n = len(tokens)
    for i, t in enumerate(tokens):
        if not t.is_id("if", "while"):
            continue
        if i + 1 >= n or not tokens[i + 1].is_punct("("):
            continue
        close = model.paren_match.get(i + 1)
        if close is None:
            continue
        hit = _positive_overload_match(tokens, i + 2, close)
        if hit is None:
            continue
        blk_start, blk_end = _block_after_condition(ctx, close, n)
        reaction = _reacts_with_retry(tokens, blk_start, blk_end)
        if reaction is None:
            continue
        ctx.report(
            tokens[hit].line, "overloaded-never-retried",
            "this branch matches kOverloaded and reacts with retry "
            "machinery (%s); kOverloaded is terminal for the attempt — "
            "surface it to the caller (shed/backpressure), never retry "
            "or count it against a breaker" % reaction.text)


# ---------------------------------------------------------------------------
# lease-check-after-await — the PR 9 fencing contract: an epoch (lease)
# check is only a fencing proof for code that runs BEFORE the next
# suspension point. The moment a coroutine parks — a drain delay, a
# breaker backoff, a nested RPC — the orchestrator may condemn this
# host, bump the epoch, and re-grant the device elsewhere; when the
# frame resumes, the stale check admits a split-brain write to the BAR.
#
# Shape flagged: a coroutine that validates an epoch (`... epoch ... ==`
# or `!=`), then suspends, then applies `MmioWrite`/`MmioRead` with no
# re-check between the suspension and the apply. The co_await that
# performs the apply itself does not count as an intervening suspension
# (the agent opens its no-suspension inflight window exactly there, and
# the fence push drains that window before acking — see
# Agent::HandleForwarding). The fix is the production shape: re-check
# epoch and self-fence state after the last unrelated await, immediately
# before touching the device.

_APPLY_CALLEES = ("MmioWrite", "MmioRead")
_EPOCH_CMP_WINDOW = 6


def _epoch_check_indices(tokens, start, end):
    """Token indices of `==`/`!=` comparisons involving an epoch-ish
    identifier within a few tokens on either side."""
    hits = []
    for k in range(start, end):
        if not tokens[k].is_punct("==", "!="):
            continue
        lo = max(start, k - _EPOCH_CMP_WINDOW)
        hi = min(end, k + _EPOCH_CMP_WINDOW + 1)
        for j in range(lo, hi):
            t = tokens[j]
            if t.is_id() and "epoch" in t.text.lower():
                hits.append(k)
                break
    return hits


def _suspension_cannot_reach(model, fn, sp, apply_idx):
    """True when the suspension at ``sp`` sits in a brace block that
    closes before ``apply_idx`` and returns out of the coroutine after
    the suspension — a mutually-exclusive branch (the write arm of
    HandleForwarding vs its read-path apply): control that took the
    suspension exits the frame instead of falling through to the
    apply. Loose on purpose (a conditional co_return also matches):
    false negatives over noise."""
    tokens = model.tokens
    for o, c in model.brace_match.items():
        if not (fn.body_start < o < sp < c < apply_idx):
            continue
        for k in range(sp + 1, c):
            if tokens[k].is_id("co_return", "return"):
                return True
    return False


def check_lease_check_after_await(ctx):
    if is_test_path(ctx.path):
        return
    tokens = ctx.tokens
    model = ctx.model
    flagged_lines = set()  # per-file: lambda bodies nest inside functions
    for fn in list(model.functions) + list(model.lambdas):
        if not fn.is_coroutine:
            continue
        checks = _epoch_check_indices(tokens, fn.body_start + 1, fn.body_end)
        if not checks:
            continue
        for a in range(fn.body_start + 1, fn.body_end - 1):
            t = tokens[a]
            if not (t.is_id(*_APPLY_CALLEES) and tokens[a + 1].is_punct("(")):
                continue
            prior = [c for c in checks if c < a]
            if not prior:
                continue
            last_check = max(prior)
            stale = None
            for sp in fn.suspend_points:
                if not (last_check < sp < a):
                    continue
                if statement_end_after(model, sp, fn.body_end) > a:
                    continue  # the apply's own co_await
                if _suspension_cannot_reach(model, fn, sp, a):
                    continue  # terminal sibling branch, e.g. write vs read
                stale = sp
                break
            if stale is None or t.line in flagged_lines:
                continue
            flagged_lines.add(t.line)
            ctx.report(
                t.line, "lease-check-after-await",
                "%s() is applied after a suspension point that follows "
                "the last epoch check; the lease can be fenced and "
                "re-granted while this frame is parked, so the stale "
                "check admits a split-brain write — re-check the epoch "
                "(and self-fence state) after the last co_await, "
                "immediately before touching the device" % t.text)


RULES = [
    ("discarded-result", check_discarded_result),
    ("overloaded-never-retried", check_overloaded_never_retried),
    ("lease-check-after-await", check_lease_check_after_await),
]
