"""Result- and status-contract rules.

discarded-result         (ported from lint_tasks.py, PR 3)
overloaded-never-retried (new; the PR 6 overload contract)
"""

import re

from . import call_chain_at, iter_statements

# ---------------------------------------------------------------------------
# discarded-result — a bare statement calling a repo function that
# returns sim::Task/Status/Result. A dropped Task never runs (lazy
# coroutines start suspended); a dropped Status swallows an error.
# [[nodiscard]] catches most of this at compile time; the lint also
# covers macro-heavy paths and files gated out of the build.
#
# Token-stream shape: a whole statement of exactly
#     chain ( args ) ;
# where chain = id ((. | -> | ::) id)*. Anything consuming the value
# (`x = ...`, `return ...`, `co_await ...`, `(void) ...`, a comparison)
# breaks the shape at token level, so the regex engine's continuation-
# line workarounds are structurally unnecessary here.


def check_discarded_result(ctx):
    tokens = ctx.tokens
    must_use = ctx.must_use_names()
    n = len(tokens)
    for s, e in iter_statements(tokens, 0, n):
        callee, open_paren = call_chain_at(tokens, s, e)
        if callee is None or callee not in must_use:
            continue
        close = ctx.model.paren_match.get(open_paren)
        if close is None or close + 1 != e:
            continue  # trailing operators: the value is consumed
        ctx.report(
            tokens[s].line, "discarded-result",
            "result of %s() (Task/Status/Result) is discarded; assign, "
            "await, check, or cast to (void)" % callee)


# ---------------------------------------------------------------------------
# overloaded-never-retried — the PR 6 contract: kOverloaded is an
# explicit push-back from a live peer. It is TERMINAL for the attempt:
# never retried (retrying feeds the overload) and never counted by
# circuit breakers (the peer is alive; opening amputates capacity
# exactly when demand peaks). Two shapes are flagged:
#
#   (a) a retryability/breaker predicate (Is*Retryable, ShouldRetry,
#       IsBreakerFailure, ...) whose `return` expression matches
#       kOverloaded positively (`== kOverloaded`);
#   (b) an `if`/`while` whose condition matches kOverloaded positively
#       and whose controlled block reacts with retry machinery
#       (RecordFailure / BackoffFor / Retry* / a bare `continue` in a
#       retry loop).

_PREDICATE_NAME_RE = re.compile(
    r"^(?:Is|Should|Can).*(?:Retry|Retriable|Retryable|BreakerFailure)"
    r"|^ShouldRetry$")

_RETRY_REACTION_IDS = ("RecordFailure", "BackoffFor", "SpendRetryToken")
_RETRY_REACTION_PREFIX = "Retry"


def _positive_overload_match(tokens, start, end):
    """Index of a `kOverloaded` that is compared with `==` (not `!=`)
    within tokens[start:end], else None. `IsOverloaded(...)` used as a
    truthy condition also counts."""
    for k in range(start, end):
        t = tokens[k]
        if t.is_id("IsOverloaded"):
            # `!IsOverloaded(...)` is a negative guard.
            if k > start and tokens[k - 1].is_punct("!"):
                continue
            return k
        if not t.is_id("kOverloaded"):
            continue
        # Nearest comparison operator before the (possibly qualified)
        # kOverloaded decides polarity.
        j = k - 1
        while j >= start and (tokens[j].is_punct("::")
                              or tokens[j].is_id()):
            j -= 1
        if j >= start and tokens[j].is_punct("=="):
            return k
        # `kOverloaded == code` spelling:
        if k + 1 < end and tokens[k + 1].is_punct("=="):
            return k
    return None


def _block_after_condition(ctx, close_paren, limit):
    """(start, end) token range controlled by an if/while whose condition
    closes at ``close_paren``: a brace block or a single statement."""
    tokens = ctx.tokens
    k = close_paren + 1
    if k >= limit:
        return k, k
    if tokens[k].is_punct("{"):
        close = ctx.model.brace_match.get(k)
        return k + 1, close if close is not None else limit
    # Single statement: up to the next `;`.
    j = k
    depth = 0
    while j < limit:
        t = tokens[j]
        if t.is_punct("("):
            depth += 1
        elif t.is_punct(")"):
            depth -= 1
        elif depth == 0 and t.is_punct(";"):
            return k, j + 1
        j += 1
    return k, limit


def _reacts_with_retry(tokens, start, end):
    for k in range(start, end):
        t = tokens[k]
        if t.is_id(*_RETRY_REACTION_IDS):
            return t
        if t.is_id("continue"):
            return t
        if t.is_id() and t.text.startswith(_RETRY_REACTION_PREFIX) \
                and k + 1 < end and tokens[k + 1].is_punct("("):
            return t
    return None


def check_overloaded_never_retried(ctx):
    tokens = ctx.tokens
    model = ctx.model

    # Shape (a): retry predicates returning a positive kOverloaded match.
    for fn in model.functions:
        if not _PREDICATE_NAME_RE.search(fn.name):
            continue
        for s, e in iter_statements(tokens, fn.body_start + 1, fn.body_end):
            if not tokens[s].is_id("return"):
                continue
            hit = _positive_overload_match(tokens, s + 1, e)
            if hit is not None:
                ctx.report(
                    tokens[hit].line, "overloaded-never-retried",
                    "retry/breaker predicate %s() treats kOverloaded as "
                    "retryable; kOverloaded is an explicit push-back from "
                    "a live peer — retrying it feeds the overload and "
                    "counting it opens breakers under pure load (PR 6 "
                    "contract: only kDeadlineExceeded/kUnavailable are "
                    "transport failures)" % fn.name)

    # Shape (b): `if (st == kOverloaded) { <retry reaction> }`.
    n = len(tokens)
    for i, t in enumerate(tokens):
        if not t.is_id("if", "while"):
            continue
        if i + 1 >= n or not tokens[i + 1].is_punct("("):
            continue
        close = model.paren_match.get(i + 1)
        if close is None:
            continue
        hit = _positive_overload_match(tokens, i + 2, close)
        if hit is None:
            continue
        blk_start, blk_end = _block_after_condition(ctx, close, n)
        reaction = _reacts_with_retry(tokens, blk_start, blk_end)
        if reaction is None:
            continue
        ctx.report(
            tokens[hit].line, "overloaded-never-retried",
            "this branch matches kOverloaded and reacts with retry "
            "machinery (%s); kOverloaded is terminal for the attempt — "
            "surface it to the caller (shed/backpressure), never retry "
            "or count it against a breaker" % reaction.text)


RULES = [
    ("discarded-result", check_discarded_result),
    ("overloaded-never-retried", check_overloaded_never_retried),
]
