"""Supervision and ordering rules.

unstoppable-loop  (ported from lint_tasks.py, PR 4)
missing-deadline  (ported from lint_tasks.py, PR 6)
"""

import re

from . import is_test_path

# ---------------------------------------------------------------------------
# unstoppable-loop — `Spawn(SomethingLoop(...))` with no stop token among
# the arguments. Detached periodic loops (ScrubLoop, ReportLoop, the
# agent watchdog) are the one coroutine shape that outlives its spawner
# by design; without a StopToken they keep waking after Shutdown(),
# touching freed rack state. Convention: every `*Loop` coroutine takes a
# `sim::StopToken&`, so a spawn whose argument list never mentions one
# is a supervision bug.

_LOOP_NAME_RE = re.compile(r"\w+Loop$")
_STOP_ARG_RE = re.compile(r"stop", re.IGNORECASE)


def check_unstoppable_loop(ctx):
    tokens = ctx.tokens
    model = ctx.model
    n = len(tokens)
    for i, t in enumerate(tokens):
        if not t.is_id("Spawn"):
            continue
        if i + 1 >= n or not tokens[i + 1].is_punct("("):
            continue
        close = model.paren_match.get(i + 1)
        if close is None:
            continue
        spawns_loop = False
        has_stop = False
        for k in range(i + 2, close):
            a = tokens[k]
            if a.is_id() and _LOOP_NAME_RE.search(a.text) \
                    and k + 1 < close and tokens[k + 1].is_punct("("):
                spawns_loop = True
            if a.is_id() and (_STOP_ARG_RE.search(a.text)
                              or a.text == "StopToken"):
                has_stop = True
        if spawns_loop and not has_stop:
            ctx.report(
                t.line, "unstoppable-loop",
                "detached *Loop spawned without a stop token; it outlives "
                "Shutdown() and wakes against freed state — thread a "
                "sim::StopToken& through it")


# ---------------------------------------------------------------------------
# missing-deadline — `co_await` on an RPC/channel op (Call, Recv) whose
# argument list carries no deadline-ish token. An op with no budget
# waits forever: under overload it queues behind a wedged peer and turns
# backpressure into a hang — the exact failure the deadline-propagation
# work (PR 6) exists to prevent. Test code is exempt: tests legitimately
# use sentinel/infinite waits to pin ordering.

_DEADLINE_OPS = ("Call", "Recv")
_DEADLINE_ARG_RE = re.compile(
    r"deadline|timeout|expiry|until|budget", re.IGNORECASE)


def _args_have_deadline(tokens, open_paren, close):
    for k in range(open_paren + 1, close):
        t = tokens[k]
        if not t.is_id():
            continue
        if _DEADLINE_ARG_RE.search(t.text):
            return True
        if t.text == "now" and k + 1 < close and tokens[k + 1].is_punct("("):
            return True
        if t.text == "kInheritCallDeadline":
            return True
    return False


def check_missing_deadline(ctx):
    if is_test_path(ctx.path):
        return
    tokens = ctx.tokens
    model = ctx.model
    n = len(tokens)
    for i, t in enumerate(tokens):
        if not t.is_id("co_await"):
            continue
        # Walk the awaited chain: id ((. | -> | ::) id)* ending in
        # Call/Recv immediately followed by `(`.
        k = i + 1
        last_id = None
        while k < n:
            tk = tokens[k]
            if tk.is_id():
                last_id = tk.text
                k += 1
                continue
            if tk.is_punct(".", "->", "::"):
                k += 1
                continue
            break
        if k >= n or last_id not in _DEADLINE_OPS \
                or not tokens[k].is_punct("("):
            continue
        close = model.paren_match.get(k)
        if close is None:
            continue
        if _args_have_deadline(tokens, k, close):
            continue
        ctx.report(
            t.line, "missing-deadline",
            "co_await %s() with no deadline/timeout argument waits forever "
            "under overload; pass an absolute deadline (loop.now() + "
            "budget) so every hop can shed the op once it expires"
            % last_id)


RULES = [
    ("unstoppable-loop", check_unstoppable_loop),
    ("missing-deadline", check_missing_deadline),
]
