"""Rule registry and token-stream helpers shared by every rule."""

import os
import re

# ---------------------------------------------------------------------------
# Rule context


class RuleContext:
    """Everything one rule invocation sees for one file."""

    __slots__ = ("path", "lexed", "model", "index", "findings",
                 "local_must_use", "local_other_returns")

    def __init__(self, path, lexed, model, index, findings,
                 local_must_use=frozenset(), local_other_returns=frozenset()):
        self.path = path
        self.lexed = lexed
        self.model = model
        self.index = index
        self.findings = findings
        self.local_must_use = local_must_use
        self.local_other_returns = local_other_returns

    @property
    def tokens(self):
        return self.lexed.tokens

    def must_use_names(self):
        """Header-index must-use names, adjusted by this translation
        unit's own definitions: a local non-must-use overload disables
        the name (ambiguous at call sites); a local must-use definition
        enables it even when no header declares it."""
        names = (self.index.must_use_names()
                 | self.local_must_use) - self.local_other_returns
        return names - self.index.other_return

    def report(self, line, rule, message):
        from ..findings import Finding
        if self.lexed.allowed(line, rule):
            return
        self.findings.append(Finding(self.path, line, rule, message))


# ---------------------------------------------------------------------------
# Path classification (shared exemptions)

def _norm(path):
    # Absolute so `tests/foo.cc` and `/repo/tests/foo.cc` classify alike.
    return os.path.abspath(path).replace(os.sep, "/")


def is_test_path(path):
    norm = _norm(path)
    return ("/tests/" in norm or "/test/" in norm
            or re.search(r"_test\.(?:cc|cpp|h)$", norm) is not None)


def is_msg_internal(path):
    return "/src/msg/" in _norm(path)


# ---------------------------------------------------------------------------
# Token-walk helpers

#: identifiers that start a statement but can never start a declaration
STMT_KEYWORDS = {
    "return", "co_return", "co_await", "co_yield", "if", "else", "for",
    "while", "do", "switch", "case", "default", "break", "continue",
    "goto", "using", "typedef", "delete", "new", "throw", "public",
    "private", "protected", "template", "namespace", "static_assert",
    "else",
}

_DECL_LINK_PUNCT = {"&", "*", "::", ",", "[", "]"}


def iter_statements(tokens, start, end):
    """Yield (first_idx, last_idx) for `;`-terminated statement spans in
    tokens[start:end], flattening nested braces (a `{`/`}` resets the
    statement start, same contract as the old regex pass)."""
    stmt_start = start
    i = start
    while i < end:
        t = tokens[i]
        if t.is_punct("{", "}"):
            stmt_start = i + 1
        elif t.is_punct(";"):
            if i > stmt_start:
                yield stmt_start, i
            stmt_start = i + 1
        i += 1


def local_decl_name(tokens, start, end):
    """If tokens[start:end] look like a single-declarator local
    declaration (`Type name;`, `auto name = ...`, `Type name(...)`,
    `Type name{...}`), return the declared name, else None."""
    if start >= end:
        return None
    first = tokens[start]
    if not first.is_id() or first.text in STMT_KEYWORDS:
        return None
    angle = 0
    last_id = None
    id_count = 0
    k = start
    while k < end:
        t = tokens[k]
        if t.is_punct("<"):
            angle += 1
        elif t.is_punct(">"):
            angle = max(0, angle - 1)
        elif angle == 0:
            if t.is_punct(";", "=", "{", "("):
                return last_id if id_count >= 2 else None
            if t.is_id():
                if t.text == "const":
                    k += 1
                    continue
                last_id = t.text
                id_count += 1
            elif t.kind == "punct" and t.text not in _DECL_LINK_PUNCT:
                return None  # an operator: expression, not declaration
            elif t.kind in ("str", "char"):
                return None
        k += 1
    return last_id if id_count >= 2 else None


def match_paren(model, open_idx):
    return model.paren_match.get(open_idx)


def call_chain_at(tokens, i, end):
    """Parse a member/namespace call chain starting at token ``i``:
    ``id ((. | -> | ::) id)* (`` — returns (callee_name, open_paren_idx)
    or (None, None)."""
    if i >= end or not tokens[i].is_id() \
            or tokens[i].text in STMT_KEYWORDS:
        return None, None
    k = i
    callee = tokens[k].text
    k += 1
    while k + 1 < end and tokens[k].is_punct(".", "->", "::") \
            and tokens[k + 1].is_id():
        callee = tokens[k + 1].text
        k += 2
    if k < end and tokens[k].is_punct("("):
        return callee, k
    return None, None


def statement_end_after(model, idx, limit):
    """Token index just past the statement containing ``idx``: the first
    `;` at paren-depth 0, or the first `{` opening a block (whichever
    comes first), bounded by ``limit``."""
    tokens = model.tokens
    depth = 0
    k = idx
    while k < limit:
        t = tokens[k]
        if t.is_punct("("):
            depth += 1
        elif t.is_punct(")"):
            depth -= 1
        elif depth <= 0 and t.is_punct(";"):
            return k + 1
        elif depth <= 0 and t.is_punct("{"):
            return k + 1
        k += 1
    return limit


def enclosing_brace_scope(model, idx):
    """(open_idx, close_idx) of the innermost brace pair containing
    token ``idx``, or (None, None)."""
    best = (None, None)
    for o, c in model.brace_match.items():
        if o < idx < c:
            if best[0] is None or o > best[0]:
                best = (o, c)
    return best


def collect_param_names(tokens, params_start, params_end):
    """Parameter names: the last identifier of each comma-separated
    parameter (skipping template-argument commas)."""
    names = set()
    angle = 0
    depth = 0
    last_id = None
    for k in range(params_start + 1, params_end):
        t = tokens[k]
        if t.is_punct("<"):
            angle += 1
        elif t.is_punct(">"):
            angle = max(0, angle - 1)
        elif t.is_punct("("):
            depth += 1
        elif t.is_punct(")"):
            depth -= 1
        elif t.is_punct(",") and angle == 0 and depth == 0:
            if last_id:
                names.add(last_id)
            last_id = None
        elif t.is_id() and angle == 0 and depth == 0:
            last_id = t.text
    if last_id:
        names.add(last_id)
    return names


def collect_local_names(tokens, body_start, body_end):
    names = set()
    for s, e in iter_statements(tokens, body_start + 1, body_end):
        name = local_decl_name(tokens, s, e)
        if name:
            names.add(name)
    return names


# ---------------------------------------------------------------------------
# Registry

def all_rules():
    """[(rule_name, callable(ctx))] in deterministic order."""
    from . import contracts, lifetime, resources, supervision
    rules = []
    for mod in (lifetime, contracts, supervision, resources):
        rules.extend(mod.RULES)
    return rules
