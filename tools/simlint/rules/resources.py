"""Resource-discipline rules.

leaked-span      (ported from lint_tasks.py, PR 5)
direct-ring-send (ported from lint_tasks.py, PR 7)
"""

from . import is_msg_internal, is_test_path

# ---------------------------------------------------------------------------
# leaked-span — an obs::Span local bound from StartTrace/StartSpan (or
# the MaybeStart*/StartOpSpan wrappers) with no .End(...) in the
# enclosing function. Spans are explicit-End by design: the destructor
# deliberately abandons (and counts) un-ended spans rather than guess an
# end time, so a span never End()ed silently vanishes from the trace and
# inflates Tracer::dropped_spans(). Moving or returning the span
# transfers the obligation to the caller.


def _span_decl_at(tokens, i, n):
    """If a span declaration `[obs::] Span name = ...Start*(` begins at
    token ``i``, return (name, index_of_name); else (None, None)."""
    k = i
    if tokens[k].is_id("obs") and k + 2 < n and tokens[k + 1].is_punct("::"):
        k += 2
    if not tokens[k].is_id("Span"):
        return None, None
    if k + 2 >= n or not tokens[k + 1].is_id():
        return None, None
    name_idx = k + 1
    if not tokens[name_idx + 1].is_punct("="):
        return None, None
    # The initializer chain must reach a Start*/MaybeStart* call before
    # the statement ends.
    j = name_idx + 2
    while j + 1 < n:
        t = tokens[j]
        if t.is_punct(";"):
            return None, None
        if t.is_id() and (t.text.startswith("Start")
                          or t.text.startswith("MaybeStart")) \
                and tokens[j + 1].is_punct("("):
            return tokens[name_idx].text, name_idx
        j += 1
    return None, None


def check_leaked_span(ctx):
    tokens = ctx.tokens
    model = ctx.model
    n = len(tokens)
    i = 0
    while i < n:
        name, name_idx = _span_decl_at(tokens, i, n)
        if name is None:
            i += 1
            continue
        fn = model.enclosing_function(name_idx)
        region_end = fn.body_end if fn is not None else n
        consumed = False
        k = name_idx + 1
        while k < region_end:
            t = tokens[k]
            if t.is_id(name):
                nxt = tokens[k + 1] if k + 1 < region_end else None
                nxt2 = tokens[k + 2] if k + 2 < region_end else None
                if nxt is not None and nxt.is_punct(".") \
                        and nxt2 is not None and nxt2.is_id("End"):
                    consumed = True
                    break
                prev = tokens[k - 1]
                prev2 = tokens[k - 2] if k >= 2 else None
                # std::move(name) — ownership handed off.
                if prev.is_punct("(") and prev2 is not None \
                        and prev2.is_id("move"):
                    consumed = True
                    break
                # return name; / co_return name; — caller owns the End.
                if prev.is_id("return", "co_return") and nxt is not None \
                        and nxt.is_punct(";"):
                    consumed = True
                    break
            k += 1
        if not consumed:
            ctx.report(
                tokens[name_idx].line, "leaked-span",
                "span '%s' is started but never .End()ed in this scope; "
                "the destructor abandons it (dropped from the trace, "
                "counted in Tracer::dropped_spans()) — End() it on every "
                "exit path or std::move it to the new owner" % name)
        i = name_idx + 1


# ---------------------------------------------------------------------------
# direct-ring-send — code outside src/msg/ calling RingSender::Send /
# SendBatch directly, via a `.sender().Send(...)` accessor chain or a
# RingSender-typed local/reference. The ring's raw producer bypasses the
# MPSC submission front (write-combined batching, doorbell coalescing,
# control-priority jump, staging-bound backpressure), so one "harmless"
# direct send on the hot path silently un-does the throughput work.
# msg::Endpoint::Send is the only sanctioned door; src/msg/ itself and
# test code (which drives the ring on purpose) are exempt.


def check_direct_ring_send(ctx):
    if is_msg_internal(ctx.path) or is_test_path(ctx.path):
        return
    tokens = ctx.tokens
    n = len(tokens)

    def flag(line):
        ctx.report(
            line, "direct-ring-send",
            "direct RingSender::Send bypasses the MPSC submission front "
            "(batching, doorbell coalescing, priority, backpressure) — "
            "publish through msg::Endpoint::Send instead")

    # Accessor-chain bypass: sender().Send( / sender().SendBatch(
    for i in range(n - 5):
        if (tokens[i].is_id("sender") and tokens[i + 1].is_punct("(")
                and tokens[i + 2].is_punct(")")
                and tokens[i + 3].is_punct(".")
                and tokens[i + 4].is_id("Send", "SendBatch")
                and tokens[i + 5].is_punct("(")):
            flag(tokens[i].line)

    # RingSender-typed locals/references, then name.Send(.
    names = set()
    for i in range(n - 2):
        if not tokens[i].is_id("RingSender"):
            continue
        k = i + 1
        while k < n and tokens[k].is_punct("&", "*"):
            k += 1
        if k < n and tokens[k].is_id():
            names.add(tokens[k].text)
    if not names:
        return
    for i in range(n - 3):
        if (tokens[i].is_id() and tokens[i].text in names
                and tokens[i + 1].is_punct(".")
                and tokens[i + 2].is_id("Send", "SendBatch")
                and tokens[i + 3].is_punct("(")):
            flag(tokens[i].line)


RULES = [
    ("leaked-span", check_leaked_span),
    ("direct-ring-send", check_direct_ring_send),
]
