"""Coroutine-lifetime rules.

dangling-frame               (ported from lint_tasks.py, PR 1)
member-read-after-await      (new; the PR 5 rebind use-after-free class)
ref-capture-across-suspension(new; [&] lambdas whose frame outlives the
                              captures' owners)
lock-across-await            (new; a guard held across a suspension)
"""

import re

from . import (collect_local_names, collect_param_names,
               enclosing_brace_scope, is_msg_internal, is_test_path,
               iter_statements, local_decl_name, statement_end_after)

# ---------------------------------------------------------------------------
# dangling-frame — a NON-coroutine returning a lazy sim::Task built from
# its own locals. The frame dies before the task runs; every
# reference/span argument dangles. PR 1 hit this twice (DoorbellSender::
# Ring, the RPC reply path), both found only under ASan. Forwarding
# *parameters* is fine (the caller owns those); only body locals count.


def _returns_task(fn):
    return any(t.is_id("Task") for t in fn.return_tokens)


def check_dangling_frame(ctx):
    tokens = ctx.tokens
    for fn in ctx.model.functions:
        if fn.is_coroutine or not _returns_task(fn):
            continue
        locals_declared = set()
        for s, e in iter_statements(tokens, fn.body_start + 1, fn.body_end):
            name = local_decl_name(tokens, s, e)
            if name:
                locals_declared.add(name)
            if not tokens[s].is_id("return"):
                continue
            expr = tokens[s + 1:e]
            if not any(t.is_punct("(") for t in expr):
                continue  # returning a variable/default, not building one
            used = sorted({t.text for t in expr
                           if t.is_id() and t.text in locals_declared})
            if used:
                ctx.report(
                    tokens[s].line, "dangling-frame",
                    "non-coroutine returns a Task built from local(s) %s; "
                    "the frame dies before the task runs — make this a "
                    "coroutine (co_return co_await ...)" % ", ".join(used))


# ---------------------------------------------------------------------------
# member-read-after-await — inside a member coroutine, `this` (and every
# trailing-underscore member) may be freed while the frame is suspended
# on a wire op: rebind/failover destroys the owning object with the call
# in flight (the PR 5 ForwardedMmioPath/DoorbellSender UAF, found by a
# full ASan chaos soak). The sanctioned fix is frame pinning: copy what
# the continuation needs into locals BEFORE the co_await
# (`sim::EventLoop& loop = loop_;`) and never touch members after it.
#
# Scope of the rule (false negatives over noise):
#   * only awaits that cross the wire count (`Call`/`Recv` in the
#     awaited expression) — local primitives (Event::Wait, Delay) are
#     woken by owners whose lifetime already bounds the frame;
#   * coroutines taking a StopToken& are exempt: the supervised-loop
#     protocol stops them before their owner is torn down;
#   * src/msg/ internals are exempt: the transport owns the
#     drain-before-free protocol (retired clients/channels are parked
#     until quiescent — PR 5) that makes its member access safe.

_RISKY_CALLEES = ("Call", "Recv")


def _await_is_risky(tokens, await_idx, stmt_limit):
    k = await_idx + 1
    while k < stmt_limit - 1:
        t = tokens[k]
        if t.is_punct(";"):
            return False
        if t.is_id(*_RISKY_CALLEES) and tokens[k + 1].is_punct("("):
            return True
        k += 1
    return False


def _takes_stop_token(tokens, fn):
    for k in range(fn.params_start + 1, fn.params_end):
        if tokens[k].is_id("StopToken"):
            return True
    return False


def check_member_read_after_await(ctx):
    if is_test_path(ctx.path) or is_msg_internal(ctx.path):
        return
    tokens = ctx.tokens
    for fn in ctx.model.functions:
        if not fn.is_coroutine or fn.class_name is None:
            continue
        if _takes_stop_token(tokens, fn):
            continue
        first_after = None
        for sp in fn.suspend_points:
            stmt_end = statement_end_after(ctx.model, sp, fn.body_end)
            if _await_is_risky(tokens, sp, stmt_end):
                first_after = stmt_end
                break
        if first_after is None:
            continue
        non_members = collect_param_names(tokens, fn.params_start,
                                          fn.params_end)
        non_members |= collect_local_names(tokens, fn.body_start,
                                           fn.body_end)
        known_members = ctx.index.members_of(fn.class_name)
        flagged_lines = set()
        k = first_after
        while k < fn.body_end:
            t = tokens[k]
            hit = None
            if t.is_id("this"):
                hit = "this"
            elif (t.is_id() and t.text.endswith("_")
                  and len(t.text) > 1
                  and t.text not in non_members
                  and (not known_members or t.text in known_members)):
                hit = t.text
            if hit is not None and t.line not in flagged_lines:
                flagged_lines.add(t.line)
                ctx.report(
                    t.line, "member-read-after-await",
                    "member '%s' of %s is accessed after a co_await on a "
                    "wire op; rebind/failover can destroy the object while "
                    "this frame is suspended (the PR 5 UAF) — pin what the "
                    "continuation needs into locals before the await "
                    "(e.g. `sim::EventLoop& loop = loop_;`) and use only "
                    "frame-owned state afterwards"
                    % (hit, fn.qualified_name))
            k += 1


# ---------------------------------------------------------------------------
# ref-capture-across-suspension — a lambda that captures by reference
# AND is (or produces) a coroutine. Its frame suspends and resumes after
# the creating scope may have unwound, so every `[&]` capture is a
# use-after-scope waiting for a scheduler interleaving. Migration
# handlers and Spawned probe lambdas are the shapes that have bitten
# (the chaos_soak handler PR 5 fixed). Fix: capture by value, or pass
# state as coroutine parameters (parameters are copied into the frame).


def check_ref_capture_across_suspension(ctx):
    if is_test_path(ctx.path):
        return
    for lam in ctx.model.lambdas:
        if not lam.has_ref_capture:
            continue
        if not (lam.is_coroutine or lam.returns_task):
            continue
        ctx.report(
            lam.line, "ref-capture-across-suspension",
            "coroutine lambda captures by reference; the frame outlives "
            "the capturing scope across suspensions — capture by value or "
            "pass the state as parameters (parameters are copied into the "
            "coroutine frame)")


# ---------------------------------------------------------------------------
# lock-across-await — a scoped guard alive across a co_await. The
# single-threaded simulator's awaits interleave arbitrary other frames;
# holding any exclusive resource across one serializes or deadlocks them
# (and in host code it blocks a whole thread). The turn-queue guard in
# RpcClient is deliberately named TurnGuard, not *LockGuard, precisely
# because holding a turn across awaits is its contract — the rule keys
# on lock-ish type names only.

_GUARD_TYPE_RE = re.compile(
    r"^(?:lock_guard|unique_lock|scoped_lock|shared_lock)$"
    r"|(?:Lock|Mutex)Guard$|^MutexLock$")


def _guard_decl_type(tokens, s, e):
    """Guard type name if tokens[s:e] declare a lock guard local."""
    name = local_decl_name(tokens, s, e)
    if name is None:
        return None, None
    for k in range(s, e):
        t = tokens[k]
        if t.is_id() and _GUARD_TYPE_RE.search(t.text):
            return t.text, name
        if t.is_punct("=", "(", "{"):
            break
    return None, None


def check_lock_across_await(ctx):
    tokens = ctx.tokens
    for fn in list(ctx.model.functions) + list(ctx.model.lambdas):
        if not fn.is_coroutine:
            continue
        for s, e in iter_statements(tokens, fn.body_start + 1, fn.body_end):
            guard_type, guard_name = _guard_decl_type(tokens, s, e)
            if guard_type is None:
                continue
            _, scope_end = enclosing_brace_scope(ctx.model, s)
            if scope_end is None:
                scope_end = fn.body_end
            released_at = None
            for k in range(e, scope_end):
                t = tokens[k]
                if t.is_id(guard_name) and k + 2 < scope_end \
                        and tokens[k + 1].is_punct(".") \
                        and tokens[k + 2].is_id("unlock", "Unlock",
                                                "release", "Release"):
                    released_at = k
                    break
            check_until = released_at if released_at is not None \
                else scope_end
            for sp in fn.suspend_points:
                if e < sp < check_until:
                    ctx.report(
                        tokens[sp].line, "lock-across-await",
                        "guard '%s' (%s) is alive across this co_await; "
                        "every frame the scheduler interleaves here "
                        "contends on or deadlocks against it — release "
                        "before suspending, or narrow the guard scope to "
                        "exclude the await" % (guard_name, guard_type))
                    break
            # only the first offending await per guard; further awaits in
            # the same scope are the same fix.


RULES = [
    ("dangling-frame", check_dangling_frame),
    ("member-read-after-await", check_member_read_after_await),
    ("ref-capture-across-suspension", check_ref_capture_across_suspension),
    ("lock-across-await", check_lock_across_await),
]
