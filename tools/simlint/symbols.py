"""Repo-wide symbol index, built from headers.

One scan over every header under the configured roots answers, for all
rules at once:

  * ``must_use``: function names whose every header overload returns
    ``sim::Task``/``Status``/``Result`` (names that ALSO have a
    void/other overload anywhere are dropped — at a call site without
    type resolution they are ambiguous, and simlint prefers false
    negatives over noise);
  * ``takes_stop_token``: functions with a ``sim::StopToken&``
    parameter — the supervised-loop protocol (a loop holding a stop
    token is stopped before its owning object is torn down);
  * ``coroutines``: functions whose in-header body contains a ``co_``
    keyword;
  * ``class_members``: per-class data-member names (trailing-underscore
    declarations at class-body depth), used by the lifetime rules to
    recognize member state reads.
"""

import os

from . import lexer, scopes

MUST_USE_HEADS = ("Task", "Status", "Result")
# Names excluded outright even if every overload matches: too generic.
_MUST_USE_BLOCKLIST = {"Task", "Status", "Result", "status", "ok"}


class SymbolIndex:
    __slots__ = ("must_use", "other_return", "takes_stop_token",
                 "coroutines", "class_members", "headers_scanned")

    def __init__(self):
        self.must_use = set()
        self.other_return = set()
        self.takes_stop_token = set()
        self.coroutines = set()
        self.class_members = {}  # class name -> set of member names
        self.headers_scanned = 0

    def is_must_use(self, name):
        return (name in self.must_use and name not in self.other_return
                and name not in _MUST_USE_BLOCKLIST)

    def must_use_names(self):
        return {n for n in self.must_use
                if n not in self.other_return
                and n not in _MUST_USE_BLOCKLIST}

    def members_of(self, class_name):
        return self.class_members.get(class_name, frozenset())


def _returns_must_use(return_tokens):
    """True when the return-type token list is Task<...>/Status/Result<...>
    (optionally namespace-qualified)."""
    ids = [t.text for t in return_tokens if t.is_id()]
    if not ids:
        return False
    # The type head is the last namespace-path component before any
    # template arguments: e.g. [sim, Task, T] -> Task when written
    # Task<T>; scan for the first must-use head in the id list.
    for head in ids:
        if head in MUST_USE_HEADS:
            return True
    return False


def _scan_params_for_stop_token(tokens, start, end):
    for k in range(start + 1, end):
        if tokens[k].is_id("StopToken"):
            return True
    return False


def _harvest_class_members(model, index):
    """Collect `Type name_;`-style members per class body."""
    toks = model.tokens
    for cls in model.classes:
        members = index.class_members.setdefault(cls.name, set())
        i = cls.body_start + 1
        while i < cls.body_end:
            t = toks[i]
            # Skip nested function/class bodies wholesale.
            if t.is_punct("{"):
                m = model.brace_match.get(i)
                i = (m + 1) if m is not None else (i + 1)
                continue
            if t.is_id() and t.text.endswith("_") and i + 1 < cls.body_end:
                nxt = toks[i + 1]
                if nxt.is_punct(";", "=", "{", "("):
                    members.add(t.text)
            i += 1


def _index_one(lexed, index):
    model = scopes.build(lexed)
    for fn in model.functions:
        if _returns_must_use(fn.return_tokens):
            index.must_use.add(fn.name)
        elif fn.return_tokens:
            index.other_return.add(fn.name)
        if _scan_params_for_stop_token(model.tokens, fn.params_start,
                                       fn.params_end):
            index.takes_stop_token.add(fn.qualified_name)
            index.takes_stop_token.add(fn.name)
        if fn.is_coroutine:
            index.coroutines.add(fn.qualified_name)
            index.coroutines.add(fn.name)
    # Declarations without bodies (the common header case) never make it
    # into model.functions; scan token triples for `Ret Name ( ... ) ;`.
    _index_declarations(model, index)
    _harvest_class_members(model, index)


def _index_declarations(model, index):
    toks = model.tokens
    n = len(toks)
    for i in range(n - 1):
        t = toks[i]
        if not t.is_id() or t.text in scopes.CONTROL_KEYWORDS:
            continue
        if not toks[i + 1].is_punct("("):
            continue
        close = model.paren_match.get(i + 1)
        if close is None:
            continue
        # Declaration iff the post-param tokens reach `;` without `{`.
        j = close + 1
        is_decl = False
        budget = 16
        while j < n and budget > 0:
            tk = toks[j]
            if tk.is_punct(";"):
                is_decl = True
                break
            if tk.is_punct("{", "(", ")", ",", ":"):
                break
            j += 1
            budget -= 1
        if not is_decl:
            continue
        first, _qual = scopes._leading_name_index(toks, i)
        if first > 0 and toks[first - 1].is_punct(".", "->"):
            continue
        ret = scopes._collect_return_tokens(toks, first)
        if not ret:
            continue
        if _returns_must_use(ret):
            index.must_use.add(t.text)
        else:
            index.other_return.add(t.text)
        if _scan_params_for_stop_token(toks, i + 1, close):
            index.takes_stop_token.add(t.text)


def file_overlay(model):
    """(local_must_use, local_other) for one translation unit's own
    function definitions. Overlaying these onto the header index gives
    call sites in the same file the benefit of local knowledge: a test
    fixture's ``void Drain()`` no longer collides with the repo's
    ``sim::Task<> Drain(...)`` (a false-positive class the header-only
    regex index could not fix), and a file-local Task helper becomes
    must-use even though no header declares it."""
    local_must = set()
    local_other = set()
    for fn in model.functions:
        if _returns_must_use(fn.return_tokens):
            local_must.add(fn.name)
        elif fn.return_tokens:
            local_other.add(fn.name)
    return local_must, local_other


def build(roots):
    """Scan all ``.h`` files under ``roots`` into one SymbolIndex."""
    index = SymbolIndex()
    seen = set()
    for root in roots:
        if os.path.isfile(root):
            paths = [root] if root.endswith(".h") else []
        else:
            paths = []
            for dirpath, _, files in os.walk(root):
                for f in sorted(files):
                    if f.endswith(".h"):
                        paths.append(os.path.join(dirpath, f))
        for path in paths:
            real = os.path.realpath(path)
            if real in seen:
                continue
            seen.add(real)
            _index_one(lexer.lex_file(path), index)
            index.headers_scanned += 1
    return index
