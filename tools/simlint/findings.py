"""Finding type and helpers shared by every simlint pass."""


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def __repr__(self):
        return "Finding(%r, %d, %r)" % (self.path, self.line, self.rule)
