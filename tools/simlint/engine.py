"""Analysis driver: lex → scope → rules, over files and directory trees."""

import os

from . import lexer, scopes, symbols
from .rules import RuleContext, all_rules

SOURCE_SUFFIXES = (".cc", ".h", ".cpp")


def source_files(root):
    out = []
    for dirpath, _, files in os.walk(root):
        for f in sorted(files):
            if f.endswith(SOURCE_SUFFIXES):
                out.append(os.path.join(dirpath, f))
    return out


def expand_targets(paths):
    targets = []
    for p in paths:
        if os.path.isdir(p):
            targets.extend(source_files(p))
        else:
            targets.append(p)
    return targets


class Analyzer:
    """Holds the cross-file symbol index; lints files against it."""

    def __init__(self, index_roots, rule_names=None):
        self.index = symbols.build(index_roots)
        selected = all_rules()
        if rule_names is not None:
            wanted = set(rule_names)
            unknown = wanted - {name for name, _ in selected}
            if unknown:
                raise ValueError("unknown rule(s): %s"
                                 % ", ".join(sorted(unknown)))
            selected = [(n, f) for n, f in selected if n in wanted]
        self.rules = selected

    def rule_names(self):
        return [name for name, _ in self.rules]

    def lint_file(self, path):
        lexed = lexer.lex_file(path)
        model = scopes.build(lexed)
        findings = []
        local_must, local_other = symbols.file_overlay(model)
        ctx = RuleContext(path, lexed, model, self.index, findings,
                          local_must_use=local_must,
                          local_other_returns=local_other)
        for _, rule_fn in self.rules:
            rule_fn(ctx)
        findings.sort(key=lambda f: (f.line, f.rule))
        return findings, lexed

    def lint_paths(self, paths):
        findings = []
        for path in expand_targets(paths):
            file_findings, _ = self.lint_file(path)
            findings.extend(file_findings)
        return findings
