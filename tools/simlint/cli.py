"""Command-line interface.

Usage:
  python3 tools/simlint [--root DIR] [paths...]   # lint src/ (default)
  python3 tools/simlint --self-test               # replay seeded repros
  python3 tools/simlint --list-rules
  python3 tools/simlint --rules missing-deadline,leaked-span src bench

Exit code 0 = clean, 1 = findings, 2 = usage/self-test failure.
Stdlib only: the container has no libclang, so this is a token-stream
pass — conservative by construction (prefers false negatives over
noise), but structurally immune to the string-literal/continuation-line
false positives of the old regex linter.
"""

import argparse
import os
import sys

from . import __version__, selftest
from .engine import Analyzer, expand_targets
from .rules import all_rules


def _default_repo_root():
    # tools/simlint/cli.py -> tools/simlint -> tools -> repo root
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="simlint",
        description="token-stream, cross-file static analyzer for "
                    "coroutine, ordering, and overload-contract "
                    "invariants")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: grandparent of this package)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule against the seeded bug corpus")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true",
                    help="print registered rules and exit")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-finding echo in --self-test")
    ap.add_argument("--version", action="version", version=__version__)
    args = ap.parse_args(argv)

    repo_root = os.path.abspath(args.root or _default_repo_root())

    if args.list_rules:
        for name, fn in all_rules():
            doc = (fn.__doc__ or "").strip().splitlines()
            print("%-30s %s" % (name, doc[0] if doc else ""))
        return 0

    if args.self_test:
        return 0 if selftest.run(repo_root, verbose=not args.quiet) else 2

    rule_names = None
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]

    paths = args.paths or [os.path.join(repo_root, "src")]
    try:
        analyzer = Analyzer([os.path.join(repo_root, "src")], rule_names)
    except ValueError as err:
        print("simlint: %s" % err, file=sys.stderr)
        return 2
    findings = analyzer.lint_paths(paths)
    for f in findings:
        print(f)
    print("simlint: %d file(s), %d finding(s)"
          % (len(expand_targets(paths)), len(findings)))
    return 1 if findings else 0
