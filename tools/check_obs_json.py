#!/usr/bin/env python3
"""Schema validation for the observability JSON artifacts CI uploads.

Two artifact shapes, both produced by src/obs/:

  BENCH_*.json  (obs::WriteBenchJson)
    {"bench": str, "sim_ns": int >= 0, "metrics": [series...]}
    where each series is
      {"name": str, "labels": {str: str}, "kind": "counter",   "value": int>=0}
      {"name": str, "labels": {str: str}, "kind": "gauge",     "value": int}
      {"name": str, "labels": {str: str}, "kind": "histogram",
       "count": int>=0, "mean": num, "min": int, "max": int,
       "p50": int, "p90": int, "p99": int, "p999": int}
    (name, sorted labels) must be unique across the series list — the
    registry guarantees it, and a duplicate means the exporter regressed.

  Chrome trace_event JSON  (obs::Tracer::WriteChromeTrace, --trace)
    {"displayTimeUnit": "ns", "traceEvents": [event...]}
    with each event a complete ("ph": "X") slice carrying name/ts/dur/pid
    and trace ids in args. This is what chrome://tracing and
    ui.perfetto.dev ingest; the check here guards the invariants the
    viewer is silent about (negative durations, missing ids).

Usage:
  tools/check_obs_json.py --bench BENCH_chaos.json [more.json...]
  tools/check_obs_json.py --bench --require rpc.shed,mmio.retries x.json
  tools/check_obs_json.py --trace trace.json
  tools/check_obs_json.py file.json           # sniff the shape per file

`--require` names series that MUST be present in every bench file — the
overload/backpressure counters CI gates on: a refactor that silently
drops the `rpc.shed` series would otherwise pass schema validation while
the soak gate quietly stops measuring anything.

Exit 0 = all files valid, 1 = violations (printed one per line).
Stdlib only; runs on the bare CI runner.
"""

import argparse
import json
import sys

HIST_FIELDS = ("count", "mean", "min", "max", "p50", "p90", "p99", "p999")


def _err(errors, path, where, msg):
    errors.append("%s: %s: %s" % (path, where, msg))


def check_series(path, i, s, seen_keys, errors):
    where = "metrics[%d]" % i
    if not isinstance(s, dict):
        _err(errors, path, where, "series is not an object")
        return
    name = s.get("name")
    if not isinstance(name, str) or not name:
        _err(errors, path, where, "missing/empty 'name'")
        name = "?"
    where = "metrics[%d] (%s)" % (i, name)
    labels = s.get("labels", {})
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()):
        _err(errors, path, where, "'labels' must map str -> str")
        labels = {}
    key = (name, tuple(sorted(labels.items())))
    if key in seen_keys:
        _err(errors, path, where, "duplicate series (name+labels)")
    seen_keys.add(key)

    kind = s.get("kind")
    if kind == "counter":
        v = s.get("value")
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            _err(errors, path, where, "counter 'value' must be int >= 0")
    elif kind == "gauge":
        v = s.get("value")
        if not isinstance(v, int) or isinstance(v, bool):
            _err(errors, path, where, "gauge 'value' must be int")
    elif kind == "histogram":
        for f in HIST_FIELDS:
            v = s.get(f)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                _err(errors, path, where,
                     "histogram missing numeric '%s'" % f)
        c, mn, mx = s.get("count"), s.get("min"), s.get("max")
        if isinstance(c, int) and c < 0:
            _err(errors, path, where, "histogram count < 0")
        if (isinstance(c, int) and c > 0 and isinstance(mn, int)
                and isinstance(mx, int) and mn > mx):
            _err(errors, path, where, "histogram min > max")
        # Percentiles of a log-bucketed histogram are monotone in p.
        ps = [s.get(f) for f in ("p50", "p90", "p99", "p999")]
        if all(isinstance(p, (int, float)) for p in ps) and ps != sorted(ps):
            _err(errors, path, where, "percentiles not monotone: %s" % ps)
    else:
        _err(errors, path, where, "unknown kind %r" % kind)


def check_required(path, doc, required, errors):
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    names = {s.get("name") for s in metrics
             if isinstance(s, dict)} if isinstance(metrics, list) else set()
    for r in required:
        if r not in names:
            _err(errors, path, "require",
                 "required series %r is absent from the snapshot" % r)


def check_bench(path, doc, errors):
    if not isinstance(doc, dict):
        _err(errors, path, "top level", "not a JSON object")
        return
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "top level", "missing/empty 'bench'")
    sim_ns = doc.get("sim_ns")
    if not isinstance(sim_ns, int) or isinstance(sim_ns, bool) or sim_ns < 0:
        _err(errors, path, "top level", "'sim_ns' must be int >= 0")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        _err(errors, path, "top level", "'metrics' must be a list")
        return
    if not metrics:
        _err(errors, path, "top level", "empty 'metrics' — exporter wrote "
             "a snapshot with no series")
    seen = set()
    for i, s in enumerate(metrics):
        check_series(path, i, s, seen, errors)


def check_trace(path, doc, errors):
    if not isinstance(doc, dict):
        _err(errors, path, "top level", "not a JSON object")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        _err(errors, path, "top level", "missing 'traceEvents' list")
        return
    if not events:
        _err(errors, path, "top level", "empty trace")
    for i, e in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(e, dict):
            _err(errors, path, where, "event is not an object")
            continue
        if e.get("ph") != "X":
            _err(errors, path, where, "expected complete event ph='X', "
                 "got %r" % e.get("ph"))
        if not isinstance(e.get("name"), str) or not e.get("name"):
            _err(errors, path, where, "missing span 'name'")
        for f in ("ts", "dur"):
            v = e.get(f)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                _err(errors, path, where, "missing numeric '%s'" % f)
            elif v < 0:
                _err(errors, path, where, "negative '%s': %s" % (f, v))
        if not isinstance(e.get("pid"), int):
            _err(errors, path, where, "missing int 'pid' (simulated host)")
        args = e.get("args", {})
        if not isinstance(args, dict) or not isinstance(
                args.get("trace_id"), int) or args.get("trace_id", 0) < 1:
            _err(errors, path, where, "args.trace_id must be int >= 1")


def sniff(doc):
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace"
    return "bench"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="JSON artifacts to validate")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--bench", action="store_true",
                      help="treat all files as BENCH metric snapshots")
    mode.add_argument("--trace", action="store_true",
                      help="treat all files as Chrome trace_event JSON")
    ap.add_argument("--require", default="",
                    help="comma-separated series names that must be present "
                         "in every bench snapshot")
    args = ap.parse_args()
    required = [r for r in args.require.split(",") if r]
    if required and args.trace:
        ap.error("--require only applies to bench snapshots")

    errors = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            _err(errors, path, "load", str(e))
            continue
        shape = ("bench" if args.bench else
                 "trace" if args.trace else sniff(doc))
        (check_bench if shape == "bench" else check_trace)(path, doc, errors)
        if shape == "bench" and required:
            check_required(path, doc, required, errors)
        if not errors:
            if shape == "bench":
                n = len(doc.get("metrics", []))
                print("%s: OK (bench=%s, %d series)" %
                      (path, doc.get("bench"), n))
            else:
                print("%s: OK (trace, %d events)" %
                      (path, len(doc.get("traceEvents", []))))
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print("check_obs_json: %d violation(s)" % len(errors),
              file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
