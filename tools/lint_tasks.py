#!/usr/bin/env python3
"""Repo-specific static checks for coroutine lifetimes and discarded results.

Two bug classes this codebase has actually paid for:

(a) dangling-frame: a NON-coroutine function that returns a `sim::Task`
    built by calling a coroutine with arguments referencing locals of the
    returning function.  The returned task is lazy; by the time the caller
    awaits it, the forwarding function's frame is gone and every
    reference/span argument dangles.  PR 1 hit this twice (DoorbellSender::
    Ring and the RPC reply path), both found only at runtime under ASan.
    The fix is always the same: make the forwarder itself a coroutine
    (`co_return co_await ...`) so its frame lives until the task completes.
    Forwarding *parameters* is fine — the caller owns those — so only
    locals declared inside the body count.

(b) discarded-result: a bare statement calling a repo function that
    returns `sim::Task`/`Status`/`Result`.  A dropped Task never runs
    (lazy coroutines start suspended); a dropped Status swallows an error.
    `[[nodiscard]]` on those types makes the compiler catch most of this;
    the lint also covers macro-heavy code paths and non-compiled targets
    (e.g. files gated out of the build) that the compiler never sees.

(c) unstoppable-loop: `Spawn(SomethingLoop(...))` with no stop token among
    the arguments.  Detached periodic loops (ScrubLoop, ReportLoop,
    RebalanceLoop, the agent watchdog) are the one coroutine shape that
    outlives its spawner by design; without a StopToken they keep waking
    after Shutdown(), touching freed rack state — exactly the lifetime
    hole the PR 3 lint suite was built around.  Convention: every
    `*Loop` coroutine takes a `sim::StopToken&`, so a spawn whose
    argument list never mentions a stop token is a supervision bug.

(d) leaked-span: an `obs::Span` local bound from StartTrace/StartSpan (or
    the MaybeStart*/StartOpSpan wrappers) with no `.End(...)` call in the
    enclosing body.  Spans are explicit-End by design — the destructor
    deliberately abandons (and counts) un-ended spans instead of guessing
    an end time, so a span that is never End()ed silently vanishes from
    the trace and inflates Tracer::dropped_spans().  Every early-return
    path between StartTrace and End is a leak the type system can't see;
    this rule at least guarantees the happy path ends the span.  Moving or
    returning the span transfers the obligation to the caller.

(e) missing-deadline: `co_await` on an RPC/channel op (`Call`, `Recv`)
    whose argument list carries no deadline-ish token (`deadline`,
    `timeout`, `now() + ...`, ...).  An op with no budget waits forever:
    under overload it queues behind a wedged peer and turns backpressure
    into a hang — exactly the failure mode the deadline-propagation work
    exists to prevent (every hop sheds expired work only if a deadline
    rides the wire).  Test code is exempt: tests legitimately use
    sentinel/infinite waits to pin ordering.

(f) direct-ring-send: code outside src/msg/ calling `RingSender::Send` /
    `SendBatch` directly — via a `.sender().Send(...)` accessor chain or a
    RingSender-typed local/reference.  The ring's raw producer bypasses the
    MPSC submission front (no write-combined batching, no doorbell
    coalescing, no control-priority jump, no staging-bound backpressure),
    so one "harmless" direct send on the hot path silently un-does the
    throughput work.  `msg::Endpoint::Send` is the only sanctioned door;
    src/msg/ itself and test code (which drives the ring on purpose) are
    exempt.

Suppression: append `// lint-tasks: allow(<rule>)` to the offending line.

Usage:
  tools/lint_tasks.py [--root DIR] [paths...]   # lint src/ (default) or paths
  tools/lint_tasks.py --self-test               # must flag the seeded repros

Exit code 0 = clean, 1 = findings, 2 = usage/self-test failure.
Stdlib only: the container has no libclang, so this is a pattern pass —
conservative by construction (prefers false negatives over noise).
"""

import argparse
import os
import re
import sys

TASK_RETURN_RE = re.compile(
    r"(?:^|\n)[ \t]*(?:static[ \t]+|inline[ \t]+|virtual[ \t]+)*"
    r"(?:sim::)?Task<[^;{}]*?>[ \t\n]+"          # return type
    r"(?P<name>[A-Za-z_][\w:]*)[ \t\n]*\("        # function name + params
)

# Statement-initial call whose result is dropped: `Foo(...)` or
# `obj.Foo(...)` / `ptr->Foo(...);` at the start of a statement.
CALL_STMT_RE = re.compile(
    r"^[ \t]*(?:[A-Za-z_]\w*(?:\.|->|::))*(?P<callee>[A-Za-z_]\w*)\(")

# Declarations whose names can be captured by reference/span/pointer in a
# returned call: `Type name;`, `Type name(...)`, `Type name = ...`,
# `Type name{...}`. One declarator per statement covers this codebase.
LOCAL_DECL_RE = re.compile(
    r"^[ \t]*(?:const[ \t]+)?"
    r"(?:auto|std::\w+(?:<[^;=]*>)?|[A-Za-z_][\w:]*(?:<[^;=]*>)?)"
    r"[ \t]+[&*]?(?P<name>[A-Za-z_]\w*)[ \t]*(?:[;={(\[]|$)")

DECL_KEYWORDS = {
    "return", "co_return", "co_await", "co_yield", "if", "else", "for",
    "while", "do", "switch", "case", "break", "continue", "goto", "using",
    "typedef", "delete", "new", "throw", "public", "private", "protected",
}

# Macros that consume a Status/Task/Result expression by design.
CONSUMING_MACROS = {
    "RETURN_IF_ERROR", "CO_RETURN_IF_ERROR", "ASSIGN_OR_RETURN",
    "CXLPOOL_CHECK_OK", "CXLPOOL_CHECK", "EXPECT_TRUE", "EXPECT_FALSE",
    "EXPECT_EQ", "ASSERT_TRUE", "ASSERT_EQ", "EXPECT_OK", "ASSERT_OK",
}


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines
    and an `ALLOW(<rule>)` token for lint suppressions so line numbers and
    brace structure survive."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            m = re.search(r"lint-tasks:\s*allow\((?P<r>[\w-]+)\)", comment)
            out.append("ALLOW(%s)" % m.group("r") if m else "")
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def matching_brace(text, open_idx):
    """Index just past the `}` matching the `{` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def split_statements(body):
    """Yields (offset, statement) pairs for top-level-ish statements; good
    enough for scanning declarations and returns."""
    start = 0
    depth = 0
    for i, c in enumerate(body):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            start = i + 1
        elif c == ";" and depth >= 0:
            yield start, body[start:i + 1]
            start = i + 1


def check_dangling_frame(path, text, findings):
    for m in TASK_RETURN_RE.finditer(text):
        # Find the parameter list's closing paren, then the body brace.
        paren = text.find("(", m.end() - 1)
        depth = 0
        close = -1
        for i in range(paren, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close == -1:
            continue
        # Skip declarations (`;`) — only definitions have bodies.
        brace = None
        for i in range(close + 1, min(close + 120, len(text))):
            if text[i] == "{":
                brace = i
                break
            if text[i] == ";":
                break
        if brace is None:
            continue
        end = matching_brace(text, brace)
        if end == -1:
            continue
        body = text[brace + 1:end - 1]
        if re.search(r"\bco_(?:await|return|yield)\b", body):
            continue  # a real coroutine: its frame outlives the task
        locals_declared = set()
        for off, stmt in split_statements(body):
            first_line = stmt.strip().splitlines()[0] if stmt.strip() else ""
            dm = LOCAL_DECL_RE.match(first_line)
            if dm and dm.group("name") not in DECL_KEYWORDS:
                head = first_line.split(dm.group("name"))[0].strip()
                if head and head.split()[0].rstrip("<") not in DECL_KEYWORDS:
                    locals_declared.add(dm.group("name"))
            rm = re.match(r"[ \t\n]*return\b(?P<expr>[^;]*)", stmt)
            if rm is None:
                continue
            if "ALLOW(dangling-frame)" in stmt:
                continue
            expr = rm.group("expr")
            if "(" not in expr:
                continue  # returning a variable/default, not building a task
            used = [v for v in locals_declared
                    if re.search(r"\b%s\b" % re.escape(v), expr)]
            if used:
                line = line_of(text, brace + 1 + off)
                findings.append(Finding(
                    path, line, "dangling-frame",
                    "non-coroutine returns a Task built from local(s) %s; "
                    "the frame dies before the task runs — make this a "
                    "coroutine (co_return co_await ...)"
                    % ", ".join(sorted(used))))


def collect_must_use_functions(roots):
    """Names of repo functions returning Task/Status/Result, from headers.

    A name is must-use only if EVERY function of that name in the scanned
    headers returns a must-use type: names shared with a void/other
    overload anywhere (`Free`, `Release`, `Read`, ...) are ambiguous at a
    call site without type resolution, so they are dropped entirely —
    false negatives over noise."""
    sig = re.compile(
        r"(?:^|\n)[ \t]*(?:static[ \t]+|inline[ \t]+|virtual[ \t]+|"
        r"constexpr[ \t]+|explicit[ \t]+)*"
        r"(?P<ret>[A-Za-z_][\w:]*(?:<[^;{}()]*?>)?)[ \t&*\n]+"
        r"(?P<name>[A-Za-z_]\w*)[ \t\n]*\(")
    must_use_ret = re.compile(r"^(?:sim::)?(?:Task<|Status$|Result<)")
    must, other = set(), set()
    for root in roots:
        for dirpath, _, files in os.walk(root):
            for f in files:
                if not f.endswith(".h"):
                    continue
                text = strip_comments_and_strings(
                    open(os.path.join(dirpath, f), encoding="utf-8").read())
                for m in sig.finditer(text):
                    ret, name = m.group("ret"), m.group("name")
                    if ret in DECL_KEYWORDS or name in DECL_KEYWORDS:
                        continue
                    (must if must_use_ret.match(ret) else other).add(name)
    return must - other - {"Status", "Result", "Task", "status", "ok"}


def check_discarded_result(path, text, must_use, findings):
    prev = ""
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        # A continuation of the previous statement (assignment or argument
        # list split across lines) is consumed by its first line.
        if prev.endswith(("=", "(", ",", "&&", "||", "return")):
            prev = stripped or prev
            continue
        prev = stripped or prev
        if "ALLOW(discarded-result)" in line:
            continue
        m = CALL_STMT_RE.match(line)
        if m is None or not stripped.endswith(";"):
            continue
        callee = m.group("callee")
        if callee not in must_use or callee in CONSUMING_MACROS:
            continue
        # A continuation of a multi-line call (e.g. an argument inside
        # ASSIGN_OR_RETURN) closes more parens than it opens — skip it.
        if line.count(")") > line.count("("):
            continue
        # Assigned, awaited, returned, voided, or compared → consumed.
        if re.search(r"(=|\breturn\b|\bco_return\b|\bco_await\b|\(void\)|"
                     r"==|!=|&&|\|\|)", line.split(callee)[0] + " "):
            continue
        # A call spanning multiple statements on one line is out of scope.
        findings.append(Finding(
            path, lineno, "discarded-result",
            "result of %s() (Task/Status/Result) is discarded; assign, "
            "await, check, or cast to (void)" % callee))


# `Spawn(` or `sim::Spawn(` — the detachment point for background tasks.
SPAWN_RE = re.compile(r"\b(?:sim::)?Spawn[ \t\n]*\(")

# A stop token among the spawned call's arguments, by naming convention:
# `stop`, `stop_`, `stop_token()`, `rack.stop_token()`, `StopToken`, ...
STOP_ARG_RE = re.compile(r"\bstop\w*\b|\bStopToken\b", re.IGNORECASE)


def check_unstoppable_loop(path, text, findings):
    for m in SPAWN_RE.finditer(text):
        open_idx = text.find("(", m.start())
        depth = 0
        close = -1
        for i in range(open_idx, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close == -1:
            continue
        args = text[open_idx + 1:close]
        # Only the convention-named periodic loops: anything else spawned
        # detached (one-shot repair, migration) legitimately runs to
        # completion without supervision.
        call = re.search(r"\b[A-Za-z_]\w*Loop[ \t\n]*\(", args)
        if call is None:
            continue
        if STOP_ARG_RE.search(args):
            continue
        stmt_end = text.find("\n", close)
        stmt_end = len(text) if stmt_end == -1 else stmt_end
        if "ALLOW(unstoppable-loop)" in text[m.start():stmt_end]:
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "unstoppable-loop",
            "detached *Loop spawned without a stop token; it outlives "
            "Shutdown() and wakes against freed state — thread a "
            "sim::StopToken& through it"))


# A Span local bound from a span-starting call: `obs::Span op = ...Start*(`.
# Matches the factory methods (StartTrace/StartSpan), the null-safe wrappers
# (MaybeStartTrace/MaybeStartSpan), and repo-local helpers by the naming
# convention that span factories contain "Start" (e.g. StartOpSpan).
SPAN_DECL_RE = re.compile(
    r"(?:obs::)?Span[ \t\n]+(?P<name>[A-Za-z_]\w*)[ \t\n]*=[ \t\n]*"
    r"(?:[A-Za-z_][\w:]*(?:\.|->|::))*(?:Maybe)?Start\w*[ \t\n]*\(")


def check_leaked_span(path, text, findings):
    for m in SPAN_DECL_RE.finditer(text):
        name = m.group("name")
        stmt_end = text.find("\n", m.end())
        stmt_end = len(text) if stmt_end == -1 else stmt_end
        if "ALLOW(leaked-span)" in text[m.start():stmt_end]:
            continue
        # Scope approximation: from the declaration to the next
        # column-0 `}` — the end of the enclosing free function in this
        # codebase's style (a superset of the true scope for in-class
        # bodies, which only risks false negatives, never noise).
        close = text.find("\n}", m.end())
        body = text[m.end():close if close != -1 else len(text)]
        if re.search(r"\b%s[ \t\n]*\.[ \t\n]*End[ \t\n]*\(" % re.escape(name),
                     body):
            continue
        # Ownership handed off: the callee/caller now owns the End.
        if re.search(r"std::move[ \t\n]*\([ \t\n]*%s[ \t\n]*\)|"
                     r"\b(?:co_)?return[ \t\n]+%s[ \t\n]*;"
                     % (re.escape(name), re.escape(name)), body):
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "leaked-span",
            "span '%s' is started but never .End()ed in this scope; the "
            "destructor abandons it (dropped from the trace, counted in "
            "Tracer::dropped_spans()) — End() it on every exit path or "
            "std::move it to the new owner" % name))


# An awaited RPC/channel op: `co_await <receiver-chain>Call(` / `Recv(`.
# These are the two op shapes that cross a queue and therefore must carry
# a budget; everything else awaited (Delay, WaitUntil, Acquire) either IS
# the budget or holds no queue slot.
DEADLINE_CALL_RE = re.compile(
    r"\bco_await\b[ \t\n]*(?:[A-Za-z_]\w*(?:\.|->|::))*"
    r"(?P<op>Call|Recv)[ \t\n]*\(")

# Tokens that mark an argument list as budgeted: a deadline/timeout
# variable by name, an absolute deadline computed from now(), or the
# explicit inherit sentinel.
DEADLINE_ARG_RE = re.compile(
    r"deadline|timeout|expiry|until|budget|\bnow[ \t\n]*\(",
    re.IGNORECASE)


def is_test_path(path):
    norm = path.replace(os.sep, "/")
    return ("/tests/" in norm or "/test/" in norm
            or re.search(r"_test\.(?:cc|cpp|h)$", norm) is not None)


def check_missing_deadline(path, text, findings):
    if is_test_path(path):
        return
    for m in DEADLINE_CALL_RE.finditer(text):
        open_idx = text.find("(", m.end() - 1)
        depth = 0
        close = -1
        for i in range(open_idx, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close == -1:
            continue
        args = text[open_idx + 1:close]
        if DEADLINE_ARG_RE.search(args):
            continue
        stmt_end = text.find("\n", close)
        stmt_end = len(text) if stmt_end == -1 else stmt_end
        if "ALLOW(missing-deadline)" in text[m.start():stmt_end]:
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "missing-deadline",
            "co_await %s() with no deadline/timeout argument waits forever "
            "under overload; pass an absolute deadline (loop.now() + "
            "budget) so every hop can shed the op once it expires"
            % m.group("op")))


# A RingSender bound to a name: `RingSender s(...)`, `RingSender& raw = ...`,
# `msg::RingSender& raw = ...`. The declaration itself is fine — only a
# .Send()/.SendBatch() through it (outside src/msg/ and tests) is flagged.
RING_SENDER_DECL_RE = re.compile(
    r"\b(?:msg::)?RingSender[ \t\n]*&?[ \t\n]+(?P<name>[A-Za-z_]\w*)")

# The accessor-chain bypass: `...sender().Send(` / `...sender().SendBatch(`.
SENDER_CHAIN_RE = re.compile(
    r"\bsender[ \t\n]*\([ \t\n]*\)[ \t\n]*\.[ \t\n]*"
    r"Send(?:Batch)?[ \t\n]*\(")


def check_direct_ring_send(path, text, findings):
    norm = path.replace(os.sep, "/")
    if "/src/msg/" in norm or is_test_path(norm):
        return

    def flag(idx):
        stmt_end = text.find("\n", idx)
        stmt_end = len(text) if stmt_end == -1 else stmt_end
        line_start = text.rfind("\n", 0, idx) + 1
        if "ALLOW(direct-ring-send)" in text[line_start:stmt_end]:
            return
        findings.append(Finding(
            path, line_of(text, idx), "direct-ring-send",
            "direct RingSender::Send bypasses the MPSC submission front "
            "(batching, doorbell coalescing, priority, backpressure) — "
            "publish through msg::Endpoint::Send instead"))

    for m in SENDER_CHAIN_RE.finditer(text):
        flag(m.start())
    names = {m.group("name") for m in RING_SENDER_DECL_RE.finditer(text)}
    for name in names - DECL_KEYWORDS:
        for m in re.finditer(
                r"\b%s[ \t\n]*\.[ \t\n]*Send(?:Batch)?[ \t\n]*\("
                % re.escape(name), text):
            flag(m.start())


def lint_paths(paths, must_use_roots):
    findings = []
    must_use = collect_must_use_functions(must_use_roots)
    for path in paths:
        raw = open(path, encoding="utf-8").read()
        text = strip_comments_and_strings(raw)
        check_dangling_frame(path, text, findings)
        check_discarded_result(path, text, must_use, findings)
        check_unstoppable_loop(path, text, findings)
        check_leaked_span(path, text, findings)
        check_missing_deadline(path, text, findings)
        check_direct_ring_send(path, text, findings)
    return findings


def source_files(root):
    out = []
    for dirpath, _, files in os.walk(root):
        for f in sorted(files):
            if f.endswith((".cc", ".h", ".cpp")):
                out.append(os.path.join(dirpath, f))
    return out


def self_test(repo_root):
    """The seeded repros MUST be flagged; the clean exemplar MUST NOT be."""
    selftest_dir = os.path.join(repo_root, "tools", "lint_selftest")
    bad = os.path.join(selftest_dir, "dangling_repro.cc")
    leaky = os.path.join(selftest_dir, "leaked_span_repro.cc")
    undeadlined = os.path.join(selftest_dir, "missing_deadline_repro.cc")
    ring_bypass = os.path.join(selftest_dir, "direct_ring_send_repro.cc")
    good = os.path.join(selftest_dir, "clean_exemplar.cc")
    roots = [os.path.join(repo_root, "src"), selftest_dir]

    flagged = lint_paths([bad, leaky, undeadlined, ring_bypass], roots)
    rules = sorted({f.rule for f in flagged})
    ok = True
    if "dangling-frame" not in rules:
        print("SELF-TEST FAIL: seeded PR-1 dangling-span repro not flagged")
        ok = False
    if "discarded-result" not in rules:
        print("SELF-TEST FAIL: seeded discarded-result repro not flagged")
        ok = False
    if "unstoppable-loop" not in rules:
        print("SELF-TEST FAIL: seeded unsupervised-loop repro not flagged")
        ok = False
    if "leaked-span" not in rules:
        print("SELF-TEST FAIL: seeded leaked-span repro not flagged")
        ok = False
    if "missing-deadline" not in rules:
        print("SELF-TEST FAIL: seeded missing-deadline repro not flagged")
        ok = False
    undeadlined_hits = [f for f in flagged
                        if f.rule == "missing-deadline"
                        and f.path == undeadlined]
    if len(undeadlined_hits) != 2:
        print("SELF-TEST FAIL: expected 2 missing-deadline findings in the "
              "repro (Call and Recv), got %d" % len(undeadlined_hits))
        ok = False
    bypass_hits = [f for f in flagged
                   if f.rule == "direct-ring-send" and f.path == ring_bypass]
    if len(bypass_hits) != 2:
        print("SELF-TEST FAIL: expected 2 direct-ring-send findings in the "
              "repro (accessor chain and typed reference), got %d"
              % len(bypass_hits))
        ok = False
    for f in flagged:
        print("  (expected) %s" % f)

    clean = lint_paths([good], roots)
    for f in clean:
        print("SELF-TEST FAIL: false positive on clean exemplar: %s" % f)
        ok = False
    print("self-test: %s" % ("PASS" if ok else "FAIL"))
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the lint flags the seeded bug repros")
    args = ap.parse_args()

    repo_root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return 0 if self_test(repo_root) else 2

    targets = []
    for p in (args.paths or [os.path.join(repo_root, "src")]):
        targets.extend(source_files(p) if os.path.isdir(p) else [p])
    findings = lint_paths(targets, [os.path.join(repo_root, "src")])
    for f in findings:
        print(f)
    print("lint_tasks: %d file(s), %d finding(s)" %
          (len(targets), len(findings)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
