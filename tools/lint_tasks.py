#!/usr/bin/env python3
"""Compatibility shim: lint_tasks.py is now simlint.

The line-regex engine that used to live here (six rules, one regex per
rule, per-line matching with hand-rolled workarounds for continuation
lines and string literals) has been replaced by ``tools/simlint`` — a
token-stream, cross-file analyzer with a real C++ lexer, a brace/scope
tracker, and a repo-wide symbol index. All six original rules were
ported (same names, same suppression comments — ``// lint-tasks:
allow(<rule>)`` is still honored) and four new coroutine/contract rules
were added. See tools/simlint/ and the "Static analysis" section of
DESIGN.md.

This shim keeps old invocations working:

    python3 tools/lint_tasks.py [--self-test] [paths...]

is exactly

    python3 tools/simlint [--self-test] [paths...]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from simlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.stderr.write(
        "note: lint_tasks.py is a shim; prefer `python3 tools/simlint`\n")
    sys.exit(main(sys.argv[1:]))
