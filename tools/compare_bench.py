#!/usr/bin/env python3
"""Tolerance diff between a committed BENCH_*.json snapshot and a fresh run.

The simulator is deterministic per seed, but benchmarks evolve: phases get
added, constants get re-tuned, scheduling order shifts when a subsystem
grows a hop. A byte-exact diff would make every harmless change a red CI
run and train everyone to ignore the gate. This compares at the level the
numbers actually mean:

  counters    |fresh - snap| <= tol * max(|snap|, floor)
  gauges      same rule
  histograms  same rule applied to count, p50, p99 (mean/min/max/p90/p999
              are too jittery to gate on and ride along informationally)

Series have a DIRECTION. Latency and count series are two-sided: moving
either way beyond tolerance is drift worth a look. Throughput-style series
(name containing "per_sec", "goodput", or "throughput") are
higher-is-better: only a DROP beyond tolerance flags; a gain is what the
optimization work is for and is reported informationally, never as drift.
Without this, every perf win would light up the gate it was meant to feed.

A series present in the snapshot but MISSING from the fresh run is always
a regression — that is how a refactor silently stops measuring something.
A series only in the fresh run is reported but tolerated (new phases and
new counters land before their snapshot is refreshed).

This is a SOFT gate in CI (continue-on-error): its job is to put a diff in
front of a reviewer, not to block merges on a re-tuned constant. Refresh
a snapshot deliberately by re-running the bench and committing the JSON.

Usage:
  tools/compare_bench.py SNAPSHOT.json FRESH.json [--tol 0.25] [--floor 16]

Exit 0 = within tolerance, 1 = drift/missing series, 2 = usage error.
Stdlib only; runs on the bare CI runner.
"""

import argparse
import json
import sys

GATED_HIST_FIELDS = ("count", "p50", "p99")

# Substrings marking a series as higher-is-better. Matching is on the
# series NAME only (not labels): a histogram of latencies stays two-sided
# even when its labels mention a throughput phase.
HIGHER_IS_BETTER_MARKERS = ("per_sec", "goodput", "throughput")


def higher_is_better(name):
    return any(m in name for m in HIGHER_IS_BETTER_MARKERS)


def series_key(s):
    return (s.get("name", "?"),
            tuple(sorted((s.get("labels") or {}).items())))


def load_series(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for s in doc.get("metrics", []):
        if isinstance(s, dict):
            out[series_key(s)] = s
    return doc.get("bench", "?"), out


def fmt_key(key):
    name, labels = key
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in labels))


def within(snap_v, fresh_v, tol, floor):
    """|fresh - snap| <= tol * max(|snap|, floor).

    The additive floor keeps tiny counters honest: a snapshot value of 2
    must not fail because the fresh run saw 3 — at that magnitude the
    difference is scheduling noise, not drift."""
    return abs(fresh_v - snap_v) <= tol * max(abs(snap_v), floor)


def compare(snap, fresh, tol, floor):
    drifts, missing, extra, gains = [], [], [], []
    for key, s in sorted(snap.items()):
        f = fresh.get(key)
        if f is None:
            missing.append(fmt_key(key))
            continue
        kind = s.get("kind")
        if f.get("kind") != kind:
            drifts.append("%s: kind changed %r -> %r"
                          % (fmt_key(key), kind, f.get("kind")))
            continue
        if kind in ("counter", "gauge"):
            fields = ("value",)
        elif kind == "histogram":
            fields = GATED_HIST_FIELDS
        else:
            continue
        one_sided = higher_is_better(key[0])
        for field in fields:
            sv, fv = s.get(field), f.get(field)
            if not isinstance(sv, (int, float)) or not isinstance(
                    fv, (int, float)):
                continue
            if within(sv, fv, tol, floor):
                continue
            if one_sided and fv > sv:
                gains.append("%s: %s improved %s -> %s"
                             % (fmt_key(key), field, sv, fv))
                continue
            what = "dropped" if one_sided else "drifted"
            drifts.append("%s: %s %s %s -> %s (> %.0f%% of %s)"
                          % (fmt_key(key), field, what, sv, fv, tol * 100,
                             max(abs(sv), floor)))
    for key in sorted(fresh.keys() - snap.keys()):
        extra.append(fmt_key(key))
    return drifts, missing, extra, gains


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("snapshot", help="committed BENCH_*.json baseline")
    ap.add_argument("fresh", help="JSON from the run under test")
    ap.add_argument("--tol", type=float, default=0.25,
                    help="relative tolerance (default 0.25)")
    ap.add_argument("--floor", type=float, default=16,
                    help="additive floor for small values (default 16)")
    args = ap.parse_args()

    try:
        snap_name, snap = load_series(args.snapshot)
        fresh_name, fresh = load_series(args.fresh)
    except (OSError, ValueError) as e:
        print("compare_bench: %s" % e, file=sys.stderr)
        return 2
    if snap_name != fresh_name:
        print("compare_bench: bench name mismatch: snapshot=%r fresh=%r"
              % (snap_name, fresh_name), file=sys.stderr)
        return 2

    drifts, missing, extra, gains = compare(snap, fresh, args.tol, args.floor)
    for m in missing:
        print("MISSING  %s  (in snapshot, absent from fresh run)" % m)
    for d in drifts:
        print("DRIFT    %s" % d)
    for g in gains:
        print("GAIN     %s  (higher-is-better series — not drift)" % g)
    for e in extra:
        print("NEW      %s  (not in snapshot — refresh it when this lands)"
              % e)
    print("compare_bench: %s: %d series, %d drift(s), %d missing, "
          "%d gain(s), %d new"
          % (snap_name, len(snap), len(drifts), len(missing), len(gains),
             len(extra)))
    return 1 if drifts or missing else 0


if __name__ == "__main__":
    sys.exit(main())
