// MemoryBackend: the actual bytes behind a memory region (a host's local
// DRAM or a CXL multi-headed device's media). Purely functional storage —
// all timing lives in the adapters and links that route accesses here.
#ifndef SRC_MEM_BACKEND_H_
#define SRC_MEM_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cxlpool::mem {

class MemoryBackend {
 public:
  // `name` is for diagnostics ("host0-dram", "mhd2-media").
  MemoryBackend(std::string name, uint64_t size_bytes);

  uint64_t size() const { return data_.size(); }
  const std::string& name() const { return name_; }

  // Copies bytes out of / into the backing store. Offsets are
  // backend-relative; callers must stay in bounds (CHECKed).
  void Read(uint64_t offset, std::span<std::byte> out) const;
  void Write(uint64_t offset, std::span<const std::byte> in);

  // Direct pointer for tests and zero-copy internals.
  std::byte* data() { return data_.data(); }
  const std::byte* data() const { return data_.data(); }

 private:
  std::string name_;
  std::vector<std::byte> data_;
};

}  // namespace cxlpool::mem

#endif  // SRC_MEM_BACKEND_H_
