// MemoryBackend: the actual bytes behind a memory region (a host's local
// DRAM or a CXL multi-headed device's media). Purely functional storage —
// all timing lives in the adapters and links that route accesses here.
//
// RAS model: media can carry per-64B-line *poison* (uncorrectable ECC).
// Poison is injected by the fault model (CxlPod::PoisonLine) and cleared
// when a write fully covers a poisoned line — matching real CXL.mem
// semantics where a full-line store lays down fresh ECC. Reads do not
// consult poison themselves (this layer is untimed storage); the timed
// access paths (HostAdapter loads, DMA) query RangePoisoned and surface
// kDataLoss to their callers.
#ifndef SRC_MEM_BACKEND_H_
#define SRC_MEM_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

namespace cxlpool::mem {

class MemoryBackend {
 public:
  // `name` is for diagnostics ("host0-dram", "mhd2-media").
  MemoryBackend(std::string name, uint64_t size_bytes);

  uint64_t size() const { return data_.size(); }
  const std::string& name() const { return name_; }

  // Copies bytes out of / into the backing store. Offsets are
  // backend-relative; callers must stay in bounds (CHECKed).
  void Read(uint64_t offset, std::span<std::byte> out) const;
  void Write(uint64_t offset, std::span<const std::byte> in);

  // --- Poison (per 64B line, offsets are backend-relative) ---

  // Marks the line containing `offset` poisoned. Idempotent.
  void PoisonLine(uint64_t offset);
  // Clears poison on the line containing `offset` (scrub/repair path).
  void ClearPoison(uint64_t offset);
  // True if the line containing `offset` is poisoned.
  bool LinePoisoned(uint64_t offset) const;
  // True if any line overlapping [offset, offset+len) is poisoned.
  bool RangePoisoned(uint64_t offset, uint64_t len) const;
  size_t poisoned_line_count() const { return poisoned_lines_.size(); }

  // Direct pointer for tests and zero-copy internals.
  std::byte* data() { return data_.data(); }
  const std::byte* data() const { return data_.data(); }

 private:
  std::string name_;
  std::vector<std::byte> data_;
  // 64B-line-aligned offsets of poisoned lines. Empty in the common case,
  // so the healthy-path overhead is one empty() check per access.
  std::unordered_set<uint64_t> poisoned_lines_;
};

}  // namespace cxlpool::mem

#endif  // SRC_MEM_BACKEND_H_
