#include "src/mem/address_map.h"

#include <string>

#include "src/common/check.h"

namespace cxlpool::mem {

Status AddressMap::Register(const Region& region) {
  if (region.size == 0) {
    return InvalidArgument("empty region");
  }
  if (region.backend == nullptr) {
    return InvalidArgument("region has no backend");
  }
  if (region.backend_offset + region.size > region.backend->size()) {
    return OutOfRange("region exceeds backend capacity");
  }
  // Overlap check against neighbors.
  auto next = regions_.lower_bound(region.base);
  if (next != regions_.end() && next->second.base < region.base + region.size) {
    return AlreadyExists("region overlaps existing region at base " +
                         std::to_string(next->second.base));
  }
  if (next != regions_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.base + prev->second.size > region.base) {
      return AlreadyExists("region overlaps existing region at base " +
                           std::to_string(prev->second.base));
    }
  }
  regions_.emplace(region.base, region);
  return OkStatus();
}

const Region* AddressMap::Lookup(uint64_t addr) const {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  const Region& r = it->second;
  if (addr < r.base + r.size) {
    return &r;
  }
  return nullptr;
}

Result<const Region*> AddressMap::Resolve(uint64_t addr, uint64_t len) const {
  const Region* r = Lookup(addr);
  if (r == nullptr) {
    return Status(StatusCode::kNotFound,
                  "address " + std::to_string(addr) + " is unmapped");
  }
  if (!r->Contains(addr, len)) {
    return Status(StatusCode::kOutOfRange, "range crosses region boundary at " +
                                               std::to_string(r->base + r->size));
  }
  return r;
}

void AddressMap::ReadBytes(uint64_t addr, std::span<std::byte> out) const {
  auto r = Resolve(addr, out.size());
  CXLPOOL_CHECK_OK(r.status());
  const Region* region = r.value();
  region->backend->Read(region->backend_offset + (addr - region->base), out);
}

void AddressMap::WriteBytes(uint64_t addr, std::span<const std::byte> in) {
  auto r = Resolve(addr, in.size());
  CXLPOOL_CHECK_OK(r.status());
  const Region* region = r.value();
  region->backend->Write(region->backend_offset + (addr - region->base), in);
}

Status AddressMap::PoisonLine(uint64_t addr) {
  auto r = Resolve(addr, 1);
  RETURN_IF_ERROR(r.status());
  const Region* region = r.value();
  region->backend->PoisonLine(region->backend_offset + (addr - region->base));
  return OkStatus();
}

Status AddressMap::ClearPoison(uint64_t addr) {
  auto r = Resolve(addr, 1);
  RETURN_IF_ERROR(r.status());
  const Region* region = r.value();
  region->backend->ClearPoison(region->backend_offset + (addr - region->base));
  return OkStatus();
}

bool AddressMap::RangePoisoned(uint64_t addr, uint64_t len) const {
  const Region* region = Lookup(addr);
  if (region == nullptr || !region->Contains(addr, len)) {
    return false;
  }
  return region->backend->RangePoisoned(
      region->backend_offset + (addr - region->base), len);
}

Status AddressMap::CheckPoison(uint64_t addr, uint64_t len) const {
  const Region* region = Lookup(addr);
  if (region == nullptr || !region->Contains(addr, len)) {
    return OkStatus();
  }
  uint64_t off = region->backend_offset + (addr - region->base);
  if (region->backend->RangePoisoned(off, len)) {
    return DataLoss("poisoned line in backend '" + region->backend->name() +
                    "' at address " + std::to_string(addr));
  }
  return OkStatus();
}

}  // namespace cxlpool::mem
