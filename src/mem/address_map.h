// The global simulated physical address space. Hosts, DMA engines, and the
// CXL fabric all resolve addresses through one AddressMap, which is what
// lets a PCIe device DMA into CXL pool memory with no device-model changes
// (the paper's "devices can directly use CXL memory as I/O buffers").
#ifndef SRC_MEM_ADDRESS_MAP_H_
#define SRC_MEM_ADDRESS_MAP_H_

#include <cstdint>
#include <map>
#include <span>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/mem/backend.h"

namespace cxlpool::mem {

enum class MemoryKind : uint8_t {
  kLocalDram,  // coherent, host-local DDR5
  kCxlPool,    // CXL pool memory — NOT cache-coherent across hosts
};

struct Region {
  uint64_t base = 0;
  uint64_t size = 0;
  MemoryKind kind = MemoryKind::kLocalDram;
  // For kLocalDram: the host whose DRAM this is. Device DMA to another
  // host's DRAM is rejected (that is exactly what PCIe pooling cannot do
  // without a switch — and what CXL pool memory provides instead).
  HostId dram_host;
  // For kCxlPool: the multi-headed device backing this range.
  MhdId mhd;
  MemoryBackend* backend = nullptr;
  uint64_t backend_offset = 0;

  bool Contains(uint64_t addr, uint64_t len) const {
    return addr >= base && addr + len <= base + size;
  }
};

class AddressMap {
 public:
  AddressMap() = default;
  AddressMap(const AddressMap&) = delete;
  AddressMap& operator=(const AddressMap&) = delete;

  // Registers a region. Fails on overlap or missing backend.
  Status Register(const Region& region);

  // Region containing `addr`, or nullptr if unmapped.
  const Region* Lookup(uint64_t addr) const;

  // Region containing the whole byte range, or error. Ranges spanning two
  // regions are rejected — allocators never produce them.
  Result<const Region*> Resolve(uint64_t addr, uint64_t len) const;

  // Functional (untimed) access used by DMA engines and tests once timing
  // has been charged elsewhere. CHECK-fails on unmapped ranges.
  void ReadBytes(uint64_t addr, std::span<std::byte> out) const;
  void WriteBytes(uint64_t addr, std::span<const std::byte> in);

  // --- Poison plumbing (fault injection / RAS) ---
  // Marks / clears / queries poison on the media line backing `addr`.
  // Status-returning so injection into an unmapped address is reported
  // rather than CHECK-fatal.
  Status PoisonLine(uint64_t addr);
  Status ClearPoison(uint64_t addr);
  // True if any media line backing [addr, addr+len) is poisoned. Unmapped
  // ranges are not poisoned.
  bool RangePoisoned(uint64_t addr, uint64_t len) const;
  // OkStatus, or kDataLoss naming the poisoned backend if the range touches
  // a poisoned line. The one-liner the timed access paths call.
  Status CheckPoison(uint64_t addr, uint64_t len) const;

  size_t region_count() const { return regions_.size(); }

 private:
  std::map<uint64_t, Region> regions_;  // keyed by base
};

}  // namespace cxlpool::mem

#endif  // SRC_MEM_ADDRESS_MAP_H_
