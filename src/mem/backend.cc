#include "src/mem/backend.h"

#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/units.h"

namespace cxlpool::mem {

MemoryBackend::MemoryBackend(std::string name, uint64_t size_bytes)
    : name_(std::move(name)), data_(size_bytes) {}

void MemoryBackend::Read(uint64_t offset, std::span<std::byte> out) const {
  CXLPOOL_CHECK_MSG(offset + out.size() <= data_.size(),
                    "backend '%s': read of %zu bytes at offset %llu exceeds "
                    "backend size %zu",
                    name_.c_str(), out.size(),
                    static_cast<unsigned long long>(offset), data_.size());
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

void MemoryBackend::Write(uint64_t offset, std::span<const std::byte> in) {
  CXLPOOL_CHECK_MSG(offset + in.size() <= data_.size(),
                    "backend '%s': write of %zu bytes at offset %llu exceeds "
                    "backend size %zu",
                    name_.c_str(), in.size(),
                    static_cast<unsigned long long>(offset), data_.size());
  std::memcpy(data_.data() + offset, in.data(), in.size());
  if (!poisoned_lines_.empty()) {
    // A write that fully covers a poisoned line lays down fresh ECC and
    // clears the poison; a partial write would have to read-modify-write
    // the bad half, so the line stays poisoned.
    uint64_t first = CachelineFloor(offset);
    for (uint64_t line = first; line < offset + in.size();
         line += kCachelineSize) {
      if (line >= offset && line + kCachelineSize <= offset + in.size()) {
        poisoned_lines_.erase(line);
      }
    }
  }
}

void MemoryBackend::PoisonLine(uint64_t offset) {
  CXLPOOL_CHECK_MSG(offset < data_.size(),
                    "backend '%s': poison at offset %llu exceeds size %zu",
                    name_.c_str(), static_cast<unsigned long long>(offset),
                    data_.size());
  poisoned_lines_.insert(CachelineFloor(offset));
}

void MemoryBackend::ClearPoison(uint64_t offset) {
  poisoned_lines_.erase(CachelineFloor(offset));
}

bool MemoryBackend::LinePoisoned(uint64_t offset) const {
  if (poisoned_lines_.empty()) {
    return false;
  }
  return poisoned_lines_.contains(CachelineFloor(offset));
}

bool MemoryBackend::RangePoisoned(uint64_t offset, uint64_t len) const {
  if (poisoned_lines_.empty() || len == 0) {
    return false;
  }
  for (uint64_t line = CachelineFloor(offset); line < offset + len;
       line += kCachelineSize) {
    if (poisoned_lines_.contains(line)) {
      return true;
    }
  }
  return false;
}

}  // namespace cxlpool::mem
