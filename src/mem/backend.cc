#include "src/mem/backend.h"

#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace cxlpool::mem {

MemoryBackend::MemoryBackend(std::string name, uint64_t size_bytes)
    : name_(std::move(name)), data_(size_bytes) {}

void MemoryBackend::Read(uint64_t offset, std::span<std::byte> out) const {
  CXLPOOL_CHECK(offset + out.size() <= data_.size());
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

void MemoryBackend::Write(uint64_t offset, std::span<const std::byte> in) {
  CXLPOOL_CHECK(offset + in.size() <= data_.size());
  std::memcpy(data_.data() + offset, in.data(), in.size());
}

}  // namespace cxlpool::mem
