// Per-host write-back cache model for CXL pool memory.
//
// CXL memory pool devices shipping today are not cache-coherent across
// hosts (paper §3): each host's CPU caches lines of pool memory privately,
// and nothing invalidates them when another host (or a device DMA) writes
// the same line in the pool. This class models exactly that hazard: cached
// lines hold real byte copies that can go stale, dirty lines are invisible
// to other hosts until written back, and the software-coherence primitives
// (non-temporal store, flush, invalidate) are the only remedies.
#ifndef SRC_MEM_CACHE_H_
#define SRC_MEM_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "src/common/units.h"

namespace cxlpool::mem {

class WriteBackCache {
 public:
  struct Line {
    std::array<std::byte, kCachelineSize> data;
    bool dirty = false;
  };

  struct EvictedLine {
    uint64_t line_addr = 0;
    bool dirty = false;
    std::array<std::byte, kCachelineSize> data;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;   // dirty evictions + flush writebacks
    uint64_t invalidations = 0;
  };

  // capacity_lines == 0 means "no caching" (every access misses); useful
  // for modeling uncached mappings.
  explicit WriteBackCache(size_t capacity_lines);

  // Returns the cached line (bumping LRU) or nullptr on miss. `line_addr`
  // must be 64-byte aligned. The returned pointer is valid until the next
  // mutating call.
  Line* Find(uint64_t line_addr);
  const Line* Peek(uint64_t line_addr) const;  // no LRU bump, no stats

  // Installs a line copy; returns the evicted victim when the set is full.
  // Installing over an existing line replaces its content.
  std::optional<EvictedLine> Install(uint64_t line_addr,
                                     const std::byte* data64, bool dirty);

  // Removes a line, returning its content so callers can write back dirty
  // data. No-op (nullopt) if absent.
  std::optional<EvictedLine> Remove(uint64_t line_addr);

  // Drops everything; dirty lines are returned via repeated Remove by the
  // caller if it cares — this is the "power off" path used in failover
  // tests, so it intentionally loses dirty data.
  void DropAll();

  size_t size() const { return lines_.size(); }
  size_t capacity() const { return capacity_lines_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    Line line;
    std::list<uint64_t>::iterator lru_it;
  };

  size_t capacity_lines_;
  std::unordered_map<uint64_t, Entry> lines_;
  std::list<uint64_t> lru_;  // front = most recent
  Stats stats_;
};

}  // namespace cxlpool::mem

#endif  // SRC_MEM_CACHE_H_
