#include "src/mem/cache.h"

#include <cstring>

#include "src/common/check.h"

namespace cxlpool::mem {

WriteBackCache::WriteBackCache(size_t capacity_lines)
    : capacity_lines_(capacity_lines) {}

WriteBackCache::Line* WriteBackCache::Find(uint64_t line_addr) {
  CXLPOOL_DCHECK(line_addr % kCachelineSize == 0);
  auto it = lines_.find(line_addr);
  if (it == lines_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.line;
}

const WriteBackCache::Line* WriteBackCache::Peek(uint64_t line_addr) const {
  auto it = lines_.find(line_addr);
  return it == lines_.end() ? nullptr : &it->second.line;
}

std::optional<WriteBackCache::EvictedLine> WriteBackCache::Install(
    uint64_t line_addr, const std::byte* data64, bool dirty) {
  CXLPOOL_DCHECK(line_addr % kCachelineSize == 0);
  if (capacity_lines_ == 0) {
    return std::nullopt;  // uncached mapping: nothing retained
  }
  auto it = lines_.find(line_addr);
  if (it != lines_.end()) {
    std::memcpy(it->second.line.data.data(), data64, kCachelineSize);
    it->second.line.dirty = it->second.line.dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return std::nullopt;
  }

  std::optional<EvictedLine> victim;
  if (lines_.size() >= capacity_lines_) {
    uint64_t victim_addr = lru_.back();
    auto vit = lines_.find(victim_addr);
    CXLPOOL_CHECK(vit != lines_.end());
    EvictedLine ev;
    ev.line_addr = victim_addr;
    ev.dirty = vit->second.line.dirty;
    ev.data = vit->second.line.data;
    if (ev.dirty) {
      ++stats_.writebacks;
    }
    lru_.pop_back();
    lines_.erase(vit);
    victim = ev;
  }

  lru_.push_front(line_addr);
  Entry entry;
  std::memcpy(entry.line.data.data(), data64, kCachelineSize);
  entry.line.dirty = dirty;
  entry.lru_it = lru_.begin();
  lines_.emplace(line_addr, std::move(entry));
  return victim;
}

std::optional<WriteBackCache::EvictedLine> WriteBackCache::Remove(uint64_t line_addr) {
  auto it = lines_.find(line_addr);
  if (it == lines_.end()) {
    return std::nullopt;
  }
  EvictedLine ev;
  ev.line_addr = line_addr;
  ev.dirty = it->second.line.dirty;
  ev.data = it->second.line.data;
  if (ev.dirty) {
    ++stats_.writebacks;
  }
  ++stats_.invalidations;
  lru_.erase(it->second.lru_it);
  lines_.erase(it);
  return ev;
}

void WriteBackCache::DropAll() {
  lines_.clear();
  lru_.clear();
}

}  // namespace cxlpool::mem
