#include "src/netsim/network.h"

#include <utility>

namespace cxlpool::netsim {

Status Network::Attach(MacAddr mac, Endpoint* endpoint) {
  if (ports_.contains(mac)) {
    return AlreadyExists("MAC already attached");
  }
  Port port;
  port.endpoint = endpoint;
  port.egress = std::make_unique<sim::BandwidthQueue>(
      GbitPerSecToBytesPerNanos(config_.port_gbit));
  ports_.emplace(mac, std::move(port));
  return OkStatus();
}

Status Network::Detach(MacAddr mac) {
  if (ports_.erase(mac) == 0) {
    return NotFound("MAC not attached");
  }
  return OkStatus();
}

void Network::Transmit(Frame frame) {
  auto it = ports_.find(frame.dst);
  if (it == ports_.end()) {
    ++dropped_;
    return;
  }
  Nanos now = loop_.now();
  Nanos arrival_at_switch = now + config_.propagation;
  Nanos egress_done =
      it->second.egress->Acquire(arrival_at_switch + config_.switch_latency,
                                 frame.wire_size());
  Nanos delivery = egress_done + config_.propagation;
  Endpoint* endpoint = it->second.endpoint;
  ++delivered_;
  loop_.ScheduleAt(delivery, [endpoint, f = std::move(frame)]() mutable {
    endpoint->DeliverFrame(std::move(f));
  });
}

}  // namespace cxlpool::netsim
