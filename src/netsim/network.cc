#include "src/netsim/network.h"

#include <utility>

namespace cxlpool::netsim {

Status Network::Attach(MacAddr mac, Endpoint* endpoint) {
  if (ports_.contains(mac)) {
    return AlreadyExists("MAC already attached");
  }
  Port port;
  port.endpoint = endpoint;
  port.egress = std::make_unique<sim::BandwidthQueue>(
      GbitPerSecToBytesPerNanos(config_.port_gbit));
  ports_.emplace(mac, std::move(port));
  return OkStatus();
}

Status Network::Detach(MacAddr mac) {
  if (ports_.erase(mac) == 0) {
    return NotFound("MAC not attached");
  }
  return OkStatus();
}

void Network::Transmit(Frame frame) {
  auto it = ports_.find(frame.dst);
  if (it == ports_.end()) {
    ++dropped_;
    return;
  }
  Nanos now = loop_.now();
  Nanos fault_delay = 0;
  int copies = 1;
  if (fault_plane_ != nullptr && fault_plane_->active()) {
    auto src_it = mac_hosts_.find(frame.src);
    auto dst_it = mac_hosts_.find(frame.dst);
    if (src_it != mac_hosts_.end() && dst_it != mac_hosts_.end()) {
      FaultPlane::FrameFate fate =
          fault_plane_->Judge(src_it->second, dst_it->second);
      switch (fate.verdict) {
        case FaultPlane::Verdict::kDeliver:
          break;
        case FaultPlane::Verdict::kDrop:
          ++dropped_;
          return;
        case FaultPlane::Verdict::kDuplicate:
          copies = 2;
          break;
        case FaultPlane::Verdict::kDelay:
          fault_delay = fate.delay;
          break;
      }
    }
  }
  Nanos arrival_at_switch = now + fault_delay + config_.propagation;
  Nanos egress_done =
      it->second.egress->Acquire(arrival_at_switch + config_.switch_latency,
                                 frame.wire_size());
  Nanos delivery = egress_done + config_.propagation;
  Endpoint* endpoint = it->second.endpoint;
  for (int c = 0; c < copies; ++c) {
    ++delivered_;
    loop_.ScheduleAt(delivery, [endpoint, f = frame]() mutable {
      endpoint->DeliverFrame(std::move(f));
    });
  }
}

}  // namespace cxlpool::netsim
