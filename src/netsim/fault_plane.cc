#include "src/netsim/fault_plane.h"

namespace cxlpool::netsim {

void FaultPlane::Cut(HostId src, HostId dst) {
  LinkState& s = links_[MakeEdge(src, dst)];
  if (!s.cut) {
    ++stats_.cuts;
  }
  s.cut = true;
}

void FaultPlane::Heal(HostId src, HostId dst) {
  auto it = links_.find(MakeEdge(src, dst));
  if (it == links_.end()) {
    return;
  }
  ++stats_.heals;
  links_.erase(it);
}

void FaultPlane::Partition(std::span<const HostId> a,
                           std::span<const HostId> b) {
  for (HostId x : a) {
    for (HostId y : b) {
      if (x == y) {
        continue;
      }
      Cut(x, y);
      Cut(y, x);
    }
  }
}

void FaultPlane::HealPartition(std::span<const HostId> a,
                               std::span<const HostId> b) {
  for (HostId x : a) {
    for (HostId y : b) {
      if (x == y) {
        continue;
      }
      Heal(x, y);
      Heal(y, x);
    }
  }
}

void FaultPlane::SetLossy(HostId src, HostId dst, const LinkState& state) {
  if (state.clean()) {
    Heal(src, dst);
    return;
  }
  links_[MakeEdge(src, dst)] = state;
}

void FaultPlane::HealAll() {
  stats_.heals += links_.size();
  links_.clear();
}

bool FaultPlane::IsCut(HostId src, HostId dst) const {
  auto it = links_.find(MakeEdge(src, dst));
  return it != links_.end() && it->second.cut;
}

FaultPlane::FrameFate FaultPlane::Judge(HostId src, HostId dst) {
  auto it = links_.find(MakeEdge(src, dst));
  if (it == links_.end()) {
    return {};
  }
  const LinkState& s = it->second;
  if (s.cut) {
    ++stats_.frames_dropped;
    return {Verdict::kDrop, 0};
  }
  // One uniform draw decides the frame's fate: the [0, drop_p) band drops,
  // the next dup_p band duplicates, the next delay_p band delays. A single
  // draw (instead of three Bernoullis) keeps the per-frame draw count
  // constant regardless of which probabilities are nonzero.
  double u = rng_.Uniform();
  if (u < s.drop_p) {
    ++stats_.frames_dropped;
    return {Verdict::kDrop, 0};
  }
  u -= s.drop_p;
  if (u < s.dup_p) {
    ++stats_.frames_duplicated;
    return {Verdict::kDuplicate, 0};
  }
  u -= s.dup_p;
  if (u < s.delay_p) {
    ++stats_.frames_delayed;
    Nanos d = s.delay_min;
    if (s.delay_max > s.delay_min) {
      d += static_cast<Nanos>(
          rng_.UniformInt(static_cast<uint64_t>(s.delay_max - s.delay_min)));
    }
    return {Verdict::kDelay, d};
  }
  return {};
}

}  // namespace cxlpool::netsim
