// Minimal Ethernet fabric for the UDP experiments: endpoints (NIC MACs)
// attached to one store-and-forward switch. A frame transmitted by an
// endpoint is charged the sender's wire serialization by the NIC model;
// the network adds propagation, switch latency, and egress-port
// serialization, then delivers to the destination endpoint.
#ifndef SRC_NETSIM_NETWORK_H_
#define SRC_NETSIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/netsim/fault_plane.h"
#include "src/sim/bandwidth.h"
#include "src/sim/event_loop.h"

namespace cxlpool::netsim {

using MacAddr = uint64_t;

struct Frame {
  MacAddr dst = 0;
  MacAddr src = 0;
  std::vector<std::byte> payload;

  size_t wire_size() const { return payload.size() + kFrameOverhead; }
  // Ethernet + IP + UDP framing overhead charged on the wire.
  static constexpr size_t kFrameOverhead = 42;
};

// Implemented by NIC models.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void DeliverFrame(Frame frame) = 0;
};

struct NetworkConfig {
  double port_gbit = 100.0;     // per-port egress rate
  Nanos switch_latency = 1200;  // shared ToR, shallow queues
  Nanos propagation = 350;      // cable + PHY + RS-FEC per traversal
};

class Network {
 public:
  Network(sim::EventLoop& loop, const NetworkConfig& config)
      : loop_(loop), config_(config) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches an endpoint under `mac`. Frames to unknown MACs are dropped.
  Status Attach(MacAddr mac, Endpoint* endpoint);
  Status Detach(MacAddr mac);

  // Hands a frame (already serialized onto the sender's wire by the NIC)
  // to the fabric; it arrives at the destination endpoint after
  // propagation + switch + egress serialization.
  void Transmit(Frame frame);

  uint64_t frames_delivered() const { return delivered_; }
  uint64_t frames_dropped() const { return dropped_; }

  // Partition/loss model for the UDP fabric. `plane` judges every frame
  // whose src AND dst MACs have a host binding (SetMacHost); unbound
  // frames are untouched. Duplicates are delivered twice back-to-back,
  // delays push the whole switch+egress schedule out by the drawn amount.
  void BindFaultPlane(FaultPlane* plane) { fault_plane_ = plane; }
  void SetMacHost(MacAddr mac, HostId host) { mac_hosts_[mac] = host; }

  sim::EventLoop& loop() { return loop_; }

 private:
  struct Port {
    Endpoint* endpoint;
    std::unique_ptr<sim::BandwidthQueue> egress;
  };

  sim::EventLoop& loop_;
  NetworkConfig config_;
  std::map<MacAddr, Port> ports_;
  std::map<MacAddr, HostId> mac_hosts_;
  FaultPlane* fault_plane_ = nullptr;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace cxlpool::netsim

#endif  // SRC_NETSIM_NETWORK_H_
