// Directed per-link fault state for the message fabric (ISSUE 9 / paper
// §4-5 robustness): full partitions (both directions cut between host
// sets), asymmetric links (A→B delivers while B→A drops), and lossy
// links (seeded per-frame drop/duplicate/delay, which together with
// delay gives reorder). The pod's shared *media* cannot lose
// reachability — a CXL pool segment is either crashed or readable — but
// the host-to-host message path (retimers, switches, the management
// network a real orchestrator would ride) can. The plane models exactly
// that layer: message frames between two hosts are judged per directed
// (src, dst) pair at the consuming endpoint, while raw memory traffic is
// untouched.
//
// Determinism contract: verdicts for lossy links draw from a private
// seeded Rng, one draw sequence per plane, advanced only for frames that
// traverse a link with loss probabilities configured. Cut links and
// clean links never draw, so enabling tracing/observability (which never
// changes frame counts) cannot change the draw sequence, and same-seed
// runs judge identical frame streams identically.
#ifndef SRC_NETSIM_FAULT_PLANE_H_
#define SRC_NETSIM_FAULT_PLANE_H_

#include <cstdint>
#include <map>
#include <span>
#include <utility>

#include "src/common/ids.h"
#include "src/common/units.h"
#include "src/sim/random.h"

namespace cxlpool::netsim {

class FaultPlane {
 public:
  // Loss parameters for one directed link. All-zero (and !cut) means the
  // link is clean and the entry is garbage-collected.
  struct LinkState {
    bool cut = false;       // drop every frame
    double drop_p = 0.0;    // P(frame silently dropped)
    double dup_p = 0.0;     // P(frame delivered twice)
    double delay_p = 0.0;   // P(frame held for delay_min..delay_max)
    Nanos delay_min = 0;
    Nanos delay_max = 0;

    bool clean() const {
      return !cut && drop_p == 0.0 && dup_p == 0.0 && delay_p == 0.0;
    }
  };

  enum class Verdict : uint8_t { kDeliver, kDrop, kDuplicate, kDelay };
  struct FrameFate {
    Verdict verdict = Verdict::kDeliver;
    Nanos delay = 0;  // set iff verdict == kDelay
  };

  struct Stats {
    uint64_t frames_dropped = 0;     // cut + lossy drops
    uint64_t frames_duplicated = 0;
    uint64_t frames_delayed = 0;
    uint64_t cuts = 0;               // directed cut edges installed
    uint64_t heals = 0;              // directed edges healed
  };

  explicit FaultPlane(uint64_t seed = 1) : rng_(seed) {}
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Cuts one direction: frames src→dst are dropped; dst→src untouched.
  void Cut(HostId src, HostId dst);
  // Restores one direction to a clean link (clears loss params too).
  void Heal(HostId src, HostId dst);
  // Cuts both directions between every host in `a` and every host in `b`
  // (the classic full partition between two sets).
  void Partition(std::span<const HostId> a, std::span<const HostId> b);
  // Heals both directions between the two sets.
  void HealPartition(std::span<const HostId> a, std::span<const HostId> b);
  // Installs loss parameters on one direction (replaces prior state).
  void SetLossy(HostId src, HostId dst, const LinkState& state);
  // Restores every link to clean.
  void HealAll();

  bool IsCut(HostId src, HostId dst) const;
  // True if any directed edge carries fault state. Receivers use this as
  // the fast path: an inactive plane never charges a map lookup per
  // message.
  bool active() const { return !links_.empty(); }

  // Judges one frame traversing src→dst. Draws randomness only when the
  // edge has loss probabilities configured.
  FrameFate Judge(HostId src, HostId dst);

  const Stats& stats() const { return stats_; }

 private:
  using Edge = std::pair<uint32_t, uint32_t>;
  static Edge MakeEdge(HostId src, HostId dst) {
    return {src.value(), dst.value()};
  }

  std::map<Edge, LinkState> links_;
  sim::Rng rng_;
  Stats stats_;
};

}  // namespace cxlpool::netsim

#endif  // SRC_NETSIM_FAULT_PLANE_H_
