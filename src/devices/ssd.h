// NVMe-like SSD model: one submission queue of 64 B commands, one
// completion queue of 64 B entries, a doorbell, and a flash backend with
// bounded internal parallelism (channels). Like the NIC, all queue and
// buffer addresses resolve through the global AddressMap, so the SSD can
// serve a remote host whose queues live in CXL pool memory without any
// device changes.
#ifndef SRC_DEVICES_SSD_H_
#define SRC_DEVICES_SSD_H_

#include <vector>

#include "src/pcie/device.h"
#include "src/sim/random.h"
#include "src/sim/sync.h"
#include "src/sim/windowed.h"

namespace cxlpool::devices {

inline constexpr uint64_t kSsdRegReset = 0x00;
inline constexpr uint64_t kSsdRegSqBase = 0x10;
inline constexpr uint64_t kSsdRegSqSize = 0x18;
inline constexpr uint64_t kSsdRegSqDoorbell = 0x20;
inline constexpr uint64_t kSsdRegCqBase = 0x28;
inline constexpr uint64_t kSsdRegCapacity = 0x30;  // RO

inline constexpr uint64_t kSsdCmdSize = 64;
inline constexpr uint64_t kSsdCplSize = 64;
inline constexpr uint64_t kSsdSectorSize = 512;

// Command opcodes.
inline constexpr uint8_t kSsdOpRead = 1;
inline constexpr uint8_t kSsdOpWrite = 2;

// Completion status codes.
inline constexpr uint16_t kSsdStatusOk = 0;
inline constexpr uint16_t kSsdStatusLbaOutOfRange = 1;
inline constexpr uint16_t kSsdStatusBadOpcode = 2;

struct SsdConfig {
  uint64_t capacity_bytes = 16 * kMiB;
  int channels = 4;  // internal flash parallelism
  // Flash access times (lognormal around these means).
  Nanos read_mean = 70 * kMicrosecond;
  Nanos write_mean = 20 * kMicrosecond;
  double latency_sigma = 0.25;
  uint64_t seed = 1;
  cxl::LinkSpec pcie_link;  // default x8 gen5
  pcie::PcieTiming pcie_timing;
};

class Ssd : public pcie::PcieDevice {
 public:
  Ssd(PcieDeviceId id, std::string name, sim::EventLoop& loop, SsdConfig config);

  struct SsdStats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t errors = 0;
  };
  const SsdStats& ssd_stats() const { return ssd_stats_; }
  uint64_t capacity() const { return media_.size(); }

  // Utilization proxy for the orchestrator: fraction of recent time the
  // flash channels were busy.
  double ChannelUtilization() const;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override;
  uint64_t OnMmioRead(uint64_t reg) override;
  void OnAttach() override;
  void OnDetach() override;
  void OnFailure() override;
  void OnReset() override;

 private:
  sim::Task<> Engine(uint64_t my_generation);
  sim::Task<> ExecuteCommand(std::array<std::byte, kSsdCmdSize> cmd);
  sim::Task<> WriteCompletion(uint64_t cookie, uint16_t status);

  SsdConfig config_;
  std::vector<std::byte> media_;
  sim::Rng rng_;
  std::unique_ptr<sim::Semaphore> channels_;

  uint64_t sq_base_ = 0;
  uint64_t sq_size_ = 0;
  uint64_t sq_tail_ = 0;  // doorbell
  uint64_t sq_head_ = 0;
  uint64_t cq_base_ = 0;
  uint64_t completions_ = 0;

  sim::Event kick_;
  Nanos busy_ns_ = 0;
  mutable sim::WindowedUtilization windowed_util_;
  SsdStats ssd_stats_;
};

}  // namespace cxlpool::devices

#endif  // SRC_DEVICES_SSD_H_
