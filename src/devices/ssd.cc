#include "src/devices/ssd.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::devices {

using msg::wire::GetU32;
using msg::wire::GetU64;
using msg::wire::PutU16;
using msg::wire::PutU64;

Ssd::Ssd(PcieDeviceId id, std::string name, sim::EventLoop& loop, SsdConfig config)
    : pcie::PcieDevice(id, std::move(name), loop, config.pcie_link,
                       config.pcie_timing),
      config_(config),
      media_(config.capacity_bytes),
      rng_(config.seed),
      channels_(std::make_unique<sim::Semaphore>(loop, config.channels)),
      kick_(loop) {}

double Ssd::ChannelUtilization() const {
  Nanos now = const_cast<Ssd*>(this)->loop().now();
  return windowed_util_.Update(now, busy_ns_, static_cast<double>(config_.channels));
}

void Ssd::OnMmioWrite(uint64_t reg, uint64_t value) {
  switch (reg) {
    case kSsdRegReset:
      sq_tail_ = sq_head_ = 0;
      completions_ = 0;
      break;
    case kSsdRegSqBase:
      sq_base_ = value;
      break;
    case kSsdRegSqSize:
      sq_size_ = value;
      break;
    case kSsdRegSqDoorbell:
      if (value > sq_tail_) {
        sq_tail_ = value;
        kick_.Set();
      }
      break;
    case kSsdRegCqBase:
      cq_base_ = value;
      break;
    default:
      break;
  }
}

uint64_t Ssd::OnMmioRead(uint64_t reg) {
  switch (reg) {
    case kSsdRegCapacity:
      return media_.size();
    case kSsdRegSqDoorbell:
      return sq_tail_;
    default:
      return 0;
  }
}

void Ssd::OnAttach() { sim::Spawn(Engine(generation())); }
void Ssd::OnDetach() { kick_.Set(); }
void Ssd::OnFailure() { kick_.Set(); }

void Ssd::OnReset() {
  // Wake the old engine so it observes the generation bump and exits.
  kick_.Set();
  // Queue state comes up clean, as after a real FLR; the driver must
  // reprogram SQ/CQ bases before the device executes commands again.
  sq_base_ = sq_size_ = sq_tail_ = sq_head_ = 0;
  cq_base_ = 0;
  completions_ = 0;
  if (attached()) {
    sim::Spawn(Engine(generation()));
  }
}

sim::Task<> Ssd::Engine(uint64_t my_generation) {
  while (generation() == my_generation) {
    if (sq_head_ >= sq_tail_ || sq_size_ == 0) {
      co_await kick_.Wait();
      kick_.Reset();
      continue;
    }
    uint64_t idx = sq_head_ % sq_size_;
    std::array<std::byte, kSsdCmdSize> cmd;
    Status st = co_await DmaRead(sq_base_ + idx * kSsdCmdSize, cmd);
    if (!st.ok()) {
      co_return;
    }
    ++sq_head_;
    // Commands execute concurrently up to the channel count; completions
    // may be written out of order (as on real NVMe).
    sim::Spawn(ExecuteCommand(cmd));
  }
}

sim::Task<> Ssd::ExecuteCommand(std::array<std::byte, kSsdCmdSize> cmd) {
  // Command layout: opcode u8 | pad[7] | lba u64 | nsectors u32 | pad u32 |
  //                 buf_addr u64 | cookie u64
  uint8_t opcode = static_cast<uint8_t>(cmd[0]);
  uint64_t lba = GetU64(cmd.data() + 8);
  uint32_t nsectors = GetU32(cmd.data() + 16);
  uint64_t buf_addr = GetU64(cmd.data() + 24);
  uint64_t cookie = GetU64(cmd.data() + 32);

  uint64_t offset = lba * kSsdSectorSize;
  uint64_t bytes = static_cast<uint64_t>(nsectors) * kSsdSectorSize;
  if (offset + bytes > media_.size() || bytes == 0) {
    ++ssd_stats_.errors;
    co_await WriteCompletion(cookie, kSsdStatusLbaOutOfRange);
    co_return;
  }
  if (opcode != kSsdOpRead && opcode != kSsdOpWrite) {
    ++ssd_stats_.errors;
    co_await WriteCompletion(cookie, kSsdStatusBadOpcode);
    co_return;
  }

  co_await channels_->Acquire();
  Nanos start = loop().now();
  Nanos mean = opcode == kSsdOpRead ? config_.read_mean : config_.write_mean;
  double mu = std::log(static_cast<double>(mean)) -
              config_.latency_sigma * config_.latency_sigma / 2;
  Nanos flash = static_cast<Nanos>(rng_.LogNormal(mu, config_.latency_sigma));
  co_await sim::Delay(loop(), flash);

  Status st;
  if (opcode == kSsdOpRead) {
    st = co_await DmaWrite(buf_addr,
                           std::span<const std::byte>(media_.data() + offset, bytes));
    ++ssd_stats_.reads;
    ssd_stats_.read_bytes += bytes;
  } else {
    std::vector<std::byte> buf(bytes);
    st = co_await DmaRead(buf_addr, buf);
    if (st.ok()) {
      std::memcpy(media_.data() + offset, buf.data(), bytes);
    }
    ++ssd_stats_.writes;
    ssd_stats_.write_bytes += bytes;
  }
  busy_ns_ += loop().now() - start;
  channels_->Release();
  if (!st.ok()) {
    co_return;  // host went away mid-command
  }
  co_await WriteCompletion(cookie, kSsdStatusOk);
}

sim::Task<> Ssd::WriteCompletion(uint64_t cookie, uint16_t status) {
  if (cq_base_ == 0 || sq_size_ == 0) {
    co_return;
  }
  // Claim the sequence number (and thus the CQ slot) BEFORE suspending:
  // commands complete concurrently and two in-flight completions must
  // never target the same slot.
  uint64_t seq = ++completions_;
  std::array<std::byte, kSsdCplSize> cpl{};
  PutU64(cpl.data(), seq);
  PutU64(cpl.data() + 8, cookie);
  PutU16(cpl.data() + 16, status);
  uint64_t addr = cq_base_ + ((seq - 1) % sq_size_) * kSsdCplSize;
  (void)co_await DmaWrite(addr, cpl);
}

}  // namespace cxlpool::devices
