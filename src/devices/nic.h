// Descriptor-ring NIC model (ConnectX-class, simplified).
//
// The driver (src/core/nic_driver.h) programs ring locations via MMIO
// registers and then operates it entirely through memory:
//
//   TX: driver writes 32 B descriptors into the TX ring, rings the TX
//       doorbell with the new absolute tail count. The NIC DMA-reads
//       descriptors and payload buffers, serializes frames onto its wire,
//       and DMA-writes a running completion count to one 64 B line.
//   RX: driver posts receive buffers as 32 B descriptors and rings the RX
//       doorbell. On frame arrival the NIC DMA-reads the next descriptor,
//       DMA-writes the payload, and DMA-writes a 64 B completion entry
//       (seq, desc index, length) into the RX completion ring.
//
// Crucially the NIC never cares where rings and buffers live: descriptor
// and buffer addresses resolve through the global AddressMap, so placing
// them in CXL pool memory requires zero device changes (paper §4.1).
#ifndef SRC_DEVICES_NIC_H_
#define SRC_DEVICES_NIC_H_

#include <deque>
#include <vector>

#include "src/netsim/network.h"
#include "src/obs/obs.h"
#include "src/pcie/device.h"
#include "src/sim/sync.h"
#include "src/sim/windowed.h"

namespace cxlpool::devices {

// MMIO register offsets.
inline constexpr uint64_t kNicRegReset = 0x00;
inline constexpr uint64_t kNicRegTxRingBase = 0x10;
inline constexpr uint64_t kNicRegTxRingSize = 0x18;
inline constexpr uint64_t kNicRegTxCplAddr = 0x20;
inline constexpr uint64_t kNicRegTxDoorbell = 0x28;
inline constexpr uint64_t kNicRegRxRingBase = 0x30;
inline constexpr uint64_t kNicRegRxRingSize = 0x38;
inline constexpr uint64_t kNicRegRxCplBase = 0x40;
inline constexpr uint64_t kNicRegRxDoorbell = 0x48;
inline constexpr uint64_t kNicRegLinkStatus = 0x50;  // RO: 1 = wire up
inline constexpr uint64_t kNicRegRxDropped = 0x58;   // RO

// In-memory structure sizes.
inline constexpr uint64_t kNicTxDescSize = 32;  // buf_addr u64, len u32, flags u32, cookie u64
inline constexpr uint64_t kNicRxDescSize = 32;  // buf_addr u64, buf_len u32
inline constexpr uint64_t kNicRxCplSize = 64;   // seq u64, desc_idx u32, len u32

struct NicConfig {
  double wire_gbit = 100.0;
  Nanos tx_per_packet = 300;  // internal pipeline cost per TX frame
  Nanos rx_per_packet = 300;
  // Frames processed concurrently per direction (DMA pipelining depth —
  // real NICs keep dozens of DMA reads in flight).
  int pipeline_depth = 16;
  cxl::LinkSpec pcie_link;    // default x8 gen5 (ample for 100 Gb/s)
  pcie::PcieTiming pcie_timing;
  // Shared observability bundle (null = standalone): fault-episode
  // counters land in its registry under a {"device": id} label.
  obs::Observability* obs = nullptr;
};

class Nic : public pcie::PcieDevice, public netsim::Endpoint {
 public:
  Nic(PcieDeviceId id, std::string name, sim::EventLoop& loop, NicConfig config);
  ~Nic() override;

  // Plugs the NIC's wire into the fabric under `mac`.
  Status ConnectNetwork(netsim::Network* network, netsim::MacAddr mac);
  void DisconnectNetwork();
  netsim::MacAddr mac() const { return mac_; }

  // netsim::Endpoint: a frame arrived on the wire.
  void DeliverFrame(netsim::Frame frame) override;

  // Wire (port) failure injection — the failure mode §4.2 migrates away
  // from. The device stays PCIe-alive; the link status register flips.
  void InjectLinkFailure() {
    if (link_up_) {
      link_down_episodes_->Inc();
    }
    link_up_ = false;
  }
  void RepairLink() { link_up_ = true; }
  bool link_up() const { return link_up_; }

  struct NicStats {
    uint64_t tx_frames = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_bytes = 0;
    uint64_t rx_dropped_no_buffer = 0;
    uint64_t dropped_link_down = 0;
  };
  const NicStats& nic_stats() const { return nic_stats_; }

  // Fault attribution for failover benches: wire-down (InjectLinkFailure
  // transitions) vs device-wedge (watchdog FLRs of this NIC) are distinct
  // fault classes with distinct recovery paths. Both live in the metrics
  // registry (nic.link_down_episodes / nic.wedge_episodes, labeled with
  // this device's id) — the shared one when NicConfig::obs is set, else a
  // private fallback readable through metrics().
  obs::Registry& metrics() {
    return config_.obs != nullptr ? config_.obs->metrics() : fallback_metrics_;
  }

  // Offered-load utilization of the wire, for the orchestrator's monitor.
  double WireUtilization() const;

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override;
  uint64_t OnMmioRead(uint64_t reg) override;
  void OnAttach() override;
  void OnDetach() override;
  void OnFailure() override;
  void OnReset() override;

 private:
  sim::Task<> TxEngine(uint64_t my_generation);
  sim::Task<> TxOne(uint64_t my_generation, uint64_t idx);
  sim::Task<> RxEngine(uint64_t my_generation);
  sim::Task<> RxOne(uint64_t my_generation, uint64_t idx, uint64_t seq,
                    netsim::Frame frame);
  bool EngineShouldExit(uint64_t my_generation) const;

  NicConfig config_;
  netsim::Network* network_ = nullptr;
  netsim::MacAddr mac_ = 0;
  bool link_up_ = true;

  // Ring state programmed by the driver.
  uint64_t tx_ring_base_ = 0;
  uint64_t tx_ring_size_ = 0;
  uint64_t tx_cpl_addr_ = 0;
  uint64_t tx_tail_ = 0;  // doorbell (absolute descriptor count)
  uint64_t tx_head_ = 0;  // processed count
  uint64_t rx_ring_base_ = 0;
  uint64_t rx_ring_size_ = 0;
  uint64_t rx_cpl_base_ = 0;
  uint64_t rx_tail_ = 0;  // posted buffer count
  uint64_t rx_head_ = 0;  // consumed buffer count

  sim::BandwidthQueue wire_tx_;
  mutable sim::WindowedUtilization windowed_util_;
  std::deque<netsim::Frame> rx_pending_;
  sim::Event tx_kick_;
  sim::Event rx_kick_;
  std::unique_ptr<sim::Semaphore> tx_pipe_;  // DMA pipelining depth
  std::unique_ptr<sim::Semaphore> rx_pipe_;
  uint64_t tx_done_ = 0;         // completed TX frames (may finish out of order)
  uint64_t rx_completions_ = 0;  // claimed RX completion sequence numbers
  uint64_t wedges_seen_ = 0;     // gray_stats().wedges consumed into episodes

  NicStats nic_stats_;
  obs::Registry fallback_metrics_;
  // Registry-backed episode counters (handles cached at construction).
  obs::Counter* link_down_episodes_ = nullptr;
  obs::Counter* wedge_episodes_ = nullptr;
};

}  // namespace cxlpool::devices

#endif  // SRC_DEVICES_NIC_H_
