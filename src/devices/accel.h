// Generic offload accelerator model (compression / crypto class), with
// multiple independent queue pairs so many hosts can share one device —
// the §5 "soft accelerator disaggregation" scenario (e.g. a 1:16
// accelerator:host ratio in a CXL pod). Queue pair q's registers live at
// offset q * kAccelQpStride; jobs from all queue pairs contend for the
// same execution engines.
//
// A job streams bytes in over DMA, transforms them at a fixed rate, and
// streams the result out. The transform is deterministic so callers can
// verify the datapath end to end.
#ifndef SRC_DEVICES_ACCEL_H_
#define SRC_DEVICES_ACCEL_H_

#include <vector>

#include "src/pcie/device.h"
#include "src/sim/sync.h"
#include "src/sim/windowed.h"

namespace cxlpool::devices {

inline constexpr uint64_t kAccelQpStride = 0x100;
inline constexpr int kAccelMaxQp = 32;

// Per-queue-pair register offsets (add qp * kAccelQpStride).
inline constexpr uint64_t kAccelRegReset = 0x00;
inline constexpr uint64_t kAccelRegSqBase = 0x10;
inline constexpr uint64_t kAccelRegSqSize = 0x18;
inline constexpr uint64_t kAccelRegSqDoorbell = 0x20;
inline constexpr uint64_t kAccelRegCqBase = 0x28;

inline constexpr uint64_t kAccelJobSize = 64;
inline constexpr uint64_t kAccelCplSize = 64;

// Job opcodes.
inline constexpr uint8_t kAccelOpXorStream = 1;  // out[i] = in[i] ^ 0x5a

struct AccelConfig {
  double bytes_per_ns = 25.0;   // 25 GB/s engine throughput
  Nanos job_setup = 2 * kMicrosecond;
  int engines = 1;
  cxl::LinkSpec pcie_link;
  pcie::PcieTiming pcie_timing;
};

class Accelerator : public pcie::PcieDevice {
 public:
  Accelerator(PcieDeviceId id, std::string name, sim::EventLoop& loop,
              AccelConfig config);

  struct AccelStats {
    uint64_t jobs = 0;
    uint64_t bytes_in = 0;
    uint64_t errors = 0;
  };
  const AccelStats& accel_stats() const { return accel_stats_; }

  // Recent-window engine utilization (orchestrator policy input).
  double EngineUtilization() const;
  // Total engine-busy time since construction (for offline averaging).
  Nanos busy_ns() const { return busy_ns_; }
  int engines() const { return config_.engines; }

  // Hands out queue pair indices to drivers (the orchestrator-facing
  // resource unit; a lease maps to one queue pair).
  Result<int> AllocateQueuePair();
  void ReleaseQueuePair(int qp);

 protected:
  void OnMmioWrite(uint64_t reg, uint64_t value) override;
  uint64_t OnMmioRead(uint64_t reg) override;
  void OnAttach() override;
  void OnDetach() override;
  void OnFailure() override;

 private:
  struct QueuePair {
    uint64_t sq_base = 0;
    uint64_t sq_size = 0;
    uint64_t sq_tail = 0;
    uint64_t sq_head = 0;
    uint64_t cq_base = 0;
    uint64_t completions = 0;
    bool allocated = false;
  };

  sim::Task<> Engine(uint64_t my_generation);
  sim::Task<> ExecuteJob(int qp, std::array<std::byte, kAccelJobSize> job);
  sim::Task<> WriteCompletion(int qp, uint64_t cookie, uint16_t status);

  AccelConfig config_;
  std::unique_ptr<sim::Semaphore> engines_;
  std::array<QueuePair, kAccelMaxQp> qps_;

  sim::Event kick_;
  Nanos busy_ns_ = 0;
  mutable sim::WindowedUtilization windowed_util_;
  AccelStats accel_stats_;
};

}  // namespace cxlpool::devices

#endif  // SRC_DEVICES_ACCEL_H_
