#include "src/devices/accel.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::devices {

using msg::wire::GetU32;
using msg::wire::GetU64;
using msg::wire::PutU16;
using msg::wire::PutU64;

Accelerator::Accelerator(PcieDeviceId id, std::string name, sim::EventLoop& loop,
                         AccelConfig config)
    : pcie::PcieDevice(id, std::move(name), loop, config.pcie_link,
                       config.pcie_timing),
      config_(config),
      engines_(std::make_unique<sim::Semaphore>(loop, config.engines)),
      kick_(loop) {}

double Accelerator::EngineUtilization() const {
  Nanos now = const_cast<Accelerator*>(this)->loop().now();
  return windowed_util_.Update(now, busy_ns_, static_cast<double>(config_.engines));
}

Result<int> Accelerator::AllocateQueuePair() {
  for (int q = 0; q < kAccelMaxQp; ++q) {
    if (!qps_[q].allocated) {
      qps_[q].allocated = true;
      return q;
    }
  }
  return ResourceExhausted("accelerator out of queue pairs");
}

void Accelerator::ReleaseQueuePair(int qp) {
  CXLPOOL_CHECK(qp >= 0 && qp < kAccelMaxQp);
  qps_[qp] = QueuePair{};
}

void Accelerator::OnMmioWrite(uint64_t reg, uint64_t value) {
  int qp = static_cast<int>(reg / kAccelQpStride);
  if (qp >= kAccelMaxQp) {
    return;
  }
  QueuePair& q = qps_[qp];
  switch (reg % kAccelQpStride) {
    case kAccelRegReset:
      q.sq_tail = q.sq_head = 0;
      q.completions = 0;
      break;
    case kAccelRegSqBase:
      q.sq_base = value;
      break;
    case kAccelRegSqSize:
      q.sq_size = value;
      break;
    case kAccelRegSqDoorbell:
      if (value > q.sq_tail) {
        q.sq_tail = value;
        kick_.Set();
      }
      break;
    case kAccelRegCqBase:
      q.cq_base = value;
      break;
    default:
      break;
  }
}

uint64_t Accelerator::OnMmioRead(uint64_t reg) {
  int qp = static_cast<int>(reg / kAccelQpStride);
  if (qp >= kAccelMaxQp) {
    return 0;
  }
  switch (reg % kAccelQpStride) {
    case kAccelRegSqDoorbell:
      return qps_[qp].sq_tail;
    default:
      return 0;
  }
}

void Accelerator::OnAttach() { sim::Spawn(Engine(generation())); }
void Accelerator::OnDetach() { kick_.Set(); }
void Accelerator::OnFailure() { kick_.Set(); }

sim::Task<> Accelerator::Engine(uint64_t my_generation) {
  while (generation() == my_generation) {
    bool fetched = false;
    // Round-robin across queue pairs with pending submissions.
    for (int qp = 0; qp < kAccelMaxQp; ++qp) {
      QueuePair& q = qps_[qp];
      if (q.sq_size == 0 || q.sq_head >= q.sq_tail) {
        continue;
      }
      uint64_t idx = q.sq_head % q.sq_size;
      std::array<std::byte, kAccelJobSize> job;
      Status st = co_await DmaRead(q.sq_base + idx * kAccelJobSize, job);
      if (!st.ok()) {
        co_return;
      }
      ++q.sq_head;
      fetched = true;
      // Jobs execute concurrently up to the engine count.
      sim::Spawn(ExecuteJob(qp, job));
      if (generation() != my_generation) {
        co_return;
      }
    }
    if (!fetched) {
      co_await kick_.Wait();
      kick_.Reset();
    }
  }
}

sim::Task<> Accelerator::ExecuteJob(int qp, std::array<std::byte, kAccelJobSize> job) {
  // Job layout: opcode u8 | pad[7] | in_addr u64 | in_len u32 | pad u32 |
  //             out_addr u64 | cookie u64
  uint8_t opcode = static_cast<uint8_t>(job[0]);
  uint64_t in_addr = GetU64(job.data() + 8);
  uint32_t in_len = GetU32(job.data() + 16);
  uint64_t out_addr = GetU64(job.data() + 24);
  uint64_t cookie = GetU64(job.data() + 32);

  if (opcode != kAccelOpXorStream || in_len == 0) {
    ++accel_stats_.errors;
    co_await WriteCompletion(qp, cookie, 1);
    co_return;
  }

  co_await engines_->Acquire();
  Nanos start = loop().now();

  std::vector<std::byte> data(in_len);
  Status st = co_await DmaRead(in_addr, data);
  if (st.ok()) {
    Nanos compute = config_.job_setup +
                    static_cast<Nanos>(std::ceil(in_len / config_.bytes_per_ns));
    co_await sim::Delay(loop(), compute);
    for (std::byte& b : data) {
      b ^= std::byte{0x5a};
    }
    st = co_await DmaWrite(out_addr, data);
  }

  busy_ns_ += loop().now() - start;
  engines_->Release();
  if (!st.ok()) {
    co_return;
  }
  ++accel_stats_.jobs;
  accel_stats_.bytes_in += in_len;
  co_await WriteCompletion(qp, cookie, 0);
}

sim::Task<> Accelerator::WriteCompletion(int qp, uint64_t cookie, uint16_t status) {
  QueuePair& q = qps_[qp];
  if (q.cq_base == 0 || q.sq_size == 0) {
    co_return;
  }
  // Claim the CQ slot before suspending (concurrent jobs on one queue
  // pair must not collide).
  uint64_t seq = ++q.completions;
  std::array<std::byte, kAccelCplSize> cpl{};
  PutU64(cpl.data(), seq);
  PutU64(cpl.data() + 8, cookie);
  PutU16(cpl.data() + 16, status);
  uint64_t addr = q.cq_base + ((seq - 1) % q.sq_size) * kAccelCplSize;
  (void)co_await DmaWrite(addr, cpl);
}

}  // namespace cxlpool::devices
