#include "src/devices/nic.h"

#include <utility>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::devices {

using msg::wire::GetU32;
using msg::wire::GetU64;
using msg::wire::PutU32;
using msg::wire::PutU64;

Nic::Nic(PcieDeviceId id, std::string name, sim::EventLoop& loop, NicConfig config)
    : pcie::PcieDevice(id, std::move(name), loop, config.pcie_link,
                       config.pcie_timing),
      config_(config),
      wire_tx_(GbitPerSecToBytesPerNanos(config.wire_gbit)),
      tx_kick_(loop),
      rx_kick_(loop),
      tx_pipe_(std::make_unique<sim::Semaphore>(loop, config.pipeline_depth)),
      rx_pipe_(std::make_unique<sim::Semaphore>(loop, config.pipeline_depth)) {
  obs::Labels labels = {{"device", std::to_string(id.value())}};
  link_down_episodes_ = metrics().GetCounter("nic.link_down_episodes", labels);
  wedge_episodes_ = metrics().GetCounter("nic.wedge_episodes", labels);
}

Nic::~Nic() { DisconnectNetwork(); }

Status Nic::ConnectNetwork(netsim::Network* network, netsim::MacAddr mac) {
  CXLPOOL_CHECK(network != nullptr);
  RETURN_IF_ERROR(network->Attach(mac, this));
  network_ = network;
  mac_ = mac;
  return OkStatus();
}

void Nic::DisconnectNetwork() {
  if (network_ != nullptr) {
    (void)network_->Detach(mac_);
    network_ = nullptr;
  }
}

void Nic::DeliverFrame(netsim::Frame frame) {
  if (!link_up_ || failed()) {
    ++nic_stats_.dropped_link_down;
    return;
  }
  rx_pending_.push_back(std::move(frame));
  rx_kick_.Set();
}

double Nic::WireUtilization() const {
  Nanos now = const_cast<Nic*>(this)->loop().now();
  return windowed_util_.Update(now, wire_tx_.busy_total(), 1.0);
}

void Nic::OnMmioWrite(uint64_t reg, uint64_t value) {
  switch (reg) {
    case kNicRegReset:
      tx_tail_ = tx_head_ = 0;
      tx_done_ = 0;
      rx_tail_ = rx_head_ = 0;
      rx_completions_ = 0;
      rx_pending_.clear();
      break;
    case kNicRegTxRingBase:
      tx_ring_base_ = value;
      break;
    case kNicRegTxRingSize:
      tx_ring_size_ = value;
      break;
    case kNicRegTxCplAddr:
      tx_cpl_addr_ = value;
      break;
    case kNicRegTxDoorbell:
      if (value > tx_tail_) {
        tx_tail_ = value;
        tx_kick_.Set();
      }
      break;
    case kNicRegRxRingBase:
      rx_ring_base_ = value;
      break;
    case kNicRegRxRingSize:
      rx_ring_size_ = value;
      break;
    case kNicRegRxCplBase:
      rx_cpl_base_ = value;
      break;
    case kNicRegRxDoorbell:
      if (value > rx_tail_) {
        rx_tail_ = value;
        rx_kick_.Set();
      }
      break;
    default:
      break;  // writes to unknown registers are ignored, like real hardware
  }
}

uint64_t Nic::OnMmioRead(uint64_t reg) {
  switch (reg) {
    case kNicRegLinkStatus:
      return link_up_ ? 1 : 0;
    case kNicRegRxDropped:
      return nic_stats_.rx_dropped_no_buffer;
    case kNicRegTxDoorbell:
      return tx_tail_;
    case kNicRegRxDoorbell:
      return rx_tail_;
    default:
      return 0;
  }
}

void Nic::OnAttach() {
  sim::Spawn(TxEngine(generation()));
  sim::Spawn(RxEngine(generation()));
}

void Nic::OnDetach() {
  // Engines observe the generation bump and exit at their next wakeup.
  tx_kick_.Set();
  rx_kick_.Set();
}

void Nic::OnFailure() {
  tx_kick_.Set();
  rx_kick_.Set();
}

void Nic::OnReset() {
  // Attribute the episode: each Wedge() since the last reset was one
  // device-wedge episode (vs nic.link_down_episodes for wire faults).
  wedge_episodes_->Add(gray_stats().wedges - wedges_seen_);
  wedges_seen_ = gray_stats().wedges;
  // Wake the old engines so they observe the generation bump and exit.
  tx_kick_.Set();
  rx_kick_.Set();
  // BAR state comes up clean, as after a real FLR; the driver must
  // reprogram the rings before the NIC moves traffic again.
  tx_ring_base_ = tx_ring_size_ = tx_cpl_addr_ = 0;
  tx_tail_ = tx_head_ = tx_done_ = 0;
  rx_ring_base_ = rx_ring_size_ = rx_cpl_base_ = 0;
  rx_tail_ = rx_head_ = rx_completions_ = 0;
  rx_pending_.clear();
  if (attached()) {
    sim::Spawn(TxEngine(generation()));
    sim::Spawn(RxEngine(generation()));
  }
}

bool Nic::EngineShouldExit(uint64_t my_generation) const {
  return generation() != my_generation;
}

sim::Task<> Nic::TxEngine(uint64_t my_generation) {
  // Descriptor claims are serial; frame DMA + transmit runs pipelined up
  // to pipeline_depth (real NICs keep many DMA reads in flight).
  while (!EngineShouldExit(my_generation)) {
    if (tx_head_ >= tx_tail_ || tx_ring_size_ == 0) {
      co_await tx_kick_.Wait();
      tx_kick_.Reset();
      continue;
    }
    co_await tx_pipe_->Acquire();
    if (EngineShouldExit(my_generation)) {
      tx_pipe_->Release();
      co_return;
    }
    uint64_t idx = tx_head_ % tx_ring_size_;
    ++tx_head_;
    sim::Spawn(TxOne(my_generation, idx));
  }
}

sim::Task<> Nic::TxOne(uint64_t my_generation, uint64_t idx) {
  std::array<std::byte, kNicTxDescSize> desc;
  Status st = co_await DmaRead(tx_ring_base_ + idx * kNicTxDescSize, desc);
  if (!st.ok()) {
    tx_pipe_->Release();
    co_return;  // detached or failed mid-operation
  }
  uint64_t buf_addr = GetU64(desc.data());
  uint32_t len = GetU32(desc.data() + 8);
  uint64_t dst_mac = GetU64(desc.data() + 16);  // cookie field carries dst

  netsim::Frame frame;
  frame.src = mac_;
  frame.dst = dst_mac;
  frame.payload.resize(len);
  st = co_await DmaRead(buf_addr, frame.payload);
  if (st.ok()) {
    co_await sim::Delay(loop(), config_.tx_per_packet);
    if (link_up_ && network_ != nullptr && !EngineShouldExit(my_generation)) {
      // Serialize onto our wire, then hand to the fabric.
      Nanos done = wire_tx_.Acquire(loop().now(), frame.wire_size());
      co_await sim::WaitUntil(loop(), done);
      ++nic_stats_.tx_frames;
      nic_stats_.tx_bytes += len;
      network_->Transmit(std::move(frame));
    } else {
      ++nic_stats_.dropped_link_down;
    }
  }
  ++tx_done_;
  if (tx_cpl_addr_ != 0 && !EngineShouldExit(my_generation)) {
    std::array<std::byte, 8> cpl;
    PutU64(cpl.data(), tx_done_);
    (void)co_await DmaWrite(tx_cpl_addr_, cpl);
  }
  tx_pipe_->Release();
}

sim::Task<> Nic::RxEngine(uint64_t my_generation) {
  // Buffer slots and completion sequence numbers are claimed serially (so
  // the driver sees an in-order completion ring); per-frame DMA runs
  // pipelined.
  while (!EngineShouldExit(my_generation)) {
    if (rx_pending_.empty()) {
      co_await rx_kick_.Wait();
      rx_kick_.Reset();
      continue;
    }
    netsim::Frame frame = std::move(rx_pending_.front());
    rx_pending_.pop_front();

    if (rx_head_ >= rx_tail_ || rx_ring_size_ == 0) {
      ++nic_stats_.rx_dropped_no_buffer;
      continue;
    }
    co_await rx_pipe_->Acquire();
    if (EngineShouldExit(my_generation)) {
      rx_pipe_->Release();
      co_return;
    }
    uint64_t idx = rx_head_ % rx_ring_size_;
    ++rx_head_;
    uint64_t seq = ++rx_completions_;
    sim::Spawn(RxOne(my_generation, idx, seq, std::move(frame)));
  }
}

sim::Task<> Nic::RxOne(uint64_t my_generation, uint64_t idx, uint64_t seq,
                       netsim::Frame frame) {
  std::array<std::byte, kNicRxDescSize> desc;
  Status st = co_await DmaRead(rx_ring_base_ + idx * kNicRxDescSize, desc);
  if (!st.ok()) {
    rx_pipe_->Release();
    co_return;
  }
  uint64_t buf_addr = GetU64(desc.data());
  uint32_t buf_len = GetU32(desc.data() + 8);
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  if (len > buf_len) {
    // Oversized frame for the posted buffer: drop, but still publish a
    // zero-length completion — the sequence number was claimed and the
    // driver must be able to recycle the buffer.
    ++nic_stats_.rx_dropped_no_buffer;
    std::array<std::byte, kNicRxCplSize> cpl{};
    PutU64(cpl.data(), seq);
    PutU32(cpl.data() + 8, static_cast<uint32_t>(idx));
    PutU32(cpl.data() + 12, 0);
    uint64_t cpl_addr = rx_cpl_base_ + ((seq - 1) % rx_ring_size_) * kNicRxCplSize;
    (void)co_await DmaWrite(cpl_addr, cpl);
    rx_pipe_->Release();
    co_return;
  }

  co_await sim::Delay(loop(), config_.rx_per_packet);
  st = co_await DmaWrite(buf_addr, frame.payload);
  if (st.ok() && !EngineShouldExit(my_generation)) {
    // Publish the completion entry; seq is written with the payload in one
    // 64 B line so the driver's poll sees a consistent record.
    std::array<std::byte, kNicRxCplSize> cpl{};
    PutU64(cpl.data(), seq);
    PutU32(cpl.data() + 8, static_cast<uint32_t>(idx));
    PutU32(cpl.data() + 12, len);
    uint64_t cpl_addr = rx_cpl_base_ + ((seq - 1) % rx_ring_size_) * kNicRxCplSize;
    st = co_await DmaWrite(cpl_addr, cpl);
    if (st.ok()) {
      ++nic_stats_.rx_frames;
      nic_stats_.rx_bytes += len;
    }
  }
  rx_pipe_->Release();
}

}  // namespace cxlpool::devices
