// Observability: the bundle a harness threads through the stack. One object
// owns the three pillars —
//   tracer()  : distributed tracing (null when tracing disabled, so hook
//               sites stay one-branch-cheap),
//   metrics() : the shared metrics registry,
//   flight()  : the per-host flight recorder —
// plus the CHECK-failure integration that dumps the flight recorder when an
// invariant trips.
//
// Components accept `obs::Observability*` in their Config (null = fully
// disabled) and must behave identically either way: observability is pure
// observation. Components that can run standalone (tests constructing an
// Orchestrator or Nic directly) keep a private fallback Registry so their
// metrics calls always have a home.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <string>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace cxlpool::obs {

class Observability {
 public:
  struct Options {
    bool tracing = true;
    size_t flight_ring_slots = 256;
  };

  Observability();  // default Options
  explicit Observability(Options options);
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;
  ~Observability();

  // Null when tracing is disabled — callers hold the pointer and pass it to
  // MaybeStartTrace/MaybeStartSpan.
  Tracer* tracer() { return options_.tracing ? &tracer_ : nullptr; }
  Registry& metrics() { return metrics_; }
  FlightRecorder& flight() { return flight_; }

  // Installs a process-global CHECK-failure hook that dumps the flight
  // recorder to stderr. The dump is also retained in last_dump() so tests
  // can assert on its contents without aborting.
  void InstallCheckHook();

  // Dumps the flight recorder to stderr with a reason line and retains the
  // text in last_dump(). Violation paths (coherence checker, chaos
  // invariants) call this directly; the CHECK hook routes here too.
  void DumpFlight(const std::string& reason);
  const std::string& last_dump() const { return last_dump_; }
  uint64_t dumps() const { return dumps_; }

 private:
  Options options_;
  Tracer tracer_;
  Registry metrics_;
  FlightRecorder flight_;
  std::string last_dump_;
  uint64_t dumps_ = 0;
  bool hook_installed_ = false;
};

}  // namespace cxlpool::obs

#endif  // SRC_OBS_OBS_H_
