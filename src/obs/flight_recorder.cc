#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdarg>
#include <cstring>

namespace cxlpool::obs {

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::Ring& FlightRecorder::RingFor(uint32_t host) {
  if (host >= rings_.size()) {
    rings_.resize(host + 1);
  }
  Ring& ring = rings_[host];
  if (ring.slots.empty()) {
    ring.slots.resize(options_.ring_slots);
  }
  return ring;
}

void FlightRecorder::Note(Nanos now, uint32_t host, const char* category,
                          const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  NoteV(now, host, category, fmt, args);
  va_end(args);
}

void FlightRecorder::NoteV(Nanos now, uint32_t host, const char* category,
                           const char* fmt, va_list args) {
  Ring& ring = RingFor(host);
  Event& e = ring.slots[ring.next % ring.slots.size()];
  if (ring.next >= ring.slots.size()) {
    ++overwritten_;
  }
  ++ring.next;
  ++recorded_;
  e.at = now;
  e.host = host;
  std::snprintf(e.category, sizeof(e.category), "%s", category);
  std::vsnprintf(e.msg, sizeof(e.msg), fmt, args);
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::vector<Event> out;
  for (const Ring& ring : rings_) {
    if (ring.slots.empty()) {
      continue;
    }
    uint64_t count = std::min<uint64_t>(ring.next, ring.slots.size());
    uint64_t first = ring.next - count;
    for (uint64_t i = first; i < ring.next; ++i) {
      out.push_back(ring.slots[i % ring.slots.size()]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  return out;
}

std::string FlightRecorder::Dump() const {
  std::vector<Event> events = Snapshot();
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "--- flight recorder: %zu events (%llu recorded, %llu "
                "overwritten) ---\n",
                events.size(), static_cast<unsigned long long>(recorded_),
                static_cast<unsigned long long>(overwritten_));
  out += line;
  for (const Event& e : events) {
    std::snprintf(line, sizeof(line), "[%12lld ns] host=%u %-12s %s\n",
                  static_cast<long long>(e.at), e.host, e.category, e.msg);
    out += line;
  }
  out += "--- end flight recorder ---\n";
  return out;
}

}  // namespace cxlpool::obs
