#include "src/obs/registry.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/json.h"

namespace cxlpool::obs {

Registry::Key Registry::MakeKey(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return {name, std::move(labels)};
}

Registry::Series* Registry::GetSeries(const std::string& name, Labels labels,
                                      Kind kind) {
  Key key = MakeKey(name, std::move(labels));
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series s;
    s.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        s.histogram = std::make_unique<sim::Histogram>();
        break;
    }
    it = series_.emplace(std::move(key), std::move(s)).first;
  }
  CXLPOOL_CHECK_MSG(it->second.kind == kind,
                    "metric '%s' re-registered as a different kind",
                    name.c_str());
  return &it->second;
}

Counter* Registry::GetCounter(const std::string& name, Labels labels) {
  return GetSeries(name, std::move(labels), Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels) {
  return GetSeries(name, std::move(labels), Kind::kGauge)->gauge.get();
}

sim::Histogram* Registry::GetHistogram(const std::string& name, Labels labels) {
  return GetSeries(name, std::move(labels), Kind::kHistogram)->histogram.get();
}

void Registry::RegisterProbe(const std::string& name, Labels labels,
                             std::function<int64_t()> fn) {
  probes_[MakeKey(name, std::move(labels))] = std::move(fn);
}

const Counter* Registry::FindCounter(const std::string& name,
                                     const Labels& labels) const {
  auto it = series_.find(MakeKey(name, labels));
  if (it == series_.end() || it->second.kind != Kind::kCounter) {
    return nullptr;
  }
  return it->second.counter.get();
}

const sim::Histogram* Registry::FindHistogram(const std::string& name,
                                              const Labels& labels) const {
  auto it = series_.find(MakeKey(name, labels));
  if (it == series_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

namespace {

void AppendKey(std::string* out, const std::string& name,
               const Labels& labels) {
  *out += "\"name\":\"" + JsonEscape(name) + "\",\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ",";
    first = false;
    *out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  *out += "}";
}

}  // namespace

std::string Registry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, series] : series_) {
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendKey(&out, key.first, key.second);
    switch (series.kind) {
      case Kind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" +
               std::to_string(series.counter->value());
        break;
      case Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" +
               std::to_string(series.gauge->value());
        break;
      case Kind::kHistogram: {
        const sim::Histogram& h = *series.histogram;
        out += ",\"kind\":\"histogram\",\"count\":" +
               std::to_string(h.count()) + ",\"mean\":" + JsonDouble(h.mean()) +
               ",\"min\":" + std::to_string(h.min()) +
               ",\"max\":" + std::to_string(h.max()) +
               ",\"p50\":" + std::to_string(h.Percentile(0.50)) +
               ",\"p90\":" + std::to_string(h.Percentile(0.90)) +
               ",\"p99\":" + std::to_string(h.Percentile(0.99)) +
               ",\"p999\":" + std::to_string(h.Percentile(0.999));
        break;
      }
    }
    out += "}";
  }
  for (const auto& [key, fn] : probes_) {
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendKey(&out, key.first, key.second);
    out += ",\"kind\":\"gauge\",\"value\":" + std::to_string(fn());
    out += "}";
  }
  out += "]}";
  return out;
}

Status Registry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open metrics output file: " + path);
  }
  std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return OkStatus();
}

std::string BenchJson(const std::string& bench, int64_t sim_ns,
                      const Registry& registry) {
  // Registry::ToJson() is "{\"metrics\":[...]}" — splice the bench identity
  // in front of its first key.
  std::string body = registry.ToJson();
  return "{\"bench\":\"" + JsonEscape(bench) +
         "\",\"sim_ns\":" + std::to_string(sim_ns) + "," + body.substr(1);
}

Status WriteBenchJson(const std::string& path, const std::string& bench,
                      int64_t sim_ns, const Registry& registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open bench output file: " + path);
  }
  std::string json = BenchJson(bench, sim_ns, registry);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return OkStatus();
}

}  // namespace cxlpool::obs
