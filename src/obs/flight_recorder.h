// FlightRecorder: per-host rings of the last N structured events, kept in
// fixed-size preallocated storage so recording never allocates on the hot
// path. The payoff is entirely at failure time: when a CHECK fires or the
// coherence checker reports a violation, the recorder dumps every host's
// recent history — turning "digest mismatch at t=83ms" into the last few
// hundred operations that led up to it.
//
// Events are plain fixed-width structs (no std::string) so a ring slot is a
// memcpy-sized write; messages longer than the slot are truncated, which is
// the right trade for a post-mortem buffer.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace cxlpool::obs {

class FlightRecorder {
 public:
  struct Options {
    size_t ring_slots = 256;  // per host
  };

  struct Event {
    Nanos at = 0;
    uint32_t host = 0;
    char category[16] = {0};  // e.g. "mmio", "chaos", "coherence"
    char msg[104] = {0};
  };

  FlightRecorder();  // default Options
  explicit FlightRecorder(Options options) : options_(options) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Records one event into `host`'s ring, overwriting the oldest when full.
  // printf-style; truncates to the slot size.
  void Note(Nanos now, uint32_t host, const char* category, const char* fmt,
            ...) __attribute__((format(printf, 5, 6)));
  // va_list variant for wrappers that add their own context.
  void NoteV(Nanos now, uint32_t host, const char* category, const char* fmt,
             va_list args);

  // All retained events across hosts, oldest first (stable order: time,
  // then host, then intra-ring sequence).
  std::vector<Event> Snapshot() const;

  // Human-readable dump of Snapshot(); what the failure hooks print.
  std::string Dump() const;

  uint64_t recorded() const { return recorded_; }
  uint64_t overwritten() const { return overwritten_; }
  size_t host_count() const { return rings_.size(); }

 private:
  struct Ring {
    std::vector<Event> slots;
    uint64_t next = 0;  // monotonic write index; slot = next % size
  };

  Ring& RingFor(uint32_t host);

  Options options_;
  std::vector<Ring> rings_;  // indexed by host id
  uint64_t recorded_ = 0;
  uint64_t overwritten_ = 0;
};

}  // namespace cxlpool::obs

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
