// Distributed tracing across simulated hosts.
//
// A TraceContext (trace id + parent span id) is minted at the origin of an
// operation (e.g. a forwarded MMIO write) and propagated in-band: the RPC
// request wire format carries it across the CXL channel, so the home agent's
// spans attach to the client's trace even though the two hosts share no
// memory besides the pool. Spans carry sim-clock timestamps and export as
// Chrome/Perfetto trace_event JSON (`chrome://tracing` loads the file
// directly; pid = simulated host, tid = trace id).
//
// Cost model: every hook site holds a nullable Tracer*. With tracing off the
// pointer is null and each hook is one branch — the same pattern as
// cxl::CoherenceObserver. Tracing itself is pure observation: it never
// advances the sim clock, draws randomness, or changes frame sizes (the
// trace fields ride in the request header whether or not they are set), so
// same-seed runs are bit-identical with tracing on or off.
//
// Span lifetime is explicit: End(now) publishes the span; dropping an active
// Span without End() loses it (counted in dropped_spans()). This is
// deliberate — an explicit End is what lets tools/lint_tasks.py flag leaked
// spans statically.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/stats.h"

namespace cxlpool::obs {

// Propagated half of a span: enough for a child on another host to attach.
// trace_id 0 means "not traced" — the zero context is what untraced
// operations carry on the wire.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // parent span for downstream work
  bool traced() const { return trace_id != 0; }
};

// A finished span as stored by the tracer and exported to JSON.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  const char* name = "";        // static string literal (phase name)
  uint32_t host = 0;            // simulated host the span ran on
  Nanos start = 0;
  Nanos end = 0;
  Nanos duration() const { return end - start; }
};

class Tracer;

// Movable handle for an open span. Default-constructed (or moved-from)
// spans are inert: End() is a no-op and context() is the zero context, so
// call sites never branch on "is tracing on" beyond obtaining the handle.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { MoveFrom(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      Abandon();
      MoveFrom(other);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Abandon(); }

  // Publishes the span with the given end timestamp. Idempotent: the first
  // End wins, later calls are no-ops.
  void End(Nanos now);

  // Context children should inherit (this span as parent). Zero when inert.
  TraceContext context() const {
    return active() ? TraceContext{trace_id_, span_id_} : TraceContext{};
  }
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, uint64_t trace_id, uint64_t span_id, uint64_t parent,
       const char* name, uint32_t host, Nanos start)
      : tracer_(tracer),
        trace_id_(trace_id),
        span_id_(span_id),
        parent_span_id_(parent),
        name_(name),
        host_(host),
        start_(start) {}

  void MoveFrom(Span& other) {
    tracer_ = other.tracer_;
    trace_id_ = other.trace_id_;
    span_id_ = other.span_id_;
    parent_span_id_ = other.parent_span_id_;
    name_ = other.name_;
    host_ = other.host_;
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  void Abandon();

  Tracer* tracer_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  const char* name_ = "";
  uint32_t host_ = 0;
  Nanos start_ = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a root span, minting a fresh trace id. Ids are small monotonic
  // integers — deterministic, and stable across same-seed runs.
  Span StartTrace(const char* name, uint32_t host, Nanos start);

  // Opens a child span under `parent`. Inert span if `parent` is untraced
  // (the op's origin was not sampled), so propagation composes: untraced
  // contexts stay untraced through every layer.
  Span StartSpan(const char* name, uint32_t host, TraceContext parent,
                 Nanos start);

  // Records an already-finished span and returns its context for further
  // children. Used where the start timestamp traveled on the wire: the
  // receiver materializes the channel-flight span retroactively at dequeue
  // time (start = sender's send time, end = local now).
  TraceContext RecordSpan(const char* name, uint32_t host, TraceContext parent,
                          Nanos start, Nanos end);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  uint64_t dropped_spans() const { return dropped_spans_; }
  uint64_t trace_count() const { return next_trace_id_ - 1; }

  // All spans of one trace, in recording order.
  std::vector<SpanRecord> TraceSpans(uint64_t trace_id) const;

  // Duration histogram per span name — the per-phase latency breakdown the
  // benches print.
  std::map<std::string, sim::Histogram> PhaseHistograms() const;

  // Chrome trace_event JSON ("X" complete events; ts/dur in microseconds).
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  friend class Span;
  void Finish(const Span& span, Nanos end);

  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  std::vector<SpanRecord> spans_;
  uint64_t dropped_spans_ = 0;
};

// One-branch helpers for hook sites holding a nullable Tracer*.
inline Span MaybeStartTrace(Tracer* tracer, const char* name, uint32_t host,
                            Nanos start) {
  if (tracer == nullptr) {
    return Span();
  }
  return tracer->StartTrace(name, host, start);
}

inline Span MaybeStartSpan(Tracer* tracer, const char* name, uint32_t host,
                           TraceContext parent, Nanos start) {
  if (tracer == nullptr || !parent.traced()) {
    return Span();
  }
  return tracer->StartSpan(name, host, parent, start);
}

}  // namespace cxlpool::obs

#endif  // SRC_OBS_TRACE_H_
