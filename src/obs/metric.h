// Metric handle types owned by obs::Registry. Handles are plain in-process
// accumulators — a simulator run is single-threaded, so there is no atomics
// or sharding story; the interesting part is the naming/labeling scheme and
// the single export path (Registry::ToJson).
#ifndef SRC_OBS_METRIC_H_
#define SRC_OBS_METRIC_H_

#include <cstdint>

namespace cxlpool::obs {

// Monotonic counter. Increment-only by contract; the registry export relies
// on monotonicity when computing deltas across snapshots.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  void Inc() { value_ += 1; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (queue depth, leases held, quarantined devices).
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t d) { value_ += d; }
  void Sub(int64_t d) { value_ -= d; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

}  // namespace cxlpool::obs

#endif  // SRC_OBS_METRIC_H_
