#include "src/obs/trace.h"

#include <cstdio>

#include "src/obs/json.h"

namespace cxlpool::obs {

void Span::End(Nanos now) {
  if (tracer_ == nullptr) {
    return;
  }
  tracer_->Finish(*this, now);
  tracer_ = nullptr;
}

void Span::Abandon() {
  if (tracer_ != nullptr) {
    ++tracer_->dropped_spans_;
    tracer_ = nullptr;
  }
}

Span Tracer::StartTrace(const char* name, uint32_t host, Nanos start) {
  uint64_t trace_id = next_trace_id_++;
  uint64_t span_id = next_span_id_++;
  return Span(this, trace_id, span_id, /*parent=*/0, name, host, start);
}

Span Tracer::StartSpan(const char* name, uint32_t host, TraceContext parent,
                       Nanos start) {
  if (!parent.traced()) {
    return Span();
  }
  uint64_t span_id = next_span_id_++;
  return Span(this, parent.trace_id, span_id, parent.span_id, name, host,
              start);
}

TraceContext Tracer::RecordSpan(const char* name, uint32_t host,
                                TraceContext parent, Nanos start, Nanos end) {
  if (!parent.traced()) {
    return TraceContext{};
  }
  uint64_t span_id = next_span_id_++;
  spans_.push_back(SpanRecord{parent.trace_id, span_id, parent.span_id, name,
                              host, start, end});
  return TraceContext{parent.trace_id, span_id};
}

void Tracer::Finish(const Span& span, Nanos end) {
  spans_.push_back(SpanRecord{span.trace_id_, span.span_id_,
                              span.parent_span_id_, span.name_, span.host_,
                              span.start_, end});
}

std::vector<SpanRecord> Tracer::TraceSpans(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans_) {
    if (s.trace_id == trace_id) {
      out.push_back(s);
    }
  }
  return out;
}

std::map<std::string, sim::Histogram> Tracer::PhaseHistograms() const {
  std::map<std::string, sim::Histogram> by_phase;
  for (const SpanRecord& s : spans_) {
    by_phase[s.name].Add(s.duration());
  }
  return by_phase;
}

std::string Tracer::ToChromeTraceJson() const {
  // "X" (complete) events; ts/dur are microseconds as doubles, so ns
  // sim-clock values keep full resolution as fractional us. pid groups rows
  // by simulated host; tid separates concurrent traces within a host.
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const SpanRecord& s : spans_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"cxlpool\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%llu,"
                  "\"args\":{\"trace_id\":%llu,\"span_id\":%llu,"
                  "\"parent_span_id\":%llu}}",
                  s.name, static_cast<double>(s.start) / 1000.0,
                  static_cast<double>(s.duration()) / 1000.0, s.host,
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_span_id));
    out += buf;
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open trace output file: " + path);
  }
  std::string json = ToChromeTraceJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return OkStatus();
}

}  // namespace cxlpool::obs
