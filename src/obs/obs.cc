#include "src/obs/obs.h"

#include <cstdio>

#include "src/common/check.h"

namespace cxlpool::obs {

Observability::Observability() : Observability(Options()) {}

Observability::Observability(Options options)
    : options_(options), flight_(FlightRecorder::Options{
                             .ring_slots = options.flight_ring_slots}) {}

Observability::~Observability() {
  if (hook_installed_) {
    SetCheckFailureHook({});
  }
}

void Observability::InstallCheckHook() {
  hook_installed_ = true;
  SetCheckFailureHook([this] { DumpFlight("CHECK failure"); });
}

void Observability::DumpFlight(const std::string& reason) {
  ++dumps_;
  last_dump_ = "flight-recorder dump (" + reason + ")\n" + flight_.Dump();
  std::fwrite(last_dump_.data(), 1, last_dump_.size(), stderr);
}

}  // namespace cxlpool::obs
