// Minimal JSON emission helpers for the observability exporters. This is a
// writer, not a parser: the simulator only ever produces JSON (metrics
// snapshots, Chrome trace_event files); consumers are Perfetto, the CI
// schema check, and plotting scripts.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace cxlpool::obs {

// Escapes a string for inclusion inside JSON double quotes.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Formats a double with enough precision for latency values without emitting
// "nan"/"inf" (invalid JSON) for degenerate inputs.
inline std::string JsonDouble(double v) {
  if (v != v || v > 1e300 || v < -1e300) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace cxlpool::obs

#endif  // SRC_OBS_JSON_H_
