// obs::Registry: the single home for named metrics. Components ask for a
// handle once (name + label set) and bump it on their hot path; the registry
// owns storage, deduplicates by (name, labels), and exports everything as
// one JSON snapshot. This replaces the per-component Stats structs and
// accessor plumbing that PRs 1-4 accumulated — a soak run or bench ends with
// one WriteJson() instead of N hand-rolled printf blocks.
//
// Handle pointers are stable for the life of the registry (values are
// heap-allocated and never rehashed away), so callers cache the pointer at
// construction time and pay one indirection per bump.
//
// Probes cover the migration path for stats that still live in legacy
// structs: RegisterProbe(name, labels, fn) polls `fn` at snapshot time, so a
// component exports through the registry without moving its counters yet.
#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metric.h"
#include "src/sim/stats.h"

namespace cxlpool::obs {

// Label set: sorted at registration time so {"a","1"},{"b","2"} and
// {"b","2"},{"a","1"} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns the handle for (name, labels), creating it on first use. A
  // repeat call with the same key returns the same pointer; asking for the
  // same key as a different kind is a programmer error and aborts.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  sim::Histogram* GetHistogram(const std::string& name, Labels labels = {});

  // Callback gauge, polled at snapshot time. Re-registering the same key
  // replaces the callback (components rebind across restarts).
  void RegisterProbe(const std::string& name, Labels labels,
                     std::function<int64_t()> fn);

  // Lookup without creation; nullptr / nullopt when absent. Histograms and
  // counters are the ones tests assert on.
  const Counter* FindCounter(const std::string& name,
                             const Labels& labels = {}) const;
  const sim::Histogram* FindHistogram(const std::string& name,
                                      const Labels& labels = {}) const;

  size_t series_count() const { return series_.size() + probes_.size(); }

  // One JSON object: {"metrics":[{"name","labels","kind",...value...}]}.
  // Counters/gauges export a value; histograms export count/mean/percentiles.
  // Probes are polled here.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<sim::Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  static Key MakeKey(const std::string& name, Labels labels);
  Series* GetSeries(const std::string& name, Labels labels, Kind kind);

  std::map<Key, Series> series_;
  std::map<Key, std::function<int64_t()>> probes_;
};

// BENCH_<name>.json snapshot: the registry snapshot wrapped with bench
// identity — {"bench": name, "sim_ns": N, "metrics": [...]}. Every bench's
// --json flag writes this shape and tools/check_obs_json.py validates it
// in CI.
std::string BenchJson(const std::string& bench, int64_t sim_ns,
                      const Registry& registry);
Status WriteBenchJson(const std::string& path, const std::string& bench,
                      int64_t sim_ns, const Registry& registry);

}  // namespace cxlpool::obs

#endif  // SRC_OBS_REGISTRY_H_
