// KV wire format: versioned request/response frames carried in UDP
// payloads, memcached's binary-protocol shape reduced to GET/SET/DELETE.
//
// Decode follows the repo's fuzz discipline (PR 9): every length is
// checked before any Reader touches the bytes, hostile input yields a
// typed InvalidArgument/Unimplemented — never a CHECK, never a crash.
//
// Request frame (little-endian):
//   magic      u8   = kKvMagic
//   version    u8   = kKvWireVersion
//   opcode     u8   (Opcode)
//   flags      u8   (reserved; unknown bits ignored on decode)
//   client_id  u32  (loadgen connection identity)
//   seq        u64  (per-client sequence; responses echo it)
//   deadline   u64  (absolute sim ns; 0 = none — propagated into SSD ops)
//   key_len    u16
//   value_len  u32
//   key bytes, then value bytes (SET only)
//
// Response frame:
//   magic      u8, version u8, opcode u8 (echoed), status u8 (WireStatus)
//   origin     u8   (Origin: where a GET hit was served from), pad u8 x3
//   client_id  u32
//   seq        u64
//   value_len  u32
//   value bytes (GET hit only)
#ifndef SRC_KV_WIRE_H_
#define SRC_KV_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace cxlpool::kv {

inline constexpr uint8_t kKvMagic = 0xC5;
inline constexpr uint8_t kKvWireVersion = 1;
inline constexpr size_t kRequestHeaderSize = 30;
inline constexpr size_t kResponseHeaderSize = 24;
inline constexpr size_t kMaxKeyLen = 250;  // memcached's classic bound

enum class Opcode : uint8_t {
  kGet = 1,
  kSet = 2,
  kDelete = 3,
};

// Status on the wire; a compressed projection of StatusCode for the KV
// contract (clients must not see raw internal codes).
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kOverloaded = 2,        // shed at the KV front; never retried blindly
  kDeadlineExceeded = 3,  // expired before or during service
  kDataLoss = 4,          // backing line poisoned; entry dropped
  kStoreFull = 5,         // no buffer and no evictable entry
  kInvalidArgument = 6,   // key/value bounds
};

// Where a GET hit was served from (SLO attribution: pool hits are fast,
// SSD hydrations pay the storage round trip).
enum class Origin : uint8_t {
  kNone = 0,
  kPool = 1,
  kSsd = 2,
};

struct Request {
  Opcode opcode = Opcode::kGet;
  uint8_t flags = 0;
  uint32_t client_id = 0;
  uint64_t seq = 0;
  Nanos deadline = 0;  // absolute; 0 = none
  std::string key;
  std::vector<std::byte> value;  // SET only
};

struct Response {
  Opcode opcode = Opcode::kGet;
  WireStatus status = WireStatus::kOk;
  Origin origin = Origin::kNone;
  uint32_t client_id = 0;
  uint64_t seq = 0;
  std::vector<std::byte> value;  // GET hit only
};

std::vector<std::byte> EncodeRequest(const Request& req);
std::vector<std::byte> EncodeResponse(const Response& rsp);

// Typed decode errors: InvalidArgument on truncation / bad magic / bad
// opcode / length overrun, Unimplemented on a version we don't speak.
Result<Request> DecodeRequest(std::span<const std::byte> payload);
Result<Response> DecodeResponse(std::span<const std::byte> payload);

}  // namespace cxlpool::kv

#endif  // SRC_KV_WIRE_H_
