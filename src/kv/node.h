// KvNode: the memcached-style server front. Pulls datagrams off a bound
// UdpSocket, decodes KV frames (typed errors, hostile bytes never crash),
// applies the PR 6 overload contract at the front door — admission bound
// `max_inflight` sheds with kOverloaded before any store/SSD work, expired
// requests are answered kDeadlineExceeded without touching the datapath —
// and dispatches the rest to the sharded Store with the client's absolute
// deadline propagated through (into SSD overflow ops when the key is cold).
#ifndef SRC_KV_NODE_H_
#define SRC_KV_NODE_H_

#include <memory>

#include "src/kv/store.h"
#include "src/kv/wire.h"
#include "src/obs/registry.h"
#include "src/stack/udp.h"

namespace cxlpool::kv {

struct NodeConfig {
  uint16_t port = 11211;
  // Receive loops pulling from the socket (dispatchers).
  int workers = 2;
  // Admission bound: requests beyond this many concurrent services are
  // shed kOverloaded at the front, before the store sees them.
  uint64_t max_inflight = 64;
  Nanos recv_poll = 50 * kMicrosecond;
};

class KvNode {
 public:
  // `stack` must be Start()ed and outlive the node; `store` likewise.
  KvNode(stack::UdpStack* stack, Store* store, NodeConfig config,
         obs::Registry* registry, obs::Labels labels = {});

  // Binds the port and spawns the worker loops (detached; they exit when
  // `stop` fires or the stack's NIC path dies).
  Status Start(sim::StopToken& stop);

  Store& store() { return *store_; }
  uint64_t inflight() const { return inflight_; }
  // Sim time of the last successfully served request — chaos recovery
  // probes read this to decide "the node is serving again".
  Nanos last_served_at() const { return last_served_at_; }

 private:
  sim::Task<> Worker(sim::StopToken& stop);
  sim::Task<> Serve(stack::Datagram d);
  static WireStatus MapStatus(const Status& st);

  stack::UdpStack* stack_;
  Store* store_;
  NodeConfig config_;
  stack::UdpSocket* sock_ = nullptr;
  uint64_t inflight_ = 0;
  Nanos last_served_at_ = 0;

  obs::Counter* rx_requests_ = nullptr;
  obs::Counter* decode_errors_ = nullptr;
  obs::Counter* shed_front_ = nullptr;
  obs::Counter* expired_front_ = nullptr;
  obs::Counter* replies_sent_ = nullptr;
  obs::Counter* reply_send_failures_ = nullptr;
  sim::Histogram* service_ns_ = nullptr;
};

}  // namespace cxlpool::kv

#endif  // SRC_KV_NODE_H_
