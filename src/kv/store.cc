#include "src/kv/store.h"

#include <algorithm>

#include "src/common/check.h"

namespace cxlpool::kv {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Releases the shard gate on every exit path of an op coroutine.
struct GateGuard {
  explicit GateGuard(sim::Semaphore* gate) : gate(gate) {}
  GateGuard(const GateGuard&) = delete;
  GateGuard& operator=(const GateGuard&) = delete;
  ~GateGuard() { gate->Release(); }
  sim::Semaphore* gate;
};

void Bump(obs::Counter* c) {
  if (c != nullptr) {
    c->Inc();
  }
}

}  // namespace

Store::Store(stack::BufferPool* pool, core::VirtualSsd* ssd,
             uint64_t ssd_capacity_bytes, StoreConfig config,
             obs::Registry* registry, obs::Labels labels)
    : pool_(pool), ssd_(ssd), config_(config) {
  CXLPOOL_CHECK(config_.shards >= 1);
  sim::EventLoop& loop = pool_->memory().host().loop();
  shards_.reserve(static_cast<size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(loop));
  }
  if (ssd_ != nullptr) {
    uint64_t slot_bytes =
        static_cast<uint64_t>(SectorsPerSlot()) * devices::kSsdSectorSize;
    uint64_t slots = ssd_capacity_bytes / slot_bytes;
    free_slots_.reserve(slots);
    // LIFO pop order; push in reverse so slot 0 is handed out first.
    for (uint64_t i = slots; i-- > 0;) {
      free_slots_.push_back(i);
    }
  }
  if (registry != nullptr) {
    gets_ = registry->GetCounter("kv.gets", labels);
    get_hits_pool_ = registry->GetCounter("kv.get_hits_pool", labels);
    get_hits_ssd_ = registry->GetCounter("kv.get_hits_ssd", labels);
    get_misses_ = registry->GetCounter("kv.get_misses", labels);
    sets_ = registry->GetCounter("kv.sets", labels);
    deletes_ = registry->GetCounter("kv.deletes", labels);
    evictions_ = registry->GetCounter("kv.evictions", labels);
    hydrations_ = registry->GetCounter("kv.hydrations", labels);
    poison_drops_ = registry->GetCounter("kv.poison_drops", labels);
    overloaded_ = registry->GetCounter("kv.overloaded", labels);
    expired_ = registry->GetCounter("kv.expired", labels);
    ssd_errors_ = registry->GetCounter("kv.ssd_errors", labels);
    registry->RegisterProbe("kv.resident_entries", labels, [this]() {
      return static_cast<int64_t>(resident_entries_);
    });
    registry->RegisterProbe("kv.spilled_entries", labels, [this]() {
      return static_cast<int64_t>(spilled_entries_);
    });
  }
}

size_t Store::ShardOf(const std::string& key) const {
  return static_cast<size_t>(Fnv1a(key) % shards_.size());
}

uint32_t Store::SectorsPerSlot() const {
  return (pool_->buffer_size() + devices::kSsdSectorSize - 1) /
         devices::kSsdSectorSize;
}

void Store::DropEntry(Shard& shard, const std::string& key, Entry& entry) {
  if (entry.in_pool) {
    pool_->Free(entry.buf_addr);
    shard.lru.erase(entry.lru_it);
    --resident_entries_;
  } else {
    free_slots_.push_back(entry.ssd_slot);
    --spilled_entries_;
  }
  shard.index.erase(key);
}

sim::Task<> Store::ScrubBuffer(uint64_t addr) {
  // Full-line writes heal poisoned media (PR 4 contract); publishing the
  // whole buffer guarantees every line under it is rewritten.
  std::vector<std::byte> zeros(pool_->buffer_size(), std::byte{0});
  (void)co_await pool_->memory().Publish(addr, zeros);
}

sim::Task<Result<std::vector<std::byte>>> Store::ReadResident(
    Shard& shard, const std::string& key, Entry& entry) {
  std::vector<std::byte> out(entry.len);
  Status st = co_await pool_->memory().ReadFresh(entry.buf_addr, out);
  if (st.code() == StatusCode::kDataLoss) {
    // Poisoned backing line: the value is gone. Scrub the buffer clean
    // while the entry still owns it (freeing first would let a concurrent
    // op re-allocate it mid-scrub), then drop the entry and account the
    // key against the soak's documented carve-out budget.
    co_await ScrubBuffer(entry.buf_addr);
    Bump(poison_drops_);
    ++poison_dropped_keys_;
    DropEntry(shard, key, entry);
    co_return DataLoss("kv: value lost to poisoned media");
  }
  if (!st.ok()) {
    co_return st;
  }
  co_return out;
}

sim::Task<Status> Store::EvictOne(Shard& shard, Nanos deadline) {
  if (ssd_ == nullptr || shard.lru.empty()) {
    co_return Overloaded("kv: nothing evictable in shard");
  }
  sim::EventLoop& loop = pool_->memory().host().loop();
  if (deadline > 0 && loop.now() + config_.ssd_min_headroom > deadline) {
    co_return DeadlineExceeded("kv: no headroom for eviction write");
  }
  std::string key = shard.lru.back();
  auto it = shard.index.find(key);
  CXLPOOL_CHECK(it != shard.index.end() && it->second.in_pool);
  Entry& entry = it->second;

  // Probe the value's backing lines before the device DMAs them: a
  // poisoned line surfaces here as a typed drop instead of a mid-transfer
  // device error. The drop frees a buffer, which is what eviction wanted.
  uint32_t nsectors = std::max<uint32_t>(
      1, (entry.len + devices::kSsdSectorSize - 1) / devices::kSsdSectorSize);
  std::vector<std::byte> probe(
      std::min<uint64_t>(static_cast<uint64_t>(nsectors) *
                             devices::kSsdSectorSize,
                         pool_->buffer_size()));
  Status pst = co_await pool_->memory().ReadFresh(entry.buf_addr, probe);
  if (pst.code() == StatusCode::kDataLoss) {
    co_await ScrubBuffer(entry.buf_addr);
    Bump(poison_drops_);
    ++poison_dropped_keys_;
    DropEntry(shard, key, entry);
    co_return OkStatus();  // a buffer was freed; eviction goal met
  }
  if (!pst.ok()) {
    co_return pst;
  }
  if (free_slots_.empty()) {
    co_return Overloaded("kv: cold tier full");
  }
  uint64_t slot = free_slots_.back();
  free_slots_.pop_back();
  uint64_t lba = slot * SectorsPerSlot();
  auto dev = co_await ssd_->WriteBlocks(lba, nsectors, entry.buf_addr, deadline);
  if (!dev.ok() || *dev != devices::kSsdStatusOk) {
    // Write-back failed; the value stays resident and the slot returns.
    free_slots_.push_back(slot);
    if (!dev.ok()) {
      if (dev.status().code() == StatusCode::kDeadlineExceeded) {
        co_return dev.status();
      }
      Bump(ssd_errors_);
      co_return dev.status();
    }
    Bump(ssd_errors_);
    co_return Internal("kv: SSD write-back rejected by device");
  }
  pool_->Free(entry.buf_addr);
  shard.lru.erase(entry.lru_it);
  --resident_entries_;
  entry.in_pool = false;
  entry.ssd_slot = slot;
  ++spilled_entries_;
  Bump(evictions_);
  co_return OkStatus();
}

sim::Task<Result<uint64_t>> Store::AllocBuffer(Shard& shard, Nanos deadline) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    auto addr = pool_->Alloc();
    if (addr.ok()) {
      co_return *addr;
    }
    Status ev = co_await EvictOne(shard, deadline);
    if (!ev.ok()) {
      co_return ev;
    }
  }
  co_return Overloaded("kv: buffer pool exhausted");
}

sim::Task<Result<Store::GetResult>> Store::Get(const std::string& key,
                                               Nanos deadline) {
  Bump(gets_);
  sim::EventLoop& loop = pool_->memory().host().loop();
  if (deadline > 0 && loop.now() >= deadline) {
    Bump(expired_);
    co_return DeadlineExceeded("kv: GET expired before service");
  }
  Shard& shard = *shards_[ShardOf(key)];
  co_await shard.gate.Acquire();
  GateGuard guard(&shard.gate);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    Bump(get_misses_);
    co_return NotFound("kv: no such key");
  }
  if (it->second.in_pool) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    auto bytes = co_await ReadResident(shard, key, it->second);
    if (!bytes.ok()) {
      co_return bytes.status();
    }
    Bump(get_hits_pool_);
    co_return GetResult{std::move(*bytes), Origin::kPool};
  }
  // Spilled: hydrate from the cold tier back into a fresh pool buffer.
  if (deadline > 0 && loop.now() + config_.ssd_min_headroom > deadline) {
    Bump(expired_);
    co_return DeadlineExceeded("kv: no headroom for hydration read");
  }
  auto buf = co_await AllocBuffer(shard, deadline);
  if (!buf.ok()) {
    if (buf.status().code() == StatusCode::kDeadlineExceeded) {
      Bump(expired_);
    } else {
      Bump(overloaded_);
    }
    co_return buf.status();
  }
  Entry& entry = it->second;
  uint32_t nsectors = std::max<uint32_t>(
      1, (entry.len + devices::kSsdSectorSize - 1) / devices::kSsdSectorSize);
  uint64_t lba = entry.ssd_slot * SectorsPerSlot();
  auto dev = co_await ssd_->ReadBlocks(lba, nsectors, *buf, deadline);
  if (!dev.ok() || *dev != devices::kSsdStatusOk) {
    pool_->Free(*buf);
    if (!dev.ok()) {
      if (dev.status().code() == StatusCode::kDeadlineExceeded) {
        Bump(expired_);
      } else {
        Bump(ssd_errors_);
      }
      co_return dev.status();
    }
    Bump(ssd_errors_);
    co_return Internal("kv: SSD hydration rejected by device");
  }
  free_slots_.push_back(entry.ssd_slot);
  --spilled_entries_;
  entry.in_pool = true;
  entry.buf_addr = *buf;
  shard.lru.push_front(key);
  entry.lru_it = shard.lru.begin();
  ++resident_entries_;
  Bump(hydrations_);
  auto bytes = co_await ReadResident(shard, key, entry);
  if (!bytes.ok()) {
    co_return bytes.status();
  }
  Bump(get_hits_ssd_);
  co_return GetResult{std::move(*bytes), Origin::kSsd};
}

sim::Task<Status> Store::Set(const std::string& key,
                             std::span<const std::byte> value, Nanos deadline) {
  Bump(sets_);
  if (value.size() > pool_->buffer_size()) {
    co_return InvalidArgument("kv: value exceeds one pool buffer");
  }
  sim::EventLoop& loop = pool_->memory().host().loop();
  if (deadline > 0 && loop.now() >= deadline) {
    Bump(expired_);
    co_return DeadlineExceeded("kv: SET expired before service");
  }
  Shard& shard = *shards_[ShardOf(key)];
  co_await shard.gate.Acquire();
  GateGuard guard(&shard.gate);

  // Copy-on-write: always publish into a fresh buffer, then swap it in.
  // Overwriting a live value in place would tear the old (acked) bytes if
  // the publish fails or the line underneath turns out poisoned.
  auto buf = co_await AllocBuffer(shard, deadline);
  if (!buf.ok()) {
    if (buf.status().code() == StatusCode::kDeadlineExceeded) {
      Bump(expired_);
    } else {
      Bump(overloaded_);
    }
    co_return buf.status();
  }
  uint64_t addr = *buf;

  Status pub = co_await pool_->memory().Publish(addr, value);
  if (pub.code() == StatusCode::kDataLoss) {
    // Poisoned line under a partial-line tail write: scrub the whole
    // buffer (full-line writes heal) and publish again.
    co_await ScrubBuffer(addr);
    pub = co_await pool_->memory().Publish(addr, value);
  }
  if (!pub.ok()) {
    pool_->Free(addr);
    co_return pub;
  }

  // Commit. Re-find: AllocBuffer's eviction may have spilled or
  // poison-dropped this very key while we were suspended.
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    Entry entry;
    entry.in_pool = true;
    entry.buf_addr = addr;
    entry.len = static_cast<uint32_t>(value.size());
    shard.lru.push_front(key);
    entry.lru_it = shard.lru.begin();
    shard.index.emplace(key, entry);
    ++resident_entries_;
  } else if (it->second.in_pool) {
    pool_->Free(it->second.buf_addr);
    it->second.buf_addr = addr;
    it->second.len = static_cast<uint32_t>(value.size());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  } else {
    // Was spilled: the SSD copy is superseded; slot returns to the pool.
    free_slots_.push_back(it->second.ssd_slot);
    --spilled_entries_;
    it->second.in_pool = true;
    it->second.buf_addr = addr;
    it->second.len = static_cast<uint32_t>(value.size());
    shard.lru.push_front(key);
    it->second.lru_it = shard.lru.begin();
    ++resident_entries_;
  }

  // Opportunistic headroom: keep free_low_water buffers available so RX
  // traffic and hydrations do not stall behind SET bursts.
  if (pool_->available() < config_.free_low_water && shard.lru.size() > 1) {
    (void)co_await EvictOne(shard, deadline);
  }
  co_return OkStatus();
}

sim::Task<Status> Store::Delete(const std::string& key, Nanos deadline) {
  Bump(deletes_);
  sim::EventLoop& loop = pool_->memory().host().loop();
  if (deadline > 0 && loop.now() >= deadline) {
    Bump(expired_);
    co_return DeadlineExceeded("kv: DELETE expired before service");
  }
  Shard& shard = *shards_[ShardOf(key)];
  co_await shard.gate.Acquire();
  GateGuard guard(&shard.gate);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    co_return NotFound("kv: no such key");
  }
  DropEntry(shard, key, it->second);
  co_return OkStatus();
}

sim::Task<uint64_t> Store::ScrubOnce() {
  uint64_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    co_await shard.gate.Acquire();
    GateGuard guard(&shard.gate);
    std::vector<std::string> keys(shard.lru.begin(), shard.lru.end());
    for (const std::string& key : keys) {
      auto it = shard.index.find(key);
      if (it == shard.index.end() || !it->second.in_pool) {
        continue;  // dropped or evicted since the snapshot
      }
      auto bytes = co_await ReadResident(shard, key, it->second);
      if (!bytes.ok() && bytes.status().code() == StatusCode::kDataLoss) {
        ++dropped;
      }
    }
  }
  co_return dropped;
}

sim::Task<> Store::ScrubLoop(sim::StopToken& stop) {
  sim::EventLoop& loop = pool_->memory().host().loop();
  while (!stop.stopped() && config_.scrub_interval > 0) {
    co_await sim::Delay(loop, config_.scrub_interval);
    if (stop.stopped()) {
      break;
    }
    (void)co_await ScrubOnce();
  }
}

}  // namespace cxlpool::kv
