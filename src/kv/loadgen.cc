#include "src/kv/loadgen.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::kv {

namespace {

// DELETE traffic runs against this many keys in a disjoint namespace so
// reordered DELETE/SET races never make the acked-SET audit ambiguous.
constexpr uint64_t kDeleteKeys = 64;
constexpr Nanos kSweepInterval = 50 * kMicrosecond;
constexpr Nanos kLateGrace = 50 * kMicrosecond;

uint64_t MixBits(uint64_t rank, uint64_t version) {
  uint64_t h = rank * 0x9e3779b97f4a7c15ULL + version * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 29;
  return h;
}

}  // namespace

LoadGen::LoadGen(stack::UdpStack* stack, netsim::MacAddr server_mac,
                 uint16_t server_port, uint32_t client_id, LoadGenConfig config,
                 obs::Registry* registry, obs::Labels labels)
    : stack_(stack),
      server_mac_(server_mac),
      server_port_(server_port),
      client_id_(client_id),
      config_(config),
      zipf_(config.keys, config.zipf_theta),
      rng_(config.seed + static_cast<uint64_t>(client_id) * 7919),
      keys_(config.keys),
      conn_outstanding_(static_cast<size_t>(config.connections), 0),
      dkey_inflight_(kDeleteKeys, false) {
  CXLPOOL_CHECK(config_.value_bytes_min >= 64);
  CXLPOOL_CHECK(config_.value_bytes_max >= config_.value_bytes_min);
  CXLPOOL_CHECK(config_.value_bytes_max + kRequestHeaderSize + kMaxKeyLen <=
                stack::kMaxUdpPayload);
  if (registry != nullptr) {
    sent_ = registry->GetCounter("kvload.sent", labels);
    ok_ = registry->GetCounter("kvload.ok", labels);
    overloaded_rsp_ = registry->GetCounter("kvload.overloaded_rsp", labels);
    expired_rsp_ = registry->GetCounter("kvload.expired_rsp", labels);
    timeouts_ = registry->GetCounter("kvload.timeouts", labels);
    skipped_ = registry->GetCounter("kvload.skipped", labels);
    late_responses_ = registry->GetCounter("kvload.late_responses", labels);
    rtt_ns_ = registry->GetHistogram("kvload.rtt_ns", labels);
  }
}

Status LoadGen::Start(sim::StopToken& stop) {
  auto sock = stack_->Bind(config_.client_port);
  if (!sock.ok()) {
    return sock.status();
  }
  sock_ = *sock;
  sim::Spawn(Receiver(stop));
  sim::Spawn(Sweeper(stop));
  return OkStatus();
}

std::string LoadGen::KeyName(uint64_t rank, bool delete_range) const {
  return "c" + std::to_string(client_id_) +
         (delete_range ? "-d" : "-k") + std::to_string(rank);
}

std::vector<std::byte> LoadGen::MakeValue(uint64_t rank, uint64_t version,
                                          const LoadGenConfig& config) {
  uint64_t mix = MixBits(rank, version);
  uint32_t span = config.value_bytes_max - config.value_bytes_min + 1;
  uint32_t len = config.value_bytes_min + static_cast<uint32_t>(mix % span);
  std::vector<std::byte> value(len);
  msg::wire::PutU64(value.data(), rank);
  msg::wire::PutU64(value.data() + 8, version);
  for (uint32_t i = 16; i < len; ++i) {
    value[i] = static_cast<std::byte>((mix + i * 131) & 0xff);
  }
  return value;
}

bool LoadGen::CheckValue(std::span<const std::byte> value, uint64_t* rank,
                         uint64_t* version) {
  if (value.size() < 16) {
    return false;
  }
  uint64_t r = msg::wire::GetU64(value.data());
  uint64_t v = msg::wire::GetU64(value.data() + 8);
  uint64_t mix = MixBits(r, v);
  for (size_t i = 16; i < value.size(); ++i) {
    if (value[i] != static_cast<std::byte>((mix + i * 131) & 0xff)) {
      return false;
    }
  }
  *rank = r;
  *version = v;
  return true;
}

sim::Task<Status> LoadGen::SendRequest(int sender, Opcode op,
                                       const std::string& key, uint64_t rank,
                                       uint64_t version, bool audit_exempt,
                                       bool audit_probe,
                                       std::span<const std::byte> value,
                                       Nanos deadline, uint64_t* op_id_out) {
  sim::EventLoop& loop = sock_->Loop();
  Request req;
  req.opcode = op;
  req.client_id = client_id_;
  req.seq = next_op_id_++;
  req.deadline = deadline;
  req.key = key;
  req.value.assign(value.begin(), value.end());
  Status st = co_await sock_->SendTo(server_mac_, server_port_,
                                     EncodeRequest(req));
  if (!st.ok()) {
    co_return st;
  }
  Pending p;
  p.rank = rank;
  p.opcode = op;
  p.version = version;
  p.audit_exempt = audit_exempt;
  p.audit_probe = audit_probe;
  p.sender = sender;
  p.sent_at = loop.now();
  p.deadline = deadline;
  outstanding_.emplace(req.seq, p);
  if (sender >= 0) {
    ++conn_outstanding_[static_cast<size_t>(sender)];
  }
  if (sent_ != nullptr) {
    sent_->Inc();
  }
  if (phase_ != nullptr && p.sent_at >= phase_measure_from_ &&
      p.sent_at <= phase_measure_until_) {
    ++phase_->sent;
  }
  if (op_id_out != nullptr) {
    *op_id_out = req.seq;
  }
  co_return OkStatus();
}

sim::Task<> LoadGen::Sender(int index, double offered_ops, Nanos until) {
  sim::EventLoop& loop = sock_->Loop();
  sim::Rng rng(config_.seed + 104729 + static_cast<uint64_t>(index) * 6151 +
               static_cast<uint64_t>(client_id_) * 31337);
  double mean_gap = 1e9 * config_.connections / offered_ops;
  while (loop.now() < until) {
    co_await sim::Delay(
        loop, std::max<Nanos>(1, static_cast<Nanos>(rng.Exponential(mean_gap))));
    if (loop.now() >= until) {
      break;
    }
    // Open-loop overload bounds: skip, never queue.
    if (outstanding_.size() >= config_.max_outstanding ||
        conn_outstanding_[static_cast<size_t>(index)] >= config_.pipeline_depth) {
      if (skipped_ != nullptr) {
        skipped_->Inc();
      }
      if (phase_ != nullptr && loop.now() >= phase_measure_from_ &&
          loop.now() <= phase_measure_until_) {
        ++phase_->skipped;
      }
      continue;
    }
    double dice = rng.Uniform();
    Nanos deadline = loop.now() + config_.op_deadline;
    if (dice >= config_.get_fraction &&
        dice < config_.get_fraction + config_.delete_fraction) {
      // DELETE-range traffic: alternate SETs and DELETEs over a small
      // disjoint namespace, exempt from the acked-SET audit.
      uint64_t drank = rng.UniformInt(kDeleteKeys);
      if (dkey_inflight_[drank]) {
        continue;
      }
      dkey_inflight_[drank] = true;
      if (rng.Bernoulli(0.5)) {
        auto value = MakeValue(drank, 1, config_);
        Status st = co_await SendRequest(index, Opcode::kSet,
                                         KeyName(drank, true), drank, 1,
                                         /*audit_exempt=*/true,
                                         /*audit_probe=*/false, value,
                                         deadline, nullptr);
        if (!st.ok()) {
          dkey_inflight_[drank] = false;
        }
      } else {
        Status st = co_await SendRequest(index, Opcode::kDelete,
                                         KeyName(drank, true), drank, 0,
                                         /*audit_exempt=*/true,
                                         /*audit_probe=*/false, {}, deadline,
                                         nullptr);
        if (!st.ok()) {
          dkey_inflight_[drank] = false;
        }
      }
      continue;
    }
    uint64_t rank = zipf_.Sample(rng);
    KeyState& ks = keys_[rank];
    if (ks.inflight) {
      continue;  // one op per key in flight: versions stay linear
    }
    ks.inflight = true;
    if (dice < config_.get_fraction) {
      Status st = co_await SendRequest(index, Opcode::kGet,
                                       KeyName(rank, false), rank,
                                       ks.acked_version, /*audit_exempt=*/false,
                                       /*audit_probe=*/false, {}, deadline,
                                       nullptr);
      if (!st.ok()) {
        ks.inflight = false;
      }
    } else {
      uint64_t version = ks.next_version + 1;
      auto value = MakeValue(rank, version, config_);
      Status st = co_await SendRequest(index, Opcode::kSet,
                                       KeyName(rank, false), rank, version,
                                       /*audit_exempt=*/false,
                                       /*audit_probe=*/false, value, deadline,
                                       nullptr);
      if (st.ok()) {
        ks.next_version = version;
      } else {
        ks.inflight = false;
        if (skipped_ != nullptr) {
          skipped_->Inc();
        }
      }
    }
  }
  --senders_running_;
}

sim::Task<> LoadGen::Receiver(sim::StopToken& stop) {
  sim::EventLoop& loop = sock_->Loop();
  while (!stop.stopped()) {
    auto d = co_await sock_->Recv(loop.now() + kSweepInterval);
    if (!d.ok()) {
      continue;
    }
    auto rsp = DecodeResponse(d->payload);
    if (!rsp.ok()) {
      continue;  // hostile or foreign frame; never crash
    }
    auto it = outstanding_.find(rsp->seq);
    if (it == outstanding_.end()) {
      // Duplicate (lossy-link dup) or post-timeout straggler.
      if (late_responses_ != nullptr) {
        late_responses_->Inc();
      }
      continue;
    }
    Pending p = it->second;
    outstanding_.erase(it);
    if (p.sender >= 0) {
      --conn_outstanding_[static_cast<size_t>(p.sender)];
    }
    if (p.audit_exempt) {
      dkey_inflight_[p.rank] = false;
    } else if (!p.audit_probe) {
      keys_[p.rank].inflight = false;
    }
    Nanos now = loop.now();
    Nanos rtt = now - p.sent_at;

    if (p.audit_probe) {
      AuditReply reply;
      reply.status = rsp->status;
      reply.value = std::move(rsp->value);
      audit_replies_.emplace(rsp->seq, std::move(reply));
      continue;
    }

    bool in_window = phase_ != nullptr && p.sent_at >= phase_measure_from_ &&
                     now <= phase_measure_until_;
    switch (rsp->status) {
      case WireStatus::kOk: {
        last_ok_at_ = now;
        if (ok_ != nullptr) {
          ok_->Inc();
        }
        if (rtt_ns_ != nullptr && in_window) {
          rtt_ns_->Add(rtt);
        }
        if (!p.audit_exempt) {
          KeyState& ks = keys_[p.rank];
          if (p.opcode == Opcode::kSet) {
            if (p.version > ks.acked_version) {
              ks.acked_version = p.version;
              ks.acked_at = now;
            }
            ++acked_sets_;
          } else if (p.opcode == Opcode::kGet) {
            uint64_t rank = 0;
            uint64_t version = 0;
            if (!CheckValue(rsp->value, &rank, &version) || rank != p.rank ||
                version < p.version) {
              // Torn value or version rollback: hard integrity failure.
              ++integrity_failures_;
            }
          }
        }
        if (in_window) {
          ++phase_->ok;
          phase_->rtt.Add(rtt);
        }
        break;
      }
      case WireStatus::kOverloaded:
      case WireStatus::kStoreFull:
        if (overloaded_rsp_ != nullptr) {
          overloaded_rsp_->Inc();
        }
        if (in_window) {
          ++phase_->overloaded;
        }
        break;
      case WireStatus::kDeadlineExceeded:
        if (expired_rsp_ != nullptr) {
          expired_rsp_->Inc();
        }
        if (in_window) {
          ++phase_->expired;
        }
        break;
      case WireStatus::kNotFound:
        // A miss is a served request (memcached semantics): it counts
        // toward goodput and the latency distribution, and it proves the
        // node is serving (recovery probes watch last_ok_at).
        last_ok_at_ = now;
        if (in_window) {
          ++phase_->not_found;
          phase_->rtt.Add(rtt);
        }
        if (rtt_ns_ != nullptr && in_window) {
          rtt_ns_->Add(rtt);
        }
        break;
      case WireStatus::kDataLoss:
        if (in_window) {
          ++phase_->data_loss;
        }
        break;
      case WireStatus::kInvalidArgument:
        break;
    }
  }
}

sim::Task<> LoadGen::Sweeper(sim::StopToken& stop) {
  sim::EventLoop& loop = sock_->Loop();
  std::vector<uint64_t> expired;
  while (!stop.stopped()) {
    co_await sim::Delay(loop, kSweepInterval);
    Nanos now = loop.now();
    expired.clear();
    for (const auto& [op_id, p] : outstanding_) {
      if (now > p.deadline + kLateGrace) {
        expired.push_back(op_id);
      }
    }
    for (uint64_t op_id : expired) {
      auto it = outstanding_.find(op_id);
      if (it == outstanding_.end()) {
        continue;
      }
      Pending p = it->second;
      outstanding_.erase(it);
      if (p.sender >= 0) {
        --conn_outstanding_[static_cast<size_t>(p.sender)];
      }
      if (p.audit_exempt) {
        dkey_inflight_[p.rank] = false;
      } else if (!p.audit_probe) {
        // A timed-out SET may still have been applied server-side (the
        // ack was lost, not necessarily the write): next_version stays
        // consumed, acked_version does not advance.
        keys_[p.rank].inflight = false;
      }
      if (timeouts_ != nullptr) {
        timeouts_->Inc();
      }
      if (phase_ != nullptr && p.sent_at >= phase_measure_from_ &&
          p.sent_at <= phase_measure_until_) {
        ++phase_->timeouts;
      }
    }
  }
}

sim::Task<PhaseStats> LoadGen::RunPhase(double offered_ops, Nanos duration,
                                        Nanos warmup) {
  CXLPOOL_CHECK(sock_ != nullptr);  // Start() first
  sim::EventLoop& loop = sock_->Loop();
  PhaseStats stats;
  Nanos start = loop.now();
  phase_ = &stats;
  phase_measure_from_ = start + warmup;
  phase_measure_until_ = start + duration;
  senders_running_ = config_.connections;
  for (int i = 0; i < config_.connections; ++i) {
    sim::Spawn(Sender(i, offered_ops, start + duration));
  }
  while (senders_running_ > 0) {
    co_await sim::Delay(loop, 100 * kMicrosecond);
  }
  // Drain: let in-flight ops resolve or time out before closing the books.
  Nanos drain_until = loop.now() + 2 * config_.op_deadline + 2 * kSweepInterval;
  while (!outstanding_.empty() && loop.now() < drain_until) {
    co_await sim::Delay(loop, kSweepInterval);
  }
  phase_ = nullptr;
  double window_ns = static_cast<double>(phase_measure_until_ - phase_measure_from_);
  if (window_ns > 0) {
    stats.goodput_ops =
        1e9 * static_cast<double>(stats.ok + stats.not_found) / window_ns;
  }
  co_return stats;
}

sim::Task<AuditResult> LoadGen::VerifyAckedSets(Nanos exempt_before) {
  CXLPOOL_CHECK(sock_ != nullptr);
  sim::EventLoop& loop = sock_->Loop();
  AuditResult result;
  for (uint64_t rank = 0; rank < keys_.size(); ++rank) {
    KeyState& ks = keys_[rank];
    if (ks.acked_version == 0) {
      continue;
    }
    ++result.checked;
    bool resolved = false;
    for (int attempt = 0; attempt < 5 && !resolved; ++attempt) {
      Nanos deadline = loop.now() + 2 * kMillisecond;
      uint64_t op_id = 0;
      Status st = co_await SendRequest(/*sender=*/-1, Opcode::kGet,
                                       KeyName(rank, false), rank,
                                       ks.acked_version, /*audit_exempt=*/false,
                                       /*audit_probe=*/true, {}, deadline,
                                       &op_id);
      if (!st.ok()) {
        co_await sim::Delay(loop, 200 * kMicrosecond);
        continue;
      }
      while (outstanding_.contains(op_id)) {
        co_await sim::Delay(loop, 20 * kMicrosecond);
      }
      auto reply_it = audit_replies_.find(op_id);
      if (reply_it == audit_replies_.end()) {
        continue;  // timed out; retry
      }
      AuditReply reply = std::move(reply_it->second);
      audit_replies_.erase(reply_it);
      switch (reply.status) {
        case WireStatus::kOk: {
          uint64_t r = 0;
          uint64_t v = 0;
          if (CheckValue(reply.value, &r, &v) && r == rank &&
              v >= ks.acked_version) {
            ++result.present_ok;
          } else {
            ++result.integrity_failures;
          }
          resolved = true;
          break;
        }
        case WireStatus::kNotFound:
        case WireStatus::kDataLoss:
          if (ks.acked_at < exempt_before) {
            ++result.missing_old;
          } else {
            ++result.missing_recent;
          }
          resolved = true;
          break;
        default:
          co_await sim::Delay(loop, 200 * kMicrosecond);
          break;
      }
    }
    if (!resolved) {
      ++result.unverifiable;
    }
  }
  co_return result;
}

}  // namespace cxlpool::kv
