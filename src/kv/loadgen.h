// kv::LoadGen: memtier-style open-loop KV driver. Keys are drawn from a
// sim::ZipfianSampler (a handful of ranks carry most of the traffic, the
// long tail goes cold and overflows to SSD), arrivals are Poisson at the
// offered rate across `connections` sender coroutines, each bounded by
// `pipeline_depth`, with a global `max_outstanding` open-loop overload
// bound (arrivals beyond it are skipped and counted, never queued).
//
// Zero-lost-acked-SETs bookkeeping: at most one operation per key is in
// flight from a client, so per-key versions are linear; values embed
// (rank, version) plus a deterministic pattern, and VerifyAckedSets()
// replays every acked key closed-loop at the end, classifying misses
// against the documented carve-outs (node restart, poisoned-media drops).
#ifndef SRC_KV_LOADGEN_H_
#define SRC_KV_LOADGEN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/kv/wire.h"
#include "src/obs/registry.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/stack/udp.h"

namespace cxlpool::kv {

struct LoadGenConfig {
  uint16_t client_port = 9000;
  uint64_t keys = 4096;          // key-space size (ranks)
  double zipf_theta = 0.99;
  double get_fraction = 0.88;    // remainder splits into SET and DELETE
  double delete_fraction = 0.02; // drawn from a disjoint, audit-exempt range
  uint32_t value_bytes_min = 64;   // >= one cacheline (poison-heal full-line)
  uint32_t value_bytes_max = 1024; // <= pool buffer and one UDP frame
  int connections = 4;           // sender coroutines
  int pipeline_depth = 32;       // per-connection outstanding bound
  uint64_t max_outstanding = 256;  // global open-loop bound
  Nanos op_deadline = 300 * kMicrosecond;  // relative; stamped absolute
  uint64_t seed = 1;
};

// Per-phase measurements (overload_soak's PhaseResult shape): the bench
// asserts SLOs on these, and the same numbers flow into the registry.
struct PhaseStats {
  uint64_t sent = 0;
  uint64_t ok = 0;          // kOk responses received in the window
  uint64_t overloaded = 0;  // kOverloaded responses
  uint64_t expired = 0;     // kDeadlineExceeded responses
  uint64_t not_found = 0;
  uint64_t data_loss = 0;
  uint64_t timeouts = 0;    // abandoned past deadline
  uint64_t skipped = 0;     // open-loop arrivals shed client-side
  // Served responses: kOk and kNotFound (a miss is memcached service).
  sim::Histogram rtt;       // ns, served responses
  double goodput_ops = 0;   // served responses per second over the window
};

struct AuditResult {
  uint64_t checked = 0;             // keys with >= 1 acked SET
  uint64_t present_ok = 0;          // value present, pattern + version valid
  uint64_t integrity_failures = 0;  // torn value or version rollback
  uint64_t missing_recent = 0;      // missing, acked after `exempt_before`
  uint64_t missing_old = 0;         // missing, acked before `exempt_before`
  uint64_t unverifiable = 0;        // no answer after retries
};

class LoadGen {
 public:
  // Drives the node at (server_mac, server_port) from `stack`. `client_id`
  // namespaces keys ("c<id>-k<rank>") so several clients never collide.
  LoadGen(stack::UdpStack* stack, netsim::MacAddr server_mac,
          uint16_t server_port, uint32_t client_id, LoadGenConfig config,
          obs::Registry* registry, obs::Labels labels = {});

  // Binds the client socket and spawns the receiver + timeout sweeper.
  Status Start(sim::StopToken& stop);

  // One open-loop phase at `offered_ops` per second. Samples sent before
  // `warmup` (from phase start) are excluded from the window stats.
  sim::Task<PhaseStats> RunPhase(double offered_ops, Nanos duration,
                                 Nanos warmup);

  // Closed-loop audit of every key with an acked SET. Keys whose last ack
  // predates `exempt_before` (e.g. a node restart) count as missing_old.
  sim::Task<AuditResult> VerifyAckedSets(Nanos exempt_before);

  uint64_t acked_sets() const { return acked_sets_; }
  // Torn values or version rollbacks seen on GET hits during load; the
  // bench asserts this stays zero (no carve-out covers corruption).
  uint64_t integrity_failures() const { return integrity_failures_; }
  // Sim time of the last served response (kOk or kNotFound) — chaos
  // recovery probes read this to decide "the server answers again".
  Nanos last_ok_at() const { return last_ok_at_; }

  // Deterministic value for (rank, version): 16-byte header embedding both
  // plus a pattern; length in [value_bytes_min, value_bytes_max].
  static std::vector<std::byte> MakeValue(uint64_t rank, uint64_t version,
                                          const LoadGenConfig& config);
  // Recovers (rank, version) and checks the pattern; false = torn.
  static bool CheckValue(std::span<const std::byte> value, uint64_t* rank,
                         uint64_t* version);

 private:
  struct KeyState {
    uint64_t next_version = 0;   // versions start at 1 on first SET
    uint64_t acked_version = 0;  // highest version acked
    Nanos acked_at = 0;
    bool inflight = false;
  };
  struct Pending {
    uint64_t rank = 0;
    Opcode opcode = Opcode::kGet;
    uint64_t version = 0;       // SET: version carried; GET: floor expected
    bool audit_exempt = false;  // DELETE-range keys
    bool audit_probe = false;   // closed-loop audit GET, reply parked aside
    int sender = -1;            // connection index, -1 for audit probes
    Nanos sent_at = 0;
    Nanos deadline = 0;
  };
  struct AuditReply {
    WireStatus status = WireStatus::kOk;
    std::vector<std::byte> value;
  };

  sim::Task<> Sender(int index, double offered_ops, Nanos until);
  sim::Task<> Receiver(sim::StopToken& stop);
  sim::Task<> Sweeper(sim::StopToken& stop);
  std::string KeyName(uint64_t rank, bool delete_range) const;
  sim::Task<Status> SendRequest(int sender, Opcode op, const std::string& key,
                                uint64_t rank, uint64_t version,
                                bool audit_exempt, bool audit_probe,
                                std::span<const std::byte> value,
                                Nanos deadline, uint64_t* op_id_out);

  stack::UdpStack* stack_;
  netsim::MacAddr server_mac_;
  uint16_t server_port_;
  uint32_t client_id_;
  LoadGenConfig config_;
  stack::UdpSocket* sock_ = nullptr;
  sim::ZipfianSampler zipf_;
  sim::Rng rng_;

  std::vector<KeyState> keys_;
  std::vector<int> conn_outstanding_;   // per-connection pipeline occupancy
  std::vector<bool> dkey_inflight_;     // DELETE-range single-inflight
  std::unordered_map<uint64_t, Pending> outstanding_;  // op id -> pending
  std::unordered_map<uint64_t, AuditReply> audit_replies_;
  uint64_t next_op_id_ = 1;
  int senders_running_ = 0;

  // Current phase accumulator (null between phases); receiver writes here.
  PhaseStats* phase_ = nullptr;
  Nanos phase_measure_from_ = 0;
  Nanos phase_measure_until_ = 0;

  uint64_t acked_sets_ = 0;
  uint64_t integrity_failures_ = 0;
  Nanos last_ok_at_ = 0;

  obs::Counter* sent_ = nullptr;
  obs::Counter* ok_ = nullptr;
  obs::Counter* overloaded_rsp_ = nullptr;
  obs::Counter* expired_rsp_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* skipped_ = nullptr;
  obs::Counter* late_responses_ = nullptr;
  sim::Histogram* rtt_ns_ = nullptr;
};

}  // namespace cxlpool::kv

#endif  // SRC_KV_LOADGEN_H_
