#include "src/kv/wire.h"

#include "src/msg/wire.h"

namespace cxlpool::kv {

namespace {

bool ValidOpcode(uint8_t op) {
  return op == static_cast<uint8_t>(Opcode::kGet) ||
         op == static_cast<uint8_t>(Opcode::kSet) ||
         op == static_cast<uint8_t>(Opcode::kDelete);
}

bool ValidWireStatus(uint8_t st) {
  return st <= static_cast<uint8_t>(WireStatus::kInvalidArgument);
}

bool ValidOrigin(uint8_t o) {
  return o <= static_cast<uint8_t>(Origin::kSsd);
}

// Common prefix checks; returns the opcode byte on success. Length must
// already cover the fixed header.
Result<uint8_t> CheckPrefix(std::span<const std::byte> payload) {
  if (static_cast<uint8_t>(payload[0]) != kKvMagic) {
    return InvalidArgument("kv frame: bad magic");
  }
  if (static_cast<uint8_t>(payload[1]) != kKvWireVersion) {
    return Unimplemented("kv frame: unsupported wire version");
  }
  uint8_t op = static_cast<uint8_t>(payload[2]);
  if (!ValidOpcode(op)) {
    return InvalidArgument("kv frame: bad opcode");
  }
  return op;
}

}  // namespace

std::vector<std::byte> EncodeRequest(const Request& req) {
  std::vector<std::byte> out;
  out.reserve(kRequestHeaderSize + req.key.size() + req.value.size());
  msg::wire::Writer w(&out);
  w.U8(kKvMagic);
  w.U8(kKvWireVersion);
  w.U8(static_cast<uint8_t>(req.opcode));
  w.U8(req.flags);
  w.U32(req.client_id);
  w.U64(req.seq);
  w.U64(static_cast<uint64_t>(req.deadline));
  w.U16(static_cast<uint16_t>(req.key.size()));
  w.U32(static_cast<uint32_t>(req.value.size()));
  w.Bytes(std::as_bytes(std::span<const char>(req.key.data(), req.key.size())));
  w.Bytes(req.value);
  return out;
}

std::vector<std::byte> EncodeResponse(const Response& rsp) {
  std::vector<std::byte> out;
  out.reserve(kResponseHeaderSize + rsp.value.size());
  msg::wire::Writer w(&out);
  w.U8(kKvMagic);
  w.U8(kKvWireVersion);
  w.U8(static_cast<uint8_t>(rsp.opcode));
  w.U8(static_cast<uint8_t>(rsp.status));
  w.U8(static_cast<uint8_t>(rsp.origin));
  w.U8(0);
  w.U8(0);
  w.U8(0);
  w.U32(rsp.client_id);
  w.U64(rsp.seq);
  w.U32(static_cast<uint32_t>(rsp.value.size()));
  w.Bytes(rsp.value);
  return out;
}

Result<Request> DecodeRequest(std::span<const std::byte> payload) {
  if (payload.size() < kRequestHeaderSize) {
    return InvalidArgument("kv request: short frame");
  }
  if (auto prefix = CheckPrefix(payload); !prefix.ok()) {
    return prefix.status();
  }
  msg::wire::Reader r(payload);
  Request req;
  (void)r.U8();  // magic
  (void)r.U8();  // version
  req.opcode = static_cast<Opcode>(r.U8());
  req.flags = r.U8();
  req.client_id = r.U32();
  req.seq = r.U64();
  req.deadline = static_cast<Nanos>(r.U64());
  uint16_t key_len = r.U16();
  uint32_t value_len = r.U32();
  if (key_len == 0 || key_len > kMaxKeyLen) {
    return InvalidArgument("kv request: key length out of bounds");
  }
  if (req.opcode != Opcode::kSet && value_len != 0) {
    return InvalidArgument("kv request: value on non-SET");
  }
  // Length check before the Reader touches variable bytes (Reader CHECKs
  // on underflow; hostile frames must not reach that).
  if (r.remaining() != static_cast<size_t>(key_len) + value_len) {
    return InvalidArgument("kv request: length mismatch");
  }
  auto key_bytes = r.Bytes(key_len);
  req.key.assign(reinterpret_cast<const char*>(key_bytes.data()), key_len);
  auto value_bytes = r.Bytes(value_len);
  req.value.assign(value_bytes.begin(), value_bytes.end());
  return req;
}

Result<Response> DecodeResponse(std::span<const std::byte> payload) {
  if (payload.size() < kResponseHeaderSize) {
    return InvalidArgument("kv response: short frame");
  }
  if (auto prefix = CheckPrefix(payload); !prefix.ok()) {
    return prefix.status();
  }
  msg::wire::Reader r(payload);
  Response rsp;
  (void)r.U8();  // magic
  (void)r.U8();  // version
  rsp.opcode = static_cast<Opcode>(r.U8());
  uint8_t status = r.U8();
  if (!ValidWireStatus(status)) {
    return InvalidArgument("kv response: bad status");
  }
  rsp.status = static_cast<WireStatus>(status);
  uint8_t origin = r.U8();
  if (!ValidOrigin(origin)) {
    return InvalidArgument("kv response: bad origin");
  }
  rsp.origin = static_cast<Origin>(origin);
  (void)r.U8();
  (void)r.U8();
  (void)r.U8();
  rsp.client_id = r.U32();
  rsp.seq = r.U64();
  uint32_t value_len = r.U32();
  if (r.remaining() != value_len) {
    return InvalidArgument("kv response: length mismatch");
  }
  auto value_bytes = r.Bytes(value_len);
  rsp.value.assign(value_bytes.begin(), value_bytes.end());
  return rsp;
}

}  // namespace cxlpool::kv
