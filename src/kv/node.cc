#include "src/kv/node.h"

#include <utility>

#include "src/common/check.h"

namespace cxlpool::kv {

KvNode::KvNode(stack::UdpStack* stack, Store* store, NodeConfig config,
               obs::Registry* registry, obs::Labels labels)
    : stack_(stack), store_(store), config_(config) {
  if (registry != nullptr) {
    rx_requests_ = registry->GetCounter("kv.rx_requests", labels);
    decode_errors_ = registry->GetCounter("kv.decode_errors", labels);
    shed_front_ = registry->GetCounter("kv.shed_front", labels);
    expired_front_ = registry->GetCounter("kv.expired_front", labels);
    replies_sent_ = registry->GetCounter("kv.replies_sent", labels);
    reply_send_failures_ =
        registry->GetCounter("kv.reply_send_failures", labels);
    service_ns_ = registry->GetHistogram("kv.service_ns", labels);
  }
}

Status KvNode::Start(sim::StopToken& stop) {
  auto sock = stack_->Bind(config_.port);
  if (!sock.ok()) {
    return sock.status();
  }
  sock_ = *sock;
  for (int w = 0; w < config_.workers; ++w) {
    sim::Spawn(Worker(stop));
  }
  return OkStatus();
}

WireStatus KvNode::MapStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case StatusCode::kDataLoss:
      return WireStatus::kDataLoss;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kResourceExhausted:
      return WireStatus::kStoreFull;
    default:
      // kOverloaded plus transport-ish internals (Unavailable, Internal):
      // the client treats all of them as "back off", per the PR 6 rule
      // that kOverloaded is never blindly retried.
      return WireStatus::kOverloaded;
  }
}

sim::Task<> KvNode::Worker(sim::StopToken& stop) {
  sim::EventLoop& loop = sock_->Loop();
  while (!stop.stopped()) {
    auto d = co_await sock_->Recv(loop.now() + config_.recv_poll);
    if (!d.ok()) {
      continue;  // poll timeout (or teardown); keep watching for stop
    }
    // Detached per-request service: admission control inside Serve bounds
    // the concurrency, the dispatcher stays free to shed the backlog.
    sim::Spawn(Serve(std::move(*d)));
  }
}

sim::Task<> KvNode::Serve(stack::Datagram d) {
  auto req = DecodeRequest(d.payload);
  if (!req.ok()) {
    // Hostile/truncated frame: typed error, counted and dropped (there is
    // no trustworthy client identity to answer to).
    if (decode_errors_ != nullptr) {
      decode_errors_->Inc();
    }
    co_return;
  }
  if (rx_requests_ != nullptr) {
    rx_requests_->Inc();
  }
  sim::EventLoop& loop = sock_->Loop();
  Response rsp;
  rsp.opcode = req->opcode;
  rsp.client_id = req->client_id;
  rsp.seq = req->seq;

  if (inflight_ >= config_.max_inflight) {
    // Shed at the front: no store work, no SSD work, a cheap typed reply.
    if (shed_front_ != nullptr) {
      shed_front_->Inc();
    }
    rsp.status = WireStatus::kOverloaded;
  } else if (req->deadline > 0 && loop.now() >= req->deadline) {
    if (expired_front_ != nullptr) {
      expired_front_->Inc();
    }
    rsp.status = WireStatus::kDeadlineExceeded;
  } else {
    ++inflight_;
    Nanos t0 = loop.now();
    switch (req->opcode) {
      case Opcode::kGet: {
        auto r = co_await store_->Get(req->key, req->deadline);
        if (r.ok()) {
          rsp.status = WireStatus::kOk;
          rsp.origin = r->origin;
          rsp.value = std::move(r->value);
        } else {
          rsp.status = MapStatus(r.status());
        }
        break;
      }
      case Opcode::kSet: {
        Status st = co_await store_->Set(req->key, req->value, req->deadline);
        rsp.status = MapStatus(st);
        break;
      }
      case Opcode::kDelete: {
        Status st = co_await store_->Delete(req->key, req->deadline);
        rsp.status = MapStatus(st);
        break;
      }
    }
    --inflight_;
    if (service_ns_ != nullptr) {
      service_ns_->Add(loop.now() - t0);
    }
    if (rsp.status == WireStatus::kOk) {
      last_served_at_ = loop.now();
    }
  }

  Status sent = co_await sock_->SendTo(d.src_mac, d.src_port,
                                       EncodeResponse(rsp));
  if (sent.ok()) {
    if (replies_sent_ != nullptr) {
      replies_sent_->Inc();
    }
  } else if (reply_send_failures_ != nullptr) {
    reply_send_failures_->Inc();
  }
}

}  // namespace cxlpool::kv
