// Sharded in-pool KV store: the data plane of the memcached-style node.
//
// Values live in CXL-pool BufferPool buffers (one buffer per value); each
// shard keeps a hash index plus an LRU list. When free buffers run below
// the configured low-water mark, cold tail entries overflow to the pooled
// SSD through VirtualSsd (the device DMAs straight out of pool memory), and
// a later GET hydrates them back into a fresh buffer — one request can
// traverse pooled NIC -> pool memory -> pooled SSD and back.
//
// Contracts carried over from earlier PRs:
//  - Backpressure (PR 6): ops that would exceed their absolute deadline are
//    shed before touching the SSD (kDeadlineExceeded); allocation pressure
//    with no evictable entry is typed kOverloaded, never a CHECK.
//  - Media faults (PR 4): a poisoned line under a resident value surfaces
//    as kDataLoss on read; the store drops the entry and scrubs the buffer
//    clean with a full-buffer publish (documented cache carve-out — the
//    client sees kDataLoss once, then kNotFound).
//
// Concurrency: ops serialize per shard via a semaphore, so entry state
// never changes underneath a suspended SSD round trip (the memcached
// per-bucket lock, coroutine edition).
#ifndef SRC_KV_STORE_H_
#define SRC_KV_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/virtual_ssd.h"
#include "src/kv/wire.h"
#include "src/obs/registry.h"
#include "src/sim/sync.h"
#include "src/stack/buffer_pool.h"

namespace cxlpool::kv {

struct StoreConfig {
  int shards = 8;
  // Keep at least this many pool buffers free: SET/hydration trigger LRU
  // overflow to SSD when availability drops below the mark.
  uint32_t free_low_water = 8;
  // Minimum headroom an op needs before starting an SSD round trip; with
  // less than this left the op is shed as kDeadlineExceeded instead of
  // occupying a queue slot it cannot use (PR 6 shed-before-BAR).
  Nanos ssd_min_headroom = 30 * kMicrosecond;
  // Background scrub cadence (0 disables ScrubLoop).
  Nanos scrub_interval = 500 * kMicrosecond;
};

class Store {
 public:
  // `pool` holds the values; `ssd` (nullable — overflow disabled) is the
  // cold tier, of which the first `ssd_capacity_bytes` are ours to slot.
  // Metrics land in `registry` (nullable) under `labels` as kv.* series.
  Store(stack::BufferPool* pool, core::VirtualSsd* ssd,
        uint64_t ssd_capacity_bytes, StoreConfig config,
        obs::Registry* registry, obs::Labels labels = {});

  struct GetResult {
    std::vector<std::byte> value;
    Origin origin = Origin::kNone;
  };

  // kNotFound on miss; kDataLoss when the backing line was poisoned (the
  // entry is dropped and the buffer scrubbed); kDeadlineExceeded when a
  // needed hydration cannot fit before `deadline`.
  sim::Task<Result<GetResult>> Get(const std::string& key, Nanos deadline);

  // kInvalidArgument when the value exceeds one pool buffer; kOverloaded
  // when no buffer is free and nothing can be evicted in time.
  sim::Task<Status> Set(const std::string& key,
                        std::span<const std::byte> value, Nanos deadline);

  sim::Task<Status> Delete(const std::string& key, Nanos deadline);

  // Reads every resident value once; drops + scrubs entries whose backing
  // lines are poisoned. Returns entries dropped. ScrubLoop runs this at
  // config.scrub_interval until `stop`.
  sim::Task<uint64_t> ScrubOnce();
  sim::Task<> ScrubLoop(sim::StopToken& stop);

  size_t resident_entries() const { return resident_entries_; }
  size_t spilled_entries() const { return spilled_entries_; }
  // Distinct keys dropped because their backing media failed (poison);
  // the soak's lost-SET audit budget.
  uint64_t poison_dropped_keys() const { return poison_dropped_keys_; }

 private:
  struct Entry {
    bool in_pool = false;
    uint64_t buf_addr = 0;   // valid when in_pool
    uint64_t ssd_slot = 0;   // valid when !in_pool
    uint32_t len = 0;
    std::list<std::string>::iterator lru_it;  // into shard lru (resident only)
  };

  struct Shard {
    explicit Shard(sim::EventLoop& loop) : gate(loop, 1) {}
    std::unordered_map<std::string, Entry> index;
    // MRU at front; only resident (in_pool) entries are listed.
    std::list<std::string> lru;
    sim::Semaphore gate;  // serializes ops within the shard
  };

  size_t ShardOf(const std::string& key) const;
  // Frees `entry`'s storage (buffer or SSD slot) and erases it.
  void DropEntry(Shard& shard, const std::string& key, Entry& entry);
  // Ensures a free buffer exists, evicting LRU tails to SSD if needed.
  sim::Task<Result<uint64_t>> AllocBuffer(Shard& shard, Nanos deadline);
  // Writes the LRU tail of `shard` out to SSD and frees its buffer.
  sim::Task<Status> EvictOne(Shard& shard, Nanos deadline);
  // Reads entry bytes from the pool; on kDataLoss drops + scrubs.
  sim::Task<Result<std::vector<std::byte>>> ReadResident(
      Shard& shard, const std::string& key, Entry& entry);
  // Zero-fills the whole buffer with a publish: full-line writes heal
  // poisoned media before the buffer returns to the free list.
  sim::Task<> ScrubBuffer(uint64_t addr);

  uint32_t SectorsPerSlot() const;

  stack::BufferPool* pool_;
  core::VirtualSsd* ssd_;
  StoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // SSD slot allocator: fixed-size slots of one buffer each.
  std::vector<uint64_t> free_slots_;

  size_t resident_entries_ = 0;
  size_t spilled_entries_ = 0;
  uint64_t poison_dropped_keys_ = 0;

  // Registry handles (null when no registry was given).
  obs::Counter* gets_ = nullptr;
  obs::Counter* get_hits_pool_ = nullptr;
  obs::Counter* get_hits_ssd_ = nullptr;
  obs::Counter* get_misses_ = nullptr;
  obs::Counter* sets_ = nullptr;
  obs::Counter* deletes_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* hydrations_ = nullptr;
  obs::Counter* poison_drops_ = nullptr;
  obs::Counter* overloaded_ = nullptr;
  obs::Counter* expired_ = nullptr;
  obs::Counter* ssd_errors_ = nullptr;
};

}  // namespace cxlpool::kv

#endif  // SRC_KV_STORE_H_
