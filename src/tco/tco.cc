#include "src/tco/tco.h"

#include <algorithm>

#include "src/common/check.h"

namespace cxlpool::tco {

TcoReport ComputeTco(const CostInputs& in, double ssd_strand_base,
                     double ssd_strand_pooled, double nic_strand_base,
                     double nic_strand_pooled) {
  CXLPOOL_CHECK(ssd_strand_base < 1.0 && ssd_strand_pooled < 1.0);
  CXLPOOL_CHECK(nic_strand_base < 1.0 && nic_strand_pooled < 1.0);

  TcoReport out;
  out.pcie_switch_infra =
      in.switch_unit_cost * in.num_switches + in.fabric_software +
      (in.adapter_per_host + in.cabling_per_host) * in.hosts;
  out.cxl_infra = in.cxl_cost_per_host * in.hosts;
  out.cxl_infra_net_of_memory_savings =
      out.cxl_infra - in.memory_pooling_savings_per_host * in.hosts;

  // Capacity provisioned for usable demand U scales as 1/(1-s); pooling
  // shrinks the fleet by 1 - (1-s_base)/(1-s_pooled).
  auto fleet_reduction = [](double s_base, double s_pooled) {
    return std::max(0.0, 1.0 - (1.0 - s_base) / (1.0 - s_pooled));
  };
  double ssd_fleet = in.ssds_per_host * in.hosts * in.ssd_unit_cost;
  double nic_fleet = in.nics_per_host * in.hosts * in.nic_unit_cost;
  out.ssd_capex_avoided =
      ssd_fleet * fleet_reduction(ssd_strand_base, ssd_strand_pooled);
  out.nic_capex_avoided =
      nic_fleet * fleet_reduction(nic_strand_base, nic_strand_pooled);

  // Redundancy: per-host spares collapse into per-pod spares.
  double pods = static_cast<double>(in.hosts) / in.pod_size;
  double baseline_spares = in.redundant_nics_per_host * in.hosts;
  double pooled_spares = in.spare_nics_per_pod * pods;
  out.redundancy_capex_avoided =
      std::max(0.0, (baseline_spares - pooled_spares) * in.nic_unit_cost);

  out.total_benefit = out.ssd_capex_avoided + out.nic_capex_avoided +
                      out.redundancy_capex_avoided;
  out.pcie_switch_net = out.total_benefit - out.pcie_switch_infra;
  out.cxl_net = out.total_benefit - out.cxl_infra_net_of_memory_savings;
  return out;
}

}  // namespace cxlpool::tco
