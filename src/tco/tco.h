// Rack-level TCO model comparing the two ways to pool PCIe devices:
// hardware PCIe switches vs software pooling over a CXL memory pod.
//
// Inputs follow the paper's cited figures: a realistic switch deployment
// (HA switch pair + host adapters + cabling + fabric software) "easily
// reaches $80,000" per rack [GigaIO, §1], while switchless MHD-based CXL
// pods cost ≈$600/host [Octopus, §1/§3] and already pay for themselves
// through memory pooling — so PCIe pooling arrives at effectively zero
// incremental infrastructure cost.
//
// Benefits counted on both sides (they deliver the same pooling function):
//  - device capex avoided by reduced stranding (fewer SSDs/NICs provisioned
//    for the same usable capacity): C = U / (1 - s)
//  - redundancy sharing (§2.2): spare NICs per pod instead of per host.
#ifndef SRC_TCO_TCO_H_
#define SRC_TCO_TCO_H_

namespace cxlpool::tco {

struct CostInputs {
  int hosts = 16;

  // Device fleet per host.
  double ssds_per_host = 8;
  double ssd_unit_cost = 800;   // 4 TiB datacenter NVMe
  double nics_per_host = 1;
  double nic_unit_cost = 1800;  // 100 GbE
  // Availability provisioning: one redundant NIC per host today vs a small
  // number of shared spares per pod with pooling.
  double redundant_nics_per_host = 1.0;
  double spare_nics_per_pod = 2.0;
  int pod_size = 8;

  // PCIe switch solution (per rack).
  double switch_unit_cost = 15000;
  int num_switches = 2;  // HA pair
  double adapter_per_host = 500;
  double cabling_per_host = 200;
  double fabric_software = 39000;

  // CXL pod solution.
  double cxl_cost_per_host = 600;  // switchless MHD pod, Octopus-class
  // DRAM capex the memory pool saves per host (the reason the pod is
  // already deployed; paper: positive ROI for memory pooling alone).
  double memory_pooling_savings_per_host = 800;
};

struct TcoReport {
  // Infrastructure capex.
  double pcie_switch_infra = 0;
  double cxl_infra = 0;
  double cxl_infra_net_of_memory_savings = 0;  // can be negative

  // Pooling benefits (identical for both fabrics — both pool devices).
  double ssd_capex_avoided = 0;
  double nic_capex_avoided = 0;
  double redundancy_capex_avoided = 0;
  double total_benefit = 0;

  // Net position per rack: benefit minus infrastructure.
  double pcie_switch_net = 0;
  double cxl_net = 0;
};

// `s*_base` / `s*_pooled` are stranded fractions from the stranding
// simulation (e.g. SSD 0.54 -> 0.19 at pod size 8).
TcoReport ComputeTco(const CostInputs& in, double ssd_strand_base,
                     double ssd_strand_pooled, double nic_strand_base,
                     double nic_strand_pooled);

}  // namespace cxlpool::tco

#endif  // SRC_TCO_TCO_H_
