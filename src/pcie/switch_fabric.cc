#include "src/pcie/switch_fabric.h"

#include <string>

#include "src/common/check.h"

namespace cxlpool::pcie {

PcieSwitchFabric::PcieSwitchFabric(sim::EventLoop& loop,
                                   const PcieSwitchConfig& config)
    : loop_(loop), config_(config) {}

PcieSwitchFabric::~PcieSwitchFabric() {
  // Any device destroyed before the fabric already removed its own slot
  // via the destroy listener; the remaining slots point at live devices.
  for (auto& [id, slot] : devices_) {
    if (slot.device != nullptr) {
      slot.device->set_destroy_listener(nullptr);
      if (slot.device->interposer() == slot.interposer.get()) {
        slot.device->set_interposer(nullptr);
      }
    }
  }
}

Status PcieSwitchFabric::AttachHost(cxl::HostAdapter* host) {
  CXLPOOL_CHECK(host != nullptr);
  if (static_cast<int>(hosts_.size()) >= config_.host_ports) {
    return ResourceExhausted("switch out of host ports");
  }
  for (cxl::HostAdapter* h : hosts_) {
    if (h->id() == host->id()) {
      return AlreadyExists("host already attached");
    }
  }
  hosts_.push_back(host);
  return OkStatus();
}

Status PcieSwitchFabric::AttachDevice(PcieDevice* device, DeviceClass device_class) {
  CXLPOOL_CHECK(device != nullptr);
  if (static_cast<int>(devices_.size()) >= config_.device_ports) {
    return ResourceExhausted("switch out of device ports");
  }
  if (config_.supported != DeviceClass::kAny && config_.supported != device_class) {
    // The vendor-constraint problem (paper §1): this appliance does not
    // pool this kind of device at all.
    return FailedPrecondition("switch does not support this device class");
  }
  if (devices_.contains(device->id())) {
    return AlreadyExists("device already attached");
  }
  if (device->attached()) {
    return FailedPrecondition("device is directly attached to a host");
  }
  DeviceSlot slot;
  slot.device = device;
  slot.device_class = device_class;
  slot.interposer = std::make_unique<PortInterposer>(
      config_.port_link.BytesPerNanos(), config_.hop_latency);
  devices_.emplace(device->id(), std::move(slot));
  // If the device object dies before this fabric, drop its slot so the
  // fabric destructor never touches a destroyed device.
  device->set_destroy_listener(
      [this](PcieDevice* d) { devices_.erase(d->id()); });
  return OkStatus();
}

Status PcieSwitchFabric::Bind(PcieDeviceId device, HostId host) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return NotFound("device not on this switch");
  }
  cxl::HostAdapter* target = nullptr;
  for (cxl::HostAdapter* h : hosts_) {
    if (h->id() == host) {
      target = h;
      break;
    }
  }
  if (target == nullptr) {
    return NotFound("host not on this switch");
  }
  DeviceSlot& slot = it->second;
  if (slot.device->attached()) {
    slot.device->Detach();
    ++rebinds_;
  }
  slot.device->set_interposer(slot.interposer.get());
  slot.device->AttachTo(target);
  slot.bound_host = host;
  return OkStatus();
}

Status PcieSwitchFabric::Unbind(PcieDeviceId device) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return NotFound("device not on this switch");
  }
  DeviceSlot& slot = it->second;
  if (!slot.device->attached()) {
    return FailedPrecondition("device not bound");
  }
  slot.device->Detach();
  slot.device->set_interposer(nullptr);
  slot.bound_host = HostId::Invalid();
  return OkStatus();
}

HostId PcieSwitchFabric::BoundHost(PcieDeviceId device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return HostId::Invalid();
  }
  return it->second.bound_host;
}

}  // namespace cxlpool::pcie
