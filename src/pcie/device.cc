#include "src/pcie/device.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace cxlpool::pcie {

PcieDevice::PcieDevice(PcieDeviceId id, std::string name, sim::EventLoop& loop,
                       cxl::LinkSpec link, PcieTiming timing)
    : id_(id),
      name_(std::move(name)),
      loop_(loop),
      link_(link),
      timing_(timing),
      to_host_(link.BytesPerNanos()),
      from_host_(link.BytesPerNanos()) {}

PcieDevice::~PcieDevice() {
  if (destroy_listener_ != nullptr) {
    auto listener = std::move(destroy_listener_);
    destroy_listener_ = nullptr;
    listener(this);
  }
}

void PcieDevice::AttachTo(cxl::HostAdapter* host) {
  CXLPOOL_CHECK(host != nullptr);
  CXLPOOL_CHECK(host_ == nullptr);
  host_ = host;
  ++generation_;
  // A device dies with its host (the root complex is gone) and comes back
  // with it — unless it was already failed independently, in which case the
  // host reboot does not magically fix it.
  host->AddCrashListener(this, [this](bool crashed) {
    if (crashed) {
      if (!failed_) {
        InjectFailure();
        failed_by_host_crash_ = true;
      }
    } else if (failed_by_host_crash_) {
      failed_by_host_crash_ = false;
      Repair();
    }
  });
  OnAttach();
}

void PcieDevice::Detach() {
  if (host_ == nullptr) {
    return;
  }
  OnDetach();
  host_->RemoveCrashListener(this);
  host_ = nullptr;
  ++generation_;
}

void PcieDevice::InjectFailure() {
  if (failed_) {
    return;
  }
  failed_ = true;
  ++generation_;
  OnFailure();
}

void PcieDevice::Repair() {
  failed_ = false;
  ++generation_;
  // A repaired fail-stop device is a replaced or power-cycled card: it comes
  // back with clean BAR/queue state and fresh engine coroutines, exactly like
  // a function-level reset. Without this, engines that exited on the failure
  // generation bump would never respawn and the device would stay silent.
  OnReset();
}

void PcieDevice::Wedge() {
  if (wedged_ || failed_) {
    return;
  }
  // No generation bump: the device is hung, not re-bound. Engine coroutines
  // keep running and experience the stalls, exactly like real firmware hangs.
  wedged_ = true;
  ++gray_stats_.wedges;
}

void PcieDevice::Reset() {
  ++gray_stats_.resets;
  wedged_ = false;
  // The generation bump is the drain: every in-flight engine coroutine
  // compares its captured generation and exits at its next loop head.
  ++generation_;
  OnReset();
}

sim::Task<Status> PcieDevice::MmioWrite(uint64_t reg, uint64_t value) {
  if (host_ == nullptr) {
    co_return FailedPrecondition("device not attached");
  }
  if (failed_) {
    co_return Unavailable("device " + name_ + " failed");
  }
  Nanos extra = interposer_ ? interposer_->MmioExtraLatency(/*is_read=*/false) : 0;
  // Posted semantics: the device sees the write after the PCIe latency;
  // the CPU continues as soon as its write buffer drains. A wedged device
  // absorbs the write without acting on it — the CPU cannot tell, which is
  // what makes wedges gray.
  loop_.Schedule(timing_.mmio_write + extra, [this, reg, value] {
    if (host_ == nullptr || failed_) {
      return;
    }
    if (wedged_) {
      ++gray_stats_.dropped_mmio_writes;
      return;
    }
    OnMmioWrite(reg, value);
  });
  co_await sim::Delay(loop_, timing_.mmio_post_cpu);
  co_return OkStatus();
}

sim::Task<Result<uint64_t>> PcieDevice::MmioRead(uint64_t reg) {
  if (host_ == nullptr) {
    co_return FailedPrecondition("device not attached");
  }
  if (failed_) {
    co_return Unavailable("device " + name_ + " failed");
  }
  if (wedged_) {
    ++gray_stats_.stalled_ops;
    co_await sim::Delay(loop_, timing_.wedge_stall);
    co_return DeadlineExceeded("MMIO read to wedged device " + name_);
  }
  Nanos extra = interposer_ ? interposer_->MmioExtraLatency(/*is_read=*/true) : 0;
  co_await sim::Delay(loop_, timing_.mmio_read + extra);
  if (wedged_) {
    // Wedged mid-flight: the completion never arrives.
    ++gray_stats_.stalled_ops;
    co_await sim::Delay(loop_, timing_.wedge_stall);
    co_return DeadlineExceeded("MMIO read lost in wedged device " + name_);
  }
  co_return OnMmioRead(reg);
}

sim::Task<Status> PcieDevice::DmaRead(uint64_t addr, std::span<std::byte> out) {
  if (host_ == nullptr) {
    co_return FailedPrecondition("device not attached");
  }
  if (failed_) {
    co_return Unavailable("device " + name_ + " failed");
  }
  if (wedged_) {
    ++gray_stats_.stalled_ops;
    co_await sim::Delay(loop_, timing_.wedge_stall);
    co_return DeadlineExceeded("DMA read on wedged device " + name_);
  }
  ++dma_stats_.reads;
  dma_stats_.read_bytes += out.size();
  Nanos start = loop_.now();
  // Memory-side access (local DRAM or CXL pool; coherent with the attached
  // host's cache via root-complex snoop).
  CO_RETURN_IF_ERROR(co_await host_->DmaRead(addr, out));
  // Device-link serialization overlaps the memory fetch pipeline; total
  // completion is the max plus fixed per-op overhead.
  Nanos link_done = from_host_.Acquire(start, out.size());
  Nanos done = std::max(loop_.now(), link_done) + timing_.dma_overhead;
  if (interposer_ != nullptr) {
    done = std::max(done, interposer_->ChargeDma(start, out.size()));
    done += interposer_->DmaExtraLatency();
  }
  co_await sim::WaitUntil(loop_, done);
  co_return OkStatus();
}

sim::Task<Status> PcieDevice::DmaWrite(uint64_t addr, std::span<const std::byte> in) {
  if (host_ == nullptr) {
    co_return FailedPrecondition("device not attached");
  }
  if (failed_) {
    co_return Unavailable("device " + name_ + " failed");
  }
  if (wedged_) {
    ++gray_stats_.stalled_ops;
    co_await sim::Delay(loop_, timing_.wedge_stall);
    co_return DeadlineExceeded("DMA write on wedged device " + name_);
  }
  ++dma_stats_.writes;
  dma_stats_.write_bytes += in.size();
  Nanos start = loop_.now();
  CO_RETURN_IF_ERROR(co_await host_->DmaWrite(addr, in));
  Nanos link_done = to_host_.Acquire(start, in.size());
  Nanos done = std::max(loop_.now(), link_done) + timing_.dma_overhead;
  if (interposer_ != nullptr) {
    done = std::max(done, interposer_->ChargeDma(start, in.size()));
    done += interposer_->DmaExtraLatency();
  }
  co_await sim::WaitUntil(loop_, done);
  co_return OkStatus();
}

}  // namespace cxlpool::pcie
