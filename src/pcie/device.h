// PCIe device framework.
//
// A PcieDevice is attached to exactly one host's root complex at a time.
// Its CPU-facing surface is MMIO registers (BAR); its memory-facing surface
// is DMA, which resolves through the global AddressMap — so an unmodified
// device can target local DRAM or CXL pool memory, which is the paper's
// core enabling observation ("PCIe devices can directly use CXL memory as
// I/O buffers without device modifications").
//
// Only the attached host can issue MMIO to the device. Remote hosts go
// through the core/ MMIO forwarding channel (paper §4.1) or, in the
// baseline, through a hardware PCIe switch (switch_fabric.h).
#ifndef SRC_PCIE_DEVICE_H_
#define SRC_PCIE_DEVICE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/cxl/params.h"
#include "src/sim/bandwidth.h"
#include "src/sim/task.h"

namespace cxlpool::pcie {

struct PcieTiming {
  // Posted MMIO write: the device observes the register change after
  // mmio_write; the issuing CPU only pays mmio_post_cpu (write buffer).
  Nanos mmio_write = 300;
  Nanos mmio_post_cpu = 60;
  // Non-posted MMIO read (round trip).
  Nanos mmio_read = 900;
  // Fixed per-DMA-operation overhead (request issue, root complex, device
  // engine) on top of memory latency and link serialization.
  Nanos dma_overhead = 400;
  // Extra one-way latency per hop through a hardware PCIe switch (the
  // baseline fabric this paper argues against on cost, not performance).
  Nanos switch_hop = 150;
  // How long a requester stalls on a *wedged* device before its completion
  // timeout fires: MMIO reads and DMA hang this long and then return
  // kDeadlineExceeded. Posted MMIO writes have no completion to time out —
  // they are silently absorbed. Mirrors a PCIe completion timeout.
  Nanos wedge_stall = 20 * kMicrosecond;
};

// Interposer a fabric (e.g. the PCIe switch baseline) installs between a
// device and its bound host to charge extra hop latency and shared fabric
// bandwidth. The device itself stays unmodified — the fabric is
// transparent, exactly like a real switch.
class FabricInterposer {
 public:
  virtual ~FabricInterposer() = default;
  // Charges `bytes` of fabric bandwidth starting at `now`; returns the
  // fabric completion time (the device waits for max(memory, link, fabric)).
  virtual Nanos ChargeDma(Nanos now, uint64_t bytes) = 0;
  // Extra one-way latency added to each DMA operation.
  virtual Nanos DmaExtraLatency() const = 0;
  // Extra latency added to each MMIO operation (round trip for reads).
  virtual Nanos MmioExtraLatency(bool is_read) const = 0;
};

class PcieDevice {
 public:
  PcieDevice(PcieDeviceId id, std::string name, sim::EventLoop& loop,
             cxl::LinkSpec link, PcieTiming timing);
  virtual ~PcieDevice();
  PcieDevice(const PcieDevice&) = delete;
  PcieDevice& operator=(const PcieDevice&) = delete;

  PcieDeviceId id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::EventLoop& loop() { return loop_; }
  const PcieTiming& timing() const { return timing_; }

  // --- Attachment ---
  // Binds the device to `host`'s root complex. Subclasses may spawn their
  // engines from OnAttach.
  void AttachTo(cxl::HostAdapter* host);
  void Detach();
  cxl::HostAdapter* attached_host() { return host_; }
  bool attached() const { return host_ != nullptr; }

  // --- Failure injection ---
  bool failed() const { return failed_; }
  void InjectFailure();
  // Revives a fail-stopped device as a replaced/power-cycled card: clears
  // the failure, bumps the generation, and runs the OnReset hook so BAR and
  // queue state come up clean and engine coroutines respawn.
  void Repair();

  // --- Gray failure: wedge (paper §5, partial failures) ---
  // A wedged device is firmware-hung rather than dead: posted MMIO writes
  // are absorbed without ever reaching device logic, and MMIO reads / DMA
  // stall for timing().wedge_stall before failing with kDeadlineExceeded —
  // the caller experiences a timeout, not a crisp error. Distinct from
  // InjectFailure (fail-stop: immediate kUnavailable). Recovery is Reset(),
  // not Repair(); the owning agent's watchdog issues it.
  bool wedged() const { return wedged_; }
  void Wedge();
  // FLR-style function level reset: clears a wedge, bumps the generation
  // (in-flight engine coroutines observe the bump and exit — the "drain"),
  // and re-initializes BAR/queue state via the OnReset hook. Does NOT
  // revive a fail-stopped device (that is Repair's job).
  void Reset();

  struct GrayStats {
    uint64_t wedges = 0;               // Wedge() transitions
    uint64_t dropped_mmio_writes = 0;  // posted writes absorbed while wedged
    uint64_t stalled_ops = 0;          // reads/DMAs that hit wedge_stall
    uint64_t resets = 0;               // FLR invocations
  };
  const GrayStats& gray_stats() const { return gray_stats_; }

  // --- MMIO (from the attached host's CPU) ---
  sim::Task<Status> MmioWrite(uint64_t reg, uint64_t value);
  sim::Task<Result<uint64_t>> MmioRead(uint64_t reg);

  // Device generation counter: bumped on attach/detach/failure; lets
  // drivers detect they are talking to a re-bound device.
  uint64_t generation() const { return generation_; }

  // Installed by a switch fabric while the device is bound through it;
  // nullptr for directly attached devices.
  void set_interposer(FabricInterposer* interposer) { interposer_ = interposer; }
  FabricInterposer* interposer() { return interposer_; }

  // Invoked from ~PcieDevice so a registrar holding a raw pointer (e.g. a
  // switch fabric) can drop it; the registrar clears this when it is torn
  // down first, whichever side dies first stays safe.
  void set_destroy_listener(std::function<void(PcieDevice*)> listener) {
    destroy_listener_ = std::move(listener);
  }

 protected:
  // Device logic hooks (untimed; timing charged by the MMIO wrappers).
  virtual void OnMmioWrite(uint64_t reg, uint64_t value) = 0;
  virtual uint64_t OnMmioRead(uint64_t reg) = 0;
  virtual void OnAttach() {}
  virtual void OnDetach() {}
  virtual void OnFailure() {}
  // Re-initialize device state after an FLR (clear rings, respawn engines).
  // Called with the wedge already cleared and the generation already bumped.
  virtual void OnReset() {}

  // --- DMA helpers for subclasses (timed) ---
  // Charge = device-link serialization + dma_overhead + memory-side cost
  // (local DRAM or CXL pool via the attached host's adapter).
  sim::Task<Status> DmaRead(uint64_t addr, std::span<std::byte> out);
  sim::Task<Status> DmaWrite(uint64_t addr, std::span<const std::byte> in);

  struct DmaStats {
    uint64_t reads = 0;
    uint64_t read_bytes = 0;
    uint64_t writes = 0;
    uint64_t write_bytes = 0;
  };
  const DmaStats& dma_stats() const { return dma_stats_; }

 private:
  PcieDeviceId id_;
  std::string name_;
  sim::EventLoop& loop_;
  cxl::LinkSpec link_;
  PcieTiming timing_;
  cxl::HostAdapter* host_ = nullptr;
  FabricInterposer* interposer_ = nullptr;
  bool failed_ = false;
  bool wedged_ = false;
  bool failed_by_host_crash_ = false;  // host crash (not real fault) failed us
  GrayStats gray_stats_;
  std::function<void(PcieDevice*)> destroy_listener_;
  uint64_t generation_ = 0;
  sim::BandwidthQueue to_host_;    // DMA writes / read completions
  sim::BandwidthQueue from_host_;  // DMA read data fetch direction
  DmaStats dma_stats_;
};

}  // namespace cxlpool::pcie

#endif  // SRC_PCIE_DEVICE_H_
