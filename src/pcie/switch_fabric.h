// Hardware PCIe switch baseline (the incumbent the paper argues against).
//
// A routable PCIe switch decouples devices from hosts in hardware: hosts
// and devices plug into switch ports, and the management plane binds any
// device to any host. Performance-wise the switch is excellent — only
// ~150 ns extra latency per hop and full crossbar bandwidth — its problems
// are cost (≈$80k per rack with HA pairs, adapters, cabling, licenses;
// paper §1) and inflexibility (port counts, vendor-specific device-type
// constraints; §1). Both are modeled: hop latency + per-port bandwidth
// here, dollars in src/tco/, constraints via DeviceClass port typing.
#ifndef SRC_PCIE_SWITCH_FABRIC_H_
#define SRC_PCIE_SWITCH_FABRIC_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/pcie/device.h"
#include "src/sim/bandwidth.h"

namespace cxlpool::pcie {

// Vendor product lines restrict which device classes a pooling appliance
// supports (e.g. GPU-only SmartStack, separate storage vs accelerator
// appliances). kAny models a hypothetical unrestricted switch.
enum class DeviceClass : uint8_t {
  kAny = 0,
  kNic,
  kStorage,
  kAccelerator,
};

struct PcieSwitchConfig {
  int host_ports = 8;
  int device_ports = 16;
  cxl::LinkSpec port_link;        // default x8 gen5
  Nanos hop_latency = 150;        // one traversal (ingress->egress)
  DeviceClass supported = DeviceClass::kAny;
};

class PcieSwitchFabric {
 public:
  PcieSwitchFabric(sim::EventLoop& loop, const PcieSwitchConfig& config);
  ~PcieSwitchFabric();
  PcieSwitchFabric(const PcieSwitchFabric&) = delete;
  PcieSwitchFabric& operator=(const PcieSwitchFabric&) = delete;

  const PcieSwitchConfig& config() const { return config_; }

  // Plugs a host / device into a free port.
  Status AttachHost(cxl::HostAdapter* host);
  Status AttachDevice(PcieDevice* device, DeviceClass device_class);

  // Routes `device` to `host`: the device now DMAs into that host's memory
  // space and the host can MMIO it, all through the switch. Rebinding an
  // already-bound device detaches it first (this is the switch's key
  // capability — and what the CXL-pool design replicates in software).
  Status Bind(PcieDeviceId device, HostId host);
  Status Unbind(PcieDeviceId device);

  // The host currently bound to `device` (invalid HostId if none).
  HostId BoundHost(PcieDeviceId device) const;

  uint64_t rebinds() const { return rebinds_; }

 private:
  struct PortInterposer : public FabricInterposer {
    PortInterposer(double bytes_per_ns, Nanos hop)
        : bw(bytes_per_ns), hop_latency(hop) {}
    Nanos ChargeDma(Nanos now, uint64_t bytes) override {
      return bw.Acquire(now, bytes);
    }
    Nanos DmaExtraLatency() const override { return 2 * hop_latency; }
    Nanos MmioExtraLatency(bool is_read) const override {
      return is_read ? 2 * hop_latency : hop_latency;
    }
    sim::BandwidthQueue bw;
    Nanos hop_latency;
  };

  struct DeviceSlot {
    PcieDevice* device = nullptr;
    DeviceClass device_class = DeviceClass::kAny;
    HostId bound_host;
    std::unique_ptr<PortInterposer> interposer;
  };

  sim::EventLoop& loop_;
  PcieSwitchConfig config_;
  std::vector<cxl::HostAdapter*> hosts_;
  std::map<PcieDeviceId, DeviceSlot> devices_;
  uint64_t rebinds_ = 0;
};

}  // namespace cxlpool::pcie

#endif  // SRC_PCIE_SWITCH_FABRIC_H_
