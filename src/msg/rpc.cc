#include "src/msg/rpc.h"

#include "src/common/check.h"
#include "src/msg/wire.h"
#include "src/sim/logger.h"

namespace cxlpool::msg {

namespace {
// Responses carry only [kind][call_id][method]; requests additionally carry
// the trace triple (trace_id, parent_span, sent_at) — always present, zero
// when untraced, so frame length is invariant to tracing state.
constexpr size_t kRespHeaderSize = 1 + 8 + 2;
constexpr size_t kReqHeaderSize = kRespHeaderSize + 8 + 8 + 8;
}  // namespace

namespace {
// Releases a semaphore on scope exit (co_return included).
class TurnGuard {
 public:
  explicit TurnGuard(sim::Semaphore* sem) : sem_(sem) {}
  ~TurnGuard() { sem_->Release(); }
  TurnGuard(const TurnGuard&) = delete;
  TurnGuard& operator=(const TurnGuard&) = delete;

 private:
  sim::Semaphore* sem_;
};
}  // namespace

sim::Task<Result<std::vector<std::byte>>> RpcClient::Call(
    uint16_t method, std::span<const std::byte> request, Nanos deadline,
    obs::TraceContext ctx) {
  co_await turn_.Acquire();
  TurnGuard guard(&turn_);
  uint64_t id = next_call_id_++;
  sim::EventLoop& loop = endpoint_.loop();
  uint32_t host = endpoint_.host().id().value();

  Nanos sent_at = loop.now();
  std::vector<std::byte> frame;
  frame.reserve(kReqHeaderSize + request.size());
  wire::Writer w(&frame);
  w.U8(kRpcRequest);
  w.U64(id);
  w.U16(method);
  w.U64(ctx.trace_id);
  w.U64(ctx.span_id);
  w.U64(static_cast<uint64_t>(sent_at));
  w.Bytes(request);

  obs::Span enqueue =
      obs::MaybeStartSpan(tracer_, "rpc.enqueue", host, ctx, sent_at);
  Status st = co_await endpoint_.Send(frame);
  enqueue.End(loop.now());
  if (!st.ok()) {
    co_return st;
  }

  for (;;) {
    std::vector<std::byte> resp;
    st = co_await endpoint_.Recv(&resp, deadline);
    if (!st.ok()) {
      co_return st;
    }
    if (resp.size() < kRespHeaderSize) {
      co_return Internal("short RPC frame");
    }
    wire::Reader r(resp);
    uint8_t kind = r.U8();
    uint64_t got_id = r.U64();
    uint16_t code_or_method = r.U16();
    if (got_id != id) {
      continue;  // stale response from an abandoned call; drop
    }
    if (kind == kRpcErrorResponse) {
      co_return Status(static_cast<StatusCode>(code_or_method),
                       "remote handler failed");
    }
    if (kind != kRpcResponse) {
      co_return Internal("unexpected RPC frame kind");
    }
    auto rest = r.Rest();
    co_return std::vector<std::byte>(rest.begin(), rest.end());
  }
}

sim::Task<> RpcServer::Serve(sim::StopToken& stop) {
  sim::EventLoop& loop = endpoint_.loop();
  uint32_t host = endpoint_.host().id().value();
  while (!stop.stopped()) {
    std::vector<std::byte> frame;
    // Slice the wait so the stop flag is observed promptly.
    Status st = co_await endpoint_.Recv(&frame, loop.now() + 50 * kMicrosecond);
    if (!st.ok()) {
      if (st.code() == StatusCode::kDeadlineExceeded) {
        continue;
      }
      // Channel path died (MHD/link down, host crashed). A silent exit
      // here is an invisible dead control plane — count and log it so the
      // outage shows up even without ServeSupervised.
      ++stats_.serve_aborts;
      CXLPOOL_LOG(Warning) << "RPC serve loop aborted on channel death: " << st;
      co_return;
    }
    if (frame.size() < kReqHeaderSize) {
      continue;
    }
    wire::Reader r(frame);
    uint8_t kind = r.U8();
    uint64_t id = r.U64();
    uint16_t method = r.U16();
    obs::TraceContext wire_ctx;
    wire_ctx.trace_id = r.U64();
    wire_ctx.span_id = r.U64();
    Nanos sent_at = static_cast<Nanos>(r.U64());
    if (kind != kRpcRequest) {
      continue;
    }

    // The flight span (sender's Send to our dequeue) is only knowable
    // here, after the fact — record it retroactively, then serve under it.
    obs::TraceContext serve_parent = wire_ctx;
    if (tracer_ != nullptr && wire_ctx.traced()) {
      serve_parent = tracer_->RecordSpan("rpc.flight", host, wire_ctx, sent_at,
                                         loop.now());
    }
    obs::Span serve = obs::MaybeStartSpan(tracer_, "rpc.serve", host,
                                          serve_parent, loop.now());
    obs::TraceContext handler_ctx = serve.context();
    Result<std::vector<std::byte>> result =
        co_await handler_(method, r.Rest(), handler_ctx);
    serve.End(loop.now());
    std::vector<std::byte> resp;
    wire::Writer w(&resp);
    if (result.ok()) {
      w.U8(kRpcResponse);
      w.U64(id);
      w.U16(method);
      w.Bytes(result.value());
    } else {
      w.U8(kRpcErrorResponse);
      w.U64(id);
      w.U16(static_cast<uint16_t>(result.status().code()));
    }
    ++stats_.calls_served;
    obs::Span reply = obs::MaybeStartSpan(tracer_, "rpc.reply", host,
                                          serve_parent, loop.now());
    Status send_st = co_await endpoint_.Send(resp);
    reply.End(loop.now());
    if (!send_st.ok()) {
      ++stats_.serve_aborts;
      CXLPOOL_LOG(Warning) << "RPC serve loop aborted on send failure: " << send_st;
      co_return;
    }
  }
}

sim::Task<> RpcServer::ServeSupervised(sim::StopToken& stop,
                                       Nanos initial_backoff, Nanos max_backoff) {
  sim::PollBackoff backoff(initial_backoff, max_backoff);
  while (!stop.stopped()) {
    uint64_t served_before = stats_.calls_served;
    co_await Serve(stop);
    if (stop.stopped()) {
      co_return;
    }
    if (stats_.calls_served > served_before) {
      backoff.Reset();  // the last incarnation made progress
    }
    ++stats_.restarts;
    co_await sim::Delay(endpoint_.loop(), backoff.NextDelay());
  }
}

}  // namespace cxlpool::msg
