#include "src/msg/rpc.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/msg/wire.h"
#include "src/sim/logger.h"

namespace cxlpool::msg {

namespace {
// Responses carry [version][kind][call_id][method]; requests additionally
// carry priority, deadline, and the trace triple (trace_id, parent_span,
// sent_at) — every field always present, zero/default when unused, so
// frame length is invariant to tracing state, deadlines, and priorities.
constexpr size_t kRespHeaderSize = 1 + 1 + 8 + 2;
constexpr size_t kReqHeaderSize = kRespHeaderSize + 1 + 8 + 8 + 8 + 8;
}  // namespace

size_t RpcClient::DataWaiters() const {
  size_t n = 0;
  for (const TurnWaiter* w : turn_queue_) {
    if (w->priority != kPriorityControl) {
      ++n;
    }
  }
  return n;
}

sim::Task<Status> RpcClient::AcquireTurn(uint8_t priority) {
  uint32_t limit = std::max<uint32_t>(1, options_.max_inflight);
  // Fast path requires an empty queue, not just a free slot: a freed slot
  // always goes to the queue head first, so nobody overtakes. Invariant:
  // a non-empty queue implies inflight_ == limit.
  if (inflight_ < limit && turn_queue_.empty()) {
    ++inflight_;
    co_return OkStatus();
  }
  if (priority != kPriorityControl && options_.max_pending > 0 &&
      DataWaiters() >= options_.max_pending) {
    if (options_.overflow == OverflowPolicy::kRejectNew) {
      ++stats_.rejected;
      co_return Overloaded("client send queue full (reject-new)");
    }
    // kDropOldest: evict the oldest queued data-priority call. It wakes,
    // sees `dropped`, and returns kOverloaded without ever holding the
    // turn; the arriving call takes its place in line.
    for (auto it = turn_queue_.begin(); it != turn_queue_.end(); ++it) {
      if ((*it)->priority != kPriorityControl) {
        TurnWaiter* victim = *it;
        turn_queue_.erase(it);
        victim->dropped = true;
        victim->event.Set();
        ++stats_.dropped_oldest;
        break;
      }
    }
  }
  TurnWaiter waiter(endpoint_.loop());
  waiter.priority = priority;
  if (priority == kPriorityControl) {
    // Ahead of every data waiter, behind earlier control waiters: control
    // stays FIFO among itself but never queues behind a data storm.
    auto pos = std::find_if(
        turn_queue_.begin(), turn_queue_.end(),
        [](const TurnWaiter* w) { return w->priority != kPriorityControl; });
    turn_queue_.insert(pos, &waiter);
  } else {
    turn_queue_.push_back(&waiter);
  }
  co_await waiter.event.Wait();
  if (waiter.dropped) {
    co_return Overloaded("client send queue full (drop-oldest)");
  }
  co_return OkStatus();  // ReleaseTurn handed us a slot; inflight_ unchanged
}

void RpcClient::ReleaseTurn() {
  if (turn_queue_.empty()) {
    --inflight_;
    return;
  }
  TurnWaiter* next = turn_queue_.front();
  turn_queue_.pop_front();
  next->event.Set();  // slot passes directly; inflight_ count unchanged
}

namespace {
// Releases the client turn on scope exit (co_return included).
class TurnGuard {
 public:
  using Release = void (RpcClient::*)();
  TurnGuard(RpcClient* client, Release release)
      : client_(client), release_(release) {}
  ~TurnGuard() { (client_->*release_)(); }
  TurnGuard(const TurnGuard&) = delete;
  TurnGuard& operator=(const TurnGuard&) = delete;

 private:
  RpcClient* client_;
  Release release_;
};
}  // namespace

sim::Task<Result<std::vector<std::byte>>> RpcClient::Call(
    uint16_t method, std::span<const std::byte> request, Nanos deadline,
    obs::TraceContext ctx, uint8_t priority, Nanos op_deadline) {
  if (op_deadline == kInheritCallDeadline) {
    op_deadline = deadline;
  }
  CO_RETURN_IF_ERROR(co_await AcquireTurn(priority));
  TurnGuard guard(this, &RpcClient::ReleaseTurn);
  sim::EventLoop& loop = endpoint_.loop();
  // Waiting out the queue may have consumed the whole budget; sending a
  // dead request just loads the ring with work every hop will shed anyway.
  if (deadline > 0 && loop.now() >= deadline) {
    ++stats_.expired_in_queue;
    co_return DeadlineExceeded("deadline expired waiting in client queue");
  }
  uint64_t id = next_call_id_++;
  uint32_t host = endpoint_.host().id().value();

  Nanos sent_at = loop.now();
  std::vector<std::byte> frame;
  frame.reserve(kReqHeaderSize + request.size());
  wire::Writer w(&frame);
  w.U8(kRpcWireVersion);
  w.U8(kRpcRequest);
  w.U64(id);
  w.U16(method);
  w.U8(priority);
  w.U64(static_cast<uint64_t>(op_deadline));
  w.U64(ctx.trace_id);
  w.U64(ctx.span_id);
  w.U64(static_cast<uint64_t>(sent_at));
  w.Bytes(request);

  obs::Span enqueue =
      obs::MaybeStartSpan(tracer_, "rpc.enqueue", host, ctx, sent_at);
  Status st = co_await endpoint_.Send(frame, priority);
  enqueue.End(loop.now());
  if (!st.ok()) {
    co_return st;
  }

  PendingCall call(loop);
  call.deadline = deadline;
  pending_calls_.emplace(id, &call);
  // Response demux, leader/follower: whichever pending call finds no
  // active reader pumps the receive ring for everyone. A pumping round
  // that completes a FOLLOWER wakes it and the leader keeps pumping; a
  // leader whose own call completes hands the pump to the oldest
  // remaining call on the way out. Known slack: a call staged while the
  // leader is mid-Recv against a later sibling deadline observes its own
  // timeout only when that round returns (the bound is recomputed every
  // round, so lateness is capped at one Recv).
  while (!call.done) {
    if (reader_active_) {
      co_await call.event.Wait();
      call.event.Reset();
      continue;
    }
    reader_active_ = true;
    co_await PumpResponses();
    reader_active_ = false;
  }
  WakeNextReader();
  if (!call.status.ok()) {
    co_return std::move(call.status);
  }
  co_return std::move(call.payload);
}

void RpcClient::Complete(PendingCall* call, Status status) {
  call->status = std::move(status);
  call->done = true;
  call->event.Set();
}

void RpcClient::FailOldest(Status status) {
  if (pending_calls_.empty()) {
    return;
  }
  PendingCall* oldest = pending_calls_.begin()->second;
  pending_calls_.erase(pending_calls_.begin());
  Complete(oldest, std::move(status));
}

void RpcClient::WakeNextReader() {
  if (reader_active_ || pending_calls_.empty()) {
    return;
  }
  pending_calls_.begin()->second->event.Set();
}

sim::Task<> RpcClient::PumpResponses() {
  sim::EventLoop& loop = endpoint_.loop();
  // Bound the wait by the earliest pending deadline so an expiring call
  // is failed promptly even while later-deadline siblings keep arriving.
  // All-unbounded pendings poll in slices (the stop-and-wait client could
  // block forever here too, but a slice keeps the sweep responsive once
  // bounded and unbounded calls share the wire).
  Nanos wait_deadline = 0;
  for (const auto& [pending_id, pending] : pending_calls_) {
    if (pending->deadline > 0) {
      wait_deadline = wait_deadline == 0
                          ? pending->deadline
                          : std::min(wait_deadline, pending->deadline);
    }
  }
  if (wait_deadline == 0) {
    wait_deadline = loop.now() + 50 * kMicrosecond;
  }
  std::vector<std::byte> resp;
  Status st = co_await endpoint_.Recv(&resp, wait_deadline);
  if (!st.ok()) {
    if (st.code() == StatusCode::kDeadlineExceeded) {
      // Sweep every call whose own wait bound has passed; the rest were
      // only cut short by a sibling's earlier deadline (or the slice).
      Nanos now = loop.now();
      for (auto it = pending_calls_.begin(); it != pending_calls_.end();) {
        PendingCall* pending = it->second;
        if (pending->deadline > 0 && now >= pending->deadline) {
          it = pending_calls_.erase(it);
          ++stats_.expired_in_flight;
          Complete(pending, st);
        } else {
          ++it;
        }
      }
      co_return;
    }
    // Channel death: every in-flight call fails the same way.
    std::map<uint64_t, PendingCall*> dead;
    dead.swap(pending_calls_);
    for (auto& [dead_id, pending] : dead) {
      Complete(pending, st);
    }
    co_return;
  }
  if (resp.size() < kRespHeaderSize) {
    FailOldest(Internal("short RPC frame"));
    co_return;
  }
  wire::Reader r(resp);
  uint8_t version = r.U8();
  if (version != kRpcWireVersion) {
    FailOldest(InvalidArgument("unsupported RPC wire version"));
    co_return;
  }
  uint8_t kind = r.U8();
  uint64_t got_id = r.U64();
  uint16_t code_or_method = r.U16();
  auto it = pending_calls_.find(got_id);
  if (it == pending_calls_.end()) {
    // Response to a call that already expired or was abandoned.
    ++stats_.stale_responses;
    co_return;
  }
  PendingCall* pending = it->second;
  pending_calls_.erase(it);
  if (kind == kRpcErrorResponse) {
    Complete(pending, Status(static_cast<StatusCode>(code_or_method),
                             "remote handler failed"));
  } else if (kind != kRpcResponse) {
    Complete(pending, Internal("unexpected RPC frame kind"));
  } else {
    auto rest = r.Rest();
    pending->payload.assign(rest.begin(), rest.end());
    Complete(pending, OkStatus());
  }
}

namespace {
// Serves guard: balances AdmissionController::TryEnterServe on every exit.
class ServeSlot {
 public:
  explicit ServeSlot(AdmissionController* admission) : admission_(admission) {}
  ~ServeSlot() {
    if (admission_ != nullptr) {
      admission_->ExitServe();
    }
  }
  ServeSlot(const ServeSlot&) = delete;
  ServeSlot& operator=(const ServeSlot&) = delete;

 private:
  AdmissionController* admission_;
};
}  // namespace

sim::Task<> RpcServer::Serve(sim::StopToken& stop) {
  sim::EventLoop& loop = endpoint_.loop();
  uint32_t host = endpoint_.host().id().value();
  while (!stop.stopped()) {
    std::vector<std::byte> frame;
    // Slice the wait so the stop flag is observed promptly.
    Status st = co_await endpoint_.Recv(&frame, loop.now() + 50 * kMicrosecond);
    if (!st.ok()) {
      if (st.code() == StatusCode::kDeadlineExceeded) {
        continue;
      }
      // Channel path died (MHD/link down, host crashed). A silent exit
      // here is an invisible dead control plane — count and log it so the
      // outage shows up even without ServeSupervised.
      ++stats_.serve_aborts;
      CXLPOOL_LOG(Warning) << "RPC serve loop aborted on channel death: " << st;
      co_return;
    }
    if (frame.size() < kReqHeaderSize) {
      // Version check before the length check would misattribute truncated
      // new-format frames; a frame long enough to carry a version byte but
      // with the wrong one is the old format (or garbage) — typed reject.
      if (!frame.empty() &&
          static_cast<uint8_t>(frame[0]) != kRpcWireVersion) {
        ++stats_.bad_version;
      }
      continue;
    }
    wire::Reader r(frame);
    uint8_t version = r.U8();
    if (version != kRpcWireVersion) {
      // Old-format frame: there is no call_id we can trust to reply to, so
      // count and drop. The peer's call times out rather than misparses.
      ++stats_.bad_version;
      CXLPOOL_LOG(Warning) << "RPC frame with unsupported wire version "
                           << static_cast<int>(version) << " dropped";
      continue;
    }
    uint8_t kind = r.U8();
    uint64_t id = r.U64();
    uint16_t method = r.U16();
    ServerContext sctx;
    sctx.priority = r.U8();
    sctx.deadline = static_cast<Nanos>(r.U64());
    sctx.trace.trace_id = r.U64();
    sctx.trace.span_id = r.U64();
    Nanos sent_at = static_cast<Nanos>(r.U64());
    if (kind != kRpcRequest) {
      continue;
    }
    obs::TraceContext wire_ctx = sctx.trace;
    Nanos now = loop.now();
    Nanos sojourn = now - sent_at;

    // Refuse dead or sheddable work BEFORE the handler touches anything
    // expensive. The error reply is cheap (header-only) and tells the
    // caller exactly why: kDeadlineExceeded = your budget ran out in our
    // queue; kOverloaded = alive but saturated, back off.
    Status refuse = OkStatus();
    const char* refuse_span = nullptr;
    if (sctx.deadline > 0 && now >= sctx.deadline) {
      ++stats_.expired;
      refuse = DeadlineExceeded("request expired before serve");
      refuse_span = "rpc.expired";
    } else if (admission_ != nullptr &&
               admission_->ShouldShed(sojourn, sctx.priority, now)) {
      ++stats_.shed;
      refuse = Overloaded("shed by admission control");
      refuse_span = "rpc.shed";
    }
    bool entered = false;
    if (refuse.ok() && admission_ != nullptr &&
        sctx.priority != kPriorityControl) {
      // The inflight bound is a data-plane limit: control (probes, leases,
      // reports) must get through a saturated agent, or overload turns
      // into false wedge detections and dead heartbeats.
      entered = admission_->TryEnterServe();
      if (!entered) {
        ++stats_.shed;
        refuse = Overloaded("home agent at max inflight");
        refuse_span = "rpc.shed";
      }
    }
    if (!refuse.ok()) {
      if (tracer_ != nullptr && wire_ctx.traced()) {
        // The whole story of this request is its queue wait; record it as
        // one retroactive span so sheds are visible in traces.
        tracer_->RecordSpan(refuse_span, host, wire_ctx, sent_at, now);
      }
      std::vector<std::byte> resp;
      wire::Writer w(&resp);
      w.U8(kRpcWireVersion);
      w.U8(kRpcErrorResponse);
      w.U64(id);
      w.U16(static_cast<uint16_t>(refuse.code()));
      Status send_st = co_await endpoint_.Send(resp);
      if (!send_st.ok()) {
        ++stats_.serve_aborts;
        co_return;
      }
      continue;
    }
    ServeSlot slot(entered ? admission_ : nullptr);

    // The flight span (sender's Send to our dequeue) is only knowable
    // here, after the fact — record it retroactively, then serve under it.
    obs::TraceContext serve_parent = wire_ctx;
    if (tracer_ != nullptr && wire_ctx.traced()) {
      serve_parent = tracer_->RecordSpan("rpc.flight", host, wire_ctx, sent_at,
                                         loop.now());
    }
    obs::Span serve = obs::MaybeStartSpan(tracer_, "rpc.serve", host,
                                          serve_parent, loop.now());
    sctx.trace = serve.context();
    Result<std::vector<std::byte>> result =
        co_await handler_(method, r.Rest(), sctx);
    serve.End(loop.now());
    std::vector<std::byte> resp;
    wire::Writer w(&resp);
    if (result.ok()) {
      w.U8(kRpcWireVersion);
      w.U8(kRpcResponse);
      w.U64(id);
      w.U16(method);
      w.Bytes(result.value());
    } else {
      w.U8(kRpcWireVersion);
      w.U8(kRpcErrorResponse);
      w.U64(id);
      w.U16(static_cast<uint16_t>(result.status().code()));
    }
    ++stats_.calls_served;
    obs::Span reply = obs::MaybeStartSpan(tracer_, "rpc.reply", host,
                                          serve_parent, loop.now());
    Status send_st = co_await endpoint_.Send(resp);
    reply.End(loop.now());
    if (!send_st.ok()) {
      ++stats_.serve_aborts;
      CXLPOOL_LOG(Warning) << "RPC serve loop aborted on send failure: " << send_st;
      co_return;
    }
  }
}

sim::Task<> RpcServer::ServeSupervised(sim::StopToken& stop,
                                       Nanos initial_backoff, Nanos max_backoff) {
  sim::PollBackoff backoff(initial_backoff, max_backoff);
  while (!stop.stopped()) {
    uint64_t served_before = stats_.calls_served;
    co_await Serve(stop);
    if (stop.stopped()) {
      co_return;
    }
    if (stats_.calls_served > served_before) {
      backoff.Reset();  // the last incarnation made progress
    }
    ++stats_.restarts;
    co_await sim::Delay(endpoint_.loop(), backoff.NextDelay());
  }
}

}  // namespace cxlpool::msg
