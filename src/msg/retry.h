// RetryPolicy: exponential backoff with deterministic, seeded jitter for
// control-plane RPCs. A single timed-out migrate or report RPC must not be
// terminal — the fault that delayed it (link blip, restarting server, MHD
// hiccup) usually clears within a few backoff periods. Jitter decorrelates
// concurrent retriers (every lessee of a failed device retries at once);
// the Rng is explicit so whole experiments still replay bit-for-bit.
#ifndef SRC_MSG_RETRY_H_
#define SRC_MSG_RETRY_H_

#include <vector>

#include "src/common/status.h"
#include "src/msg/rpc.h"
#include "src/sim/random.h"

namespace cxlpool::msg {

class RetryPolicy {
 public:
  struct Options {
    int max_attempts = 4;
    Nanos initial_backoff = 20 * kMicrosecond;
    Nanos max_backoff = 400 * kMicrosecond;
    double multiplier = 2.0;
    // Each backoff is scaled by a uniform factor in [1-jitter, 1+jitter].
    double jitter = 0.25;
    // Per-attempt deadline escalation: attempt N waits
    // attempt_timeout * multiplier^(N-1). >1 lets callers probe with an
    // aggressive first deadline (fast failover) while later attempts wait
    // long enough for a slow-but-alive peer to answer — the pattern that
    // turns a timeout-triggered duplicate into a dedup hit instead of an
    // error (see ForwardedMmioPath).
    double timeout_multiplier = 1.0;
    // Token-bucket retry budget: each fresh Call earns `budget_ratio`
    // tokens (capped at budget_burst) and every retry spends one, so
    // sustained retries can never exceed that fraction of fresh load —
    // the amplification bound that keeps a saturated path from feeding
    // itself. 0 = unlimited (legacy). The bucket starts full (burst), so
    // isolated failures still get their max_attempts.
    double budget_ratio = 0.0;
    double budget_burst = 10.0;
    uint64_t seed = 0x9e3779b97f4a7c15ULL;
  };

  RetryPolicy() : RetryPolicy(Options()) {}
  explicit RetryPolicy(Options options)
      : options_(options),
        rng_(options.seed),
        budget_tokens_(options.budget_burst) {}

  // Transient failures worth retrying: the peer may come back (timeout) or
  // the path may heal (unavailable). Application errors are terminal.
  static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded ||
           status.code() == StatusCode::kUnavailable;
  }

  // Jittered backoff before retry number `retry` (1-based). Advances the
  // internal Rng.
  Nanos BackoffFor(int retry);

  // RpcClient::Call with up to max_attempts attempts. Each attempt gets a
  // fresh deadline of now + attempt_timeout; retryable failures back off
  // (exponential + jitter) between attempts, gated by the retry budget.
  // `ctx` is forwarded to every attempt, so retried attempts stay in the
  // originating trace. `op_deadline` (absolute, 0 = none) caps the whole
  // operation: attempt deadlines never exceed it and no retry starts past
  // it — this is the deadline the wire header propagates downstream.
  // `priority` rides every attempt's header (control jumps client queues
  // and is never shed by home agents).
  sim::Task<Result<std::vector<std::byte>>> Call(RpcClient& client,
                                                 uint16_t method,
                                                 std::span<const std::byte> request,
                                                 Nanos attempt_timeout,
                                                 sim::EventLoop& loop,
                                                 obs::TraceContext ctx = {},
                                                 Nanos op_deadline = 0,
                                                 uint8_t priority = kPriorityData);

  struct Stats {
    uint64_t calls = 0;
    uint64_t retries = 0;        // attempts beyond the first
    uint64_t exhausted = 0;      // calls that failed after max_attempts
    uint64_t budget_denied = 0;  // retries the token bucket refused
  };
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  double budget_tokens() const { return budget_tokens_; }

 private:
  // True (and spends a token) when the budget allows another retry.
  bool SpendRetryToken();

  Options options_;
  sim::Rng rng_;
  Stats stats_;
  double budget_tokens_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RETRY_H_
