// Shared-memory message ring over non-coherent CXL pool memory (paper
// §4.1: "The channel is implemented as a ring buffer, with each message
// slot sized at 64 B to match the cacheline granularity. It manages cache
// coherence in software by using non-temporal stores to send messages.")
//
// Wire layout of one ring (all in one pool segment):
//   [slot 0 .. slot N-1]    N x 64 B message slots
//   [consumer cursor]       one 64 B line holding a u64 consumed count
//
// Slot format (64 B):
//   u32 seq        message index + 1; the publish flag. A slot is valid
//                  for message k iff seq == k+1. Written last (the whole
//                  line goes out in one non-temporal store).
//   u16 chunk_len  payload bytes in this slot (<= 54)
//   u16 msg_len    total message bytes (set in every chunk)
//   u8  payload[54]
//
// Messages longer than one slot span consecutive slots (the common case —
// doorbells, control messages — is single-slot, which is the configuration
// measured in Figure 4).
//
// Coherence protocol:
//   sender:   StoreNt(slot)                      -> immediately visible
//   receiver: Invalidate(slot); Load(slot)       -> never reads stale seq
//   receiver: StoreNt(cursor) every N/4 messages -> flow control
//   sender:   Invalidate(cursor); Load(cursor) when the ring looks full
#ifndef SRC_MSG_RING_H_
#define SRC_MSG_RING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/cxl/host_adapter.h"
#include "src/sim/poll.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

inline constexpr uint64_t kSlotSize = kCachelineSize;
inline constexpr uint64_t kSlotHeaderSize = 10;  // seq(4) chunk_len(2) msg_len(2) + pad(2)
inline constexpr uint64_t kSlotPayload = kSlotSize - kSlotHeaderSize;  // 54
inline constexpr uint64_t kMaxMessageSize = 8 * kKiB;

// Bytes of pool memory a ring with `slots` slots occupies.
constexpr uint64_t RingFootprint(uint32_t slots) {
  return static_cast<uint64_t>(slots) * kSlotSize + kCachelineSize;
}

struct RingConfig {
  uint64_t base = 0;    // pool address of slot 0
  uint32_t slots = 64;  // must be a power of two
  // Receiver busy-poll cadence; decays by 2x to max while idle.
  Nanos poll_min = 100;
  Nanos poll_max = 2 * kMicrosecond;
  // Bound on how long Send waits for free slots while the ring is full.
  // 0 = wait forever (legacy). >0 turns a full ring into an explicit
  // kOverloaded after that much simulated time — the innermost
  // backpressure point of the whole forwarding path.
  Nanos full_wait = 0;
};

// Producer endpoint. Exactly one sender and one receiver per ring (SPSC);
// the bidirectional Channel in channel.h pairs two rings.
class RingSender {
 public:
  RingSender(cxl::HostAdapter& host, const RingConfig& config);

  // Publishes one message (<= kMaxMessageSize). Blocks (in simulated time)
  // while the ring is full — bounded by config.full_wait when nonzero, in
  // which case a still-full ring yields kOverloaded. Fails if the CXL path
  // is unhealthy.
  sim::Task<Status> Send(std::span<const std::byte> payload);

  uint64_t messages_sent() const { return head_; }
  // Sends refused with kOverloaded because the ring stayed full past
  // full_wait.
  uint64_t full_rejects() const { return full_rejects_; }
  cxl::HostAdapter& host() { return host_; }

 private:
  sim::Task<Status> WaitForSpace(uint32_t chunks_needed);

  cxl::HostAdapter& host_;
  RingConfig config_;
  uint64_t cursor_addr_;
  uint64_t head_ = 0;         // next slot index to write
  uint64_t cached_tail_ = 0;  // last observed consumer cursor
  uint64_t full_rejects_ = 0;
  sim::PollBackoff backoff_;
};

// Consumer endpoint.
class RingReceiver {
 public:
  RingReceiver(cxl::HostAdapter& host, const RingConfig& config);

  // Receives the next message, waiting until `deadline` (absolute sim
  // time). Returns kDeadlineExceeded on timeout, kUnavailable if the CXL
  // path died. On success the message bytes are appended to *out.
  sim::Task<Status> Recv(std::vector<std::byte>* out, Nanos deadline);

  // Non-blocking single poll: kNotFound if no message is ready right now.
  // (Still charges the invalidate+load cost of inspecting the head slot.)
  sim::Task<Status> TryRecv(std::vector<std::byte>* out);

  uint64_t messages_received() const { return messages_; }
  cxl::HostAdapter& host() { return host_; }

 private:
  // Reads slot `index`'s line fresh from the pool. Returns seq.
  sim::Task<Result<uint32_t>> LoadSlot(uint64_t index,
                                       std::array<std::byte, kSlotSize>* line);
  sim::Task<Status> PublishCursor();
  // Pops one full message whose first chunk line is already loaded.
  sim::Task<Status> ConsumeMessage(std::array<std::byte, kSlotSize> first_line,
                                   std::vector<std::byte>* out);

  cxl::HostAdapter& host_;
  RingConfig config_;
  uint64_t cursor_addr_;
  uint64_t tail_ = 0;  // next slot index to read
  uint64_t messages_ = 0;
  uint64_t last_published_cursor_ = 0;
  sim::PollBackoff backoff_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RING_H_
