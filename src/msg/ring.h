// Shared-memory message ring over non-coherent CXL pool memory (paper
// §4.1: "The channel is implemented as a ring buffer, with each message
// slot sized at 64 B to match the cacheline granularity. It manages cache
// coherence in software by using non-temporal stores to send messages.")
//
// Wire layout of one ring (all in one pool segment):
//   [slot 0 .. slot N-1]    N x 64 B message slots
//   [consumer cursor]       one 64 B line holding a u64 consumed count
//
// Slot format (64 B):
//   u32 seq        message index + 1; the publish flag. A slot is valid
//                  for message k iff seq == k+1. Written last (the whole
//                  line goes out in one non-temporal store).
//   u16 chunk_len  payload bytes in this slot (<= 54)
//   u16 msg_len    total message bytes (set in every chunk)
//   u8  payload[54]
//
// Messages longer than one slot span consecutive slots (the common case —
// doorbells, control messages — is single-slot, which is the configuration
// measured in Figure 4).
//
// Coherence protocol:
//   sender:   StoreNt(slot)                      -> immediately visible
//   receiver: Invalidate(slot); Load(slot)       -> never reads stale seq
//   receiver: StoreNt(cursor) every N/4 messages -> flow control
//   sender:   Invalidate(cursor); Load(cursor) when the ring looks full
#ifndef SRC_MSG_RING_H_
#define SRC_MSG_RING_H_

#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/cxl/host_adapter.h"
#include "src/sim/poll.h"
#include "src/sim/task.h"

namespace cxlpool::netsim {
class FaultPlane;
}  // namespace cxlpool::netsim

namespace cxlpool::msg {

inline constexpr uint64_t kSlotSize = kCachelineSize;
inline constexpr uint64_t kSlotHeaderSize = 10;  // seq(4) chunk_len(2) msg_len(2) + pad(2)
inline constexpr uint64_t kSlotPayload = kSlotSize - kSlotHeaderSize;  // 54
inline constexpr uint64_t kMaxMessageSize = 8 * kKiB;

// Bytes of pool memory a ring with `slots` slots occupies.
constexpr uint64_t RingFootprint(uint32_t slots) {
  return static_cast<uint64_t>(slots) * kSlotSize + kCachelineSize;
}

struct RingConfig {
  uint64_t base = 0;    // pool address of slot 0
  uint32_t slots = 64;  // must be a power of two
  // Receiver busy-poll cadence; decays by 2x to max while idle.
  Nanos poll_min = 100;
  Nanos poll_max = 2 * kMicrosecond;
  // Bound on how long Send waits for free slots while the ring is full.
  // 0 = wait forever (legacy). >0 turns a full ring into an explicit
  // kOverloaded after that much simulated time — the innermost
  // backpressure point of the whole forwarding path.
  Nanos full_wait = 0;
  // Receiver burst-window CAP: the most consecutive slots one fresh poll
  // invalidates+loads at once. A published slot cannot be overwritten
  // until the consumer cursor passes it, so the valid prefix of a window
  // is immutable and safe to consume from cache without re-invalidating
  // per message — this is what makes burst drain cheap (the CXL read
  // pipelines extra lines at per_line_pipelined instead of paying the
  // full first-line latency per slot). The actual window adapts between 1
  // and this cap: it widens while scans come back fully valid (burst) and
  // collapses to 1 when the receiver is caught up, so ping-pong traffic
  // never pays for speculative lines. 1 = legacy slot-at-a-time.
  uint32_t recv_window = 8;
  // Directed fault injection (partitions / asymmetric / lossy links).
  // When set, every message the RECEIVER consumes is judged against the
  // plane's (src_host → dst_host) state AFTER its slots are reclaimed:
  // a dropped message vanishes without stalling the sender's seq/cursor
  // flow (sender-side dropping would wedge the SPSC publish protocol), a
  // duplicated one is delivered twice, and a delayed one is held past
  // later messages — which is also how reorder happens. nullptr (the
  // default) is the perfectly reliable legacy fabric, with zero cost.
  netsim::FaultPlane* fault_plane = nullptr;
  HostId src_host;  // the host publishing into this ring
  HostId dst_host;  // the host consuming it
};

// Producer endpoint. Exactly one sender and one receiver per ring (SPSC);
// the bidirectional Channel in channel.h pairs two rings.
class RingSender {
 public:
  RingSender(cxl::HostAdapter& host, const RingConfig& config);

  // Publishes one message (<= kMaxMessageSize). Blocks (in simulated time)
  // while the ring is full — bounded by config.full_wait when nonzero, in
  // which case a still-full ring yields kOverloaded. Fails if the CXL path
  // is unhealthy.
  sim::Task<Status> Send(std::span<const std::byte> payload);

  // Publishes several messages with ONE space reservation (at most one
  // consumer-cursor refresh) and write-combined non-temporal stores: runs
  // of ring-contiguous slots go out as single multi-line StoreNt calls,
  // paying the first-line CXL write latency once and per_line_pipelined
  // for every further line. All-or-nothing on space: a ring that cannot
  // fit the whole batch within full_wait rejects it with kOverloaded.
  // Slots are published in order, so the receiver's valid-prefix scan
  // never observes message k+1 before message k.
  sim::Task<Status> SendBatch(std::span<const std::span<const std::byte>> payloads);

  struct Stats {
    uint64_t batch_sends = 0;      // SendBatch calls with >= 2 messages
    uint64_t batched_messages = 0; // messages published via SendBatch
    uint64_t nt_store_runs = 0;    // write-combined StoreNt issues
    uint64_t cursor_refreshes = 0; // consumer-cursor invalidate+loads
  };
  const Stats& stats() const { return stats_; }

  uint64_t messages_sent() const { return head_; }
  // Sends refused with kOverloaded because the ring stayed full past
  // full_wait.
  uint64_t full_rejects() const { return full_rejects_; }
  cxl::HostAdapter& host() { return host_; }

 private:
  sim::Task<Status> WaitForSpace(uint32_t chunks_needed);

  cxl::HostAdapter& host_;
  RingConfig config_;
  uint64_t cursor_addr_;
  uint64_t head_ = 0;         // next slot index to write
  uint64_t cached_tail_ = 0;  // last observed consumer cursor
  uint64_t full_rejects_ = 0;
  Stats stats_;
  sim::PollBackoff backoff_;
};

// Consumer endpoint.
class RingReceiver {
 public:
  RingReceiver(cxl::HostAdapter& host, const RingConfig& config);

  // Receives the next message, waiting until `deadline` (absolute sim
  // time). Returns kDeadlineExceeded on timeout, kUnavailable if the CXL
  // path died. On success the message bytes are appended to *out.
  sim::Task<Status> Recv(std::vector<std::byte>* out, Nanos deadline);

  // Non-blocking single poll: kNotFound if no message is ready right now.
  // (Still charges the invalidate+load cost of inspecting the head slot.)
  sim::Task<Status> TryRecv(std::vector<std::byte>* out);

  uint64_t messages_received() const { return messages_; }

  struct Stats {
    uint64_t window_loads = 0;  // fresh windowed invalidate+load rounds
    uint64_t window_hits = 0;   // slots consumed from the cached window
    // Fault-plane outcomes applied by this receiver (subset of the
    // plane-wide counters, per ring direction).
    uint64_t faults_dropped = 0;
    uint64_t faults_duplicated = 0;
    uint64_t faults_delayed = 0;
  };
  const Stats& stats() const { return stats_; }
  cxl::HostAdapter& host() { return host_; }

 private:
  // Reads slot `index`'s line, serving from the cached burst window when
  // it covers the index; otherwise does a fresh windowed invalidate+load
  // and caches the valid prefix. Returns seq.
  sim::Task<Result<uint32_t>> LoadSlot(uint64_t index,
                                       std::array<std::byte, kSlotSize>* line);
  sim::Task<Status> PublishCursor();
  // Pops one full message whose first chunk line is already loaded.
  sim::Task<Status> ConsumeMessage(std::array<std::byte, kSlotSize> first_line,
                                   std::vector<std::byte>* out);
  // True when a fault plane is wired AND carries at least one edge — the
  // per-message Judge cost is only paid while faults are live.
  bool FaultActive() const;
  // Delivers a stashed duplicate or matured delayed message, if any.
  bool DeliverStashed(std::vector<std::byte>* out);
  // Judges the just-consumed scratch_ message; true = appended to *out
  // (possibly also stashed as a duplicate), false = dropped or delayed.
  bool JudgeConsumed(std::vector<std::byte>* out);
  // Earliest release among delayed messages, or 0 when none pending.
  Nanos NextDelayedRelease() const;

  cxl::HostAdapter& host_;
  RingConfig config_;
  uint64_t cursor_addr_;
  uint64_t tail_ = 0;  // next slot index to read
  uint64_t messages_ = 0;
  uint64_t last_published_cursor_ = 0;
  Stats stats_;
  // Burst-drain cache: slots [win_start_, win_start_ + win_valid_) were
  // observed published (seq == index+1) by one windowed load. Published
  // slots are immutable until the consumer cursor passes them, so these
  // bytes can be consumed without touching the pool again. Slots that
  // were NOT yet published are never cached — they must be re-read.
  std::vector<std::byte> window_;
  uint64_t win_start_ = 0;
  uint32_t win_valid_ = 0;
  // Adaptive window size in [1, recv_window]: doubles after a fully-valid
  // scan (a burst is in progress — wider loads amortize), shrinks back to
  // 1 after a scan that found at most one slot (ping-pong / idle, where
  // extra lines per load would only add pipelined-read latency).
  uint32_t cur_window_ = 1;
  sim::PollBackoff backoff_;
  // Fault-plane stashes: a consumed message judged kDuplicate is
  // redelivered from dup_pending_ on the next receive; one judged kDelay
  // waits in delayed_ until its release time (delivered before any new
  // ring message, earliest release first — stable on ties).
  std::vector<std::byte> scratch_;
  std::deque<std::vector<std::byte>> dup_pending_;
  std::vector<std::pair<Nanos, std::vector<std::byte>>> delayed_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RING_H_
